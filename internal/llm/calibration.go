package llm

import (
	"fmt"

	"repro/internal/queries"
)

// Outcome is one calibrated generation outcome.
type Outcome struct {
	Pass  bool
	Class string // fault class when !Pass (Table 5 taxonomy)
}

// Fault classes. The first five are produced by mechanical mutators and
// surface as categorized runtime/parse errors; the last two are
// hand-written plausible-but-wrong programs that execute successfully.
const (
	FaultSyntax    = "syntax"     // unparseable program
	FaultAttr      = "attribute"  // imaginary graph attribute / column
	FaultName      = "name"       // imaginary file/function
	FaultArgument  = "argument"   // wrong call arity/types
	FaultOperation = "operation"  // unsupported operation
	FaultWrongCalc = "wrong-calc" // runs, wrong value
	FaultGraphDiff = "graph-diff" // runs, wrong resulting graph/state
)

// networkxTrafficFails assigns, per model, the traffic queries whose
// NetworkX generation fails on the first attempt, with the fault class.
// The per-complexity pass counts reproduce Table 3's NetworkX column
// (GPT-4 8/8/5, GPT-3 8/5/2, davinci 8/6/1, bard 7/4/3) and the class
// distribution follows Table 5's traffic column.
var networkxTrafficFails = map[string]map[string]string{
	"gpt-4": {
		"ta-h6": FaultSyntax,
		"ta-h7": FaultAttr,
		"ta-h8": FaultArgument,
	},
	"gpt-3": {
		"ta-m5": FaultAttr,
		"ta-m6": FaultWrongCalc,
		"ta-m7": FaultArgument,
		"ta-h1": FaultSyntax,
		"ta-h2": FaultSyntax,
		"ta-h4": FaultAttr,
		"ta-h5": FaultName,
		"ta-h6": FaultOperation,
		"ta-h8": FaultArgument,
	},
	"text-davinci-003": {
		"ta-m2": FaultAttr,
		"ta-m4": FaultSyntax,
		"ta-h1": FaultArgument,
		"ta-h3": FaultSyntax,
		"ta-h4": FaultName,
		"ta-h5": FaultOperation,
		"ta-h6": FaultAttr,
		"ta-h7": FaultSyntax,
		"ta-h8": FaultAttr,
	},
	"bard": {
		"ta-e7": FaultGraphDiff,
		"ta-m1": FaultSyntax,
		"ta-m3": FaultAttr,
		"ta-m5": FaultArgument,
		"ta-m7": FaultWrongCalc,
		"ta-h2": FaultSyntax,
		"ta-h3": FaultAttr,
		"ta-h5": FaultName,
		"ta-h6": FaultOperation,
		"ta-h7": FaultArgument,
	},
}

// networkxMALTFails mirrors Table 4's NetworkX column (GPT-4 3/3/1, GPT-3
// 2/2/0, davinci 2/2/1, bard 2/1/1) with Table 5's MALT class mix.
var networkxMALTFails = map[string]map[string]string{
	"gpt-4": {
		"malt-h1": FaultArgument,
		"malt-h3": FaultWrongCalc,
	},
	"gpt-3": {
		"malt-e2": FaultArgument,
		"malt-m3": FaultArgument,
		"malt-h1": FaultArgument,
		"malt-h2": FaultWrongCalc,
		"malt-h3": FaultOperation,
	},
	"text-davinci-003": {
		"malt-e1": FaultAttr,
		"malt-m2": FaultArgument,
		"malt-h1": FaultArgument,
		"malt-h2": FaultName,
	},
	"bard": {
		"malt-e3": FaultArgument,
		"malt-m2": FaultArgument,
		"malt-m3": FaultName,
		"malt-h1": FaultGraphDiff,
		"malt-h2": FaultWrongCalc,
	},
}

// passCounts gives, for the pandas / sql / strawman approaches, the number
// of passing queries per complexity level [easy, medium, hard], straight
// from Tables 3 and 4.
var passCounts = map[string]map[string]map[string][3]int{
	"gpt-4": {
		"pandas":   {queries.AppTraffic: {4, 4, 1}, queries.AppMALT: {2, 2, 1}},
		"sql":      {queries.AppTraffic: {6, 4, 2}, queries.AppMALT: {1, 0, 0}},
		"strawman": {queries.AppTraffic: {4, 3, 0}},
	},
	"gpt-3": {
		"pandas":   {queries.AppTraffic: {4, 2, 0}, queries.AppMALT: {2, 2, 0}},
		"sql":      {queries.AppTraffic: {2, 1, 0}, queries.AppMALT: {1, 0, 0}},
		"strawman": {queries.AppTraffic: {3, 1, 0}},
	},
	"text-davinci-003": {
		"pandas":   {queries.AppTraffic: {5, 2, 0}, queries.AppMALT: {1, 1, 0}},
		"sql":      {queries.AppTraffic: {5, 2, 0}, queries.AppMALT: {1, 0, 0}},
		"strawman": {queries.AppTraffic: {3, 2, 0}},
	},
	"bard": {
		"pandas":   {queries.AppTraffic: {4, 1, 1}, queries.AppMALT: {2, 1, 0}},
		"sql":      {queries.AppTraffic: {3, 2, 0}, queries.AppMALT: {1, 0, 0}},
		"strawman": {queries.AppTraffic: {4, 2, 0}},
	},
}

// mechanicalClasses rotate over fail cells that the paper does not break
// down (pandas/sql backends).
var mechanicalClasses = []string{FaultSyntax, FaultAttr, FaultArgument, FaultOperation, FaultName}

// outcomeFor resolves the calibrated outcome of one generation attempt.
// Temperature 0 pins the first-attempt outcome; temperature > 0 activates
// per-attempt sequences for the pass@k case-study cells.
func outcomeFor(model, app, backend, queryID string, attempt int, temperature float64) Outcome {
	if temperature > 0 {
		if seq, ok := attemptSequences[seqKey(model, backend, queryID)]; ok {
			idx := attempt - 1
			if idx >= len(seq) {
				idx = len(seq) - 1
			}
			return seq[idx]
		}
	}
	if backend == "networkx" {
		var fails map[string]map[string]string
		if app == queries.AppTraffic {
			fails = networkxTrafficFails
		} else {
			fails = networkxMALTFails
		}
		if class, bad := fails[model][queryID]; bad {
			return Outcome{Pass: false, Class: class}
		}
		return Outcome{Pass: true}
	}
	// pandas / sql: positional calibration from pass counts.
	counts, ok := passCounts[model][backend][app]
	if !ok {
		return Outcome{Pass: true}
	}
	pos, level := positionOf(app, queryID)
	if pos < 0 {
		return Outcome{Pass: true}
	}
	if pos < counts[level] {
		return Outcome{Pass: true}
	}
	class := mechanicalClasses[int(hashString(model+backend+queryID))%len(mechanicalClasses)]
	return Outcome{Pass: false, Class: class}
}

// strawmanOutcome resolves a strawman (direct answer) attempt.
func strawmanOutcome(model, queryID string) bool {
	counts, ok := passCounts[model]["strawman"][queries.AppTraffic]
	if !ok {
		return false
	}
	pos, level := positionOf(queries.AppTraffic, queryID)
	if pos < 0 {
		return false
	}
	return pos < counts[level]
}

// positionOf returns a query's index within its complexity level and the
// level index (0=easy, 1=medium, 2=hard).
func positionOf(app, queryID string) (pos, level int) {
	var suite []queries.Query
	if app == queries.AppTraffic {
		suite = queries.Traffic()
	} else {
		suite = queries.MALT()
	}
	levels := []string{queries.Easy, queries.Medium, queries.Hard}
	for li, lv := range levels {
		i := 0
		for _, q := range suite {
			if q.Complexity != lv {
				continue
			}
			if q.ID == queryID {
				return i, li
			}
			i++
		}
	}
	return -1, 0
}

// --- pass@k and self-debug case study (Table 6) ---
//
// The paper studies Bard with the NetworkX approach on three initially
// failing MALT queries: pass@5 recovers all three, self-debug recovers two.

// CaseStudyQueries are the three failing Bard/NetworkX MALT cells used in
// the Table 6 case study.
var CaseStudyQueries = []string{"malt-m2", "malt-m3", "malt-h2"}

func seqKey(model, backend, queryID string) string {
	return model + "|" + backend + "|" + queryID
}

var attemptSequences = map[string][]Outcome{
	seqKey("bard", "networkx", "malt-m2"): {
		{Pass: false, Class: FaultArgument},
		{Pass: false, Class: FaultArgument},
		{Pass: true},
	},
	seqKey("bard", "networkx", "malt-m3"): {
		{Pass: false, Class: FaultName},
		{Pass: true},
	},
	seqKey("bard", "networkx", "malt-h2"): {
		{Pass: false, Class: FaultWrongCalc},
		{Pass: false, Class: FaultWrongCalc},
		{Pass: false, Class: FaultSyntax},
		{Pass: true},
	},
}

// selfDebugFixSet lists the cells where feeding the error back produces a
// corrected program: 2 of the 3 Bard case-study queries (Table 6), plus
// GPT-4's sole argument-error MALT failure (self-debug is most effective on
// mechanical errors; no paper table covers GPT-4 self-debug).
var selfDebugFixSet = map[string]bool{
	seqKey("bard", "networkx", "malt-m2"):  true,
	seqKey("bard", "networkx", "malt-m3"):  true,
	seqKey("gpt-4", "networkx", "malt-h1"): true,
}

func selfDebugFixes(model, backend, queryID string) bool {
	return selfDebugFixSet[seqKey(model, backend, queryID)]
}

// OutcomeOf exposes the calibrated first-attempt outcome of a cell for
// tests and reporting.
func OutcomeOf(model, app, backend, queryID string) Outcome {
	return outcomeFor(model, app, backend, queryID, 1, 0)
}

// ExpectedAccuracy returns the calibrated pass fraction for a (model,
// backend, app) cell — used by tests to assert the measured benchmark
// reproduces the calibration, and by EXPERIMENTS.md tooling.
func ExpectedAccuracy(model, backend, app string) float64 {
	var suite []queries.Query
	if app == queries.AppTraffic {
		suite = queries.Traffic()
	} else {
		suite = queries.MALT()
	}
	pass := 0
	for _, q := range suite {
		if outcomeFor(model, app, backend, q.ID, 1, 0).Pass {
			pass++
		}
	}
	return float64(pass) / float64(len(suite))
}

// String renders an outcome for debugging.
func (o Outcome) String() string {
	if o.Pass {
		return "pass"
	}
	return fmt.Sprintf("fail(%s)", o.Class)
}

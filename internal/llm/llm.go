// Package llm defines the language-model interface of the framework (box 4
// in Figure 2) and provides simulated implementations of the four models
// the paper evaluates (GPT-4, GPT-3, text-davinci-003, Bard).
//
// The simulation substitutes for live API access (see DESIGN.md §2): each
// model emits real NQL programs — the golden program when the calibrated
// outcome is a pass, or a program derived from the golden by a
// class-specific fault mutator when it is a fail. Everything downstream
// (prompting, parsing, sandboxed execution, evaluation, error
// classification, cost accounting) runs exactly as it would with a live
// model; swapping one in only requires implementing Model.
//
// Live and recorded serving enter through the Provider seam: a Provider
// answers generation requests for any named model, and NewProviderModel
// adapts one back to the per-model Model interface. The model-serving
// gateway (package internal/modelserve) implements Provider and supplies
// the production plumbing — request batching under the evaluation worker
// pool, per-model rate limiting, bounded retry with backoff, and a
// deterministic record/replay cache — so the pipeline runs
// simulate → record → replay without any consumer changing.
package llm

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/tokens"
)

// Request is one generation call.
type Request struct {
	Prompt      string
	Temperature float64 // 0 = deterministic; >0 enables attempt sequencing
	Attempt     int     // 1-based sample index (pass@k); 0 means 1
}

// Response is the model output with token accounting.
type Response struct {
	Text             string
	PromptTokens     int
	CompletionTokens int
}

// Model is the minimal LLM interface the framework depends on.
type Model interface {
	Name() string
	Generate(req Request) (*Response, error)
}

// ModelNames lists the simulated models in the paper's order.
var ModelNames = []string{"gpt-4", "gpt-3", "text-davinci-003", "bard"}

// Provider is the model-serving seam: one entry point that answers
// generation requests for any named model. The gateway in
// internal/modelserve implements it (batching, rate limiting, retry,
// record/replay); this package only defines the contract so consumers
// never import the serving layer.
type Provider interface {
	Generate(model string, req Request) (*Response, error)
}

// providerModel adapts a Provider to the Model interface for one model
// name — the gateway-backed Model constructor the evaluation pipeline
// uses when a serving gateway is configured.
type providerModel struct {
	name string
	p    Provider
}

// NewProviderModel returns a Model whose generations are served by p
// under the given model name.
func NewProviderModel(p Provider, name string) Model {
	return &providerModel{name: name, p: p}
}

// Name implements Model.
func (m *providerModel) Name() string { return m.name }

// Generate implements Model.
func (m *providerModel) Generate(req Request) (*Response, error) {
	return m.p.Generate(m.name, req)
}

// SimModel is a calibrated simulated LLM.
type SimModel struct {
	name string
	// oracle answers strawman prompts: queryText -> correct direct answer.
	oracle map[string]string
}

// NewSim creates a simulated model by name (must be one of ModelNames).
func NewSim(name string) (*SimModel, error) {
	if _, ok := tokens.Specs[name]; !ok {
		return nil, fmt.Errorf("llm: unknown model %q", name)
	}
	return &SimModel{name: name, oracle: map[string]string{}}, nil
}

// Name implements Model.
func (m *SimModel) Name() string { return m.name }

// SetOracle installs the direct answer a strawman prompt for queryText
// should yield when the model answers correctly. The benchmark computes it
// by executing the golden program — the stand-in for the model "knowing"
// the answer.
func (m *SimModel) SetOracle(queryText, answer string) {
	m.oracle[queryText] = answer
}

// maxCompletionTokens reserves room in the context window for the reply.
const maxCompletionTokens = 512

// Generate implements Model. The returned error is non-nil only for token
// window overflows (the provider-side failure); bad generations are
// returned as syntactically/semantically faulty program text, as a real
// model would produce them.
func (m *SimModel) Generate(req Request) (*Response, error) {
	pt := tokens.Count(req.Prompt)
	spec := tokens.Specs[m.name]
	if pt+maxCompletionTokens > spec.ContextWindow {
		return nil, &tokens.ErrTokenLimit{Model: m.name, Tokens: pt + maxCompletionTokens, Limit: spec.ContextWindow}
	}
	attempt := req.Attempt
	if attempt <= 0 {
		attempt = 1
	}
	qText, ok := prompt.QueryOf(req.Prompt)
	if !ok {
		return m.reply(pt, "# unable to identify the request\nreturn nil"), nil
	}
	q, ok := queries.ByText(qText)
	if !ok {
		return m.reply(pt, "# query not in training distribution\nreturn nil"), nil
	}
	backend, isCode := prompt.BackendOf(req.Prompt)
	if !isCode {
		return m.generateStrawman(pt, q), nil
	}

	golden := q.Golden[backend]
	if prompt.IsRepairPrompt(req.Prompt) {
		if selfDebugFixes(m.name, backend, q.ID) {
			return m.reply(pt, golden), nil
		}
		// The model repeats a (differently seeded) faulty attempt.
		out := outcomeFor(m.name, q.App, backend, q.ID, attempt, req.Temperature)
		return m.reply(pt, Mutate(golden, out.Class, backend, q, m.name+"/repair")), nil
	}
	out := outcomeFor(m.name, q.App, backend, q.ID, attempt, req.Temperature)
	if out.Pass {
		return m.reply(pt, golden), nil
	}
	return m.reply(pt, Mutate(golden, out.Class, backend, q, fmt.Sprintf("%s/%d", m.name, attempt))), nil
}

func (m *SimModel) reply(promptTokens int, text string) *Response {
	ct := tokens.Count(text)
	if ct > maxCompletionTokens {
		ct = maxCompletionTokens
	}
	return &Response{Text: text, PromptTokens: promptTokens, CompletionTokens: ct}
}

func (m *SimModel) generateStrawman(pt int, q queries.Query) *Response {
	answer, ok := m.oracle[q.Text]
	if !ok {
		answer = "unknown"
	}
	out := strawmanOutcome(m.name, q.ID)
	if out {
		return m.reply(pt, answer)
	}
	return m.reply(pt, corruptAnswer(answer, m.name+q.ID))
}

// corruptAnswer simulates the arithmetic slips and hallucinations of
// direct-answer mode: digits drift and the phrasing hedges.
func corruptAnswer(answer, seed string) string {
	r := rand.New(rand.NewSource(int64(hashString(seed))))
	var sb strings.Builder
	changed := false
	for _, c := range answer {
		if c >= '0' && c <= '9' && r.Intn(3) == 0 {
			c = '0' + (c-'0'+1+rune(r.Intn(8)))%10
			changed = true
		}
		sb.WriteRune(c)
	}
	out := sb.String()
	if !changed {
		out = "approximately " + out
	}
	return out
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

package llm

import (
	"strings"

	"repro/internal/queries"
)

// Mutate derives a faulty generation from the golden program. Mechanical
// classes inject a fault whose runtime behaviour is guaranteed to land in
// the intended error class; the two semantic classes (wrong-calc,
// graph-diff) use hand-written plausible-but-wrong programs from the
// variant catalog. seed only varies cosmetic details so repeated attempts
// differ textually.
func Mutate(golden, class, backend string, q queries.Query, seed string) string {
	switch class {
	case FaultSyntax:
		// Drop the final closing brace (the classic truncated-generation
		// failure); programs without braces get an unterminated expression.
		if i := strings.LastIndex(golden, "}"); i >= 0 {
			return golden[:i] + golden[i+1:]
		}
		return golden + "\nreturn ("
	case FaultAttr:
		return imaginaryAttrLine(backend, q.App) + "\n" + golden
	case FaultName:
		return `let raw = read_csv("network_data.csv")` + "\n" + golden
	case FaultArgument:
		return argumentErrorLine(backend) + "\n" + golden
	case FaultOperation:
		return `let banner = "total nodes: " + 0` + "\n" + golden
	case FaultWrongCalc, FaultGraphDiff:
		if v, ok := wrongVariants[q.ID+"|"+backend]; ok {
			return v
		}
		// No hand-written variant: degrade to an operation fault so the
		// cell still fails (tests assert every calibrated variant exists).
		return `let banner = "total nodes: " + 0` + "\n" + golden
	default:
		return golden
	}
}

func imaginaryAttrLine(backend, app string) string {
	switch backend {
	case "networkx":
		if app == queries.AppMALT {
			return `let check = graph.node(graph.nodes()[0])["uptime"]`
		}
		return `let check = graph.node(graph.nodes()[0])["bandwidth"]`
	case "pandas":
		if app == queries.AppMALT {
			return `let check = nodes_df.column("power_draw")`
		}
		return `let check = edges_df.column("weight")`
	case "sql":
		if app == queries.AppMALT {
			return `let check = db.query("SELECT power_draw FROM entities")`
		}
		return `let check = db.query("SELECT weight FROM edges")`
	default:
		return `let check = graph.node(graph.nodes()[0])["bandwidth"]`
	}
}

func argumentErrorLine(backend string) string {
	switch backend {
	case "networkx":
		return `let check = graph.degree()`
	case "pandas":
		return `let check = nodes_df.head()`
	case "sql":
		return `let check = db.query()`
	default:
		return `let check = graph.degree()`
	}
}

// wrongVariants are hand-written generations that execute successfully but
// produce a wrong value (wrong-calc) or a wrong final state (graph-diff).
// Keys are "<queryID>|<backend>"; only the cells calibrated to those
// classes need entries.
var wrongVariants = map[string]string{
	// ta-m6 (GPT-3, networkx): averages per-edge ratios instead of dividing
	// the totals — the textbook aggregation slip.
	"ta-m6|networkx": `let ratios = []
for e in graph.edges() {
  push(ratios, e.attrs["packets"] / (e.attrs["connections"] * 1.0))
}
if len(ratios) == 0 { return 0 }
return sum(ratios) / len(ratios)`,

	// ta-m7 (Bard, networkx): counts /24 prefixes instead of /16.
	"ta-m7|networkx": `func prefix_of(ip) {
  let parts = split(ip, ".")
  return parts[0] + "." + parts[1] + "." + parts[2]
}
let seen = {}
for n in graph.nodes() { seen[prefix_of(graph.node(n)["ip"])] = true }
return len(seen)`,

	// ta-e7 (Bard, networkx): misreads the byte threshold by two orders of
	// magnitude, leaving a visibly different graph.
	"ta-e7|networkx": `let doomed = []
for e in graph.edges() {
  if e.attrs["bytes"] < 100000 { push(doomed, [e.src, e.dst]) }
}
for p in doomed { graph.remove_edge(p[0], p[1]) }
return nil`,

	// malt-h2 (GPT-3 and Bard, networkx): doubles the wrong quantity —
	// computes chassis needed for 2x *additional* capacity.
	"malt-h2|networkx": `let out = {}
for dcname in ["ju1", "ju2"] {
  let dc = "dc." + dcname
  let total = 0
  for ch in graph.neighbors(dc) {
    if graph.edge(dc, ch)["relation"] == "RK_CONTAINS" and graph.node(ch)["kind"] == "EK_CHASSIS" {
      total = total + graph.node(ch)["capacity"]
    }
  }
  out[dcname] = int((total * 2 + 299) / 300)
}
return out`,

	// malt-h3 (GPT-4, networkx): flags every controller of a ju1 switch as
	// a single point of failure, not just sole controllers.
	"malt-h3|networkx": `let spof = {}
for sw in graph.nodes() {
  if graph.node(sw)["kind"] != "EK_PACKET_SWITCH" { continue }
  if not startswith(sw, "ps.ju1.") { continue }
  for pred in graph.predecessors(sw) {
    if graph.node(pred)["kind"] == "EK_CONTROL_POINT" and graph.edge(pred, sw)["relation"] == "RK_CONTROLS" {
      spof[pred] = true
    }
  }
}
return sorted(keys(spof))`,

	// malt-h1 (Bard, networkx): performs the rebalance but forgets to
	// update the switches' ports attribute, leaving a non-identical graph.
	"malt-h1|networkx": `let victim = "ps.ju1.a4.m1.s1c1"
let chassis = "ch.ju1.a4"
let orphan_ports = []
for p in graph.neighbors(victim) {
  if graph.edge(victim, p)["relation"] == "RK_CONTAINS" and graph.node(p)["kind"] == "EK_PORT" {
    push(orphan_ports, p)
  }
}
orphan_ports = sorted(orphan_ports)
let targets = []
for sw in graph.neighbors(chassis) {
  if sw != victim and graph.edge(chassis, sw)["relation"] == "RK_CONTAINS" and graph.node(sw)["kind"] == "EK_PACKET_SWITCH" {
    push(targets, sw)
  }
}
targets = sorted(targets)
let i = 0
for p in orphan_ports {
  let tgt = targets[i % len(targets)]
  graph.add_edge(tgt, p, {"relation": "RK_CONTAINS"})
  i = i + 1
}
graph.remove_node(victim)
return nil`,
}

// WrongVariant exposes catalog entries to tests.
func WrongVariant(queryID, backend string) (string, bool) {
	v, ok := wrongVariants[queryID+"|"+backend]
	return v, ok
}

package llm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/malt"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/sandbox"
	"repro/internal/tokens"
	"repro/internal/traffic"
)

func trafficWrapper() prompt.AppWrapper {
	return traffic.NewWrapper(traffic.Generate(traffic.Config{Nodes: 10, Edges: 10, Seed: 1}))
}

func maltWrapper() prompt.AppWrapper {
	return malt.NewWrapper(malt.Generate(malt.Config{}))
}

func TestNewSimRejectsUnknown(t *testing.T) {
	if _, err := NewSim("gpt-7"); err == nil {
		t.Fatal("expected error for unknown model")
	}
	for _, name := range ModelNames {
		if _, err := NewSim(name); err != nil {
			t.Errorf("NewSim(%s): %v", name, err)
		}
	}
}

func TestPassCellEmitsGolden(t *testing.T) {
	m, _ := NewSim("gpt-4")
	q, _ := queries.ByID("ta-e2")
	p := prompt.BuildCodePrompt(trafficWrapper(), "networkx", q.Text)
	resp, err := m.Generate(Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != q.Golden["networkx"] {
		t.Fatalf("pass cell should emit golden, got:\n%s", resp.Text)
	}
	if resp.PromptTokens <= 0 || resp.CompletionTokens <= 0 {
		t.Fatalf("token accounting: %+v", resp)
	}
}

func TestFailCellEmitsFaultyCode(t *testing.T) {
	m, _ := NewSim("gpt-4")
	q, _ := queries.ByID("ta-h6") // calibrated syntax failure for gpt-4
	p := prompt.BuildCodePrompt(trafficWrapper(), "networkx", q.Text)
	resp, err := m.Generate(Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text == q.Golden["networkx"] {
		t.Fatal("fail cell emitted golden")
	}
	if sandbox.CheckSyntax(resp.Text) == nil {
		t.Fatal("syntax-fault generation unexpectedly parses")
	}
}

func TestDeterministicAtTemperatureZero(t *testing.T) {
	m, _ := NewSim("bard")
	q, _ := queries.ByID("malt-m2")
	p := prompt.BuildCodePrompt(maltWrapper(), "networkx", q.Text)
	r1, err1 := m.Generate(Request{Prompt: p})
	r2, err2 := m.Generate(Request{Prompt: p, Attempt: 3})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Text != r2.Text {
		t.Fatal("temperature 0 must be attempt-independent")
	}
}

func TestAttemptSequenceAtTemperature(t *testing.T) {
	m, _ := NewSim("bard")
	q, _ := queries.ByID("malt-m2")
	p := prompt.BuildCodePrompt(maltWrapper(), "networkx", q.Text)
	// Calibrated: fail, fail, pass.
	var texts []string
	for attempt := 1; attempt <= 3; attempt++ {
		r, err := m.Generate(Request{Prompt: p, Temperature: 0.7, Attempt: attempt})
		if err != nil {
			t.Fatal(err)
		}
		texts = append(texts, r.Text)
	}
	if texts[2] != q.Golden["networkx"] {
		t.Fatal("attempt 3 should pass")
	}
	if texts[0] == q.Golden["networkx"] {
		t.Fatal("attempt 1 should fail")
	}
}

func TestSelfDebugRepair(t *testing.T) {
	m, _ := NewSim("bard")
	q, _ := queries.ByID("malt-m2") // self-debug fixes this cell
	orig := prompt.BuildCodePrompt(maltWrapper(), "networkx", q.Text)
	repair := prompt.BuildRepairPrompt(orig, "bad", "some error")
	r, err := m.Generate(Request{Prompt: repair})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != q.Golden["networkx"] {
		t.Fatal("repair should emit golden for fixable cell")
	}
	// h2 is calibrated unfixable.
	q2, _ := queries.ByID("malt-h2")
	orig2 := prompt.BuildCodePrompt(maltWrapper(), "networkx", q2.Text)
	repair2 := prompt.BuildRepairPrompt(orig2, "bad", "some error")
	r2, err := m.Generate(Request{Prompt: repair2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Text == q2.Golden["networkx"] {
		t.Fatal("unfixable cell repaired")
	}
}

func TestTokenLimitOnHugePrompt(t *testing.T) {
	m, _ := NewSim("gpt-4")
	huge := strings.Repeat("network data blob ", 3000)
	_, err := m.Generate(Request{Prompt: huge})
	var lim *tokens.ErrTokenLimit
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want token limit", err)
	}
}

func TestStrawmanOracle(t *testing.T) {
	m, _ := NewSim("gpt-4")
	q, _ := queries.ByID("ta-e2") // strawman pass cell for gpt-4 (easy pos 1 < 4)
	m.SetOracle(q.Text, "80")
	w := trafficWrapper()
	p := prompt.BuildStrawmanPrompt(w, `{"nodes":[]}`, q.Text)
	r, err := m.Generate(Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != "80" {
		t.Fatalf("strawman pass = %q", r.Text)
	}
	// ta-e7 is position 6 (>=4) → strawman fail for gpt-4.
	q2, _ := queries.ByID("ta-e7")
	m.SetOracle(q2.Text, "answer 123")
	p2 := prompt.BuildStrawmanPrompt(w, `{"nodes":[]}`, q2.Text)
	r2, err := m.Generate(Request{Prompt: p2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Text == "answer 123" {
		t.Fatal("strawman fail cell returned the oracle answer")
	}
}

func TestCorruptAnswerAlwaysDiffers(t *testing.T) {
	for _, ans := range []string{"42", "h003", "no numbers here", ""} {
		if got := corruptAnswer(ans, "seed"); got == ans {
			t.Errorf("corruptAnswer(%q) returned the original", ans)
		}
	}
}

func TestMutatorClasses(t *testing.T) {
	q, _ := queries.ByID("ta-e2")
	golden := q.Golden["networkx"]
	syntax := Mutate(golden, FaultSyntax, "networkx", q, "s")
	if sandbox.CheckSyntax(syntax) == nil && !strings.Contains(syntax, "return (") {
		t.Error("syntax mutation should not parse")
	}
	for _, class := range []string{FaultAttr, FaultName, FaultArgument, FaultOperation} {
		mutated := Mutate(golden, class, "networkx", q, "s")
		if mutated == golden {
			t.Errorf("%s mutation is a no-op", class)
		}
		if err := sandbox.CheckSyntax(mutated); err != nil {
			t.Errorf("%s mutation should parse, got %v", class, err)
		}
	}
}

func TestWrongVariantsExistForCalibratedCells(t *testing.T) {
	for model, fails := range networkxTrafficFails {
		for qid, class := range fails {
			if class == FaultWrongCalc || class == FaultGraphDiff {
				if _, ok := WrongVariant(qid, "networkx"); !ok {
					t.Errorf("%s/%s calibrated %s but no hand-written variant", model, qid, class)
				}
			}
		}
	}
	for model, fails := range networkxMALTFails {
		for qid, class := range fails {
			if class == FaultWrongCalc || class == FaultGraphDiff {
				if _, ok := WrongVariant(qid, "networkx"); !ok {
					t.Errorf("%s/%s calibrated %s but no hand-written variant", model, qid, class)
				}
			}
		}
	}
}

func TestExpectedAccuracyMatchesPaperTable2(t *testing.T) {
	// The calibrated accuracies must reproduce Table 2 to two decimals
	// (our counts are derived from the paper's per-level fractions).
	cases := []struct {
		model, backend, app string
		want                float64
	}{
		{"gpt-4", "networkx", queries.AppTraffic, 0.88},
		{"gpt-3", "networkx", queries.AppTraffic, 0.63},
		{"text-davinci-003", "networkx", queries.AppTraffic, 0.63},
		{"bard", "networkx", queries.AppTraffic, 0.58},
		{"gpt-4", "sql", queries.AppTraffic, 0.50},
		{"gpt-4", "pandas", queries.AppTraffic, 0.38},
		{"gpt-4", "networkx", queries.AppMALT, 0.78},
		{"gpt-3", "networkx", queries.AppMALT, 0.44},
		{"gpt-4", "sql", queries.AppMALT, 0.11},
		{"gpt-4", "pandas", queries.AppMALT, 0.56},
	}
	for _, c := range cases {
		got := ExpectedAccuracy(c.model, c.backend, c.app)
		if got < c.want-0.005 || got > c.want+0.005 {
			t.Errorf("%s/%s/%s = %.4f, want ≈%.2f", c.model, c.backend, c.app, got, c.want)
		}
	}
}

func TestCaseStudyQueriesAreCalibratedFails(t *testing.T) {
	for _, id := range CaseStudyQueries {
		out := OutcomeOf("bard", queries.AppMALT, "networkx", id)
		if out.Pass {
			t.Errorf("case-study query %s is not a bard failure", id)
		}
	}
}

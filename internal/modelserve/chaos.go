package modelserve

import (
	"fmt"
	"sync"

	"repro/internal/llm"
)

// Chaos is a fault-injecting provider wrapper for exercising the
// gateway's failure paths: every distinct request fails a configured
// number of times with a transient error before the inner provider is
// consulted, and an optional hook injects terminal faults. Injection is
// keyed by the same canonical request key the record/replay cache uses,
// so a "transient" fault deterministically clears after the same number
// of retries on every run.
type Chaos struct {
	// Inner answers the requests that survive injection.
	Inner Provider
	// TransientFailures is how many times each distinct request fails
	// (with TransientKind) before succeeding.
	TransientFailures int
	// TransientKind is the injected transient fault class (default
	// KindUnavailable; KindRateLimited exercises the throttle path).
	TransientKind ErrKind
	// Terminal, when set, short-circuits matching requests with a
	// terminal error instead of consulting Inner.
	Terminal func(model string, req llm.Request) error

	mu   sync.Mutex
	seen map[string]int
}

// Name implements Provider.
func (c *Chaos) Name() string { return "chaos(" + c.Inner.Name() + ")" }

// Unwrap exposes the wrapped provider (gateway stats traversal).
func (c *Chaos) Unwrap() Provider { return c.Inner }

// attemptsFor bumps and returns the per-request attempt ordinal.
func (c *Chaos) attemptsFor(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen == nil {
		c.seen = map[string]int{}
	}
	c.seen[key]++
	return c.seen[key]
}

// GenerateBatch implements Provider.
func (c *Chaos) GenerateBatch(model string, reqs []llm.Request) ([]*llm.Response, []error) {
	resps := make([]*llm.Response, len(reqs))
	errs := make([]error, len(reqs))
	var fwd []int
	for i, req := range reqs {
		if c.Terminal != nil {
			if err := c.Terminal(model, req); err != nil {
				errs[i] = err
				continue
			}
		}
		if n := c.attemptsFor(Key(model, req)); n <= c.TransientFailures {
			errs[i] = &ProviderError{Provider: c.Name(), Model: model, Kind: c.TransientKind,
				Err: fmt.Errorf("injected transient fault %d/%d", n, c.TransientFailures)}
			continue
		}
		fwd = append(fwd, i)
	}
	if len(fwd) == 0 {
		return resps, errs
	}
	sub := make([]llm.Request, len(fwd))
	for j, i := range fwd {
		sub[j] = reqs[i]
	}
	subResps, subErrs := c.Inner.GenerateBatch(model, sub)
	for j, i := range fwd {
		resps[i], errs[i] = subResps[j], subErrs[j]
	}
	return resps, errs
}

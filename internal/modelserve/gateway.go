package modelserve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/limiter"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/tokens"
)

// completionReserve is the per-request completion-token estimate debited
// from the tokens/min bucket alongside the counted prompt tokens; it
// matches the reply room the simulated models reserve.
const completionReserve = 512

// Config tunes a Gateway. The zero value of every field selects a sane
// default; only Provider is required.
type Config struct {
	Provider Provider

	// BatchSize bounds how many queued requests one provider call may
	// coalesce (default 8; 1 disables batching).
	BatchSize int
	// BatchWindow is how long a dispatcher waits for more requests after
	// picking up an undersized batch. The default (0) dispatches
	// immediately — batches then form from queue backlog alone, which
	// costs nothing when traffic is sparse; a positive window trades
	// per-request latency for batch fill, worthwhile when the provider
	// charges per round trip.
	BatchWindow time.Duration

	// RPS caps per-model requests per second; 0 means unlimited.
	RPS float64
	// TPM caps per-model tokens (counted prompt tokens plus a completion
	// reserve) per minute; 0 means unlimited.
	TPM float64
	// Burst is the request bucket's burst capacity (default BatchSize).
	Burst int

	// MaxRetries bounds how many times a transient failure is retried
	// beyond the first attempt (default 3; negative disables retries).
	MaxRetries int
	// BackoffBase is the first retry's backoff; each further retry doubles
	// it up to BackoffMax, with full jitter on the upper half (default
	// 25ms, capped at 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed keys the jitter sequence so retry timing is reproducible.
	Seed int64
}

// Stats is a snapshot of gateway activity for one run. Cache figures are
// present when the provider chain contains a Recorder or Replay.
type Stats struct {
	Requests      int64 // generations that entered the gateway
	ProviderCalls int64 // downstream batch calls issued
	Batched       int64 // provider calls that coalesced >1 request
	MaxBatch      int64 // largest coalesced batch
	Retries       int64 // transient failures re-attempted
	Failures      int64 // terminal failures surfaced to callers
	RateWaits     int64 // provider calls delayed by a rate limiter
	RateWaited    time.Duration
	CacheHits     int64
	CacheMisses   int64
	CacheWrites   int64
}

// String renders the snapshot as the one-line report cmd/nemoeval prints.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d requests, %d provider calls (%d batched, max batch %d), %d retries, %d failures, %d rate-limit waits (%s)",
		s.Requests, s.ProviderCalls, s.Batched, s.MaxBatch, s.Retries, s.Failures, s.RateWaits, s.RateWaited.Round(time.Millisecond))
	if s.CacheHits+s.CacheMisses+s.CacheWrites > 0 {
		fmt.Fprintf(&sb, ", cache %d hits / %d misses / %d writes", s.CacheHits, s.CacheMisses, s.CacheWrites)
	}
	return sb.String()
}

// cacheCounters is implemented by Recorder and Replay so the gateway can
// fold cache activity into Stats.
type cacheCounters interface {
	cacheStats() (hits, misses, writes int64)
}

// Gateway schedules generation requests onto a Provider: it coalesces
// concurrent requests into per-model batches, enforces per-model rate
// limits, retries transient failures with backoff and jitter, and wraps
// terminal failures in classified ProviderErrors. It implements
// llm.Provider, so llm.NewProviderModel(gw, name) yields a drop-in Model.
//
// Gateway is safe for concurrent use by any number of workers.
type Gateway struct {
	cfg Config

	mu    sync.Mutex
	lanes map[string]*lane

	jmu  sync.Mutex
	jrng *rand.Rand

	reg           *obs.Registry
	requests      *obs.Counter
	providerCalls *obs.Counter
	retries       *obs.Counter
	failures      *obs.Counter
	batchHist     *obs.Histogram // occupancy of every dispatched batch
	rateWaitHist  *obs.Histogram // nanoseconds stalled on rate limits

	// Clock hooks, swappable in tests.
	now   func() time.Time
	sleep func(time.Duration)
}

// New builds a gateway over cfg.Provider, applying defaults.
func New(cfg Config) (*Gateway, error) {
	if cfg.Provider == nil {
		return nil, fmt.Errorf("modelserve: Config.Provider is required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.BatchWindow < 0 {
		cfg.BatchWindow = 0
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.BatchSize
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.RPS < 0 || cfg.TPM < 0 {
		return nil, fmt.Errorf("modelserve: negative rate limit (rps %v, tpm %v)", cfg.RPS, cfg.TPM)
	}
	reg := obs.NewRegistry()
	return &Gateway{
		cfg:           cfg,
		lanes:         map[string]*lane{},
		jrng:          rand.New(rand.NewSource(cfg.Seed)),
		now:           time.Now,
		sleep:         time.Sleep,
		reg:           reg,
		requests:      reg.Counter("modelserve_requests_total"),
		providerCalls: reg.Counter("modelserve_provider_calls_total"),
		retries:       reg.Counter("modelserve_retries_total"),
		failures:      reg.Counter("modelserve_failures_total"),
		batchHist:     reg.Histogram("modelserve_batch_size"),
		rateWaitHist:  reg.Histogram("modelserve_rate_wait_ns"),
	}, nil
}

// Metrics exposes the gateway's observability registry (counters plus the
// batch-occupancy and rate-wait histograms behind Stats).
func (g *Gateway) Metrics() *obs.Registry { return g.reg }

// Provider returns the configured downstream provider chain.
func (g *Gateway) Provider() Provider { return g.cfg.Provider }

// Stats snapshots the gateway counters, folding in cache activity from
// any Recorder/Replay in the provider chain.
func (g *Gateway) Stats() Stats {
	batch := g.batchHist.Snapshot()
	waits := g.rateWaitHist.Snapshot()
	s := Stats{
		Requests:      g.requests.Load(),
		ProviderCalls: g.providerCalls.Load(),
		Batched:       batch.CountAbove(1),
		Retries:       g.retries.Load(),
		Failures:      g.failures.Load(),
		RateWaits:     waits.Count,
		RateWaited:    time.Duration(waits.Sum),
	}
	if s.Batched > 0 {
		s.MaxBatch = batch.Max()
	}
	for p := g.cfg.Provider; p != nil; {
		if cc, ok := p.(cacheCounters); ok {
			h, m, w := cc.cacheStats()
			s.CacheHits += h
			s.CacheMisses += m
			s.CacheWrites += w
		}
		type unwrapper interface{ Unwrap() Provider }
		if u, ok := p.(unwrapper); ok {
			p = u.Unwrap()
		} else {
			p = nil
		}
	}
	return s
}

// LaneState is a point-in-time view of one model lane for diagnostic
// bundles: queue depth, dispatcher liveness, and the rate-bucket levels.
type LaneState struct {
	Model     string               `json:"model"`
	Queued    int                  `json:"queued"`
	Running   bool                 `json:"running"`
	ReqBucket *limiter.BucketState `json:"req_bucket,omitempty"`
	TokBucket *limiter.BucketState `json:"tok_bucket,omitempty"`
}

// GatewayState is the gateway's full diagnostic snapshot: cumulative Stats
// plus per-lane state, lanes sorted by model name for deterministic
// bundle output.
type GatewayState struct {
	Stats Stats       `json:"stats"`
	Lanes []LaneState `json:"lanes"`
}

// StateSnapshot captures the gateway's current state for a diagnostic
// bundle. It takes the gateway and lane locks briefly; safe to call while
// dispatchers run.
func (g *Gateway) StateSnapshot() GatewayState {
	now := g.now()
	g.mu.Lock()
	lanes := make([]*lane, 0, len(g.lanes))
	for _, l := range g.lanes {
		lanes = append(lanes, l)
	}
	g.mu.Unlock()
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].model < lanes[j].model })
	st := GatewayState{Stats: g.Stats(), Lanes: make([]LaneState, 0, len(lanes))}
	for _, l := range lanes {
		l.mu.Lock()
		ls := LaneState{Model: l.model, Queued: len(l.queue), Running: l.running}
		l.mu.Unlock()
		if l.reqBucket != nil {
			b := l.reqBucket.Snapshot(now)
			ls.ReqBucket = &b
		}
		if l.tokBucket != nil {
			b := l.tokBucket.Snapshot(now)
			ls.TokBucket = &b
		}
		st.Lanes = append(st.Lanes, ls)
	}
	return st
}

// call is one in-flight request parked on a lane queue.
type call struct {
	req  llm.Request
	resp *llm.Response
	err  error
	done chan struct{}
}

// lane serializes dispatch for one model: a single dispatcher goroutine
// drains the queue in batches, so the provider never sees concurrent
// calls for the same model and the rate buckets need no extra locking.
type lane struct {
	gw    *Gateway
	model string

	mu      sync.Mutex
	queue   []*call
	running bool

	reqBucket *limiter.Bucket
	tokBucket *limiter.Bucket
}

func (g *Gateway) lane(model string) *lane {
	g.mu.Lock()
	defer g.mu.Unlock()
	l, ok := g.lanes[model]
	if !ok {
		l = &lane{gw: g, model: model}
		if g.cfg.RPS > 0 {
			l.reqBucket = limiter.NewBucket(g.cfg.RPS, float64(g.cfg.Burst), g.now())
		}
		if g.cfg.TPM > 0 {
			// Tokens/min expressed as tokens/sec; allow one batch's worth
			// of burst so a cold gateway is not instantly in debt.
			perSec := g.cfg.TPM / 60
			burst := math.Max(perSec, float64(g.cfg.BatchSize)*completionReserve)
			l.tokBucket = limiter.NewBucket(perSec, burst, g.now())
		}
		g.lanes[model] = l
	}
	return l
}

// Generate implements llm.Provider: it parks the request on the model's
// lane and blocks until the dispatcher fulfills it.
func (g *Gateway) Generate(model string, req llm.Request) (*llm.Response, error) {
	g.requests.Inc()
	c := &call{req: req, done: make(chan struct{})}
	l := g.lane(model)
	l.mu.Lock()
	l.queue = append(l.queue, c)
	if !l.running {
		l.running = true
		go l.run()
	}
	l.mu.Unlock()
	<-c.done
	if c.err != nil {
		g.failures.Inc()
	}
	return c.resp, c.err
}

// take pops up to n queued calls.
func (l *lane) take(n int) []*call {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.queue) {
		n = len(l.queue)
	}
	batch := l.queue[:n:n]
	l.queue = l.queue[n:]
	return batch
}

// run is the lane dispatcher: it drains the queue batch by batch and
// exits when the queue empties.
func (l *lane) run() {
	g := l.gw
	for {
		batch := l.take(g.cfg.BatchSize)
		if len(batch) == 0 {
			l.mu.Lock()
			// Re-check under the lock: a Generate may have enqueued after
			// the empty take but before we flip running off.
			if len(l.queue) == 0 {
				l.running = false
				l.mu.Unlock()
				return
			}
			l.mu.Unlock()
			continue
		}
		if len(batch) < g.cfg.BatchSize && g.cfg.BatchWindow > 0 {
			// Undersized batch: give concurrent workers one window to pile
			// on before paying a provider round trip.
			g.sleep(g.cfg.BatchWindow)
			batch = append(batch, l.take(g.cfg.BatchSize-len(batch))...)
		}
		l.process(batch)
	}
}

// process drives one batch to completion: rate-limit, call the provider,
// retry the transient failures with backoff, classify what remains.
func (l *lane) process(batch []*call) {
	g := l.gw
	g.batchHist.Observe(int64(len(batch)))
	pending := batch
	for attempt := 1; ; attempt++ {
		l.rateLimit(pending)
		reqs := make([]llm.Request, len(pending))
		for i, c := range pending {
			reqs[i] = c.req
		}
		g.providerCalls.Inc()
		resps, errs := g.cfg.Provider.GenerateBatch(l.model, reqs)
		var retry []*call
		for i, c := range pending {
			var err error
			if i < len(errs) {
				err = errs[i]
			}
			if err == nil {
				if i < len(resps) && resps[i] != nil {
					c.resp = resps[i]
				} else {
					c.err = &ProviderError{Provider: g.cfg.Provider.Name(), Model: l.model,
						Kind: KindBadResponse, Attempts: attempt,
						Err: fmt.Errorf("provider returned neither response nor error")}
				}
				close(c.done)
				continue
			}
			if retryable(err) && attempt <= g.cfg.MaxRetries {
				retry = append(retry, c)
				continue
			}
			c.err = terminalError(g.cfg.Provider.Name(), l.model, err, attempt)
			close(c.done)
		}
		if len(retry) == 0 {
			return
		}
		g.retries.Add(int64(len(retry)))
		g.sleep(l.backoff(attempt))
		pending = retry
	}
}

// terminalError normalizes a terminal failure into a ProviderError
// carrying the attempt count; classified ProviderErrors keep their kind,
// anything else (e.g. tokens.ErrTokenLimit from the sims) passes through
// wrapped as the request-level fault it is.
func terminalError(provider, model string, err error, attempts int) error {
	if pe, ok := err.(*ProviderError); ok {
		out := *pe
		out.Attempts = attempts
		if out.Provider == "" {
			out.Provider = provider
		}
		if out.Model == "" {
			out.Model = model
		}
		return &out
	}
	return err
}

// rateLimit debits the lane's buckets for one provider call of len(calls)
// requests and sleeps out any deficit.
func (l *lane) rateLimit(calls []*call) {
	g := l.gw
	var wait time.Duration
	if l.reqBucket != nil {
		wait = l.reqBucket.Take(float64(len(calls)), g.now())
	}
	if l.tokBucket != nil {
		need := 0.0
		for _, c := range calls {
			need += float64(tokens.Count(c.req.Prompt) + completionReserve)
		}
		if w := l.tokBucket.Take(need, g.now()); w > wait {
			wait = w
		}
	}
	if wait > 0 {
		g.rateWaitHist.ObserveDuration(wait)
		g.sleep(wait)
	}
}

// backoff returns the jittered delay before retry number `attempt`:
// exponential base doubling with full jitter on the upper half, so
// synchronized retry storms decorrelate while the floor keeps every
// retry meaningfully spaced.
func (l *lane) backoff(attempt int) time.Duration {
	g := l.gw
	d := g.cfg.BackoffBase << (attempt - 1)
	if d > g.cfg.BackoffMax || d <= 0 {
		d = g.cfg.BackoffMax
	}
	g.jmu.Lock()
	j := g.jrng.Int63n(int64(d)/2 + 1)
	g.jmu.Unlock()
	return d/2 + time.Duration(j)
}

package modelserve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/tokens"
	"repro/internal/traffic"
)

// testPrompt builds a real code prompt for one traffic query so the
// simulated models recognize it.
func testPrompt(t testing.TB, id string) string {
	t.Helper()
	q, ok := queries.ByID(id)
	if !ok {
		t.Fatalf("unknown query %s", id)
	}
	g := traffic.Generate(traffic.Config{Nodes: 80, Edges: 80, Seed: 42})
	return prompt.BuildCodePrompt(traffic.NewWrapper(g), prompt.BackendNetworkX, q.Text)
}

// echoProvider answers every request with a response derived from the
// request, records batch sizes, and never fails.
type echoProvider struct {
	mu      sync.Mutex
	batches []int
}

func (p *echoProvider) Name() string { return "echo" }

func (p *echoProvider) GenerateBatch(model string, reqs []llm.Request) ([]*llm.Response, []error) {
	p.mu.Lock()
	p.batches = append(p.batches, len(reqs))
	p.mu.Unlock()
	resps := make([]*llm.Response, len(reqs))
	for i, req := range reqs {
		resps[i] = &llm.Response{Text: fmt.Sprintf("%s|%s|%d", model, req.Prompt, req.Attempt)}
	}
	return resps, make([]error, len(reqs))
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gw
}

func TestGatewayCoalescesWithoutCrossWiring(t *testing.T) {
	provider := &echoProvider{}
	gw := newTestGateway(t, Config{Provider: provider, BatchSize: 8, BatchWindow: 5 * time.Millisecond})
	const n = 64
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			req := llm.Request{Prompt: fmt.Sprintf("p%d", i), Attempt: i}
			resp, err := gw.Generate("m", req)
			if err != nil {
				errCh <- err
				return
			}
			if want := fmt.Sprintf("m|p%d|%d", i, i); resp.Text != want {
				errCh <- fmt.Errorf("request %d got response %q, want %q", i, resp.Text, want)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	stats := gw.Stats()
	if stats.Requests != n {
		t.Fatalf("stats.Requests = %d, want %d", stats.Requests, n)
	}
	if stats.ProviderCalls >= n {
		t.Fatalf("no coalescing: %d provider calls for %d requests", stats.ProviderCalls, n)
	}
	if stats.MaxBatch < 2 || stats.MaxBatch > 8 {
		t.Fatalf("max batch %d outside [2,8]", stats.MaxBatch)
	}
	for _, b := range provider.batches {
		if b > 8 {
			t.Fatalf("provider saw a batch of %d, cap is 8", b)
		}
	}
}

func TestGatewaySimMatchesDirectSim(t *testing.T) {
	gw := newTestGateway(t, Config{Provider: NewSimProvider(), BatchSize: 4, BatchWindow: time.Millisecond})
	prompts := []string{testPrompt(t, "ta-e1"), testPrompt(t, "ta-h6"), testPrompt(t, "ta-m3")}
	for _, model := range llm.ModelNames {
		direct, err := llm.NewSim(model)
		if err != nil {
			t.Fatal(err)
		}
		for attempt := 1; attempt <= 2; attempt++ {
			for _, p := range prompts {
				req := llm.Request{Prompt: p, Attempt: attempt}
				want, werr := direct.Generate(req)
				got, gerr := gw.Generate(model, req)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s attempt %d: error mismatch: direct %v, gateway %v", model, attempt, werr, gerr)
				}
				if werr == nil && *got != *want {
					t.Fatalf("%s attempt %d: response mismatch", model, attempt)
				}
			}
		}
	}
}

// TestGatewayRateLimiterWaits drives the request bucket with a fake clock:
// at 10 req/s with burst 2, the third immediate request must owe 100ms.
func TestGatewayRateLimiterWaits(t *testing.T) {
	now := time.Unix(0, 0)
	var slept atomic.Int64
	gw := newTestGateway(t, Config{Provider: &echoProvider{}, BatchSize: 1, BatchWindow: -1, RPS: 10, Burst: 2})
	gw.now = func() time.Time { return now }
	gw.sleep = func(d time.Duration) { slept.Add(int64(d)) }
	for i := 0; i < 4; i++ {
		if _, err := gw.Generate("m", llm.Request{Prompt: "p"}); err != nil {
			t.Fatal(err)
		}
	}
	stats := gw.Stats()
	if stats.RateWaits != 2 {
		t.Fatalf("RateWaits = %d, want 2 (burst 2 absorbs the first two)", stats.RateWaits)
	}
	// Debt-based bucket on a frozen clock: request 3 owes 100ms, request 4
	// owes 200ms.
	if want := int64(300 * time.Millisecond); slept.Load() != want {
		t.Fatalf("slept %v, want %v", time.Duration(slept.Load()), time.Duration(want))
	}
	if stats.RateWaited != time.Duration(slept.Load()) {
		t.Fatalf("RateWaited = %v, slept %v", stats.RateWaited, time.Duration(slept.Load()))
	}
}

// TestGatewayTokenBudget exercises the tokens/min bucket: one oversized
// prompt must overdraw the budget and record a wait.
func TestGatewayTokenBudget(t *testing.T) {
	now := time.Unix(0, 0)
	var slept atomic.Int64
	gw := newTestGateway(t, Config{Provider: &echoProvider{}, BatchSize: 1, BatchWindow: -1, TPM: 600})
	gw.now = func() time.Time { return now }
	gw.sleep = func(d time.Duration) { slept.Add(int64(d)) }
	// Budget is 10 tokens/sec with a burst of one batch's completion
	// reserve (512); two reserve-sized requests overdraw it.
	for i := 0; i < 2; i++ {
		if _, err := gw.Generate("m", llm.Request{Prompt: "hi"}); err != nil {
			t.Fatal(err)
		}
	}
	if stats := gw.Stats(); stats.RateWaits == 0 || slept.Load() == 0 {
		t.Fatalf("token budget never throttled: %+v, slept %v", stats, time.Duration(slept.Load()))
	}
}

func TestGatewayRetriesTransientFaults(t *testing.T) {
	chaos := &Chaos{Inner: &echoProvider{}, TransientFailures: 2}
	gw := newTestGateway(t, Config{Provider: chaos, BatchSize: 1, BatchWindow: -1,
		MaxRetries: 3, BackoffBase: time.Nanosecond, Seed: 1})
	resp, err := gw.Generate("m", llm.Request{Prompt: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "m|p|0" {
		t.Fatalf("unexpected response %q", resp.Text)
	}
	stats := gw.Stats()
	if stats.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", stats.Retries)
	}
	if stats.Failures != 0 {
		t.Fatalf("Failures = %d, want 0", stats.Failures)
	}
}

func TestGatewayRetryExhaustion(t *testing.T) {
	chaos := &Chaos{Inner: &echoProvider{}, TransientFailures: 10, TransientKind: KindRateLimited}
	gw := newTestGateway(t, Config{Provider: chaos, BatchSize: 1, BatchWindow: -1,
		MaxRetries: 2, BackoffBase: time.Nanosecond, Seed: 1})
	_, err := gw.Generate("m", llm.Request{Prompt: "p"})
	var pe *ProviderError
	if !errors.As(err, &pe) {
		t.Fatalf("want ProviderError, got %v", err)
	}
	if pe.Kind != KindRateLimited {
		t.Fatalf("Kind = %v, want %v", pe.Kind, KindRateLimited)
	}
	// 1 initial + 2 retries.
	if pe.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", pe.Attempts)
	}
	stats := gw.Stats()
	if stats.Retries != 2 || stats.Failures != 1 {
		t.Fatalf("stats = %+v, want 2 retries / 1 failure", stats)
	}
}

// TestGatewayTerminalPassthrough: request-level faults that are not
// transient provider trouble (the sims' token-window overflow) surface
// unwrapped and unretried.
func TestGatewayTerminalPassthrough(t *testing.T) {
	gw := newTestGateway(t, Config{Provider: NewSimProvider(), BatchSize: 1, BatchWindow: -1, BackoffBase: time.Nanosecond})
	huge := make([]byte, 80_000)
	for i := range huge {
		huge[i] = 'a' + byte(i%26)
		if i%6 == 5 {
			huge[i] = ' '
		}
	}
	_, err := gw.Generate("gpt-4", llm.Request{Prompt: string(huge)})
	var tl *tokens.ErrTokenLimit
	if !errors.As(err, &tl) {
		t.Fatalf("want ErrTokenLimit passthrough, got %v", err)
	}
	if stats := gw.Stats(); stats.Retries != 0 {
		t.Fatalf("token-limit fault was retried %d times", stats.Retries)
	}
}

func TestGatewayBackoffGrowsAndJitters(t *testing.T) {
	gw := newTestGateway(t, Config{Provider: &echoProvider{}, BackoffBase: 10 * time.Millisecond,
		BackoffMax: 80 * time.Millisecond, Seed: 7})
	l := &lane{gw: gw, model: "m"}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 5; attempt++ {
		d := l.backoff(attempt)
		base := gw.cfg.BackoffBase << (attempt - 1)
		if base > gw.cfg.BackoffMax {
			base = gw.cfg.BackoffMax
		}
		if d < base/2 || d > base {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base/2, base)
		}
		if attempt <= 3 && d <= prev/2 {
			t.Fatalf("attempt %d: backoff %v did not grow from %v", attempt, d, prev)
		}
		prev = d
	}
}

func TestGatewayRequiresProvider(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config without a provider")
	}
	if _, err := New(Config{Provider: &echoProvider{}, RPS: -1}); err == nil {
		t.Fatal("New accepted a negative rate limit")
	}
}

func TestChaosTerminalHook(t *testing.T) {
	boom := &ProviderError{Kind: KindBadRequest, Err: errors.New("boom")}
	chaos := &Chaos{Inner: &echoProvider{}, Terminal: func(model string, req llm.Request) error {
		if req.Prompt == "bad" {
			return boom
		}
		return nil
	}}
	gw := newTestGateway(t, Config{Provider: chaos, BatchSize: 1, BatchWindow: -1, BackoffBase: time.Nanosecond})
	if _, err := gw.Generate("m", llm.Request{Prompt: "ok"}); err != nil {
		t.Fatal(err)
	}
	_, err := gw.Generate("m", llm.Request{Prompt: "bad"})
	var pe *ProviderError
	if !errors.As(err, &pe) || pe.Kind != KindBadRequest {
		t.Fatalf("want terminal KindBadRequest, got %v", err)
	}
}

// TestGatewayStateSnapshot checks the diagnostic-bundle view: one entry per
// model lane, sorted by model name, with rate-bucket levels when limits are
// configured.
func TestGatewayStateSnapshot(t *testing.T) {
	gw := newTestGateway(t, Config{Provider: &echoProvider{}, BatchSize: 1, BatchWindow: -1, RPS: 100, TPM: 60000})
	for _, model := range []string{"zeta", "alpha"} {
		if _, err := gw.Generate(model, llm.Request{Prompt: "p"}); err != nil {
			t.Fatalf("Generate(%s): %v", model, err)
		}
	}
	st := gw.StateSnapshot()
	if st.Stats.Requests != 2 {
		t.Fatalf("snapshot stats requests = %d, want 2", st.Stats.Requests)
	}
	if len(st.Lanes) != 2 || st.Lanes[0].Model != "alpha" || st.Lanes[1].Model != "zeta" {
		t.Fatalf("lanes = %+v, want [alpha zeta] sorted", st.Lanes)
	}
	for _, l := range st.Lanes {
		if l.Queued != 0 {
			t.Fatalf("idle lane %s reports %d queued", l.Model, l.Queued)
		}
		if l.ReqBucket == nil || l.ReqBucket.Rate != 100 {
			t.Fatalf("lane %s request bucket = %+v, want rate 100", l.Model, l.ReqBucket)
		}
		if l.TokBucket == nil || l.TokBucket.Tokens >= l.TokBucket.Burst {
			t.Fatalf("lane %s token bucket undebited: %+v", l.Model, l.TokBucket)
		}
	}

	// An unlimited gateway omits the bucket views entirely.
	bare := newTestGateway(t, Config{Provider: &echoProvider{}, BatchSize: 1, BatchWindow: -1})
	if _, err := bare.Generate("m", llm.Request{Prompt: "p"}); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if l := bare.StateSnapshot().Lanes[0]; l.ReqBucket != nil || l.TokBucket != nil {
		t.Fatalf("unlimited lane carries bucket state: %+v", l)
	}
}

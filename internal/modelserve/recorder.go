package modelserve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"repro/internal/llm"
)

// Key returns the canonical content address of one generation request:
// the SHA-256 of (model, prompt, temperature, attempt). Attempt 0 aliases
// attempt 1 — the simulations and the wire format treat them identically,
// so the cache must too.
func Key(model string, req llm.Request) string {
	attempt := req.Attempt
	if attempt <= 0 {
		attempt = 1
	}
	h := sha256.New()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(req.Prompt))
	h.Write([]byte{0})
	h.Write([]byte(strconv.FormatFloat(req.Temperature, 'g', -1, 64)))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(attempt)))
	return hex.EncodeToString(h.Sum(nil))
}

// Entry is one recorded generation: the key fields (prompt by digest —
// prompts embed whole serialized graphs) plus the exact response. The
// response bytes are the determinism contract: replaying an entry yields
// a byte-identical llm.Response.
type Entry struct {
	Model            string  `json:"model"`
	PromptSHA256     string  `json:"prompt_sha256"`
	Temperature      float64 `json:"temperature"`
	Attempt          int     `json:"attempt"`
	Text             string  `json:"text"`
	PromptTokens     int     `json:"prompt_tokens"`
	CompletionTokens int     `json:"completion_tokens"`
}

// entryPath shards entries by the key's first byte so a full-matrix
// recording (thousands of entries) never piles one directory high.
func entryPath(dir, key string) string {
	return filepath.Join(dir, key[:2], key+".json")
}

// errCorruptEntry marks a cache file that exists on disk but cannot be
// trusted (truncated, hand-mangled, or bit-rotted). Distinguishing it
// from a plain miss lets the recorder repair the entry and replay report
// it honestly instead of claiming "never recorded".
var errCorruptEntry = errors.New("corrupt cache entry")

func readEntry(dir, key string) (*Entry, error) {
	path := entryPath(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("modelserve: %w %s: %v", errCorruptEntry, path, err)
	}
	if e.Model == "" || e.PromptSHA256 == "" {
		return nil, fmt.Errorf("modelserve: %w %s: key fields missing (truncated write?)", errCorruptEntry, path)
	}
	return &e, nil
}

// writeEntry persists one entry atomically (temp file + rename), so a
// crashed recording never leaves a half-written entry for replay to
// choke on.
func writeEntry(dir, key string, e *Entry) error {
	path := entryPath(dir, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func (e *Entry) response() *llm.Response {
	return &llm.Response{Text: e.Text, PromptTokens: e.PromptTokens, CompletionTokens: e.CompletionTokens}
}

// Recorder wraps a provider and persists every successful generation to
// Dir. Requests already on disk are served from the cache without
// touching the inner provider, so an interrupted recording resumes where
// it stopped — and a completed one serves the whole matrix offline.
type Recorder struct {
	inner Provider
	dir   string

	hits    atomic.Int64
	misses  atomic.Int64
	writes  atomic.Int64
	repairs atomic.Int64
}

// NewRecorder creates a recorder writing under dir.
func NewRecorder(inner Provider, dir string) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelserve: record dir: %w", err)
	}
	return &Recorder{inner: inner, dir: dir}, nil
}

// Name implements Provider.
func (r *Recorder) Name() string { return "record(" + r.inner.Name() + ")" }

// Unwrap exposes the wrapped provider (gateway stats traversal).
func (r *Recorder) Unwrap() Provider { return r.inner }

func (r *Recorder) cacheStats() (hits, misses, writes int64) {
	return r.hits.Load(), r.misses.Load(), r.writes.Load()
}

// GenerateBatch implements Provider: cached entries answer immediately,
// the misses go to the inner provider in one sub-batch, and every fresh
// success is persisted before it is returned.
func (r *Recorder) GenerateBatch(model string, reqs []llm.Request) ([]*llm.Response, []error) {
	resps := make([]*llm.Response, len(reqs))
	errs := make([]error, len(reqs))
	keys := make([]string, len(reqs))
	var fwd []int
	for i, req := range reqs {
		keys[i] = Key(model, req)
		e, err := readEntry(r.dir, keys[i])
		if err == nil {
			r.hits.Add(1)
			resps[i] = e.response()
			continue
		}
		if errors.Is(err, errCorruptEntry) {
			// A damaged entry is not fatal while recording: warn, count
			// the repair, and fall through to re-record — the fresh write
			// replaces the bad file atomically.
			log.Printf("modelserve: re-recording %s", err)
			r.repairs.Add(1)
		}
		r.misses.Add(1)
		fwd = append(fwd, i)
	}
	if len(fwd) == 0 {
		return resps, errs
	}
	sub := make([]llm.Request, len(fwd))
	for j, i := range fwd {
		sub[j] = reqs[i]
	}
	subResps, subErrs := r.inner.GenerateBatch(model, sub)
	for j, i := range fwd {
		resps[i], errs[i] = subResps[j], subErrs[j]
		if errs[i] != nil || resps[i] == nil {
			continue
		}
		req := reqs[i]
		attempt := req.Attempt
		if attempt <= 0 {
			attempt = 1
		}
		promptSHA := sha256.Sum256([]byte(req.Prompt))
		e := &Entry{
			Model:            model,
			PromptSHA256:     hex.EncodeToString(promptSHA[:]),
			Temperature:      req.Temperature,
			Attempt:          attempt,
			Text:             resps[i].Text,
			PromptTokens:     resps[i].PromptTokens,
			CompletionTokens: resps[i].CompletionTokens,
		}
		// Concurrent lanes may write distinct keys freely, and even a
		// same-key race is safe: writeEntry goes through a unique temp
		// file and an atomic rename, so the last complete entry wins.
		if err := writeEntry(r.dir, keys[i], e); err != nil {
			resps[i] = nil
			errs[i] = &ProviderError{Provider: r.Name(), Model: model, Kind: KindBadResponse,
				Err: fmt.Errorf("recording failed: %w", err)}
		} else {
			r.writes.Add(1)
		}
	}
	return resps, errs
}

// Replay serves generations exclusively from a recorded cache directory.
// A request that was never recorded is a terminal KindNotFound failure —
// replay runs must be exact, not best-effort, or the byte-identical
// contract silently degrades.
type Replay struct {
	dir string

	hits   atomic.Int64
	misses atomic.Int64
}

// NewReplay opens a replay provider over dir, validating that the
// directory exists.
func NewReplay(dir string) (*Replay, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("modelserve: replay dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("modelserve: replay path %s is not a directory", dir)
	}
	return &Replay{dir: dir}, nil
}

// Name implements Provider.
func (r *Replay) Name() string { return "replay" }

func (r *Replay) cacheStats() (hits, misses, writes int64) {
	return r.hits.Load(), r.misses.Load(), 0
}

// GenerateBatch implements Provider.
func (r *Replay) GenerateBatch(model string, reqs []llm.Request) ([]*llm.Response, []error) {
	resps := make([]*llm.Response, len(reqs))
	errs := make([]error, len(reqs))
	for i, req := range reqs {
		key := Key(model, req)
		e, err := readEntry(r.dir, key)
		if err != nil {
			r.misses.Add(1)
			if errors.Is(err, errCorruptEntry) {
				// Replay has no provider to re-record from; surface the
				// corruption as what it is rather than a phantom miss.
				errs[i] = &ProviderError{Provider: r.Name(), Model: model, Kind: KindBadResponse,
					Err: fmt.Errorf("recording for key %s unusable: %w", key[:12], err)}
				continue
			}
			errs[i] = &ProviderError{Provider: r.Name(), Model: model, Kind: KindNotFound,
				Err: fmt.Errorf("no recording for key %s (attempt %d, temperature %g): %w",
					key[:12], req.Attempt, req.Temperature, err)}
			continue
		}
		r.hits.Add(1)
		resps[i] = e.response()
	}
	return resps, errs
}

package modelserve

import (
	"bytes"
	"errors"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/llm"
)

func TestKeyNormalizesAttemptZero(t *testing.T) {
	a := Key("m", llm.Request{Prompt: "p", Attempt: 0})
	b := Key("m", llm.Request{Prompt: "p", Attempt: 1})
	c := Key("m", llm.Request{Prompt: "p", Attempt: 2})
	if a != b {
		t.Fatal("attempt 0 and 1 must share a key (both mean the first sample)")
	}
	if a == c {
		t.Fatal("distinct attempts must not collide")
	}
	if Key("m", llm.Request{Prompt: "p", Temperature: 0.7}) == a {
		t.Fatal("temperature must be part of the key")
	}
	if Key("m2", llm.Request{Prompt: "p"}) == a {
		t.Fatal("model must be part of the key")
	}
}

func TestRecordThenReplayIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(&echoProvider{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []llm.Request{
		{Prompt: "alpha"},
		{Prompt: "beta", Temperature: 0.7, Attempt: 3},
	}
	want, errs := rec.GenerateBatch("m", reqs)
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
	replay, err := NewReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, errs := replay.GenerateBatch("m", reqs)
	for i := range reqs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if *got[i] != *want[i] {
			t.Fatalf("request %d: replay %+v differs from recording %+v", i, got[i], want[i])
		}
	}
	if h, m, _ := replay.cacheStats(); h != 2 || m != 0 {
		t.Fatalf("replay stats hits=%d misses=%d, want 2/0", h, m)
	}
}

func TestRecorderServesHitsWithoutInnerCalls(t *testing.T) {
	dir := t.TempDir()
	inner := &echoProvider{}
	rec, err := NewRecorder(inner, dir)
	if err != nil {
		t.Fatal(err)
	}
	req := []llm.Request{{Prompt: "p"}}
	if _, errs := rec.GenerateBatch("m", req); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if _, errs := rec.GenerateBatch("m", req); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if calls := len(inner.batches); calls != 1 {
		t.Fatalf("inner provider called %d times, want 1 (second call is a cache hit)", calls)
	}
	if h, m, w := rec.cacheStats(); h != 1 || m != 1 || w != 1 {
		t.Fatalf("recorder stats hits=%d misses=%d writes=%d, want 1/1/1", h, m, w)
	}
}

func TestReplayMissIsTerminalNotFound(t *testing.T) {
	replay, err := NewReplay(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, errs := replay.GenerateBatch("m", []llm.Request{{Prompt: "never recorded"}})
	var pe *ProviderError
	if !errors.As(errs[0], &pe) || pe.Kind != KindNotFound {
		t.Fatalf("want KindNotFound, got %v", errs[0])
	}
	if pe.Kind.Retryable() {
		t.Fatal("a replay miss must be terminal")
	}
}

func TestReplayRejectsMissingDir(t *testing.T) {
	if _, err := NewReplay(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("NewReplay accepted a missing directory")
	}
}

func TestReplayCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(&echoProvider{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	req := llm.Request{Prompt: "p"}
	if _, errs := rec.GenerateBatch("m", []llm.Request{req}); errs[0] != nil {
		t.Fatal(errs[0])
	}
	key := Key("m", req)
	if err := os.WriteFile(entryPath(dir, key), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	replay, err := NewReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, errs := replay.GenerateBatch("m", []llm.Request{req})
	var pe *ProviderError
	if !errors.As(errs[0], &pe) || pe.Kind != KindBadResponse {
		t.Fatalf("corrupt entry error = %v, want KindBadResponse (not a phantom miss)", errs[0])
	}
}

// TestRecorderRepairsCorruptEntries injects every corruption class a cache
// file can suffer — garbage bytes, truncation mid-JSON, and valid JSON with
// the key fields gone — and checks the recorder warns, re-records from the
// inner provider, and leaves a clean entry behind.
func TestRecorderRepairsCorruptEntries(t *testing.T) {
	corruptions := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("\x00\xff not even close")},
		{"truncated", []byte(`{"model":"m","prompt_sha256":"abc","text":"cut of`)},
		{"empty-object", []byte(`{}`)},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inner := &echoProvider{}
			rec, err := NewRecorder(inner, dir)
			if err != nil {
				t.Fatal(err)
			}
			req := []llm.Request{{Prompt: "p"}}
			want, errs := rec.GenerateBatch("m", req)
			if errs[0] != nil {
				t.Fatal(errs[0])
			}

			var warnings bytes.Buffer
			log.SetOutput(&warnings)
			defer log.SetOutput(os.Stderr)
			if err := os.WriteFile(entryPath(dir, Key("m", req[0])), tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			got, errs := rec.GenerateBatch("m", req)
			if errs[0] != nil {
				t.Fatalf("corrupt entry was not repaired: %v", errs[0])
			}
			if *got[0] != *want[0] {
				t.Fatalf("repaired response %+v differs from original %+v", got[0], want[0])
			}
			if !strings.Contains(warnings.String(), "re-recording") {
				t.Fatalf("no warning logged for corrupt entry; log: %q", warnings.String())
			}
			if rec.repairs.Load() != 1 {
				t.Fatalf("repairs = %d, want 1", rec.repairs.Load())
			}
			if calls := len(inner.batches); calls != 2 {
				t.Fatalf("inner provider called %d times, want 2 (initial record + repair)", calls)
			}

			// The repair must leave a servable entry: the next call is a
			// pure cache hit.
			if _, errs := rec.GenerateBatch("m", req); errs[0] != nil {
				t.Fatal(errs[0])
			}
			if calls := len(inner.batches); calls != 2 {
				t.Fatalf("inner provider called %d times after repair, want 2 (third call is a hit)", calls)
			}
		})
	}
}

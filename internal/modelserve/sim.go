package modelserve

import (
	"sync"

	"repro/internal/llm"
)

// SimProvider serves the calibrated simulated models (internal/llm) behind
// the Provider interface — the zero-infrastructure backend every test and
// benchmark runs against, and the recording source for replay fixtures.
// One SimModel is built lazily per model name; generations are pure
// functions of the request, so batch items execute in parallel.
type SimProvider struct {
	mu     sync.Mutex
	models map[string]*llm.SimModel
}

// NewSimProvider creates an empty provider; models materialize on first
// use.
func NewSimProvider() *SimProvider {
	return &SimProvider{models: map[string]*llm.SimModel{}}
}

// Name implements Provider.
func (p *SimProvider) Name() string { return "sim" }

func (p *SimProvider) model(name string) (*llm.SimModel, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.models[name]; ok {
		return m, nil
	}
	m, err := llm.NewSim(name)
	if err != nil {
		return nil, err
	}
	p.models[name] = m
	return m, nil
}

// GenerateBatch implements Provider. Simulated generation is CPU-bound
// and read-only, so the batch fans out over goroutines — the gateway
// serializes provider calls per model, and parallel batch items keep the
// worker pool's throughput when the whole matrix funnels through one
// gateway.
func (p *SimProvider) GenerateBatch(model string, reqs []llm.Request) ([]*llm.Response, []error) {
	resps := make([]*llm.Response, len(reqs))
	errs := make([]error, len(reqs))
	m, err := p.model(model)
	if err != nil {
		for i := range errs {
			errs[i] = &ProviderError{Provider: p.Name(), Model: model, Kind: KindBadRequest, Err: err}
		}
		return resps, errs
	}
	if len(reqs) == 1 {
		resps[0], errs[0] = m.Generate(reqs[0])
		return resps, errs
	}
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	for i := range reqs {
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = m.Generate(reqs[i])
		}(i)
	}
	wg.Wait()
	return resps, errs
}

// Package modelserve is the model-serving gateway between the framework's
// llm.Model interface and any generation provider (the "swappable LLM" box
// of Figure 2, built out for production traffic). It owns three concerns
// the calibrated simulations never needed:
//
//   - Providers. A Provider answers batched generation requests for named
//     models. Three implementations ship: SimProvider wraps the existing
//     calibrated simulations, HTTPProvider speaks the OpenAI-compatible
//     chat-completions wire format against a configurable base URL, and
//     Chaos injects deterministic transient/terminal faults for testing
//     the failure paths.
//
//   - Scheduling. Gateway coalesces concurrent requests from the
//     evaluation worker pool into per-model batches, applies token-bucket
//     rate limits (requests/sec and tokens/min), and retries transient
//     provider failures with exponential backoff and seeded jitter.
//     Terminal failures carry a machine-readable ErrKind so the evaluator
//     can classify provider flakiness into its Table 5 error reports.
//
//   - Record/replay. Recorder persists every successful generation as a
//     content-addressed JSON entry keyed by (model, prompt, temperature,
//     attempt); Replay serves a recorded run back byte-identically, the
//     same frozen-master determinism contract the graph and traffic
//     layers honor. A recorded live run replays through the whole
//     evaluation matrix with zero provider calls.
//
// The package sits below internal/llm's Provider seam: Gateway implements
// llm.Provider, and llm.NewProviderModel adapts it back to the per-model
// Model interface everything downstream consumes.
package modelserve

import (
	"fmt"

	"repro/internal/llm"
)

// Provider is a downstream generation backend. The gateway hands it
// coalesced batches; implementations answer each request independently
// (slices are index-aligned with reqs, and exactly one of resps[i] /
// errs[i] is non-nil per request).
type Provider interface {
	Name() string
	GenerateBatch(model string, reqs []llm.Request) (resps []*llm.Response, errs []error)
}

// ErrKind classifies a provider failure for retry policy and for the
// evaluator's Table 5 error-category reports.
type ErrKind int

const (
	// KindUnavailable is a transient provider fault (timeouts, transport
	// errors, 5xx). Retryable.
	KindUnavailable ErrKind = iota
	// KindRateLimited is a provider-side throttle (HTTP 429). Retryable.
	KindRateLimited
	// KindTokenLimit is a context-window overflow. Terminal.
	KindTokenLimit
	// KindBadRequest is a request the provider rejected (other 4xx).
	// Terminal.
	KindBadRequest
	// KindBadResponse is a reply the adapter could not parse. Terminal.
	KindBadResponse
	// KindNotFound is a replay-cache miss: the request was never recorded.
	// Terminal.
	KindNotFound
)

// String renders the kind for error text and reports.
func (k ErrKind) String() string {
	switch k {
	case KindUnavailable:
		return "unavailable"
	case KindRateLimited:
		return "rate-limited"
	case KindTokenLimit:
		return "token-limit"
	case KindBadRequest:
		return "bad-request"
	case KindBadResponse:
		return "bad-response"
	case KindNotFound:
		return "not-found"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Retryable reports whether the gateway should retry failures of this
// kind.
func (k ErrKind) Retryable() bool {
	return k == KindUnavailable || k == KindRateLimited
}

// ProviderError is a classified provider failure. The gateway wraps every
// terminal failure it surfaces in one, recording how many attempts were
// spent; providers construct them with Attempts 0 (one attempt implied).
type ProviderError struct {
	Provider string
	Model    string
	Kind     ErrKind
	Status   int   // HTTP status when applicable, else 0
	Attempts int   // provider calls spent before giving up (0 = 1)
	Err      error // underlying cause, if any
}

// Error implements error.
func (e *ProviderError) Error() string {
	msg := fmt.Sprintf("modelserve: provider %s: model %s: %s", e.Provider, e.Model, e.Kind)
	if e.Status != 0 {
		msg += fmt.Sprintf(" (HTTP %d)", e.Status)
	}
	if e.Attempts > 1 {
		msg += fmt.Sprintf(" after %d attempts", e.Attempts)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ProviderError) Unwrap() error { return e.Err }

// retryable reports whether err is a transient provider failure the
// gateway may retry. Anything that is not a ProviderError with a
// retryable kind — including provider-agnostic errors like
// tokens.ErrTokenLimit from the simulations — is terminal.
func retryable(err error) bool {
	if pe, ok := err.(*ProviderError); ok {
		return pe.Kind.Retryable()
	}
	return false
}

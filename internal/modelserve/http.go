package modelserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/llm"
	"repro/internal/tokens"
)

// HTTPProvider is a generic chat-completions adapter speaking the
// OpenAI-compatible wire format: POST {BaseURL}{Path} with a JSON body of
// {model, messages, temperature, max_tokens} and a reply of
// {choices[].message.content, usage}. Any gateway-fronted serving stack
// exposing that shape (OpenAI, Azure OpenAI, vLLM, llama.cpp server, ...)
// plugs in via BaseURL and Headers; nothing in the repo issues live calls
// — tests drive it against an in-process httptest server.
type HTTPProvider struct {
	// BaseURL is the API root, e.g. "https://api.openai.com/v1" or a
	// local serving endpoint. Required.
	BaseURL string
	// Path is the completions route appended to BaseURL (default
	// "/chat/completions").
	Path string
	// Headers are added to every request (e.g. "Authorization").
	Headers map[string]string
	// Client overrides the HTTP client (default: 60s timeout).
	Client *http.Client
	// MaxCompletionTokens is sent as max_tokens (default 512, matching
	// the simulations' reply reserve).
	MaxCompletionTokens int
}

// Name implements Provider.
func (p *HTTPProvider) Name() string { return "http" }

// chatRequest is the OpenAI-compatible request body.
type chatRequest struct {
	Model       string        `json:"model"`
	Messages    []chatMessage `json:"messages"`
	Temperature float64       `json:"temperature"`
	MaxTokens   int           `json:"max_tokens"`
}

type chatMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// chatResponse is the subset of the reply the adapter consumes.
type chatResponse struct {
	Choices []struct {
		Message chatMessage `json:"message"`
	} `json:"choices"`
	Usage struct {
		PromptTokens     int `json:"prompt_tokens"`
		CompletionTokens int `json:"completion_tokens"`
	} `json:"usage"`
	Error *struct {
		Message string `json:"message"`
		Code    string `json:"code"`
	} `json:"error"`
}

func (p *HTTPProvider) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return &http.Client{Timeout: 60 * time.Second}
}

func (p *HTTPProvider) url() string {
	path := p.Path
	if path == "" {
		path = "/chat/completions"
	}
	return strings.TrimSuffix(p.BaseURL, "/") + path
}

// GenerateBatch implements Provider. The wire format has no batch
// endpoint, so a coalesced batch becomes concurrent requests over the
// client's keep-alive pool — the batching win is connection reuse and
// amortized rate-limiter work, not a combined payload.
func (p *HTTPProvider) GenerateBatch(model string, reqs []llm.Request) ([]*llm.Response, []error) {
	resps := make([]*llm.Response, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	for i := range reqs {
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = p.generate(model, reqs[i])
		}(i)
	}
	wg.Wait()
	return resps, errs
}

func (p *HTTPProvider) generate(model string, req llm.Request) (*llm.Response, error) {
	fail := func(kind ErrKind, status int, err error) (*llm.Response, error) {
		return nil, &ProviderError{Provider: p.Name(), Model: model, Kind: kind, Status: status, Err: err}
	}
	if p.BaseURL == "" {
		return fail(KindBadRequest, 0, fmt.Errorf("HTTPProvider.BaseURL is empty"))
	}
	body, err := json.Marshal(chatRequest{
		Model:       model,
		Messages:    []chatMessage{{Role: "user", Content: req.Prompt}},
		Temperature: req.Temperature,
		MaxTokens:   p.maxTokens(),
	})
	if err != nil {
		return fail(KindBadRequest, 0, err)
	}
	hreq, err := http.NewRequest(http.MethodPost, p.url(), bytes.NewReader(body))
	if err != nil {
		return fail(KindBadRequest, 0, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range p.Headers {
		hreq.Header.Set(k, v)
	}
	hresp, err := p.client().Do(hreq)
	if err != nil {
		// Transport failures (connection refused, timeout) are the
		// transient class the gateway's retry loop exists for.
		return fail(KindUnavailable, 0, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<22))
	if err != nil {
		return fail(KindUnavailable, hresp.StatusCode, err)
	}
	if hresp.StatusCode != http.StatusOK {
		return fail(classifyStatus(hresp.StatusCode, data), hresp.StatusCode,
			fmt.Errorf("%s", strings.TrimSpace(truncateBody(data))))
	}
	var cr chatResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		return fail(KindBadResponse, hresp.StatusCode, err)
	}
	if cr.Error != nil {
		return fail(KindBadResponse, hresp.StatusCode, fmt.Errorf("%s", cr.Error.Message))
	}
	if len(cr.Choices) == 0 {
		return fail(KindBadResponse, hresp.StatusCode, fmt.Errorf("reply carries no choices"))
	}
	out := &llm.Response{
		Text:             cr.Choices[0].Message.Content,
		PromptTokens:     cr.Usage.PromptTokens,
		CompletionTokens: cr.Usage.CompletionTokens,
	}
	// Servers that omit usage still feed the cost model: fall back to the
	// local estimator the rest of the pipeline already uses.
	if out.PromptTokens == 0 {
		out.PromptTokens = tokens.Count(req.Prompt)
	}
	if out.CompletionTokens == 0 {
		out.CompletionTokens = tokens.Count(out.Text)
	}
	return out, nil
}

func (p *HTTPProvider) maxTokens() int {
	if p.MaxCompletionTokens > 0 {
		return p.MaxCompletionTokens
	}
	return completionReserve
}

// classifyStatus maps an HTTP error status (plus its body, for the
// context-window case the wire format only signals textually) onto the
// gateway's fault taxonomy.
func classifyStatus(status int, body []byte) ErrKind {
	switch {
	case status == http.StatusTooManyRequests:
		return KindRateLimited
	case status == http.StatusRequestTimeout || status >= 500:
		return KindUnavailable
	case status >= 400:
		lower := strings.ToLower(string(body))
		if strings.Contains(lower, "context_length") || strings.Contains(lower, "context length") ||
			strings.Contains(lower, "maximum context") {
			return KindTokenLimit
		}
		return KindBadRequest
	default:
		return KindBadResponse
	}
}

func truncateBody(data []byte) string {
	const n = 240
	if len(data) <= n {
		return string(data)
	}
	return string(data[:n]) + "..."
}

package modelserve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
)

// chatServer is a minimal OpenAI-compatible endpoint for adapter tests.
func chatServer(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv
}

func TestHTTPProviderSuccess(t *testing.T) {
	var gotAuth atomic.Value
	srv := chatServer(t, func(w http.ResponseWriter, r *http.Request) {
		gotAuth.Store(r.Header.Get("Authorization"))
		if r.URL.Path != "/v1/chat/completions" {
			t.Errorf("path = %s", r.URL.Path)
		}
		var req chatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		if req.Model != "gpt-4" || len(req.Messages) != 1 || req.Messages[0].Role != "user" {
			t.Errorf("unexpected request body %+v", req)
		}
		if req.MaxTokens != completionReserve {
			t.Errorf("max_tokens = %d, want %d", req.MaxTokens, completionReserve)
		}
		json.NewEncoder(w).Encode(map[string]any{
			"choices": []map[string]any{{"message": map[string]any{"role": "assistant", "content": "return 42"}}},
			"usage":   map[string]any{"prompt_tokens": 10, "completion_tokens": 3},
		})
	})
	p := &HTTPProvider{BaseURL: srv.URL + "/v1", Headers: map[string]string{"Authorization": "Bearer k"}}
	resps, errs := p.GenerateBatch("gpt-4", []llm.Request{{Prompt: "q", Temperature: 0.5}})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if resps[0].Text != "return 42" || resps[0].PromptTokens != 10 || resps[0].CompletionTokens != 3 {
		t.Fatalf("response %+v", resps[0])
	}
	if gotAuth.Load() != "Bearer k" {
		t.Fatalf("Authorization header not sent: %v", gotAuth.Load())
	}
}

func TestHTTPProviderFallsBackToLocalTokenCounts(t *testing.T) {
	srv := chatServer(t, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"choices": []map[string]any{{"message": map[string]any{"content": "hello world"}}},
		})
	})
	p := &HTTPProvider{BaseURL: srv.URL}
	resps, errs := p.GenerateBatch("m", []llm.Request{{Prompt: "some prompt text"}})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if resps[0].PromptTokens == 0 || resps[0].CompletionTokens == 0 {
		t.Fatalf("token fallback missing: %+v", resps[0])
	}
}

func TestHTTPProviderStatusClassification(t *testing.T) {
	cases := []struct {
		status int
		body   string
		kind   ErrKind
	}{
		{http.StatusTooManyRequests, `{"error":{"message":"slow down"}}`, KindRateLimited},
		{http.StatusInternalServerError, "oops", KindUnavailable},
		{http.StatusBadRequest, `{"error":{"code":"context_length_exceeded","message":"too long"}}`, KindTokenLimit},
		{http.StatusBadRequest, `{"error":{"message":"bad model"}}`, KindBadRequest},
		{http.StatusUnauthorized, `{"error":{"message":"no key"}}`, KindBadRequest},
	}
	for _, tc := range cases {
		srv := chatServer(t, func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(tc.status)
			w.Write([]byte(tc.body))
		})
		p := &HTTPProvider{BaseURL: srv.URL}
		_, errs := p.GenerateBatch("m", []llm.Request{{Prompt: "q"}})
		var pe *ProviderError
		if !errors.As(errs[0], &pe) {
			t.Fatalf("status %d: want ProviderError, got %v", tc.status, errs[0])
		}
		if pe.Kind != tc.kind {
			t.Errorf("status %d: kind %v, want %v", tc.status, pe.Kind, tc.kind)
		}
		if pe.Status != tc.status {
			t.Errorf("status %d: recorded status %d", tc.status, pe.Status)
		}
	}
}

func TestHTTPProviderBadReplies(t *testing.T) {
	for name, body := range map[string]string{
		"not json":   "<html>oops</html>",
		"no choices": `{"choices":[]}`,
		"api error":  `{"error":{"message":"internal"}}`,
	} {
		srv := chatServer(t, func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(body))
		})
		p := &HTTPProvider{BaseURL: srv.URL}
		_, errs := p.GenerateBatch("m", []llm.Request{{Prompt: "q"}})
		var pe *ProviderError
		if !errors.As(errs[0], &pe) || pe.Kind != KindBadResponse {
			t.Errorf("%s: want KindBadResponse, got %v", name, errs[0])
		}
	}
}

func TestHTTPProviderTransportFailureIsRetryable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // connection refused from here on
	p := &HTTPProvider{BaseURL: srv.URL, Client: &http.Client{Timeout: time.Second}}
	_, errs := p.GenerateBatch("m", []llm.Request{{Prompt: "q"}})
	var pe *ProviderError
	if !errors.As(errs[0], &pe) || pe.Kind != KindUnavailable {
		t.Fatalf("want retryable KindUnavailable, got %v", errs[0])
	}
	if !pe.Kind.Retryable() {
		t.Fatal("transport failures must be retryable")
	}
}

// TestHTTPProviderThroughGateway retries a flaky endpoint end to end: two
// 503s then success.
func TestHTTPProviderThroughGateway(t *testing.T) {
	var calls atomic.Int64
	srv := chatServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"choices": []map[string]any{{"message": map[string]any{"content": "ok"}}},
			"usage":   map[string]any{"prompt_tokens": 1, "completion_tokens": 1},
		})
	})
	gw, err := New(Config{Provider: &HTTPProvider{BaseURL: srv.URL}, BatchSize: 1, BatchWindow: -1,
		MaxRetries: 3, BackoffBase: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	model := llm.NewProviderModel(gw, "m")
	resp, err := model.Generate(llm.Request{Prompt: "q"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "ok" {
		t.Fatalf("text %q", resp.Text)
	}
	if stats := gw.Stats(); stats.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", stats.Retries)
	}
}

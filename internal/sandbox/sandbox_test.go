package sandbox

import (
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/nql"
	"repro/internal/nqlbind"
)

func TestRunSuccess(t *testing.T) {
	res := Run("return 1 + 2", nil, DefaultPolicy)
	if !res.OK() || res.Value != int64(3) {
		t.Fatalf("res = %+v", res)
	}
	if res.Duration <= 0 {
		t.Fatal("duration not recorded")
	}
}

func TestRunCapturesStdout(t *testing.T) {
	res := Run(`print("inspecting", 42)`, nil, DefaultPolicy)
	if res.Stdout != "inspecting 42\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestRunSyntaxError(t *testing.T) {
	res := Run("let = broken", nil, DefaultPolicy)
	if res.OK() || res.ErrClass != "syntax" {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunRuntimeErrorClass(t *testing.T) {
	res := Run("return ghost()", nil, DefaultPolicy)
	if res.OK() || res.ErrClass != "name" {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunawayContained(t *testing.T) {
	policy := DefaultPolicy
	policy.MaxSteps = 10_000
	start := time.Now()
	res := Run("while true { }", nil, policy)
	if res.OK() || res.ErrClass != "limit" {
		t.Fatalf("res = %+v", res)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("containment too slow")
	}
}

func TestWallClockContained(t *testing.T) {
	policy := DefaultPolicy
	policy.MaxDuration = 20 * time.Millisecond
	policy.MaxSteps = 1 << 60
	res := Run("while true { }", nil, policy)
	if res.OK() || res.ErrClass != "limit" {
		t.Fatalf("res = %+v", res)
	}
}

func TestGlobalsIsolation(t *testing.T) {
	// A generated program mutating its graph must not touch the caller's
	// graph when the caller passes a clone — the sandbox contract.
	g := graph.New()
	g.AddNode("a", graph.Attrs{"v": 1})
	clone := g.Clone()
	res := Run(`graph.set_node_attr("a", "v", 999)`, nqlbind.Globals(clone, nil), DefaultPolicy)
	if !res.OK() {
		t.Fatal(res.Err)
	}
	if g.NodeAttrs("a")["v"] != int64(1) {
		t.Fatal("caller graph mutated through sandbox")
	}
	if clone.NodeAttrs("a")["v"] != int64(999) {
		t.Fatal("clone should carry the mutation")
	}
}

func TestNoHostIO(t *testing.T) {
	// The interpreter exposes no file or network bindings: common host
	// escape attempts are name errors.
	for _, src := range []string{
		`open("/etc/passwd")`,
		`os.system("rm -rf /")`,
		`import("net")`,
		`exec("ls")`,
	} {
		res := Run(src, nil, DefaultPolicy)
		if res.OK() {
			t.Errorf("%q unexpectedly succeeded", src)
			continue
		}
		if res.ErrClass != "name" && res.ErrClass != "syntax" {
			t.Errorf("%q class = %s", src, res.ErrClass)
		}
	}
}

func TestCheckSyntax(t *testing.T) {
	if err := CheckSyntax("let x = 1\nreturn x"); err != nil {
		t.Fatal(err)
	}
	err := CheckSyntax("let x = (")
	if err == nil {
		t.Fatal("expected syntax error")
	}
	if !strings.Contains(err.Error(), "syntax") {
		t.Fatalf("err = %v", err)
	}
}

func TestResultValueTypes(t *testing.T) {
	res := Run(`return {"k": [1, 2.5, "s"]}`, nil, DefaultPolicy)
	if !res.OK() {
		t.Fatal(res.Err)
	}
	if nql.Repr(res.Value) != `{"k": [1, 2.5, "s"]}` {
		t.Fatalf("value = %s", nql.Repr(res.Value))
	}
}

func TestVet(t *testing.T) {
	diags, err := Vet("let x = 1\nreturn x")
	if err != nil || len(diags) != 0 {
		t.Fatalf("clean program: diags=%v err=%v", diags, err)
	}
	diags, err = Vet("return 1 / 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Code != "NQ301" {
		t.Fatalf("diags = %v, want one NQ301", diags)
	}
	if _, err := Vet("let x = ("); err == nil {
		t.Fatal("expected syntax error")
	}
}

// TestVetSharesCache: Vet and Compile must hit the same cache entry (one
// parse, one analysis) and Vet must return the identical diagnostics
// slice on repeat calls.
func TestVetSharesCache(t *testing.T) {
	src := "return 2 % 0"
	d1, err := Vet(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Vet(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != 1 || len(d2) != 1 || d1[0] != d2[0] {
		t.Fatalf("cached diagnostics diverged: %v vs %v", d1, d2)
	}
	if prog == nil {
		t.Fatal("nil program")
	}
}

// TestVetStampsEffects: compiling through the sandbox must leave lambda
// effect stamps on the shared AST for the federated planner to read.
func TestVetStampsEffects(t *testing.T) {
	src := `let p = fn(r) => get(r, "kind", "") == "x"` + "\nreturn p"
	if _, err := Vet(src); err != nil {
		t.Fatal(err)
	}
	res := Run(src, nil, DefaultPolicy)
	if !res.OK() {
		t.Fatal(res.Err)
	}
	cl, ok := res.Value.(*nql.Closure)
	if !ok {
		t.Fatalf("result %T, want closure", res.Value)
	}
	if e := cl.Effect(); !e.Pure() || !e.RowTotal() {
		t.Errorf("closure effect %b: want pure and row-total", e)
	}
}

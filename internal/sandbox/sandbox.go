// Package sandbox executes LLM-generated NQL programs in isolation
// (framework box 5 in the paper). The sandbox owns the resource budget,
// captures stdout, recovers panics from host bindings, and — critically —
// runs code against *cloned* state so a buggy generated program can never
// corrupt the golden copies the evaluator compares against. Host I/O is
// impossible by construction: the interpreter has no file, network or
// process bindings.
package sandbox

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nql"
	"repro/internal/nql/analysis"
)

// Policy configures a sandboxed execution.
type Policy struct {
	MaxSteps    int
	MaxDepth    int
	MaxAllocs   int
	MaxDuration time.Duration

	// Context, when non-nil, propagates the caller's cancellation and
	// deadline into the run: the interpreter polls it at every dispatch
	// quantum and the cancellable host bindings (federated plans, SQL)
	// thread it through their own row-loop checkpoints. A cancelled run
	// fails with an nql.ErrCancel-class error wrapping ctx.Err().
	Context context.Context

	// Profile, when non-nil, collects the VM's opcode-class and builtin
	// time/alloc profile for this run (strictly opt-in; see
	// nql.VMProfile). Policy stays comparable — the field is a pointer.
	Profile *nql.VMProfile
}

// DefaultPolicy matches nql.DefaultLimits.
var DefaultPolicy = Policy{
	MaxSteps:    nql.DefaultLimits.MaxSteps,
	MaxDepth:    nql.DefaultLimits.MaxDepth,
	MaxAllocs:   nql.DefaultLimits.MaxAllocs,
	MaxDuration: nql.DefaultLimits.MaxDuration,
}

// Result captures one sandboxed run.
type Result struct {
	Value    nql.Value // script return value (nil when none)
	Stdout   string    // captured print() output
	Err      error     // nil on success
	ErrClass string    // categorized error class ("" on success)
	Duration time.Duration
	Steps    int // reserved for future accounting
}

// OK reports whether the run completed without error.
func (r *Result) OK() bool { return r.Err == nil }

// progEntry is one cached prepare result: the parsed program (bytecode
// warmed) plus the surface-independent static diagnostics from the
// semantic analyzer, which also stamps every lambda's effect summary onto
// the shared AST. Parse, compile, and analyze each happen once per
// distinct source no matter how Compile/Vet/Run interleave.
type progEntry struct {
	prog  *nql.Program
	diags []analysis.Diagnostic
}

// progCache memoizes successful prepares keyed by source text. The
// evaluation matrix executes the same golden and generated programs
// hundreds of times (once per model × backend × trial cell); preparing
// each distinct source once removes the parser, the bytecode compiler
// (nql.Program.Compiled, warmed below) and the analyzer from the per-run
// cost entirely. Parsed programs are immutable — the analyzer's effect
// stamp is written atomically and deterministically — so cached entries
// are shared freely across goroutines.
var (
	progMu    sync.Mutex
	progCache = map[string]*progEntry{}

	// Cumulative cache outcome counters, read by CacheStats for the service
	// metrics endpoint and diagnostic bundles. Atomics, not the mutex: the
	// hit path should stay one map probe plus one add.
	progHits   atomic.Uint64
	progMisses atomic.Uint64
)

// CacheStats reports cumulative program-cache hits and misses and the
// current entry count — the bytecode-cache analogue of the federated
// plan cache's Stats, exported on netqueryd's /metricsz.
func CacheStats() (hits, misses uint64, entries int) {
	progMu.Lock()
	n := len(progCache)
	progMu.Unlock()
	return progHits.Load(), progMisses.Load(), n
}

// progCacheMax bounds the cache so adversarial or size-swept workloads
// (e.g. Figure 4b's graph-scale sweep) cannot grow it without limit; at the
// cap, new programs still compile — they just are not retained.
const progCacheMax = 4096

// prepare is the single entry point behind Compile, Vet and CheckSyntax:
// parse, warm the bytecode, analyze, cache.
func prepare(src string) (*progEntry, error) {
	progMu.Lock()
	e, ok := progCache[src]
	progMu.Unlock()
	if ok {
		progHits.Add(1)
		return e, nil
	}
	progMisses.Add(1)
	prog, err := nql.Parse(src)
	if err != nil {
		return nil, err
	}
	// Warm the bytecode cache off the per-trial path; a (never expected)
	// compile failure is deferred to execution, which reports it as an
	// internal-class error.
	_, _ = prog.Compiled()
	// The surface-independent analysis: name resolution against concrete
	// backend globals is the caller's job (analysis.CheckNames); these
	// diagnostics hold for every surface, and the pass stamps lambda
	// effects for the federated planner.
	e = &progEntry{prog: prog, diags: analysis.Analyze(prog, analysis.Options{})}
	progMu.Lock()
	if len(progCache) < progCacheMax {
		progCache[src] = e
	}
	progMu.Unlock()
	return e, nil
}

// Compile parses src into an executable program, consulting and populating
// the shared program cache. The returned program is immutable and may be
// executed concurrently by any number of RunProgram calls.
func Compile(src string) (*nql.Program, error) {
	e, err := prepare(src)
	if err != nil {
		return nil, err
	}
	return e.prog, nil
}

// Vet parses and statically analyzes src, returning the analyzer's
// surface-independent diagnostics (cached alongside the compiled
// program). A parse failure is returned as the error; callers that want
// it as a diagnostic can wrap it with analysis.SyntaxDiagnostic. A nil
// error with zero diagnostics means the program is statically clean.
func Vet(src string) ([]analysis.Diagnostic, error) {
	e, err := prepare(src)
	if err != nil {
		return nil, err
	}
	return e.diags, nil
}

// Run executes src with the given host globals under the policy. The caller
// is responsible for passing cloned state in globals; Run never mutates the
// policy or retains the globals. Compilation goes through the program
// cache, so repeated runs of the same source parse it only once.
func Run(src string, globals map[string]nql.Value, policy Policy) *Result {
	prog, err := Compile(src)
	if err != nil {
		return &Result{Err: err, ErrClass: nql.ClassOf(err)}
	}
	return RunProgram(prog, globals, policy)
}

// RunProgram executes an already-compiled program under the policy. Use
// with Compile to hoist parsing out of a loop that executes the same
// program against many state clones.
func RunProgram(prog *nql.Program, globals map[string]nql.Value, policy Policy) *Result {
	res := &Result{}
	start := time.Now()
	defer func() {
		res.Duration = time.Since(start)
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("sandbox: panic during execution: %v", p)
			res.ErrClass = string(nql.ErrInternal)
		}
	}()
	in := nql.NewInterp(nql.Limits{
		MaxSteps:    policy.MaxSteps,
		MaxDepth:    policy.MaxDepth,
		MaxAllocs:   policy.MaxAllocs,
		MaxDuration: policy.MaxDuration,
		Context:     policy.Context,
		Profile:     policy.Profile,
	}, globals)
	v, err := in.RunProgram(prog)
	res.Stdout = in.Stdout()
	if err != nil {
		res.Err = err
		res.ErrClass = nql.ClassOf(err)
		return res
	}
	res.Value = v
	return res
}

// CheckSyntax parses src without executing it; returns nil when the program
// is syntactically valid. The self-debug loop uses this to give fast
// feedback before paying for execution. Successful parses land in the
// program cache, so a syntax check followed by Run compiles only once.
func CheckSyntax(src string) error {
	_, err := Compile(src)
	return err
}

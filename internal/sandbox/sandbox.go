// Package sandbox executes LLM-generated NQL programs in isolation
// (framework box 5 in the paper). The sandbox owns the resource budget,
// captures stdout, recovers panics from host bindings, and — critically —
// runs code against *cloned* state so a buggy generated program can never
// corrupt the golden copies the evaluator compares against. Host I/O is
// impossible by construction: the interpreter has no file, network or
// process bindings.
package sandbox

import (
	"fmt"
	"time"

	"repro/internal/nql"
)

// Policy configures a sandboxed execution.
type Policy struct {
	MaxSteps    int
	MaxDepth    int
	MaxAllocs   int
	MaxDuration time.Duration
}

// DefaultPolicy matches nql.DefaultLimits.
var DefaultPolicy = Policy{
	MaxSteps:    nql.DefaultLimits.MaxSteps,
	MaxDepth:    nql.DefaultLimits.MaxDepth,
	MaxAllocs:   nql.DefaultLimits.MaxAllocs,
	MaxDuration: nql.DefaultLimits.MaxDuration,
}

// Result captures one sandboxed run.
type Result struct {
	Value    nql.Value // script return value (nil when none)
	Stdout   string    // captured print() output
	Err      error     // nil on success
	ErrClass string    // categorized error class ("" on success)
	Duration time.Duration
	Steps    int // reserved for future accounting
}

// OK reports whether the run completed without error.
func (r *Result) OK() bool { return r.Err == nil }

// Run executes src with the given host globals under the policy. The caller
// is responsible for passing cloned state in globals; Run never mutates the
// policy or retains the globals.
func Run(src string, globals map[string]nql.Value, policy Policy) *Result {
	res := &Result{}
	start := time.Now()
	defer func() {
		res.Duration = time.Since(start)
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("sandbox: panic during execution: %v", p)
			res.ErrClass = string(nql.ErrInternal)
		}
	}()
	in := nql.NewInterp(nql.Limits{
		MaxSteps:    policy.MaxSteps,
		MaxDepth:    policy.MaxDepth,
		MaxAllocs:   policy.MaxAllocs,
		MaxDuration: policy.MaxDuration,
	}, globals)
	v, err := in.Run(src)
	res.Stdout = in.Stdout()
	if err != nil {
		res.Err = err
		res.ErrClass = nql.ClassOf(err)
		return res
	}
	res.Value = v
	return res
}

// CheckSyntax parses src without executing it; returns nil when the program
// is syntactically valid. The self-debug loop uses this to give fast
// feedback before paying for execution.
func CheckSyntax(src string) error {
	_, err := nql.Parse(src)
	return err
}

// Package synthesis implements the complementary program-synthesis
// techniques of the paper's case study (§4.4): pass@k sampling and
// self-debug (feeding the failure back to the model for one repair round).
// Both operate purely through the llm.Model interface and the evaluator,
// so they apply unchanged to a live model.
package synthesis

import (
	"repro/internal/llm"
	"repro/internal/nemoeval"
	"repro/internal/nql"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/sandbox"
)

// PassAtKResult reports one pass@k evaluation.
type PassAtKResult struct {
	QueryID  string
	K        int
	Solved   bool
	SolvedAt int // 1-based attempt index (0 when unsolved)
	Records  []*nemoeval.Record
}

// PassAtK samples the model up to k times (temperature > 0) and succeeds
// if any sample passes evaluation (Chen et al.'s pass@k).
func PassAtK(ev *nemoeval.Evaluator, model llm.Model, q queries.Query, backend string, k int, temperature float64) *PassAtKResult {
	res := &PassAtKResult{QueryID: q.ID, K: k}
	for attempt := 1; attempt <= k; attempt++ {
		rec := ev.EvaluateModel(model, q, backend, attempt, temperature)
		res.Records = append(res.Records, rec)
		if rec.Pass {
			res.Solved = true
			res.SolvedAt = attempt
			return res
		}
	}
	return res
}

// SelectionResult reports one execution-consistency selection run.
type SelectionResult struct {
	QueryID string
	K       int
	// Chosen is the index (1-based attempt) of the selected sample, 0 when
	// no sample executed successfully.
	Chosen int
	// Agreement is the size of the largest result-equivalence class.
	Agreement int
	// Pass reports whether the selected sample passes evaluation.
	Pass bool
}

// SelectByConsistency implements code selection via execution-result
// agreement (Shi et al., EMNLP 2022; the paper's §2.2 "code selection"
// family): sample k programs, execute each on its own fresh instance, group
// successful executions by result, and select a program from the largest
// agreement class. Crashing samples never win; consistently-wrong programs
// can — the technique helps when failures are errors, not when they are
// systematic miscalculations (see the tests for a measured example).
func SelectByConsistency(ev *nemoeval.Evaluator, model llm.Model, q queries.Query, backend string, k int, temperature float64) *SelectionResult {
	res := &SelectionResult{QueryID: q.ID, K: k}
	type sample struct {
		attempt int
		rec     *nemoeval.Record
		key     string
	}
	var ok []sample
	inst := ev.Build()
	p := prompt.BuildCodePrompt(inst.Wrapper, backend, q.Text)
	for attempt := 1; attempt <= k; attempt++ {
		resp, err := model.Generate(llm.Request{Prompt: p, Temperature: temperature, Attempt: attempt})
		if err != nil {
			continue
		}
		rec := ev.EvaluateCode(q, backend, resp.Text)
		rec.Model = model.Name()
		if rec.Stage == nemoeval.StageExecute || rec.Stage == nemoeval.StageGolden {
			continue // crashed: cannot participate in agreement
		}
		// Result key: the record passed or failed comparison; group by the
		// program's observable outcome. Re-run to capture the value
		// fingerprint cheaply via the generated code itself.
		key := resultKey(ev, q, backend, resp.Text)
		ok = append(ok, sample{attempt: attempt, rec: rec, key: key})
	}
	if len(ok) == 0 {
		return res
	}
	counts := map[string]int{}
	for _, s := range ok {
		counts[s.key]++
	}
	bestKey, bestN := "", 0
	for _, s := range ok { // first-appearance order for determinism
		if counts[s.key] > bestN {
			bestKey, bestN = s.key, counts[s.key]
		}
	}
	res.Agreement = bestN
	for _, s := range ok {
		if s.key == bestKey {
			res.Chosen = s.attempt
			res.Pass = s.rec.Pass
			break
		}
	}
	return res
}

// resultKey executes code on a fresh instance and fingerprints its result
// and post-run graph state.
func resultKey(ev *nemoeval.Evaluator, q queries.Query, backend, code string) string {
	inst := ev.Build()
	r := sandboxRun(code, inst, backend)
	if r == nil {
		return "<error>"
	}
	key := nql.Repr(r)
	if inst.Graph != nil && backend == prompt.BackendNetworkX {
		key += "|" + inst.Graph.Fingerprint()
	}
	return key
}

func sandboxRun(code string, inst *nemoeval.Instance, backend string) nql.Value {
	res := sandbox.Run(code, inst.Bindings(backend), sandbox.DefaultPolicy)
	if !res.OK() {
		return nil
	}
	return res.Value
}

// SelfDebugResult reports one self-debug evaluation.
type SelfDebugResult struct {
	QueryID     string
	FirstPass   bool // solved without repair
	Repaired    bool // solved by the repair round
	FirstRecord *nemoeval.Record
	FixRecord   *nemoeval.Record
}

// SelfDebug evaluates the model once and, on failure, sends the error
// message back in a repair prompt and evaluates the corrected program
// (Chen et al.'s self-debugging, one round as in the paper's case study).
func SelfDebug(ev *nemoeval.Evaluator, model llm.Model, q queries.Query, backend string) (*SelfDebugResult, error) {
	res := &SelfDebugResult{QueryID: q.ID}
	first := ev.EvaluateModel(model, q, backend, 1, 0)
	res.FirstRecord = first
	if first.Pass {
		res.FirstPass = true
		return res, nil
	}
	inst := ev.Build()
	original := prompt.BuildCodePrompt(inst.Wrapper, backend, q.Text)
	repair := prompt.BuildRepairPrompt(original, first.Code, first.Err)
	resp, err := model.Generate(llm.Request{Prompt: repair})
	if err != nil {
		return res, nil // token-limit on repair counts as unrepaired
	}
	fix := ev.EvaluateCode(q, backend, resp.Text)
	fix.Model = model.Name()
	res.FixRecord = fix
	res.Repaired = fix.Pass
	return res, nil
}

// CaseStudy reproduces Table 6: Bard with the NetworkX approach on the
// three initially-failing MALT queries, reporting baseline accuracy over
// the full MALT suite (pass@1), pass@5 over the failing queries, and
// self-debug over the failing queries.
type CaseStudy struct {
	Pass1     float64 // baseline accuracy over all 9 MALT queries
	Pass5     float64 // fraction of case-study queries solved within 5 samples
	SelfDebug float64 // fraction of case-study queries repaired
}

// RunCaseStudy executes the Table 6 experiment.
func RunCaseStudy() (*CaseStudy, error) {
	ev := nemoeval.NewEvaluator(nemoeval.MALTDataset())
	model, err := llm.NewSim("bard")
	if err != nil {
		return nil, err
	}
	out := &CaseStudy{}
	// Baseline pass@1 over the whole MALT suite.
	pass := 0
	for _, q := range queries.MALT() {
		rec := ev.EvaluateModel(model, q, prompt.BackendNetworkX, 1, 0)
		if rec.Pass {
			pass++
		}
	}
	out.Pass1 = float64(pass) / float64(len(queries.MALT()))
	// pass@5 and self-debug on the case-study queries.
	solved5, fixed := 0, 0
	for _, id := range llm.CaseStudyQueries {
		q, ok := queries.ByID(id)
		if !ok {
			continue
		}
		p := PassAtK(ev, model, q, prompt.BackendNetworkX, 5, 0.7)
		if p.Solved {
			solved5++
		}
		sd, err := SelfDebug(ev, model, q, prompt.BackendNetworkX)
		if err != nil {
			return nil, err
		}
		if sd.FirstPass || sd.Repaired {
			fixed++
		}
	}
	n := float64(len(llm.CaseStudyQueries))
	out.Pass5 = float64(solved5) / n
	out.SelfDebug = float64(fixed) / n
	return out, nil
}

package synthesis

import (
	"math"
	"testing"

	"repro/internal/llm"
	"repro/internal/nemoeval"
	"repro/internal/prompt"
	"repro/internal/queries"
)

func TestPassAtKRecoversCaseStudy(t *testing.T) {
	ev := nemoeval.NewEvaluator(nemoeval.MALTDataset())
	model, err := llm.NewSim("bard")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range llm.CaseStudyQueries {
		q, ok := queries.ByID(id)
		if !ok {
			t.Fatalf("unknown case-study query %s", id)
		}
		res := PassAtK(ev, model, q, prompt.BackendNetworkX, 5, 0.7)
		if !res.Solved {
			t.Errorf("pass@5 failed to solve %s", id)
		}
		if res.SolvedAt < 2 {
			t.Errorf("%s solved at attempt %d — should fail at least once", id, res.SolvedAt)
		}
		if len(res.Records) != res.SolvedAt {
			t.Errorf("%s records = %d, solvedAt = %d", id, len(res.Records), res.SolvedAt)
		}
	}
}

func TestPassAt1DoesNotRecover(t *testing.T) {
	ev := nemoeval.NewEvaluator(nemoeval.MALTDataset())
	model, _ := llm.NewSim("bard")
	for _, id := range llm.CaseStudyQueries {
		q, _ := queries.ByID(id)
		res := PassAtK(ev, model, q, prompt.BackendNetworkX, 1, 0.7)
		if res.Solved {
			t.Errorf("pass@1 unexpectedly solved %s", id)
		}
	}
}

func TestSelfDebugRepairsTwoOfThree(t *testing.T) {
	ev := nemoeval.NewEvaluator(nemoeval.MALTDataset())
	model, _ := llm.NewSim("bard")
	repaired := 0
	for _, id := range llm.CaseStudyQueries {
		q, _ := queries.ByID(id)
		res, err := SelfDebug(ev, model, q, prompt.BackendNetworkX)
		if err != nil {
			t.Fatal(err)
		}
		if res.FirstPass {
			t.Errorf("%s passed on first attempt — not a case-study failure", id)
		}
		if res.Repaired {
			repaired++
			if res.FixRecord == nil || !res.FixRecord.Pass {
				t.Errorf("%s marked repaired without passing fix record", id)
			}
		}
	}
	if repaired != 2 {
		t.Fatalf("self-debug repaired %d of 3, want 2 (Table 6: 0.67)", repaired)
	}
}

func TestSelfDebugPassThrough(t *testing.T) {
	// A query the model already solves must short-circuit.
	ev := nemoeval.NewEvaluator(nemoeval.MALTDataset())
	model, _ := llm.NewSim("gpt-4")
	q, _ := queries.ByID("malt-e1")
	res, err := SelfDebug(ev, model, q, prompt.BackendNetworkX)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FirstPass || res.FixRecord != nil {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunCaseStudyMatchesTable6(t *testing.T) {
	cs, err := RunCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cs.Pass1-4.0/9.0) > 1e-9 {
		t.Errorf("pass@1 = %.3f, want 0.444 (Table 6: 0.44)", cs.Pass1)
	}
	if cs.Pass5 != 1.0 {
		t.Errorf("pass@5 = %.3f, want 1.0", cs.Pass5)
	}
	if math.Abs(cs.SelfDebug-2.0/3.0) > 1e-9 {
		t.Errorf("self-debug = %.3f, want 0.667 (Table 6: 0.67)", cs.SelfDebug)
	}
}

package synthesis

import (
	"testing"

	"repro/internal/llm"
	"repro/internal/nemoeval"
	"repro/internal/prompt"
	"repro/internal/queries"
)

// malt-m2's Bard attempt sequence is [argument-error, argument-error,
// pass]: both failures crash, so only the passing sample executes and
// selection must choose it.
func TestSelectByConsistencyPicksSurvivor(t *testing.T) {
	ev := nemoeval.NewEvaluator(nemoeval.MALTDataset())
	model, _ := llm.NewSim("bard")
	q, _ := queries.ByID("malt-m2")
	res := SelectByConsistency(ev, model, q, prompt.BackendNetworkX, 5, 0.7)
	if !res.Pass {
		t.Fatalf("selection should pass when failures crash: %+v", res)
	}
	if res.Chosen != 3 {
		t.Fatalf("chosen attempt = %d, want 3", res.Chosen)
	}
}

// malt-h2's sequence is [wrong-calc, wrong-calc, syntax-error, pass]: the
// two wrong-calc samples agree with each other, outvoting the single
// correct sample — a measured demonstration that execution-consistency
// selection fails against systematic miscalculations (why the paper pairs
// it with other techniques).
func TestSelectByConsistencyLosesToConsistentWrongness(t *testing.T) {
	ev := nemoeval.NewEvaluator(nemoeval.MALTDataset())
	model, _ := llm.NewSim("bard")
	q, _ := queries.ByID("malt-h2")
	res := SelectByConsistency(ev, model, q, prompt.BackendNetworkX, 5, 0.7)
	if res.Pass {
		t.Fatalf("expected consistent wrong answers to win: %+v", res)
	}
	if res.Agreement < 2 {
		t.Fatalf("agreement = %d, want >= 2", res.Agreement)
	}
	if res.Chosen != 1 {
		t.Fatalf("chosen attempt = %d, want 1 (first wrong sample)", res.Chosen)
	}
}

// A query the model always solves: all samples agree on the right answer.
func TestSelectByConsistencyUnanimous(t *testing.T) {
	ev := nemoeval.NewEvaluator(nemoeval.MALTDataset())
	model, _ := llm.NewSim("gpt-4")
	q, _ := queries.ByID("malt-e1")
	res := SelectByConsistency(ev, model, q, prompt.BackendNetworkX, 3, 0.7)
	if !res.Pass || res.Agreement != 3 || res.Chosen != 1 {
		t.Fatalf("res = %+v", res)
	}
}

package nemoeval

import (
	"testing"

	"repro/internal/prompt"
	"repro/internal/queries"
)

// TestGoldenSelfConsistency executes every golden program on every backend
// and asserts it passes its own evaluation — the benchmark's ground truth
// must be internally consistent (golden answers were "verified by human
// experts" in the paper; here the machine checks them).
func TestGoldenSelfConsistency(t *testing.T) {
	suites := map[string][]queries.Query{
		queries.AppTraffic:   queries.Traffic(),
		queries.AppMALT:      queries.MALT(),
		queries.AppDiagnosis: queries.Diagnosis(),
	}
	for app, suite := range suites {
		ev := NewEvaluator(DatasetFor(app))
		for _, q := range suite {
			for _, backend := range prompt.Backends {
				golden, ok := q.Golden[backend]
				if !ok {
					t.Errorf("%s missing golden for %s", q.ID, backend)
					continue
				}
				rec := ev.EvaluateCode(q, backend, golden)
				if !rec.Pass {
					t.Errorf("%s/%s golden fails its own evaluation: stage=%s class=%s err=%s",
						q.ID, backend, rec.Stage, rec.ErrClass, rec.Err)
				}
			}
		}
	}
}

// TestSuiteShape checks the suite sizes and complexity split match the
// paper (24 traffic = 8/8/8, 9 MALT = 3/3/3).
func TestSuiteShape(t *testing.T) {
	tr := queries.Traffic()
	if len(tr) != 24 {
		t.Fatalf("traffic suite = %d queries, want 24", len(tr))
	}
	ml := queries.MALT()
	if len(ml) != 9 {
		t.Fatalf("malt suite = %d queries, want 9", len(ml))
	}
	for _, tc := range []struct {
		suite []queries.Query
		level string
		want  int
	}{
		{tr, queries.Easy, 8}, {tr, queries.Medium, 8}, {tr, queries.Hard, 8},
		{ml, queries.Easy, 3}, {ml, queries.Medium, 3}, {ml, queries.Hard, 3},
	} {
		if got := len(queries.OfComplexity(tc.suite, tc.level)); got != tc.want {
			t.Errorf("level %s: %d queries, want %d", tc.level, got, tc.want)
		}
	}
	seen := map[string]bool{}
	for _, q := range queries.All() {
		if seen[q.ID] {
			t.Errorf("duplicate query id %s", q.ID)
		}
		seen[q.ID] = true
		if q.Text == "" {
			t.Errorf("%s has empty text", q.ID)
		}
	}
}

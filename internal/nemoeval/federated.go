package nemoeval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/prompt"
	"repro/internal/queries"
)

// DivergentContracts records, per query, the backends whose golden answer
// deliberately differs in shape from the NetworkX golden. These are the
// state-mutating queries: the NetworkX golden mutates the graph and returns
// nil, while the pandas golden returns the mutated (immutable-by-
// convention) frame and the SQL golden either mutates tables in place
// (returning nil, which matches) or returns the computed mapping because
// the relational schema cannot hold graph attributes. The parity harness
// asserts that the observed divergence is exactly this set — anything else
// is a substrate bug.
var DivergentContracts = map[string][]string{
	"ta-e1":   {prompt.BackendPandas, prompt.BackendSQL},
	"ta-e7":   {prompt.BackendPandas},
	"ta-m1":   {prompt.BackendPandas, prompt.BackendSQL},
	"ta-m2":   {prompt.BackendPandas, prompt.BackendSQL},
	"ta-m8":   {prompt.BackendPandas},
	"ta-h1":   {prompt.BackendPandas, prompt.BackendSQL},
	"ta-h2":   {prompt.BackendPandas, prompt.BackendSQL},
	"malt-h1": {prompt.BackendPandas},
}

// ParityRecord is the cross-backend comparison of one query: whether the
// federated plan's result equals each per-backend golden result.
type ParityRecord struct {
	QueryID    string
	App        string
	Complexity string
	// PlanGolden is true when the query has an explicit federated-planner
	// golden (as opposed to defaulting to the NetworkX program).
	PlanGolden bool
	// Match[backend] is true when the federated result deep-equals that
	// backend's golden result.
	Match map[string]bool
	// StateMatch is true when the post-run federated graph equals the
	// post-run NetworkX-golden graph (mutations agree).
	StateMatch bool
	Err        string
}

// Divergence lists the backends whose golden differs from the federated
// result, sorted.
func (p *ParityRecord) Divergence() []string {
	var out []string
	for _, b := range prompt.Backends {
		if !p.Match[b] {
			out = append(out, b)
		}
	}
	sort.Strings(out)
	return out
}

// OK reports whether the record satisfies the federation contract: no
// harness error, the federated result equals the NetworkX golden (value and
// post-run graph), and any per-backend divergence is a declared contract
// divergence.
func (p *ParityRecord) OK() bool {
	if p.Err != "" || !p.Match[prompt.BackendNetworkX] || !p.StateMatch {
		return false
	}
	declared := append([]string(nil), DivergentContracts[p.QueryID]...)
	sort.Strings(declared)
	observed := p.Divergence()
	if len(observed) != len(declared) {
		return false
	}
	for i := range observed {
		if observed[i] != declared[i] {
			return false
		}
	}
	return true
}

// FederatedParity cross-checks the federated plan of every query in one
// application's suite against the three per-backend goldens. Queries fan
// out over the runner's worker pool (each golden executes in the sandbox
// against its own clone of the frozen master); records merge back in suite
// order.
func (r *Runner) FederatedParity(app string) ([]*ParityRecord, error) {
	var suite []queries.Query
	switch app {
	case queries.AppTraffic:
		suite = queries.Traffic()
	case queries.AppMALT:
		suite = queries.MALT()
	case queries.AppDiagnosis:
		suite = queries.Diagnosis()
	default:
		return nil, fmt.Errorf("nemoeval: unknown app %q", app)
	}
	ev := NewEvaluator(DatasetFor(app))
	recs := make([]*ParityRecord, len(suite))
	parallelFor(r.workers(), len(suite), func(i int) {
		recs[i] = parityOf(ev, suite[i])
	})
	return recs, nil
}

func parityOf(ev *Evaluator, q queries.Query) *ParityRecord {
	rec := &ParityRecord{
		QueryID: q.ID, App: q.App, Complexity: q.Complexity,
		PlanGolden: strings.Contains(q.Golden[prompt.BackendFederated], "fed."),
		Match:      map[string]bool{},
	}
	fedVal, fedInst, err := ev.RunGolden(q, prompt.BackendFederated)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	for _, backend := range prompt.Backends {
		val, inst, err := ev.RunGolden(q, backend)
		if err != nil {
			rec.Err = err.Error()
			return rec
		}
		rec.Match[backend] = ResultEqual(fedVal, val)
		if backend == prompt.BackendNetworkX {
			rec.StateMatch = graph.Equal(fedInst.G(), inst.G())
		}
	}
	return rec
}

// FederatedParityApps are the suites the parity report covers: the paper's
// two applications plus the diagnosis extension.
var FederatedParityApps = []string{queries.AppTraffic, queries.AppMALT, queries.AppDiagnosis}

// FederatedParityReport runs the parity harness over every suite and
// renders the summary table. The returned error is non-nil when any query
// violates the federation contract (the report text still describes the
// violation).
func (r *Runner) FederatedParityReport() (string, error) {
	var sb strings.Builder
	sb.WriteString("Federated parity: federated plan vs per-backend goldens\n")
	sb.WriteString(fmt.Sprintf("%-10s %-10s %-8s %-8s %-6s %-4s %-5s %s\n",
		"query", "app", "golden", "networkx", "pandas", "sql", "state", "notes"))
	var firstErr error
	for _, app := range FederatedParityApps {
		recs, err := r.FederatedParity(app)
		if err != nil {
			return sb.String(), err
		}
		for _, rec := range recs {
			golden := "networkx"
			if rec.PlanGolden {
				golden = "plan"
			}
			notes := ""
			if div := rec.Divergence(); len(div) > 0 && rec.OK() {
				notes = "contract divergence: " + strings.Join(div, ",")
			}
			if rec.Err != "" {
				notes = "error: " + rec.Err
			}
			if !rec.OK() && firstErr == nil {
				firstErr = fmt.Errorf("nemoeval: federated parity violated for %s (divergence %v, err %q)",
					rec.QueryID, rec.Divergence(), rec.Err)
			}
			sb.WriteString(fmt.Sprintf("%-10s %-10s %-8s %-8s %-6s %-4s %-5s %s\n",
				rec.QueryID, rec.App, golden,
				mark(rec.Match[prompt.BackendNetworkX]), mark(rec.Match[prompt.BackendPandas]),
				mark(rec.Match[prompt.BackendSQL]), mark(rec.StateMatch), notes))
		}
	}
	return sb.String(), firstErr
}

func mark(ok bool) string {
	if ok {
		return "="
	}
	return "x"
}

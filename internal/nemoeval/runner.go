package nemoeval

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/llm"
	"repro/internal/modelserve"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/traffic"
)

// Runner executes the full benchmark matrix and aggregates the paper's
// tables. Cells of the model × backend × query matrix are independent, so
// the runner fans them out over a bounded worker pool and then merges the
// results in the exact order the serial implementation used — the rendered
// tables, cell aggregates, and logger contents are identical for any
// worker count.
type Runner struct {
	Models []string
	// Trials per model; Bard is averaged over 5 trials per the paper.
	TrialsFor func(model string) int
	Log       *Logger
	// Workers bounds the evaluation pool; 0 means runtime.NumCPU() and 1
	// reproduces the serial runner exactly (it then runs inline).
	Workers int
	// Provider, when set, routes every code-generation call through the
	// model-serving gateway (internal/modelserve) instead of constructing
	// per-job simulated models — the sim/http/record/replay pipeline. The
	// strawman baseline always runs on in-process simulations: it needs
	// the golden-derived oracle installed per query, which only the sims
	// can accept (a live provider cannot be told the answer).
	Provider llm.Provider
}

// NewRunner creates a runner over the paper's four models.
func NewRunner() *Runner {
	return &Runner{
		Models: llm.ModelNames,
		TrialsFor: func(model string) int {
			if model == "bard" {
				return 5
			}
			return 1
		},
		Log: NewLogger(),
	}
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.NumCPU()
}

// GatewayReport renders the per-run serving statistics — batches,
// retries, rate-limit waits, cache hits — when the configured Provider is
// a modelserve gateway, or "" otherwise. Callers print it to stderr: the
// table/figure stdout must stay byte-identical across providers, which is
// exactly what the record/replay parity contract asserts.
func (r *Runner) GatewayReport() string {
	gs, ok := r.Provider.(interface{ Stats() modelserve.Stats })
	if !ok {
		return ""
	}
	return "gateway: " + gs.Stats().String()
}

// parallelFor runs fn(0..n-1) on at most `workers` goroutines and waits
// for all of them. With one worker (or one item) it runs inline.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// r2 nudges a value so fmt's %.2f rounds halves up (0.625 -> "0.63"),
// matching the paper's table rendering.
func r2(v float64) float64 { return v + 5e-10 }

// CellResult aggregates one (model, backend) cell of Table 2.
type CellResult struct {
	Model, App, Backend string
	Accuracy            float64            // mean pass fraction over queries
	ByComplexity        map[string]float64 // level -> mean pass fraction
	Records             []*Record
}

// strawmanConfigFor sizes the strawman graph to the model's context window
// — the paper evaluates the strawman "on synthetic graphs ... where data
// size can be controlled", since inlining the full JSON must fit the
// prompt. Larger-window models get larger graphs, up to the paper's
// 80-nodes-and-edges scale.
func strawmanConfigFor(model string) traffic.Config {
	switch model {
	case "gpt-3":
		return traffic.Config{Nodes: 20, Edges: 20, Seed: 42}
	case "text-davinci-003", "bard":
		return traffic.Config{Nodes: 45, Edges: 45, Seed: 42}
	default:
		return DefaultTrafficConfig
	}
}

// matrixJob is one (model, backend, query) cell's worth of trials.
type matrixJob struct {
	model, backend string
	query          queries.Query
	recs           []*Record
	err            error
}

// modelFor resolves the generation path for one model name: a
// gateway-backed model when a Provider is configured, else a fresh
// simulated model (SetOracle mutates sim state, so sims are never shared
// across goroutines).
func (r *Runner) modelFor(name string) (llm.Model, error) {
	if r.Provider != nil {
		return llm.NewProviderModel(r.Provider, name), nil
	}
	return llm.NewSim(name)
}

// run evaluates the job's trials. Strawman jobs always construct their own
// simulated model (the oracle install is sim-only; see Runner.Provider);
// code-generation jobs go through modelFor. The evaluators are shared and
// concurrency-safe.
func (r *Runner) runJob(job *matrixJob, ev, strawEv *Evaluator) {
	trials := r.TrialsFor(job.model)
	job.recs = make([]*Record, 0, trials)
	if job.backend == "strawman" {
		sim, err := llm.NewSim(job.model)
		if err != nil {
			job.err = err
			return
		}
		for t := 1; t <= trials; t++ {
			rec := strawEv.EvaluateStrawman(sim, job.query)
			rec.Trial = t
			job.recs = append(job.recs, rec)
		}
		return
	}
	model, err := r.modelFor(job.model)
	if err != nil {
		job.err = err
		return
	}
	for t := 1; t <= trials; t++ {
		rec := ev.EvaluateModel(model, job.query, job.backend, t, 0)
		rec.Trial = t
		job.recs = append(job.recs, rec)
	}
}

// RunApp evaluates every model × backend over one application's suite and
// returns cells keyed "model|backend".
func (r *Runner) RunApp(app string, includeStrawman bool) (map[string]*CellResult, error) {
	build := DatasetFor(app)
	ev := NewEvaluator(build)
	var suite []queries.Query
	if app == queries.AppTraffic {
		suite = queries.Traffic()
	} else {
		suite = queries.MALT()
	}
	backends := append([]string(nil), prompt.Backends...)
	if includeStrawman {
		backends = append([]string{"strawman"}, backends...)
	}
	// Strawman evaluators are per model (the graph is sized to the model's
	// context window); build them up front, serially and deterministically.
	strawEvs := map[string]*Evaluator{}
	for _, modelName := range r.Models {
		strawEvs[modelName] = ev
		if includeStrawman && app == queries.AppTraffic {
			strawEvs[modelName] = NewEvaluator(TrafficDataset(strawmanConfigFor(modelName)))
		}
	}
	// Enumerate the full matrix, fan it out, then merge in matrix order.
	var jobs []*matrixJob
	for _, modelName := range r.Models {
		for _, backend := range backends {
			for _, q := range suite {
				jobs = append(jobs, &matrixJob{model: modelName, backend: backend, query: q})
			}
		}
	}
	parallelFor(r.workers(), len(jobs), func(i int) {
		job := jobs[i]
		r.runJob(job, ev, strawEvs[job.model])
	})
	out := map[string]*CellResult{}
	ji := 0
	for _, modelName := range r.Models {
		for _, backend := range backends {
			cell := &CellResult{Model: modelName, App: app, Backend: backend, ByComplexity: map[string]float64{}}
			levelPass := map[string]float64{}
			levelCount := map[string]int{}
			for range suite {
				job := jobs[ji]
				ji++
				if job.err != nil {
					return nil, job.err
				}
				passes := 0
				for _, rec := range job.recs {
					r.Log.Add(rec)
					cell.Records = append(cell.Records, rec)
					if rec.Pass {
						passes++
					}
				}
				frac := float64(passes) / float64(len(job.recs))
				cell.Accuracy += frac
				levelPass[job.query.Complexity] += frac
				levelCount[job.query.Complexity]++
			}
			cell.Accuracy /= float64(len(suite))
			for lv, total := range levelPass {
				cell.ByComplexity[lv] = total / float64(levelCount[lv])
			}
			out[modelName+"|"+backend] = cell
		}
	}
	return out, nil
}

// Table2 runs both applications and renders the accuracy summary.
func (r *Runner) Table2() (string, error) {
	tr, err := r.RunApp(queries.AppTraffic, true)
	if err != nil {
		return "", err
	}
	ml, err := r.RunApp(queries.AppMALT, false)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Table 2: Accuracy Summary for Both Applications\n")
	sb.WriteString(fmt.Sprintf("%-18s %9s %6s %7s %9s %6s %7s %9s\n",
		"", "Strawman", "SQL", "Pandas", "NetworkX", "SQL", "Pandas", "NetworkX"))
	sb.WriteString(fmt.Sprintf("%-18s %-25s %-25s\n", "", "  [Traffic Analysis]", "   [MALT]"))
	for _, m := range r.Models {
		sb.WriteString(fmt.Sprintf("%-18s %9.2f %6.2f %7.2f %9.2f %6.2f %7.2f %9.2f\n",
			m,
			r2(tr[m+"|strawman"].Accuracy),
			r2(tr[m+"|sql"].Accuracy),
			r2(tr[m+"|pandas"].Accuracy),
			r2(tr[m+"|networkx"].Accuracy),
			r2(ml[m+"|sql"].Accuracy),
			r2(ml[m+"|pandas"].Accuracy),
			r2(ml[m+"|networkx"].Accuracy),
		))
	}
	return sb.String(), nil
}

// breakdown renders a Table 3/4-style complexity breakdown.
func (r *Runner) breakdown(app, title string, includeStrawman bool) (string, error) {
	cells, err := r.RunApp(app, includeStrawman)
	if err != nil {
		return "", err
	}
	backends := append([]string(nil), prompt.Backends...)
	if includeStrawman {
		backends = append([]string{"strawman"}, backends...)
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	sb.WriteString(fmt.Sprintf("%-18s", ""))
	for _, b := range backends {
		sb.WriteString(fmt.Sprintf(" %-17s", b+" E/M/H"))
	}
	sb.WriteString("\n")
	for _, m := range r.Models {
		sb.WriteString(fmt.Sprintf("%-18s", m))
		for _, b := range backends {
			c := cells[m+"|"+b]
			sb.WriteString(fmt.Sprintf(" %.2f/%.2f/%.2f   ",
				r2(c.ByComplexity[queries.Easy]), r2(c.ByComplexity[queries.Medium]), r2(c.ByComplexity[queries.Hard])))
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// Table3 renders the traffic-analysis complexity breakdown.
func (r *Runner) Table3() (string, error) {
	return r.breakdown(queries.AppTraffic, "Table 3: Breakdown for Traffic Analysis (pass fraction E/M/H)", true)
}

// Table4 renders the MALT complexity breakdown.
func (r *Runner) Table4() (string, error) {
	return r.breakdown(queries.AppMALT, "Table 4: Breakdown for MALT (pass fraction E/M/H)", false)
}

// Table5 runs the NetworkX approach across all models and classifies every
// failure, rendering the error-type summary. Like RunApp, the evaluation
// matrix fans out over the worker pool and is merged deterministically.
func (r *Runner) Table5() (string, error) {
	type t5Job struct {
		app string
		ev  *Evaluator
		mdl string
		q   queries.Query
		rec *Record
		err error
	}
	var jobs []*t5Job
	for _, app := range []string{queries.AppTraffic, queries.AppMALT} {
		ev := NewEvaluator(DatasetFor(app))
		var suite []queries.Query
		if app == queries.AppTraffic {
			suite = queries.Traffic()
		} else {
			suite = queries.MALT()
		}
		for _, modelName := range r.Models {
			for _, q := range suite {
				jobs = append(jobs, &t5Job{app: app, ev: ev, mdl: modelName, q: q})
			}
		}
	}
	parallelFor(r.workers(), len(jobs), func(i int) {
		job := jobs[i]
		model, err := r.modelFor(job.mdl)
		if err != nil {
			job.err = err
			return
		}
		job.rec = job.ev.EvaluateModel(model, job.q, prompt.BackendNetworkX, 1, 0)
	})
	counts := map[string]map[string]int{} // label -> app -> count
	for _, job := range jobs {
		if job.err != nil {
			return "", job.err
		}
		rec := job.rec
		r.Log.Add(rec)
		if rec.Pass {
			continue
		}
		if counts[rec.ErrClass] == nil {
			counts[rec.ErrClass] = map[string]int{}
		}
		counts[rec.ErrClass][job.app]++
	}
	totalTA, totalMALT := 0, 0
	for _, byApp := range counts {
		totalTA += byApp[queries.AppTraffic]
		totalMALT += byApp[queries.AppMALT]
	}
	var sb strings.Builder
	sb.WriteString("Table 5: Error Type Summary of LLM Generated Code (NetworkX)\n")
	sb.WriteString(fmt.Sprintf("%-38s %-20s %s\n", "Error type",
		fmt.Sprintf("Traffic Analysis (%d)", totalTA), fmt.Sprintf("MALT (%d)", totalMALT)))
	for _, label := range ErrorLabels {
		byApp := counts[label]
		sb.WriteString(fmt.Sprintf("%-38s %-20d %d\n", label, byApp[queries.AppTraffic], byApp[queries.AppMALT]))
	}
	// Any labels outside the taxonomy (harness issues) should be visible.
	var extra []string
	for label := range counts {
		known := false
		for _, l := range ErrorLabels {
			if l == label {
				known = true
			}
		}
		if !known {
			extra = append(extra, label)
		}
	}
	sort.Strings(extra)
	for _, label := range extra {
		byApp := counts[label]
		sb.WriteString(fmt.Sprintf("%-38s %-20d %d\n", label, byApp[queries.AppTraffic], byApp[queries.AppMALT]))
	}
	return sb.String(), nil
}

package nemoeval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/traffic"
)

// Runner executes the full benchmark matrix and aggregates the paper's
// tables.
type Runner struct {
	Models []string
	// Trials per model; Bard is averaged over 5 trials per the paper.
	TrialsFor func(model string) int
	Log       *Logger
}

// NewRunner creates a runner over the paper's four models.
func NewRunner() *Runner {
	return &Runner{
		Models: llm.ModelNames,
		TrialsFor: func(model string) int {
			if model == "bard" {
				return 5
			}
			return 1
		},
		Log: NewLogger(),
	}
}

// r2 nudges a value so fmt's %.2f rounds halves up (0.625 -> "0.63"),
// matching the paper's table rendering.
func r2(v float64) float64 { return v + 5e-10 }

// CellResult aggregates one (model, backend) cell of Table 2.
type CellResult struct {
	Model, App, Backend string
	Accuracy            float64            // mean pass fraction over queries
	ByComplexity        map[string]float64 // level -> mean pass fraction
	Records             []*Record
}

// strawmanConfigFor sizes the strawman graph to the model's context window
// — the paper evaluates the strawman "on synthetic graphs ... where data
// size can be controlled", since inlining the full JSON must fit the
// prompt. Larger-window models get larger graphs, up to the paper's
// 80-nodes-and-edges scale.
func strawmanConfigFor(model string) traffic.Config {
	switch model {
	case "gpt-3":
		return traffic.Config{Nodes: 20, Edges: 20, Seed: 42}
	case "text-davinci-003", "bard":
		return traffic.Config{Nodes: 45, Edges: 45, Seed: 42}
	default:
		return DefaultTrafficConfig
	}
}

// RunApp evaluates every model × backend over one application's suite and
// returns cells keyed "model|backend".
func (r *Runner) RunApp(app string, includeStrawman bool) (map[string]*CellResult, error) {
	build := DatasetFor(app)
	ev := NewEvaluator(build)
	var suite []queries.Query
	if app == queries.AppTraffic {
		suite = queries.Traffic()
	} else {
		suite = queries.MALT()
	}
	out := map[string]*CellResult{}
	for _, modelName := range r.Models {
		model, err := llm.NewSim(modelName)
		if err != nil {
			return nil, err
		}
		backends := append([]string(nil), prompt.Backends...)
		if includeStrawman {
			backends = append([]string{"strawman"}, backends...)
		}
		strawEv := ev
		if includeStrawman && app == queries.AppTraffic {
			strawEv = NewEvaluator(TrafficDataset(strawmanConfigFor(modelName)))
		}
		for _, backend := range backends {
			cell := &CellResult{Model: modelName, App: app, Backend: backend, ByComplexity: map[string]float64{}}
			levelPass := map[string]float64{}
			levelCount := map[string]int{}
			for _, q := range suite {
				trials := r.TrialsFor(modelName)
				passes := 0
				for t := 1; t <= trials; t++ {
					var rec *Record
					if backend == "strawman" {
						rec = strawEv.EvaluateStrawman(model, q)
					} else {
						rec = ev.EvaluateModel(model, q, backend, t, 0)
					}
					rec.Trial = t
					r.Log.Add(rec)
					cell.Records = append(cell.Records, rec)
					if rec.Pass {
						passes++
					}
				}
				frac := float64(passes) / float64(trials)
				cell.Accuracy += frac
				levelPass[q.Complexity] += frac
				levelCount[q.Complexity]++
			}
			cell.Accuracy /= float64(len(suite))
			for lv, total := range levelPass {
				cell.ByComplexity[lv] = total / float64(levelCount[lv])
			}
			out[modelName+"|"+backend] = cell
		}
	}
	return out, nil
}

// Table2 runs both applications and renders the accuracy summary.
func (r *Runner) Table2() (string, error) {
	tr, err := r.RunApp(queries.AppTraffic, true)
	if err != nil {
		return "", err
	}
	ml, err := r.RunApp(queries.AppMALT, false)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Table 2: Accuracy Summary for Both Applications\n")
	sb.WriteString(fmt.Sprintf("%-18s %9s %6s %7s %9s %6s %7s %9s\n",
		"", "Strawman", "SQL", "Pandas", "NetworkX", "SQL", "Pandas", "NetworkX"))
	sb.WriteString(fmt.Sprintf("%-18s %-25s %-25s\n", "", "  [Traffic Analysis]", "   [MALT]"))
	for _, m := range r.Models {
		sb.WriteString(fmt.Sprintf("%-18s %9.2f %6.2f %7.2f %9.2f %6.2f %7.2f %9.2f\n",
			m,
			r2(tr[m+"|strawman"].Accuracy),
			r2(tr[m+"|sql"].Accuracy),
			r2(tr[m+"|pandas"].Accuracy),
			r2(tr[m+"|networkx"].Accuracy),
			r2(ml[m+"|sql"].Accuracy),
			r2(ml[m+"|pandas"].Accuracy),
			r2(ml[m+"|networkx"].Accuracy),
		))
	}
	return sb.String(), nil
}

// breakdown renders a Table 3/4-style complexity breakdown.
func (r *Runner) breakdown(app, title string, includeStrawman bool) (string, error) {
	cells, err := r.RunApp(app, includeStrawman)
	if err != nil {
		return "", err
	}
	backends := append([]string(nil), prompt.Backends...)
	if includeStrawman {
		backends = append([]string{"strawman"}, backends...)
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	sb.WriteString(fmt.Sprintf("%-18s", ""))
	for _, b := range backends {
		sb.WriteString(fmt.Sprintf(" %-17s", b+" E/M/H"))
	}
	sb.WriteString("\n")
	for _, m := range r.Models {
		sb.WriteString(fmt.Sprintf("%-18s", m))
		for _, b := range backends {
			c := cells[m+"|"+b]
			sb.WriteString(fmt.Sprintf(" %.2f/%.2f/%.2f   ",
				r2(c.ByComplexity[queries.Easy]), r2(c.ByComplexity[queries.Medium]), r2(c.ByComplexity[queries.Hard])))
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// Table3 renders the traffic-analysis complexity breakdown.
func (r *Runner) Table3() (string, error) {
	return r.breakdown(queries.AppTraffic, "Table 3: Breakdown for Traffic Analysis (pass fraction E/M/H)", true)
}

// Table4 renders the MALT complexity breakdown.
func (r *Runner) Table4() (string, error) {
	return r.breakdown(queries.AppMALT, "Table 4: Breakdown for MALT (pass fraction E/M/H)", false)
}

// Table5 runs the NetworkX approach across all models and classifies every
// failure, rendering the error-type summary.
func (r *Runner) Table5() (string, error) {
	counts := map[string]map[string]int{} // label -> app -> count
	for _, app := range []string{queries.AppTraffic, queries.AppMALT} {
		build := DatasetFor(app)
		ev := NewEvaluator(build)
		var suite []queries.Query
		if app == queries.AppTraffic {
			suite = queries.Traffic()
		} else {
			suite = queries.MALT()
		}
		for _, modelName := range r.Models {
			model, err := llm.NewSim(modelName)
			if err != nil {
				return "", err
			}
			for _, q := range suite {
				rec := ev.EvaluateModel(model, q, prompt.BackendNetworkX, 1, 0)
				r.Log.Add(rec)
				if rec.Pass {
					continue
				}
				if counts[rec.ErrClass] == nil {
					counts[rec.ErrClass] = map[string]int{}
				}
				counts[rec.ErrClass][app]++
			}
		}
	}
	totalTA, totalMALT := 0, 0
	for _, byApp := range counts {
		totalTA += byApp[queries.AppTraffic]
		totalMALT += byApp[queries.AppMALT]
	}
	var sb strings.Builder
	sb.WriteString("Table 5: Error Type Summary of LLM Generated Code (NetworkX)\n")
	sb.WriteString(fmt.Sprintf("%-38s %-20s %s\n", "Error type",
		fmt.Sprintf("Traffic Analysis (%d)", totalTA), fmt.Sprintf("MALT (%d)", totalMALT)))
	for _, label := range ErrorLabels {
		byApp := counts[label]
		sb.WriteString(fmt.Sprintf("%-38s %-20d %d\n", label, byApp[queries.AppTraffic], byApp[queries.AppMALT]))
	}
	// Any labels outside the taxonomy (harness issues) should be visible.
	var extra []string
	for label := range counts {
		known := false
		for _, l := range ErrorLabels {
			if l == label {
				known = true
			}
		}
		if !known {
			extra = append(extra, label)
		}
	}
	sort.Strings(extra)
	for _, label := range extra {
		byApp := counts[label]
		sb.WriteString(fmt.Sprintf("%-38s %-20d %d\n", label, byApp[queries.AppTraffic], byApp[queries.AppMALT]))
	}
	return sb.String(), nil
}

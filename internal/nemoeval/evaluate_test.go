package nemoeval

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataframe"
	"repro/internal/graph"
	"repro/internal/llm"
	"repro/internal/nql"
	"repro/internal/nqlbind"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/traffic"
)

func trafficEval() *Evaluator {
	return NewEvaluator(TrafficDataset(DefaultTrafficConfig))
}

func TestEvaluateCodeWrongValueClassified(t *testing.T) {
	ev := trafficEval()
	q, _ := queries.ByID("ta-e2")
	rec := ev.EvaluateCode(q, prompt.BackendNetworkX, "return 42")
	if rec.Pass {
		t.Fatal("wrong answer passed")
	}
	if rec.Stage != StageCompare || rec.ErrClass != LabelWrongCalc {
		t.Fatalf("rec = %+v", rec)
	}
	if !strings.Contains(rec.Err, "result mismatch") {
		t.Fatalf("err = %s", rec.Err)
	}
}

func TestEvaluateCodeStateDiffClassified(t *testing.T) {
	ev := trafficEval()
	q, _ := queries.ByID("ta-e1") // mutation query
	// Program returns nil (matching golden) but mutates nothing.
	rec := ev.EvaluateCode(q, prompt.BackendNetworkX, "return nil")
	if rec.Pass {
		t.Fatal("no-op mutation passed")
	}
	if rec.ErrClass != LabelGraphDiff {
		t.Fatalf("class = %s (%s)", rec.ErrClass, rec.Err)
	}
}

func TestEvaluateCodeExecErrorClasses(t *testing.T) {
	ev := trafficEval()
	q, _ := queries.ByID("ta-e2")
	cases := []struct {
		code  string
		label string
	}{
		{"return (", LabelSyntax},
		{`return graph.node(graph.nodes()[0])["bandwidth"]`, LabelAttr},
		{`return read_csv("x.csv")`, LabelName},
		{"return graph.degree()", LabelArgument},
		{`return "x" + 5`, LabelOperation},
	}
	for _, c := range cases {
		rec := ev.EvaluateCode(q, prompt.BackendNetworkX, c.code)
		if rec.Pass || rec.ErrClass != c.label {
			t.Errorf("code %q class = %s, want %s", c.code, rec.ErrClass, c.label)
		}
	}
}

func TestEvaluateModelRecordsCost(t *testing.T) {
	ev := trafficEval()
	model, _ := llm.NewSim("gpt-4")
	q, _ := queries.ByID("ta-e2")
	rec := ev.EvaluateModel(model, q, prompt.BackendNetworkX, 1, 0)
	if !rec.Pass {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.CostUSD <= 0 || rec.PromptTokens <= 0 || rec.CompletionTokens <= 0 {
		t.Fatalf("cost accounting: %+v", rec)
	}
	if rec.Model != "gpt-4" || rec.Trial != 1 {
		t.Fatalf("metadata: %+v", rec)
	}
}

func TestStrawmanPassAndFail(t *testing.T) {
	ev := trafficEval()
	model, _ := llm.NewSim("gpt-4")
	// Calibrated pass (easy position 0).
	q, _ := queries.ByID("ta-e1")
	rec := ev.EvaluateStrawman(model, q)
	if !rec.Pass {
		t.Fatalf("strawman pass cell failed: %+v", rec)
	}
	// Calibrated fail (easy position 5).
	q2, _ := queries.ByID("ta-e6")
	rec2 := ev.EvaluateStrawman(model, q2)
	if rec2.Pass {
		t.Fatal("strawman fail cell passed")
	}
	if rec2.ErrClass != LabelWrongCalc {
		t.Fatalf("class = %s", rec2.ErrClass)
	}
}

func TestStrawmanTokenLimit(t *testing.T) {
	// gpt-3's window cannot hold an 80-node JSON payload.
	ev := trafficEval()
	model, _ := llm.NewSim("gpt-3")
	q, _ := queries.ByID("ta-e1")
	rec := ev.EvaluateStrawman(model, q)
	if rec.Pass || rec.ErrClass != LabelTokenLimit {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.Stage != StageGenerate {
		t.Fatalf("stage = %s", rec.Stage)
	}
}

func TestOracleAnswerForms(t *testing.T) {
	ev := trafficEval()
	// Value-returning query: oracle is the Repr.
	q, _ := queries.ByID("ta-e2")
	ans, err := ev.OracleAnswer(q)
	if err != nil || ans != "80" {
		t.Fatalf("ans = %q err=%v", ans, err)
	}
	// Mutation query: oracle is the graph fingerprint.
	q2, _ := queries.ByID("ta-e1")
	ans2, err := ev.OracleAnswer(q2)
	if err != nil || !strings.HasPrefix(ans2, "digraph") {
		t.Fatalf("ans = %.40q err=%v", ans2, err)
	}
}

func TestResultEqualHostObjects(t *testing.T) {
	fa := dataframe.New("x")
	fa.AppendRow(1)
	fb := dataframe.New("x")
	fb.AppendRow(1)
	if !ResultEqual(nqlbind.NewFrameObject(fa), nqlbind.NewFrameObject(fb)) {
		t.Fatal("equal frames not equal")
	}
	fb.AppendRow(2)
	if ResultEqual(nqlbind.NewFrameObject(fa), nqlbind.NewFrameObject(fb)) {
		t.Fatal("different frames equal")
	}
	ga := graph.New()
	ga.AddNode("a", nil)
	gb := graph.New()
	gb.AddNode("a", nil)
	if !ResultEqual(nqlbind.NewGraphObject(ga), nqlbind.NewGraphObject(gb)) {
		t.Fatal("equal graphs not equal")
	}
	// Nested inside containers.
	m1 := nql.NewMap()
	_ = m1.Set("f", nqlbind.NewFrameObject(fa))
	m2 := nql.NewMap()
	_ = m2.Set("f", nqlbind.NewFrameObject(fa.Clone()))
	if !ResultEqual(m1, m2) {
		t.Fatal("maps of frames not equal")
	}
	// Mixed kinds never equal.
	if ResultEqual(nqlbind.NewFrameObject(fa), int64(1)) || ResultEqual(int64(1), nqlbind.NewFrameObject(fa)) {
		t.Fatal("frame vs scalar equal")
	}
	if !ResultEqual(nql.NewList(int64(1)), nql.NewList(float64(1))) {
		t.Fatal("numeric list equality")
	}
}

func TestStateEqualPerBackend(t *testing.T) {
	build := TrafficDataset(traffic.Config{Nodes: 10, Edges: 10, Seed: 3})
	a, b := build(), build()
	for _, backend := range prompt.Backends {
		if !StateEqual(backend, a, b) {
			t.Errorf("fresh instances differ for %s", backend)
		}
	}
	b.Graph.AddNode("zz", nil)
	if StateEqual(prompt.BackendNetworkX, a, b) {
		t.Error("graph change missed")
	}
	bNodes, _ := b.Frames()
	bNodes.AppendRow("zz", "1.2.3.4")
	if StateEqual(prompt.BackendPandas, a, b) {
		t.Error("frame change missed")
	}
	if _, err := b.Database().Exec("DELETE FROM edges WHERE bytes > 0"); err != nil {
		t.Fatal(err)
	}
	if StateEqual(prompt.BackendSQL, a, b) {
		t.Error("db change missed")
	}
}

func TestLoggerRoundTrip(t *testing.T) {
	log := NewLogger()
	log.Add(&Record{Model: "gpt-4", QueryID: "q1", Pass: true})
	log.Add(&Record{Model: "bard", QueryID: "q2", Pass: false, ErrClass: LabelSyntax})
	if log.Len() != 2 {
		t.Fatalf("len = %d", log.Len())
	}
	if len(log.Failures()) != 1 {
		t.Fatalf("failures = %d", len(log.Failures()))
	}
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], LabelSyntax) {
		t.Fatalf("jsonl = %q", buf.String())
	}
	if !strings.Contains(log.Summary(), "2 records") {
		t.Fatalf("summary = %q", log.Summary())
	}
}

func TestLabelForClassMapping(t *testing.T) {
	cases := map[string]string{
		"syntax":    LabelSyntax,
		"attribute": LabelAttr,
		"name":      LabelName,
		"argument":  LabelArgument,
		"operation": LabelOperation,
		"value":     LabelOperation,
		"index":     LabelOperation,
		"limit":     LabelOperation,
		"whatever":  LabelOperation,
	}
	for class, want := range cases {
		if got := LabelForClass(class); got != want {
			t.Errorf("LabelForClass(%s) = %s, want %s", class, got, want)
		}
	}
}

func TestGoldenStageOnBrokenGolden(t *testing.T) {
	ev := trafficEval()
	q := queries.Query{
		ID: "fake", App: queries.AppTraffic, Complexity: queries.Easy,
		Text:   "fake",
		Golden: map[string]string{"networkx": "return undefined_thing"},
	}
	rec := ev.EvaluateCode(q, prompt.BackendNetworkX, "return 1")
	if rec.Stage != StageGolden || rec.ErrClass != LabelHarness {
		t.Fatalf("rec = %+v", rec)
	}
	// Missing golden entirely.
	q.Golden = nil
	rec = ev.EvaluateCode(q, prompt.BackendNetworkX, "return 1")
	if rec.Stage != StageGolden {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestDiagnosisInstanceBindings(t *testing.T) {
	build := DatasetFor(queries.AppDiagnosis)
	inst := build()
	if inst.ProbesList == nil || inst.Probes == nil {
		t.Fatal("diagnosis instance missing probes")
	}
	b := inst.Bindings(prompt.BackendNetworkX)
	if _, ok := b["probes"]; !ok {
		t.Fatal("networkx bindings missing probes")
	}
	bp := inst.Bindings(prompt.BackendPandas)
	if _, ok := bp["probes_df"]; !ok {
		t.Fatal("pandas bindings missing probes_df")
	}
}

package nemoeval

import (
	"testing"

	"repro/internal/nql"
	"repro/internal/prompt"
	"repro/internal/queries"
)

// TestGoldenResultSnapshots pins the exact results of representative golden
// programs on the standard datasets. These values were produced by this
// harness and eyeballed for plausibility; the test exists to catch silent
// regressions in any layer (generator seeds, graph algorithms, NQL
// semantics, SQL engine) — if one of these changes, something changed the
// benchmark's ground truth.
func TestGoldenResultSnapshots(t *testing.T) {
	cases := []struct {
		app     string
		queryID string
		backend string
		want    string
	}{
		// Traffic (80 nodes / 80 edges / seed 42).
		{queries.AppTraffic, "ta-e2", "networkx", "80"},
		{queries.AppTraffic, "ta-e3", "sql", "80"},
		{queries.AppTraffic, "ta-e5", "pandas", "36529430"},
		{queries.AppTraffic, "ta-e6", "networkx", `"h049"`},
		{queries.AppTraffic, "ta-m7", "networkx", "4"},
		{queries.AppTraffic, "ta-m4", "sql", "-1"},
		{queries.AppTraffic, "ta-h4", "networkx", "13"},

		// MALT (5493 entities / 6424 relationships).
		{queries.AppMALT, "malt-e2", "networkx", "16"},
		{queries.AppMALT, "malt-e3", "pandas", "448"},
		{queries.AppMALT, "malt-e3", "sql", "448"},
		{queries.AppMALT, "malt-h2", "networkx", `{"ju1": 9, "ju2": 10}`},
		{queries.AppMALT, "malt-m2", "sql", `{"dc.ju1": 296, "dc.ju2": 322, "dc.ju3": 302, "dc.ju4": 302}`},

		// Diagnosis extension (60 nodes / 120 edges / seed 11).
		{queries.AppDiagnosis, "diag-e1", "networkx", "4"},
		{queries.AppDiagnosis, "diag-e2", "pandas", `["p004", "p021"]`},
		{queries.AppDiagnosis, "diag-h2", "sql", "[]"},
	}
	evs := map[string]*Evaluator{}
	for _, c := range cases {
		ev, ok := evs[c.app]
		if !ok {
			ev = NewEvaluator(DatasetFor(c.app))
			evs[c.app] = ev
		}
		q, ok := queries.ByID(c.queryID)
		if !ok {
			t.Fatalf("unknown query %s", c.queryID)
		}
		val, _, err := ev.RunGolden(q, c.backend)
		if err != nil {
			t.Errorf("%s/%s: %v", c.queryID, c.backend, err)
			continue
		}
		if got := nql.Repr(val); got != c.want {
			t.Errorf("%s/%s = %s, want %s", c.queryID, c.backend, got, c.want)
		}
	}
}

// TestCrossBackendAgreement: for pure read-only queries whose result shape
// is backend-independent, all three goldens must produce the same value on
// the same logical dataset — the backends are three views of one network.
func TestCrossBackendAgreement(t *testing.T) {
	agree := []string{
		// Read-only traffic queries with backend-independent contracts.
		"ta-e2", "ta-e3", "ta-e4", "ta-e5", "ta-e6", "ta-e8",
		"ta-m3", "ta-m4", "ta-m5", "ta-m6", "ta-m7",
		"ta-h4", "ta-h6", "ta-h7", "ta-h8",
		// MALT read-only queries.
		"malt-e1", "malt-e2", "malt-e3", "malt-m1", "malt-m2", "malt-m3",
		"malt-h2", "malt-h3",
		// All diagnosis queries are read-only.
		"diag-e1", "diag-e2", "diag-m1", "diag-m2", "diag-h1", "diag-h2",
	}
	evs := map[string]*Evaluator{}
	for _, id := range agree {
		q, ok := queries.ByID(id)
		if !ok {
			t.Fatalf("unknown query %s", id)
		}
		ev, ok := evs[q.App]
		if !ok {
			ev = NewEvaluator(DatasetFor(q.App))
			evs[q.App] = ev
		}
		var ref nql.Value
		for i, backend := range prompt.Backends {
			val, _, err := ev.RunGolden(q, backend)
			if err != nil {
				t.Errorf("%s/%s: %v", id, backend, err)
				continue
			}
			if i == 0 {
				ref = val
				continue
			}
			if !ResultEqual(ref, val) {
				t.Errorf("%s: %s disagrees: %s vs %s", id, backend,
					nql.Repr(ref), nql.Repr(val))
			}
		}
	}
}

package nemoeval

import (
	"math"
	"testing"

	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/queries"
)

// TestMeasuredAccuracyMatchesCalibration runs the full matrix and checks
// the *measured* pass fraction of every (model, backend, app) cell equals
// the calibrated expectation — i.e. the paper's Table 2. A mutated "fail"
// program that accidentally passes, or a golden emitted for a "pass" cell
// that trips the sandbox, both surface here.
func TestMeasuredAccuracyMatchesCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix run")
	}
	for _, app := range []string{queries.AppTraffic, queries.AppMALT} {
		ev := NewEvaluator(DatasetFor(app))
		var suite []queries.Query
		if app == queries.AppTraffic {
			suite = queries.Traffic()
		} else {
			suite = queries.MALT()
		}
		for _, modelName := range llm.ModelNames {
			model, err := llm.NewSim(modelName)
			if err != nil {
				t.Fatal(err)
			}
			for _, backend := range prompt.Backends {
				pass := 0
				for _, q := range suite {
					rec := ev.EvaluateModel(model, q, backend, 1, 0)
					if rec.Pass {
						pass++
					}
				}
				got := float64(pass) / float64(len(suite))
				want := llm.ExpectedAccuracy(modelName, backend, app)
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("%s/%s/%s measured accuracy %.4f, calibrated %.4f",
						modelName, backend, app, got, want)
				}
			}
		}
	}
}

// TestEveryFailCellFailsWithIntendedLabel asserts that each calibrated
// NetworkX failure is measured in the matching Table 5 bucket.
func TestEveryFailCellFailsWithIntendedLabel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix run")
	}
	wantLabel := map[string]string{
		llm.FaultSyntax:    LabelSyntax,
		llm.FaultAttr:      LabelAttr,
		llm.FaultName:      LabelName,
		llm.FaultArgument:  LabelArgument,
		llm.FaultOperation: LabelOperation,
		llm.FaultWrongCalc: LabelWrongCalc,
		llm.FaultGraphDiff: LabelGraphDiff,
	}
	for _, app := range []string{queries.AppTraffic, queries.AppMALT} {
		ev := NewEvaluator(DatasetFor(app))
		var suite []queries.Query
		if app == queries.AppTraffic {
			suite = queries.Traffic()
		} else {
			suite = queries.MALT()
		}
		for _, modelName := range llm.ModelNames {
			model, err := llm.NewSim(modelName)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range suite {
				out := llm.OutcomeOf(modelName, app, prompt.BackendNetworkX, q.ID)
				rec := ev.EvaluateModel(model, q, prompt.BackendNetworkX, 1, 0)
				if out.Pass {
					if !rec.Pass {
						t.Errorf("%s/%s calibrated pass but measured fail: %s %s", modelName, q.ID, rec.ErrClass, rec.Err)
					}
					continue
				}
				if rec.Pass {
					t.Errorf("%s/%s calibrated fail(%s) but measured pass", modelName, q.ID, out.Class)
					continue
				}
				if want := wantLabel[out.Class]; rec.ErrClass != want {
					t.Errorf("%s/%s expected label %q, measured %q (%s)", modelName, q.ID, want, rec.ErrClass, rec.Err)
				}
			}
		}
	}
}

package nemoeval

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// sweepCfg is the scale the shard pipeline exists for: a graph no single
// evaluation instance would want to clone per worker.
var sweepCfg = traffic.Config{Nodes: 10000, Edges: 50000, Seed: 42}

// TestStreamSweepShardedMatchesUnsharded is the pipeline's core guarantee:
// the merged aggregates of an 8-shard sweep are byte-identical to the
// unsharded (single-shard) run on the same seed, for serial and parallel
// worker pools alike.
func TestStreamSweepShardedMatchesUnsharded(t *testing.T) {
	r := NewRunner()
	unsharded, err := r.StreamSweep(sweepCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := r.StreamSweep(sweepCfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if unsharded != sharded {
		t.Fatalf("8-shard sweep diverged from unsharded run:\n--- unsharded ---\n%s--- sharded ---\n%s", unsharded, sharded)
	}
	serial := NewRunner()
	serial.Workers = 1
	serialOut, err := serial.StreamSweep(sweepCfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serialOut != sharded {
		t.Fatalf("worker count changed the sweep report:\n--- serial ---\n%s--- parallel ---\n%s", serialOut, sharded)
	}
	// Sanity on the content: all streamed edges must have arrived.
	if want := "10000 nodes, 50000 edges"; !strings.Contains(sharded, want) {
		t.Fatalf("report missing %q:\n%s", want, sharded)
	}
}

// TestShardedBuildResumesFromCursor stops a sharded build mid-stream,
// round-trips the cursor through its serialized form, resumes, and checks
// every shard master is byte-identical to a straight-through build.
func TestShardedBuildResumesFromCursor(t *testing.T) {
	cfg := traffic.Config{Nodes: 2000, Edges: 12000, Seed: 7}
	straight, err := BuildShardedTraffic(cfg, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}

	resumedBuild, err := NewShardedTraffic(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := traffic.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for consumed := 0; consumed < 5000; {
		b := st.Next(700)
		resumedBuild.Apply(b)
		consumed += len(b)
	}
	cur, err := traffic.ParseCursor(st.Cursor().Encode())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := traffic.ResumeStream(cur)
	if err != nil {
		t.Fatal(err)
	}
	for {
		b := st2.Next(901)
		if len(b) == 0 {
			break
		}
		resumedBuild.Apply(b)
	}
	resumedBuild.Freeze()

	for i := range straight.Shards {
		if !graph.Equal(straight.Shards[i].Master, resumedBuild.Shards[i].Master) {
			t.Fatalf("shard %d differs after stop/resume", i)
		}
	}
	r := NewRunner()
	a, err := r.SweepDataset(straight)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.SweepDataset(resumedBuild)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Fatal("resumed dataset swept differently from straight-through build")
	}
}

// TestShardPartitionInvariants checks the dataset layer's structural
// contract: shards tile the node range, own every edge they hold by
// destination, and the shard-count choice never loses an edge.
func TestShardPartitionInvariants(t *testing.T) {
	cfg := traffic.Config{Nodes: 1003, Edges: 8000, Seed: 11}
	for _, shards := range []int{1, 3, 8} {
		d, err := BuildShardedTraffic(cfg, shards, 512)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		totalEdges := 0
		for _, sh := range d.Shards {
			if sh.Lo != covered {
				t.Fatalf("shards=%d: shard %d starts at %d, want %d", shards, sh.Index, sh.Lo, covered)
			}
			covered = sh.Hi
			totalEdges += sh.Master.NumEdges()
			for _, e := range sh.Master.EdgesView() {
				v := traffic.NodeIndex(e.V)
				if v < sh.Lo || v >= sh.Hi {
					t.Fatalf("shards=%d: shard %d holds foreign dst %s", shards, sh.Index, e.V)
				}
			}
		}
		if covered != cfg.Nodes {
			t.Fatalf("shards=%d: shards cover [0,%d), want [0,%d)", shards, covered, cfg.Nodes)
		}
		if totalEdges != cfg.Edges {
			t.Fatalf("shards=%d: %d edges across shards, want %d", shards, totalEdges, cfg.Edges)
		}
	}
	// Union of shard masters must reassemble the exact single-shard graph.
	one, err := BuildShardedTraffic(cfg, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := BuildShardedTraffic(cfg, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	union := graph.NewDirected()
	union.GraphAttrs()["app"] = "traffic-analysis"
	st, _ := traffic.NewStream(cfg)
	for i := 0; i < cfg.Nodes; i++ {
		union.AddNode(st.NodeID(i), nil)
	}
	for _, sh := range eight.Shards {
		union.Merge(sh.Master)
	}
	full := one.Shards[0].Master
	if union.NumNodes() != full.NumNodes() || union.NumEdges() != full.NumEdges() {
		t.Fatalf("union %v vs full %v", union, full)
	}
	for _, e := range full.EdgesView() {
		got := union.EdgeAttrsView(e.U, e.V)
		if got == nil || got["bytes"] != e.Attrs["bytes"] {
			t.Fatalf("edge %s->%s lost or mutated in shard union", e.U, e.V)
		}
	}
}

// TestShardDatasetClonesAreIsolated exercises the evaluator-facing shard
// instances: a worker's clone must not leak writes into the frozen shard
// master or sibling clones.
func TestShardDatasetClonesAreIsolated(t *testing.T) {
	d, err := BuildShardedTraffic(traffic.Config{Nodes: 100, Edges: 300, Seed: 5}, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	build := d.ShardDataset(2)
	a, b := build(), build()
	edges := a.G().EdgesView()
	if len(edges) == 0 {
		t.Fatal("shard 2 has no edges to test with")
	}
	e := edges[0]
	if err := a.G().SetEdgeAttr(e.U, e.V, "bytes", int64(1)); err != nil {
		t.Fatal(err)
	}
	if b.G().EdgeAttrsView(e.U, e.V)["bytes"] == int64(1) && e.Attrs["bytes"] != int64(1) {
		t.Fatal("write leaked between shard instance clones")
	}
	if d.Shards[2].Master.EdgeAttrsView(e.U, e.V)["bytes"] != e.Attrs["bytes"] {
		t.Fatal("write leaked into the frozen shard master")
	}
	nodes, _ := a.Frames()
	if nodes.NumRows() != a.G().NumNodes() {
		t.Fatalf("lazy frames rows %d vs nodes %d", nodes.NumRows(), a.G().NumNodes())
	}
}

package nemoeval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// Stream-sweep PageRank parameters (the graph library's conventional
// defaults, fixed here so sweep reports are comparable across PRs).
const (
	sweepDamping = 0.85
	sweepMaxIter = 100
	sweepTol     = 1e-9
)

// shardAggregate is one shard worker's contribution to the sweep: integer
// totals, the complete in-degrees of its owned nodes, partial out-degrees
// for every node its edges touch, a spanning forest of its edge set (for
// the component merge) and the sorted pred lists PageRank gathers over.
// Everything merges deterministically: integer sums and concatenations are
// order-independent, and the pred list of an owned node is complete within
// its shard, so each PageRank gather is computed by exactly one shard from
// the same ordered inputs regardless of the shard count — the merged
// aggregates are byte-identical to an unsharded (single-shard) run.
type shardAggregate struct {
	edges                 int64
	bytes, conns, packets int64
	inDeg                 []int32    // owned nodes, len Hi-Lo
	outDeg                []int32    // global length (sparse partials)
	forest                [][2]int32 // union-find tree edges, global indices
	preds                 [][]int32  // per owned node, sorted global pred indices
}

// unionFind is a path-halving disjoint-set over node indices, shared by
// the per-shard forest extraction and the cross-shard component merge so
// the two sides cannot drift apart.
type unionFind []int32

func newUnionFind(n int) unionFind {
	uf := make(unionFind, n)
	for i := range uf {
		uf[i] = int32(i)
	}
	return uf
}

func (uf unionFind) find(x int32) int32 {
	for uf[x] != x {
		uf[x] = uf[uf[x]]
		x = uf[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were distinct.
func (uf unionFind) union(a, b int32) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	uf[ra] = rb
	return true
}

// aggregateShard folds one shard's edges into a shardAggregate. Workers
// read the frozen master directly — aggregation never writes, the master
// is immutable after Freeze and each worker reads a distinct shard, so no
// per-worker clone is needed (mutating workloads go through ShardDataset,
// which does clone).
func aggregateShard(sh *TrafficShard, n int) (*shardAggregate, error) {
	agg := &shardAggregate{
		inDeg:  make([]int32, sh.Hi-sh.Lo),
		outDeg: make([]int32, n),
		preds:  make([][]int32, sh.Hi-sh.Lo),
	}
	uf := newUnionFind(n)
	for _, e := range sh.Master.EdgesView() {
		u, v := traffic.NodeIndex(e.U), traffic.NodeIndex(e.V)
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("nemoeval: shard %d holds foreign node id on edge %s->%s", sh.Index, e.U, e.V)
		}
		if v < sh.Lo || v >= sh.Hi {
			return nil, fmt.Errorf("nemoeval: shard %d [%d,%d) holds edge to unowned dst %s", sh.Index, sh.Lo, sh.Hi, e.V)
		}
		agg.edges++
		agg.bytes += attrInt(e.Attrs, "bytes")
		agg.conns += attrInt(e.Attrs, "connections")
		agg.packets += attrInt(e.Attrs, "packets")
		agg.outDeg[u]++
		agg.inDeg[v-sh.Lo]++
		agg.preds[v-sh.Lo] = append(agg.preds[v-sh.Lo], int32(u))
		if uf.union(int32(u), int32(v)) {
			agg.forest = append(agg.forest, [2]int32{int32(u), int32(v)})
		}
	}
	for _, ps := range agg.preds {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	}
	return agg, nil
}

func attrInt(a graph.Attrs, key string) int64 {
	v, _ := a[key].(int64)
	return v
}

// SweepResult is the deterministic merge of every shard's aggregates.
type SweepResult struct {
	Cfg                   traffic.Config
	Edges                 int64
	Bytes, Conns, Packets int64
	InDeg, OutDeg         []int32
	Components            int
	LargestComponent      int
	Rank                  []float64
	RankIters             int
}

// StreamSweep builds the config as a streamed, sharded dataset, fans
// per-shard aggregation over the worker pool, and renders the merged
// degree / component / PageRank report. The report is a pure function of
// cfg — byte-identical for any shard count (1 reproduces the unsharded
// sweep) and any worker count.
func (r *Runner) StreamSweep(cfg traffic.Config, shards int) (string, error) {
	d, err := BuildShardedTraffic(cfg, shards, 0)
	if err != nil {
		return "", err
	}
	res, err := r.SweepDataset(d)
	if err != nil {
		return "", err
	}
	return res.Report(), nil
}

// SweepDataset runs the sharded aggregation over an already-built (possibly
// stream-resumed) dataset.
func (r *Runner) SweepDataset(d *ShardedTraffic) (*SweepResult, error) {
	n := d.Cfg.Nodes
	aggs := make([]*shardAggregate, len(d.Shards))
	errs := make([]error, len(d.Shards))
	parallelFor(r.workers(), len(d.Shards), func(i int) {
		aggs[i], errs[i] = aggregateShard(d.Shards[i], n)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Deterministic merge, shard-index order: integer totals sum, the
	// per-shard out-degree partials sum element-wise, owned in-degree
	// ranges concatenate, and the spanning forests union into one
	// union-find whose final partition is independent of merge order.
	res := &SweepResult{Cfg: d.Cfg, InDeg: make([]int32, n), OutDeg: make([]int32, n)}
	uf := newUnionFind(n)
	for si, agg := range aggs {
		res.Edges += agg.edges
		res.Bytes += agg.bytes
		res.Conns += agg.conns
		res.Packets += agg.packets
		copy(res.InDeg[d.Shards[si].Lo:d.Shards[si].Hi], agg.inDeg)
		for i, c := range agg.outDeg {
			res.OutDeg[i] += c
		}
		for _, pair := range agg.forest {
			uf.union(pair[0], pair[1])
		}
	}
	compSize := map[int32]int{}
	for i := 0; i < n; i++ {
		compSize[uf.find(int32(i))]++
	}
	res.Components = len(compSize)
	for _, sz := range compSize {
		if sz > res.LargestComponent {
			res.LargestComponent = sz
		}
	}

	res.Rank, res.RankIters = r.shardedPageRank(d, aggs, res.OutDeg)
	return res, nil
}

// shardedPageRank runs the power iteration with per-destination gathers
// fanned over the worker pool: each shard computes the new rank of its
// owned nodes from the full previous rank vector and its complete, sorted
// pred lists, writing a disjoint segment of next. Because every rank entry
// is produced by exactly one shard from identically ordered inputs, the
// float results are bit-identical for any shard or worker count; the
// dangling-mass and convergence terms are reduced centrally in global node
// order for the same reason.
func (r *Runner) shardedPageRank(d *ShardedTraffic, aggs []*shardAggregate, outDeg []int32) ([]float64, int) {
	n := d.Cfg.Nodes
	if n == 0 {
		return nil, 0
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	invDeg := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
		if outDeg[i] > 0 {
			invDeg[i] = 1.0 / float64(outDeg[i])
		}
	}
	iters := 0
	for iter := 0; iter < sweepMaxIter; iter++ {
		iters = iter + 1
		parallelFor(r.workers(), len(d.Shards), func(s int) {
			sh, agg := d.Shards[s], aggs[s]
			for v := sh.Lo; v < sh.Hi; v++ {
				sum := 0.0
				for _, u := range agg.preds[v-sh.Lo] {
					sum += rank[u] * invDeg[u]
				}
				next[v] = sum
			}
		})
		dangling := 0.0
		for i := 0; i < n; i++ {
			if outDeg[i] == 0 {
				dangling += rank[i]
			}
		}
		base := (1-sweepDamping)/float64(n) + sweepDamping*dangling/float64(n)
		change := 0.0
		for i := 0; i < n; i++ {
			v := base + sweepDamping*next[i]
			diff := v - rank[i]
			if diff < 0 {
				diff = -diff
			}
			change += diff
			rank[i] = v
		}
		if change < sweepTol {
			break
		}
	}
	return rank, iters
}

// Report renders the merged aggregates. Shard and worker counts are
// deliberately absent: the text is the sweep's golden output, compared
// byte-for-byte between sharded and unsharded runs.
func (res *SweepResult) Report() string {
	n := res.Cfg.Nodes
	width := traffic.IDWidth(n)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Stream sweep: %d nodes, %d edges (seed %d)\n", n, res.Edges, res.Cfg.Seed)
	fmt.Fprintf(&sb, "totals: bytes=%d connections=%d packets=%d\n", res.Bytes, res.Conns, res.Packets)
	if n > 0 {
		maxIn, maxOut := argmax(res.InDeg), argmax(res.OutDeg)
		fmt.Fprintf(&sb, "degree: max_in=%d (%s) max_out=%d (%s) mean_total=%.4f\n",
			res.InDeg[maxIn], traffic.NodeID(maxIn, width),
			res.OutDeg[maxOut], traffic.NodeID(maxOut, width),
			2*float64(res.Edges)/float64(n))
	}
	fmt.Fprintf(&sb, "components: count=%d largest=%d\n", res.Components, res.LargestComponent)
	fmt.Fprintf(&sb, "pagerank: damping=%.2f iterations=%d\n", sweepDamping, res.RankIters)
	top := topK(n, 5, func(a, b int) bool {
		da := int(res.InDeg[a]) + int(res.OutDeg[a])
		db := int(res.InDeg[b]) + int(res.OutDeg[b])
		if da != db {
			return da > db
		}
		return a < b
	})
	sb.WriteString("top5 degree:")
	for _, i := range top {
		fmt.Fprintf(&sb, " %s=%d", traffic.NodeID(i, width), int(res.InDeg[i])+int(res.OutDeg[i]))
	}
	sb.WriteString("\n")
	top = topK(n, 5, func(a, b int) bool {
		if res.Rank[a] != res.Rank[b] {
			return res.Rank[a] > res.Rank[b]
		}
		return a < b
	})
	sb.WriteString("top5 pagerank:")
	for _, i := range top {
		fmt.Fprintf(&sb, " %s=%.8f", traffic.NodeID(i, width), res.Rank[i])
	}
	sb.WriteString("\n")
	return sb.String()
}

// argmax returns the lowest index attaining the maximum (0 for empty).
func argmax(xs []int32) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// topK returns the indices of the k best elements of [0,n) under less,
// sorted best-first.
func topK(n, k int, less func(a, b int) bool) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
	if k > n {
		k = n
	}
	return idx[:k]
}

package nemoeval

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/modelserve"
	"repro/internal/queries"
)

func newGateway(t *testing.T, cfg modelserve.Config) *modelserve.Gateway {
	t.Helper()
	gw, err := modelserve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gw
}

// TestGatewayRetryExhaustionClassification: a provider that never stops
// flaking must surface as a generate-stage failure carrying the matching
// Table 5 report label — rate-limit exhaustion and outage exhaustion land
// on distinct rows.
func TestGatewayRetryExhaustionClassification(t *testing.T) {
	cases := []struct {
		kind  modelserve.ErrKind
		label string
	}{
		{modelserve.KindRateLimited, LabelRateLimit},
		{modelserve.KindUnavailable, LabelProvider},
	}
	ev := NewEvaluator(TrafficDataset(DefaultTrafficConfig))
	q, _ := queries.ByID("ta-e1")
	for _, tc := range cases {
		gw := newGateway(t, modelserve.Config{
			Provider:    &modelserve.Chaos{Inner: modelserve.NewSimProvider(), TransientFailures: 100, TransientKind: tc.kind},
			BatchSize:   1,
			BatchWindow: -1,
			MaxRetries:  2,
			BackoffBase: time.Nanosecond,
		})
		model := llm.NewProviderModel(gw, "gpt-4")
		rec := ev.EvaluateModel(model, q, "networkx", 1, 0)
		if rec.Pass {
			t.Fatalf("%v: evaluation passed through a dead provider", tc.kind)
		}
		if rec.Stage != StageGenerate {
			t.Fatalf("%v: stage %q, want %q", tc.kind, rec.Stage, StageGenerate)
		}
		if rec.ErrClass != tc.label {
			t.Fatalf("%v: ErrClass %q, want %q", tc.kind, rec.ErrClass, tc.label)
		}
		if !strings.Contains(rec.Err, "after 3 attempts") {
			t.Fatalf("%v: error %q does not report the attempt count", tc.kind, rec.Err)
		}
	}
}

// TestGatewayReplayMissClassifiesAsHarness: an incomplete recording is a
// harness problem, not provider behavior.
func TestGatewayReplayMissClassifiesAsHarness(t *testing.T) {
	replay, err := modelserve.NewReplay(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(t, modelserve.Config{Provider: replay, BatchSize: 1, BatchWindow: -1, BackoffBase: time.Nanosecond})
	ev := NewEvaluator(TrafficDataset(DefaultTrafficConfig))
	q, _ := queries.ByID("ta-e1")
	rec := ev.EvaluateModel(llm.NewProviderModel(gw, "gpt-4"), q, "networkx", 1, 0)
	if rec.Stage != StageGenerate || rec.ErrClass != LabelHarness {
		t.Fatalf("replay miss: stage %q class %q, want %q/%q", rec.Stage, rec.ErrClass, StageGenerate, LabelHarness)
	}
}

// TestGatewayRateLimitFairnessUnderWorkerPool drives the full traffic
// matrix for one model over a parallel worker pool through a
// rate-limited, batching gateway (run under -race in CI): every cell must
// complete with the exact result the direct sims produce — no starvation,
// no response cross-wiring — while the limiter demonstrably engaged.
func TestGatewayRateLimitFairnessUnderWorkerPool(t *testing.T) {
	gw := newGateway(t, modelserve.Config{
		Provider:    modelserve.NewSimProvider(),
		BatchSize:   4,
		BatchWindow: 2 * time.Millisecond,
		// Burst 1 under a high rate: any coalesced batch overdraws the
		// bucket and must wait, but the debt (a few requests at 50k/s)
		// clears in microseconds — the limiter engages deterministically
		// without slowing the test.
		RPS:   50000,
		Burst: 1,
	})
	// Warm-up burst: 32 concurrent generations guarantee coalesced
	// batches (and therefore rate-limit waits) regardless of how slowly
	// the matrix below trickles requests in under -race.
	var warm sync.WaitGroup
	for i := 0; i < 32; i++ {
		warm.Add(1)
		go func(i int) {
			defer warm.Done()
			if _, err := gw.Generate("gpt-4", llm.Request{Prompt: fmt.Sprintf("warm-up %d", i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	warm.Wait()
	run := func(provider llm.Provider, workers int) map[string]*CellResult {
		r := NewRunner()
		r.Models = []string{"gpt-4"}
		r.Workers = workers
		r.Provider = provider
		cells, err := r.RunApp(queries.AppTraffic, false)
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	direct := run(nil, 1)
	gated := run(gw, 8)
	for key, want := range direct {
		got, ok := gated[key]
		if !ok {
			t.Fatalf("cell %s missing from gateway run", key)
		}
		if got.Accuracy != want.Accuracy {
			t.Fatalf("cell %s: accuracy %v via gateway, %v direct", key, got.Accuracy, want.Accuracy)
		}
		for i, rec := range want.Records {
			if g := got.Records[i]; g.Pass != rec.Pass || g.Code != rec.Code || g.ErrClass != rec.ErrClass {
				t.Fatalf("cell %s record %d differs via gateway", key, i)
			}
		}
	}
	stats := gw.Stats()
	if stats.RateWaits == 0 {
		t.Fatal("rate limiter never engaged; lower RPS to make the test meaningful")
	}
	if stats.Failures != 0 {
		t.Fatalf("%d requests starved or failed under the rate limiter", stats.Failures)
	}
}

// TestRecordReplayMatrixParity records a seeded matrix slice through the
// gateway-fronted sims, then replays it: the rendered table must be
// byte-identical, the replay must issue zero provider misses, and a
// replayed record set must survive any worker count.
func TestRecordReplayMatrixParity(t *testing.T) {
	dir := t.TempDir()
	table := func(provider llm.Provider, workers int) string {
		r := NewRunner()
		r.Models = []string{"gpt-4", "bard"} // bard: 5 trials exercises attempt keys
		r.Workers = workers
		r.Provider = provider
		out, err := r.Table3()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	direct := table(nil, 2)

	recorder, err := modelserve.NewRecorder(modelserve.NewSimProvider(), dir)
	if err != nil {
		t.Fatal(err)
	}
	recGW := newGateway(t, modelserve.Config{Provider: recorder, BatchSize: 4, BatchWindow: time.Millisecond})
	recorded := table(recGW, 4)
	if recorded != direct {
		t.Fatal("recording run diverged from the direct sims")
	}
	if stats := recGW.Stats(); stats.CacheWrites == 0 {
		t.Fatal("recording run wrote no cache entries")
	}

	replay, err := modelserve.NewReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	repGW := newGateway(t, modelserve.Config{Provider: replay, BatchSize: 4, BatchWindow: time.Millisecond})
	replayed := table(repGW, 8)
	if replayed != direct {
		t.Fatal("replayed table is not byte-identical to the recorded run")
	}
	stats := repGW.Stats()
	if stats.CacheMisses != 0 {
		t.Fatalf("replay run missed %d recorded entries", stats.CacheMisses)
	}
	if stats.CacheHits == 0 {
		t.Fatal("replay run served nothing from the cache")
	}
}

// TestLabelForGenerateErr pins the generate-stage classifier's mapping.
func TestLabelForGenerateErr(t *testing.T) {
	cases := []struct {
		err   error
		label string
	}{
		{&modelserve.ProviderError{Kind: modelserve.KindTokenLimit}, LabelTokenLimit},
		{&modelserve.ProviderError{Kind: modelserve.KindRateLimited}, LabelRateLimit},
		{&modelserve.ProviderError{Kind: modelserve.KindUnavailable}, LabelProvider},
		{&modelserve.ProviderError{Kind: modelserve.KindBadResponse}, LabelProvider},
		{&modelserve.ProviderError{Kind: modelserve.KindNotFound}, LabelHarness},
		{errors.New("anything else"), LabelTokenLimit},
	}
	for _, tc := range cases {
		if got := LabelForGenerateErr(tc.err); got != tc.label {
			t.Errorf("LabelForGenerateErr(%v) = %q, want %q", tc.err, got, tc.label)
		}
	}
}

// TestGatewayReport ensures the stats line surfaces when (and only when)
// a gateway is configured.
func TestGatewayReport(t *testing.T) {
	r := NewRunner()
	if got := r.GatewayReport(); got != "" {
		t.Fatalf("no-gateway runner reported %q", got)
	}
	r.Provider = newGateway(t, modelserve.Config{Provider: modelserve.NewSimProvider()})
	if got := r.GatewayReport(); !strings.HasPrefix(got, "gateway: ") {
		t.Fatalf("gateway report %q", got)
	}
}

package nemoeval

import (
	"repro/internal/nql/analysis"
	"repro/internal/prompt"
)

// StaticGlobals describes one backend's host binding surface for the
// semantic analyzer: every name Instance.Bindings can install, with its
// static type. It is the bridge between the runtime surface and
// analysis.CheckNames — netqueryd vets request programs against it before
// admission, and nqlvet checks every golden program × backend in CI.
//
// The map is deliberately the permissive union: probe bindings are
// dataset-conditional at runtime but always declared here, so a program
// that uses them never draws a false NQ100 on instances that carry
// probes. An unknown backend returns nil ("surface unknown"), which
// disables name resolution entirely rather than mis-flagging.
func StaticGlobals(backend string) map[string]analysis.Type {
	g := map[string]analysis.Type{"kmeans": analysis.TFunc}
	switch backend {
	case prompt.BackendFederated:
		g["graph"] = analysis.TGraph
		g["nodes_df"] = analysis.TFrame
		g["edges_df"] = analysis.TFrame
		g["probes_df"] = analysis.TFrame
		g["probes"] = analysis.TList
		g["db"] = analysis.TObj
		g["fed"] = analysis.TObj
	case prompt.BackendNetworkX:
		g["graph"] = analysis.TGraph
		g["probes"] = analysis.TList
	case prompt.BackendPandas:
		g["nodes_df"] = analysis.TFrame
		g["edges_df"] = analysis.TFrame
		g["probes_df"] = analysis.TFrame
	case prompt.BackendSQL:
		g["db"] = analysis.TObj
	default:
		return nil
	}
	return g
}

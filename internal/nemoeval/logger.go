package nemoeval

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Logger is the results logger of Figure 3: it retains every evaluation
// record for post-hoc analysis and can dump them as JSON lines.
type Logger struct {
	mu      sync.Mutex
	records []*Record
}

// NewLogger creates an empty logger.
func NewLogger() *Logger { return &Logger{} }

// Add appends one record.
func (l *Logger) Add(rec *Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, rec)
}

// Records returns a snapshot of all records.
func (l *Logger) Records() []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Record(nil), l.records...)
}

// Len returns the record count.
func (l *Logger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Failures returns the records that did not pass.
func (l *Logger) Failures() []*Record {
	var out []*Record
	for _, r := range l.Records() {
		if !r.Pass {
			out = append(out, r)
		}
	}
	return out
}

// WriteJSONL dumps all records as JSON lines.
func (l *Logger) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range l.Records() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a one-line overview.
func (l *Logger) Summary() string {
	recs := l.Records()
	pass := 0
	for _, r := range recs {
		if r.Pass {
			pass++
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d records, %d pass, %d fail", len(recs), pass, len(recs)-pass)
	return sb.String()
}

package nemoeval

import (
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/queries"
)

// TestFaultInjectionAllBackends drives every mechanical mutator class
// through every backend and asserts the measured classification matches —
// the full Table 5 taxonomy is reproducible on any backend, not just
// NetworkX.
func TestFaultInjectionAllBackends(t *testing.T) {
	classes := map[string]string{
		llm.FaultSyntax:    LabelSyntax,
		llm.FaultAttr:      LabelAttr,
		llm.FaultName:      LabelName,
		llm.FaultArgument:  LabelArgument,
		llm.FaultOperation: LabelOperation,
	}
	apps := map[string]string{
		queries.AppTraffic: "ta-e2",
		queries.AppMALT:    "malt-e3",
	}
	for app, qid := range apps {
		ev := NewEvaluator(DatasetFor(app))
		q, _ := queries.ByID(qid)
		for _, backend := range prompt.Backends {
			golden := q.Golden[backend]
			for class, wantLabel := range classes {
				code := llm.Mutate(golden, class, backend, q, "t")
				rec := ev.EvaluateCode(q, backend, code)
				if rec.Pass {
					t.Errorf("%s/%s/%s: mutated code passed", app, backend, class)
					continue
				}
				if rec.ErrClass != wantLabel {
					t.Errorf("%s/%s/%s: classified %q, want %q (err: %s)",
						app, backend, class, rec.ErrClass, wantLabel, rec.Err)
				}
			}
		}
	}
}

// TestWrongVariantsMeasurablyWrong executes every hand-written
// wrong-calculation / graph-diff variant and asserts it (a) runs cleanly
// and (b) is measured as the intended comparison failure.
func TestWrongVariantsMeasurablyWrong(t *testing.T) {
	variants := []struct {
		qid   string
		label string
	}{
		{"ta-m6", LabelWrongCalc},
		{"ta-m7", LabelWrongCalc},
		{"ta-e7", LabelGraphDiff},
		{"malt-h2", LabelWrongCalc},
		{"malt-h3", LabelWrongCalc},
		{"malt-h1", LabelGraphDiff},
	}
	evs := map[string]*Evaluator{}
	for _, v := range variants {
		q, ok := queries.ByID(v.qid)
		if !ok {
			t.Fatalf("unknown query %s", v.qid)
		}
		code, ok := llm.WrongVariant(v.qid, prompt.BackendNetworkX)
		if !ok {
			t.Errorf("no variant for %s", v.qid)
			continue
		}
		ev, ok := evs[q.App]
		if !ok {
			ev = NewEvaluator(DatasetFor(q.App))
			evs[q.App] = ev
		}
		rec := ev.EvaluateCode(q, prompt.BackendNetworkX, code)
		if rec.Pass {
			t.Errorf("%s wrong variant passed — not wrong enough", v.qid)
			continue
		}
		if rec.Stage != StageCompare {
			t.Errorf("%s variant failed at %s (%s) — should run cleanly and miscompare",
				v.qid, rec.Stage, rec.Err)
			continue
		}
		if rec.ErrClass != v.label {
			t.Errorf("%s classified %q, want %q", v.qid, rec.ErrClass, v.label)
		}
	}
}

func TestCostAnalyses(t *testing.T) {
	if testing.Short() {
		t.Skip("cost sweeps")
	}
	a, err := Figure4a()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a, "median strawman/codegen cost ratio") {
		t.Fatalf("Figure 4a output malformed:\n%s", a)
	}
	b, err := Figure4b()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b, "over-token-limit") {
		t.Fatalf("Figure 4b should show the strawman exceeding the window:\n%s", b)
	}
	// Codegen column must be constant across sizes (the scalability claim).
	lines := strings.Split(strings.TrimSpace(b), "\n")
	var codegenVals []string
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		if len(fields) == 3 {
			codegenVals = append(codegenVals, fields[2])
		}
	}
	if len(codegenVals) < 2 {
		t.Fatalf("no sweep rows parsed:\n%s", b)
	}
	for _, v := range codegenVals[1:] {
		if v != codegenVals[0] {
			t.Fatalf("codegen cost varies with size: %v", codegenVals)
		}
	}
}

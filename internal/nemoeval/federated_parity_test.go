package nemoeval

import (
	"strings"
	"testing"

	"repro/internal/prompt"
	"repro/internal/queries"
)

// TestFederatedGoldenParity is the cross-backend golden parity gate: for
// every query in queries.All(), the federated plan's result must equal the
// NetworkX golden (value and post-run graph), and the three per-backend
// goldens must agree with each other except on the explicitly declared
// contract divergences (state-mutating queries whose pandas/SQL goldens
// return their substrate's lifted form).
func TestFederatedGoldenParity(t *testing.T) {
	r := NewRunner()
	covered := map[string]bool{}
	for _, app := range FederatedParityApps {
		recs, err := r.FederatedParity(app)
		if err != nil {
			t.Fatalf("FederatedParity(%s): %v", app, err)
		}
		for _, rec := range recs {
			covered[rec.QueryID] = true
			if rec.Err != "" {
				t.Errorf("%s: %s", rec.QueryID, rec.Err)
				continue
			}
			if !rec.Match[prompt.BackendNetworkX] {
				t.Errorf("%s: federated result differs from the networkx golden", rec.QueryID)
			}
			if !rec.StateMatch {
				t.Errorf("%s: federated post-run graph differs from the networkx golden's", rec.QueryID)
			}
			if !rec.OK() {
				t.Errorf("%s: backend divergence %v does not match declared contract %v",
					rec.QueryID, rec.Divergence(), DivergentContracts[rec.QueryID])
			}
		}
	}
	// The parity suites must cover the full registry, and the declared
	// divergences must reference real queries.
	for _, q := range queries.All() {
		if !covered[q.ID] {
			t.Errorf("query %s not covered by the parity harness", q.ID)
		}
	}
	for id := range DivergentContracts {
		if !covered[id] {
			t.Errorf("DivergentContracts lists unknown query %s", id)
		}
	}
}

// TestFederatedParityReport pins the report contract: it renders one row
// per query and reports no violation.
func TestFederatedParityReport(t *testing.T) {
	r := NewRunner()
	report, err := r.FederatedParityReport()
	if err != nil {
		t.Fatalf("parity violated: %v\n%s", err, report)
	}
	want := len(queries.All())
	rows := 0
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "ta-") || strings.HasPrefix(line, "malt-") || strings.HasPrefix(line, "diag-") {
			rows++
		}
	}
	if rows != want {
		t.Errorf("report has %d query rows, want %d:\n%s", rows, want, report)
	}
	if !strings.Contains(report, "contract divergence: pandas,sql") {
		t.Errorf("report does not annotate known divergences:\n%s", report)
	}
}

// TestEvaluateFederatedBackend runs every query's federated golden through
// the full evaluator (execute, compare value, compare post-run state of all
// three substrates) — the federated backend must be evaluable exactly like
// the per-substrate ones.
func TestEvaluateFederatedBackend(t *testing.T) {
	for _, app := range FederatedParityApps {
		ev := NewEvaluator(DatasetFor(app))
		var suite []queries.Query
		switch app {
		case queries.AppTraffic:
			suite = queries.Traffic()
		case queries.AppMALT:
			suite = queries.MALT()
		default:
			suite = queries.Diagnosis()
		}
		for _, q := range suite {
			rec := ev.EvaluateCode(q, prompt.BackendFederated, q.Golden[prompt.BackendFederated])
			if !rec.Pass {
				t.Errorf("%s/federated golden does not self-evaluate: stage=%s err=%s", q.ID, rec.Stage, rec.Err)
			}
		}
	}
}

package nemoeval

// Table 5 error-class labels. The classifier maps *measured* sandbox
// failures onto the paper's taxonomy — labels are derived from what the
// generated program actually did, never from the calibration data.
const (
	LabelSyntax     = "Syntax error"
	LabelAttr       = "Imaginary graph attributes"
	LabelName       = "Imaginary files/function arguments"
	LabelArgument   = "Arguments error"
	LabelOperation  = "Operation error"
	LabelWrongCalc  = "Wrong calculation logic"
	LabelGraphDiff  = "Graphs are not identical"
	LabelTokenLimit = "Token limit exceeded"
	LabelHarness    = "Harness error"
)

// ErrorLabels lists the Table 5 rows in the paper's order.
var ErrorLabels = []string{
	LabelSyntax,
	LabelAttr,
	LabelName,
	LabelArgument,
	LabelOperation,
	LabelWrongCalc,
	LabelGraphDiff,
}

// LabelForClass maps an NQL error class (nql.ClassOf) to its Table 5
// label.
func LabelForClass(class string) string {
	switch class {
	case "syntax":
		return LabelSyntax
	case "attribute":
		return LabelAttr
	case "name":
		return LabelName
	case "argument":
		return LabelArgument
	case "operation", "value", "index", "limit", "internal":
		return LabelOperation
	default:
		return LabelOperation
	}
}

package nemoeval

import (
	"errors"

	"repro/internal/modelserve"
	"repro/internal/tokens"
)

// Table 5 error-class labels. The classifier maps *measured* sandbox
// failures onto the paper's taxonomy — labels are derived from what the
// generated program actually did, never from the calibration data.
const (
	LabelSyntax     = "Syntax error"
	LabelAttr       = "Imaginary graph attributes"
	LabelName       = "Imaginary files/function arguments"
	LabelArgument   = "Arguments error"
	LabelOperation  = "Operation error"
	LabelWrongCalc  = "Wrong calculation logic"
	LabelGraphDiff  = "Graphs are not identical"
	LabelTokenLimit = "Token limit exceeded"
	LabelHarness    = "Harness error"

	// Gateway-path labels: terminal serving failures surfaced at the
	// generate stage. They sit outside the paper's seven-row taxonomy, so
	// Table 5 renders them in its extra-rows section — provider flakiness
	// is visible in the same error-category report as code faults.
	LabelRateLimit = "Provider rate limited"
	LabelProvider  = "Provider unavailable"
)

// ErrorLabels lists the Table 5 rows in the paper's order.
var ErrorLabels = []string{
	LabelSyntax,
	LabelAttr,
	LabelName,
	LabelArgument,
	LabelOperation,
	LabelWrongCalc,
	LabelGraphDiff,
}

// LabelForClass maps an NQL error class (nql.ClassOf) to its Table 5
// label.
func LabelForClass(class string) string {
	switch class {
	case "syntax":
		return LabelSyntax
	case "attribute":
		return LabelAttr
	case "name":
		return LabelName
	case "argument":
		return LabelArgument
	case "operation", "value", "index", "limit", "internal":
		return LabelOperation
	default:
		return LabelOperation
	}
}

// LabelForGenerateErr classifies a generate-stage (LLM call) failure. The
// historical sim-only failure mode is a context-window overflow; the
// serving gateway adds classified terminal provider faults, mapped here
// onto report labels so retry-exhausted flakiness lands in Table 5's
// error-category accounting instead of vanishing into a generic error
// string.
func LabelForGenerateErr(err error) string {
	var pe *modelserve.ProviderError
	if errors.As(err, &pe) {
		switch pe.Kind {
		case modelserve.KindTokenLimit:
			return LabelTokenLimit
		case modelserve.KindRateLimited:
			return LabelRateLimit
		case modelserve.KindUnavailable, modelserve.KindBadResponse, modelserve.KindBadRequest:
			return LabelProvider
		case modelserve.KindNotFound:
			// A replay miss is a harness problem (incomplete recording),
			// not provider behavior.
			return LabelHarness
		default:
			return LabelProvider
		}
	}
	var tl *tokens.ErrTokenLimit
	if errors.As(err, &tl) {
		return LabelTokenLimit
	}
	// Unclassified generate errors historically meant token limits (the
	// sims' only failure mode); keep that default for them.
	return LabelTokenLimit
}

package nemoeval

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/traffic"
)

// CostPoint is one per-query LLM cost sample.
type CostPoint struct {
	QueryID string
	CostUSD float64
	// OverLimit marks prompts that exceeded the model's token window
	// (cost undefined).
	OverLimit bool
}

// CostAnalysis collects the Figure 4 data for one approach at one graph
// scale.
type CostAnalysis struct {
	Approach string // "strawman" or "codegen"
	Nodes    int
	Points   []CostPoint
}

// costSamples computes GPT-4 per-query costs for the traffic suite at the
// given scale, for either approach. Costs depend only on prompt/completion
// token counts, so this is exact, not sampled. Queries are independent, so
// they fan out over the worker pool; points are assembled in suite order
// so the rendered figures are identical to a serial run.
func costSamples(approach string, nodes, edges int) (*CostAnalysis, error) {
	build := TrafficDataset(traffic.Config{Nodes: nodes, Edges: edges, Seed: 42})
	ev := NewEvaluator(build)
	suite := queries.Traffic()
	out := &CostAnalysis{Approach: approach, Nodes: nodes, Points: make([]CostPoint, len(suite))}
	errs := make([]error, len(suite))
	parallelFor(runtime.NumCPU(), len(suite), func(i int) {
		q := suite[i]
		model, err := llm.NewSim("gpt-4")
		if err != nil {
			errs[i] = err
			return
		}
		var rec *Record
		if approach == "strawman" {
			rec = ev.EvaluateStrawman(model, q)
		} else {
			rec = ev.EvaluateModel(model, q, prompt.BackendNetworkX, 1, 0)
		}
		pt := CostPoint{QueryID: q.ID, CostUSD: rec.CostUSD}
		if rec.ErrClass == LabelTokenLimit {
			pt.OverLimit = true
		}
		out.Points[i] = pt
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Figure4a renders the CDF of per-query GPT-4 cost at the paper's small
// scale (80 nodes and edges) for the strawman and code-generation
// approaches.
func Figure4a() (string, error) {
	var sb strings.Builder
	sb.WriteString("Figure 4a: CDF of LLM cost per query (80 nodes and edges, GPT-4 pricing)\n")
	sb.WriteString(fmt.Sprintf("%-10s %-12s %s\n", "CDF", "strawman($)", "codegen($)"))
	straw, err := costSamples("strawman", 80, 80)
	if err != nil {
		return "", err
	}
	code, err := costSamples("codegen", 80, 80)
	if err != nil {
		return "", err
	}
	sc := sortedCosts(straw)
	cc := sortedCosts(code)
	n := len(sc)
	for i := 0; i < n; i++ {
		cdf := float64(i+1) / float64(n)
		sb.WriteString(fmt.Sprintf("%-10.2f %-12.4f %.4f\n", cdf, sc[i], cc[i]))
	}
	sb.WriteString(fmt.Sprintf("median strawman/codegen cost ratio: %.1fx\n", sc[n/2]/cc[n/2]))
	return sb.String(), nil
}

func sortedCosts(a *CostAnalysis) []float64 {
	out := make([]float64, 0, len(a.Points))
	for _, p := range a.Points {
		if !p.OverLimit {
			out = append(out, p.CostUSD)
		}
	}
	sort.Float64s(out)
	return out
}

// Figure4bSizes is the graph-size sweep (nodes = edges at each point).
var Figure4bSizes = []int{20, 40, 80, 120, 150, 200, 300, 400}

// Figure4b renders mean per-query cost versus graph size for both
// approaches, marking where the strawman exceeds the token limit.
func Figure4b() (string, error) {
	var sb strings.Builder
	sb.WriteString("Figure 4b: cost analysis vs graph size (GPT-4 pricing, mean over 24 queries)\n")
	sb.WriteString(fmt.Sprintf("%-8s %-14s %s\n", "size", "strawman($)", "codegen($)"))
	for _, n := range Figure4bSizes {
		straw, err := costSamples("strawman", n, n)
		if err != nil {
			return "", err
		}
		code, err := costSamples("codegen", n, n)
		if err != nil {
			return "", err
		}
		sMean, sOver := meanCost(straw)
		cMean, _ := meanCost(code)
		sCol := fmt.Sprintf("%.4f", sMean)
		if sOver {
			sCol = "over-token-limit"
		}
		sb.WriteString(fmt.Sprintf("%-8d %-14s %.4f\n", n, sCol, cMean))
	}
	return sb.String(), nil
}

func meanCost(a *CostAnalysis) (mean float64, anyOver bool) {
	total, n := 0.0, 0
	for _, p := range a.Points {
		if p.OverLimit {
			anyOver = true
			continue
		}
		total += p.CostUSD
		n++
	}
	if n == 0 {
		return 0, anyOver
	}
	return total / float64(n), anyOver
}

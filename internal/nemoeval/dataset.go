// Package nemoeval implements the NeMoEval benchmark (Figure 3 of the
// paper): golden-answer execution, sandboxed evaluation of LLM-generated
// code, result comparison, error classification and logging, plus the
// accuracy/cost analyses behind every table and figure in the evaluation.
package nemoeval

import (
	"repro/internal/dataframe"
	"repro/internal/diagnosis"
	"repro/internal/federate"
	"repro/internal/graph"
	"repro/internal/malt"
	"repro/internal/nql"
	"repro/internal/nqlbind"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/sqldb"
	"repro/internal/traffic"
)

// Instance is one fresh copy of an application's state in all three
// representations. Every sandboxed run gets its own instance so buggy
// generated code cannot contaminate the comparison. Probes fields are set
// only for the diagnosis extension application.
//
// The relational representations may be populated lazily: dataset builders
// install lazyFrames/lazyDB thunks and the Frames/Database accessors force
// them on first use, so a NetworkX-backend evaluation never pays for
// building dataframes and SQL tables it will not touch. Constructing an
// Instance with all fields set eagerly (as package core does) keeps
// working — the thunks are only consulted while a field is nil.
type Instance struct {
	App     string
	Wrapper prompt.AppWrapper
	Graph   *graph.Graph
	Nodes   *dataframe.Frame
	Edges   *dataframe.Frame
	DB      *sqldb.DB

	Probes     *dataframe.Frame // probes table (pandas backend)
	ProbesList nql.Value        // probes list-of-maps (networkx backend)

	// FedEpoch identifies the dataset generation every clone of one frozen
	// master belongs to. Federation stamps it on the catalog so the
	// federated planner's shared caches (statistics, prepared decisions)
	// are reused across instances of the same master and invalidated the
	// moment a new master is built. Zero means "uncacheable" and the
	// planner recomputes from scratch.
	FedEpoch uint64

	lazyGraph  func() *graph.Graph
	lazyFrames func() (nodes, edges *dataframe.Frame)
	lazyDB     func() *sqldb.DB
}

// G returns the graph, building (cloning) it on first use when the
// instance was created with a lazy graph — a pandas- or SQL-backend
// evaluation then never pays for cloning a large topology it cannot touch.
// Like Frames/Database, the accessor is safe on shared golden instances
// because a golden instance is only consulted for the backend it executed
// on, which already forced the field during the run.
func (inst *Instance) G() *graph.Graph {
	if inst.Graph == nil && inst.lazyGraph != nil {
		inst.Graph = inst.lazyGraph()
	}
	return inst.Graph
}

// Frames returns the node/edge dataframes, building them on first use when
// the instance was created with lazy representations.
func (inst *Instance) Frames() (nodes, edges *dataframe.Frame) {
	if inst.Nodes == nil && inst.lazyFrames != nil {
		inst.Nodes, inst.Edges = inst.lazyFrames()
	}
	return inst.Nodes, inst.Edges
}

// Database returns the SQL database, building it on first use when the
// instance was created with lazy representations.
func (inst *Instance) Database() *sqldb.DB {
	if inst.DB == nil && inst.lazyDB != nil {
		inst.DB = inst.lazyDB()
	}
	return inst.DB
}

// Federation assembles the federated-planner catalog over this instance's
// substrates, forcing the lazy relational representations (the federated
// backend binds every substrate at once).
func (inst *Instance) Federation() *federate.Catalog {
	nodes, edges := inst.Frames()
	frames := map[string]*dataframe.Frame{"nodes": nodes, "edges": edges}
	if inst.Probes != nil {
		frames["probes"] = inst.Probes
	}
	return &federate.Catalog{Graph: inst.G(), Frames: frames, DB: inst.Database(), Epoch: inst.FedEpoch}
}

// Bindings returns the host globals for one backend, wrapping this
// instance's state.
func (inst *Instance) Bindings(backend string) map[string]nql.Value {
	switch backend {
	case prompt.BackendFederated:
		// The federated backend is the union of the three per-substrate
		// environments plus the cross-substrate planner.
		nodes, edges := inst.Frames()
		extra := map[string]nql.Value{
			"nodes_df": nqlbind.NewFrameObject(nodes),
			"edges_df": nqlbind.NewFrameObject(edges),
			"db":       nqlbind.NewDBObject(inst.Database()),
			"fed":      nqlbind.NewFedObject(inst.Federation()),
		}
		if inst.Probes != nil {
			extra["probes_df"] = nqlbind.NewFrameObject(inst.Probes)
		}
		if inst.ProbesList != nil {
			extra["probes"] = inst.ProbesList
		}
		return nqlbind.Globals(inst.G(), extra)
	case prompt.BackendNetworkX:
		extra := map[string]nql.Value{}
		if inst.ProbesList != nil {
			extra["probes"] = inst.ProbesList
		}
		return nqlbind.Globals(inst.G(), extra)
	case prompt.BackendPandas:
		nodes, edges := inst.Frames()
		extra := map[string]nql.Value{
			"nodes_df": nqlbind.NewFrameObject(nodes),
			"edges_df": nqlbind.NewFrameObject(edges),
		}
		if inst.Probes != nil {
			extra["probes_df"] = nqlbind.NewFrameObject(inst.Probes)
		}
		return nqlbind.Globals(nil, extra)
	case prompt.BackendSQL:
		return nqlbind.Globals(nil, map[string]nql.Value{
			"db": nqlbind.NewDBObject(inst.Database()),
		})
	default:
		return nqlbind.Globals(nil, nil)
	}
}

// StateEqual compares the post-run state of two instances for one backend.
func StateEqual(backend string, a, b *Instance) bool {
	switch backend {
	case prompt.BackendFederated:
		// The federated backend binds every substrate, so all of them must
		// match.
		return StateEqual(prompt.BackendNetworkX, a, b) &&
			StateEqual(prompt.BackendPandas, a, b) &&
			StateEqual(prompt.BackendSQL, a, b)
	case prompt.BackendNetworkX:
		return graph.Equal(a.G(), b.G())
	case prompt.BackendPandas:
		aNodes, aEdges := a.Frames()
		bNodes, bEdges := b.Frames()
		return dataframe.Equal(aNodes, bNodes) && dataframe.Equal(aEdges, bEdges)
	case prompt.BackendSQL:
		aDB, bDB := a.Database(), b.Database()
		an, bn := aDB.TableNames(), bDB.TableNames()
		if len(an) != len(bn) {
			return false
		}
		for i, name := range an {
			if bn[i] != name {
				return false
			}
			at, err1 := aDB.Table(name)
			bt, err2 := bDB.Table(name)
			if err1 != nil || err2 != nil || !dataframe.Equal(at, bt) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// InstanceBuilder produces fresh, identical instances on demand.
type InstanceBuilder func() *Instance

// TrafficDataset returns a builder for the traffic-analysis application at
// the given scale. The default benchmark scale follows the paper's small
// graph: 80 nodes and 80 edges ("80 nodes and edges").
func TrafficDataset(cfg traffic.Config) InstanceBuilder {
	// Generate once, freeze, then clone per instance: cloning a frozen
	// master shares attribute maps copy-on-write, is safe from concurrent
	// workers, and keeps every instance bit-identical. The relational
	// representations are derived lazily from the clone so a NetworkX run
	// never builds them.
	master := traffic.Generate(cfg)
	master.Freeze()
	epoch := federate.NewEpoch()
	return func() *Instance {
		g := master.Clone()
		return &Instance{
			App:      queries.AppTraffic,
			Wrapper:  traffic.NewWrapper(g),
			Graph:    g,
			FedEpoch: epoch,
			lazyFrames: func() (*dataframe.Frame, *dataframe.Frame) {
				nodes, edges := traffic.Frames(g)
				return nodes, edges
			},
			lazyDB: func() *sqldb.DB { return traffic.Database(g) },
		}
	}
}

// DefaultTrafficConfig is the benchmark's standard traffic workload.
var DefaultTrafficConfig = traffic.Config{Nodes: 80, Edges: 80, Seed: 42}

// TrafficShard is one partition of a streamed traffic dataset: a frozen
// master holding every edge whose destination falls in the shard's node
// range [Lo, Hi), plus all owned nodes (with their "ip" attributes) and any
// ghost source endpoints edges pulled in. Partitioning by destination makes
// each shard the complete owner of its nodes' in-edges, which is what lets
// shard-level aggregates (in-degree, PageRank gather terms) merge exactly.
type TrafficShard struct {
	Index  int
	Lo, Hi int // owned global node-index range, [Lo, Hi)
	Master *graph.Graph
}

// ShardedTraffic partitions one streamed traffic config into per-shard
// frozen masters, so evaluator workers clone only their shard instead of
// the full graph. Build with BuildShardedTraffic, or incrementally with
// NewShardedTraffic + Apply + Freeze (Apply-ing batches from a resumed
// stream cursor reproduces a straight-through build byte-identically).
type ShardedTraffic struct {
	Cfg    traffic.Config
	Shards []*TrafficShard
}

// NewShardedTraffic materializes the node sets of an empty sharded dataset:
// shard s owns the contiguous index range [s*n/shards, (s+1)*n/shards) and
// starts with those nodes (and their deterministic stream IPs) but no
// edges. It errors when the config cannot stream (unsatisfiable edge
// count), so a sharded build can never silently fall short.
func NewShardedTraffic(cfg traffic.Config, shards int) (*ShardedTraffic, error) {
	st, err := traffic.NewStream(cfg)
	if err != nil {
		return nil, err
	}
	return newShardedTraffic(st, shards), nil
}

// newShardedTraffic materializes the shard node sets from an existing
// stream (whose position is irrelevant: node IDs and IPs are pure
// functions of the config).
func newShardedTraffic(st *traffic.Stream, shards int) *ShardedTraffic {
	cfg := st.Config()
	if shards <= 0 {
		shards = 1
	}
	if shards > cfg.Nodes && cfg.Nodes > 0 {
		shards = cfg.Nodes
	}
	d := &ShardedTraffic{Cfg: cfg, Shards: make([]*TrafficShard, shards)}
	for s := 0; s < shards; s++ {
		lo, hi := cfg.Nodes*s/shards, cfg.Nodes*(s+1)/shards
		g := graph.NewDirected()
		g.GraphAttrs()["app"] = "traffic-analysis"
		for i := lo; i < hi; i++ {
			g.AddNode(st.NodeID(i), graph.Attrs{"ip": st.NodeIP(i)})
		}
		d.Shards[s] = &TrafficShard{Index: s, Lo: lo, Hi: hi, Master: g}
	}
	return d
}

// shardOf returns the shard owning global node index idx.
func (d *ShardedTraffic) shardOf(idx int) *TrafficShard {
	s := idx * len(d.Shards) / d.Cfg.Nodes
	// Integer partition boundaries: correct for off-by-one at the seams.
	for s+1 < len(d.Shards) && idx >= d.Shards[s].Hi {
		s++
	}
	for s > 0 && idx < d.Shards[s].Lo {
		s--
	}
	return d.Shards[s]
}

// Apply routes one streamed edge batch into the shard masters (each edge to
// the shard owning its destination). Apply is not concurrency-safe; drive
// it from the single goroutine that owns the stream.
func (d *ShardedTraffic) Apply(batch []traffic.StreamEdge) {
	for _, e := range batch {
		d.shardOf(e.VIdx).Master.AddEdge(e.U, e.V, e.Attrs())
	}
}

// Freeze freezes every shard master, turning them into cloneable immutable
// masters. Freeze is incremental (see graph.Freeze): a resumed sweep may
// Apply further batches and Freeze again.
func (d *ShardedTraffic) Freeze() {
	for _, sh := range d.Shards {
		sh.Master.Freeze()
	}
}

// BuildShardedTraffic streams cfg's edge set straight through into shards
// (batchSize edges at a time) and freezes the masters.
func BuildShardedTraffic(cfg traffic.Config, shards, batchSize int) (*ShardedTraffic, error) {
	if batchSize <= 0 {
		batchSize = 4096
	}
	st, err := traffic.NewStream(cfg)
	if err != nil {
		return nil, err
	}
	d := newShardedTraffic(st, shards)
	for {
		batch := st.Next(batchSize)
		if len(batch) == 0 {
			break
		}
		d.Apply(batch)
	}
	d.Freeze()
	return d, nil
}

// ShardDataset returns an instance builder over one shard's frozen master:
// workers clone only that shard instead of the full graph, with the
// relational representations derived lazily exactly like TrafficDataset.
func (d *ShardedTraffic) ShardDataset(shard int) InstanceBuilder {
	master := d.Shards[shard].Master
	epoch := federate.NewEpoch()
	return func() *Instance {
		g := master.Clone()
		return &Instance{
			App:      queries.AppTraffic,
			Wrapper:  traffic.NewWrapper(g),
			Graph:    g,
			FedEpoch: epoch,
			lazyFrames: func() (*dataframe.Frame, *dataframe.Frame) {
				nodes, edges := traffic.Frames(g)
				return nodes, edges
			},
			lazyDB: func() *sqldb.DB { return traffic.Database(g) },
		}
	}
}

// MALTDataset returns a builder for the lifecycle-management application
// using the example-scale synthetic MALT topology.
func MALTDataset() InstanceBuilder {
	master := malt.Generate(malt.Config{})
	// Materialize each representation once from the (immutable) topology,
	// then hand out clones: cloning a frozen graph or a frame is far
	// cheaper than rebuilding them row by row, and the relational forms
	// are only cloned if the backend actually binds them.
	g0 := master.Graph()
	g0.Freeze()
	nodes0, edges0 := master.Frames()
	nodes0.Freeze()
	edges0.Freeze()
	db0 := master.Database()
	db0.Freeze()
	epoch := federate.NewEpoch()
	return func() *Instance {
		return &Instance{
			App:       queries.AppMALT,
			Wrapper:   malt.NewWrapper(master),
			FedEpoch:  epoch,
			lazyGraph: func() *graph.Graph { return g0.Clone() },
			lazyFrames: func() (*dataframe.Frame, *dataframe.Frame) {
				return nodes0.Clone(), edges0.Clone()
			},
			lazyDB: func() *sqldb.DB { return db0.Clone() },
		}
	}
}

// ProbesListValue converts a workload's probes into the list-of-maps value
// bound as `probes` for the NetworkX backend.
func ProbesListValue(w *diagnosis.Workload) nql.Value {
	plist := nql.NewList()
	for _, p := range w.Probes {
		m := nql.NewMap()
		path := nql.NewList()
		for _, n := range p.Path {
			path.Items = append(path.Items, n)
		}
		_ = m.Set("id", p.ID)
		_ = m.Set("path", path)
		_ = m.Set("ok", p.OK)
		plist.Items = append(plist.Items, m)
	}
	return plist
}

// DiagnosisDataset returns a builder for the failure-diagnosis extension
// application at the given scenario scale.
func DiagnosisDataset(cfg diagnosis.Config) InstanceBuilder {
	return DiagnosisDatasetFromWorkload(diagnosis.Generate(cfg))
}

// DiagnosisDatasetFromWorkload builds instances by cloning a caller-owned
// workload.
func DiagnosisDatasetFromWorkload(master *diagnosis.Workload) InstanceBuilder {
	epoch := federate.NewEpoch()
	return func() *Instance {
		w := master.Clone()
		nodes, edges, probes := w.Frames()
		return &Instance{
			App:        queries.AppDiagnosis,
			Wrapper:    diagnosis.NewWrapper(w),
			Graph:      w.G,
			Nodes:      nodes,
			Edges:      edges,
			DB:         w.Database(),
			Probes:     probes,
			ProbesList: ProbesListValue(w),
			FedEpoch:   epoch,
		}
	}
}

// DatasetFor returns the standard builder for an app name.
func DatasetFor(app string) InstanceBuilder {
	switch app {
	case queries.AppMALT:
		return MALTDataset()
	case queries.AppDiagnosis:
		return DiagnosisDataset(diagnosis.DefaultConfig)
	default:
		return TrafficDataset(DefaultTrafficConfig)
	}
}

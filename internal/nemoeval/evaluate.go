package nemoeval

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataframe"
	"repro/internal/graph"
	"repro/internal/llm"
	"repro/internal/nql"
	"repro/internal/nqlbind"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/sandbox"
	"repro/internal/tokens"
)

// Stage marks where an evaluation failed.
const (
	StageGenerate = "generate" // LLM call failed (token limit)
	StageExecute  = "execute"  // generated code raised an error
	StageCompare  = "compare"  // ran fine but result/state differed
	StageGolden   = "golden"   // golden program itself failed (harness bug)
)

// Record is one evaluated (model, backend, query) cell — the results
// logger's unit (Figure 3).
type Record struct {
	Model      string
	App        string
	Backend    string
	QueryID    string
	Complexity string
	Trial      int

	Pass     bool
	Stage    string
	ErrClass string // measured error class (Table 5 taxonomy label)
	Err      string
	Code     string // the generated program (or direct answer)

	PromptTokens     int
	CompletionTokens int
	CostUSD          float64
	Duration         time.Duration
}

// Evaluator runs generated code against golden answers. It is safe for
// concurrent use: the golden-result and prompt-context caches are
// synchronized, so one evaluator can be shared by every worker of the
// parallel runner (and the golden program for each query then executes
// once per suite instead of once per evaluation).
type Evaluator struct {
	Build  InstanceBuilder
	Policy sandbox.Policy

	// golden caches RunGolden results keyed by backend+"\x00"+source. The
	// cached instance is post-golden-run state and must be treated as
	// read-only by all consumers (they only compare against it).
	goldenMu sync.Mutex
	golden   map[string]*goldenResult

	// promptOnce builds the single instance used for prompt construction
	// and strawman graph serialization; neither path executes code against
	// it, so it is never mutated.
	promptOnce sync.Once
	promptInst *Instance
	graphJSON  string
	graphErr   error
}

type goldenResult struct {
	val  nql.Value
	inst *Instance
	err  error
}

// NewEvaluator creates an evaluator over a dataset.
func NewEvaluator(build InstanceBuilder) *Evaluator {
	return &Evaluator{Build: build, Policy: sandbox.DefaultPolicy, golden: map[string]*goldenResult{}}
}

// promptContext returns the shared read-only instance used for prompt
// construction, plus the node-link JSON of its graph (for the strawman
// baseline), building both once.
func (e *Evaluator) promptContext() (*Instance, string, error) {
	e.promptOnce.Do(func() {
		e.promptInst = e.Build()
		// Force the (possibly lazy) graph: the strawman baseline serializes
		// it into the prompt even for datasets whose evaluations are
		// otherwise relational-only.
		if g := e.promptInst.G(); g != nil {
			data, err := g.MarshalJSON()
			e.graphJSON, e.graphErr = string(data), err
		}
	})
	return e.promptInst, e.graphJSON, e.graphErr
}

// RunGolden executes the query's golden program for one backend on a fresh
// instance, returning the result value and the instance (for state
// comparison and oracle derivation). Results are cached per golden source:
// the matrix evaluates each query once per model × trial, but the golden
// answer is the same every time. Callers must not mutate the returned
// instance or value.
func (e *Evaluator) RunGolden(q queries.Query, backend string) (nql.Value, *Instance, error) {
	golden, ok := q.Golden[backend]
	if !ok {
		return nil, nil, fmt.Errorf("nemoeval: query %s has no golden for backend %s", q.ID, backend)
	}
	key := backend + "\x00" + golden
	e.goldenMu.Lock()
	cached, ok := e.golden[key]
	e.goldenMu.Unlock()
	if ok {
		return cached.val, cached.inst, cached.err
	}
	res := &goldenResult{}
	inst := e.Build()
	r := sandbox.Run(golden, inst.Bindings(backend), e.Policy)
	if !r.OK() {
		res.err = fmt.Errorf("nemoeval: golden for %s/%s failed: %w", q.ID, backend, r.Err)
	} else {
		res.val = r.Value
		res.inst = inst
	}
	e.goldenMu.Lock()
	e.golden[key] = res
	e.goldenMu.Unlock()
	return res.val, res.inst, res.err
}

// EvaluateCode runs one already-generated program and compares it against
// the golden answer. It fills every Record field except model/trial/cost.
func (e *Evaluator) EvaluateCode(q queries.Query, backend, code string) *Record {
	rec := &Record{
		App: q.App, Backend: backend, QueryID: q.ID, Complexity: q.Complexity,
		Code: code,
	}
	goldVal, goldInst, err := e.RunGolden(q, backend)
	if err != nil {
		rec.Stage = StageGolden
		rec.Err = err.Error()
		rec.ErrClass = LabelHarness
		return rec
	}
	genInst := e.Build()
	start := time.Now()
	res := sandbox.Run(code, genInst.Bindings(backend), e.Policy)
	rec.Duration = time.Since(start)
	if !res.OK() {
		rec.Stage = StageExecute
		rec.Err = res.Err.Error()
		rec.ErrClass = LabelForClass(res.ErrClass)
		return rec
	}
	valueOK := ResultEqual(goldVal, res.Value)
	stateOK := StateEqual(backend, goldInst, genInst)
	switch {
	case valueOK && stateOK:
		rec.Pass = true
	case !stateOK:
		rec.Stage = StageCompare
		rec.ErrClass = LabelGraphDiff
		rec.Err = describeStateDiff(backend, goldInst, genInst)
	default:
		rec.Stage = StageCompare
		rec.ErrClass = LabelWrongCalc
		rec.Err = fmt.Sprintf("result mismatch: golden %s vs generated %s",
			truncate(nql.Repr(goldVal), 160), truncate(nql.Repr(res.Value), 160))
	}
	return rec
}

// EvaluateModel asks the model for code and evaluates it end to end.
func (e *Evaluator) EvaluateModel(model llm.Model, q queries.Query, backend string, trial int, temperature float64) *Record {
	inst, _, _ := e.promptContext() // prompt construction only reads the wrapper
	p := prompt.BuildCodePrompt(inst.Wrapper, backend, q.Text)
	resp, err := model.Generate(llm.Request{Prompt: p, Temperature: temperature, Attempt: trial})
	if err != nil {
		rec := &Record{
			Model: model.Name(), App: q.App, Backend: backend, QueryID: q.ID,
			Complexity: q.Complexity, Trial: trial,
			Stage: StageGenerate, Err: err.Error(), ErrClass: LabelForGenerateErr(err),
		}
		return rec
	}
	rec := e.EvaluateCode(q, backend, resp.Text)
	rec.Model = model.Name()
	rec.Trial = trial
	rec.PromptTokens = resp.PromptTokens
	rec.CompletionTokens = resp.CompletionTokens
	if cost, err := tokens.Cost(model.Name(), resp.PromptTokens, resp.CompletionTokens); err == nil {
		rec.CostUSD = cost
	}
	return rec
}

// EvaluateStrawman runs the direct-answer baseline for one query.
func (e *Evaluator) EvaluateStrawman(model *llm.SimModel, q queries.Query) *Record {
	rec := &Record{
		Model: model.Name(), App: q.App, Backend: "strawman", QueryID: q.ID,
		Complexity: q.Complexity,
	}
	oracle, err := e.OracleAnswer(q)
	if err != nil {
		rec.Stage = StageGolden
		rec.Err = err.Error()
		rec.ErrClass = LabelHarness
		return rec
	}
	model.SetOracle(q.Text, oracle)
	// The strawman never executes code, so the shared prompt instance and
	// its pre-serialized graph JSON can be reused across every query.
	inst, jsonData, err := e.promptContext()
	if err != nil {
		rec.Stage = StageGolden
		rec.Err = err.Error()
		rec.ErrClass = LabelHarness
		return rec
	}
	p := prompt.BuildStrawmanPrompt(inst.Wrapper, jsonData, q.Text)
	resp, err := model.Generate(llm.Request{Prompt: p})
	if err != nil {
		rec.Stage = StageGenerate
		rec.Err = err.Error()
		rec.ErrClass = LabelForGenerateErr(err)
		return rec
	}
	rec.Code = resp.Text
	rec.PromptTokens = resp.PromptTokens
	rec.CompletionTokens = resp.CompletionTokens
	if cost, cerr := tokens.Cost(model.Name(), resp.PromptTokens, resp.CompletionTokens); cerr == nil {
		rec.CostUSD = cost
	}
	if resp.Text == oracle {
		rec.Pass = true
	} else {
		rec.Stage = StageCompare
		rec.ErrClass = LabelWrongCalc
		rec.Err = "direct answer differs from golden result"
	}
	return rec
}

// OracleAnswer computes the canonical direct answer for a query: the
// golden NetworkX result rendering, or — for pure manipulations that
// return nil — the fingerprint of the mutated graph.
func (e *Evaluator) OracleAnswer(q queries.Query) (string, error) {
	val, inst, err := e.RunGolden(q, prompt.BackendNetworkX)
	if err != nil {
		return "", err
	}
	if val == nil {
		return inst.G().Fingerprint(), nil
	}
	return nql.Repr(val), nil
}

// ResultEqual deeply compares two script results, treating bound host
// objects structurally: frames compare by dataframe.Equal, graphs by
// graph.Equal, containers recurse.
func ResultEqual(a, b nql.Value) bool {
	switch x := a.(type) {
	case *nqlbind.FrameObject:
		y, ok := b.(*nqlbind.FrameObject)
		return ok && dataframe.Equal(x.F, y.F)
	case *nqlbind.GraphObject:
		y, ok := b.(*nqlbind.GraphObject)
		return ok && graph.Equal(x.G, y.G)
	case *nql.List:
		y, ok := b.(*nql.List)
		if !ok || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !ResultEqual(x.Items[i], y.Items[i]) {
				return false
			}
		}
		return true
	case *nql.Map:
		y, ok := b.(*nql.Map)
		if !ok || x.Len() != y.Len() {
			return false
		}
		ks, vs := x.Keys(), x.Values()
		for i, k := range ks {
			bv, ok := y.Get(k)
			if !ok || !ResultEqual(vs[i], bv) {
				return false
			}
		}
		return true
	default:
		switch b.(type) {
		case *nqlbind.FrameObject, *nqlbind.GraphObject, *nql.List, *nql.Map:
			return false
		}
		return nql.ValuesEqual(a, b)
	}
}

func describeStateDiff(backend string, a, b *Instance) string {
	if backend == prompt.BackendNetworkX {
		return "graphs are not identical: " + truncate(graph.Diff(a.G(), b.G()), 240)
	}
	return "post-run state differs from golden"
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

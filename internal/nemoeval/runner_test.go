package nemoeval

import (
	"strings"
	"testing"

	"repro/internal/queries"
)

func TestRunAppCellCompleteness(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	r := NewRunner()
	cells, err := r.RunApp(queries.AppMALT, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range r.Models {
		for _, b := range []string{"sql", "pandas", "networkx"} {
			c, ok := cells[m+"|"+b]
			if !ok {
				t.Fatalf("missing cell %s|%s", m, b)
			}
			if c.Accuracy < 0 || c.Accuracy > 1 {
				t.Errorf("%s|%s accuracy = %v", m, b, c.Accuracy)
			}
			for _, lv := range []string{queries.Easy, queries.Medium, queries.Hard} {
				if _, ok := c.ByComplexity[lv]; !ok {
					t.Errorf("%s|%s missing level %s", m, b, lv)
				}
			}
			wantRecords := len(queries.MALT()) * r.TrialsFor(m)
			if len(c.Records) != wantRecords {
				t.Errorf("%s|%s records = %d, want %d", m, b, len(c.Records), wantRecords)
			}
		}
	}
	// Bard averaged over 5 trials; per-query fractions are multiples of 1/5.
	bard := cells["bard|networkx"]
	if got := len(bard.Records); got != 45 {
		t.Fatalf("bard records = %d, want 45 (9 queries x 5 trials)", got)
	}
}

func TestTable5Rendering(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	r := NewRunner()
	out, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range ErrorLabels {
		if !strings.Contains(out, label) {
			t.Errorf("Table 5 missing row %q:\n%s", label, out)
		}
	}
	if strings.Contains(out, LabelHarness) {
		t.Errorf("Table 5 contains harness errors — a golden or binding broke:\n%s", out)
	}
	// Headline totals from the calibrated reproduction.
	if !strings.Contains(out, "Traffic Analysis (31)") || !strings.Contains(out, "MALT (16)") {
		t.Errorf("Table 5 totals drifted:\n%s", out)
	}
}

func TestStrawmanScalesToModelWindow(t *testing.T) {
	for _, m := range []string{"gpt-4", "gpt-3", "text-davinci-003", "bard"} {
		cfg := strawmanConfigFor(m)
		if cfg.Nodes <= 0 || cfg.Nodes > 80 {
			t.Errorf("%s strawman config = %+v", m, cfg)
		}
	}
	if strawmanConfigFor("gpt-3").Nodes >= strawmanConfigFor("gpt-4").Nodes {
		t.Error("smaller-window model should get a smaller graph")
	}
}

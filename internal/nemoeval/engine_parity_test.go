package nemoeval

import (
	"testing"

	"repro/internal/nql"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/sandbox"
)

// runGoldenOn executes one golden program on a fresh instance under the
// given engine, returning the sandbox result and the post-run instance.
func runGoldenOn(engine nql.ExecEngine, build InstanceBuilder, src, backend string) (*sandbox.Result, *Instance) {
	prev := nql.DefaultEngine
	nql.DefaultEngine = engine
	defer func() { nql.DefaultEngine = prev }()
	inst := build()
	res := sandbox.Run(src, inst.Bindings(backend), sandbox.DefaultPolicy)
	return res, inst
}

// TestEngineParityGoldens is the full differential gate for the bytecode
// VM: every registry query's golden program, on every backend that has
// one, must produce the identical value, stdout, error string and post-run
// state on the VM as on the reference tree-walking interpreter.
func TestEngineParityGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden matrix in -short mode")
	}
	builders := map[string]InstanceBuilder{}
	for _, q := range queries.All() {
		if _, ok := builders[q.App]; !ok {
			builders[q.App] = DatasetFor(q.App)
		}
		build := builders[q.App]
		for _, backend := range prompt.AllBackends {
			golden, ok := q.Golden[backend]
			if !ok {
				continue
			}
			vmRes, vmInst := runGoldenOn(nql.EngineVM, build, golden, backend)
			itRes, itInst := runGoldenOn(nql.EngineInterp, build, golden, backend)
			name := q.ID + "/" + backend
			switch {
			case vmRes.OK() != itRes.OK():
				t.Errorf("%s: error presence diverged: vm=%v ref=%v", name, vmRes.Err, itRes.Err)
				continue
			case !vmRes.OK():
				if vmRes.Err.Error() != itRes.Err.Error() {
					t.Errorf("%s: error strings diverged\nvm:  %s\nref: %s", name, vmRes.Err, itRes.Err)
				}
				continue
			}
			if !ResultEqual(vmRes.Value, itRes.Value) {
				t.Errorf("%s: results diverged\nvm:  %s\nref: %s",
					name, nql.Repr(vmRes.Value), nql.Repr(itRes.Value))
			}
			if vmRes.Stdout != itRes.Stdout {
				t.Errorf("%s: stdout diverged\nvm:  %q\nref: %q", name, vmRes.Stdout, itRes.Stdout)
			}
			if !StateEqual(backend, vmInst, itInst) {
				t.Errorf("%s: post-run state diverged between engines", name)
			}
		}
	}
}

// TestEngineParityMutants runs the fault-injected generations (the error
// paths the Table 5 taxonomy buckets) on both engines for a representative
// query per backend, asserting identical error strings.
func TestEngineParityMutants(t *testing.T) {
	// Mechanical fault classes are deterministic; wrong-calc/graph-diff
	// variants execute successfully and are covered by value comparison.
	faultLines := []string{
		`let raw = read_csv("network_data.csv")`,
		`let banner = "total nodes: " + 0`,
		`let check = graph.degree()`,
		`let check = graph.node(graph.nodes()[0])["bandwidth"]`,
	}
	build := TrafficDataset(DefaultTrafficConfig)
	q, ok := queries.ByID("ta-e1")
	if !ok {
		t.Fatal("missing query ta-e1")
	}
	golden := q.Golden[prompt.BackendNetworkX]
	for _, fault := range faultLines {
		src := fault + "\n" + golden
		vmRes, _ := runGoldenOn(nql.EngineVM, build, src, prompt.BackendNetworkX)
		itRes, _ := runGoldenOn(nql.EngineInterp, build, src, prompt.BackendNetworkX)
		if vmRes.OK() || itRes.OK() {
			t.Errorf("fault %q unexpectedly succeeded (vm=%v ref=%v)", fault, vmRes.OK(), itRes.OK())
			continue
		}
		if vmRes.Err.Error() != itRes.Err.Error() {
			t.Errorf("fault %q error strings diverged\nvm:  %s\nref: %s", fault, vmRes.Err, itRes.Err)
		}
		if vmRes.ErrClass != itRes.ErrClass {
			t.Errorf("fault %q classes diverged: vm=%s ref=%s", fault, vmRes.ErrClass, itRes.ErrClass)
		}
	}
}

// TestPromptContextForcesLazyGraph pins that the shared prompt instance
// serializes the graph even for datasets built with a lazy graph (the
// strawman baseline embeds it in every prompt).
func TestPromptContextForcesLazyGraph(t *testing.T) {
	e := NewEvaluator(MALTDataset())
	inst, graphJSON, err := e.promptContext()
	if err != nil {
		t.Fatal(err)
	}
	if inst.G() == nil || graphJSON == "" {
		t.Fatalf("lazy-graph prompt context missing graph JSON (len %d)", len(graphJSON))
	}
}

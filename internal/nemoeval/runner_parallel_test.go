package nemoeval

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/queries"
)

// recordFingerprint renders every deterministic field of a record (Duration
// is wall-clock and legitimately varies between runs).
func recordFingerprint(r *Record) string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|%d|%v|%s|%s|%q|%q|%d|%d|%.10f",
		r.Model, r.App, r.Backend, r.QueryID, r.Complexity, r.Trial,
		r.Pass, r.Stage, r.ErrClass, r.Err, r.Code,
		r.PromptTokens, r.CompletionTokens, r.CostUSD)
}

// TestParallelRunnerMatchesSerial asserts the worker-pool runner is
// observationally identical to the serial runner: same cells, bit-identical
// accuracy aggregates, same record order, and the same logger contents.
func TestParallelRunnerMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	serial := NewRunner()
	serial.Workers = 1
	parallel := NewRunner()
	parallel.Workers = 8

	cs, err := serial.RunApp(queries.AppMALT, false)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := parallel.RunApp(queries.AppMALT, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != len(cp) {
		t.Fatalf("cell count differs: serial %d, parallel %d", len(cs), len(cp))
	}
	for key, sc := range cs {
		pc, ok := cp[key]
		if !ok {
			t.Fatalf("parallel run missing cell %s", key)
		}
		if math.Float64bits(sc.Accuracy) != math.Float64bits(pc.Accuracy) {
			t.Errorf("%s accuracy differs: %v vs %v", key, sc.Accuracy, pc.Accuracy)
		}
		if len(sc.ByComplexity) != len(pc.ByComplexity) {
			t.Errorf("%s ByComplexity size differs", key)
		}
		for lv, sv := range sc.ByComplexity {
			if pv, ok := pc.ByComplexity[lv]; !ok || math.Float64bits(sv) != math.Float64bits(pv) {
				t.Errorf("%s ByComplexity[%s] differs: %v vs %v", key, lv, sv, pv)
			}
		}
		if len(sc.Records) != len(pc.Records) {
			t.Fatalf("%s record count differs: %d vs %d", key, len(sc.Records), len(pc.Records))
		}
		for i := range sc.Records {
			if sf, pf := recordFingerprint(sc.Records[i]), recordFingerprint(pc.Records[i]); sf != pf {
				t.Errorf("%s record %d differs:\n  serial:   %s\n  parallel: %s", key, i, sf, pf)
			}
		}
	}
	// The logger must also have recorded the same sequence.
	sr, pr := serial.Log.Records(), parallel.Log.Records()
	if len(sr) != len(pr) {
		t.Fatalf("log length differs: %d vs %d", len(sr), len(pr))
	}
	for i := range sr {
		if recordFingerprint(sr[i]) != recordFingerprint(pr[i]) {
			t.Errorf("log record %d differs", i)
		}
	}
}

// TestParallelTable5MatchesSerial asserts the fanned-out Table 5 renders
// byte-identically to a serial run.
func TestParallelTable5MatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	serial := NewRunner()
	serial.Workers = 1
	parallel := NewRunner()
	parallel.Workers = 8
	so, err := serial.Table5()
	if err != nil {
		t.Fatal(err)
	}
	po, err := parallel.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if so != po {
		t.Errorf("Table 5 differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", so, po)
	}
}

// TestLoggerConcurrentUse hammers the logger from many goroutines while
// readers snapshot it; run under -race this proves Add/Records/Len/Summary
// are safe for the parallel runner's workers.
func TestLoggerConcurrentUse(t *testing.T) {
	log := NewLogger()
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	wg.Add(writers * 2)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				log.Add(&Record{Model: "gpt-4", QueryID: fmt.Sprintf("q%d-%d", w, i), Pass: i%2 == 0})
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_ = log.Len()
				_ = log.Records()
				_ = log.Summary()
				_ = log.Failures()
			}
		}()
	}
	wg.Wait()
	if got := log.Len(); got != writers*perWriter {
		t.Fatalf("logger lost records: %d != %d", got, writers*perWriter)
	}
}

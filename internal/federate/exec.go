package federate

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataframe"
	"repro/internal/graph"
	"repro/internal/nql"
	"repro/internal/obs"
)

// Run optimizes a logical plan, plans it against the catalog's statistics
// (recalling cached decisions when the catalog carries an epoch) and
// executes it — through the pipelined columnar executor where classify
// allows, the recursive row executor otherwise. The catalog is only read:
// scans lift rows out of the substrates, every later stage operates on the
// lifted relation.
func Run(cat *Catalog, plan Node) (*Relation, error) {
	return Prepare(cat, plan).ExecuteContext(context.Background(), cat)
}

// RunContext is Run under a cancellable context: operator row loops poll
// ctx at periodic checkpoints and abandon the plan with an error wrapping
// ctx.Err() once it is cancelled or past its deadline. The caller's
// catalog is not mutated (the context rides a per-run shallow copy).
func RunContext(ctx context.Context, cat *Catalog, plan Node) (*Relation, error) {
	return Prepare(cat, plan).ExecuteContext(ctx, cat)
}

// ExecuteContext executes a prepared plan against a catalog sharing the
// Prepare-time catalog's epoch (any catalog works — decisions re-validate
// against live state at execution time).
func (p *Prepared) ExecuteContext(ctx context.Context, cat *Catalog) (*Relation, error) {
	if n := PlanNotesFrom(ctx); n != nil {
		n.add(p.Fingerprint())
	}
	if p.mode != modePipeline {
		return ExecContext(ctx, cat, p.plan)
	}
	return runPipeline(ctx, cat, p)
}

// ExecContext executes an already-optimized plan under a cancellable
// context (see RunContext).
func ExecContext(ctx context.Context, cat *Catalog, plan Node) (*Relation, error) {
	prof := obs.ProfileFrom(ctx)
	if (ctx != nil && ctx != context.Background()) || prof != nil {
		run := *cat
		run.ctx = ctx
		run.prof = prof
		cat = &run
		// Refuse to start on a dead context — a plan whose operators all
		// finish under one checkpoint stride would otherwise never poll.
		if err := cat.cancelled(0); err != nil {
			return nil, err
		}
	}
	return Exec(cat, plan)
}

// Exec executes an already-optimized plan. When the catalog carries an
// operator profile (installed by ExecContext from an obs.WithProfile
// context), every node contributes an Enter/Exit frame recording its
// label, output rows and wall/own time — the raw material for the
// EXPLAIN ANALYZE-style query profile; an unprofiled run takes the
// direct path with zero extra work.
func Exec(cat *Catalog, plan Node) (*Relation, error) {
	if cat.prof == nil {
		return execNode(cat, plan)
	}
	name := opName(plan)
	frame := cat.prof.Enter(name, strings.TrimPrefix(strings.TrimPrefix(plan.label(), name), " "))
	rel, err := execNode(cat, plan)
	rows := int64(-1)
	if err == nil && rel != nil {
		rows = int64(len(rel.Rows))
	}
	cat.prof.Exit(frame, rows)
	return rel, err
}

// opName is the operator-kind half of a profile frame (the node label
// carries the operator-specific detail).
func opName(plan Node) string {
	switch plan.(type) {
	case *Scan:
		return "scan"
	case *Filter:
		return "filter"
	case *Project:
		return "project"
	case *Join:
		return "join"
	case *Aggregate:
		return "aggregate"
	case *Sort:
		return "sort"
	case *Limit:
		return "limit"
	default:
		return fmt.Sprintf("%T", plan)
	}
}

func execNode(cat *Catalog, plan Node) (*Relation, error) {
	switch x := plan.(type) {
	case *Scan:
		return execScan(cat, x)
	case *Filter:
		return execFilter(cat, x)
	case *Project:
		return execProject(cat, x)
	case *Join:
		return execJoin(cat, x)
	case *Aggregate:
		return execAggregate(cat, x)
	case *Sort:
		return execSort(cat, x)
	case *Limit:
		return execLimit(cat, x)
	default:
		return nil, fmt.Errorf("federate: unsupported plan node %T", plan)
	}
}

// --- scans -----------------------------------------------------------------

func execScan(cat *Catalog, s *Scan) (*Relation, error) {
	var rel *Relation
	var err error
	switch s.Source {
	case SourceGraph:
		rel, err = scanGraph(cat, s)
	case SourceFrame:
		rel, err = scanFrame(cat, s)
	case SourceSQL:
		return scanSQL(cat, s)
	default:
		return nil, fmt.Errorf("federate: unknown scan source %q (have graph, frame, sql)", s.Source)
	}
	if err != nil {
		return nil, err
	}
	return finishScan(cat, rel, s.Pushed, s.Cols)
}

// finishScan applies pushed predicates and the projected column list to a
// fully-lifted relation (the graph and frame scans filter during lift; the
// SQL scan compiles both into the query and skips this).
func finishScan(cat *Catalog, rel *Relation, pushed []Cmp, cols []string) (*Relation, error) {
	if len(pushed) > 0 {
		kept := rel.Rows[:0:0]
		for i, row := range rel.Rows {
			if err := cat.cancelled(i); err != nil {
				return nil, err
			}
			ok, err := rowMatches(rel, row, pushed)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rel = &Relation{Cols: rel.Cols, Rows: kept}
	}
	if cols == nil {
		return rel, nil
	}
	return projectRelation(rel, cols)
}

func rowMatches(rel *Relation, row []nql.Value, cmps []Cmp) (bool, error) {
	for _, c := range cmps {
		i, err := rel.colIndex(c.Col)
		if err != nil {
			return false, err
		}
		ok, err := evalCmp(c.Op, row[i], c.Value)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func scanGraph(cat *Catalog, s *Scan) (*Relation, error) {
	g := cat.Graph
	if g == nil {
		return nil, fmt.Errorf("federate: catalog has no graph source")
	}
	// The computed virtual tables (pagerank, components) run whole graph
	// algorithms; refuse to start one on an already-dead context.
	if err := cat.cancelled(0); err != nil {
		return nil, err
	}
	switch s.Table {
	case GraphTableNodes:
		cols := []string{"id"}
		cols = append(cols, attrKeyUnion(g, true)...)
		rel := &Relation{Cols: cols}
		for _, id := range g.Nodes() {
			attrs := g.NodeAttrsView(id)
			row := make([]nql.Value, len(cols))
			row[0] = id
			for i, k := range cols[1:] {
				row[i+1] = liftValue(attrs[k])
			}
			rel.Rows = append(rel.Rows, row)
		}
		return rel, nil
	case GraphTableEdges:
		cols := []string{"src", "dst"}
		cols = append(cols, attrKeyUnion(g, false)...)
		rel := &Relation{Cols: cols}
		for _, e := range g.EdgesView() {
			row := make([]nql.Value, len(cols))
			row[0], row[1] = e.U, e.V
			for i, k := range cols[2:] {
				row[i+2] = liftValue(e.Attrs[k])
			}
			rel.Rows = append(rel.Rows, row)
		}
		return rel, nil
	case GraphTableDegree:
		rel := &Relation{Cols: []string{"id", "degree", "in_degree", "out_degree"}}
		for _, id := range g.Nodes() {
			rel.Rows = append(rel.Rows, []nql.Value{
				id, int64(g.Degree(id)), int64(g.InDegree(id)), int64(g.OutDegree(id)),
			})
		}
		return rel, nil
	case GraphTablePageRank:
		// Same parameters as the networkx binding's pagerank() so federated
		// plans agree with per-backend goldens.
		pr := g.PageRank(0.85, 100, 1e-9)
		rel := &Relation{Cols: []string{"id", "pagerank"}}
		for _, id := range g.Nodes() {
			rel.Rows = append(rel.Rows, []nql.Value{id, pr[id]})
		}
		return rel, nil
	case GraphTableComponents:
		comp := map[string]int64{}
		for i, members := range g.ConnectedComponents() {
			for _, id := range members {
				comp[id] = int64(i)
			}
		}
		rel := &Relation{Cols: []string{"id", "component"}}
		for _, id := range g.Nodes() {
			rel.Rows = append(rel.Rows, []nql.Value{id, comp[id]})
		}
		return rel, nil
	default:
		return nil, fmt.Errorf("federate: unknown graph table %q (have nodes, edges, degree, pagerank, components)", s.Table)
	}
}

// attrKeyUnion returns the sorted union of attribute keys over all nodes
// (or edges) of the graph.
func attrKeyUnion(g *graph.Graph, nodes bool) []string {
	seen := map[string]bool{}
	if nodes {
		for _, id := range g.Nodes() {
			for k := range g.NodeAttrsView(id) {
				seen[k] = true
			}
		}
	} else {
		for _, e := range g.EdgesView() {
			for k := range e.Attrs {
				seen[k] = true
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func scanFrame(cat *Catalog, s *Scan) (*Relation, error) {
	f := cat.Frames[s.Table]
	if f == nil {
		names := make([]string, 0, len(cat.Frames))
		for name := range cat.Frames {
			names = append(names, name)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("federate: unknown frame table %q (have %v)", s.Table, names)
	}
	return frameRelation(f), nil
}

func frameRelation(f *dataframe.Frame) *Relation {
	cols := f.Columns()
	rel := &Relation{Cols: cols}
	columns := make([][]any, len(cols))
	for i, c := range cols {
		columns[i], _ = f.Column(c)
	}
	for r := 0; r < f.NumRows(); r++ {
		row := make([]nql.Value, len(cols))
		for i := range cols {
			row[i] = liftValue(columns[i][r])
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel
}

// scanSQL pushes the scan into the SQL engine: projected columns become the
// SELECT list and every pushed predicate that has a SQL rendering becomes a
// WHERE conjunct. Predicates the dialect cannot express (bool/nil literals,
// strings containing quotes, contains) are applied locally afterwards.
func scanSQL(cat *Catalog, s *Scan) (*Relation, error) {
	if cat.DB == nil {
		return nil, fmt.Errorf("federate: catalog has no sql source")
	}
	var local []Cmp
	var where []string
	for _, c := range s.Pushed {
		if sqlCond, ok := sqlCompile(c); ok {
			where = append(where, sqlCond)
		} else {
			local = append(local, c)
		}
	}
	// Local predicates may reference columns outside the projection, so the
	// narrowed SELECT list is only safe when everything was pushed.
	sel := "*"
	project := s.Cols
	if project != nil && len(local) == 0 {
		sel = strings.Join(project, ", ")
		project = nil
	}
	q := fmt.Sprintf("SELECT %s FROM %s", sel, s.Table)
	if len(where) > 0 {
		q += " WHERE " + strings.Join(where, " AND ")
	}
	f, err := cat.DB.QueryContext(cat.context(), q)
	if err != nil {
		return nil, err
	}
	return finishScan(cat, frameRelation(f), local, project)
}

// sqlCompile renders a structured predicate as a SQL condition; ok is false
// when the dialect cannot express it and it must run locally.
func sqlCompile(c Cmp) (string, bool) {
	var op string
	switch c.Op {
	case "==":
		op = "="
	case "!=", "<", "<=", ">", ">=":
		op = c.Op
	case "prefix":
		s, ok := c.Value.(string)
		if !ok || strings.ContainsAny(s, "%_'") {
			return "", false
		}
		return fmt.Sprintf("%s LIKE '%s%%'", c.Col, s), true
	default:
		return "", false
	}
	switch v := c.Value.(type) {
	case int64:
		return fmt.Sprintf("%s %s %d", c.Col, op, v), true
	case float64:
		// The dialect's lexer has no exponent syntax, so the literal must
		// be plain decimal digits; NaN/Inf have no rendering at all.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "", false
		}
		return fmt.Sprintf("%s %s %s", c.Col, op, strconv.FormatFloat(v, 'f', -1, 64)), true
	case string:
		if strings.Contains(v, "'") {
			return "", false
		}
		return fmt.Sprintf("%s %s '%s'", c.Col, op, v), true
	default:
		return "", false
	}
}

// --- relational operators --------------------------------------------------

func execFilter(cat *Catalog, f *Filter) (*Relation, error) {
	in, err := Exec(cat, f.Input)
	if err != nil {
		return nil, err
	}
	switch p := f.Pred.(type) {
	case Cmp:
		return finishScan(cat, in, []Cmp{p}, nil)
	case FuncPred, And:
		out := &Relation{Cols: in.Cols}
		for i, row := range in.Rows {
			if err := cat.cancelled(i); err != nil {
				return nil, err
			}
			keep, err := evalPred(in, row, p)
			if err != nil {
				return nil, err
			}
			if keep {
				out.Rows = append(out.Rows, row)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("federate: unsupported predicate %T", f.Pred)
	}
}

// evalPred evaluates one predicate against a row: Cmp resolves its column
// lazily (like rowMatches), FuncPred lifts the row to a map, And
// short-circuits left to right.
func evalPred(rel *Relation, row []nql.Value, pred Pred) (bool, error) {
	switch p := pred.(type) {
	case Cmp:
		i, err := rel.colIndex(p.Col)
		if err != nil {
			return false, err
		}
		return evalCmp(p.Op, row[i], p.Value)
	case FuncPred:
		m := nql.NewMap()
		for j, c := range rel.Cols {
			_ = m.Set(c, row[j])
		}
		keep, err := p.Fn(m)
		if err != nil {
			return false, err
		}
		return keep, nil
	case And:
		for _, sub := range p.Preds {
			ok, err := evalPred(rel, row, sub)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	default:
		return false, fmt.Errorf("federate: unsupported predicate %T", pred)
	}
}

func execProject(cat *Catalog, p *Project) (*Relation, error) {
	in, err := Exec(cat, p.Input)
	if err != nil {
		return nil, err
	}
	return projectRelation(in, p.Cols)
}

func projectRelation(in *Relation, cols []string) (*Relation, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, err := in.colIndex(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	out := &Relation{Cols: append([]string(nil), cols...)}
	for _, row := range in.Rows {
		nr := make([]nql.Value, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

func execJoin(cat *Catalog, j *Join) (*Relation, error) {
	left, err := Exec(cat, j.Left)
	if err != nil {
		return nil, err
	}
	right, err := Exec(cat, j.Right)
	if err != nil {
		return nil, err
	}
	return joinRelations(cat, j, false, left, right)
}

// joinRelations is the hash equi-join over two materialized inputs, shared
// by the recursive executor (always build-right) and the pipelined join
// stage (build side chosen by the planner). Output is identical either
// way: left-major, each left row's matches in right-row order; key errors
// keep their legacy precedence (all right keys are computed before any
// left key) regardless of the build side.
func joinRelations(cat *Catalog, j *Join, buildLeft bool, left, right *Relation) (*Relation, error) {
	li, err := left.colIndex(j.LeftKey)
	if err != nil {
		return nil, err
	}
	ri, err := right.colIndex(j.RightKey)
	if err != nil {
		return nil, err
	}
	// Output schema: left columns, then right columns minus the join key;
	// collisions with a left name get the "_r" suffix.
	cols := append([]string(nil), left.Cols...)
	taken := map[string]bool{}
	for _, c := range cols {
		taken[c] = true
	}
	var rightCols []int
	for i, c := range right.Cols {
		if i == ri {
			continue
		}
		rightCols = append(rightCols, i)
		if taken[c] {
			c += "_r"
		}
		taken[c] = true
		cols = append(cols, c)
	}
	rkeys := make([]vkey, len(right.Rows))
	for i, row := range right.Rows {
		if err := cat.cancelled(i); err != nil {
			return nil, err
		}
		k, err := valueKey(row[ri])
		if err != nil {
			return nil, fmt.Errorf("federate: join key %s: %w", j.RightKey, err)
		}
		rkeys[i] = k
	}
	lkeys := make([]vkey, len(left.Rows))
	for i, row := range left.Rows {
		if err := cat.cancelled(i); err != nil {
			return nil, err
		}
		k, err := valueKey(row[li])
		if err != nil {
			return nil, fmt.Errorf("federate: join key %s: %w", j.LeftKey, err)
		}
		lkeys[i] = k
	}
	// matches[i] lists, in right-row order, the right rows joining left row
	// i; built by probing whichever side is hashed.
	matches := make([][]int, len(left.Rows))
	if buildLeft {
		index := make(map[vkey][]int, len(left.Rows))
		for i, k := range lkeys {
			index[k] = append(index[k], i)
		}
		for ji, k := range rkeys {
			for _, i := range index[k] {
				matches[i] = append(matches[i], ji)
			}
		}
	} else {
		index := make(map[vkey][]int, len(right.Rows))
		for ji, k := range rkeys {
			index[k] = append(index[k], ji)
		}
		for i, k := range lkeys {
			matches[i] = index[k]
		}
	}
	out := &Relation{Cols: cols}
	for i, lrow := range left.Rows {
		for _, ji := range matches[i] {
			// Checkpoint on output rows too: a skewed key can fan one left
			// row out to millions of matches, and the per-left-row poll
			// alone would leave cancellation latency unbounded. The nil
			// test stays inline so context-free runs pay no call per row.
			if cat.ctx != nil {
				if err := cat.cancelled(len(out.Rows)); err != nil {
					return nil, err
				}
			}
			row := make([]nql.Value, 0, len(cols))
			row = append(row, lrow...)
			for _, c := range rightCols {
				row = append(row, right.Rows[ji][c])
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// vkey is the comparable hash key for a scalar join/group value (the
// sqldb struct-key idiom, replacing the old canonical-string rendering).
// Numbers collapse across int64/float64 by keying on the float64 bit
// pattern, with every NaN canonicalized to a single representation so NaN
// keys still group together; -0.0 and 0.0 stay distinct, exactly like the
// old "%v" rendering.
type vkey struct {
	kind uint8 // 0 nil, 1 bool, 2 number, 3 string
	bits uint64
	str  string
}

// valueKey builds the hash key for a scalar value; non-scalar values are
// unhashable, with the same error as the old string rendering.
func valueKey(v nql.Value) (vkey, error) {
	switch x := v.(type) {
	case nil:
		return vkey{}, nil
	case bool:
		var b uint64
		if x {
			b = 1
		}
		return vkey{kind: 1, bits: b}, nil
	case int64:
		return vkey{kind: 2, bits: canonFloatBits(float64(x))}, nil
	case float64:
		return vkey{kind: 2, bits: canonFloatBits(x)}, nil
	case string:
		return vkey{kind: 3, str: x}, nil
	default:
		return vkey{}, fmt.Errorf("unhashable value of type %s", nql.TypeName(v))
	}
}

func canonFloatBits(f float64) uint64 {
	if math.IsNaN(f) {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(f)
}

// appendTo serializes a vkey into a composite group-key buffer (kind
// byte, then the payload, then a field separator).
func (k vkey) appendTo(buf []byte) []byte {
	buf = append(buf, k.kind)
	switch k.kind {
	case 1, 2:
		buf = append(buf,
			byte(k.bits>>56), byte(k.bits>>48), byte(k.bits>>40), byte(k.bits>>32),
			byte(k.bits>>24), byte(k.bits>>16), byte(k.bits>>8), byte(k.bits))
	case 3:
		buf = append(buf, k.str...)
	}
	return append(buf, 0x1f)
}

func execAggregate(cat *Catalog, a *Aggregate) (*Relation, error) {
	in, err := Exec(cat, a.Input)
	if err != nil {
		return nil, err
	}
	st, err := newAggState(a, in.Cols)
	if err != nil {
		return nil, err
	}
	for ri, row := range in.Rows {
		if err := cat.cancelled(ri); err != nil {
			return nil, err
		}
		if err := st.add(row); err != nil {
			return nil, err
		}
	}
	return st.finish(), nil
}

// aggGroup is one group's key values and accumulators.
type aggGroup struct {
	key  []nql.Value
	accs []*agg
}

// aggState is the streaming core of Aggregate, shared by the recursive
// executor and the pipelined aggregate stage: column resolution happens at
// construction (so an unknown column errors even over empty input, in the
// legacy order — group keys first, then each spec's function before its
// column), rows fold in one at a time, and finish emits groups in
// first-appearance order.
type aggState struct {
	a    *Aggregate
	cols []string
	gidx []int
	aidx []int
	// Single-column groups hash on the comparable struct key directly;
	// composite groups serialize the per-column keys into one buffer.
	single map[vkey]*aggGroup
	groups map[string]*aggGroup
	order  []*aggGroup
	kbuf   []byte
}

func newAggState(a *Aggregate, cols []string) (*aggState, error) {
	in := &Relation{Cols: cols}
	gidx := make([]int, len(a.GroupBy))
	for i, c := range a.GroupBy {
		j, err := in.colIndex(c)
		if err != nil {
			return nil, err
		}
		gidx[i] = j
	}
	aidx := make([]int, len(a.Aggs))
	for i, sp := range a.Aggs {
		if !validAggFn(sp.Fn) {
			return nil, fmt.Errorf("federate: unknown aggregate %q (have count, sum, mean, min, max)", sp.Fn)
		}
		if sp.Fn == AggCount {
			aidx[i] = -1
			continue
		}
		j, err := in.colIndex(sp.Col)
		if err != nil {
			return nil, err
		}
		aidx[i] = j
	}
	return &aggState{
		a: a, cols: cols, gidx: gidx, aidx: aidx,
		single: map[vkey]*aggGroup{}, groups: map[string]*aggGroup{},
	}, nil
}

func (st *aggState) newGroup(row []nql.Value) *aggGroup {
	g := &aggGroup{key: make([]nql.Value, len(st.gidx)), accs: make([]*agg, len(st.a.Aggs))}
	for i, j := range st.gidx {
		g.key[i] = row[j]
	}
	for i := range g.accs {
		g.accs[i] = &agg{}
	}
	st.order = append(st.order, g)
	return g
}

func (st *aggState) lookup(row []nql.Value) (*aggGroup, error) {
	if len(st.gidx) == 1 {
		k, err := valueKey(row[st.gidx[0]])
		if err != nil {
			return nil, fmt.Errorf("federate: group key %s: %w", st.cols[st.gidx[0]], err)
		}
		g, ok := st.single[k]
		if !ok {
			g = st.newGroup(row)
			st.single[k] = g
		}
		return g, nil
	}
	st.kbuf = st.kbuf[:0]
	for _, j := range st.gidx {
		k, err := valueKey(row[j])
		if err != nil {
			return nil, fmt.Errorf("federate: group key %s: %w", st.cols[j], err)
		}
		st.kbuf = k.appendTo(st.kbuf)
	}
	g, ok := st.groups[string(st.kbuf)]
	if !ok {
		g = st.newGroup(row)
		st.groups[string(st.kbuf)] = g
	}
	return g, nil
}

func (st *aggState) add(row []nql.Value) error {
	g, err := st.lookup(row)
	if err != nil {
		return err
	}
	for i, sp := range st.a.Aggs {
		var v nql.Value
		if st.aidx[i] >= 0 {
			v = row[st.aidx[i]]
		}
		if err := g.accs[i].add(sp.Fn, v); err != nil {
			return fmt.Errorf("federate: %s(%s): %w", sp.Fn, sp.Col, err)
		}
	}
	return nil
}

func (st *aggState) finish() *Relation {
	order := st.order
	if len(st.gidx) == 0 && len(order) == 0 {
		// A global aggregate always emits one row, even over zero input
		// rows (count 0, other aggregates nil — SQL semantics).
		g := &aggGroup{accs: make([]*agg, len(st.a.Aggs))}
		for i := range g.accs {
			g.accs[i] = &agg{}
		}
		order = append(order, g)
	}
	cols := append([]string(nil), st.a.GroupBy...)
	for _, sp := range st.a.Aggs {
		cols = append(cols, sp.As)
	}
	out := &Relation{Cols: cols}
	for _, g := range order {
		row := append([]nql.Value(nil), g.key...)
		for i, sp := range st.a.Aggs {
			row = append(row, g.accs[i].result(sp.Fn))
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func validAggFn(fn string) bool {
	switch fn {
	case AggCount, AggSum, AggMean, AggMin, AggMax:
		return true
	}
	return false
}

// agg accumulates one aggregate over a group. Nil cells are skipped (SQL
// NULL semantics); sums stay integral while every input is an int64.
type agg struct {
	count    int64
	sumF     float64
	sumI     int64
	allInt   bool
	seen     bool
	best     nql.Value // min/max candidate
	haveBest bool
}

func (g *agg) add(fn string, v nql.Value) error {
	if fn == AggCount {
		g.count++
		return nil
	}
	if v == nil {
		return nil
	}
	switch fn {
	case AggSum, AggMean:
		switch x := v.(type) {
		case int64:
			if !g.seen {
				g.allInt = true
			}
			g.sumI += x
			g.sumF += float64(x)
		case float64:
			g.allInt = false
			g.sumF += x
		default:
			return fmt.Errorf("value must be a number, got %s", nql.TypeName(v))
		}
		g.seen = true
		g.count++
	case AggMin, AggMax:
		if !g.haveBest {
			g.best, g.haveBest = v, true
			return nil
		}
		cmp := dataframe.CompareValues(g.best, v)
		if (fn == AggMin && cmp > 0) || (fn == AggMax && cmp < 0) {
			g.best = v
		}
	}
	return nil
}

func (g *agg) result(fn string) nql.Value {
	switch fn {
	case AggCount:
		return g.count
	case AggSum:
		if !g.seen {
			return nil
		}
		if g.allInt {
			return g.sumI
		}
		return g.sumF
	case AggMean:
		if !g.seen {
			return nil
		}
		return g.sumF / float64(g.count)
	case AggMin, AggMax:
		if !g.haveBest {
			return nil
		}
		return g.best
	}
	return nil
}

func execSort(cat *Catalog, s *Sort) (*Relation, error) {
	in, err := Exec(cat, s.Input)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(s.Cols))
	for i, c := range s.Cols {
		j, err := in.colIndex(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	if err := cat.cancelled(0); err != nil {
		return nil, err
	}
	rows := append([][]nql.Value(nil), in.Rows...)
	sort.SliceStable(rows, func(a, b int) bool {
		for _, j := range idx {
			cmp := dataframe.CompareValues(rows[a][j], rows[b][j])
			if cmp != 0 {
				if s.Ascending {
					return cmp < 0
				}
				return cmp > 0
			}
		}
		return false
	})
	return &Relation{Cols: in.Cols, Rows: rows}, nil
}

func execLimit(cat *Catalog, l *Limit) (*Relation, error) {
	in, err := Exec(cat, l.Input)
	if err != nil {
		return nil, err
	}
	n := l.N
	if n < 0 {
		n = 0
	}
	if n > len(in.Rows) {
		n = len(in.Rows)
	}
	return &Relation{Cols: in.Cols, Rows: in.Rows[:n]}, nil
}

// evalCmp evaluates one structured comparison against a cell.
func evalCmp(op string, cell, want nql.Value) (bool, error) {
	switch op {
	case "==":
		return scalarEqual(cell, want), nil
	case "!=":
		return !scalarEqual(cell, want), nil
	case "<", "<=", ">", ">=":
		cmp, err := orderedCompare(cell, want)
		if err != nil {
			return false, err
		}
		switch op {
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	case "contains":
		s, ok1 := cell.(string)
		sub, ok2 := want.(string)
		if !ok1 || !ok2 {
			return false, fmt.Errorf("federate: contains requires strings, got %s and %s", nql.TypeName(cell), nql.TypeName(want))
		}
		return strings.Contains(s, sub), nil
	case "prefix":
		s, ok1 := cell.(string)
		p, ok2 := want.(string)
		if !ok1 || !ok2 {
			return false, fmt.Errorf("federate: prefix requires strings, got %s and %s", nql.TypeName(cell), nql.TypeName(want))
		}
		return strings.HasPrefix(s, p), nil
	default:
		return false, fmt.Errorf("federate: unknown comparison operator %q", op)
	}
}

func scalarEqual(a, b nql.Value) bool {
	switch a.(type) {
	case nil, bool, int64, float64, string:
		return nql.ValuesEqual(a, b)
	default:
		return false
	}
}

func orderedCompare(a, b nql.Value) (int, error) {
	an, aok := asNumber(a)
	bn, bok := asNumber(b)
	if aok && bok {
		switch {
		case an < bn:
			return -1, nil
		case an > bn:
			return 1, nil
		default:
			return 0, nil
		}
	}
	as, aok2 := a.(string)
	bs, bok2 := b.(string)
	if aok2 && bok2 {
		return strings.Compare(as, bs), nil
	}
	return 0, fmt.Errorf("federate: cannot order %s against %s", nql.TypeName(a), nql.TypeName(b))
}

func asNumber(v nql.Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

package federate

import (
	"fmt"
	"strings"

	"repro/internal/nql"
)

// Node is one operator of the logical plan. Plans are immutable trees built
// by the bindings (or directly in Go) and consumed by Optimize/Run; sharing
// subtrees between plans is safe.
type Node interface {
	// label renders the operator (without children) for Explain.
	label() string
	children() []Node
}

// Comparison operators accepted by Cmp predicates.
var cmpOps = map[string]bool{
	"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true,
	"contains": true, "prefix": true,
}

// ValidOp reports whether op is a structured comparison operator.
func ValidOp(op string) bool { return cmpOps[op] }

// Pred is a row predicate: either a structured comparison (Cmp), which the
// optimizer can push into scans, or an opaque function (FuncPred), which
// always evaluates in the executor.
type Pred interface {
	predLabel() string
}

// Cmp compares one column against a literal: ==, !=, <, <=, >, >=,
// contains (substring) or prefix.
type Cmp struct {
	Col   string
	Op    string
	Value nql.Value
}

func (c Cmp) predLabel() string { return fmt.Sprintf("%s %s %s", c.Col, c.Op, nql.Repr(c.Value)) }

// FuncPred wraps an arbitrary row predicate (e.g. an NQL lambda). It is
// never pushed down.
type FuncPred struct {
	Fn func(row *nql.Map) (bool, error)

	// NoErr marks a predicate proven pure and row-total by the NQL
	// semantic analyzer (a single-parameter lambda whose body cannot fail
	// or observe side effects when applied to a row map; see
	// internal/nql/analysis). Calling a NoErr predicate earlier, later,
	// or on rows the legacy executor would never reach is unobservable,
	// so the pipeline-safety classifier ignores NoErr predicates when
	// counting divergence risks. Resource-budget aborts (step/alloc/
	// wall-clock) are excluded from the proof by contract: both executors
	// share one budget and an abort cancels the whole run.
	NoErr bool
}

func (FuncPred) predLabel() string { return "fn(row)" }

// And is a conjunction of predicates, evaluated left to right with
// short-circuiting. The optimizer splits an And directly above a scan and
// folds each Cmp conjunct into the scan's pushdown list individually.
type And struct {
	Preds []Pred
}

func (a And) predLabel() string {
	parts := make([]string, len(a.Preds))
	for i, p := range a.Preds {
		parts[i] = p.predLabel()
	}
	return strings.Join(parts, " and ")
}

// Scan reads one table of one source. Pushed and Cols are filled by the
// optimizer: the scan applies Pushed predicates natively (a SQL WHERE
// clause where expressible, during row lift otherwise) and then projects to
// Cols (nil means all columns, in the table's natural order).
type Scan struct {
	Source string
	Table  string
	Pushed []Cmp
	Cols   []string
}

func (s *Scan) children() []Node { return nil }
func (s *Scan) label() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scan %s.%s", s.Source, s.Table)
	for _, c := range s.Pushed {
		fmt.Fprintf(&sb, " [%s]", c.predLabel())
	}
	if s.Cols != nil {
		fmt.Fprintf(&sb, " cols=(%s)", strings.Join(s.Cols, ", "))
	}
	return sb.String()
}

// Filter keeps the input rows satisfying Pred.
type Filter struct {
	Input Node
	Pred  Pred
}

func (f *Filter) children() []Node { return []Node{f.Input} }
func (f *Filter) label() string    { return "filter " + f.Pred.predLabel() }

// Project keeps (and reorders to) the named columns.
type Project struct {
	Input Node
	Cols  []string
}

func (p *Project) children() []Node { return []Node{p.Input} }
func (p *Project) label() string    { return "project (" + strings.Join(p.Cols, ", ") + ")" }

// Join is an inner hash equi-join on LeftKey = RightKey. Output columns are
// the left columns followed by the right columns minus the join key; a
// right column whose name collides with a left column is suffixed "_r".
type Join struct {
	Left, Right       Node
	LeftKey, RightKey string
}

func (j *Join) children() []Node { return []Node{j.Left, j.Right} }
func (j *Join) label() string    { return fmt.Sprintf("join on %s = %s", j.LeftKey, j.RightKey) }

// Aggregate functions.
const (
	AggCount = "count"
	AggSum   = "sum"
	AggMean  = "mean"
	AggMin   = "min"
	AggMax   = "max"
)

// AggSpec is one aggregation: Fn over Col, emitted as column As. AggCount
// ignores Col.
type AggSpec struct {
	Col string
	Fn  string
	As  string
}

// Aggregate groups the input by the GroupBy columns (empty means one global
// group) and computes the Aggs per group. Groups appear in first-appearance
// order of the input rows; output columns are GroupBy followed by the agg
// names.
type Aggregate struct {
	Input   Node
	GroupBy []string
	Aggs    []AggSpec
}

func (a *Aggregate) children() []Node { return []Node{a.Input} }
func (a *Aggregate) label() string {
	parts := make([]string, len(a.Aggs))
	for i, sp := range a.Aggs {
		parts[i] = fmt.Sprintf("%s(%s) as %s", sp.Fn, sp.Col, sp.As)
	}
	return fmt.Sprintf("aggregate group=(%s) aggs=(%s)",
		strings.Join(a.GroupBy, ", "), strings.Join(parts, ", "))
}

// Sort stably orders rows by the given columns; Ascending applies to every
// key (pandas-style single flag).
type Sort struct {
	Input     Node
	Cols      []string
	Ascending bool
}

func (s *Sort) children() []Node { return []Node{s.Input} }
func (s *Sort) label() string {
	dir := "asc"
	if !s.Ascending {
		dir = "desc"
	}
	return fmt.Sprintf("sort (%s) %s", strings.Join(s.Cols, ", "), dir)
}

// Limit keeps the first N rows.
type Limit struct {
	Input Node
	N     int
}

func (l *Limit) children() []Node { return []Node{l.Input} }
func (l *Limit) label() string    { return fmt.Sprintf("limit %d", l.N) }

// Explain renders a plan as an indented operator tree (one operator per
// line, children indented), the federated analogue of EXPLAIN.
func Explain(n Node) string {
	var sb strings.Builder
	explainInto(&sb, n, 0)
	return sb.String()
}

func explainInto(sb *strings.Builder, n Node, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(n.label())
	sb.WriteString("\n")
	for _, c := range n.children() {
		explainInto(sb, c, depth+1)
	}
}

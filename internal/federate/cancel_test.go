package federate

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dataframe"
)

// heavyCatalog builds a frame whose self-join on a constant key explodes
// to rows² output rows — enough work that only a checkpoint can stop it.
func heavyCatalog(rows int) *Catalog {
	f := dataframe.New("k", "v")
	for i := 0; i < rows; i++ {
		f.AppendRow(int64(1), int64(i))
	}
	return &Catalog{Frames: map[string]*dataframe.Frame{"big": f}}
}

func selfJoin() Node {
	return &Join{
		Left:    &Scan{Source: SourceFrame, Table: "big"},
		Right:   &Scan{Source: SourceFrame, Table: "big"},
		LeftKey: "k", RightKey: "k",
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, testCatalog(), &Scan{Source: SourceFrame, Table: "edges"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want wrapped context.Canceled", err)
	}
}

// TestRunContextDeadlineStopsJoin arms a deadline far shorter than the
// quadratic self-join: the executor must abort at a row checkpoint, not
// run the join to completion.
func TestRunContextDeadlineStopsJoin(t *testing.T) {
	cat := heavyCatalog(2000) // 4M join output rows if left unchecked
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, cat, selfJoin())
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want wrapped context.DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("join abort took %v, want a prompt checkpoint return", elapsed)
	}
}

// TestRunContextBackgroundUnchanged pins the no-deadline path: the same
// plan under a background context completes with the full cross product.
func TestRunContextBackgroundUnchanged(t *testing.T) {
	cat := heavyCatalog(40)
	rel, err := RunContext(context.Background(), cat, selfJoin())
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 40*40 {
		t.Fatalf("join produced %d rows, want %d", len(rel.Rows), 40*40)
	}
}

// TestCancelLeavesNoGoroutines is the hand-rolled leak check (goleak is
// not vendored): concurrently cancelled executions must return the process
// to its goroutine baseline — the executor is synchronous and must not
// strand anything.
func TestCancelLeavesNoGoroutines(t *testing.T) {
	cat := heavyCatalog(2000)
	before := runtime.NumGoroutine()
	const runs = 8
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i)*time.Millisecond)
			defer cancel()
			if _, err := RunContext(ctx, cat, selfJoin()); err == nil {
				t.Error("quadratic join finished under a millisecond deadline")
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled runs: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

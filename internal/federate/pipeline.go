package federate

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataframe"
	"repro/internal/nql"
	"repro/internal/obs"
	"repro/internal/sqldb"
)

// This file is the pipelined executor: every operator of a prepared plan
// runs as its own goroutine, streaming column-major batches downstream over
// bounded channels, so a scan can lift rows while the join above it hashes
// and the aggregate above that folds. Scans serve from sqldb's native
// columnar entry points when the planner marked them Native (falling back
// to the general path on ErrPushdown), and planner-fused join/aggregate
// stages push the whole subtree into the SQL substrate.
//
// The pipeline is observationally identical to the legacy recursive
// executor (exec.go), which stays in place both as the fallback for plans
// classify() rejects and as the differential oracle for tests. Three rules
// keep the behaviors aligned:
//
//   - Resolution timing: stages resolve column names when the schema
//     message arrives (before any rows), except per-row predicates, which
//     resolve lazily with short-circuiting exactly like rowMatches.
//   - Error precedence: a stage hitting its own error keeps draining its
//     input; if the input ends with an error, that upstream error wins —
//     the legacy executor evaluates inputs fully before the parent stage.
//   - All-or-nothing stages: join, aggregate and sort emit nothing until
//     their input completed cleanly, so downstream stages never observe
//     rows from a failing subtree.

// pipeChanCap bounds each inter-stage channel: enough for the producer to
// stay ahead without unbounded buffering.
const pipeChanCap = 2

// pmsg is one message on an inter-stage channel: the schema (first
// message), a batch, or a terminal error (last message before close).
type pmsg struct {
	schema []string
	b      *batch
	err    error
}

// pipePanic transports a stage goroutine's panic to the caller goroutine,
// where sink re-raises it (so sandbox-level recovery behaves as if the
// legacy executor had panicked inline).
type pipePanic struct{ val any }

func (p *pipePanic) Error() string { return fmt.Sprintf("federate: pipeline panic: %v", p.val) }

type pipeline struct {
	cat  *Catalog // per-run copy: ctx is the pipeline context, prof cleared
	prof *obs.Profile
	pctx context.Context
	// done closes when runPipeline returns. It is the senders' escape
	// hatch for the one case a downstream consumer stops draining (a
	// panicked stage); live cancellation still flows through ordinary
	// error messages, which must never be dropped.
	done chan struct{}
}

// runPipeline executes a prepared pipeline-mode plan.
func runPipeline(ctx context.Context, cat *Catalog, p *Prepared) (*Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prof := obs.ProfileFrom(ctx)
	if ctx != context.Background() || prof != nil {
		// Refuse to start on a dead context (the ExecContext contract).
		probe := *cat
		probe.ctx = ctx
		if err := probe.cancelled(0); err != nil {
			return nil, err
		}
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	run := *cat
	run.ctx = pctx
	run.prof = nil
	pl := &pipeline{cat: &run, prof: prof, pctx: pctx, done: done}
	pos := 0
	out := pl.build(p.plan, p.decs, &pos, nil)
	return pl.sink(out)
}

// build wires up the stage graph for a plan subtree (pre-order aligned
// with the decision list) and returns the subtree's output channel.
func (pl *pipeline) build(n Node, decs []decision, pos *int, parent *obs.ProfNode) <-chan pmsg {
	var d decision
	if *pos < len(decs) {
		d = decs[*pos]
	}
	*pos++
	frame := pl.enter(parent, n)
	out := make(chan pmsg, pipeChanCap)
	switch x := n.(type) {
	case *Scan:
		pl.scanStage(x, d, frame, out)
	case *Filter:
		in := pl.build(x.Input, decs, pos, frame)
		pl.filterStage(x, frame, in, out)
	case *Project:
		in := pl.build(x.Input, decs, pos, frame)
		pl.projectStage(x, frame, in, out)
	case *Join:
		if d.Fuse == fuseSQLJoin {
			*pos += 2 // the two fused scan children
			pl.fusedJoinStage(x, d, frame, out)
		} else {
			left := pl.build(x.Left, decs, pos, frame)
			right := pl.build(x.Right, decs, pos, frame)
			pl.joinStage(x, d, frame, left, right, out)
		}
	case *Aggregate:
		if d.Fuse == fuseSQLAgg {
			*pos++ // the fused scan child
			pl.fusedAggStage(x, frame, out)
		} else {
			in := pl.build(x.Input, decs, pos, frame)
			pl.aggStage(x, frame, in, out)
		}
	case *Sort:
		in := pl.build(x.Input, decs, pos, frame)
		pl.sortStage(x, frame, in, out)
	case *Limit:
		in := pl.build(x.Input, decs, pos, frame)
		pl.limitStage(x, frame, in, out)
	default:
		// classify() keeps unknown operators on the legacy executor; this
		// is a safety net, not a supported path.
		pl.legacyStage(n, frame, out)
	}
	return out
}

// enter pre-builds the stage's profile frame under its parent (frames are
// created top-down at build time; each stage closes its own with Exit).
func (pl *pipeline) enter(parent *obs.ProfNode, n Node) *obs.ProfNode {
	if pl.prof == nil {
		return nil
	}
	name := opName(n)
	return pl.prof.EnterChild(parent, name, strings.TrimPrefix(strings.TrimPrefix(n.label(), name), " "))
}

// stageCat returns the catalog a stage hands to substrate calls: the run
// catalog, with the stage's profile frame threaded through the context so
// sqldb's frames nest under this stage.
func (pl *pipeline) stageCat(frame *obs.ProfNode) *Catalog {
	if frame == nil {
		return pl.cat
	}
	c := *pl.cat
	c.ctx = obs.WithFrame(pl.pctx, frame)
	return &c
}

// spawn launches a stage goroutine that owns (and always closes) out,
// converting a panic into a pipePanic message first.
func (pl *pipeline) spawn(out chan<- pmsg, body func(out chan<- pmsg)) {
	go func() {
		defer close(out)
		defer func() {
			if r := recover(); r != nil {
				pl.send(out, pmsg{err: &pipePanic{val: r}})
			}
		}()
		body(out)
	}()
}

// send delivers a message downstream. Every live stage drains its input
// to close, so a send only fails once the pipeline has already returned
// (teardown after a result, an error — or a panicked consumer).
func (pl *pipeline) send(out chan<- pmsg, m pmsg) bool {
	select {
	case out <- m:
		return true
	case <-pl.done:
		return false
	}
}

// finishStage closes out a stage: forward the error (frame rows -1) or
// record the emitted row count.
func (pl *pipeline) finishStage(frame *obs.ProfNode, out chan<- pmsg, rows int64, err error) {
	if err != nil {
		pl.prof.Exit(frame, -1)
		pl.send(out, pmsg{err: err})
		return
	}
	pl.prof.Exit(frame, rows)
}

// consume drains the input channel, dispatching the schema message and
// each batch until a callback errors; after that it keeps draining. The
// upstream error, arriving last, takes precedence over the stage's own.
func (pl *pipeline) consume(in <-chan pmsg, onSchema func([]string) error, onBatch func(*batch) error) error {
	var upErr, ownErr error
	for m := range in {
		switch {
		case m.err != nil:
			upErr = m.err
		case ownErr != nil:
			// already failed: drain only
		case m.schema != nil:
			ownErr = onSchema(m.schema)
		case m.b != nil:
			ownErr = onBatch(m.b)
		}
	}
	if upErr != nil {
		return upErr
	}
	return ownErr
}

// collect materializes a subtree's output as a row-major relation (for
// the all-or-nothing stages: join, aggregate input is streamed instead).
func (pl *pipeline) collect(in <-chan pmsg) (*Relation, error) {
	rel := &Relation{}
	err := pl.consume(in,
		func(schema []string) error {
			rel.Cols = schema
			return nil
		},
		func(b *batch) error {
			for r := 0; r < b.n; r++ {
				rel.Rows = append(rel.Rows, b.row(r, nil))
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// sink drains the root stage into the caller's relation.
func (pl *pipeline) sink(in <-chan pmsg) (*Relation, error) {
	rel, err := pl.collect(in)
	if err != nil {
		var pp *pipePanic
		if errors.As(err, &pp) {
			panic(pp.val)
		}
		return nil, err
	}
	return rel, nil
}

// streamRel emits a materialized relation downstream as batches.
func (pl *pipeline) streamRel(out chan<- pmsg, rel *Relation) {
	w := &batchWriter{pl: pl, out: out}
	w.start(rel.Cols)
	for _, row := range rel.Rows {
		w.add(row)
	}
	w.flush()
}

// streamColumns lifts a native columnar result straight into batches —
// no row-major detour — and returns the row count.
func (pl *pipeline) streamColumns(out chan<- pmsg, names []string, data [][]any) int64 {
	schema := names
	if schema == nil {
		schema = []string{}
	}
	if !pl.send(out, pmsg{schema: schema}) {
		return 0
	}
	n := 0
	if len(data) > 0 {
		n = len(data[0])
	}
	for off := 0; off < n; off += batchRows {
		end := off + batchRows
		if end > n {
			end = n
		}
		b := &batch{cols: make([][]nql.Value, len(names)), n: end - off}
		for i := range names {
			col := make([]nql.Value, end-off)
			for r := off; r < end; r++ {
				col[r-off] = liftValue(data[i][r])
			}
			b.cols[i] = col
		}
		if !pl.send(out, pmsg{b: b}) {
			break
		}
	}
	return int64(n)
}

// --- stages --------------------------------------------------------------

func (pl *pipeline) scanStage(s *Scan, d decision, frame *obs.ProfNode, out chan<- pmsg) {
	pl.spawn(out, func(out chan<- pmsg) {
		cat := pl.stageCat(frame)
		if d.Native && s.Source == SourceSQL && cat.DB != nil {
			native, local := splitConds(s.Pushed)
			spec := sqldb.ScanSpec{Table: s.Table, Conds: native}
			project := s.Cols
			if local == nil && project != nil {
				// Everything pushed: narrow the scan itself, exactly like
				// the text path narrows the SELECT list.
				spec.Cols = project
				project = nil
			}
			names, data, err := cat.DB.ScanColumns(cat.context(), spec)
			switch {
			case err == nil && local == nil && project == nil:
				rows := pl.streamColumns(out, names, data)
				pl.finishStage(frame, out, rows, nil)
				return
			case err == nil:
				rel, ferr := finishScan(cat, liftColumns(names, data), local, project)
				if ferr != nil {
					pl.finishStage(frame, out, 0, ferr)
					return
				}
				pl.streamRel(out, rel)
				pl.finishStage(frame, out, int64(len(rel.Rows)), nil)
				return
			case !errors.Is(err, sqldb.ErrPushdown):
				pl.finishStage(frame, out, 0, err)
				return
			}
			// ErrPushdown: fall through to the general path.
		}
		rel, err := execScan(cat, s)
		if err != nil {
			pl.finishStage(frame, out, 0, err)
			return
		}
		pl.streamRel(out, rel)
		pl.finishStage(frame, out, int64(len(rel.Rows)), nil)
	})
}

func (pl *pipeline) filterStage(f *Filter, frame *obs.ProfNode, in <-chan pmsg, out chan<- pmsg) {
	pl.spawn(out, func(out chan<- pmsg) {
		var shim *Relation
		w := &batchWriter{pl: pl, out: out}
		var rowbuf []nql.Value
		polled := 0
		err := pl.consume(in,
			func(schema []string) error {
				shim = &Relation{Cols: schema}
				w.start(schema)
				return nil
			},
			func(b *batch) error {
				for r := 0; r < b.n; r++ {
					if err := pl.cat.cancelled(polled); err != nil {
						return err
					}
					polled++
					rowbuf = b.row(r, rowbuf)
					keep, err := evalPred(shim, rowbuf, f.Pred)
					if err != nil {
						return err
					}
					if keep {
						w.add(rowbuf)
					}
				}
				return nil
			})
		if err != nil {
			pl.finishStage(frame, out, 0, err)
			return
		}
		w.flush()
		pl.finishStage(frame, out, w.rows, nil)
	})
}

func (pl *pipeline) projectStage(p *Project, frame *obs.ProfNode, in <-chan pmsg, out chan<- pmsg) {
	pl.spawn(out, func(out chan<- pmsg) {
		var idx []int
		var rows int64
		err := pl.consume(in,
			func(schema []string) error {
				shim := &Relation{Cols: schema}
				idx = make([]int, len(p.Cols))
				for i, c := range p.Cols {
					j, err := shim.colIndex(c)
					if err != nil {
						return err
					}
					idx[i] = j
				}
				pl.send(out, pmsg{schema: append([]string{}, p.Cols...)})
				return nil
			},
			func(b *batch) error {
				nb := &batch{cols: make([][]nql.Value, len(idx)), n: b.n}
				for i, j := range idx {
					nb.cols[i] = b.cols[j]
				}
				rows += int64(b.n)
				pl.send(out, pmsg{b: nb})
				return nil
			})
		pl.finishStage(frame, out, rows, err)
	})
}

func (pl *pipeline) joinStage(j *Join, d decision, frame *obs.ProfNode, left, right <-chan pmsg, out chan<- pmsg) {
	pl.spawn(out, func(out chan<- pmsg) {
		lrel, lerr := pl.collect(left)
		rrel, rerr := pl.collect(right)
		err := lerr
		if err == nil {
			err = rerr
		}
		if err != nil {
			pl.finishStage(frame, out, 0, err)
			return
		}
		rel, err := joinRelations(pl.cat, j, d.BuildLeft, lrel, rrel)
		if err != nil {
			pl.finishStage(frame, out, 0, err)
			return
		}
		pl.streamRel(out, rel)
		pl.finishStage(frame, out, int64(len(rel.Rows)), nil)
	})
}

func (pl *pipeline) fusedJoinStage(j *Join, d decision, frame *obs.ProfNode, out chan<- pmsg) {
	ls := j.Left.(*Scan)
	rs := j.Right.(*Scan)
	pl.spawn(out, func(out chan<- pmsg) {
		cat := pl.stageCat(frame)
		lnat, _ := splitConds(ls.Pushed)
		rnat, _ := splitConds(rs.Pushed)
		spec := sqldb.JoinSpec{
			Left:      sqldb.ScanSpec{Table: ls.Table, Conds: lnat, Cols: ls.Cols},
			Right:     sqldb.ScanSpec{Table: rs.Table, Conds: rnat, Cols: rs.Cols},
			LeftKey:   j.LeftKey,
			RightKey:  j.RightKey,
			BuildLeft: d.BuildLeft,
		}
		names, data, err := cat.DB.JoinColumns(cat.context(), spec)
		if err != nil {
			if errors.Is(err, sqldb.ErrPushdown) {
				pl.runLegacy(j, frame, out)
				return
			}
			pl.finishStage(frame, out, 0, err)
			return
		}
		rows := pl.streamColumns(out, names, data)
		pl.finishStage(frame, out, rows, nil)
	})
}

func (pl *pipeline) aggStage(a *Aggregate, frame *obs.ProfNode, in <-chan pmsg, out chan<- pmsg) {
	pl.spawn(out, func(out chan<- pmsg) {
		var st *aggState
		var rowbuf []nql.Value
		polled := 0
		err := pl.consume(in,
			func(schema []string) error {
				s, err := newAggState(a, schema)
				if err != nil {
					return err
				}
				st = s
				return nil
			},
			func(b *batch) error {
				for r := 0; r < b.n; r++ {
					if err := pl.cat.cancelled(polled); err != nil {
						return err
					}
					polled++
					rowbuf = b.row(r, rowbuf)
					if err := st.add(rowbuf); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			pl.finishStage(frame, out, 0, err)
			return
		}
		rel := st.finish()
		pl.streamRel(out, rel)
		pl.finishStage(frame, out, int64(len(rel.Rows)), nil)
	})
}

func (pl *pipeline) fusedAggStage(a *Aggregate, frame *obs.ProfNode, out chan<- pmsg) {
	s := a.Input.(*Scan)
	pl.spawn(out, func(out chan<- pmsg) {
		cat := pl.stageCat(frame)
		native, _ := splitConds(s.Pushed)
		spec := sqldb.GroupSpec{
			Input:   sqldb.ScanSpec{Table: s.Table, Conds: native, Cols: s.Cols},
			GroupBy: a.GroupBy,
		}
		for _, sp := range a.Aggs {
			spec.Aggs = append(spec.Aggs, sqldb.GroupAgg{Col: sp.Col, Fn: sp.Fn, As: sp.As})
		}
		names, data, err := cat.DB.GroupColumns(cat.context(), spec)
		if err != nil {
			if errors.Is(err, sqldb.ErrPushdown) {
				pl.runLegacy(a, frame, out)
				return
			}
			pl.finishStage(frame, out, 0, err)
			return
		}
		rows := pl.streamColumns(out, names, data)
		pl.finishStage(frame, out, rows, nil)
	})
}

func (pl *pipeline) sortStage(s *Sort, frame *obs.ProfNode, in <-chan pmsg, out chan<- pmsg) {
	pl.spawn(out, func(out chan<- pmsg) {
		var idx []int
		rel := &Relation{}
		err := pl.consume(in,
			func(schema []string) error {
				rel.Cols = schema
				shim := &Relation{Cols: schema}
				idx = make([]int, len(s.Cols))
				for i, c := range s.Cols {
					j, err := shim.colIndex(c)
					if err != nil {
						return err
					}
					idx[i] = j
				}
				return nil
			},
			func(b *batch) error {
				for r := 0; r < b.n; r++ {
					rel.Rows = append(rel.Rows, b.row(r, nil))
				}
				return nil
			})
		if err == nil {
			err = pl.cat.cancelled(0)
		}
		if err != nil {
			pl.finishStage(frame, out, 0, err)
			return
		}
		rows := rel.Rows
		sort.SliceStable(rows, func(a, b int) bool {
			for _, j := range idx {
				cmp := dataframe.CompareValues(rows[a][j], rows[b][j])
				if cmp != 0 {
					if s.Ascending {
						return cmp < 0
					}
					return cmp > 0
				}
			}
			return false
		})
		pl.streamRel(out, rel)
		pl.finishStage(frame, out, int64(len(rel.Rows)), nil)
	})
}

func (pl *pipeline) limitStage(l *Limit, frame *obs.ProfNode, in <-chan pmsg, out chan<- pmsg) {
	pl.spawn(out, func(out chan<- pmsg) {
		n := l.N
		if n < 0 {
			n = 0
		}
		var sent int64
		err := pl.consume(in,
			func(schema []string) error {
				if schema == nil {
					schema = []string{}
				}
				pl.send(out, pmsg{schema: schema})
				return nil
			},
			func(b *batch) error {
				// Past the limit the stage keeps draining (discarding) so an
				// upstream error still surfaces, like the legacy executor,
				// which materializes its input before trimming.
				if sent >= int64(n) {
					return nil
				}
				take := b.n
				if int64(take) > int64(n)-sent {
					take = int(int64(n) - sent)
				}
				nb := b
				if take < b.n {
					nb = &batch{cols: make([][]nql.Value, len(b.cols)), n: take}
					for i := range b.cols {
						nb.cols[i] = b.cols[i][:take]
					}
				}
				sent += int64(take)
				pl.send(out, pmsg{b: nb})
				return nil
			})
		pl.finishStage(frame, out, sent, err)
	})
}

// runLegacy executes a logical subtree via the legacy recursive executor
// inside the current stage (the ErrPushdown fallback: native entry points
// return before emitting anything, so the legacy result — and its exact
// errors — replace the stage's output wholesale).
func (pl *pipeline) runLegacy(n Node, frame *obs.ProfNode, out chan<- pmsg) {
	rel, err := execNode(pl.stageCat(frame), n)
	if err != nil {
		pl.finishStage(frame, out, 0, err)
		return
	}
	pl.streamRel(out, rel)
	pl.finishStage(frame, out, int64(len(rel.Rows)), nil)
}

func (pl *pipeline) legacyStage(n Node, frame *obs.ProfNode, out chan<- pmsg) {
	pl.spawn(out, func(out chan<- pmsg) {
		pl.runLegacy(n, frame, out)
	})
}

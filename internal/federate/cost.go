package federate

import (
	"math"

	"repro/internal/sqldb"
)

// This file is the cost model: it walks an optimized logical plan and
// produces one decision per node (pre-order) — resolved source for
// SourceAny scans, native-pushdown eligibility, join build side, and
// scan+join / scan+aggregate fusion into the SQL substrate — plus row and
// cost estimates for explain output. Decisions are pure data, independent
// of any closure in the plan, which is what makes them cacheable across
// sessions (see prepare.go).

// SourceAny lets a scan defer its substrate: the planner resolves it to
// the cheapest source exposing the table (preferring sql, then frame,
// then graph on ties).
const SourceAny = "any"

// decision is the planner's verdict for one plan node, aligned with the
// optimized plan by pre-order position.
type decision struct {
	Kind      byte    // node kind tag, validated when replaying from cache
	Source    string  // scans: resolved source (copied from the node unless SourceAny)
	Native    bool    // scans: serve via sqldb's columnar pushdown entry points
	BuildLeft bool    // joins: hash the smaller (left) input
	Fuse      byte    // fuseNone, fuseSQLJoin or fuseSQLAgg
	EstRows   float64 // estimated output rows
	EstCost   float64 // estimated cumulative cost (arbitrary units)
}

const (
	fuseNone    = byte(0)
	fuseSQLJoin = byte(1) // join of two native SQL scans runs as one sqldb hash join
	fuseSQLAgg  = byte(2) // aggregate over a native SQL scan runs as one sqldb group-by
)

// Node kind tags for decision validation.
const (
	kindScan  = byte('s')
	kindFilt  = byte('f')
	kindProj  = byte('p')
	kindJoin  = byte('j')
	kindAgg   = byte('a')
	kindSort  = byte('o')
	kindLimit = byte('l')
	kindOther = byte('?')
)

func nodeKind(n Node) byte {
	switch n.(type) {
	case *Scan:
		return kindScan
	case *Filter:
		return kindFilt
	case *Project:
		return kindProj
	case *Join:
		return kindJoin
	case *Aggregate:
		return kindAgg
	case *Sort:
		return kindSort
	case *Limit:
		return kindLimit
	default:
		return kindOther
	}
}

// liftCost is the per-row cost of lifting substrate rows into the
// relation's value domain; the native columnar path skips the lift until
// the batch boundary and row-major scope evaluation entirely.
const (
	liftCostText   = 4.0  // SQL text path: parse + scopes + result frame + lift
	liftCostNative = 0.5  // sqldb columnar pushdown
	liftCostFrame  = 1.0  // direct frame lift
	liftCostGraph  = 1.5  // graph attr lift
	computeCost    = 25.0 // per-row surcharge for whole-graph virtual tables
)

// annotate computes the decision list for an optimized plan. It never
// fails: unknown tables or sources get pessimistic defaults and execution
// surfaces the real error.
func annotate(cat *Catalog, plan Node) []decision {
	cs := statsFor(cat)
	var decs []decision
	costNode(cat, cs, plan, &decs)
	return decs
}

// nodeEst carries the per-subtree estimates the parent needs: output
// rows, and the bottoming scan's statistics while the subtree is a
// scan/filter/project chain (for join-key distinct estimates).
type nodeEst struct {
	rows float64
	cost float64
	scan *TableStats
}

func costNode(cat *Catalog, cs *catalogStats, n Node, decs *[]decision) nodeEst {
	idx := len(*decs)
	*decs = append(*decs, decision{Kind: nodeKind(n)})
	var est nodeEst
	switch x := n.(type) {
	case *Scan:
		est = costScan(cat, cs, x, &(*decs)[idx])
	case *Filter:
		in := costNode(cat, cs, x.Input, decs)
		est = nodeEst{rows: in.rows * predSelectivity(x.Pred, in), cost: in.cost + in.rows, scan: in.scan}
	case *Project:
		in := costNode(cat, cs, x.Input, decs)
		est = nodeEst{rows: in.rows, cost: in.cost + in.rows, scan: in.scan}
	case *Join:
		l := costNode(cat, cs, x.Left, decs)
		r := costNode(cat, cs, x.Right, decs)
		d := &(*decs)[idx]
		d.BuildLeft = l.rows < r.rows
		if fuseableJoin(cat, x, (*decs)[idx+1:]) {
			d.Fuse = fuseSQLJoin
		}
		dl := keyDistinct(l, x.LeftKey)
		dr := keyDistinct(r, x.RightKey)
		dmax := math.Max(math.Max(dl, dr), 1)
		est = nodeEst{rows: l.rows * r.rows / dmax, cost: l.cost + r.cost + l.rows + r.rows}
	case *Aggregate:
		in := costNode(cat, cs, x.Input, decs)
		d := &(*decs)[idx]
		if fuseableAgg(cat, x, (*decs)[idx+1:]) {
			d.Fuse = fuseSQLAgg
		}
		rows := 1.0
		if len(x.GroupBy) > 0 {
			rows = 1
			for _, c := range x.GroupBy {
				rows *= keyDistinct(in, c)
			}
			rows = math.Min(rows, in.rows)
		}
		est = nodeEst{rows: rows, cost: in.cost + in.rows}
	case *Sort:
		in := costNode(cat, cs, x.Input, decs)
		nlogn := in.rows * math.Log2(math.Max(in.rows, 2))
		est = nodeEst{rows: in.rows, cost: in.cost + nlogn}
	case *Limit:
		in := costNode(cat, cs, x.Input, decs)
		est = nodeEst{rows: math.Min(in.rows, math.Max(float64(x.N), 0)), cost: in.cost + in.rows}
	default:
		est = nodeEst{rows: 1, cost: 1}
	}
	d := &(*decs)[idx]
	d.EstRows = est.rows
	d.EstCost = est.cost
	return est
}

// costScan resolves the scan's source (for SourceAny), decides native
// pushdown, and estimates output rows after the pushed predicates.
func costScan(cat *Catalog, cs *catalogStats, s *Scan, d *decision) nodeEst {
	source := s.Source
	if source == SourceAny {
		source = resolveSource(cat, cs, s)
	}
	d.Source = source
	st := cs.table(cat, source, s.Table)
	rows := 1000.0 // unknown table: pessimistic default, error surfaces at run time
	if st != nil {
		rows = float64(st.Rows)
	}
	sel := 1.0
	for _, c := range s.Pushed {
		sel *= cmpSelectivity(c, st)
	}
	lift := liftCostFrame
	switch source {
	case SourceSQL:
		if nativeScanOK(cat, s) {
			d.Native = true
			lift = liftCostNative
		} else {
			lift = liftCostText
		}
	case SourceGraph:
		lift = liftCostGraph
		if st != nil && st.Compute {
			lift += computeCost
		}
	}
	return nodeEst{rows: rows * sel, cost: rows * lift, scan: st}
}

// resolveSource picks the cheapest substrate exposing the table for a
// SourceAny scan; ties and the no-candidate case prefer sql, then frame,
// then graph.
func resolveSource(cat *Catalog, cs *catalogStats, s *Scan) string {
	best, bestCost := "", math.Inf(1)
	for _, source := range []string{SourceSQL, SourceFrame, SourceGraph} {
		st := cs.table(cat, source, s.Table)
		if st == nil {
			continue
		}
		lift := liftCostFrame
		switch source {
		case SourceSQL:
			lift = liftCostText
			if nativeScanOK(cat, &Scan{Source: SourceSQL, Table: s.Table, Pushed: s.Pushed, Cols: s.Cols}) {
				lift = liftCostNative
			}
		case SourceGraph:
			lift = liftCostGraph
			if st.Compute {
				lift += computeCost
			}
		}
		if c := float64(st.Rows) * lift; c < bestCost {
			best, bestCost = source, c
		}
	}
	if best != "" {
		return best
	}
	// No substrate has the table: resolve to the most natural present
	// source so execution reports its unknown-table error.
	switch {
	case cat.DB != nil:
		return SourceSQL
	case len(cat.Frames) > 0:
		return SourceFrame
	default:
		return SourceGraph
	}
}

// keyDistinct estimates the distinct count of a key column at a node,
// scaled down when filters shrank the scan (capped at the row estimate).
func keyDistinct(e nodeEst, col string) float64 {
	d := math.Sqrt(math.Max(e.rows, 1))
	if e.scan != nil {
		d = float64(e.scan.distinctOf(col))
	}
	return math.Max(math.Min(d, math.Max(e.rows, 1)), 1)
}

func predSelectivity(p Pred, in nodeEst) float64 {
	switch x := p.(type) {
	case Cmp:
		return cmpSelectivity(x, in.scan)
	case And:
		sel := 1.0
		for _, sub := range x.Preds {
			sel *= predSelectivity(sub, in)
		}
		return sel
	default: // FuncPred and future kinds
		return 1.0 / 3
	}
}

func cmpSelectivity(c Cmp, st *TableStats) float64 {
	switch c.Op {
	case "==":
		d := 1.0
		if st != nil {
			d = float64(st.distinctOf(c.Col))
		}
		return 1 / math.Max(d, 1)
	case "!=":
		d := 1.0
		if st != nil {
			d = float64(st.distinctOf(c.Col))
		}
		return 1 - 1/math.Max(d, 1)
	case "<", "<=", ">", ">=":
		return 1.0 / 3
	case "prefix", "contains":
		return 1.0 / 4
	default:
		return 1.0 / 3
	}
}

// --- native pushdown gates ---------------------------------------------

// identOK reports whether a name lexes as a plain SQL identifier and is
// not a reserved word — required for any name the text path would embed
// in generated SQL, so the native path never succeeds where the text path
// would raise a parse error.
func identOK(name string) bool {
	if name == "" || sqldb.IsKeyword(name) {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// nativeScanOK gates the sqldb columnar pushdown for one SQL scan. The
// native path must be observationally identical to the text path, so any
// shape whose generated SQL would not parse — or whose narrowed SELECT
// has duplicate columns — stays on text.
func nativeScanOK(cat *Catalog, s *Scan) bool {
	if cat.DB == nil || !identOK(s.Table) {
		return false
	}
	allPushed := true
	for _, c := range s.Pushed {
		if _, ok := sqlCompile(c); !ok {
			allPushed = false
			continue
		}
		// This predicate lands in the WHERE text on the text path.
		if !identOK(c.Col) {
			return false
		}
	}
	if s.Cols != nil && allPushed {
		// The text path would narrow the SELECT list.
		seen := map[string]bool{}
		for _, c := range s.Cols {
			if !identOK(c) || seen[c] {
				return false
			}
			seen[c] = true
		}
	}
	return true
}

// splitConds partitions a native scan's pushed predicates into the
// sqldb-native conditions and the residual local predicates (evaluated on
// lifted batches, exactly like the text path's local remainder).
func splitConds(pushed []Cmp) (native []sqldb.Cond, local []Cmp) {
	for _, c := range pushed {
		if _, ok := sqlCompile(c); !ok {
			local = append(local, c)
			continue
		}
		op := c.Op
		if op == "==" {
			op = "="
		}
		native = append(native, sqldb.Cond{Col: c.Col, Op: op, Value: c.Value})
	}
	return native, local
}

// fuseableJoin reports whether a join of two native SQL scans can run as
// one sqldb hash join: both children native with fully-pushed conditions
// (a local residual would evaluate on lifted rows mid-scan).
func fuseableJoin(cat *Catalog, j *Join, childDecs []decision) bool {
	l, lok := j.Left.(*Scan)
	r, rok := j.Right.(*Scan)
	if !lok || !rok || len(childDecs) < 2 {
		return false
	}
	if !childDecs[0].Native || !childDecs[1].Native {
		return false
	}
	return fullyPushed(l) && fullyPushed(r)
}

// fuseableAgg reports whether an aggregate over a native SQL scan can run
// as one sqldb group-by. Invalid aggregate functions stay unfused so the
// aggregate stage raises the canonical error.
func fuseableAgg(cat *Catalog, a *Aggregate, childDecs []decision) bool {
	s, ok := a.Input.(*Scan)
	if !ok || len(childDecs) < 1 || !childDecs[0].Native || !fullyPushed(s) {
		return false
	}
	for _, sp := range a.Aggs {
		if !validAggFn(sp.Fn) {
			return false
		}
	}
	return true
}

func fullyPushed(s *Scan) bool {
	for _, c := range s.Pushed {
		if _, ok := sqlCompile(c); !ok {
			return false
		}
	}
	return true
}

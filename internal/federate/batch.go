package federate

import "repro/internal/nql"

// batchRows is the pipeline's column-chunk size: large enough to amortize
// channel sends and per-batch bookkeeping, small enough that a handful of
// in-flight batches per stage keeps memory bounded.
const batchRows = 1024

// batch is one column-major chunk of rows flowing between pipeline stages:
// len(cols) value slices of n cells each. Batches are immutable once sent —
// a stage that reshapes data builds new column slices (projection and limit
// may alias received columns, which is why nobody writes into one).
type batch struct {
	cols [][]nql.Value
	n    int
}

// newBatch allocates a batch of width columns with room for capHint rows.
// Writers start small and only reserve full batchRows capacity after a
// batch actually fills — small results (the common case for analytic
// queries over modest datasets) then never pay for 1024-row columns.
func newBatch(width, capHint int) *batch {
	b := &batch{cols: make([][]nql.Value, width)}
	for i := range b.cols {
		b.cols[i] = make([]nql.Value, 0, capHint)
	}
	return b
}

// row gathers one row of the batch into dst (grown as needed); pass nil to
// allocate a fresh row.
func (b *batch) row(r int, dst []nql.Value) []nql.Value {
	dst = dst[:0]
	for _, c := range b.cols {
		dst = append(dst, c[r])
	}
	return dst
}

// liftColumns lifts a native columnar scan result into a relation
// (row-major, for stages that still need the legacy row pipeline).
func liftColumns(names []string, data [][]any) *Relation {
	rel := &Relation{Cols: names}
	n := 0
	if len(data) > 0 {
		n = len(data[0])
	}
	rows := make([][]nql.Value, n)
	for r := 0; r < n; r++ {
		row := make([]nql.Value, len(names))
		for i := range names {
			row[i] = liftValue(data[i][r])
		}
		rows[r] = row
	}
	rel.Rows = rows
	return rel
}

// batchWriter accumulates rows into batches and sends them downstream,
// flushing at batchRows. Once the pipeline is tearing down (a send fails)
// it keeps counting rows for the profile but stops building batches.
type batchWriter struct {
	pl    *pipeline
	out   chan<- pmsg
	width int
	b     *batch
	rows  int64
	dead  bool
	full  bool // a previous batch filled: allocate full capacity up front
}

// start sends the schema message opening the stage's output stream.
func (w *batchWriter) start(schema []string) {
	if schema == nil {
		schema = []string{}
	}
	w.width = len(schema)
	if !w.pl.send(w.out, pmsg{schema: schema}) {
		w.dead = true
	}
}

func (w *batchWriter) add(row []nql.Value) {
	w.rows++
	if w.dead {
		return
	}
	if w.b == nil {
		hint := 16
		if w.full {
			hint = batchRows
		}
		w.b = newBatch(w.width, hint)
	}
	for i, v := range row {
		w.b.cols[i] = append(w.b.cols[i], v)
	}
	w.b.n++
	if w.b.n >= batchRows {
		w.full = true
		w.flush()
	}
}

func (w *batchWriter) flush() {
	if w.b != nil && w.b.n > 0 && !w.dead {
		if !w.pl.send(w.out, pmsg{b: w.b}) {
			w.dead = true
		}
	}
	w.b = nil
}

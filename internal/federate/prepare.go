package federate

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the prepare/execute seam: Prepare optimizes a logical plan,
// attaches the cost model's per-node decisions (from the shared plan cache
// when the catalog carries an epoch), and classifies the plan for the
// pipelined executor. Decisions are positional pure data — no closures, no
// substrate handles — which is what makes one cache entry reusable across
// every session sharing a dataset generation, the same way the sandbox
// shares compiled bytecode across runs of one source text.

// Execution modes for a prepared plan.
const (
	modePipeline = byte(0) // staged columnar pipeline (pipeline.go)
	modeLegacy   = byte(1) // row-at-a-time recursive executor (exec.go)
)

// Prepared is an optimized plan bound to planner decisions, ready to
// execute any number of times. It still carries the caller's closures
// (FuncPred), so a Prepared belongs to the plan it was built from; only
// the decision list is shared through the cache.
type Prepared struct {
	plan Node
	decs []decision
	mode byte

	// opt is the optimized, pre-decision plan — the identity the shared
	// plan cache keys on. fphash is the hex FNV-64a of Explain(opt),
	// computed lazily: only requests that carry PlanNotes (or explicitly
	// ask) pay for the rendering.
	opt    Node
	fpOnce sync.Once
	fphash string
}

// Fingerprint returns the stable hex hash of the plan's cache identity
// (the optimized plan's canonical Explain rendering). Two programs whose
// plans share planner decisions share a fingerprint; /flightz records
// carry it so a slow request points at the exact plan shape it executed.
func (p *Prepared) Fingerprint() string {
	p.fpOnce.Do(func() {
		n := p.opt
		if n == nil {
			n = p.plan
		}
		p.fphash = fingerprintHash(Explain(n))
	})
	return p.fphash
}

// Prepare optimizes the plan and computes (or recalls) the planner
// decisions for it against the catalog. Catalogs with a zero Epoch skip
// the cache entirely; any mismatch between a cached decision list and the
// plan shape falls back to a fresh computation, so a fingerprint collision
// costs only plan-time work.
func Prepare(cat *Catalog, plan Node) *Prepared {
	opt := Optimize(plan)
	var decs []decision
	if cat.Epoch != 0 {
		fp := Explain(opt)
		if d, ok := DefaultCache.lookup(fp, cat.Epoch); ok {
			decs = d
		} else {
			decs = annotate(cat, opt)
			DefaultCache.store(fp, cat.Epoch, decs)
		}
	} else {
		decs = annotate(cat, opt)
	}
	resolved, ok := applyDecisions(opt, decs)
	if !ok {
		decs = annotate(cat, opt)
		resolved, _ = applyDecisions(opt, decs)
	}
	mode := classify(resolved)
	if mode == modePipeline && !worthPipelining(decs) {
		mode = modeLegacy
	}
	return &Prepared{plan: resolved, decs: decs, mode: mode, opt: opt}
}

// worthPipelining is the cost model's executor-mode rule: stage goroutines,
// channels and batch buffers only pay for themselves once some operator is
// expected to see at least one full batch of rows. Below that, every batch
// in the plan is partial and the row interpreter wins on constant factors,
// so tiny plans keep the legacy path. Two exceptions err toward the
// pipeline: a single node estimated at or above batchRows enables it, and
// so does any fusion decision — a fused subtree collapses into one
// substrate call only the pipelined executor can issue, which beats the
// interpreter at any volume (a native-scan decision alone does not
// qualify: at sub-batch volume the text path with its pushed-down WHERE
// costs about the same).
func worthPipelining(decs []decision) bool {
	for _, d := range decs {
		if d.EstRows >= batchRows || d.Fuse != fuseNone {
			return true
		}
	}
	return false
}

// Explain renders the prepared plan with the cost model's annotations:
// estimated rows and cumulative cost per operator, native-pushdown and
// fusion marks on scans/joins/aggregates, and the join build side.
func (p *Prepared) Explain() string {
	var sb strings.Builder
	pos := 0
	explainCostInto(&sb, p.plan, 0, p.decs, &pos)
	return sb.String()
}

func explainCostInto(sb *strings.Builder, n Node, depth int, decs []decision, pos *int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(n.label())
	if *pos < len(decs) {
		d := decs[*pos]
		fmt.Fprintf(sb, "  -- rows~%.0f cost~%.0f", d.EstRows, d.EstCost)
		if d.Native {
			sb.WriteString(" native")
		}
		switch d.Fuse {
		case fuseSQLJoin:
			sb.WriteString(" fused=sql-join")
		case fuseSQLAgg:
			sb.WriteString(" fused=sql-agg")
		}
		if _, isJoin := n.(*Join); isJoin {
			if d.BuildLeft {
				sb.WriteString(" build=left")
			} else {
				sb.WriteString(" build=right")
			}
		}
	}
	*pos++
	sb.WriteString("\n")
	for _, c := range n.children() {
		explainCostInto(sb, c, depth+1, decs, pos)
	}
}

// applyDecisions validates a decision list against the plan (kind tags in
// pre-order) and resolves SourceAny scans to their decided source,
// rebuilding only the spine above a rewritten scan. ok is false when the
// list does not align with the plan — a stale or colliding cache entry.
func applyDecisions(plan Node, decs []decision) (Node, bool) {
	pos := 0
	out, ok := applyNode(plan, decs, &pos)
	if !ok || pos != len(decs) {
		return plan, false
	}
	return out, true
}

func applyNode(n Node, decs []decision, pos *int) (Node, bool) {
	if *pos >= len(decs) || decs[*pos].Kind != nodeKind(n) {
		return n, false
	}
	idx := *pos
	*pos++
	switch x := n.(type) {
	case *Scan:
		if x.Source != SourceAny {
			return x, true
		}
		if decs[idx].Source == "" {
			return x, false
		}
		resolved := *x
		resolved.Source = decs[idx].Source
		return &resolved, true
	case *Filter:
		in, ok := applyNode(x.Input, decs, pos)
		if !ok {
			return n, false
		}
		if in == x.Input {
			return x, true
		}
		return &Filter{Input: in, Pred: x.Pred}, true
	case *Project:
		in, ok := applyNode(x.Input, decs, pos)
		if !ok {
			return n, false
		}
		if in == x.Input {
			return x, true
		}
		return &Project{Input: in, Cols: x.Cols}, true
	case *Join:
		l, ok := applyNode(x.Left, decs, pos)
		if !ok {
			return n, false
		}
		r, ok := applyNode(x.Right, decs, pos)
		if !ok {
			return n, false
		}
		if l == x.Left && r == x.Right {
			return x, true
		}
		return &Join{Left: l, Right: r, LeftKey: x.LeftKey, RightKey: x.RightKey}, true
	case *Aggregate:
		in, ok := applyNode(x.Input, decs, pos)
		if !ok {
			return n, false
		}
		if in == x.Input {
			return x, true
		}
		return &Aggregate{Input: in, GroupBy: x.GroupBy, Aggs: x.Aggs}, true
	case *Sort:
		in, ok := applyNode(x.Input, decs, pos)
		if !ok {
			return n, false
		}
		if in == x.Input {
			return x, true
		}
		return &Sort{Input: in, Cols: x.Cols, Ascending: x.Ascending}, true
	case *Limit:
		in, ok := applyNode(x.Input, decs, pos)
		if !ok {
			return n, false
		}
		if in == x.Input {
			return x, true
		}
		return &Limit{Input: in, N: x.N}, true
	default:
		return n, false
	}
}

// --- pipeline-safety classification -------------------------------------

// classify decides whether the pipelined executor can run the plan with
// observable behavior identical to the legacy recursive executor. The one
// divergence risk is an opaque FuncPred: the legacy executor never calls
// it when an input stage fails, while a pipelined filter sees input
// batches before upstream completion. The pipeline is therefore safe when
// no FuncPred exists; a single FuncPred is still safe when no join is
// present and every streaming operator strictly below it (project, limit)
// cannot fail mid-stream — the first materializing operator below (scan,
// aggregate, sort) absorbs upstream errors before emitting any batch.
//
// Predicates the semantic analyzer proved pure and row-total
// (FuncPred.NoErr) carry no divergence risk at all — extra, fewer, or
// reordered calls are unobservable — so they are invisible here: only
// fallible FuncPreds count. This is what keeps join plans with vetted
// NQL filter lambdas on the pipelined executor.
func classify(plan Node) byte {
	if !kindsKnown(plan) {
		return modeLegacy
	}
	switch countFuncPreds(plan) {
	case 0:
		return modePipeline
	case 1:
		if hasJoin(plan) {
			return modeLegacy
		}
		cur := plan
		for cur != nil {
			if f, ok := cur.(*Filter); ok && predFuncCount(f.Pred) > 0 {
				return classifyBelow(f.Input)
			}
			ch := cur.children()
			if len(ch) != 1 {
				return modeLegacy
			}
			cur = ch[0]
		}
		return modeLegacy
	default:
		return modeLegacy
	}
}

func classifyBelow(n Node) byte {
	for {
		switch x := n.(type) {
		case *Scan, *Aggregate, *Sort:
			return modePipeline
		case *Project:
			n = x.Input
		case *Limit:
			n = x.Input
		default:
			return modeLegacy
		}
	}
}

func kindsKnown(n Node) bool {
	if nodeKind(n) == kindOther {
		return false
	}
	for _, c := range n.children() {
		if !kindsKnown(c) {
			return false
		}
	}
	return true
}

func countFuncPreds(n Node) int {
	c := 0
	if f, ok := n.(*Filter); ok {
		c += predFuncCount(f.Pred)
	}
	for _, ch := range n.children() {
		c += countFuncPreds(ch)
	}
	return c
}

// predFuncCount counts the fallible opaque predicates in p; NoErr
// predicates are classification-invisible (see classify).
func predFuncCount(p Pred) int {
	switch x := p.(type) {
	case FuncPred:
		if x.NoErr {
			return 0
		}
		return 1
	case And:
		n := 0
		for _, sub := range x.Preds {
			n += predFuncCount(sub)
		}
		return n
	default:
		return 0
	}
}

func hasJoin(n Node) bool {
	if _, ok := n.(*Join); ok {
		return true
	}
	for _, c := range n.children() {
		if hasJoin(c) {
			return true
		}
	}
	return false
}

// --- shared plan cache ---------------------------------------------------

// planCacheMax bounds the cache; eviction is FIFO (the sandbox bytecode
// cache idiom — epochs retire whole generations anyway, so recency
// tracking buys little).
const planCacheMax = 4096

type planKey struct {
	fp    string
	epoch uint64
}

// PlanCache memoizes planner decision lists keyed by (plan fingerprint,
// catalog epoch). The fingerprint is the optimized plan's canonical
// Explain rendering: two plans with the same rendering get the same
// decisions by construction (decisions depend only on plan shape, names,
// operators and literal values — never on closures, which render as the
// opaque "fn(row)").
// Lookups take only a read lock plus atomic counter bumps: every prepare
// of every concurrent session funnels through here, so an exclusive lock
// on the hit path would serialize the whole query tier's planning.
type PlanCache struct {
	mu      sync.RWMutex
	entries map[planKey][]decision
	order   []planKey
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: map[planKey][]decision{}}
}

// DefaultCache is the process-wide plan cache shared by every catalog
// with a non-zero epoch (all netqueryd sessions of one process land
// here).
var DefaultCache = NewPlanCache()

func (c *PlanCache) lookup(fp string, epoch uint64) ([]decision, bool) {
	k := planKey{fp: fp, epoch: epoch}
	c.mu.RLock()
	d, ok := c.entries[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return d, ok
}

func (c *PlanCache) store(fp string, epoch uint64, decs []decision) {
	k := planKey{fp: fp, epoch: epoch}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return
	}
	if len(c.order) >= planCacheMax {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[k] = decs
	c.order = append(c.order, k)
}

// Stats reports cumulative lookup hits and misses and the current entry
// count (for the service metrics endpoint).
func (c *PlanCache) Stats() (hits, misses uint64, entries int) {
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	return c.hits.Load(), c.misses.Load(), n
}

// Package federate implements a federated query planner and executor over
// the three execution substrates the framework exposes to generated code:
// the attributed graph (internal/graph), the columnar dataframes
// (internal/dataframe) and the SQL database (internal/sqldb).
//
// A single logical plan — scan, filter, project, join, aggregate, sort,
// limit — is planned across heterogeneous sources: every scan names a
// (source, table) pair, the optimizer pushes filters and projections down
// into the scans (compiling them to native WHERE clauses for the SQL
// substrate, running them during row lift for the graph and frame
// substrates), and the executor evaluates the remaining stages over a
// uniform relation of nql.Value rows. Graph scans can also push whole
// computations down — degree, PageRank, connected components — so a plan
// can join, say, a SQL probe table against graph centrality, which none of
// the single-substrate backends can express.
//
// # Prepare and execute
//
// Run/RunContext split a query into a prepare step and an execute step.
// Prepare optimizes the plan (filter and projection pushdown, conjunction
// folding), collects table statistics from the catalog, and derives a
// per-node decision list from a simple cost model: which source serves a
// SourceAny scan, whether a SQL scan takes the native columnar path or the
// text path, which side of a hash join builds the table (the smaller
// estimated input), and whether a join or aggregate over native SQL scans
// fuses into a single sqldb pushdown call. Execution then runs the decided
// plan either on the legacy row-at-a-time interpreter (Exec) or, for plans
// without blocking Go predicates in awkward positions, on the pipelined
// executor: each operator stage is a goroutine streaming columnar batches
// (up to batchRows rows, one []nql.Value per column) over bounded channels,
// so scan, filter, join and aggregation overlap instead of materializing
// between stages. Both executors honor context cancellation at row-loop
// checkpoints and emit identical obs.Profile operator frames, and the
// pipeline is differentially tested against the legacy interpreter for
// byte-identical results, schemas and error text.
//
// # Statistics and the plan cache
//
// Statistics (row counts, sampled per-column distinct counts, graph degree
// histograms) are collected per catalog epoch and cached, and prepared
// decision lists are cached process-wide in DefaultCache keyed by the
// optimized plan's Explain fingerprint plus the catalog epoch. Catalogs
// sharing an epoch — clones of one frozen dataset master — therefore pay
// the planning cost once; a zero epoch opts a catalog out of both caches.
// Cached decisions are re-validated against the live plan shape when
// applied, so a stale or poisoned entry degrades to a fresh cost pass, and
// closures in the plan (FuncPred, custom aggregates) are rebound on every
// execution, never captured by the cache. Explain on a prepared plan
// annotates each node with the cost model's view: "rows~N cost~C", a
// "native" marker on pushdown scans, "build=left|right" on joins, and
// "fused=sql-join|sql-agg" where a subtree collapsed into one SQL call.
//
// The planner is read-only by construction: scans lift rows out of the
// substrates and never write back, so running a federated plan against the
// cloned state of a sandbox run is exactly as safe as the per-substrate
// bindings (the frozen-master/clone protocol of the evaluation pipeline
// carries over unchanged, including under the parallel runner's worker
// pool).
package federate

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dataframe"
	"repro/internal/graph"
	"repro/internal/nql"
	"repro/internal/obs"
	"repro/internal/sqldb"
)

// Source names for Scan nodes.
const (
	SourceGraph = "graph"
	SourceFrame = "frame"
	SourceSQL   = "sql"
)

// Graph-source virtual tables. "nodes" and "edges" lift the attributed
// graph into relational form; the rest push a whole graph computation down
// into the graph substrate and lift its result as rows.
const (
	GraphTableNodes      = "nodes"
	GraphTableEdges      = "edges"
	GraphTableDegree     = "degree"
	GraphTablePageRank   = "pagerank"
	GraphTableComponents = "components"
)

// Catalog is the set of substrates a federated plan can scan: one
// application instance's graph, frames and database. Any member may be nil;
// scans against a missing source fail with a descriptive error.
type Catalog struct {
	Graph  *graph.Graph
	Frames map[string]*dataframe.Frame
	DB     *sqldb.DB

	// Epoch tags the catalog's dataset generation for the plan cache and
	// the statistics cache: catalogs sharing an epoch (clones of one
	// frozen master) share prepared-plan decisions and table statistics.
	// Allocate epochs with NewEpoch; zero (the default) disables caching
	// for this catalog. Epoch staleness is a plan-quality concern only —
	// every cached decision is re-validated against live state at
	// execution time, falling back to the generic path on any mismatch.
	Epoch uint64

	// ctx is the execution context installed by RunContext/ExecContext on
	// a per-run shallow copy of the catalog (the caller's catalog is never
	// mutated). Operator row loops poll it at cancelCheckEvery-row
	// checkpoints so a cancelled request abandons a large join or
	// aggregation promptly.
	ctx context.Context

	// prof is the per-operator execution profile, installed alongside ctx
	// by ExecContext when the context carries an obs.Profile. Nil (the
	// default) keeps execution on the unprofiled fast path.
	prof *obs.Profile
}

// cancelCheckEvery is the operator row-loop checkpoint stride: contexts
// are polled once per this many rows, keeping the poll off the per-row
// fast path while bounding cancellation latency to one stride.
const cancelCheckEvery = 1024

// cancelled reports the context error, if any, at checkpoint i (only
// multiples of cancelCheckEvery are polled; pass i = 0 to force a poll).
func (c *Catalog) cancelled(i int) error {
	if c.ctx == nil || i%cancelCheckEvery != 0 {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("federate: %w", err)
	}
	return nil
}

// context returns the run's execution context (never nil), for delegating
// to context-aware substrates like the SQL engine.
func (c *Catalog) context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// Sources lists the sources present in the catalog, in canonical order.
func (c *Catalog) Sources() []string {
	var out []string
	if c.Graph != nil {
		out = append(out, SourceGraph)
	}
	if len(c.Frames) > 0 {
		out = append(out, SourceFrame)
	}
	if c.DB != nil {
		out = append(out, SourceSQL)
	}
	return out
}

// Tables lists the tables scannable from one source (sorted for the frame
// source, creation order for SQL, fixed order for the graph).
func (c *Catalog) Tables(source string) ([]string, error) {
	switch source {
	case SourceGraph:
		if c.Graph == nil {
			return nil, fmt.Errorf("federate: catalog has no graph source")
		}
		return []string{GraphTableNodes, GraphTableEdges, GraphTableDegree, GraphTablePageRank, GraphTableComponents}, nil
	case SourceFrame:
		if len(c.Frames) == 0 {
			return nil, fmt.Errorf("federate: catalog has no frame source")
		}
		names := make([]string, 0, len(c.Frames))
		for name := range c.Frames {
			names = append(names, name)
		}
		sort.Strings(names)
		return names, nil
	case SourceSQL:
		if c.DB == nil {
			return nil, fmt.Errorf("federate: catalog has no sql source")
		}
		return c.DB.TableNames(), nil
	default:
		return nil, fmt.Errorf("federate: unknown source %q (have graph, frame, sql)", source)
	}
}

// Relation is the uniform tabular result flowing between plan stages: named
// columns over rows of nql values (nil, bool, int64, float64, string; graph
// attributes that are lists or maps lift to *nql.List / *nql.Map).
type Relation struct {
	Cols []string
	Rows [][]nql.Value
}

// colIndex resolves a column name; the error names the available columns so
// generated-plan failures are self-explanatory.
func (r *Relation) colIndex(name string) (int, error) {
	for i, c := range r.Cols {
		if c == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("federate: column %q does not exist (have %v)", name, r.Cols)
}

// NumRows returns the row count.
func (r *Relation) NumRows() int { return len(r.Rows) }

// Value lifts the relation into the NQL result domain: a list of
// insertion-ordered maps, one per row, keyed by column name.
func (r *Relation) Value() nql.Value {
	items := make([]nql.Value, len(r.Rows))
	for i, row := range r.Rows {
		m := nql.NewMap()
		for j, c := range r.Cols {
			_ = m.Set(c, row[j])
		}
		items[i] = m
	}
	return nql.NewList(items...)
}

// Frame materializes the relation as a dataframe (for interop with the
// pandas-style bindings).
func (r *Relation) Frame() *dataframe.Frame {
	f := dataframe.New(r.Cols...)
	for _, row := range r.Rows {
		vals := make([]any, len(row))
		for i, v := range row {
			vals[i] = toCell(v)
		}
		f.AppendRow(vals...)
	}
	return f
}

// toCell converts an nql value into the dataframe cell domain.
func toCell(v nql.Value) any {
	switch x := v.(type) {
	case nil, bool, int64, float64, string:
		return x
	default:
		return nql.Repr(v)
	}
}

// liftValue converts a substrate attribute value into the relation's value
// domain (deterministic: map keys sort ascending).
func liftValue(v any) nql.Value {
	switch x := v.(type) {
	case nil, bool, int64, float64, string:
		return x
	case []any:
		items := make([]nql.Value, len(x))
		for i, it := range x {
			items[i] = liftValue(it)
		}
		return nql.NewList(items...)
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		m := nql.NewMap()
		for _, k := range keys {
			_ = m.Set(k, liftValue(x[k]))
		}
		return m
	case graph.Attrs:
		return liftValue(map[string]any(x))
	default:
		return graph.Normalize(v)
	}
}

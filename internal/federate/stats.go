package federate

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dataframe"
)

// This file collects the substrate statistics feeding the cost-based
// planner: table cardinalities (O(1) for every substrate), per-column
// distinct-value estimates from a bounded deterministic sample, and the
// graph's degree histogram. Statistics are advisory — they steer join
// order, build side, substrate choice and pushdown, never correctness —
// so a stale estimate (the catalog mutated after collection) costs at
// most plan quality.
//
// Collection is lazy (a table is only profiled when a plan references it)
// and cached per catalog epoch, so every session sharing a frozen dataset
// generation pays the sampling cost once per process.

// statsSampleMax bounds the cells sampled per column for the distinct
// estimate. Sampling is strided from row 0, so it is deterministic.
const statsSampleMax = 256

// TableStats describes one scannable table.
type TableStats struct {
	Rows int
	// Distinct estimates per column name (scaled up from the sample;
	// missing columns fall back to a default selectivity).
	Distinct map[string]int
	// DegreeHist is the graph degree histogram (degree → node count),
	// populated only for the graph "degree" virtual table.
	DegreeHist map[int]int
	// Compute marks virtual tables that run a whole-substrate algorithm
	// (PageRank, connected components) before the first row lifts.
	Compute bool
}

// distinctOf returns the distinct estimate for a column, defaulting to a
// square-root heuristic when the column was not sampled.
func (t *TableStats) distinctOf(col string) int {
	if t == nil {
		return 1
	}
	if d, ok := t.Distinct[col]; ok && d > 0 {
		return d
	}
	d := int(math.Sqrt(float64(t.Rows)))
	if d < 1 {
		d = 1
	}
	return d
}

// catalogStats caches per-table statistics for one catalog generation.
type catalogStats struct {
	mu     sync.Mutex
	tables map[string]*TableStats // "source\x00table"
}

func (s *catalogStats) table(cat *Catalog, source, table string) *TableStats {
	key := source + "\x00" + table
	s.mu.Lock()
	st, ok := s.tables[key]
	s.mu.Unlock()
	if ok {
		return st
	}
	st = collectTableStats(cat, source, table)
	s.mu.Lock()
	if prev, ok := s.tables[key]; ok {
		st = prev
	} else {
		s.tables[key] = st
	}
	s.mu.Unlock()
	return st
}

// epochStats is the process-wide stats cache, keyed by catalog epoch.
// Epoch 0 (an untagged catalog) is never cached: fresh stats per prepare.
var epochStats = struct {
	mu    sync.Mutex
	cache map[uint64]*catalogStats
}{cache: map[uint64]*catalogStats{}}

// epochStatsMax bounds the epochs retained; beyond it the whole cache
// resets (epochs are monotone, so old generations never come back).
const epochStatsMax = 128

func statsFor(cat *Catalog) *catalogStats {
	if cat.Epoch == 0 {
		return &catalogStats{tables: map[string]*TableStats{}}
	}
	epochStats.mu.Lock()
	defer epochStats.mu.Unlock()
	if len(epochStats.cache) > epochStatsMax {
		epochStats.cache = map[uint64]*catalogStats{}
	}
	s, ok := epochStats.cache[cat.Epoch]
	if !ok {
		s = &catalogStats{tables: map[string]*TableStats{}}
		epochStats.cache[cat.Epoch] = s
	}
	return s
}

// epochCounter backs NewEpoch. Epoch 0 is reserved for "uncached".
var epochCounter atomic.Uint64

// NewEpoch allocates a fresh catalog epoch. Tag a Catalog with one epoch
// per immutable dataset generation: catalogs sharing an epoch share
// statistics and prepared-plan decisions, and bumping the epoch (a new
// generation, e.g. after a dataset swap) invalidates both.
func NewEpoch() uint64 { return epochCounter.Add(1) }

// collectTableStats profiles one (source, table). A missing source or
// table yields nil (the planner treats it as unknown and lets execution
// surface the real error).
func collectTableStats(cat *Catalog, source, table string) *TableStats {
	switch source {
	case SourceSQL:
		if cat.DB == nil {
			return nil
		}
		f, err := cat.DB.Table(table)
		if err != nil {
			return nil
		}
		return frameStats(f)
	case SourceFrame:
		f := cat.Frames[table]
		if f == nil {
			return nil
		}
		return frameStats(f)
	case SourceGraph:
		return graphStats(cat, table)
	default:
		return nil
	}
}

func frameStats(f *dataframe.Frame) *TableStats {
	st := &TableStats{Rows: f.NumRows(), Distinct: map[string]int{}}
	for _, c := range f.Columns() {
		col, _ := f.Column(c)
		st.Distinct[c] = sampleDistinct(col)
	}
	return st
}

// sampleDistinct estimates a column's distinct count from a strided
// sample, scaled linearly to the full row count (capped at it).
func sampleDistinct(col []any) int {
	n := len(col)
	if n == 0 {
		return 0
	}
	stride := 1
	if n > statsSampleMax {
		stride = n / statsSampleMax
	}
	seen := map[vkey]bool{}
	sampled, distinct := 0, 0
	for i := 0; i < n; i += stride {
		sampled++
		k, err := rawKey(col[i])
		if err != nil {
			// Non-scalar cells: treat each as distinct.
			distinct++
			continue
		}
		if !seen[k] {
			seen[k] = true
			distinct++
		}
	}
	if sampled == 0 {
		return 0
	}
	est := distinct * n / sampled
	if est > n {
		est = n
	}
	if est < distinct {
		est = distinct
	}
	return est
}

// rawKey builds a hash key for a raw substrate cell (pre-lift); the lift
// of a scalar cell is itself, so valueKey applies directly.
func rawKey(cell any) (vkey, error) {
	switch x := cell.(type) {
	case nil, bool, int64, float64, string:
		return valueKey(x)
	case int:
		return valueKey(int64(x))
	default:
		return vkey{}, errNonScalarCell
	}
}

var errNonScalarCell = &nonScalarCellError{}

type nonScalarCellError struct{}

func (*nonScalarCellError) Error() string { return "non-scalar cell" }

func graphStats(cat *Catalog, table string) *TableStats {
	g := cat.Graph
	if g == nil {
		return nil
	}
	n := g.NumNodes()
	switch table {
	case GraphTableNodes:
		return &TableStats{Rows: n, Distinct: map[string]int{"id": n}}
	case GraphTableEdges:
		m := g.NumEdges()
		d := n
		if m < d {
			d = m
		}
		return &TableStats{Rows: m, Distinct: map[string]int{"src": d, "dst": d}}
	case GraphTableDegree:
		hist := map[int]int{}
		for _, id := range g.Nodes() {
			hist[g.Degree(id)]++
		}
		return &TableStats{
			Rows:       n,
			Distinct:   map[string]int{"id": n, "degree": len(hist)},
			DegreeHist: hist,
		}
	case GraphTablePageRank:
		return &TableStats{Rows: n, Distinct: map[string]int{"id": n, "pagerank": n}, Compute: true}
	case GraphTableComponents:
		return &TableStats{Rows: n, Distinct: map[string]int{"id": n}, Compute: true}
	default:
		return nil
	}
}

package federate

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataframe"
	"repro/internal/nql"
	"repro/internal/obs"
	"repro/internal/sqldb"
)

// forcePipeline returns a Prepared that runs the staged executor even when
// the volume rule would route a small plan to the row interpreter, or nil
// when the safety classifier forbids the pipeline. Test fixtures are tiny
// by design, so this is how pipeline tests bypass worthPipelining without
// weakening the FuncPred safety rule.
func forcePipeline(cat *Catalog, plan Node) *Prepared {
	p := Prepare(cat, plan)
	if classify(p.plan) != modePipeline {
		return nil
	}
	p.mode = modePipeline
	return p
}

// diffRun executes a plan through both executors — the staged pipeline
// (forced past the volume rule when the safety classifier allows it) and
// the legacy recursive executor on the same optimized tree — and requires
// identical results or identical error text.
func diffRun(t *testing.T, cat *Catalog, plan Node) {
	t.Helper()
	var pipeRel *Relation
	var pipeErr error
	prep := Prepare(cat, plan)
	if forced := forcePipeline(cat, plan); forced != nil {
		pipeRel, pipeErr = forced.ExecuteContext(context.Background(), cat)
	} else {
		// Safety-classified legacy: Run must agree with Exec on routing too.
		pipeRel, pipeErr = Run(cat, plan)
	}
	// The legacy executor runs the same optimized tree with SourceAny
	// already resolved (resolution is Prepare's job, shared by both paths).
	legRel, legErr := Exec(cat, prep.plan)
	switch {
	case pipeErr != nil && legErr != nil:
		if pipeErr.Error() != legErr.Error() {
			t.Errorf("error divergence for\n%s  pipeline: %v\n  legacy:   %v",
				Explain(Optimize(plan)), pipeErr, legErr)
		}
	case pipeErr != nil || legErr != nil:
		t.Errorf("one executor failed for\n%s  pipeline: %v\n  legacy:   %v",
			Explain(Optimize(plan)), pipeErr, legErr)
	default:
		if strings.Join(pipeRel.Cols, ",") != strings.Join(legRel.Cols, ",") {
			t.Errorf("schema divergence for\n%s  pipeline: %v\n  legacy:   %v",
				Explain(Optimize(plan)), pipeRel.Cols, legRel.Cols)
		} else if nql.Repr(pipeRel.Value()) != nql.Repr(legRel.Value()) {
			t.Errorf("result divergence for\n%s  pipeline: %s\n  legacy:   %s",
				Explain(Optimize(plan)), nql.Repr(pipeRel.Value()), nql.Repr(legRel.Value()))
		}
	}
}

// TestPipelineMatchesLegacyCorpus is the differential corpus: every plan
// shape the pipeline accepts must be observationally identical to the
// legacy executor — results, schemas, and error text alike.
func TestPipelineMatchesLegacyCorpus(t *testing.T) {
	cat := testCatalog()
	sqlEdges := func() Node { return &Scan{Source: SourceSQL, Table: "edges"} }
	okFn := FuncPred{Fn: func(row *nql.Map) (bool, error) {
		v, _ := row.Get("n")
		i, _ := v.(int64)
		return i >= 1, nil
	}}
	plans := []Node{
		// Scans of every substrate and virtual tables.
		sqlEdges(),
		&Scan{Source: SourceFrame, Table: "edges"},
		&Scan{Source: SourceGraph, Table: "edges"},
		&Scan{Source: SourceGraph, Table: "degree"},
		&Scan{Source: SourceAny, Table: "nodes"},
		// Filter folds (And-conjunctions) with residuals, projections.
		&Project{Cols: []string{"src", "bytes"}, Input: &Filter{
			Pred: And{Preds: []Pred{
				Cmp{Col: "bytes", Op: ">", Value: int64(60)},
				Cmp{Col: "src", Op: "!=", Value: "o'brien"},
			}},
			Input: sqlEdges(),
		}},
		// Cross-substrate join + sort.
		&Sort{Ascending: true, Cols: []string{"dst"}, Input: &Join{
			Left:    &Filter{Input: sqlEdges(), Pred: Cmp{Col: "bytes", Op: ">=", Value: int64(100)}},
			Right:   &Scan{Source: SourceGraph, Table: "degree"},
			LeftKey: "dst", RightKey: "id",
		}},
		// Self-join with colliding columns (fused sql-join candidate).
		&Join{Left: sqlEdges(), Right: sqlEdges(), LeftKey: "dst", RightKey: "src"},
		// Aggregates: grouped, global, empty-input global.
		&Aggregate{Input: sqlEdges(), GroupBy: []string{"src"}, Aggs: []AggSpec{
			{Col: "bytes", Fn: AggSum, As: "total"},
			{Col: "bytes", Fn: AggMean, As: "avg"},
			{Col: "bytes", Fn: AggMin, As: "lo"},
			{Col: "bytes", Fn: AggMax, As: "hi"},
			{Fn: AggCount, As: "n"},
		}},
		&Aggregate{Input: &Filter{
			Input: sqlEdges(), Pred: Cmp{Col: "bytes", Op: ">", Value: int64(1 << 40)},
		}, Aggs: []AggSpec{{Fn: AggCount, As: "n"}, {Col: "bytes", Fn: AggSum, As: "s"}}},
		// Sort stability (two-pass) + limit, limit 0, negative limit.
		&Limit{N: 2, Input: &Sort{Ascending: false, Cols: []string{"out_degree"},
			Input: &Sort{Ascending: true, Cols: []string{"id"},
				Input: &Scan{Source: SourceGraph, Table: "degree"}}}},
		&Limit{N: 0, Input: sqlEdges()},
		&Limit{N: -3, Input: sqlEdges()},
		&Limit{N: 100, Input: sqlEdges()},
		// FuncPred above an aggregate (the ta-h7 shape; pipeline-safe).
		&Sort{Ascending: true, Cols: []string{"src"}, Input: &Filter{
			Pred: okFn,
			Input: &Aggregate{Input: sqlEdges(), GroupBy: []string{"src"},
				Aggs: []AggSpec{{Col: "bytes", Fn: AggCount, As: "n"}}},
		}},
		// FuncPred with a join: classified legacy, must still agree.
		&Filter{Pred: okFn, Input: &Join{
			Left: sqlEdges(), Right: sqlEdges(), LeftKey: "dst", RightKey: "src"}},
		// The same join shape with an analyzer-proven (NoErr) predicate:
		// newly classified pipeline by the effect widening, so this is the
		// plan family that must stay observationally identical now that it
		// runs staged.
		&Filter{Pred: FuncPred{Fn: okFn.Fn, NoErr: true}, Input: &Join{
			Left: sqlEdges(), Right: sqlEdges(), LeftKey: "dst", RightKey: "src"}},
		// Stacked NoErr predicates (previously legacy via the two-FuncPred
		// rule).
		&Filter{Pred: FuncPred{Fn: okFn.Fn, NoErr: true},
			Input: &Filter{Pred: FuncPred{Fn: okFn.Fn, NoErr: true}, Input: sqlEdges()}},
		// NoErr predicate above a join feeding an aggregate and sort.
		&Sort{Ascending: true, Cols: []string{"src"}, Input: &Filter{
			Pred: FuncPred{Fn: okFn.Fn, NoErr: true},
			Input: &Aggregate{
				Input: &Join{Left: sqlEdges(), Right: sqlEdges(),
					LeftKey: "dst", RightKey: "src"},
				GroupBy: []string{"src"},
				Aggs:    []AggSpec{{Col: "bytes", Fn: AggCount, As: "n"}}},
		}},
		// Error cases: text must match the legacy executor verbatim.
		&Scan{Source: "mongo", Table: "edges"},
		&Scan{Source: SourceSQL, Table: "ghost"},
		&Sort{Cols: []string{"ghost"}, Input: sqlEdges()},
		&Project{Cols: []string{"ghost"}, Input: sqlEdges()},
		&Aggregate{Input: sqlEdges(), GroupBy: []string{"ghost"},
			Aggs: []AggSpec{{Fn: AggCount, As: "n"}}},
		&Aggregate{Input: sqlEdges(),
			Aggs: []AggSpec{{Col: "ghost", Fn: AggSum, As: "s"}}},
		&Aggregate{Input: sqlEdges(),
			Aggs: []AggSpec{{Col: "bytes", Fn: "median", As: "m"}}},
		&Join{Left: sqlEdges(), Right: sqlEdges(), LeftKey: "ghost", RightKey: "src"},
		&Join{Left: sqlEdges(), Right: sqlEdges(), LeftKey: "dst", RightKey: "ghost"},
		// Upstream error precedence: the scan's error, not the sort's.
		&Sort{Cols: []string{"ghost"}, Input: &Scan{Source: SourceSQL, Table: "missing"}},
	}
	for _, plan := range plans {
		diffRun(t, cat, plan)
	}
}

// TestPipelineNaNKeys pins NaN canonicalization across join and group keys
// in both executors: every NaN payload is one equivalence class, and
// int64/float64 collapse.
func TestPipelineNaNKeys(t *testing.T) {
	f := dataframe.New("k", "v")
	f.AppendRow(math.NaN(), int64(1))
	f.AppendRow(math.Float64frombits(0x7ff8000000000001), int64(2)) // another NaN payload
	f.AppendRow(int64(3), int64(3))
	f.AppendRow(3.0, int64(4))
	cat := &Catalog{Frames: map[string]*dataframe.Frame{"t": f}}
	db := sqldb.NewDB()
	tf, _ := f.Clone(), f
	db.CreateTable("t", tf)
	cat.DB = db

	for _, src := range []string{SourceFrame, SourceSQL} {
		diffRun(t, cat, &Aggregate{
			Input:   &Scan{Source: src, Table: "t"},
			GroupBy: []string{"k"},
			Aggs:    []AggSpec{{Col: "v", Fn: AggCount, As: "n"}},
		})
		diffRun(t, cat, &Join{
			Left:    &Scan{Source: src, Table: "t"},
			Right:   &Scan{Source: src, Table: "t"},
			LeftKey: "k", RightKey: "k",
		})
	}
	// Both NaNs group together; 3 and 3.0 group together.
	p := forcePipeline(cat, &Aggregate{
		Input:   &Scan{Source: SourceSQL, Table: "t"},
		GroupBy: []string{"k"},
		Aggs:    []AggSpec{{Col: "v", Fn: AggCount, As: "n"}},
	})
	rel, err := p.ExecuteContext(context.Background(), cat)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 2 {
		t.Fatalf("NaN grouping: %d groups, want 2:\n%s", rel.NumRows(), nql.Repr(rel.Value()))
	}
}

// TestPipelineFuncPredNotCalledOnUpstreamError: the legacy executor never
// invokes an opaque predicate when its input fails; the pipeline must
// match (this is what the classifier's materializing-boundary rule
// guarantees).
func TestPipelineFuncPredNotCalledOnUpstreamError(t *testing.T) {
	cat := testCatalog()
	called := false
	plan := &Filter{
		Pred: FuncPred{Fn: func(*nql.Map) (bool, error) {
			called = true
			return true, nil
		}},
		Input: &Aggregate{
			Input:   &Scan{Source: SourceSQL, Table: "edges"},
			GroupBy: []string{"ghost"},
			Aggs:    []AggSpec{{Fn: AggCount, As: "n"}},
		},
	}
	p := forcePipeline(cat, plan)
	if p == nil {
		t.Fatal("plan classified legacy, test would not exercise the pipeline")
	}
	_, err := p.ExecuteContext(context.Background(), cat)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v, want group-key error", err)
	}
	if called {
		t.Error("FuncPred ran despite upstream error")
	}
}

// TestPipelinePanicPropagates: a panic inside a stage must surface as a
// panic in the caller (matching the legacy executor), not a hang or a
// swallowed error.
func TestPipelinePanicPropagates(t *testing.T) {
	cat := testCatalog()
	plan := &Filter{
		Pred:  FuncPred{Fn: func(*nql.Map) (bool, error) { panic("boom") }},
		Input: &Scan{Source: SourceSQL, Table: "edges"},
	}
	p := forcePipeline(cat, plan)
	if p == nil {
		t.Fatal("plan classified legacy, test would not exercise the pipeline")
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("stage panic did not propagate")
		} else if fmt.Sprint(r) != "boom" {
			t.Errorf("panic value = %v, want boom", r)
		}
	}()
	_, _ = p.ExecuteContext(context.Background(), cat)
}

// bigCatalog builds rows-row frame and SQL copies of one table for the
// per-stage cancellation tests.
func bigCatalog(rows int) *Catalog {
	f := dataframe.New("k", "v")
	for i := 0; i < rows; i++ {
		f.AppendRow(int64(i%97), int64(i))
	}
	db := sqldb.NewDB()
	db.CreateTable("t", f.Clone())
	return &Catalog{Frames: map[string]*dataframe.Frame{"t": f}, DB: db}
}

// TestPipelineStageCancellation arms a short deadline against plans whose
// hot loop sits in each pipelined stage in turn; every one must abort with
// the deadline error instead of running to completion.
func TestPipelineStageCancellation(t *testing.T) {
	const rows = 400_000
	cat := bigCatalog(rows)
	slowFn := FuncPred{Fn: func(row *nql.Map) (bool, error) { return true, nil }}
	stages := []struct {
		name string
		plan Node
	}{
		{"filter-funcpred", &Filter{Pred: slowFn, Input: &Scan{Source: SourceFrame, Table: "t"}}},
		{"aggregate", &Aggregate{Input: &Scan{Source: SourceFrame, Table: "t"},
			GroupBy: []string{"k"}, Aggs: []AggSpec{{Col: "v", Fn: AggSum, As: "s"}}}},
		{"sort", &Sort{Cols: []string{"v"}, Ascending: false,
			Input: &Scan{Source: SourceFrame, Table: "t"}}},
		{"fused-agg", &Aggregate{Input: &Scan{Source: SourceSQL, Table: "t"},
			GroupBy: []string{"k"}, Aggs: []AggSpec{{Col: "v", Fn: AggSum, As: "s"}}}},
		{"fused-join", &Limit{N: 1, Input: &Join{
			Left:    &Scan{Source: SourceSQL, Table: "t"},
			Right:   &Scan{Source: SourceSQL, Table: "t"},
			LeftKey: "k", RightKey: "k"}}},
	}
	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			if p := Prepare(cat, st.plan); p.mode != modePipeline {
				t.Fatalf("plan classified legacy, test would not exercise the pipeline")
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := RunContext(ctx, cat, st.plan)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want wrapped DeadlineExceeded", err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("abort took %v, want a prompt checkpoint return", elapsed)
			}
		})
	}
}

// TestPipelineCancelLeavesNoGoroutines cancels multi-stage pipelined plans
// concurrently and requires the process to return to its goroutine
// baseline — no stage may strand on a channel send.
func TestPipelineCancelLeavesNoGoroutines(t *testing.T) {
	cat := bigCatalog(400_000)
	plan := &Limit{N: 3, Input: &Sort{Cols: []string{"s"}, Ascending: false,
		Input: &Aggregate{
			Input:   &Filter{Pred: Cmp{Col: "v", Op: ">=", Value: int64(0)}, Input: &Scan{Source: SourceFrame, Table: "t"}},
			GroupBy: []string{"k"},
			Aggs:    []AggSpec{{Col: "v", Fn: AggSum, As: "s"}},
		}}}
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i)*time.Millisecond)
			defer cancel()
			_, _ = RunContext(ctx, cat, plan)
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled pipelines: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Mid-pipeline errors (not cancellations) must also tear down cleanly.
	bad := &Sort{Cols: []string{"s"}, Input: &Aggregate{
		Input:   &Scan{Source: SourceFrame, Table: "t"},
		GroupBy: []string{"ghost"},
		Aggs:    []AggSpec{{Col: "v", Fn: AggSum, As: "s"}},
	}}
	for i := 0; i < 4; i++ {
		if _, err := Run(cat, bad); err == nil {
			t.Fatal("expected group-key error")
		}
	}
	deadline = time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after erroring pipelines: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPipelineProfileOperatorTree: the pipelined executor must emit one
// frame per stage, nested like the plan, with output row counts — the
// explain-analyze contract the legacy executor established.
func TestPipelineProfileOperatorTree(t *testing.T) {
	cat := testCatalog()
	plan := &Sort{
		Cols: []string{"src"},
		Input: &Aggregate{
			Input:   &Scan{Source: SourceGraph, Table: "edges"},
			GroupBy: []string{"src"},
			Aggs:    []AggSpec{{Col: "bytes", Fn: AggSum, As: "total"}},
		},
	}
	p := forcePipeline(cat, plan)
	if p == nil {
		t.Fatal("plan classified legacy")
	}
	prof := obs.NewProfile()
	ctx := obs.WithProfile(context.Background(), prof)
	rel, err := p.ExecuteContext(ctx, cat)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", rel.NumRows())
	}
	flat := prof.Flatten()
	if len(flat) != 3 {
		t.Fatalf("got %d frames, want 3 (sort > aggregate > scan):\n%s", len(flat), prof.String())
	}
	want := []struct {
		op    string
		depth int
		rows  int64
	}{
		{"sort", 0, 3},
		{"aggregate", 1, 3},
		{"scan", 2, 4},
	}
	for i, w := range want {
		got := flat[i]
		if got.Op != w.op || got.Depth != w.depth || got.Rows != w.rows {
			t.Fatalf("frame %d = %+v, want op=%s depth=%d rows=%d\n%s", i, got, w.op, w.depth, w.rows, prof.String())
		}
		if got.WallNS < got.OwnNS {
			t.Fatalf("frame %d wall %d < own %d", i, got.WallNS, got.OwnNS)
		}
	}
	if cat.prof != nil || cat.ctx != nil {
		t.Fatal("RunContext mutated the caller's catalog")
	}
}

// TestPipelineProfileNativeScanFrames: a pushed-down SQL scan nests the
// substrate's frames (sql.select > sql.scan > sql.filter) under the scan
// stage, exactly like the text path would.
func TestPipelineProfileNativeScanFrames(t *testing.T) {
	cat := testCatalog()
	plan := &Filter{
		Input: &Scan{Source: SourceSQL, Table: "edges"},
		Pred:  Cmp{Col: "bytes", Op: ">=", Value: int64(100)},
	}
	p := forcePipeline(cat, plan)
	if p == nil {
		t.Fatal("plan classified legacy")
	}
	prof := obs.NewProfile()
	ctx := obs.WithProfile(context.Background(), prof)
	rel, err := p.ExecuteContext(ctx, cat)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", rel.NumRows())
	}
	byOp := map[string]int{}
	var scanDepth, selectDepth = -1, -1
	for _, fr := range prof.Flatten() {
		byOp[fr.Op]++
		switch fr.Op {
		case "scan":
			scanDepth = fr.Depth
		case "sql.select":
			selectDepth = fr.Depth
		}
	}
	for _, op := range []string{"scan", "sql.select", "sql.scan", "sql.filter"} {
		if byOp[op] != 1 {
			t.Errorf("op %q appears %d times, want 1:\n%s", op, byOp[op], prof.String())
		}
	}
	if selectDepth != scanDepth+1 {
		t.Errorf("sql.select depth %d, want nested under scan (depth %d):\n%s",
			selectDepth, scanDepth, prof.String())
	}
}

// TestPipelineFusedAggProfile: a fused sql group-by emits the aggregate's
// logical frame with the substrate frames under it and no separate scan
// stage.
func TestPipelineFusedAggProfile(t *testing.T) {
	cat := testCatalog()
	plan := &Aggregate{
		Input:   &Scan{Source: SourceSQL, Table: "edges"},
		GroupBy: []string{"src"},
		Aggs:    []AggSpec{{Col: "bytes", Fn: AggSum, As: "total"}},
	}
	p := forcePipeline(cat, plan)
	if p == nil || p.decs[0].Fuse != fuseSQLAgg {
		t.Fatalf("plan not a fused pipeline aggregate: %+v", p)
	}
	prof := obs.NewProfile()
	ctx := obs.WithProfile(context.Background(), prof)
	if _, err := p.ExecuteContext(ctx, cat); err != nil {
		t.Fatal(err)
	}
	flat := prof.Flatten()
	if len(flat) == 0 || flat[0].Op != "aggregate" || flat[0].Rows != 3 {
		t.Fatalf("fused agg root frame = %+v, want aggregate rows=3:\n%s", flat, prof.String())
	}
	for _, fr := range flat[1:] {
		if fr.Op == "scan" {
			t.Errorf("fused aggregate emitted a separate scan stage frame:\n%s", prof.String())
		}
	}
}

// TestPipelineLargeResultRoundTrip pushes multi-batch volumes through
// every streaming stage to cover the batch boundaries (batchRows splits).
func TestPipelineLargeResultRoundTrip(t *testing.T) {
	cat := bigCatalog(3*batchRows + 17)
	diffRun(t, cat, &Scan{Source: SourceFrame, Table: "t"})
	diffRun(t, cat, &Project{Cols: []string{"v"}, Input: &Scan{Source: SourceFrame, Table: "t"}})
	diffRun(t, cat, &Limit{N: batchRows + 5, Input: &Scan{Source: SourceFrame, Table: "t"}})
	diffRun(t, cat, &Filter{Pred: Cmp{Col: "v", Op: ">=", Value: int64(batchRows)},
		Input: &Scan{Source: SourceFrame, Table: "t"}})
	diffRun(t, cat, &Scan{Source: SourceSQL, Table: "t"})
	diffRun(t, cat, &Limit{N: batchRows, Input: &Scan{Source: SourceSQL, Table: "t"}})
}

package federate

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataframe"
	"repro/internal/graph"
	"repro/internal/nql"
	"repro/internal/sqldb"
)

// testCatalog builds a small catalog with the same data in all three
// substrates: four nodes, four weighted edges.
func testCatalog() *Catalog {
	g := graph.NewDirected()
	g.AddNode("a", graph.Attrs{"ip": "10.0.0.1"})
	g.AddNode("b", graph.Attrs{"ip": "10.0.0.2"})
	g.AddNode("c", graph.Attrs{"ip": "15.76.0.3"})
	g.AddNode("d", graph.Attrs{"ip": "15.76.0.4"})
	g.AddEdge("a", "b", graph.Attrs{"bytes": int64(100)})
	g.AddEdge("b", "c", graph.Attrs{"bytes": int64(250)})
	g.AddEdge("a", "c", graph.Attrs{"bytes": int64(50)})
	g.AddEdge("c", "d", graph.Attrs{"bytes": int64(400)})

	nodes := dataframe.New("id", "ip")
	edges := dataframe.New("src", "dst", "bytes")
	for _, id := range g.Nodes() {
		nodes.AppendRow(id, g.NodeAttrsView(id)["ip"])
	}
	for _, e := range g.EdgesView() {
		edges.AppendRow(e.U, e.V, e.Attrs["bytes"])
	}
	db := sqldb.NewDB()
	db.CreateTable("nodes", nodes.Clone())
	db.CreateTable("edges", edges.Clone())
	return &Catalog{
		Graph:  g,
		Frames: map[string]*dataframe.Frame{"nodes": nodes, "edges": edges},
		DB:     db,
	}
}

func run(t *testing.T, cat *Catalog, plan Node) *Relation {
	t.Helper()
	rel, err := Run(cat, plan)
	if err != nil {
		t.Fatalf("Run(%s): %v", strings.TrimSpace(Explain(plan)), err)
	}
	return rel
}

func TestScanAllSourcesAgree(t *testing.T) {
	cat := testCatalog()
	want := [][]nql.Value{
		{"a", "b", int64(100)},
		{"b", "c", int64(250)},
		{"a", "c", int64(50)},
		{"c", "d", int64(400)},
	}
	for _, source := range []string{SourceGraph, SourceFrame, SourceSQL} {
		rel := run(t, cat, &Scan{Source: source, Table: "edges"})
		if len(rel.Rows) != len(want) {
			t.Fatalf("%s scan: got %d rows, want %d", source, len(rel.Rows), len(want))
		}
		for i, wr := range want {
			for j, col := range []string{"src", "dst", "bytes"} {
				k, err := rel.colIndex(col)
				if err != nil {
					t.Fatalf("%s scan: %v", source, err)
				}
				if !nql.ValuesEqual(rel.Rows[i][k], wr[j]) {
					t.Errorf("%s scan row %d col %s: got %v, want %v", source, i, col, rel.Rows[i][k], wr[j])
				}
			}
		}
	}
}

func TestFilterPushdownMatchesLocalFilter(t *testing.T) {
	cat := testCatalog()
	for _, source := range []string{SourceGraph, SourceFrame, SourceSQL} {
		base := &Scan{Source: source, Table: "edges"}
		filtered := &Filter{Input: base, Pred: Cmp{Col: "bytes", Op: ">=", Value: int64(100)}}
		// Optimized path (pushdown) vs unoptimized path must agree.
		opt := run(t, cat, filtered)
		raw, err := Exec(cat, filtered)
		if err != nil {
			t.Fatalf("%s: unoptimized exec: %v", source, err)
		}
		if nql.Repr(opt.Value()) != nql.Repr(raw.Value()) {
			t.Errorf("%s: pushdown changed results:\n  pushed: %s\n  local:  %s",
				source, nql.Repr(opt.Value()), nql.Repr(raw.Value()))
		}
		if opt.NumRows() != 3 {
			t.Errorf("%s: got %d rows, want 3", source, opt.NumRows())
		}
	}
}

func TestOptimizeMergesFiltersAndProjection(t *testing.T) {
	plan := Node(&Project{
		Cols: []string{"src", "bytes"},
		Input: &Filter{
			Pred: Cmp{Col: "bytes", Op: ">", Value: int64(60)},
			Input: &Filter{
				Pred:  Cmp{Col: "src", Op: "==", Value: "a"},
				Input: &Scan{Source: SourceSQL, Table: "edges"},
			},
		},
	})
	opt := Optimize(plan)
	scan, ok := opt.(*Scan)
	if !ok {
		t.Fatalf("optimized plan is %T, want *Scan:\n%s", opt, Explain(opt))
	}
	if len(scan.Pushed) != 2 {
		t.Errorf("pushed %d predicates, want 2", len(scan.Pushed))
	}
	if len(scan.Cols) != 2 {
		t.Errorf("scan cols %v, want (src, bytes)", scan.Cols)
	}
	// The original plan tree must be untouched (handles are shared).
	if orig := plan.(*Project).Input.(*Filter).Input.(*Filter).Input.(*Scan); orig.Pushed != nil || orig.Cols != nil {
		t.Errorf("Optimize mutated the original scan: %+v", orig)
	}
	cat := testCatalog()
	rel := run(t, cat, plan)
	if rel.NumRows() != 1 || !nql.ValuesEqual(rel.Rows[0][1], int64(100)) {
		t.Errorf("got %s, want one row (a, 100)", nql.Repr(rel.Value()))
	}
}

func TestCrossSubstrateJoin(t *testing.T) {
	cat := testCatalog()
	// Join SQL edges against graph degree — the cross-substrate case no
	// single backend can express.
	plan := &Sort{
		Ascending: true,
		Cols:      []string{"dst"},
		Input: &Join{
			Left:     &Filter{Input: &Scan{Source: SourceSQL, Table: "edges"}, Pred: Cmp{Col: "bytes", Op: ">=", Value: int64(100)}},
			Right:    &Scan{Source: SourceGraph, Table: "degree"},
			LeftKey:  "dst",
			RightKey: "id",
		},
	}
	rel := run(t, cat, plan)
	if rel.NumRows() != 3 {
		t.Fatalf("got %d rows, want 3:\n%s", rel.NumRows(), nql.Repr(rel.Value()))
	}
	di, err := rel.colIndex("in_degree")
	if err != nil {
		t.Fatal(err)
	}
	// Rows sorted by dst: b (in 1), c (in 2), d (in 1).
	wantIn := []int64{1, 2, 1}
	for i, w := range wantIn {
		if !nql.ValuesEqual(rel.Rows[i][di], w) {
			t.Errorf("row %d in_degree: got %v, want %d", i, rel.Rows[i][di], w)
		}
	}
}

func TestJoinRenamesCollidingColumns(t *testing.T) {
	cat := testCatalog()
	plan := &Join{
		Left:     &Scan{Source: SourceFrame, Table: "edges"},
		Right:    &Scan{Source: SourceFrame, Table: "edges"},
		LeftKey:  "dst",
		RightKey: "src",
	}
	rel := run(t, cat, plan)
	wantCols := []string{"src", "dst", "bytes", "dst_r", "bytes_r"}
	if strings.Join(rel.Cols, ",") != strings.Join(wantCols, ",") {
		t.Errorf("join cols %v, want %v", rel.Cols, wantCols)
	}
	// Two-hop paths: a>b>c, b>c>d, a>c>d.
	if rel.NumRows() != 3 {
		t.Errorf("got %d rows, want 3:\n%s", rel.NumRows(), nql.Repr(rel.Value()))
	}
}

func TestAggregate(t *testing.T) {
	cat := testCatalog()
	plan := &Aggregate{
		Input:   &Scan{Source: SourceSQL, Table: "edges"},
		GroupBy: []string{"src"},
		Aggs: []AggSpec{
			{Col: "bytes", Fn: AggSum, As: "total"},
			{Col: "bytes", Fn: AggCount, As: "n"},
			{Col: "bytes", Fn: AggMean, As: "avg"},
		},
	}
	rel := run(t, cat, plan)
	got := nql.Repr(rel.Value())
	want := `[{"src": "a", "total": 150, "n": 2, "avg": 75.0}, ` +
		`{"src": "b", "total": 250, "n": 1, "avg": 250.0}, ` +
		`{"src": "c", "total": 400, "n": 1, "avg": 400.0}]`
	if got != want {
		t.Errorf("aggregate:\n  got  %s\n  want %s", got, want)
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	cat := testCatalog()
	plan := &Aggregate{
		Input: &Filter{
			Input: &Scan{Source: SourceFrame, Table: "edges"},
			Pred:  Cmp{Col: "bytes", Op: ">", Value: int64(1_000_000)},
		},
		Aggs: []AggSpec{{Fn: AggCount, As: "n"}, {Col: "bytes", Fn: AggSum, As: "s"}},
	}
	rel := run(t, cat, plan)
	if got := nql.Repr(rel.Value()); got != `[{"n": 0, "s": nil}]` {
		t.Errorf("empty aggregate: got %s", got)
	}
}

func TestSortStableTwoPassTopK(t *testing.T) {
	cat := testCatalog()
	// sort by id asc, then stable sort by out_degree desc = order by
	// (-out_degree, id).
	plan := &Limit{N: 2, Input: &Sort{
		Ascending: false, Cols: []string{"out_degree"},
		Input: &Sort{Ascending: true, Cols: []string{"id"},
			Input: &Scan{Source: SourceGraph, Table: "degree"}},
	}}
	rel := run(t, cat, plan)
	ids := []string{rel.Rows[0][0].(string), rel.Rows[1][0].(string)}
	if ids[0] != "a" || ids[1] != "b" {
		t.Errorf("top-2 by out-degree: got %v, want [a b]", ids)
	}
}

func TestGraphComputedTables(t *testing.T) {
	cat := testCatalog()
	pr := run(t, cat, &Scan{Source: SourceGraph, Table: GraphTablePageRank})
	if pr.NumRows() != 4 {
		t.Fatalf("pagerank rows: %d", pr.NumRows())
	}
	want := cat.Graph.PageRank(0.85, 100, 1e-9)
	for _, row := range pr.Rows {
		if !nql.ValuesEqual(row[1], want[row[0].(string)]) {
			t.Errorf("pagerank(%v) = %v, want %v", row[0], row[1], want[row[0].(string)])
		}
	}
	comp := run(t, cat, &Scan{Source: SourceGraph, Table: GraphTableComponents})
	for _, row := range comp.Rows {
		if !nql.ValuesEqual(row[1], int64(0)) {
			t.Errorf("component(%v) = %v, want 0 (single weak component)", row[0], row[1])
		}
	}
}

func TestScanErrors(t *testing.T) {
	cat := testCatalog()
	cases := []Node{
		&Scan{Source: "mongo", Table: "edges"},
		&Scan{Source: SourceGraph, Table: "ghost"},
		&Scan{Source: SourceFrame, Table: "ghost"},
		&Scan{Source: SourceSQL, Table: "ghost"},
		&Filter{Input: &Scan{Source: SourceFrame, Table: "edges"}, Pred: Cmp{Col: "ghost", Op: "==", Value: int64(1)}},
		&Project{Input: &Scan{Source: SourceGraph, Table: "nodes"}, Cols: []string{"ghost"}},
	}
	for _, plan := range cases {
		if _, err := Run(cat, plan); err == nil {
			t.Errorf("expected error for plan:\n%s", Explain(plan))
		}
	}
	empty := &Catalog{}
	if _, err := Run(empty, &Scan{Source: SourceGraph, Table: "nodes"}); err == nil {
		t.Error("expected error scanning missing graph source")
	}
}

func TestSQLPushdownFallsBackOnInexpressiblePredicates(t *testing.T) {
	cat := testCatalog()
	// A string containing a quote cannot be rendered into the dialect; the
	// scan must fall back to a local filter and still project correctly.
	plan := &Project{
		Cols: []string{"dst"},
		Input: &Filter{
			Input: &Scan{Source: SourceSQL, Table: "edges"},
			Pred:  Cmp{Col: "src", Op: "!=", Value: "o'brien"},
		},
	}
	rel := run(t, cat, plan)
	if rel.NumRows() != 4 || len(rel.Cols) != 1 || rel.Cols[0] != "dst" {
		t.Errorf("fallback scan: got cols %v rows %d", rel.Cols, rel.NumRows())
	}
	// prefix pushdown via LIKE.
	prefix := &Filter{
		Input: &Scan{Source: SourceSQL, Table: "nodes"},
		Pred:  Cmp{Col: "ip", Op: "prefix", Value: "15.76."},
	}
	rel = run(t, cat, prefix)
	if rel.NumRows() != 2 {
		t.Errorf("prefix pushdown: got %d rows, want 2", rel.NumRows())
	}
}

func TestSQLPushdownFloatLiterals(t *testing.T) {
	cat := testCatalog()
	// %v would render 1e7 in exponent form, which the SQL lexer rejects;
	// the pushdown must emit plain decimal (or fall back for NaN/Inf).
	for _, c := range []struct {
		value nql.Value
		want  int
	}{
		{1e7, 0},
		{99.5, 3},
		{-1.5, 4},
		{math.Inf(1), 0},
		{math.NaN(), 0},
	} {
		plan := &Filter{
			Input: &Scan{Source: SourceSQL, Table: "edges"},
			Pred:  Cmp{Col: "bytes", Op: ">", Value: c.value},
		}
		rel, err := Run(cat, plan)
		if err != nil {
			t.Errorf("bytes > %v: %v", c.value, err)
			continue
		}
		if rel.NumRows() != c.want {
			t.Errorf("bytes > %v: got %d rows, want %d", c.value, rel.NumRows(), c.want)
		}
	}
}

func TestFilterAfterProjectKeepsUnknownColumnError(t *testing.T) {
	cat := testCatalog()
	// The filter references a column the projection dropped: optimized and
	// unoptimized execution must both fail (the fold is gated on the scan
	// still exposing the column).
	plan := &Filter{
		Pred: Cmp{Col: "bytes", Op: ">", Value: int64(10)},
		Input: &Project{
			Cols:  []string{"src"},
			Input: &Scan{Source: SourceFrame, Table: "edges"},
		},
	}
	if _, err := Exec(cat, plan); err == nil {
		t.Error("unoptimized exec: expected unknown-column error")
	}
	if _, err := Run(cat, plan); err == nil {
		t.Error("optimized run: expected unknown-column error")
	}
	// A filter on a surviving column still folds and agrees.
	ok := &Filter{
		Pred: Cmp{Col: "src", Op: "==", Value: "a"},
		Input: &Project{
			Cols:  []string{"src"},
			Input: &Scan{Source: SourceFrame, Table: "edges"},
		},
	}
	rel, err := Run(cat, ok)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 2 {
		t.Errorf("folded filter on projected column: got %d rows, want 2", rel.NumRows())
	}
}

func TestExplain(t *testing.T) {
	plan := &Limit{N: 5, Input: &Join{
		Left:     &Scan{Source: SourceSQL, Table: "edges", Pushed: []Cmp{{Col: "bytes", Op: ">", Value: int64(10)}}},
		Right:    &Scan{Source: SourceGraph, Table: "pagerank"},
		LeftKey:  "dst",
		RightKey: "id",
	}}
	got := Explain(plan)
	for _, want := range []string{"limit 5", "join on dst = id", "scan sql.edges [bytes > 10]", "scan graph.pagerank"} {
		if !strings.Contains(got, want) {
			t.Errorf("explain missing %q:\n%s", want, got)
		}
	}
}

func TestRelationFrameRoundTrip(t *testing.T) {
	cat := testCatalog()
	rel := run(t, cat, &Scan{Source: SourceGraph, Table: "nodes"})
	f := rel.Frame()
	if f.NumRows() != 4 || strings.Join(f.Columns(), ",") != "id,ip" {
		t.Errorf("frame round trip: cols %v rows %d", f.Columns(), f.NumRows())
	}
}

package federate

// Optimize rewrites a logical plan for execution: structured filters
// directly above a scan merge into the scan's pushdown list, and a
// projection directly above a scan becomes the scan's column list. Plans
// are immutable — Optimize never mutates its input; rewritten operators are
// copies, so plan handles shared by the bindings stay valid.
func Optimize(n Node) Node {
	switch x := n.(type) {
	case *Scan:
		return n
	case *Filter:
		in := Optimize(x.Input)
		if cmp, ok := x.Pred.(Cmp); ok {
			// Fold only when the scan still exposes the filter column: a
			// scan filters before projecting, so folding past a narrowed
			// column list would turn an unknown-column error into success.
			if scan, ok := in.(*Scan); ok && (scan.Cols == nil || containsCol(scan.Cols, cmp.Col)) {
				return scanWith(scan, append(append([]Cmp(nil), scan.Pushed...), cmp), scan.Cols)
			}
		}
		if and, ok := x.Pred.(And); ok {
			if scan, ok := in.(*Scan); ok {
				// Split the conjunction: every Cmp conjunct the scan can
				// still see (same visibility guard as above) folds into the
				// pushdown list; the rest stay in a residual filter. And
				// evaluation order across pushed/residual conjuncts is the
				// optimizer's to choose — pushed conjuncts run first.
				var fold []Cmp
				var rest []Pred
				for _, p := range flattenAnd(and) {
					if cmp, ok := p.(Cmp); ok && (scan.Cols == nil || containsCol(scan.Cols, cmp.Col)) {
						fold = append(fold, cmp)
						continue
					}
					rest = append(rest, p)
				}
				if len(fold) > 0 {
					folded := Node(scanWith(scan, append(append([]Cmp(nil), scan.Pushed...), fold...), scan.Cols))
					switch len(rest) {
					case 0:
						return folded
					case 1:
						return &Filter{Input: folded, Pred: rest[0]}
					default:
						return &Filter{Input: folded, Pred: And{Preds: rest}}
					}
				}
			}
		}
		if in == x.Input {
			return x
		}
		return &Filter{Input: in, Pred: x.Pred}
	case *Project:
		in := Optimize(x.Input)
		// The projection folds into a scan that has not already been
		// narrowed; pushed predicates still see the full row because scans
		// filter before projecting.
		if scan, ok := in.(*Scan); ok && scan.Cols == nil {
			return scanWith(scan, scan.Pushed, append([]string(nil), x.Cols...))
		}
		if in == x.Input {
			return x
		}
		return &Project{Input: in, Cols: x.Cols}
	case *Join:
		l, r := Optimize(x.Left), Optimize(x.Right)
		if l == x.Left && r == x.Right {
			return x
		}
		return &Join{Left: l, Right: r, LeftKey: x.LeftKey, RightKey: x.RightKey}
	case *Aggregate:
		in := Optimize(x.Input)
		if in == x.Input {
			return x
		}
		return &Aggregate{Input: in, GroupBy: x.GroupBy, Aggs: x.Aggs}
	case *Sort:
		in := Optimize(x.Input)
		if in == x.Input {
			return x
		}
		return &Sort{Input: in, Cols: x.Cols, Ascending: x.Ascending}
	case *Limit:
		in := Optimize(x.Input)
		if in == x.Input {
			return x
		}
		return &Limit{Input: in, N: x.N}
	default:
		return n
	}
}

func scanWith(s *Scan, pushed []Cmp, cols []string) *Scan {
	return &Scan{Source: s.Source, Table: s.Table, Pushed: pushed, Cols: cols}
}

// flattenAnd expands nested And predicates into one conjunct list,
// preserving left-to-right evaluation order.
func flattenAnd(a And) []Pred {
	out := make([]Pred, 0, len(a.Preds))
	for _, p := range a.Preds {
		if sub, ok := p.(And); ok {
			out = append(out, flattenAnd(sub)...)
			continue
		}
		out = append(out, p)
	}
	return out
}

func containsCol(cols []string, col string) bool {
	for _, c := range cols {
		if c == col {
			return true
		}
	}
	return false
}

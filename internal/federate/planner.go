package federate

// Optimize rewrites a logical plan for execution: structured filters
// directly above a scan merge into the scan's pushdown list, and a
// projection directly above a scan becomes the scan's column list. Plans
// are immutable — Optimize never mutates its input; rewritten operators are
// copies, so plan handles shared by the bindings stay valid.
func Optimize(n Node) Node {
	switch x := n.(type) {
	case *Scan:
		return n
	case *Filter:
		in := Optimize(x.Input)
		if cmp, ok := x.Pred.(Cmp); ok {
			// Fold only when the scan still exposes the filter column: a
			// scan filters before projecting, so folding past a narrowed
			// column list would turn an unknown-column error into success.
			if scan, ok := in.(*Scan); ok && (scan.Cols == nil || containsCol(scan.Cols, cmp.Col)) {
				return scanWith(scan, append(append([]Cmp(nil), scan.Pushed...), cmp), scan.Cols)
			}
		}
		if in == x.Input {
			return x
		}
		return &Filter{Input: in, Pred: x.Pred}
	case *Project:
		in := Optimize(x.Input)
		// The projection folds into a scan that has not already been
		// narrowed; pushed predicates still see the full row because scans
		// filter before projecting.
		if scan, ok := in.(*Scan); ok && scan.Cols == nil {
			return scanWith(scan, scan.Pushed, append([]string(nil), x.Cols...))
		}
		if in == x.Input {
			return x
		}
		return &Project{Input: in, Cols: x.Cols}
	case *Join:
		l, r := Optimize(x.Left), Optimize(x.Right)
		if l == x.Left && r == x.Right {
			return x
		}
		return &Join{Left: l, Right: r, LeftKey: x.LeftKey, RightKey: x.RightKey}
	case *Aggregate:
		in := Optimize(x.Input)
		if in == x.Input {
			return x
		}
		return &Aggregate{Input: in, GroupBy: x.GroupBy, Aggs: x.Aggs}
	case *Sort:
		in := Optimize(x.Input)
		if in == x.Input {
			return x
		}
		return &Sort{Input: in, Cols: x.Cols, Ascending: x.Ascending}
	case *Limit:
		in := Optimize(x.Input)
		if in == x.Input {
			return x
		}
		return &Limit{Input: in, N: x.N}
	default:
		return n
	}
}

func scanWith(s *Scan, pushed []Cmp, cols []string) *Scan {
	return &Scan{Source: s.Source, Table: s.Table, Pushed: pushed, Cols: cols}
}

func containsCol(cols []string, col string) bool {
	for _, c := range cols {
		if c == col {
			return true
		}
	}
	return false
}

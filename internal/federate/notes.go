package federate

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
)

// PlanNotes collects the fingerprints of federated plans executed during
// one request. The service installs a PlanNotes on the request context
// (WithPlanNotes); every prepared plan that executes under that context
// notes its fingerprint, and the flight recorder reads them back — the
// evidence link from a slow request to the exact plan shapes it ran.
//
// The fingerprint is the hex FNV-64a hash of the plan's canonical Explain
// rendering — the same string that keys the shared plan cache — so a
// fingerprint seen in /flightz can be correlated with plan-cache activity
// and reproduced by re-running Explain on the same program.
type PlanNotes struct {
	mu  sync.Mutex
	fps []string
}

// planNotesMax bounds how many distinct fingerprints one request retains;
// a pathological program looping over thousands of distinct plans keeps
// the first few rather than growing without bound.
const planNotesMax = 8

// add notes one executed plan's fingerprint, deduplicating repeats.
func (n *PlanNotes) add(fp string) {
	if n == nil || fp == "" {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, have := range n.fps {
		if have == fp {
			return
		}
	}
	if len(n.fps) < planNotesMax {
		n.fps = append(n.fps, fp)
	}
}

// Fingerprints returns the distinct plan fingerprints noted so far, in
// first-execution order.
func (n *PlanNotes) Fingerprints() []string {
	if n == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.fps...)
}

// Joined renders the fingerprints comma-joined ("" when none) — the
// compact form carried on a flight record.
func (n *PlanNotes) Joined() string {
	if n == nil {
		return ""
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return strings.Join(n.fps, ",")
}

type planNotesKey struct{}

// WithPlanNotes returns a context carrying the notes; prepared plans
// executed under it record their fingerprints.
func WithPlanNotes(ctx context.Context, n *PlanNotes) context.Context {
	return context.WithValue(ctx, planNotesKey{}, n)
}

// PlanNotesFrom returns the context's notes, or nil when none installed.
func PlanNotesFrom(ctx context.Context) *PlanNotes {
	if ctx == nil {
		return nil
	}
	n, _ := ctx.Value(planNotesKey{}).(*PlanNotes)
	return n
}

// fingerprintHash renders the canonical fingerprint hash of an Explain
// string.
func fingerprintHash(explain string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(explain))
	return fmt.Sprintf("%016x", h.Sum64())
}

package federate

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataframe"
	"repro/internal/nql"
	"repro/internal/sqldb"
)

// TestResolveSourceAny pins SourceAny resolution: a table in every
// substrate resolves to the cheapest (sql when the native pushdown
// applies), and a frame-only table resolves to frame.
func TestResolveSourceAny(t *testing.T) {
	cat := testCatalog()
	cat.Epoch = NewEpoch()
	p := Prepare(cat, &Scan{Source: SourceAny, Table: "edges"})
	s, ok := p.plan.(*Scan)
	if !ok || s.Source != SourceSQL {
		t.Fatalf("SourceAny edges resolved to %+v, want sql scan", p.plan)
	}
	rel, err := p.ExecuteContext(context.Background(), cat)
	if err != nil || rel.NumRows() != 4 {
		t.Fatalf("resolved scan: rows=%v err=%v", rel, err)
	}

	only := dataframe.New("x")
	only.AppendRow(int64(1))
	cat2 := &Catalog{Frames: map[string]*dataframe.Frame{"solo": only}}
	p2 := Prepare(cat2, &Scan{Source: SourceAny, Table: "solo"})
	if s2 := p2.plan.(*Scan); s2.Source != SourceFrame {
		t.Fatalf("frame-only table resolved to %s, want frame", s2.Source)
	}

	// Unknown table: resolution still lands somewhere present so the
	// executor reports its canonical unknown-table error.
	if _, err := Run(cat, &Scan{Source: SourceAny, Table: "ghost"}); err == nil {
		t.Error("SourceAny over unknown table: expected execution error")
	}
}

// TestCostDecisions pins build-side choice and SQL fusion gating.
func TestCostDecisions(t *testing.T) {
	cat := testCatalog()
	// Left side filtered to ~1 row, right side the full table: hash the left.
	j := &Join{
		Left: &Scan{Source: SourceSQL, Table: "edges",
			Pushed: []Cmp{{Col: "src", Op: "==", Value: "b"}}},
		Right:    &Scan{Source: SourceSQL, Table: "edges"},
		LeftKey:  "dst",
		RightKey: "src",
	}
	decs := annotate(cat, j)
	if len(decs) != 3 {
		t.Fatalf("join decisions = %d, want 3", len(decs))
	}
	if !decs[0].BuildLeft {
		t.Errorf("filtered-left join: BuildLeft = false, want true\n%+v", decs)
	}
	if decs[0].Fuse != fuseSQLJoin {
		t.Errorf("two native sql scans: Fuse = %d, want fuseSQLJoin", decs[0].Fuse)
	}
	if !decs[1].Native || !decs[2].Native {
		t.Errorf("sql scans not native: %+v", decs)
	}

	// A graph side blocks fusion.
	j2 := &Join{
		Left:     &Scan{Source: SourceSQL, Table: "edges"},
		Right:    &Scan{Source: SourceGraph, Table: "degree"},
		LeftKey:  "dst",
		RightKey: "id",
	}
	if d := annotate(cat, j2); d[0].Fuse != fuseNone {
		t.Errorf("sql+graph join fused: %+v", d[0])
	}

	// Aggregate over a native scan fuses; an invalid agg fn must not (the
	// aggregate stage owns the canonical error).
	a := &Aggregate{
		Input:   &Scan{Source: SourceSQL, Table: "edges"},
		GroupBy: []string{"src"},
		Aggs:    []AggSpec{{Col: "bytes", Fn: AggSum, As: "t"}},
	}
	if d := annotate(cat, a); d[0].Fuse != fuseSQLAgg {
		t.Errorf("agg over native scan: Fuse = %d, want fuseSQLAgg", d[0].Fuse)
	}
	bad := &Aggregate{
		Input: &Scan{Source: SourceSQL, Table: "edges"},
		Aggs:  []AggSpec{{Col: "bytes", Fn: "median", As: "m"}},
	}
	if d := annotate(cat, bad); d[0].Fuse != fuseNone {
		t.Errorf("invalid agg fn fused: %+v", d[0])
	}
	if _, err := Run(cat, bad); err == nil || !strings.Contains(err.Error(), "unknown aggregate") {
		t.Errorf("invalid agg fn error = %v, want unknown aggregate", err)
	}
}

// TestIdentOK pins the identifier gate keeping native pushdown off names
// the SQL text path would fail to parse.
func TestIdentOK(t *testing.T) {
	for name, want := range map[string]bool{
		"edges": true, "a_b": true, "x1": true, "A": true,
		"": false, "1x": false, "a-b": false, "a b": false,
		"select": false, "WHERE": false, "naïve": false,
	} {
		if got := identOK(name); got != want {
			t.Errorf("identOK(%q) = %v, want %v", name, got, want)
		}
	}
	// A keyword table name keeps the whole scan off the native path.
	cat := testCatalog()
	if nativeScanOK(cat, &Scan{Source: SourceSQL, Table: "select"}) {
		t.Error("nativeScanOK accepted a keyword table name")
	}
	// A non-compilable pushed predicate (quote in the literal) leaves the
	// scan native with a residual; a bad column name in a compilable one
	// disables native entirely.
	if !nativeScanOK(cat, &Scan{Source: SourceSQL, Table: "edges",
		Pushed: []Cmp{{Col: "src", Op: "!=", Value: "o'brien"}}}) {
		t.Error("residual predicate should keep native scan (with local filter)")
	}
	if nativeScanOK(cat, &Scan{Source: SourceSQL, Table: "edges",
		Pushed: []Cmp{{Col: "a-b", Op: "==", Value: int64(1)}}}) {
		t.Error("bad predicate column accepted for native scan")
	}
}

// TestStatsCollection pins the statistics feeding the planner: row counts,
// sampled distincts, the graph degree histogram, and epoch caching.
func TestStatsCollection(t *testing.T) {
	cat := testCatalog()
	st := collectTableStats(cat, SourceSQL, "edges")
	if st == nil || st.Rows != 4 {
		t.Fatalf("sql edges stats = %+v, want 4 rows", st)
	}
	if d := st.distinctOf("src"); d != 3 {
		t.Errorf("distinct(src) = %d, want 3", d)
	}
	deg := collectTableStats(cat, SourceGraph, "degree")
	if deg == nil || deg.Rows != 4 || len(deg.DegreeHist) == 0 {
		t.Fatalf("graph degree stats = %+v, want histogram", deg)
	}
	pr := collectTableStats(cat, SourceGraph, "pagerank")
	if pr == nil || !pr.Compute {
		t.Errorf("pagerank stats = %+v, want Compute", pr)
	}
	if collectTableStats(cat, SourceSQL, "ghost") != nil {
		t.Error("unknown table produced stats")
	}

	// Same epoch → same cached catalogStats; epoch 0 → fresh every time.
	cat.Epoch = NewEpoch()
	if statsFor(cat) != statsFor(cat) {
		t.Error("epoch stats not shared")
	}
	cat.Epoch = 0
	if statsFor(cat) == statsFor(cat) {
		t.Error("epoch-0 stats unexpectedly shared")
	}
}

// TestPlanCacheHitMissEpoch exercises the shared cache end to end: a first
// Prepare misses and stores, a second hits, and a new epoch misses again.
func TestPlanCacheHitMissEpoch(t *testing.T) {
	cat := testCatalog()
	cat.Epoch = NewEpoch()
	plan := &Filter{
		Input: &Scan{Source: SourceSQL, Table: "edges"},
		Pred:  Cmp{Col: "bytes", Op: ">", Value: int64(60)},
	}
	h0, m0, _ := DefaultCache.Stats()
	Prepare(cat, plan)
	h1, m1, _ := DefaultCache.Stats()
	if h1 != h0 || m1 != m0+1 {
		t.Fatalf("first prepare: hits %d→%d misses %d→%d, want one miss", h0, h1, m0, m1)
	}
	Prepare(cat, plan)
	h2, m2, _ := DefaultCache.Stats()
	if h2 != h1+1 || m2 != m1 {
		t.Fatalf("second prepare: hits %d→%d misses %d→%d, want one hit", h1, h2, m1, m2)
	}
	cat.Epoch = NewEpoch()
	Prepare(cat, plan)
	_, m3, _ := DefaultCache.Stats()
	if m3 != m2+1 {
		t.Fatalf("new epoch: misses %d→%d, want one miss", m2, m3)
	}
	// Epoch 0 never touches the cache.
	cat.Epoch = 0
	h4a, m4a, _ := DefaultCache.Stats()
	Prepare(cat, plan)
	h4b, m4b, _ := DefaultCache.Stats()
	if h4a != h4b || m4a != m4b {
		t.Error("epoch-0 prepare touched the cache")
	}
}

// TestPlanCacheClosureRebinding: two plans with the same fingerprint but
// different FuncPred closures share one cache entry, yet each execution
// runs its own closure.
func TestPlanCacheClosureRebinding(t *testing.T) {
	cat := testCatalog()
	cat.Epoch = NewEpoch()
	mk := func(keep string) Node {
		return &Filter{
			Input: &Aggregate{
				Input:   &Scan{Source: SourceSQL, Table: "edges"},
				GroupBy: []string{"src"},
				Aggs:    []AggSpec{{Col: "bytes", Fn: AggCount, As: "n"}},
			},
			Pred: FuncPred{Fn: func(row *nql.Map) (bool, error) {
				v, _ := row.Get("src")
				return v == keep, nil
			}},
		}
	}
	a, b := mk("a"), mk("b")
	if Explain(Optimize(a)) != Explain(Optimize(b)) {
		t.Fatal("closure plans should share a fingerprint")
	}
	relA, err := Run(cat, a)
	if err != nil {
		t.Fatal(err)
	}
	relB, err := Run(cat, b) // cache hit: decisions recalled, closure is b's
	if err != nil {
		t.Fatal(err)
	}
	getSrc := func(r *Relation) string {
		if r.NumRows() != 1 {
			t.Fatalf("got %d rows, want 1", r.NumRows())
		}
		return r.Rows[0][0].(string)
	}
	if getSrc(relA) != "a" || getSrc(relB) != "b" {
		t.Errorf("closure rebinding broken: a→%s b→%s", getSrc(relA), getSrc(relB))
	}
}

// TestPlanCacheStaleEntryRecomputes: a cache entry that does not align
// with the plan shape (fingerprint collision / stale schema) falls back to
// a fresh computation instead of failing.
func TestPlanCacheStaleEntryRecomputes(t *testing.T) {
	cat := testCatalog()
	cat.Epoch = NewEpoch()
	plan := &Scan{Source: SourceAny, Table: "edges"}
	fp := Explain(Optimize(plan))
	// Poison the entry with a decision list of the wrong shape.
	DefaultCache.store(fp, cat.Epoch, []decision{{Kind: kindJoin}, {Kind: kindScan}})
	p := Prepare(cat, plan)
	if s, ok := p.plan.(*Scan); !ok || s.Source != SourceSQL {
		t.Fatalf("stale entry not recomputed: %+v", p.plan)
	}
	if rel, err := p.ExecuteContext(context.Background(), cat); err != nil || rel.NumRows() != 4 {
		t.Fatalf("stale-entry execution: rows=%v err=%v", rel, err)
	}
}

// TestPlanCacheFIFOEviction fills a cache past its bound and checks the
// oldest entries leave first.
func TestPlanCacheFIFOEviction(t *testing.T) {
	c := NewPlanCache()
	epoch := uint64(1)
	for i := 0; i < planCacheMax+10; i++ {
		c.store(fmt.Sprintf("fp-%d", i), epoch, []decision{{Kind: kindScan}})
	}
	_, _, entries := c.Stats()
	if entries != planCacheMax {
		t.Fatalf("entries = %d, want %d", entries, planCacheMax)
	}
	if _, ok := c.lookup("fp-0", epoch); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.lookup(fmt.Sprintf("fp-%d", planCacheMax+9), epoch); !ok {
		t.Error("newest entry missing")
	}
}

// TestClassify pins the pipeline-safety rule around opaque predicates.
func TestClassify(t *testing.T) {
	fn := FuncPred{Fn: func(*nql.Map) (bool, error) { return true, nil }}
	scan := func() Node { return &Scan{Source: SourceSQL, Table: "edges"} }
	cases := []struct {
		name string
		plan Node
		want byte
	}{
		{"no funcpred", &Sort{Cols: []string{"src"}, Input: scan()}, modePipeline},
		{"fn over scan", &Filter{Pred: fn, Input: scan()}, modePipeline},
		{"fn over agg", &Sort{Cols: []string{"src"}, Input: &Filter{Pred: fn,
			Input: &Aggregate{Input: scan(), GroupBy: []string{"src"},
				Aggs: []AggSpec{{Col: "bytes", Fn: AggSum, As: "t"}}}}}, modePipeline},
		{"fn over project", &Filter{Pred: fn,
			Input: &Project{Cols: []string{"src"}, Input: scan()}}, modePipeline},
		{"fn over filter", &Filter{Pred: fn,
			Input: &Filter{Pred: fn, Input: scan()}}, modeLegacy},
		{"fn with join", &Filter{Pred: fn, Input: &Join{
			Left: scan(), Right: scan(), LeftKey: "dst", RightKey: "src"}}, modeLegacy},
		{"two funcpreds", &Filter{Pred: And{Preds: []Pred{fn, fn}},
			Input: scan()}, modeLegacy},
	}
	// Predicates the analyzer proved pure and row-total are invisible to
	// the classifier: every legacy-forcing shape above widens back to the
	// pipeline when its predicates carry the NoErr proof.
	noerr := FuncPred{Fn: fn.Fn, NoErr: true}
	cases = append(cases,
		struct {
			name string
			plan Node
			want byte
		}{"noerr fn with join", &Filter{Pred: noerr, Input: &Join{
			Left: scan(), Right: scan(), LeftKey: "dst", RightKey: "src"}}, modePipeline},
		struct {
			name string
			plan Node
			want byte
		}{"noerr fn over filter", &Filter{Pred: noerr,
			Input: &Filter{Pred: noerr, Input: scan()}}, modePipeline},
		struct {
			name string
			plan Node
			want byte
		}{"noerr plus fallible fn with join", &Filter{Pred: And{Preds: []Pred{noerr, fn}},
			Input: &Join{Left: scan(), Right: scan(),
				LeftKey: "dst", RightKey: "src"}}, modeLegacy},
	)
	for _, c := range cases {
		if got := classify(c.plan); got != c.want {
			t.Errorf("classify(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestModeVolumeRule pins the cost model's executor-mode choice: a plan
// whose every operator is expected to see less than one batch of rows runs
// on the row interpreter, and crossing the one-batch estimate anywhere in
// the plan enables the pipeline.
func TestModeVolumeRule(t *testing.T) {
	small := testCatalog() // a handful of rows, far below batchRows
	plan := &Sort{Cols: []string{"src"}, Input: &Scan{Source: SourceSQL, Table: "edges"}}
	if p := Prepare(small, plan); p.mode != modeLegacy {
		t.Errorf("sub-batch plan mode = %d, want legacy (pipeline overhead cannot pay)", p.mode)
	}
	big := sqldb.NewDB()
	f := dataframe.New("src", "bytes")
	for i := 0; i < batchRows; i++ {
		f.AppendRow(fmt.Sprintf("s%d", i%7), int64(i))
	}
	big.CreateTable("edges", f)
	if p := Prepare(&Catalog{DB: big}, plan); p.mode != modePipeline {
		t.Errorf("one-batch plan mode = %d, want pipeline", p.mode)
	}
	// A fusion decision keeps the pipeline even at sub-batch volume: only
	// the pipelined executor can issue the single fused substrate call.
	fused := &Aggregate{
		Input:   &Scan{Source: SourceSQL, Table: "edges"},
		GroupBy: []string{"src"},
		Aggs:    []AggSpec{{Col: "bytes", Fn: AggSum, As: "total"}},
	}
	if p := Prepare(small, fused); p.mode != modePipeline || p.decs[0].Fuse != fuseSQLAgg {
		t.Errorf("tiny fused-agg plan mode = %d (fuse %d), want pipeline with sql-agg fusion",
			p.mode, p.decs[0].Fuse)
	}
}

// TestPreparedExplainAnnotations checks the cost annotations on the
// prepared rendering: row/cost estimates, native and fusion marks, build
// side.
func TestPreparedExplainAnnotations(t *testing.T) {
	cat := testCatalog()
	p := Prepare(cat, &Join{
		Left: &Filter{
			Input: &Scan{Source: SourceSQL, Table: "edges"},
			Pred:  Cmp{Col: "src", Op: "==", Value: "b"},
		},
		Right:    &Scan{Source: SourceSQL, Table: "edges"},
		LeftKey:  "dst",
		RightKey: "src",
	})
	out := p.Explain()
	for _, want := range []string{"rows~", "cost~", " native", " fused=sql-join", " build=left"} {
		if !strings.Contains(out, want) {
			t.Errorf("prepared explain missing %q:\n%s", want, out)
		}
	}
	agg := Prepare(cat, &Aggregate{
		Input: &Scan{Source: SourceSQL, Table: "edges"},
		Aggs:  []AggSpec{{Col: "bytes", Fn: AggSum, As: "t"}},
	})
	if !strings.Contains(agg.Explain(), " fused=sql-agg") {
		t.Errorf("agg explain missing fusion mark:\n%s", agg.Explain())
	}
}

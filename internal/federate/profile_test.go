package federate

import (
	"context"
	"testing"

	"repro/internal/obs"
)

func TestExecProfileOperatorTree(t *testing.T) {
	cat := testCatalog()
	plan := &Sort{
		Cols: []string{"bytes"},
		Input: &Filter{
			Input: &Scan{Source: SourceGraph, Table: "edges"},
			Pred:  Cmp{Col: "bytes", Op: ">=", Value: int64(100)},
		},
	}
	prof := obs.NewProfile()
	ctx := obs.WithProfile(context.Background(), prof)
	rel, err := ExecContext(ctx, cat, plan)
	if err != nil {
		t.Fatalf("ExecContext: %v", err)
	}
	if len(rel.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rel.Rows))
	}
	flat := prof.Flatten()
	if len(flat) != 3 {
		t.Fatalf("got %d frames, want 3 (sort > filter > scan):\n%s", len(flat), prof.String())
	}
	want := []struct {
		op    string
		depth int
		rows  int64
	}{
		{"sort", 0, 3},
		{"filter", 1, 3},
		{"scan", 2, 4},
	}
	for i, w := range want {
		got := flat[i]
		if got.Op != w.op || got.Depth != w.depth || got.Rows != w.rows {
			t.Fatalf("frame %d = %+v, want op=%s depth=%d rows=%d\n%s", i, got, w.op, w.depth, w.rows, prof.String())
		}
		if got.WallNS < got.OwnNS {
			t.Fatalf("frame %d wall %d < own %d", i, got.WallNS, got.OwnNS)
		}
	}
	// Parent wall subsumes child wall.
	if flat[0].WallNS < flat[1].WallNS || flat[1].WallNS < flat[2].WallNS {
		t.Fatalf("wall times do not nest:\n%s", prof.String())
	}
	// The caller's catalog must stay pristine (profile rides the run copy).
	if cat.prof != nil || cat.ctx != nil {
		t.Fatal("ExecContext mutated the caller's catalog")
	}
}

func TestExecUnprofiledNoFrames(t *testing.T) {
	cat := testCatalog()
	rel, err := ExecContext(context.Background(), cat, &Scan{Source: SourceSQL, Table: "edges"})
	if err != nil || len(rel.Rows) != 4 {
		t.Fatalf("unprofiled run: rel=%v err=%v", rel, err)
	}
}

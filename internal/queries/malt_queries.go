package queries

// Shared MALT helpers (pandas/SQL backends): kind lookup and containment
// adjacency maps rebuilt from the tabular form.

const maltPandasMaps = `let kind = {}
for r in nodes_df.records() { kind[r["id"]] = r["kind"] }
let children = {}
let parents = {}
for r in edges_df.records() {
  if r["relation"] == "RK_CONTAINS" {
    if not contains(children, r["src"]) { children[r["src"]] = [] }
    push(children[r["src"]], r["dst"])
    parents[r["dst"]] = r["src"]
  }
}
`

const maltSQLMaps = `let kind = {}
for r in db.query("SELECT id, kind FROM entities").records() { kind[r["id"]] = r["kind"] }
let children = {}
let parents = {}
for r in db.query("SELECT src, dst FROM relationships WHERE relation = 'RK_CONTAINS'").records() {
  if not contains(children, r["src"]) { children[r["src"]] = [] }
  push(children[r["src"]], r["dst"])
  parents[r["dst"]] = r["src"]
}
`

// dcOfSwitch resolves a switch's datacenter by walking parents (switch →
// chassis → datacenter).
const dcOfHelper = `func dc_of(sw) {
  return parents[parents[sw]]
}
`

var maltQueries = []Query{
	{
		ID: "malt-e1", App: AppMALT, Complexity: Easy,
		Text: `List all ports that are contained by packet switch ps.ju1.a1.m1.s2c1, sorted by id.`,
		Golden: map[string]string{
			"networkx": `let sw = "ps.ju1.a1.m1.s2c1"
let out = []
for nb in graph.neighbors(sw) {
  if graph.edge(sw, nb)["relation"] == "RK_CONTAINS" and graph.node(nb)["kind"] == "EK_PORT" {
    push(out, nb)
  }
}
return sorted(out)`,
			"pandas": `let kind = {}
for r in nodes_df.records() { kind[r["id"]] = r["kind"] }
let out = []
for r in edges_df.records() {
  if r["src"] == "ps.ju1.a1.m1.s2c1" and r["relation"] == "RK_CONTAINS" and kind[r["dst"]] == "EK_PORT" {
    push(out, r["dst"])
  }
}
return sorted(out)`,
			"sql": `let out = []
for r in db.query("SELECT e.dst AS port FROM relationships e JOIN entities n ON e.dst = n.id WHERE e.src = 'ps.ju1.a1.m1.s2c1' AND e.relation = 'RK_CONTAINS' AND n.kind = 'EK_PORT' ORDER BY port").records() {
  push(out, r["port"])
}
return out`,
		},
	},
	{
		ID: "malt-e2", App: AppMALT, Complexity: Easy,
		Text: `How many chassis does datacenter ju2 contain?`,
		Golden: map[string]string{
			"networkx": `let dc = "dc.ju2"
let n = 0
for nb in graph.neighbors(dc) {
  if graph.edge(dc, nb)["relation"] == "RK_CONTAINS" and graph.node(nb)["kind"] == "EK_CHASSIS" {
    n = n + 1
  }
}
return n`,
			"pandas": `let kind = {}
for r in nodes_df.records() { kind[r["id"]] = r["kind"] }
let n = 0
for r in edges_df.records() {
  if r["src"] == "dc.ju2" and r["relation"] == "RK_CONTAINS" and kind[r["dst"]] == "EK_CHASSIS" {
    n = n + 1
  }
}
return n`,
			"sql": `return db.query("SELECT COUNT(*) AS n FROM relationships e JOIN entities c ON e.dst = c.id WHERE e.src = 'dc.ju2' AND e.relation = 'RK_CONTAINS' AND c.kind = 'EK_CHASSIS'").cell(0, "n")`,
		},
	},
	{
		ID: "malt-e3", App: AppMALT, Complexity: Easy,
		Text: `How many packet switches are in the whole network?`,
		Golden: map[string]string{
			"networkx": `let n = 0
for v in graph.nodes() {
  if graph.node(v)["kind"] == "EK_PACKET_SWITCH" { n = n + 1 }
}
return n`,
			"pandas": `return nodes_df.filter_eq("kind", "EK_PACKET_SWITCH").num_rows()`,
			"sql":    `return db.query("SELECT COUNT(*) AS n FROM entities WHERE kind = 'EK_PACKET_SWITCH'").cell(0, "n")`,
		},
	},
	{
		ID: "malt-m1", App: AppMALT, Complexity: Medium,
		Text: `Find the first and the second largest chassis by capacity (ties by id); return [[id, capacity], [id, capacity]].`,
		Golden: map[string]string{
			"networkx": `let chs = []
for v in graph.nodes() {
  if graph.node(v)["kind"] == "EK_CHASSIS" {
    push(chs, [0 - graph.node(v)["capacity"], v])
  }
}
let ranked = sorted(chs)
let out = []
for p in slice(ranked, 0, 2) { push(out, [p[1], 0 - p[0]]) }
return out`,
			"pandas": `let chs = nodes_df.filter_eq("kind", "EK_CHASSIS")
let ranked = []
for r in chs.records() { push(ranked, [0 - r["capacity"], r["id"]]) }
ranked = sorted(ranked)
let out = []
for p in slice(ranked, 0, 2) { push(out, [p[1], 0 - p[0]]) }
return out`,
			"sql": `let out = []
for r in db.query("SELECT id, capacity FROM entities WHERE kind = 'EK_CHASSIS' ORDER BY capacity DESC, id ASC LIMIT 2").records() {
  push(out, [r["id"], r["capacity"]])
}
return out`,
		},
	},
	{
		ID: "malt-m2", App: AppMALT, Complexity: Medium,
		Text: `For each datacenter, count the ports whose admin_state is down; return a map from datacenter id to count, datacenters in ascending order.`,
		Golden: map[string]string{
			"networkx": `let out = {}
for dc in sorted(graph.nodes()) {
  if graph.node(dc)["kind"] != "EK_DATACENTER" { continue }
  let n = 0
  for ch in graph.neighbors(dc) {
    if graph.edge(dc, ch)["relation"] != "RK_CONTAINS" { continue }
    for sw in graph.neighbors(ch) {
      if graph.edge(ch, sw)["relation"] != "RK_CONTAINS" { continue }
      for p in graph.neighbors(sw) {
        if graph.edge(sw, p)["relation"] != "RK_CONTAINS" { continue }
        if graph.node(p)["kind"] == "EK_PORT" and graph.node(p)["admin_state"] == "down" {
          n = n + 1
        }
      }
    }
  }
  out[dc] = n
}
return out`,
			"pandas": maltPandasMaps + dcOfHelper + `let state = {}
for r in nodes_df.records() {
  if r["kind"] == "EK_PORT" { state[r["id"]] = r["admin_state"] }
}
let counts = {}
for r in nodes_df.records() {
  if r["kind"] == "EK_DATACENTER" { counts[r["id"]] = 0 }
}
for p, st in state {
  if st != "down" { continue }
  let dc = dc_of(parents[p])
  counts[dc] = counts[dc] + 1
}
let out = {}
for dc in sorted(keys(counts)) { out[dc] = counts[dc] }
return out`,
			"sql": maltSQLMaps + dcOfHelper + `let counts = {}
for r in db.query("SELECT id FROM entities WHERE kind = 'EK_DATACENTER' ORDER BY id").records() { counts[r["id"]] = 0 }
for r in db.query("SELECT id FROM entities WHERE kind = 'EK_PORT' AND admin_state = 'down'").records() {
  let dc = dc_of(parents[r["id"]])
  counts[dc] = counts[dc] + 1
}
return counts`,
		},
	},
	{
		ID: "malt-m3", App: AppMALT, Complexity: Medium,
		Text: `Which control points control packet switches in more than one datacenter? Return their ids sorted.`,
		Golden: map[string]string{
			"networkx": `let out = []
for cp in graph.nodes() {
  if graph.node(cp)["kind"] != "EK_CONTROL_POINT" { continue }
  let dcs = {}
  for sw in graph.neighbors(cp) {
    if graph.edge(cp, sw)["relation"] != "RK_CONTROLS" { continue }
    let ch = graph.predecessors(sw)[0]
    if graph.node(ch)["kind"] != "EK_CHASSIS" {
      for pred in graph.predecessors(sw) {
        if graph.node(pred)["kind"] == "EK_CHASSIS" { ch = pred }
      }
    }
    for dc in graph.predecessors(ch) {
      if graph.node(dc)["kind"] == "EK_DATACENTER" { dcs[dc] = true }
    }
  }
  if len(dcs) > 1 { push(out, cp) }
}
return sorted(out)`,
			"pandas": maltPandasMaps + dcOfHelper + `let dcs_of = {}
for r in edges_df.records() {
  if r["relation"] != "RK_CONTROLS" { continue }
  if not contains(dcs_of, r["src"]) { dcs_of[r["src"]] = {} }
  let d = dcs_of[r["src"]]
  d[dc_of(r["dst"])] = true
}
let out = []
for cp, dcs in dcs_of {
  if len(dcs) > 1 { push(out, cp) }
}
return sorted(out)`,
			"sql": maltSQLMaps + dcOfHelper + `let dcs_of = {}
for r in db.query("SELECT src, dst FROM relationships WHERE relation = 'RK_CONTROLS'").records() {
  if not contains(dcs_of, r["src"]) { dcs_of[r["src"]] = {} }
  let d = dcs_of[r["src"]]
  d[dc_of(r["dst"])] = true
}
let out = []
for cp, dcs in dcs_of {
  if len(dcs) > 1 { push(out, cp) }
}
return sorted(out)`,
		},
	},
	{
		ID: "malt-h1", App: AppMALT, Complexity: Hard,
		Text: `Remove packet switch ps.ju1.a4.m1.s1c1 from chassis ch.ju1.a4 and rebalance: reassign its ports (sorted by id) in round-robin order to the remaining switches of the same chassis (sorted by id), adding RK_CONTAINS edges and updating each switch's ports attribute to its new port count. Remove the switch entity afterwards.`,
		Golden: map[string]string{
			"networkx": `let victim = "ps.ju1.a4.m1.s1c1"
let chassis = "ch.ju1.a4"
let orphan_ports = []
for p in graph.neighbors(victim) {
  if graph.edge(victim, p)["relation"] == "RK_CONTAINS" and graph.node(p)["kind"] == "EK_PORT" {
    push(orphan_ports, p)
  }
}
orphan_ports = sorted(orphan_ports)
let targets = []
for sw in graph.neighbors(chassis) {
  if sw != victim and graph.edge(chassis, sw)["relation"] == "RK_CONTAINS" and graph.node(sw)["kind"] == "EK_PACKET_SWITCH" {
    push(targets, sw)
  }
}
targets = sorted(targets)
let i = 0
for p in orphan_ports {
  let tgt = targets[i % len(targets)]
  graph.add_edge(tgt, p, {"relation": "RK_CONTAINS"})
  i = i + 1
}
graph.remove_node(victim)
for sw in targets {
  let n = 0
  for p in graph.neighbors(sw) {
    if graph.edge(sw, p)["relation"] == "RK_CONTAINS" and graph.node(p)["kind"] == "EK_PORT" { n = n + 1 }
  }
  graph.node(sw)["ports"] = n
}
return nil`,
			"pandas": maltPandasMaps + `let victim = "ps.ju1.a4.m1.s1c1"
let chassis = "ch.ju1.a4"
let orphan_ports = []
for p in children[victim] {
  if kind[p] == "EK_PORT" { push(orphan_ports, p) }
}
orphan_ports = sorted(orphan_ports)
let targets = []
for sw in children[chassis] {
  if sw != victim and kind[sw] == "EK_PACKET_SWITCH" { push(targets, sw) }
}
targets = sorted(targets)
let assign = {}
let i = 0
for p in orphan_ports {
  assign[p] = targets[i % len(targets)]
  i = i + 1
}
let new_edges = edges_df.filter(fn(r) => r["src"] != victim and r["dst"] != victim)
for p, tgt in assign { new_edges.append_row(tgt, p, "RK_CONTAINS") }
let new_counts = {}
for sw in targets { new_counts[sw] = 0 }
for r in new_edges.records() {
  if r["relation"] == "RK_CONTAINS" and contains(new_counts, r["src"]) and kind[r["dst"]] == "EK_PORT" {
    new_counts[r["src"]] = new_counts[r["src"]] + 1
  }
}
let new_nodes = nodes_df.filter(fn(r) => r["id"] != victim)
func upd(r) {
  if contains(new_counts, r["id"]) { return new_counts[r["id"]] }
  return r["ports"]
}
new_nodes = new_nodes.mutate("ports", upd)
return {"nodes": new_nodes, "edges": new_edges}`,
			"sql": maltSQLMaps + `let victim = "ps.ju1.a4.m1.s1c1"
let chassis = "ch.ju1.a4"
let orphan_ports = []
for p in children[victim] {
  if kind[p] == "EK_PORT" { push(orphan_ports, p) }
}
orphan_ports = sorted(orphan_ports)
let targets = []
for sw in children[chassis] {
  if sw != victim and kind[sw] == "EK_PACKET_SWITCH" { push(targets, sw) }
}
targets = sorted(targets)
db.exec("DELETE FROM relationships WHERE src = '" + victim + "'")
db.exec("DELETE FROM relationships WHERE dst = '" + victim + "'")
db.exec("DELETE FROM entities WHERE id = '" + victim + "'")
let i = 0
for p in orphan_ports {
  let tgt = targets[i % len(targets)]
  db.exec("INSERT INTO relationships (src, dst, relation) VALUES ('" + tgt + "', '" + p + "', 'RK_CONTAINS')")
  i = i + 1
}
for sw in targets {
  let f = db.query("SELECT COUNT(*) AS n FROM relationships e JOIN entities p ON e.dst = p.id WHERE e.src = '" + sw + "' AND e.relation = 'RK_CONTAINS' AND p.kind = 'EK_PORT'")
  db.exec("UPDATE entities SET ports = " + str(f.cell(0, "n")) + " WHERE id = '" + sw + "'")
}
return nil`,
		},
	},
	{
		ID: "malt-h2", App: AppMALT, Complexity: Hard,
		Text: `Plan a capacity doubling between datacenters ju1 and ju2: compute the current total chassis capacity of each, and return a map from datacenter name (ju1, ju2) to the minimum number of additional chassis of capacity 300 needed to double its total capacity.`,
		Golden: map[string]string{
			"networkx": `let out = {}
for dcname in ["ju1", "ju2"] {
  let dc = "dc." + dcname
  let total = 0
  for ch in graph.neighbors(dc) {
    if graph.edge(dc, ch)["relation"] == "RK_CONTAINS" and graph.node(ch)["kind"] == "EK_CHASSIS" {
      total = total + graph.node(ch)["capacity"]
    }
  }
  out[dcname] = int((total + 299) / 300)
}
return out`,
			"pandas": maltPandasMaps + `let cap = {}
for r in nodes_df.records() {
  if r["kind"] == "EK_CHASSIS" { cap[r["id"]] = r["capacity"] }
}
let out = {}
for dcname in ["ju1", "ju2"] {
  let dc = "dc." + dcname
  let total = 0
  for ch in children[dc] {
    if contains(cap, ch) { total = total + cap[ch] }
  }
  out[dcname] = int((total + 299) / 300)
}
return out`,
			"sql": `let out = {}
for dcname in ["ju1", "ju2"] {
  let f = db.query("SELECT SUM(c.capacity) AS total FROM relationships e JOIN entities c ON e.dst = c.id WHERE e.src = 'dc." + dcname + "' AND e.relation = 'RK_CONTAINS' AND c.kind = 'EK_CHASSIS'")
  let total = f.cell(0, "total")
  if total == nil { total = 0 }
  out[dcname] = int((total + 299) / 300)
}
return out`,
		},
	},
	{
		ID: "malt-h3", App: AppMALT, Complexity: Hard,
		Text: `Find single points of failure among control points: a control point is a single point of failure if some packet switch in datacenter ju1 is controlled by that control point and no other. Return the ids of such control points, sorted.`,
		Golden: map[string]string{
			"networkx": `let spof = {}
for sw in graph.nodes() {
  if graph.node(sw)["kind"] != "EK_PACKET_SWITCH" { continue }
  if not startswith(sw, "ps.ju1.") { continue }
  let controllers = []
  for pred in graph.predecessors(sw) {
    if graph.node(pred)["kind"] == "EK_CONTROL_POINT" and graph.edge(pred, sw)["relation"] == "RK_CONTROLS" {
      push(controllers, pred)
    }
  }
  if len(controllers) == 1 { spof[controllers[0]] = true }
}
return sorted(keys(spof))`,
			"pandas": `let controllers = {}
for r in edges_df.records() {
  if r["relation"] != "RK_CONTROLS" { continue }
  if not startswith(r["dst"], "ps.ju1.") { continue }
  if not contains(controllers, r["dst"]) { controllers[r["dst"]] = [] }
  push(controllers[r["dst"]], r["src"])
}
let spof = {}
for sw, cps in controllers {
  if len(cps) == 1 { spof[cps[0]] = true }
}
return sorted(keys(spof))`,
			"sql": `let controllers = {}
for r in db.query("SELECT src, dst FROM relationships WHERE relation = 'RK_CONTROLS' AND dst LIKE 'ps.ju1.%'").records() {
  if not contains(controllers, r["dst"]) { controllers[r["dst"]] = [] }
  push(controllers[r["dst"]], r["src"])
}
let spof = {}
for sw, cps in controllers {
  if len(cps) == 1 { spof[cps[0]] = true }
}
return sorted(keys(spof))`,
		},
	},
}

package queries

// AppDiagnosis is the failure-diagnosis extension application (paper §5
// "expanding benchmarks"). Its queries are part of the registry — the
// framework, prompts, sandbox and evaluator treat them exactly like the
// paper's two applications — but they are not part of the paper's tables,
// so the simulated models have no calibrated failures for them.
const AppDiagnosis = "diagnosis"

// Diagnosis returns the extension suite (2 easy / 2 medium / 2 hard).
func Diagnosis() []Query { return diagnosisQueries }

// Shared NQL fragments for the diagnosis goldens.

// probeRecords normalizes the three backends' probe representations into a
// list of {id, path(list), ok} maps bound to `plist`.
const probesFromFrame = `let plist = []
for r in probes_df.records() {
  push(plist, {"id": r["pid"], "path": split(r["path"], ">"), "ok": r["ok"]})
}
`

const probesFromDB = `let plist = []
for r in db.query("SELECT pid, path, ok FROM probes ORDER BY pid").records() {
  push(plist, {"id": r["pid"], "path": split(r["path"], ">"), "ok": r["ok"]})
}
`

const probesFromGraphBinding = `let plist = probes
`

// linkCountsBody tallies, per directed link "u>v", the number of failed and
// successful probes that traverse it, into maps `bad` and `good`.
const linkCountsBody = `let bad = {}
let good = {}
for p in plist {
  let path = p["path"]
  for i in range(len(path) - 1) {
    let k = path[i] + ">" + path[i + 1]
    if p["ok"] {
      if not contains(good, k) { good[k] = 0 }
      good[k] = good[k] + 1
    } else {
      if not contains(bad, k) { bad[k] = 0 }
      bad[k] = bad[k] + 1
    }
  }
}
`

func diagGolden(body string) map[string]string {
	return map[string]string{
		"networkx": probesFromGraphBinding + body,
		"pandas":   probesFromFrame + body,
		"sql":      probesFromDB + body,
	}
}

var diagnosisQueries = []Query{
	{
		ID: "diag-e1", App: AppDiagnosis, Complexity: Easy,
		Text: `How many links are currently marked down?`,
		Golden: map[string]string{
			"networkx": `let n = 0
for e in graph.edges() {
  if e.attrs["status"] == "down" { n = n + 1 }
}
return n`,
			"pandas": `return edges_df.filter_eq("status", "down").num_rows()`,
			"sql":    `return db.query("SELECT COUNT(*) AS n FROM edges WHERE status = 'down'").cell(0, "n")`,
		},
	},
	{
		ID: "diag-e2", App: AppDiagnosis, Complexity: Easy,
		Text: `List the ids of the probes that failed, sorted.`,
		Golden: diagGolden(`let out = []
for p in plist {
  if not p["ok"] { push(out, p["id"]) }
}
return sorted(out)`),
	},
	{
		ID: "diag-m1", App: AppDiagnosis, Complexity: Medium,
		Text: `Which directed links appear in at least one failed probe but in no successful probe? Return them as [src, dst] pairs, sorted.`,
		Golden: diagGolden(linkCountsBody + `let out = []
for k in keys(bad) {
  if not contains(good, k) {
    push(out, split(k, ">"))
  }
}
return sorted(out)`),
	},
	{
		ID: "diag-m2", App: AppDiagnosis, Complexity: Medium,
		Text: `For each node, count the failed probes whose path traverses it; return the top 3 as [node, count] pairs in descending count order, ties by node id.`,
		Golden: diagGolden(`let counts = {}
for p in plist {
  if p["ok"] { continue }
  let seen = {}
  for n in p["path"] {
    if contains(seen, n) { continue }
    seen[n] = true
    if not contains(counts, n) { counts[n] = 0 }
    counts[n] = counts[n] + 1
  }
}
let pairs = []
for n, c in counts { push(pairs, [n, c]) }
let ranked = sorted(pairs, fn(p) => [0 - p[1], p[0]])
return slice(ranked, 0, 3)`),
	},
	{
		ID: "diag-h1", App: AppDiagnosis, Complexity: Hard,
		Text: `Rank candidate faulty links by suspicion score, defined as the number of failed probes containing the link divided by one plus the number of successful probes containing it. Return the top 5 as [src, dst] pairs in descending score order, ties by source then destination id.`,
		Golden: diagGolden(linkCountsBody + `let scored = []
for k, b in bad {
  let g = 0
  if contains(good, k) { g = good[k] }
  let score = b / (1.0 + g)
  let parts = split(k, ">")
  push(scored, [0.0 - score, parts[0], parts[1]])
}
scored = sorted(scored)
let out = []
for s in slice(scored, 0, 5) { push(out, [s[1], s[2]]) }
return out`),
	},
	{
		ID: "diag-h2", App: AppDiagnosis, Complexity: Hard,
		Text: `Cross-check the probe observations against the link status attributes: a probe should fail if and only if its path traverses a link whose status is down. Return the ids of probes whose observation contradicts the link states, sorted.`,
		Golden: map[string]string{
			"networkx": probesFromGraphBinding + `let out = []
for p in plist {
  let path = p["path"]
  let shouldfail = false
  for i in range(len(path) - 1) {
    if graph.edge(path[i], path[i + 1])["status"] == "down" { shouldfail = true }
  }
  let expected = not shouldfail
  if expected != p["ok"] { push(out, p["id"]) }
}
return sorted(out)`,
			"pandas": probesFromFrame + `let down = {}
for r in edges_df.records() {
  if r["status"] == "down" { down[r["src"] + ">" + r["dst"]] = true }
}
let out = []
for p in plist {
  let path = p["path"]
  let shouldfail = false
  for i in range(len(path) - 1) {
    if contains(down, path[i] + ">" + path[i + 1]) { shouldfail = true }
  }
  let expected = not shouldfail
  if expected != p["ok"] { push(out, p["id"]) }
}
return sorted(out)`,
			"sql": probesFromDB + `let down = {}
for r in db.query("SELECT src, dst FROM edges WHERE status = 'down'").records() {
  down[r["src"] + ">" + r["dst"]] = true
}
let out = []
for p in plist {
  let path = p["path"]
  let shouldfail = false
  for i in range(len(path) - 1) {
    if contains(down, path[i] + ">" + path[i + 1]) { shouldfail = true }
  }
  let expected = not shouldfail
  if expected != p["ok"] { push(out, p["id"]) }
}
return sorted(out)`,
		},
	},
}

package queries

// Federated goldens. The federated backend binds every substrate at once
// (graph, nodes_df/edges_df, db) plus the `fed` cross-substrate planner, so
// a human expert answers a query with whichever tool is most natural:
// relational questions become federated plans with per-substrate pushdown
// (several below join tables living in *different* substrates), while
// graph-algorithmic and state-mutating queries reuse the NetworkX golden —
// pushing that work down to the graph substrate is exactly what the planner
// would do. Queries without an explicit entry here default to their
// NetworkX golden (see init below); every federated golden returns the same
// value as the query's NetworkX golden, which the parity harness asserts.
var federatedGoldens = map[string]string{
	// --- traffic analysis -------------------------------------------------
	"ta-e2": `return fed.scan("sql", "nodes").count()`,
	"ta-e3": `return fed.scan("frame", "edges").count()`,
	"ta-e4": `let out = []
for r in fed.scan("sql", "nodes").project("ip").sort("ip").collect() { push(out, r["ip"]) }
return out`,
	"ta-e5": `return fed.scan("sql", "edges").agg([], ["bytes", "sum", "s"]).cell(0, "s")`,
	"ta-e6": `let rows = fed.scan("graph", "degree").sort("id").sort("out_degree", false).limit(1).collect()
if len(rows) == 0 { return nil }
return rows[0]["id"]`,
	"ta-e8": `let hits = fed.scan("frame", "edges").where(fn(r) => (r["src"] == "h001" and r["dst"] == "h002") or (r["src"] == "h002" and r["dst"] == "h001")).count()
return hits > 0`,
	"ta-m6": `let f = fed.scan("sql", "edges").agg([], ["packets", "sum", "p"], ["connections", "sum", "c"])
let conns = f.cell(0, "c")
if conns == nil or conns == 0 { return 0 }
return f.cell(0, "p") / (conns * 1.0)`,
	"ta-m7": prefixHelper + `let seen = {}
for r in fed.scan("sql", "nodes").project("ip").collect() { seen[prefix_of(r["ip"])] = true }
return len(seen)`,
	// PageRank is computed natively in the graph substrate and lifted as a
	// table; two stable sorts order by (-pagerank, id).
	"ta-h3": `let rows = fed.scan("graph", "pagerank").sort("id").sort("pagerank", false).limit(5).collect()
let out = []
for r in rows { push(out, r["id"]) }
return out`,
	"ta-h7": `let out = []
let stats = fed.scan("sql", "edges").agg(["src"], ["bytes", "sum", "total"], ["bytes", "count", "n"])
for r in stats.where(fn(s) => s["n"] >= 3 and s["total"] / (s["n"] * 1.0) < 500000).sort("src").collect() {
  push(out, r["src"])
}
return out`,

	// --- MALT lifecycle management ---------------------------------------
	// Cross-substrate joins: the SQL relationship table joined against the
	// graph's node table (malt-e1) and the dataframe node table (malt-e2).
	"malt-e1": `let ports = fed.scan("sql", "relationships").filter("src", "==", "ps.ju1.a1.m1.s2c1").filter("relation", "==", "RK_CONTAINS")
let rows = ports.join(fed.scan("graph", "nodes").filter("kind", "==", "EK_PORT"), "dst", "id").project("dst").sort("dst").collect()
let out = []
for r in rows { push(out, r["dst"]) }
return out`,
	"malt-e2": `let contained = fed.scan("sql", "relationships").filter("src", "==", "dc.ju2").filter("relation", "==", "RK_CONTAINS")
return contained.join(fed.scan("frame", "nodes").filter("kind", "==", "EK_CHASSIS"), "dst", "id").count()`,
	"malt-e3": `return fed.scan("frame", "nodes").filter("kind", "==", "EK_PACKET_SWITCH").count()`,
	"malt-m1": `let rows = fed.scan("frame", "nodes").filter("kind", "==", "EK_CHASSIS").project("id", "capacity").sort("id").sort("capacity", false).limit(2).collect()
let out = []
for r in rows { push(out, [r["id"], r["capacity"]]) }
return out`,

	// --- failure diagnosis ------------------------------------------------
	"diag-e1": `return fed.scan("frame", "edges").filter("status", "==", "down").count()`,
}

// init completes every query's golden set with the federated backend:
// explicit federated plans where defined above, the NetworkX golden
// otherwise (the federated environment binds the graph natively, so the
// NetworkX golden is a valid federated program with identical semantics).
func init() {
	for _, suite := range [][]Query{trafficQueries, maltQueries, diagnosisQueries} {
		for i := range suite {
			q := suite[i]
			if g, ok := federatedGoldens[q.ID]; ok {
				q.Golden["federated"] = g
			} else {
				q.Golden["federated"] = q.Golden["networkx"]
			}
		}
	}
}

package queries

import (
	"strings"
	"testing"

	"repro/internal/nql"
)

func TestEveryGoldenParses(t *testing.T) {
	for _, q := range All() {
		for backend, src := range q.Golden {
			if _, err := nql.Parse(src); err != nil {
				t.Errorf("%s/%s golden does not parse: %v", q.ID, backend, err)
			}
		}
	}
}

func TestEveryQueryHasAllBackends(t *testing.T) {
	for _, q := range All() {
		for _, backend := range []string{"networkx", "pandas", "sql"} {
			if strings.TrimSpace(q.Golden[backend]) == "" {
				t.Errorf("%s missing golden for %s", q.ID, backend)
			}
		}
	}
}

func TestGoldenEndsWithReturn(t *testing.T) {
	// The code-gen prompt instructs programs to end with a return; goldens
	// must model that convention.
	for _, q := range All() {
		for backend, src := range q.Golden {
			if !strings.Contains(src, "return") {
				t.Errorf("%s/%s golden has no return statement", q.ID, backend)
			}
		}
	}
}

func TestByIDAndByText(t *testing.T) {
	q, ok := ByID("ta-e1")
	if !ok || q.ID != "ta-e1" {
		t.Fatal("ByID failed")
	}
	q2, ok := ByText(q.Text)
	if !ok || q2.ID != q.ID {
		t.Fatal("ByText failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID should miss")
	}
	if _, ok := ByText("nope"); ok {
		t.Fatal("ByText should miss")
	}
}

func TestTextsAreUnique(t *testing.T) {
	seen := map[string]string{}
	for _, q := range All() {
		if prev, dup := seen[q.Text]; dup {
			t.Errorf("query text shared by %s and %s", prev, q.ID)
		}
		seen[q.Text] = q.ID
	}
}

func TestComplexityValues(t *testing.T) {
	for _, q := range All() {
		switch q.Complexity {
		case Easy, Medium, Hard:
		default:
			t.Errorf("%s has invalid complexity %q", q.ID, q.Complexity)
		}
		switch q.App {
		case AppTraffic, AppMALT, AppDiagnosis:
		default:
			t.Errorf("%s has invalid app %q", q.ID, q.App)
		}
	}
}

func TestGoldenReferencesOnlyDocumentedGlobals(t *testing.T) {
	// Cheap lint: networkx goldens must not reference db/nodes_df and vice
	// versa — catches copy-paste mistakes across backends.
	for _, q := range All() {
		if src := q.Golden["networkx"]; strings.Contains(src, "nodes_df") || strings.Contains(src, "db.query") {
			t.Errorf("%s/networkx references tabular globals", q.ID)
		}
		if src := q.Golden["pandas"]; strings.Contains(src, "graph.") || strings.Contains(src, "db.query") {
			t.Errorf("%s/pandas references foreign globals", q.ID)
		}
		if src := q.Golden["sql"]; strings.Contains(src, "graph.") || strings.Contains(src, "edges_df") {
			t.Errorf("%s/sql references foreign globals", q.ID)
		}
	}
}

package queries

// prefixOf extracts the /16 prefix ("a.b") of a dotted IP in NQL.
const prefixHelper = `func prefix_of(ip) {
  let parts = split(ip, ".")
  return parts[0] + "." + parts[1]
}
`

var trafficMedium = []Query{
	{
		ID: "ta-m1", App: AppTraffic, Complexity: Medium,
		Text: `Assign a unique color for each /16 IP address prefix.`,
		Golden: map[string]string{
			"networkx": prefixHelper + `let palette = ["red", "green", "blue", "orange", "purple", "cyan", "magenta", "yellow"]
let color_of = {}
let next = 0
for n in graph.nodes() {
  let p = prefix_of(graph.node(n)["ip"])
  if not contains(color_of, p) {
    color_of[p] = palette[next % len(palette)]
    next = next + 1
  }
  graph.node(n)["color"] = color_of[p]
}
return nil`,
			"pandas": prefixHelper + `let palette = ["red", "green", "blue", "orange", "purple", "cyan", "magenta", "yellow"]
let color_of = {}
let next = 0
for ip in nodes_df.column("ip") {
  let p = prefix_of(ip)
  if not contains(color_of, p) {
    color_of[p] = palette[next % len(palette)]
    next = next + 1
  }
}
func col(r) { return color_of[prefix_of(r["ip"])] }
return nodes_df.mutate("color", col)`,
			"sql": prefixHelper + `let palette = ["red", "green", "blue", "orange", "purple", "cyan", "magenta", "yellow"]
let color_of = {}
let next = 0
let assign = {}
for r in db.query("SELECT id, ip FROM nodes ORDER BY id").records() {
  let p = prefix_of(r["ip"])
  if not contains(color_of, p) {
    color_of[p] = palette[next % len(palette)]
    next = next + 1
  }
  assign[r["id"]] = color_of[p]
}
return assign`,
		},
	},
	{
		ID: "ta-m2", App: AppTraffic, Complexity: Medium,
		Text: `Compute the total byte weight on each node (sum of bytes over incoming and outgoing edges) and store it as node attribute total_bytes.`,
		Golden: map[string]string{
			"networkx": `for n in graph.nodes() {
  graph.node(n)["total_bytes"] = int(graph.weighted_degree(n, "bytes"))
}
return nil`,
			"pandas": `let totals = {}
for n in nodes_df.column("id") { totals[n] = 0 }
for r in edges_df.records() {
  totals[r["src"]] = totals[r["src"]] + r["bytes"]
  totals[r["dst"]] = totals[r["dst"]] + r["bytes"]
}
func tot(r) { return totals[r["id"]] }
return nodes_df.mutate("total_bytes", tot)`,
			"sql": `let totals = {}
for r in db.query("SELECT id FROM nodes ORDER BY id").records() { totals[r["id"]] = 0 }
for r in db.query("SELECT src, SUM(bytes) AS b FROM edges GROUP BY src").records() {
  totals[r["src"]] = totals[r["src"]] + r["b"]
}
for r in db.query("SELECT dst, SUM(bytes) AS b FROM edges GROUP BY dst").records() {
  totals[r["dst"]] = totals[r["dst"]] + r["b"]
}
return totals`,
		},
	},
	{
		ID: "ta-m3", App: AppTraffic, Complexity: Medium,
		Text: `Find the top 3 nodes by total traffic volume in bytes (incoming plus outgoing), returning [node, bytes] pairs in descending order; break ties by node id.`,
		Golden: map[string]string{
			"networkx": `let ids = graph.nodes()
let pairs = []
for n in ids { push(pairs, [n, int(graph.weighted_degree(n, "bytes"))]) }
let ranked = sorted(pairs, fn(p) => [0 - p[1], p[0]])
return slice(ranked, 0, 3)`,
			"pandas": `let totals = {}
for n in nodes_df.column("id") { totals[n] = 0 }
for r in edges_df.records() {
  totals[r["src"]] = totals[r["src"]] + r["bytes"]
  totals[r["dst"]] = totals[r["dst"]] + r["bytes"]
}
let pairs = []
for n, b in totals { push(pairs, [n, b]) }
let ranked = sorted(pairs, fn(p) => [0 - p[1], p[0]])
return slice(ranked, 0, 3)`,
			"sql": `let totals = {}
for r in db.query("SELECT id FROM nodes ORDER BY id").records() { totals[r["id"]] = 0 }
for r in db.query("SELECT src, SUM(bytes) AS b FROM edges GROUP BY src").records() {
  totals[r["src"]] = totals[r["src"]] + r["b"]
}
for r in db.query("SELECT dst, SUM(bytes) AS b FROM edges GROUP BY dst").records() {
  totals[r["dst"]] = totals[r["dst"]] + r["b"]
}
let pairs = []
for n, b in totals { push(pairs, [n, b]) }
let ranked = sorted(pairs, fn(p) => [0 - p[1], p[0]])
return slice(ranked, 0, 3)`,
		},
	},
	{
		ID: "ta-m4", App: AppTraffic, Complexity: Medium,
		Text: `How many hops are required to transmit data from h000 to h005 following edge directions? Return -1 if no path exists.`,
		Golden: map[string]string{
			"networkx": `if not graph.has_path("h000", "h005") { return -1 }
return graph.hop_count("h000", "h005")`,
			"pandas": pandasDirectedAdj + `let dist = {"h000": 0}
let queue = ["h000"]
while len(queue) > 0 {
  let cur = queue[0]
  queue = slice(queue, 1, len(queue))
  if cur == "h005" { return dist[cur] }
  if contains(adj, cur) {
    for nb in adj[cur] {
      if not contains(dist, nb) {
        dist[nb] = dist[cur] + 1
        push(queue, nb)
      }
    }
  }
}
return -1`,
			"sql": sqlDirectedAdj + `let dist = {"h000": 0}
let queue = ["h000"]
while len(queue) > 0 {
  let cur = queue[0]
  queue = slice(queue, 1, len(queue))
  if cur == "h005" { return dist[cur] }
  if contains(adj, cur) {
    for nb in adj[cur] {
      if not contains(dist, nb) {
        dist[nb] = dist[cur] + 1
        push(queue, nb)
      }
    }
  }
}
return -1`,
		},
	},
	{
		ID: "ta-m5", App: AppTraffic, Complexity: Medium,
		Text: `List all node pairs that communicate in both directions, as [a, b] pairs with a < b, sorted.`,
		Golden: map[string]string{
			"networkx": `let pairs = []
for e in graph.edges() {
  if e.src < e.dst and graph.has_edge(e.dst, e.src) {
    push(pairs, [e.src, e.dst])
  }
}
return sorted(pairs)`,
			"pandas": `let seen = {}
for r in edges_df.records() { seen[r["src"] + ">" + r["dst"]] = true }
let pairs = []
for r in edges_df.records() {
  if r["src"] < r["dst"] and contains(seen, r["dst"] + ">" + r["src"]) {
    push(pairs, [r["src"], r["dst"]])
  }
}
return sorted(pairs)`,
			"sql": `let pairs = []
for r in db.query("SELECT a.src AS x, a.dst AS y FROM edges a JOIN edges b ON a.src = b.dst AND a.dst = b.src WHERE a.src < a.dst ORDER BY x, y").records() {
  push(pairs, [r["x"], r["y"]])
}
return pairs`,
		},
	},
	{
		ID: "ta-m6", App: AppTraffic, Complexity: Medium,
		Text: `What is the average number of packets per connection across the whole network (total packets divided by total connections)?`,
		Golden: map[string]string{
			"networkx": `let packets = 0
let conns = 0
for e in graph.edges() {
  packets = packets + e.attrs["packets"]
  conns = conns + e.attrs["connections"]
}
if conns == 0 { return 0 }
return packets / (conns * 1.0)`,
			"pandas": `let packets = edges_df.sum("packets")
let conns = edges_df.sum("connections")
if conns == 0 { return 0 }
return packets / (conns * 1.0)`,
			"sql": `let f = db.query("SELECT SUM(packets) AS p, SUM(connections) AS c FROM edges")
let conns = f.cell(0, "c")
if conns == nil or conns == 0 { return 0 }
return f.cell(0, "p") / (conns * 1.0)`,
		},
	},
	{
		ID: "ta-m7", App: AppTraffic, Complexity: Medium,
		Text: `How many distinct /16 IP prefixes are present among the nodes?`,
		Golden: map[string]string{
			"networkx": prefixHelper + `let seen = {}
for n in graph.nodes() { seen[prefix_of(graph.node(n)["ip"])] = true }
return len(seen)`,
			"pandas": prefixHelper + `let seen = {}
for ip in nodes_df.column("ip") { seen[prefix_of(ip)] = true }
return len(seen)`,
			"sql": prefixHelper + `let seen = {}
for r in db.query("SELECT ip FROM nodes").records() { seen[prefix_of(r["ip"])] = true }
return len(seen)`,
		},
	},
	{
		ID: "ta-m8", App: AppTraffic, Complexity: Medium,
		Text: `Remove all isolated nodes (nodes with no incoming or outgoing edges) from the network.`,
		Golden: map[string]string{
			"networkx": `for n in graph.isolated_nodes() { graph.remove_node(n) }
return nil`,
			"pandas": `let used = {}
for r in edges_df.records() {
  used[r["src"]] = true
  used[r["dst"]] = true
}
return nodes_df.filter(fn(r) => contains(used, r["id"]))`,
			"sql": `let used = {}
for r in db.query("SELECT src, dst FROM edges").records() {
  used[r["src"]] = true
  used[r["dst"]] = true
}
for r in db.query("SELECT id FROM nodes ORDER BY id").records() {
  if not contains(used, r["id"]) {
    db.exec("DELETE FROM nodes WHERE id = '" + r["id"] + "'")
  }
}
return nil`,
		},
	},
}

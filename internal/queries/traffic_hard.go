package queries

// nodeTotalsPandas computes per-node total bytes (in+out) into `totals`.
const nodeTotalsPandas = `let totals = {}
for n in nodes_df.column("id") { totals[n] = 0 }
for r in edges_df.records() {
  totals[r["src"]] = totals[r["src"]] + r["bytes"]
  totals[r["dst"]] = totals[r["dst"]] + r["bytes"]
}
`

const nodeTotalsSQL = `let totals = {}
let ids = []
for r in db.query("SELECT id FROM nodes ORDER BY id").records() {
  totals[r["id"]] = 0
  push(ids, r["id"])
}
for r in db.query("SELECT src, SUM(bytes) AS b FROM edges GROUP BY src").records() {
  totals[r["src"]] = totals[r["src"]] + r["b"]
}
for r in db.query("SELECT dst, SUM(bytes) AS b FROM edges GROUP BY dst").records() {
  totals[r["dst"]] = totals[r["dst"]] + r["b"]
}
`

// componentsBody runs BFS component discovery over an `adj` map and a list
// `ids`, leaving `comps` as a list of sorted member lists ordered by size
// descending then first member ascending.
const componentsBody = `let seen = {}
let comps = []
for start in ids {
  if contains(seen, start) { continue }
  seen[start] = true
  let queue = [start]
  let members = []
  while len(queue) > 0 {
    let cur = queue[0]
    queue = slice(queue, 1, len(queue))
    push(members, cur)
    if contains(adj, cur) {
      for nb in adj[cur] {
        if not contains(seen, nb) {
          seen[nb] = true
          push(queue, nb)
        }
      }
    }
  }
  push(comps, sorted(members))
}
comps = sorted(comps, fn(c) => [0 - len(c), c[0]])
`

// pagerankBody computes 50 damped iterations over `adj`/`ids` into `rank`.
const pagerankBody = `let n = len(ids)
let rank = {}
for v in ids { rank[v] = 1.0 / n }
let d = 0.85
for iter in range(50) {
  let next = {}
  for v in ids { next[v] = 0.0 }
  let dangling = 0.0
  for v in ids {
    if contains(adj, v) and len(adj[v]) > 0 {
      let share = rank[v] / len(adj[v])
      for nb in adj[v] { next[nb] = next[nb] + share }
    } else {
      dangling = dangling + rank[v]
    }
  }
  let base = (1.0 - d) / n + d * dangling / n
  for v in ids { rank[v] = base + d * next[v] }
}
`

var trafficHard = []Query{
	{
		ID: "ta-h1", App: AppTraffic, Complexity: Hard,
		Text: `Calculate the total byte weight on each node and cluster the nodes into 5 groups by this weight; store the group index (0-4, ordered by ascending group centroid) as node attribute cluster.`,
		Golden: map[string]string{
			"networkx": `let ids = graph.nodes()
let weights = []
for n in ids { push(weights, graph.weighted_degree(n, "bytes")) }
let assign = kmeans(weights, 5)
let i = 0
for n in ids {
  graph.node(n)["cluster"] = assign[i]
  i = i + 1
}
return nil`,
			"pandas": nodeTotalsPandas + `let ids = nodes_df.column("id")
let weights = []
for n in ids { push(weights, totals[n] * 1.0) }
let assign = kmeans(weights, 5)
let cl = {}
let i = 0
for n in ids {
  cl[n] = assign[i]
  i = i + 1
}
func f(r) { return cl[r["id"]] }
return nodes_df.mutate("cluster", f)`,
			"sql": nodeTotalsSQL + `let weights = []
for n in ids { push(weights, totals[n] * 1.0) }
let assign = kmeans(weights, 5)
let cl = {}
let i = 0
for n in ids {
  cl[n] = assign[i]
  i = i + 1
}
return cl`,
		},
	},
	{
		ID: "ta-h2", App: AppTraffic, Complexity: Hard,
		Text: `Find the connected components of the network ignoring edge direction; label each node with the component index (0 for the largest component, ties by smallest member id) as node attribute component.`,
		Golden: map[string]string{
			"networkx": `let comps = graph.connected_components()
let i = 0
for comp in comps {
  for n in comp { graph.node(n)["component"] = i }
  i = i + 1
}
return nil`,
			"pandas": pandasUndirectedAdj + `let ids = nodes_df.column("id")
` + componentsBody + `let compof = {}
let i = 0
for comp in comps {
  for n in comp { compof[n] = i }
  i = i + 1
}
func f(r) { return compof[r["id"]] }
return nodes_df.mutate("component", f)`,
			"sql": sqlUndirectedAdj + `let ids = []
for r in db.query("SELECT id FROM nodes ORDER BY id").records() { push(ids, r["id"]) }
` + componentsBody + `let compof = {}
let i = 0
for comp in comps {
  for n in comp { compof[n] = i }
  i = i + 1
}
return compof`,
		},
	},
	{
		ID: "ta-h3", App: AppTraffic, Complexity: Hard,
		Text: `Compute PageRank over the directed communication graph and return the 5 highest-ranked node ids in descending rank order (ties by node id).`,
		Golden: map[string]string{
			"networkx": `let pr = graph.pagerank()
let ranked = sorted(keys(pr), fn(v) => [0.0 - pr[v], v])
return slice(ranked, 0, 5)`,
			"pandas": pandasDirectedAdj + `let ids = nodes_df.column("id")
` + pagerankBody + `let ranked = sorted(ids, fn(v) => [0.0 - rank[v], v])
return slice(ranked, 0, 5)`,
			"sql": sqlDirectedAdj + `let ids = []
for r in db.query("SELECT id FROM nodes ORDER BY id").records() { push(ids, r["id"]) }
` + pagerankBody + `let ranked = sorted(ids, fn(v) => [0.0 - rank[v], v])
return slice(ranked, 0, 5)`,
		},
	},
	{
		ID: "ta-h4", App: AppTraffic, Complexity: Hard,
		Text: `Simulate removing the node with the highest total degree (ties by smallest id): how many connected components (ignoring direction) does the remaining graph have?`,
		Golden: map[string]string{
			"networkx": `let top = graph.top_n_by_degree(1)
if len(top) == 0 { return 0 }
let sim = graph.clone()
sim.remove_node(top[0][0])
return len(sim.connected_components())`,
			"pandas": `let deg = {}
for n in nodes_df.column("id") { deg[n] = 0 }
for r in edges_df.records() {
  deg[r["src"]] = deg[r["src"]] + 1
  deg[r["dst"]] = deg[r["dst"]] + 1
}
let target = nil
let bestd = -1
for n, d in deg {
  if d > bestd or (d == bestd and n < target) { target = n bestd = d }
}
if target == nil { return 0 }
let adj = {}
for r in edges_df.records() {
  if r["src"] == target or r["dst"] == target { continue }
  if not contains(adj, r["src"]) { adj[r["src"]] = [] }
  if not contains(adj, r["dst"]) { adj[r["dst"]] = [] }
  push(adj[r["src"]], r["dst"])
  push(adj[r["dst"]], r["src"])
}
let ids = []
for n in nodes_df.column("id") {
  if n != target { push(ids, n) }
}
` + componentsBody + `return len(comps)`,
			"sql": `let deg = {}
for r in db.query("SELECT id FROM nodes ORDER BY id").records() { deg[r["id"]] = 0 }
for r in db.query("SELECT src, dst FROM edges").records() {
  deg[r["src"]] = deg[r["src"]] + 1
  deg[r["dst"]] = deg[r["dst"]] + 1
}
let target = nil
let bestd = -1
for n, d in deg {
  if d > bestd or (d == bestd and n < target) { target = n bestd = d }
}
if target == nil { return 0 }
let adj = {}
for r in db.query("SELECT src, dst FROM edges").records() {
  if r["src"] == target or r["dst"] == target { continue }
  if not contains(adj, r["src"]) { adj[r["src"]] = [] }
  if not contains(adj, r["dst"]) { adj[r["dst"]] = [] }
  push(adj[r["src"]], r["dst"])
  push(adj[r["dst"]], r["src"])
}
let ids = []
for n, d in deg {
  if n != target { push(ids, n) }
}
` + componentsBody + `return len(comps)`,
		},
	},
	{
		ID: "ta-h5", App: AppTraffic, Complexity: Hard,
		Text: `Find the path from h000 to h010 that minimizes the total bytes carried along its edges (treat bytes as the edge weight, following edge directions). Return a map with keys path and cost, or -1 if no path exists.`,
		Golden: map[string]string{
			"networkx": `if not graph.has_path("h000", "h010") { return -1 }
return graph.dijkstra_path("h000", "h010", "bytes")`,
			"pandas": `let adj = {}
for r in edges_df.records() {
  if not contains(adj, r["src"]) { adj[r["src"]] = [] }
  push(adj[r["src"]], [r["dst"], r["bytes"]])
}
` + dijkstraBody,
			"sql": `let adj = {}
for r in db.query("SELECT src, dst, bytes FROM edges").records() {
  if not contains(adj, r["src"]) { adj[r["src"]] = [] }
  push(adj[r["src"]], [r["dst"], r["bytes"]])
}
` + dijkstraBody,
		},
	},
	{
		ID: "ta-h6", App: AppTraffic, Complexity: Hard,
		Text: `For each /16 prefix compute the total bytes of intra-prefix traffic (both endpoints in the prefix) and inter-prefix traffic (exactly one endpoint in the prefix, counted for that prefix). Return a map from prefix to [intra, inter], prefixes in ascending order.`,
		Golden: map[string]string{
			"networkx": prefixHelper + `let intra = {}
let inter = {}
for n in graph.nodes() {
  let p = prefix_of(graph.node(n)["ip"])
  intra[p] = 0
  inter[p] = 0
}
for e in graph.edges() {
  let ps = prefix_of(graph.node(e.src)["ip"])
  let pd = prefix_of(graph.node(e.dst)["ip"])
  let b = e.attrs["bytes"]
  if ps == pd {
    intra[ps] = intra[ps] + b
  } else {
    inter[ps] = inter[ps] + b
    inter[pd] = inter[pd] + b
  }
}
let out = {}
for p in sorted(keys(intra)) { out[p] = [intra[p], inter[p]] }
return out`,
			"pandas": prefixHelper + `let ipof = {}
for r in nodes_df.records() { ipof[r["id"]] = r["ip"] }
let intra = {}
let inter = {}
for n, ip in ipof {
  let p = prefix_of(ip)
  intra[p] = 0
  inter[p] = 0
}
for r in edges_df.records() {
  let ps = prefix_of(ipof[r["src"]])
  let pd = prefix_of(ipof[r["dst"]])
  let b = r["bytes"]
  if ps == pd {
    intra[ps] = intra[ps] + b
  } else {
    inter[ps] = inter[ps] + b
    inter[pd] = inter[pd] + b
  }
}
let out = {}
for p in sorted(keys(intra)) { out[p] = [intra[p], inter[p]] }
return out`,
			"sql": prefixHelper + `let ipof = {}
for r in db.query("SELECT id, ip FROM nodes").records() { ipof[r["id"]] = r["ip"] }
let intra = {}
let inter = {}
for n, ip in ipof {
  let p = prefix_of(ip)
  intra[p] = 0
  inter[p] = 0
}
for r in db.query("SELECT src, dst, bytes FROM edges").records() {
  let ps = prefix_of(ipof[r["src"]])
  let pd = prefix_of(ipof[r["dst"]])
  let b = r["bytes"]
  if ps == pd {
    intra[ps] = intra[ps] + b
  } else {
    inter[ps] = inter[ps] + b
    inter[pd] = inter[pd] + b
  }
}
let out = {}
for p in sorted(keys(intra)) { out[p] = [intra[p], inter[p]] }
return out`,
		},
	},
	{
		ID: "ta-h7", App: AppTraffic, Complexity: Hard,
		Text: `Detect potential scanners: nodes with out-degree at least 3 whose average bytes per outgoing edge is below 500000. Return their ids sorted.`,
		Golden: map[string]string{
			"networkx": `let out = []
for n in graph.nodes() {
  let d = graph.out_degree(n)
  if d < 3 { continue }
  let total = 0
  for nb in graph.neighbors(n) { total = total + graph.edge(n, nb)["bytes"] }
  if total / (d * 1.0) < 500000 { push(out, n) }
}
return sorted(out)`,
			"pandas": `let stats = edges_df.groupby("src").agg(["bytes", "sum", "total"], ["bytes", "count", "n"])
let out = []
for r in stats.records() {
  if r["n"] >= 3 and r["total"] / (r["n"] * 1.0) < 500000 { push(out, r["src"]) }
}
return sorted(out)`,
			"sql": `let out = []
for r in db.query("SELECT src, SUM(bytes) AS total, COUNT(*) AS n FROM edges GROUP BY src HAVING COUNT(*) >= 3 ORDER BY src").records() {
  if r["total"] / (r["n"] * 1.0) < 500000 { push(out, r["src"]) }
}
return out`,
		},
	},
	{
		ID: "ta-h8", App: AppTraffic, Complexity: Hard,
		Text: `Build the heavy-hitter subgraph: keep the top 10 percent of edges by bytes (at least one edge; ties by source then destination id) and the nodes incident to them. Return [number_of_nodes, number_of_edges] of that subgraph.`,
		Golden: map[string]string{
			"networkx": `let all = []
for e in graph.edges() { push(all, [0 - e.attrs["bytes"], e.src, e.dst]) }
let ranked = sorted(all)
let k = int(len(ranked) / 10)
if k * 10 < len(ranked) { k = k + 1 }
if k < 1 { k = 1 }
if k > len(ranked) { k = len(ranked) }
let keep = slice(ranked, 0, k)
let nodes = {}
for e in keep {
  nodes[e[1]] = true
  nodes[e[2]] = true
}
return [len(nodes), len(keep)]`,
			"pandas": `let all = []
for r in edges_df.records() { push(all, [0 - r["bytes"], r["src"], r["dst"]]) }
let ranked = sorted(all)
let k = int(len(ranked) / 10)
if k * 10 < len(ranked) { k = k + 1 }
if k < 1 { k = 1 }
if k > len(ranked) { k = len(ranked) }
let keep = slice(ranked, 0, k)
let nodes = {}
for e in keep {
  nodes[e[1]] = true
  nodes[e[2]] = true
}
return [len(nodes), len(keep)]`,
			"sql": `let all = []
for r in db.query("SELECT src, dst, bytes FROM edges").records() { push(all, [0 - r["bytes"], r["src"], r["dst"]]) }
let ranked = sorted(all)
let k = int(len(ranked) / 10)
if k * 10 < len(ranked) { k = k + 1 }
if k < 1 { k = 1 }
if k > len(ranked) { k = len(ranked) }
let keep = slice(ranked, 0, k)
let nodes = {}
for e in keep {
  nodes[e[1]] = true
  nodes[e[2]] = true
}
return [len(nodes), len(keep)]`,
		},
	},
}

// dijkstraBody: O(V^2) Dijkstra over adj of [neighbor, weight] pairs from
// h000 to h010 (shared by the pandas and SQL goldens of ta-h5).
const dijkstraBody = `let dist = {"h000": 0.0}
let prev = {}
let done = {}
while true {
  let best = nil
  let bestd = 0.0
  for v, dv in dist {
    if not contains(done, v) and (best == nil or dv < bestd) { best = v bestd = dv }
  }
  if best == nil { break }
  if best == "h010" { break }
  done[best] = true
  if contains(adj, best) {
    for p in adj[best] {
      let nd = bestd + p[1]
      if not contains(dist, p[0]) or nd < dist[p[0]] {
        dist[p[0]] = nd
        prev[p[0]] = best
      }
    }
  }
}
if not contains(dist, "h010") { return -1 }
let path = ["h010"]
let cur = "h010"
while cur != "h000" {
  cur = prev[cur]
  push(path, cur)
}
return {"path": reversed(path), "cost": dist["h010"]}`

var trafficQueries = func() []Query {
	out := append([]Query{}, trafficEasy...)
	out = append(out, trafficMedium...)
	out = append(out, trafficHard...)
	return out
}()

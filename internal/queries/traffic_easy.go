package queries

// Shared NQL preludes for the pandas and SQL backends: graph-shaped
// computations rebuild adjacency from the tabular form, exactly as a human
// expert writing a golden answer against those libraries would.

const pandasUndirectedAdj = `let adj = {}
for r in edges_df.records() {
  if not contains(adj, r["src"]) { adj[r["src"]] = [] }
  if not contains(adj, r["dst"]) { adj[r["dst"]] = [] }
  push(adj[r["src"]], r["dst"])
  push(adj[r["dst"]], r["src"])
}
`

const pandasDirectedAdj = `let adj = {}
for r in edges_df.records() {
  if not contains(adj, r["src"]) { adj[r["src"]] = [] }
  push(adj[r["src"]], r["dst"])
}
`

const sqlUndirectedAdj = `let adj = {}
for r in db.query("SELECT src, dst FROM edges").records() {
  if not contains(adj, r["src"]) { adj[r["src"]] = [] }
  if not contains(adj, r["dst"]) { adj[r["dst"]] = [] }
  push(adj[r["src"]], r["dst"])
  push(adj[r["dst"]], r["src"])
}
`

const sqlDirectedAdj = `let adj = {}
for r in db.query("SELECT src, dst FROM edges").records() {
  if not contains(adj, r["src"]) { adj[r["src"]] = [] }
  push(adj[r["src"]], r["dst"])
}
`

var trafficEasy = []Query{
	{
		ID: "ta-e1", App: AppTraffic, Complexity: Easy,
		Text: `Add a label app:production to all nodes with IP address prefix 15.76.`,
		Golden: map[string]string{
			"networkx": `for n in graph.nodes() {
  if startswith(graph.node(n)["ip"], "15.76.") {
    graph.node(n)["label"] = "app:production"
  }
}
return nil`,
			"pandas": `func lab(r) {
  if startswith(r["ip"], "15.76.") { return "app:production" }
  return nil
}
return nodes_df.mutate("label", lab)`,
			"sql": `let out = []
for r in db.query("SELECT id FROM nodes WHERE ip LIKE '15.76.%' ORDER BY id").records() {
  push(out, r["id"])
}
return {"label": "app:production", "nodes": out}`,
		},
	},
	{
		ID: "ta-e2", App: AppTraffic, Complexity: Easy,
		Text: `How many nodes are in the communication graph?`,
		Golden: map[string]string{
			"networkx": `return graph.number_of_nodes()`,
			"pandas":   `return nodes_df.num_rows()`,
			"sql":      `return db.query("SELECT COUNT(*) AS n FROM nodes").cell(0, "n")`,
		},
	},
	{
		ID: "ta-e3", App: AppTraffic, Complexity: Easy,
		Text: `How many communication edges are in the graph?`,
		Golden: map[string]string{
			"networkx": `return graph.number_of_edges()`,
			"pandas":   `return edges_df.num_rows()`,
			"sql":      `return db.query("SELECT COUNT(*) AS n FROM edges").cell(0, "n")`,
		},
	},
	{
		ID: "ta-e4", App: AppTraffic, Complexity: Easy,
		Text: `List the IP addresses of all nodes in ascending order.`,
		Golden: map[string]string{
			"networkx": `let ips = []
for n in graph.nodes() { push(ips, graph.node(n)["ip"]) }
return sorted(ips)`,
			"pandas": `return sorted(nodes_df.column("ip"))`,
			"sql": `let ips = []
for r in db.query("SELECT ip FROM nodes ORDER BY ip").records() { push(ips, r["ip"]) }
return ips`,
		},
	},
	{
		ID: "ta-e5", App: AppTraffic, Complexity: Easy,
		Text: `What is the total number of bytes transferred across all edges?`,
		Golden: map[string]string{
			"networkx": `let total = 0
for e in graph.edges() { total = total + e.attrs["bytes"] }
return total`,
			"pandas": `return edges_df.sum("bytes")`,
			"sql":    `return db.query("SELECT SUM(bytes) AS s FROM edges").cell(0, "s")`,
		},
	},
	{
		ID: "ta-e6", App: AppTraffic, Complexity: Easy,
		Text: `Which node has the highest out-degree? Break ties by choosing the smallest node id.`,
		Golden: map[string]string{
			"networkx": `let best = nil
let bestd = -1
for n in graph.nodes() {
  let d = graph.out_degree(n)
  if d > bestd { best = n bestd = d }
}
return best`,
			"pandas": `let vc = edges_df.value_counts("src")
if vc.num_rows() == 0 { return nil }
return vc.cell(0, "src")`,
			"sql": `let f = db.query("SELECT src, COUNT(*) AS n FROM edges GROUP BY src ORDER BY n DESC, src ASC LIMIT 1")
if f.num_rows() == 0 { return nil }
return f.cell(0, "src")`,
		},
	},
	{
		ID: "ta-e7", App: AppTraffic, Complexity: Easy,
		Text: `Remove all edges that carry fewer than 1000 bytes.`,
		Golden: map[string]string{
			"networkx": `let doomed = []
for e in graph.edges() {
  if e.attrs["bytes"] < 1000 { push(doomed, [e.src, e.dst]) }
}
for p in doomed { graph.remove_edge(p[0], p[1]) }
return nil`,
			"pandas": `return edges_df.filter(fn(r) => r["bytes"] >= 1000)`,
			"sql": `db.exec("DELETE FROM edges WHERE bytes < 1000")
return nil`,
		},
	},
	{
		ID: "ta-e8", App: AppTraffic, Complexity: Easy,
		Text: `Does a direct communication edge exist between h001 and h002 in either direction?`,
		Golden: map[string]string{
			"networkx": `return graph.has_edge("h001", "h002") or graph.has_edge("h002", "h001")`,
			"pandas": `let hit = edges_df.filter(fn(r) => (r["src"] == "h001" and r["dst"] == "h002") or (r["src"] == "h002" and r["dst"] == "h001"))
return hit.num_rows() > 0`,
			"sql": `let f = db.query("SELECT COUNT(*) AS n FROM edges WHERE (src = 'h001' AND dst = 'h002') OR (src = 'h002' AND dst = 'h001')")
return f.cell(0, "n") > 0`,
		},
	},
}

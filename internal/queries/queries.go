// Package queries defines the NeMoEval benchmark's query suites: 24
// network traffic analysis queries and 9 MALT network lifecycle management
// queries, each with a human-expert golden NQL program per code-generation
// backend (the paper's "golden answer selector" content). Complexity
// levels follow the paper: traffic has 8 easy / 8 medium / 8 hard, MALT has
// 3 / 3 / 3.
package queries

// Complexity levels.
const (
	Easy   = "easy"
	Medium = "medium"
	Hard   = "hard"
)

// Apps.
const (
	AppTraffic = "traffic"
	AppMALT    = "malt"
)

// Query is one benchmark query with its golden programs.
type Query struct {
	ID         string
	App        string
	Complexity string
	Text       string
	// Golden maps backend ("networkx", "pandas", "sql") to the golden NQL
	// program. Contracts differ per backend where natural (e.g. the SQL
	// backend cannot add graph attributes, so its golden returns the
	// computed mapping instead); the evaluator always compares a generated
	// program against the golden of the same backend.
	Golden map[string]string
}

// Traffic returns the 24 traffic-analysis queries.
func Traffic() []Query { return trafficQueries }

// MALT returns the 9 lifecycle-management queries.
func MALT() []Query { return maltQueries }

// All returns every query: the paper's two suites plus the diagnosis
// extension suite.
func All() []Query {
	out := make([]Query, 0, len(trafficQueries)+len(maltQueries)+len(diagnosisQueries))
	out = append(out, trafficQueries...)
	out = append(out, maltQueries...)
	out = append(out, diagnosisQueries...)
	return out
}

// ByID finds a query by its ID; ok is false when absent.
func ByID(id string) (Query, bool) {
	for _, q := range All() {
		if q.ID == id {
			return q, true
		}
	}
	return Query{}, false
}

// ByText finds a query whose natural-language text matches exactly.
func ByText(text string) (Query, bool) {
	for _, q := range All() {
		if q.Text == text {
			return q, true
		}
	}
	return Query{}, false
}

// OfComplexity filters a suite by level.
func OfComplexity(qs []Query, level string) []Query {
	var out []Query
	for _, q := range qs {
		if q.Complexity == level {
			out = append(out, q)
		}
	}
	return out
}

package nql

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// cancelSpin burns VM steps without allocating: long enough that its step
// budget outlives any test deadline, so only cancellation can stop it.
const cancelSpin = "let i = 0\nwhile i < 100000000 { i = i + 1 }\nreturn i"

func engines() map[string]ExecEngine {
	return map[string]ExecEngine{"vm": EngineVM, "interp": EngineInterp}
}

// TestCancelledContextAbortsPromptly runs the spin loop on both engines
// under an already-cancelled context: the run must abort at its first
// dispatch-quantum checkpoint (well under a second), with the cancelled
// class wrapping context.Canceled.
func TestCancelledContextAbortsPromptly(t *testing.T) {
	for name, engine := range engines() {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			in := NewInterp(Limits{Context: ctx}, nil)
			in.Engine = engine
			start := time.Now()
			_, err := in.Run(cancelSpin)
			elapsed := time.Since(start)
			var re *RuntimeError
			if !errors.As(err, &re) || re.Class != ErrCancel {
				t.Fatalf("error = %v, want %s-class RuntimeError", err, ErrCancel)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error does not wrap context.Canceled: %v", err)
			}
			if elapsed > time.Second {
				t.Fatalf("cancelled run took %v, want one dispatch quantum", elapsed)
			}
		})
	}
}

// TestContextDeadlineAbortsMidRun arms a deadline shorter than the spin
// loop on both engines: the abort must carry context.DeadlineExceeded and
// land within one quantum of the deadline, not at the loop's end.
func TestContextDeadlineAbortsMidRun(t *testing.T) {
	for name, engine := range engines() {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			in := NewInterp(Limits{Context: ctx}, nil)
			in.Engine = engine
			start := time.Now()
			_, err := in.Run(cancelSpin)
			elapsed := time.Since(start)
			var re *RuntimeError
			if !errors.As(err, &re) || re.Class != ErrCancel {
				t.Fatalf("error = %v, want %s-class RuntimeError", err, ErrCancel)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error does not wrap context.DeadlineExceeded: %v", err)
			}
			if elapsed > time.Second {
				t.Fatalf("deadline abort took %v, want prompt return", elapsed)
			}
		})
	}
}

// TestCancelMessageEngineIdentical asserts the two engines render the exact
// same error for the same cancellation — the VM/tree-walker parity contract
// extends to the cancel path.
func TestCancelMessageEngineIdentical(t *testing.T) {
	msgs := map[string]string{}
	for name, engine := range engines() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		in := NewInterp(Limits{Context: ctx}, nil)
		in.Engine = engine
		_, err := in.Run(cancelSpin)
		if err == nil {
			t.Fatalf("%s: cancelled run succeeded", name)
		}
		msgs[name] = err.Error()
	}
	if msgs["vm"] != msgs["interp"] {
		t.Fatalf("engines disagree on the cancel error:\n  vm:     %s\n  interp: %s", msgs["vm"], msgs["interp"])
	}
}

// TestNoLimitsContextStillEnforced confirms a nil Limits.Context keeps the
// historical behavior: the spin loop dies on the step budget, class limit.
func TestNoLimitsContextStillEnforced(t *testing.T) {
	in := NewInterp(Limits{MaxSteps: 10_000}, nil)
	_, err := in.Run(cancelSpin)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Class != ErrLimit {
		t.Fatalf("error = %v, want %s-class RuntimeError", err, ErrLimit)
	}
}

// TestCancelLeavesNoGoroutines is a hand-rolled leak check (goleak is not
// vendored): a burst of concurrently cancelled runs must return the
// process to its goroutine baseline — the interpreter spawns nothing that
// can outlive Run.
func TestCancelLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	const runs = 16
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i)*time.Millisecond)
			defer cancel()
			in := NewInterp(Limits{Context: ctx}, nil)
			if _, err := in.Run(cancelSpin); err == nil {
				t.Error("spin run under a millisecond deadline succeeded")
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled runs: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package nql

import (
	"fmt"
	"math"
	"strings"
)

// Value is any NQL runtime value: nil, bool, int64, float64, string, *List,
// *Map, *Closure, *Builtin, or an Object (host binding).
type Value = any

// List is a mutable ordered sequence.
type List struct {
	Items []Value
}

// NewList wraps items into a List.
func NewList(items ...Value) *List { return &List{Items: items} }

// Map is an insertion-ordered map with scalar keys (string, int64, float64,
// bool). Generated programs use maps pervasively (attribute dicts, grouped
// results), and insertion order keeps outputs deterministic.
//
// Small maps (the millions of per-row attribute dicts the evaluation matrix
// builds) stay index-free and resolve keys by linear scan; the hash index
// is built lazily once a map outgrows mapIndexThreshold.
type Map struct {
	keys  []Value
	vals  []Value
	index map[mkey]int // nil while small
}

// mapIndexThreshold is the entry count beyond which a Map switches from
// linear key scans to a hash index.
const mapIndexThreshold = 8

// NewMap returns an empty Map.
func NewMap() *Map { return &Map{} }

// NewMapCap returns an empty Map preallocated for n entries: keys and
// values share one backing allocation and no index is built until needed.
func NewMapCap(n int) *Map {
	buf := make([]Value, 2*n)
	return &Map{keys: buf[0:0:n], vals: buf[n : n : 2*n]}
}

// mkey is the comparable hash key for a Map entry. Numbers are keyed by the
// float64 bit pattern of their value, so int64 and float64 of equal
// magnitude collide (NQL semantics) while -0.0 and NaN keep their historic
// identities; building one never allocates, unlike the old formatted-string
// keys that dominated the evaluation matrix's allocation profile.
type mkey struct {
	bits uint64
	str  string
	kind uint8 // 1 string, 2 number, 3 bool
}

func mapKey(k Value) (mkey, error) {
	switch x := k.(type) {
	case string:
		return mkey{kind: 1, str: x}, nil
	case int64:
		return mkey{kind: 2, bits: math.Float64bits(float64(x))}, nil
	case float64:
		return mkey{kind: 2, bits: math.Float64bits(x)}, nil
	case bool:
		var b uint64
		if x {
			b = 1
		}
		return mkey{kind: 3, bits: b}, nil
	default:
		return mkey{}, fmt.Errorf("unhashable map key of type %s", TypeName(k))
	}
}

// find locates the entry for a hashable key. Stored keys are always
// hashable, and mapKey's zero value carries kind 0, so the error-discarding
// scan can never produce a false match.
func (m *Map) find(ks mkey) (int, bool) {
	if m.index != nil {
		i, ok := m.index[ks]
		return i, ok
	}
	for i, k := range m.keys {
		if mk, _ := mapKey(k); mk == ks {
			return i, true
		}
	}
	return 0, false
}

func (m *Map) buildIndex() {
	m.index = make(map[mkey]int, 2*len(m.keys))
	for i, k := range m.keys {
		ks, _ := mapKey(k)
		m.index[ks] = i
	}
}

// insert appends a key known to be absent.
func (m *Map) insert(ks mkey, k, v Value) {
	if m.index == nil && len(m.keys) >= mapIndexThreshold {
		m.buildIndex()
	}
	if m.index != nil {
		m.index[ks] = len(m.keys)
	}
	m.keys = append(m.keys, k)
	m.vals = append(m.vals, v)
}

// Set inserts or replaces a key.
func (m *Map) Set(k, v Value) error {
	ks, err := mapKey(k)
	if err != nil {
		return err
	}
	if i, ok := m.find(ks); ok {
		m.vals[i] = v
		return nil
	}
	m.insert(ks, k, v)
	return nil
}

// Get fetches a key; ok is false when absent.
func (m *Map) Get(k Value) (Value, bool) {
	ks, err := mapKey(k)
	if err != nil {
		return nil, false
	}
	i, ok := m.find(ks)
	if !ok {
		return nil, false
	}
	return m.vals[i], true
}

// Delete removes a key if present.
func (m *Map) Delete(k Value) {
	ks, err := mapKey(k)
	if err != nil {
		return
	}
	i, ok := m.find(ks)
	if !ok {
		return
	}
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	m.vals = append(m.vals[:i], m.vals[i+1:]...)
	if m.index == nil {
		return
	}
	delete(m.index, ks)
	for j := i; j < len(m.keys); j++ {
		js, _ := mapKey(m.keys[j])
		m.index[js] = j
	}
}

// SetBoxed inserts or replaces key, which must be an already-boxed scalar
// (string, int64, float64 or bool). Hosts that build many row maps over a
// shared column set box each name once and skip the per-insert conversion
// that used to dominate the evaluation matrix's allocations.
func (m *Map) SetBoxed(key Value, v Value) {
	ks, err := mapKey(key)
	if err != nil {
		return
	}
	if i, ok := m.find(ks); ok {
		m.vals[i] = v
		return
	}
	m.insert(ks, key, v)
}

// Len returns the entry count.
func (m *Map) Len() int { return len(m.keys) }

// Keys returns the keys in insertion order (copy).
func (m *Map) Keys() []Value { return append([]Value(nil), m.keys...) }

// Values returns the values in insertion order (copy).
func (m *Map) Values() []Value { return append([]Value(nil), m.vals...) }

// Closure is a user-defined function or lambda with its captured scope.
// The tree-walking engine fills Params/Body/Expr/Env; the VM fills proto
// and free (captured variable cells) instead. Interp.Call dispatches on
// proto, so closures from either engine are callable anywhere a function
// value flows (sorted keys, frame.apply, fed.where, ...).
type Closure struct {
	Name   string // "" for lambdas
	Params []string
	Body   []Stmt // nil for lambdas
	Expr   Expr   // lambda body
	Env    *Env

	proto  *FuncProto
	free   []*cell
	lambda *LambdaExpr // source lambda (interp closures; VM closures reach it via proto)
}

// Builtin is a native function exposed to scripts.
type Builtin struct {
	Name string
	Fn   func(in *Interp, line int, args []Value) (Value, error)
}

// Object is a host-provided value (graph, frame, database, views). Member
// returns an attribute or bound method; returning ok=false produces an
// ErrAttr runtime error, which is how "imaginary attribute" failures of
// generated code surface.
type Object interface {
	TypeName() string
	Member(name string) (Value, bool)
}

// TypeName reports the NQL-visible type of a value.
func TypeName(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "string"
	case *List:
		return "list"
	case *Map:
		return "map"
	case *Closure:
		return "function"
	case *Builtin:
		return "builtin"
	case Object:
		return x.TypeName()
	default:
		return fmt.Sprintf("%T", v)
	}
}

// Truthy implements NQL truthiness: nil/false/0/""/empty containers are
// false.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	case *List:
		return len(x.Items) > 0
	case *Map:
		return x.Len() > 0
	default:
		return true
	}
}

// Repr renders a value for display and result comparison: deterministic,
// with maps in insertion order and floats minimized.
func Repr(v Value) string {
	var sb strings.Builder
	writeRepr(&sb, v)
	return sb.String()
}

func writeRepr(sb *strings.Builder, v Value) {
	switch x := v.(type) {
	case nil:
		sb.WriteString("nil")
	case bool:
		fmt.Fprintf(sb, "%v", x)
	case int64:
		fmt.Fprintf(sb, "%d", x)
	case float64:
		if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
			fmt.Fprintf(sb, "%d.0", int64(x))
		} else {
			fmt.Fprintf(sb, "%g", x)
		}
	case string:
		fmt.Fprintf(sb, "%q", x)
	case *List:
		sb.WriteString("[")
		for i, it := range x.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeRepr(sb, it)
		}
		sb.WriteString("]")
	case *Map:
		sb.WriteString("{")
		for i, k := range x.keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeRepr(sb, k)
			sb.WriteString(": ")
			writeRepr(sb, x.vals[i])
		}
		sb.WriteString("}")
	case *Closure:
		name := x.Name
		if name == "" {
			name = "<lambda>"
		}
		fmt.Fprintf(sb, "<function %s>", name)
	case *Builtin:
		fmt.Fprintf(sb, "<builtin %s>", x.Name)
	case Object:
		if s, ok := x.(fmt.Stringer); ok {
			sb.WriteString(s.String())
		} else {
			fmt.Fprintf(sb, "<%s>", x.TypeName())
		}
	default:
		fmt.Fprintf(sb, "%v", x)
	}
}

// ToStr renders a value the way str() and print() do: like Repr but without
// quotes around top-level strings.
func ToStr(v Value) string {
	if s, ok := v.(string); ok {
		return s
	}
	return Repr(v)
}

// Env is a lexical scope chain. A frozen Env (the shared builtin scope) is
// never written: assignments that resolve to a frozen scope shadow the
// binding in the innermost non-frozen scope above it instead.
//
// The first binding of a scope lives in an inline slot (v0name/v0): loop
// bodies and single-parameter calls create one scope per iteration, and
// the inline slot spares them a map allocation each time.
type Env struct {
	v0name string
	v0     Value
	vars   map[string]Value
	parent *Env
	frozen bool
}

// NewEnv creates a scope with an optional parent. The variable map is
// allocated lazily on first Define: block and loop scopes are created per
// iteration on the interpreter's hottest path, and most never declare
// anything.
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent}
}

// Get resolves a name up the scope chain.
func (e *Env) Get(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if env.v0name == name {
			return env.v0, true
		}
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Define binds a name in this scope (shadowing outer scopes).
func (e *Env) Define(name string, v Value) {
	if e.v0name == name || (e.v0name == "" && e.vars == nil) {
		e.v0name, e.v0 = name, v
		return
	}
	if e.vars == nil {
		e.vars = make(map[string]Value, 4)
	}
	e.vars[name] = v
}

// Assign updates an existing binding, searching up the chain; ok is false
// when the name is not bound anywhere. A binding found in a frozen scope
// (the shared builtins) is shadowed in the deepest non-frozen scope visited
// before it, so concurrent interpreters never mutate shared state.
func (e *Env) Assign(name string, v Value) bool {
	last := e
	for env := e; env != nil; env = env.parent {
		if !env.frozen {
			last = env
		}
		if env.v0name == name {
			if env.frozen {
				last.Define(name, v)
			} else {
				env.v0 = v
			}
			return true
		}
		if _, ok := env.vars[name]; ok {
			if env.frozen {
				last.Define(name, v)
			} else {
				env.vars[name] = v
			}
			return true
		}
	}
	return false
}

package nql

import (
	"fmt"
	"strings"
)

// Value is any NQL runtime value: nil, bool, int64, float64, string, *List,
// *Map, *Closure, *Builtin, or an Object (host binding).
type Value = any

// List is a mutable ordered sequence.
type List struct {
	Items []Value
}

// NewList wraps items into a List.
func NewList(items ...Value) *List { return &List{Items: items} }

// Map is an insertion-ordered map with scalar keys (string, int64, float64,
// bool). Generated programs use maps pervasively (attribute dicts, grouped
// results), and insertion order keeps outputs deterministic.
type Map struct {
	keys  []Value
	index map[string]int
	vals  []Value
}

// NewMap returns an empty Map.
func NewMap() *Map { return &Map{index: map[string]int{}} }

func mapKey(k Value) (string, error) {
	switch x := k.(type) {
	case string:
		return "s:" + x, nil
	case int64:
		return fmt.Sprintf("n:%v", float64(x)), nil
	case float64:
		return fmt.Sprintf("n:%v", x), nil
	case bool:
		return fmt.Sprintf("b:%v", x), nil
	default:
		return "", fmt.Errorf("unhashable map key of type %s", TypeName(k))
	}
}

// Set inserts or replaces a key.
func (m *Map) Set(k, v Value) error {
	ks, err := mapKey(k)
	if err != nil {
		return err
	}
	if i, ok := m.index[ks]; ok {
		m.vals[i] = v
		return nil
	}
	m.index[ks] = len(m.keys)
	m.keys = append(m.keys, k)
	m.vals = append(m.vals, v)
	return nil
}

// Get fetches a key; ok is false when absent.
func (m *Map) Get(k Value) (Value, bool) {
	ks, err := mapKey(k)
	if err != nil {
		return nil, false
	}
	i, ok := m.index[ks]
	if !ok {
		return nil, false
	}
	return m.vals[i], true
}

// Delete removes a key if present.
func (m *Map) Delete(k Value) {
	ks, err := mapKey(k)
	if err != nil {
		return
	}
	i, ok := m.index[ks]
	if !ok {
		return
	}
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	m.vals = append(m.vals[:i], m.vals[i+1:]...)
	delete(m.index, ks)
	for j := i; j < len(m.keys); j++ {
		js, _ := mapKey(m.keys[j])
		m.index[js] = j
	}
}

// Len returns the entry count.
func (m *Map) Len() int { return len(m.keys) }

// Keys returns the keys in insertion order (copy).
func (m *Map) Keys() []Value { return append([]Value(nil), m.keys...) }

// Values returns the values in insertion order (copy).
func (m *Map) Values() []Value { return append([]Value(nil), m.vals...) }

// Closure is a user-defined function or lambda with its captured scope.
type Closure struct {
	Name   string // "" for lambdas
	Params []string
	Body   []Stmt // nil for lambdas
	Expr   Expr   // lambda body
	Env    *Env
}

// Builtin is a native function exposed to scripts.
type Builtin struct {
	Name string
	Fn   func(in *Interp, line int, args []Value) (Value, error)
}

// Object is a host-provided value (graph, frame, database, views). Member
// returns an attribute or bound method; returning ok=false produces an
// ErrAttr runtime error, which is how "imaginary attribute" failures of
// generated code surface.
type Object interface {
	TypeName() string
	Member(name string) (Value, bool)
}

// TypeName reports the NQL-visible type of a value.
func TypeName(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "string"
	case *List:
		return "list"
	case *Map:
		return "map"
	case *Closure:
		return "function"
	case *Builtin:
		return "builtin"
	case Object:
		return x.TypeName()
	default:
		return fmt.Sprintf("%T", v)
	}
}

// Truthy implements NQL truthiness: nil/false/0/""/empty containers are
// false.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	case *List:
		return len(x.Items) > 0
	case *Map:
		return x.Len() > 0
	default:
		return true
	}
}

// Repr renders a value for display and result comparison: deterministic,
// with maps in insertion order and floats minimized.
func Repr(v Value) string {
	var sb strings.Builder
	writeRepr(&sb, v)
	return sb.String()
}

func writeRepr(sb *strings.Builder, v Value) {
	switch x := v.(type) {
	case nil:
		sb.WriteString("nil")
	case bool:
		fmt.Fprintf(sb, "%v", x)
	case int64:
		fmt.Fprintf(sb, "%d", x)
	case float64:
		if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
			fmt.Fprintf(sb, "%d.0", int64(x))
		} else {
			fmt.Fprintf(sb, "%g", x)
		}
	case string:
		fmt.Fprintf(sb, "%q", x)
	case *List:
		sb.WriteString("[")
		for i, it := range x.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeRepr(sb, it)
		}
		sb.WriteString("]")
	case *Map:
		sb.WriteString("{")
		for i, k := range x.keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeRepr(sb, k)
			sb.WriteString(": ")
			writeRepr(sb, x.vals[i])
		}
		sb.WriteString("}")
	case *Closure:
		name := x.Name
		if name == "" {
			name = "<lambda>"
		}
		fmt.Fprintf(sb, "<function %s>", name)
	case *Builtin:
		fmt.Fprintf(sb, "<builtin %s>", x.Name)
	case Object:
		if s, ok := x.(fmt.Stringer); ok {
			sb.WriteString(s.String())
		} else {
			fmt.Fprintf(sb, "<%s>", x.TypeName())
		}
	default:
		fmt.Fprintf(sb, "%v", x)
	}
}

// ToStr renders a value the way str() and print() do: like Repr but without
// quotes around top-level strings.
func ToStr(v Value) string {
	if s, ok := v.(string); ok {
		return s
	}
	return Repr(v)
}

// Env is a lexical scope chain. A frozen Env (the shared builtin scope) is
// never written: assignments that resolve to a frozen scope shadow the
// binding in the innermost non-frozen scope above it instead.
//
// The first binding of a scope lives in an inline slot (v0name/v0): loop
// bodies and single-parameter calls create one scope per iteration, and
// the inline slot spares them a map allocation each time.
type Env struct {
	v0name string
	v0     Value
	vars   map[string]Value
	parent *Env
	frozen bool
}

// NewEnv creates a scope with an optional parent. The variable map is
// allocated lazily on first Define: block and loop scopes are created per
// iteration on the interpreter's hottest path, and most never declare
// anything.
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent}
}

// Get resolves a name up the scope chain.
func (e *Env) Get(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if env.v0name == name {
			return env.v0, true
		}
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Define binds a name in this scope (shadowing outer scopes).
func (e *Env) Define(name string, v Value) {
	if e.v0name == name || (e.v0name == "" && e.vars == nil) {
		e.v0name, e.v0 = name, v
		return
	}
	if e.vars == nil {
		e.vars = make(map[string]Value, 4)
	}
	e.vars[name] = v
}

// Assign updates an existing binding, searching up the chain; ok is false
// when the name is not bound anywhere. A binding found in a frozen scope
// (the shared builtins) is shadowed in the deepest non-frozen scope visited
// before it, so concurrent interpreters never mutate shared state.
func (e *Env) Assign(name string, v Value) bool {
	last := e
	for env := e; env != nil; env = env.parent {
		if !env.frozen {
			last = env
		}
		if env.v0name == name {
			if env.frozen {
				last.Define(name, v)
			} else {
				env.v0 = v
			}
			return true
		}
		if _, ok := env.vars[name]; ok {
			if env.frozen {
				last.Define(name, v)
			} else {
				env.vars[name] = v
			}
			return true
		}
	}
	return false
}

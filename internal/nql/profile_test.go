package nql

import "testing"

const profileSrc = `
let total = 0
let xs = []
for i in range(2000) {
	push(xs, i * 2)
}
for x in xs {
	if x % 3 == 0 {
		total = total + x
	}
}
return total
`

func TestVMProfileCollects(t *testing.T) {
	prof := NewVMProfile()
	in := NewInterp(Limits{Profile: prof}, nil)
	v, err := in.Run(profileSrc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := prof.Report()
	classes := map[string]OpClassStat{}
	var totalOps int64
	for _, c := range rep.Opcodes {
		classes[c.Class] = c
		totalOps += c.Count
	}
	for _, want := range []string{"load", "arith", "jump", "iter", "call", "store"} {
		if classes[want].Count == 0 {
			t.Fatalf("class %q never counted; report: %+v", want, rep.Opcodes)
		}
	}
	if totalOps < 2000 {
		t.Fatalf("total opcode count = %d, implausibly low for the loop program", totalOps)
	}
	builtins := map[string]BuiltinStat{}
	for _, b := range rep.Builtins {
		builtins[b.Name] = b
	}
	if got := builtins["push"].Calls; got != 2000 {
		t.Fatalf("push calls = %d, want 2000", got)
	}
	if got := builtins["range"].Calls; got != 1 {
		t.Fatalf("range calls = %d, want 1", got)
	}
	if builtins["range"].Allocs == 0 {
		t.Fatal("range charged no allocation budget in the profile")
	}
	// Same result with profiling off: the hooks must not change semantics.
	plain := NewInterp(Limits{}, nil)
	v2, err := plain.Run(profileSrc)
	if err != nil {
		t.Fatalf("unprofiled Run: %v", err)
	}
	if v != v2 {
		t.Fatalf("profiled result %v != unprofiled %v", v, v2)
	}
}

func TestTreeWalkerBuiltinProfile(t *testing.T) {
	prof := NewVMProfile()
	in := NewInterp(Limits{Profile: prof}, nil)
	in.Engine = EngineInterp
	if _, err := in.Run(`return len(sorted([3, 1, 2]))`); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := prof.Report()
	names := map[string]int64{}
	for _, b := range rep.Builtins {
		names[b.Name] = b.Calls
	}
	if names["sorted"] != 1 || names["len"] != 1 {
		t.Fatalf("tree-walker builtin profile missing calls: %v", names)
	}
	if len(rep.Opcodes) != 0 {
		t.Fatalf("tree-walker should count no opcodes, got %+v", rep.Opcodes)
	}
}

func TestVMProfileReportDeterministicOrder(t *testing.T) {
	prof := NewVMProfile()
	in := NewInterp(Limits{Profile: prof}, nil)
	if _, err := in.Run(profileSrc); err != nil {
		t.Fatalf("Run: %v", err)
	}
	a, b := prof.Report(), prof.Report()
	if len(a.Opcodes) != len(b.Opcodes) || len(a.Builtins) != len(b.Builtins) {
		t.Fatal("report lengths differ between calls")
	}
	for i := range a.Opcodes {
		if a.Opcodes[i] != b.Opcodes[i] {
			t.Fatalf("opcode order not deterministic at %d: %+v vs %+v", i, a.Opcodes[i], b.Opcodes[i])
		}
	}
	for i := range a.Builtins {
		if a.Builtins[i] != b.Builtins[i] {
			t.Fatalf("builtin order not deterministic at %d", i)
		}
	}
	if (*VMProfile)(nil).Report() != nil {
		t.Fatal("nil profile report not nil")
	}
}

package analysis

// Type is one point of the analyzer's lattice. TAny is the top ("could
// be anything"); there is no bottom — impossible code is reported, not
// typed. TNum is the join of TInt and TFloat: proven numeric, parity
// unknown. The host-object types (TFrame, TGraph, TObj) exist so global
// surfaces can be described precisely enough to flag e.g. graph+1, while
// staying permissive about interface-driven builtins (len works on any
// host object implementing Sizer).
type Type uint8

// Lattice points.
const (
	TAny Type = iota
	TNil
	TBool
	TInt
	TFloat
	TNum
	TStr
	TList
	TMap
	TFunc
	TFrame
	TGraph
	TObj
)

var typeNames = [...]string{
	TAny: "any", TNil: "nil", TBool: "bool", TInt: "int", TFloat: "float",
	TNum: "num", TStr: "str", TList: "list", TMap: "map", TFunc: "func",
	TFrame: "frame", TGraph: "graph", TObj: "object",
}

// String names the lattice point.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "any"
}

// isNumeric reports whether values of t are accepted by the runtime's
// numeric coercion (asNumber): bools count as 0/1.
func isNumeric(t Type) bool {
	switch t {
	case TInt, TFloat, TNum, TBool:
		return true
	}
	return false
}

// isScalar reports whether t is always hashable as a map key.
func isScalar(t Type) bool {
	switch t {
	case TNil, TBool, TInt, TFloat, TNum, TStr:
		return true
	}
	return false
}

// isObject reports the host-object types, whose capabilities (Sizer,
// Indexable, KeysValuer, ...) the analyzer cannot see.
func isObject(t Type) bool { return t == TFrame || t == TGraph || t == TObj }

// join is the lattice join used where control flow merges value sources
// (int ⊔ float = num, anything else mismatched = any).
func join(a, b Type) Type {
	if a == b {
		return a
	}
	if isNumeric(a) && isNumeric(b) && a != TBool && b != TBool {
		return TNum
	}
	return TAny
}

package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nql"
)

// TestGoldenDiagnostics runs the analyzer over the corpus in testdata:
// one .nql file per rule, with the expected rendered diagnostics in the
// companion .diag file (empty for programs that must analyze clean).
func TestGoldenDiagnostics(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.nql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".nql")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(strings.TrimSuffix(file, ".nql") + ".diag")
			if err != nil {
				t.Fatal(err)
			}
			prog, err := nql.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			diags := Analyze(prog, Options{Globals: map[string]Type{}})
			var got strings.Builder
			for _, d := range diags {
				got.WriteString(d.String())
				got.WriteString("\n")
			}
			if got.String() != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got.String(), want)
			}
		})
	}
}

// TestNoGlobalsSuppressesNameRules: without a known host surface, free
// names are presumed host bindings and NQ100/NQ101 stay quiet.
func TestNoGlobalsSuppressesNameRules(t *testing.T) {
	prog, err := nql.Parse("let x = foo + 1\nbar = 2\nreturn x")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Analyze(prog, Options{}) {
		if d.Code == "NQ100" || d.Code == "NQ101" {
			t.Errorf("unexpected name diagnostic without globals: %s", d)
		}
	}
}

// TestCheckNames: the per-surface pass reports only name rules, and
// resolves names against the supplied surface.
func TestCheckNames(t *testing.T) {
	prog, err := nql.Parse("let a = g\nlet b = h\nreturn [a, b, 1 + \"x\"]")
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckNames(prog, map[string]Type{"g": TGraph})
	if len(diags) != 1 {
		t.Fatalf("want exactly the NQ100 for h, got %v", diags)
	}
	if diags[0].Code != "NQ100" || !strings.Contains(diags[0].Message, `"h"`) {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}

func lambdaOf(t *testing.T, src string) *nql.LambdaExpr {
	t.Helper()
	prog, err := nql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	Analyze(prog, Options{})
	let, ok := prog.Stmts[0].(*nql.LetStmt)
	if !ok {
		t.Fatalf("first statement is %T, want let", prog.Stmts[0])
	}
	lam, ok := let.Init.(*nql.LambdaExpr)
	if !ok {
		t.Fatalf("initializer is %T, want lambda", let.Init)
	}
	return lam
}

func TestEffectStamping(t *testing.T) {
	cases := []struct {
		src                  string
		pure, total, rowOnly bool
	}{
		// Closed arithmetic over parameters: pure and total outright.
		{"let p = fn(x) => x == 1\nreturn p", true, true, false},
		// get() plus equality on a map-typed row: total only under the
		// FuncPred convention (parameter = map), i.e. RowTotal without
		// Total.
		{`let p = fn(r) => get(r, "src", "") == "a"` + "\nreturn p", true, false, true},
		// Ordered comparison against a value of unknown type can fail
		// (a string-valued field vs 0): not even row-total.
		{`let p = fn(r) => get(r, "w", 0) > 0` + "\nreturn p", true, false, false},
		// Raw indexing can miss; not even row-total.
		{`let p = fn(r) => r["w"] > 0` + "\nreturn p", true, false, false},
		// print() is a side effect.
		{"let p = fn(x) => print(x)\nreturn p", false, true, false},
		// sum() can hit non-numeric elements: pure but partial.
		{"let p = fn(x) => sum(x)\nreturn p", true, false, false},
		// Free global reads may be unbound: partial.
		{"let p = fn(x) => x + extern\nreturn p", true, false, false},
	}
	for _, c := range cases {
		lam := lambdaOf(t, c.src)
		e := lam.Effect()
		if e.Pure() != c.pure {
			t.Errorf("%q: Pure = %v, want %v", c.src, e.Pure(), c.pure)
		}
		wantRowTotal := c.total || c.rowOnly
		if got := e&nql.EffectTotal != 0; got != c.total {
			t.Errorf("%q: Total = %v, want %v", c.src, got, c.total)
		}
		if e.RowTotal() != wantRowTotal {
			t.Errorf("%q: RowTotal = %v, want %v", c.src, e.RowTotal(), wantRowTotal)
		}
	}
}

// TestClosureEffectBothEngines: the stamp must be reachable from the
// runtime closure value under both the tree-walking interpreter and the
// bytecode VM.
func TestClosureEffectBothEngines(t *testing.T) {
	src := "let p = fn(x) => x == 1\nreturn p"
	prog, err := nql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	Analyze(prog, Options{})
	for _, engine := range []nql.ExecEngine{nql.EngineInterp, nql.EngineVM} {
		in := nql.NewInterp(nql.Limits{}, nil)
		in.Engine = engine
		v, err := in.RunProgram(prog)
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		cl, ok := v.(*nql.Closure)
		if !ok {
			t.Fatalf("engine %v: result %T, want closure", engine, v)
		}
		if e := cl.Effect(); !e.Pure() || !e.RowTotal() {
			t.Errorf("engine %v: effect %b lost through the closure", engine, e)
		}
		if cl.NumParams() != 1 {
			t.Errorf("engine %v: NumParams = %d, want 1", engine, cl.NumParams())
		}
	}
}

// TestAnalyzeIdempotent: analyzing a shared program twice (the sandbox
// cache does this) must not change diagnostics or stamps.
func TestAnalyzeIdempotent(t *testing.T) {
	src := `let p = fn(r) => get(r, "src", "") == "a"` + "\nreturn p"
	prog, err := nql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	first := Analyze(prog, Options{Globals: map[string]Type{}})
	second := Analyze(prog, Options{Globals: map[string]Type{}})
	if len(first) != len(second) {
		t.Fatalf("diagnostics changed across runs: %v vs %v", first, second)
	}
	lam := prog.Stmts[0].(*nql.LetStmt).Init.(*nql.LambdaExpr)
	if e := lam.Effect(); !e.Pure() || !e.RowTotal() {
		t.Errorf("stamp lost on re-analysis: %b", e)
	}
}

func BenchmarkNQLAnalyze(b *testing.B) {
	src := `
let weights = {"a": 1, "b": 2, "c": 3}
func score(row) {
    let total = 0
    for k, v in row {
        if contains(weights, k) {
            total = total + v * get(weights, k, 1)
        }
    }
    return total
}
let pred = fn(r) => get(r, "w", 0) > 1 and get(r, "src", "") != "lo"
let out = []
for i in range(0, 100) {
    push(out, score({"a": i, "w": i % 7}))
}
return [out, pred]
`
	prog, err := nql.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(prog, Options{Globals: map[string]Type{}})
	}
}

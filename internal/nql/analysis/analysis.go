// Package analysis is the NQL semantic analyzer: a static pass over the
// parsed AST that finds the failures a program is guaranteed (or very
// likely) to hit at runtime, before anything pays to execute it. It is
// the prepare step of the parse → prepare → execute pipeline: the sandbox
// caches its diagnostics next to the compiled program (sandbox.Vet),
// netqueryd rejects error-bearing programs before admission control
// spends tenant quota, nqlvet runs it over the golden-program registry in
// CI, and the federated planner consumes its effect proofs to widen the
// pipelined executor's safety classification.
//
// # Rule catalogue
//
// Errors (the program will fail at runtime if the flagged code runs):
//
//	NQ001  syntax error (reported by callers that wrap the parser)
//	NQ100  undefined name — resolves to no binding, builtin, or host global
//	NQ101  assignment to an undeclared name
//	NQ200  wrong argument count for a builtin or known function
//	NQ201  call of a value that is provably not callable
//	NQ210  builtin argument has a provably wrong type
//	NQ300  operator applied to provably incompatible operand types
//	NQ301  division or modulo by a constant zero
//	NQ302  provably invalid index, map key, or attribute access
//
// Warnings (suspicious but not definitely fatal; the eval matrix treats
// every diagnostic as a warning so its tables stay byte-identical):
//
//	NQ102  unused binding
//	NQ103  binding shadows an earlier binding or a builtin
//	NQ110  duplicate parameter name
//	NQ400  unreachable statement
//	NQ401  break/continue outside any loop (ends the function)
//	NQ402  pure expression statement whose result is discarded
//	NQ403  duplicate key in a map literal
//
// Name-resolution rules fire only when the caller supplies the host
// global surface (Options.Globals): without it a free name might be a
// legitimate host binding. Everything else is surface-independent.
//
// # Type lattice
//
// Forward inference runs over a small lattice: any ⊐ {nil, bool, int,
// float, num, str, list, map, func, frame, graph, object}, with num the
// join of int and float. Precision is deliberately conservative — a
// binding keeps its initializer's type only when no assignment anywhere
// in the program reassigns that name, so every reported type is a proof,
// and every type-based error diagnostic is a guaranteed runtime failure
// (should the code execute; code behind a never-true branch is still
// flagged, the same trade every prepare-time checker makes).
//
// # Effects and the FuncPred NoErr contract
//
// Alongside diagnostics the analyzer computes, per expression, whether it
// is pure (no print, no mutation, no call of anything but provably-pure
// builtins) and total (cannot fail). Lambda expressions get the result
// stamped on the AST (nql.LambdaExpr.SetEffect): EffectPure, EffectTotal,
// and EffectRowTotal — totality under the assumption every parameter is a
// map, which is the calling convention of federate.FuncPred. A predicate
// built from a pure, row-total, single-parameter lambda can be marked
// FuncPred.NoErr: calling it more times, fewer times, or at different
// moments than the legacy executor is unobservable, which is exactly the
// divergence the pipeline classifier's FuncPred rule guards against.
// Totality always excludes the sandbox's own resource budget (step,
// allocation, wall-clock and cancellation limits): those are accounted to
// the run as a whole, and both executors already share them.
package analysis

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/nql"
)

// Severity grades a diagnostic.
type Severity int

// Diagnostic severities.
const (
	Warn Severity = iota
	Error
)

// String names the severity for rendering.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders severities as their names ("error", "warning") so
// API responses are self-describing rather than exposing enum ordinals.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the names MarshalJSON produces.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"error"`:
		*s = Error
	case `"warning"`:
		*s = Warn
	default:
		return fmt.Errorf("analysis: unknown severity %s", b)
	}
	return nil
}

// Diagnostic is one analyzer finding, positioned by source line.
type Diagnostic struct {
	Line     int      `json:"line"`
	Severity Severity `json:"severity"`
	Code     string   `json:"code"`
	Message  string   `json:"message"`
}

// / String renders "line N: error[NQ100] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("line %d: %s[%s] %s", d.Line, d.Severity, d.Code, d.Message)
}

// SyntaxDiagnostic renders a parse failure as the NQ001 diagnostic, so
// callers that vet source text can report syntax and semantic findings
// through one channel.
func SyntaxDiagnostic(err error) Diagnostic {
	line := 0
	var se *nql.SyntaxError
	if errors.As(err, &se) {
		line = se.Line
	}
	return Diagnostic{Line: line, Severity: Error, Code: "NQ001", Message: err.Error()}
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Options configures an analysis pass.
type Options struct {
	// Globals is the host binding surface the program will run against,
	// with the static type of each binding (TAny when unknown). nil means
	// "surface unknown": name-resolution rules (NQ100, NQ101) are
	// suppressed, everything else still runs.
	Globals map[string]Type
}

// Analyze runs the semantic analyzer over a parsed program and returns
// its diagnostics ordered by line. As a side effect it stamps every
// lambda expression with its effect summary (see nql.Effect); the stamp
// is written atomically, so analyzing a program already shared through
// the sandbox cache is safe.
func Analyze(prog *nql.Program, opts Options) []Diagnostic {
	a := newAnalyzer(opts.Globals, false)
	a.run(prog)
	sort.SliceStable(a.diags, func(i, j int) bool { return a.diags[i].Line < a.diags[j].Line })
	return a.diags
}

// CheckNames runs only the name-resolution rules (NQ100, NQ101) against a
// concrete host surface. It is the cheap per-surface complement to a
// cached surface-independent Analyze: netqueryd vets each request's
// program against its backend's globals without re-deriving (or
// re-stamping) anything else.
func CheckNames(prog *nql.Program, globals map[string]Type) []Diagnostic {
	a := newAnalyzer(globals, true)
	a.run(prog)
	sort.SliceStable(a.diags, func(i, j int) bool { return a.diags[i].Line < a.diags[j].Line })
	return a.diags
}

func newAnalyzer(globals map[string]Type, namesOnly bool) *analyzer {
	return &analyzer{
		globals:    globals,
		namesOnly:  namesOnly,
		reassigned: map[string]bool{},
		topDecls:   map[string]bool{},
	}
}

func (a *analyzer) run(prog *nql.Program) {
	a.prepass(prog.Stmts)
	a.pushScope(true)
	a.stmts(prog.Stmts)
	a.popScope()
}

// --- analyzer state ------------------------------------------------------

// binding is one declared name in scope.
type binding struct {
	name   string
	line   int
	kind   string // "let", "func", "param", "loop variable"
	typ    Type
	params int // parameter count for func-valued bindings, -1 unknown
	used   bool
}

// scope is one lexical block; fn marks function boundaries (the block
// holding the parameters).
type scope struct {
	fn    bool
	binds []*binding
}

// eff tracks purity/totality through expression checking.
type eff struct{ pure, total bool }

func (e eff) and(o eff) eff { return eff{e.pure && o.pure, e.total && o.total} }

var (
	pureTotal   = eff{pure: true, total: true}
	purePartial = eff{pure: true, total: false}
	opaque      = eff{pure: false, total: false}
)

type analyzer struct {
	diags     []Diagnostic
	globals   map[string]Type
	namesOnly bool // CheckNames mode: only NQ100/NQ101, no stamping
	mute      bool // second (row-typed) lambda pass: no diagnostics

	// reassigned holds every name that is the target of an assignment
	// anywhere in the program (collected by prepass, keyed by name alone):
	// such names never keep a precise type or builtin identity.
	reassigned map[string]bool
	// topDecls holds names declared by top-level let/func statements:
	// inside function bodies these resolve at call time, so a textually
	// later declaration is not an undefined reference.
	topDecls map[string]bool

	scopes    []*scope
	inFunc    int // nesting depth of function/lambda bodies
	loopDepth int
}

func (a *analyzer) report(line int, sev Severity, code, format string, args ...any) {
	if a.mute {
		return
	}
	if a.namesOnly && code != "NQ100" && code != "NQ101" {
		return
	}
	a.diags = append(a.diags, Diagnostic{Line: line, Severity: sev, Code: code,
		Message: fmt.Sprintf(format, args...)})
}

func (a *analyzer) pushScope(fn bool) { a.scopes = append(a.scopes, &scope{fn: fn}) }

func (a *analyzer) popScope() {
	s := a.scopes[len(a.scopes)-1]
	a.scopes = a.scopes[:len(a.scopes)-1]
	for _, b := range s.binds {
		if !b.used && (b.kind == "let" || b.kind == "func") && b.name != "_" {
			a.report(b.line, Warn, "NQ102", "%s binding %q is never used", b.kind, b.name)
		}
	}
}

// declare adds a binding to the innermost scope, warning when it shadows
// an earlier binding or a builtin.
func (a *analyzer) declare(b *binding) {
	// Parameters are exempt from shadow warnings: naming a lambda's
	// parameter after the value it maps over is idiomatic, not a hazard.
	if b.kind != "param" {
		if prev := a.lookup(b.name); prev != nil {
			a.report(b.line, Warn, "NQ103", "%q shadows the %s declared on line %d", b.name, prev.kind, prev.line)
		} else if _, isBuiltin := builtinSpecs[b.name]; isBuiltin {
			a.report(b.line, Warn, "NQ103", "%q shadows the builtin of the same name", b.name)
		}
	}
	s := a.scopes[len(a.scopes)-1]
	s.binds = append(s.binds, b)
}

// lookup resolves a name lexically, latest declaration first, crossing
// function boundaries (closures capture their enclosing scopes in both
// engines).
func (a *analyzer) lookup(name string) *binding {
	for i := len(a.scopes) - 1; i >= 0; i-- {
		binds := a.scopes[i].binds
		for j := len(binds) - 1; j >= 0; j-- {
			if binds[j].name == name {
				return binds[j]
			}
		}
	}
	return nil
}

// prepass collects assignment targets and top-level declarations before
// the main walk; both are name-keyed and deliberately scope-blind, which
// only ever costs precision, never soundness.
func (a *analyzer) prepass(stmts []nql.Stmt) {
	for _, st := range stmts {
		if l, ok := st.(*nql.LetStmt); ok {
			a.topDecls[l.Name] = true
		}
		if f, ok := st.(*nql.FuncStmt); ok {
			a.topDecls[f.Name] = true
		}
	}
	var walkStmts func([]nql.Stmt)
	var walkExpr func(nql.Expr)
	walkStmts = func(ss []nql.Stmt) {
		for _, st := range ss {
			switch s := st.(type) {
			case *nql.LetStmt:
				walkExpr(s.Init)
			case *nql.AssignStmt:
				if id, ok := s.Target.(*nql.Ident); ok {
					a.reassigned[id.Name] = true
				} else {
					walkExpr(s.Target)
				}
				walkExpr(s.Value)
			case *nql.ExprStmt:
				walkExpr(s.X)
			case *nql.IfStmt:
				walkExpr(s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case *nql.ForStmt:
				walkExpr(s.Iter)
				walkStmts(s.Body)
			case *nql.WhileStmt:
				walkExpr(s.Cond)
				walkStmts(s.Body)
			case *nql.FuncStmt:
				walkStmts(s.Body)
			case *nql.ReturnStmt:
				if s.Value != nil {
					walkExpr(s.Value)
				}
			}
		}
	}
	walkExpr = func(e nql.Expr) {
		switch x := e.(type) {
		case *nql.ListLit:
			for _, it := range x.Items {
				walkExpr(it)
			}
		case *nql.MapLit:
			for i := range x.Keys {
				walkExpr(x.Keys[i])
				walkExpr(x.Values[i])
			}
		case *nql.BinaryExpr:
			walkExpr(x.Left)
			walkExpr(x.Right)
		case *nql.UnaryExpr:
			walkExpr(x.X)
		case *nql.IndexExpr:
			walkExpr(x.X)
			walkExpr(x.Index)
		case *nql.AttrExpr:
			walkExpr(x.X)
		case *nql.CallExpr:
			walkExpr(x.Fn)
			for _, arg := range x.Args {
				walkExpr(arg)
			}
		case *nql.LambdaExpr:
			walkExpr(x.Body)
		}
	}
	walkStmts(stmts)
}

// --- statements ----------------------------------------------------------

func (a *analyzer) block(stmts []nql.Stmt) {
	a.pushScope(false)
	a.stmts(stmts)
	a.popScope()
}

func (a *analyzer) stmts(stmts []nql.Stmt) {
	terminated := false
	for _, st := range stmts {
		if terminated {
			a.report(st.Pos(), Warn, "NQ400", "unreachable statement")
			terminated = false // one report per dead region
		}
		a.stmt(st)
		switch st.(type) {
		case *nql.ReturnStmt, *nql.BreakStmt, *nql.ContinueStmt:
			terminated = true
		}
	}
}

func (a *analyzer) stmt(st nql.Stmt) {
	switch s := st.(type) {
	case *nql.LetStmt:
		t, _ := a.expr(s.Init)
		b := &binding{name: s.Name, line: s.Line, kind: "let", typ: TAny, params: -1}
		if !a.reassigned[s.Name] {
			b.typ = t
			if lam, ok := s.Init.(*nql.LambdaExpr); ok {
				b.params = len(lam.Params)
			}
		}
		a.declare(b)
	case *nql.AssignStmt:
		a.expr(s.Value)
		switch t := s.Target.(type) {
		case *nql.Ident:
			if b := a.lookup(t.Name); b != nil {
				_ = b // rebinding a declared name; typ already widened by prepass
				return
			}
			// Assignment to a free name stores to a global, which must
			// already be bound (a host binding, or a top-level declaration
			// executed before this statement runs — always true for code
			// inside functions, never for textually-earlier top-level code).
			if a.globals == nil {
				return
			}
			if _, ok := a.globals[t.Name]; ok {
				return
			}
			if a.inFunc > 0 && a.topDecls[t.Name] {
				return
			}
			a.report(t.Line, Error, "NQ101", "assignment to undeclared name %q (use let)", t.Name)
		default:
			a.expr(s.Target)
		}
	case *nql.ExprStmt:
		_, e := a.expr(s.X)
		if e.pure && e.total {
			a.report(s.Line, Warn, "NQ402", "expression result is never used")
		}
	case *nql.IfStmt:
		a.expr(s.Cond)
		a.block(s.Then)
		if s.Else != nil {
			a.block(s.Else)
		}
	case *nql.ForStmt:
		t, _ := a.expr(s.Iter)
		switch t {
		case TNil, TBool, TInt, TFloat, TNum, TFunc:
			a.report(s.Line, Error, "NQ300", "cannot iterate over %s", t)
		case TStr:
			if s.Var2 != "" {
				a.report(s.Line, Error, "NQ300", "cannot unpack string iteration into two variables")
			}
		}
		a.pushScope(false)
		vt := TAny
		if t == TStr && !a.reassigned[s.Var] {
			vt = TStr
		}
		a.declare(&binding{name: s.Var, line: s.Line, kind: "loop variable", typ: vt, params: -1, used: true})
		if s.Var2 != "" {
			a.declare(&binding{name: s.Var2, line: s.Line, kind: "loop variable", typ: TAny, params: -1, used: true})
		}
		a.loopDepth++
		a.stmts(s.Body)
		a.loopDepth--
		a.popScope()
	case *nql.WhileStmt:
		a.expr(s.Cond)
		a.loopDepth++
		a.block(s.Body)
		a.loopDepth--
	case *nql.FuncStmt:
		// Declare before the body: recursion resolves the name at call
		// time, when the declaration has already executed.
		fb := &binding{name: s.Name, line: s.Line, kind: "func", typ: TAny, params: -1}
		if !a.reassigned[s.Name] {
			fb.typ, fb.params = TFunc, len(s.Params)
		}
		a.declare(fb)
		a.analyzeFunction(s.Params, s.Body, nil, s.Line)
	case *nql.ReturnStmt:
		if s.Value != nil {
			a.expr(s.Value)
		}
	case *nql.BreakStmt:
		if a.loopDepth == 0 {
			a.report(s.Line, Warn, "NQ401", "break outside a loop ends the function")
		}
	case *nql.ContinueStmt:
		if a.loopDepth == 0 {
			a.report(s.Line, Warn, "NQ401", "continue outside a loop ends the function")
		}
	}
}

// analyzeFunction checks a function or lambda body in a fresh function
// scope and returns the body's effect. paramType types every parameter
// (TAny for the primary pass).
func (a *analyzer) analyzeFunction(params []string, body []nql.Stmt, expr nql.Expr, line int) eff {
	return a.analyzeFunctionAs(params, body, expr, line, TAny)
}

func (a *analyzer) analyzeFunctionAs(params []string, body []nql.Stmt, expr nql.Expr, line int, paramType Type) eff {
	a.pushScope(true)
	seen := map[string]bool{}
	for _, p := range params {
		if seen[p] {
			a.report(line, Warn, "NQ110", "duplicate parameter %q", p)
		}
		seen[p] = true
		pt := paramType
		if a.reassigned[p] {
			pt = TAny
		}
		a.declare(&binding{name: p, line: line, kind: "param", typ: pt, params: -1, used: true})
	}
	a.inFunc++
	savedLoops := a.loopDepth
	a.loopDepth = 0
	var e eff
	if expr != nil {
		_, e = a.expr(expr)
	} else {
		a.stmts(body)
		e = opaque // statement bodies are not effect-analyzed
	}
	a.loopDepth = savedLoops
	a.inFunc--
	a.popScope()
	return e
}

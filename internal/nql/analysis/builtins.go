package analysis

import (
	"strconv"

	"repro/internal/nql"
)

// bspec describes one builtin's call shape for static checking: arity
// bounds, per-argument acceptable types, and whether calling it is a side
// effect in itself. Purity of fn-taking builtins (map, filter, sorted
// with a key) is handled by builtinCallsFn; totality — the conditions
// under which the call provably cannot fail — lives in builtinTotal,
// derived case by case from the runtime implementations in
// internal/nql/builtins.go.
type bspec struct {
	min, max int    // max < 0: unbounded
	arity    string // human form for NQ200 messages, e.g. "1 or 2"
	impure   bool   // the builtin itself mutates state or writes output
	args     []argspec
}

type argspec struct {
	kinds []Type // empty: any value accepted
	desc  string
}

var (
	numArg    = argspec{[]Type{TInt, TFloat, TNum, TBool}, "a number"}
	strictNum = argspec{[]Type{TInt, TFloat, TNum}, "a number"}
	intArg    = argspec{[]Type{TInt}, "an int"}
	strArg    = argspec{[]Type{TStr}, "a string"}
	listArg   = argspec{[]Type{TList}, "a list"}
	mapArg    = argspec{[]Type{TMap}, "a map"}
	fnArg     = argspec{[]Type{TFunc}, "a function"}
	anyArg    = argspec{nil, ""}
	sizedArg  = argspec{[]Type{TStr, TList, TMap, TFrame, TGraph, TObj}, "a string, list or map"}
	keyedArg  = argspec{[]Type{TMap, TFrame, TGraph, TObj}, "a map"}
	elemsArg  = argspec{[]Type{TList, TMap, TStr}, "a list, map or string"}
	sliceArg  = argspec{[]Type{TList, TStr}, "a list or string"}
	intoArg   = argspec{[]Type{TInt, TFloat, TNum, TBool, TStr}, "a number, bool or string"}
	floatArg  = argspec{[]Type{TInt, TFloat, TNum, TStr}, "a number or string"}
	keyOrRev  = argspec{[]Type{TFunc, TBool}, "a key function or bool"}
	boolArg   = argspec{[]Type{TBool}, "a bool"}
)

var builtinSpecs = map[string]*bspec{
	"print":      {0, -1, "any number of", true, nil},
	"len":        {1, 1, "1", false, []argspec{sizedArg}},
	"type":       {1, 1, "1", false, []argspec{anyArg}},
	"str":        {1, 1, "1", false, []argspec{anyArg}},
	"int":        {1, 1, "1", false, []argspec{intoArg}},
	"float":      {1, 1, "1", false, []argspec{floatArg}},
	"abs":        {1, 1, "1", false, []argspec{strictNum}},
	"round":      {1, 2, "1 or 2", false, []argspec{numArg, intArg}},
	"range":      {1, 3, "1-3", false, []argspec{intArg, intArg, intArg}},
	"push":       {2, 2, "2", true, []argspec{listArg, anyArg}},
	"pop":        {1, 1, "1", true, []argspec{listArg}},
	"sum":        {1, 1, "1", false, []argspec{listArg}},
	"min":        {1, -1, "1+", false, nil}, // 1-arg form needs a list: checked in builtinCall
	"max":        {1, -1, "1+", false, nil},
	"sorted":     {1, 3, "1-3", false, []argspec{listArg, keyOrRev, boolArg}},
	"reversed":   {1, 1, "1", false, []argspec{listArg}},
	"keys":       {1, 1, "1", false, []argspec{keyedArg}},
	"values":     {1, 1, "1", false, []argspec{keyedArg}},
	"items":      {1, 1, "1", false, []argspec{mapArg}},
	"get":        {2, 3, "2 or 3", false, []argspec{mapArg, anyArg, anyArg}},
	"setdefault": {3, 3, "3", true, []argspec{mapArg, anyArg, anyArg}},
	"delete":     {2, 2, "2", true, []argspec{mapArg, anyArg}},
	"contains":   {2, 2, "2", false, []argspec{elemsArg, anyArg}},
	"upper":      {1, 1, "1", false, []argspec{strArg}},
	"lower":      {1, 1, "1", false, []argspec{strArg}},
	"strip":      {1, 1, "1", false, []argspec{strArg}},
	"startswith": {2, 2, "2", false, []argspec{strArg, strArg}},
	"endswith":   {2, 2, "2", false, []argspec{strArg, strArg}},
	"split":      {2, 2, "2", false, []argspec{strArg, strArg}},
	"replace":    {3, 3, "3", false, []argspec{strArg, strArg, strArg}},
	"join":       {2, 2, "2", false, []argspec{strArg, listArg}},
	"slice":      {3, 3, "3", false, []argspec{sliceArg, intArg, intArg}},
	"map":        {2, 2, "2", false, []argspec{listArg, fnArg}},
	"filter":     {2, 2, "2", false, []argspec{listArg, fnArg}},
	"unique":     {1, 1, "1", false, []argspec{listArg}},
	"zip":        {2, 2, "2", false, []argspec{listArg, listArg}},
	"enumerate":  {1, 1, "1", false, []argspec{listArg}},
	"sqrt":       {1, 1, "1", false, []argspec{numArg}},
	"pow":        {2, 2, "2", false, []argspec{numArg, numArg}},
}

// builtinCallsFn reports builtins that invoke a caller-supplied function,
// whose purity and totality the analyzer must then take from that
// function rather than from the table (conservatively: opaque).
func builtinCallsFn(name string, at []Type) bool {
	switch name {
	case "map", "filter":
		return true
	case "sorted":
		// sorted(l, key) calls key; sorted(l, true) does not.
		return len(at) >= 2 && at[1] != TBool
	}
	return false
}

// builtinTotal reports whether a well-arity call to name provably cannot
// fail given the argument types (and, where the runtime checks values,
// literal arguments). Resource-budget aborts (step/alloc/wall-clock) are
// excluded from totality by contract — see the package comment.
func builtinTotal(name string, x *nql.CallExpr, at []Type) bool {
	n := len(at)
	a0 := TAny
	if n > 0 {
		a0 = at[0]
	}
	switch name {
	case "print", "type", "str":
		return true
	case "len":
		return a0 == TStr || a0 == TList || a0 == TMap
	case "int":
		return isNumeric(a0) // string form can fail to parse
	case "float":
		return a0 == TInt || a0 == TFloat || a0 == TNum
	case "abs":
		return a0 == TInt || a0 == TFloat || a0 == TNum
	case "round":
		return isNumeric(a0) && (n == 1 || at[1] == TInt)
	case "range":
		for _, t := range at {
			if t != TInt {
				return false
			}
		}
		return n < 3 || provenNonZeroInt(x.Args[2])
	case "push":
		return a0 == TList
	case "reversed", "unique", "enumerate":
		return a0 == TList
	case "keys", "values", "items":
		return a0 == TMap
	case "get", "delete":
		return a0 == TMap
	case "setdefault":
		return a0 == TMap && n == 3 && isHashable(at[1])
	case "contains":
		switch a0 {
		case TList, TMap:
			return true
		case TStr:
			return n == 2 && at[1] == TStr
		}
		return false
	case "upper", "lower", "strip":
		return a0 == TStr
	case "startswith", "endswith", "split":
		return a0 == TStr && n == 2 && at[1] == TStr
	case "replace":
		return n == 3 && at[0] == TStr && at[1] == TStr && at[2] == TStr
	case "join":
		// Elements must be strings; not provable from the list type.
		return false
	case "slice":
		return n == 3 && (a0 == TList || a0 == TStr) && at[1] == TInt && at[2] == TInt
	case "zip":
		return n == 2 && at[0] == TList && at[1] == TList
	case "sqrt":
		f, ok := numLit(x.Args[0])
		return ok && f >= 0
	case "pow":
		return n == 2 && isNumeric(at[0]) && isNumeric(at[1])
	}
	// sum, min, max, sorted, pop, map, filter: failure depends on values.
	return false
}

// builtinResult gives the call's result type when the table knows it.
func builtinResult(name string, at []Type, n int) Type {
	switch name {
	case "print", "delete":
		return TNil
	case "len", "int":
		return TInt
	case "type", "str", "upper", "lower", "strip", "replace", "join":
		return TStr
	case "float", "sqrt", "pow":
		return TFloat
	case "abs":
		if n == 1 && (at[0] == TInt || at[0] == TFloat) {
			return at[0]
		}
		return TNum
	case "round":
		if n == 1 {
			return TInt
		}
		return TNum
	case "sum":
		return TNum
	case "range", "sorted", "reversed", "keys", "values", "items", "split",
		"map", "filter", "unique", "zip", "enumerate", "push":
		return TList
	case "contains", "startswith", "endswith":
		return TBool
	case "slice":
		if n > 0 && at[0] == TStr {
			return TStr
		}
		if n > 0 && at[0] == TList {
			return TList
		}
	}
	return TAny
}

func itoa(n int64) string   { return strconv.FormatInt(n, 10) }
func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

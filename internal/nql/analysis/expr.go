package analysis

import "repro/internal/nql"

// expr type-checks one expression, emits diagnostics for provable
// failures, and returns the expression's inferred type plus its effect
// (purity and totality) — the inputs to lambda effect stamping.
func (a *analyzer) expr(e nql.Expr) (Type, eff) {
	switch x := e.(type) {
	case *nql.Ident:
		return a.resolveRead(x)
	case *nql.IntLit:
		return TInt, pureTotal
	case *nql.FloatLit:
		return TFloat, pureTotal
	case *nql.StringLit:
		return TStr, pureTotal
	case *nql.BoolLit:
		return TBool, pureTotal
	case *nql.NilLit:
		return TNil, pureTotal
	case *nql.ListLit:
		all := pureTotal
		for _, it := range x.Items {
			_, e := a.expr(it)
			all = all.and(e)
		}
		return TList, all
	case *nql.MapLit:
		return a.mapLit(x)
	case *nql.UnaryExpr:
		t, e := a.expr(x.X)
		if x.Op == "not" {
			return TBool, e
		}
		// Unary minus: strictly int64/float64 at runtime (bools are not
		// negatable, unlike in binary arithmetic).
		switch t {
		case TInt, TFloat, TNum:
			return t, e
		case TAny:
			return TAny, eff{e.pure, false}
		default:
			a.report(x.Line, Error, "NQ300", "cannot negate %s", t)
			return TAny, eff{e.pure, false}
		}
	case *nql.BinaryExpr:
		return a.binary(x)
	case *nql.IndexExpr:
		return a.index(x)
	case *nql.AttrExpr:
		t, e := a.expr(x.X)
		switch t {
		case TNil, TBool, TInt, TFloat, TNum, TStr, TList, TFunc:
			a.report(x.Line, Error, "NQ302", "%s has no attributes", t)
		}
		return TAny, eff{e.pure, false}
	case *nql.CallExpr:
		return a.call(x)
	case *nql.LambdaExpr:
		a.lambda(x)
		return TFunc, pureTotal
	default:
		return TAny, opaque
	}
}

func (a *analyzer) resolveRead(id *nql.Ident) (Type, eff) {
	if b := a.lookup(id.Name); b != nil {
		b.used = true
		return b.typ, pureTotal
	}
	if a.globals != nil {
		if t, ok := a.globals[id.Name]; ok {
			if a.reassigned[id.Name] {
				t = TAny
			}
			return t, pureTotal
		}
	}
	if _, ok := builtinSpecs[id.Name]; ok {
		// Builtins are pre-bound globals; a program-level rebinding
		// (tracked by the prepass) erases what we know about the value
		// but the read itself stays total.
		if a.reassigned[id.Name] {
			return TAny, pureTotal
		}
		return TFunc, pureTotal
	}
	if a.inFunc > 0 && a.topDecls[id.Name] {
		// Free variable of a function body naming a top-level
		// declaration: bound by call time in the usual declare-then-call
		// order, so not an undefined reference — but not provably bound
		// either.
		return TAny, purePartial
	}
	if a.globals != nil {
		a.report(id.Line, Error, "NQ100", "undefined name %q", id.Name)
	}
	// Unknown surface (or just reported): reading a free global may fail.
	return TAny, purePartial
}

func (a *analyzer) mapLit(x *nql.MapLit) (Type, eff) {
	seen := map[string]int{}
	all := pureTotal
	for i := range x.Keys {
		kt, ke := a.expr(x.Keys[i])
		_, ve := a.expr(x.Values[i])
		all = all.and(ke).and(ve)
		if kt == TNil || kt == TList || kt == TMap || kt == TFunc || isObject(kt) {
			a.report(x.Keys[i].Pos(), Error, "NQ302", "unhashable map key of type %s", kt)
		}
		if !isHashable(kt) {
			all.total = false
		}
		if repr, ok := litKeyRepr(x.Keys[i]); ok {
			if first, dup := seen[repr]; dup {
				a.report(x.Keys[i].Pos(), Warn, "NQ403", "duplicate map key %s (first used on line %d)", repr, first)
			} else {
				seen[repr] = x.Keys[i].Pos()
			}
		}
	}
	return TMap, all
}

// cmpClass buckets types by CompareNQL compatibility.
type cmpClass int

const (
	cmpUnknown cmpClass = iota // any: nothing provable
	cmpNum                     // numeric coercion (bool included)
	cmpStr
	cmpList
	cmpNone // nil, map, func, host objects: never ordered
)

func classOf(t Type) cmpClass {
	switch {
	case t == TAny:
		return cmpUnknown
	case isNumeric(t):
		return cmpNum
	case t == TStr:
		return cmpStr
	case t == TList:
		return cmpList
	default:
		return cmpNone
	}
}

func (a *analyzer) binary(x *nql.BinaryExpr) (Type, eff) {
	lt, le := a.expr(x.Left)
	rt, re := a.expr(x.Right)
	both := le.and(re)
	switch x.Op {
	case "and", "or", "==", "!=":
		// Logic operators truthy-test and equality compares any pair of
		// values; none of the four can fail.
		return TBool, both
	case "<", "<=", ">", ">=":
		lc, rc := classOf(lt), classOf(rt)
		if lc == cmpNone || rc == cmpNone || (lc != cmpUnknown && rc != cmpUnknown && lc != rc) {
			a.report(x.Line, Error, "NQ300", "cannot compare %s and %s", lt, rt)
			return TBool, eff{both.pure, false}
		}
		// List comparisons recurse into elements and may fail there.
		total := both.total && lc == rc && (lc == cmpNum || lc == cmpStr)
		return TBool, eff{both.pure, total}
	case "in":
		switch {
		case rt == TNil || rt == TFunc || isNumeric(rt) || isObject(rt):
			a.report(x.Line, Error, "NQ300", "'in' not supported for %s", rt)
			return TBool, eff{both.pure, false}
		case rt == TStr:
			if lt != TAny && lt != TStr {
				a.report(x.Line, Error, "NQ300", "'in <string>' requires a string operand, got %s", lt)
			}
			return TBool, eff{both.pure, both.total && lt == TStr}
		case rt == TList, rt == TMap:
			// List membership uses total equality; map membership swallows
			// unhashable probe keys.
			return TBool, both
		default:
			return TBool, eff{both.pure, false}
		}
	case "+":
		switch {
		case lt == TAny || rt == TAny:
			return TAny, eff{both.pure, false}
		case lt == TStr && rt == TStr:
			return TStr, both
		case lt == TList && rt == TList:
			return TList, both
		case isNumeric(lt) && isNumeric(rt):
			return arithType(lt, rt), both
		default:
			a.report(x.Line, Error, "NQ300", "unsupported operand types for +: %s and %s", lt, rt)
			return TAny, eff{both.pure, false}
		}
	case "-", "*":
		if lt != TAny && !isNumeric(lt) || rt != TAny && !isNumeric(rt) {
			a.report(x.Line, Error, "NQ300", "unsupported operand types for %s: %s and %s", x.Op, lt, rt)
			return TAny, eff{both.pure, false}
		}
		if isNumeric(lt) && isNumeric(rt) {
			return arithType(lt, rt), both
		}
		return TAny, eff{both.pure, false}
	case "/":
		if lt != TAny && !isNumeric(lt) || rt != TAny && !isNumeric(rt) {
			a.report(x.Line, Error, "NQ300", "unsupported operand types for /: %s and %s", lt, rt)
			return TFloat, eff{both.pure, false}
		}
		if f, ok := numLit(x.Right); ok && f == 0 {
			a.report(x.Line, Error, "NQ301", "division by zero")
			return TFloat, eff{both.pure, false}
		}
		divOK := isNumeric(lt) && isNumeric(rt) && provenNonZero(x.Right)
		return TFloat, eff{both.pure, both.total && divOK}
	case "%":
		bad := false
		for _, t := range [2]Type{lt, rt} {
			if t == TFloat || (t != TAny && !isNumeric(t)) {
				a.report(x.Line, Error, "NQ300", "%% requires integers, got %s and %s", lt, rt)
				bad = true
				break
			}
		}
		if !bad {
			if n, ok := intLit(x.Right); ok && n == 0 {
				a.report(x.Line, Error, "NQ301", "modulo by zero")
				bad = true
			}
		}
		intish := func(t Type) bool { return t == TInt || t == TBool }
		modOK := !bad && intish(lt) && intish(rt) && provenNonZeroInt(x.Right)
		return TInt, eff{both.pure, both.total && modOK}
	default:
		return TAny, eff{both.pure, false}
	}
}

func arithType(l, r Type) Type {
	if l == TFloat || r == TFloat {
		return TFloat
	}
	intish := func(t Type) bool { return t == TInt || t == TBool }
	if intish(l) && intish(r) {
		return TInt
	}
	return TNum
}

func (a *analyzer) index(x *nql.IndexExpr) (Type, eff) {
	ct, ce := a.expr(x.X)
	it, ie := a.expr(x.Index)
	both := ce.and(ie)
	switch {
	case ct == TNil || ct == TFunc || isNumeric(ct):
		a.report(x.Line, Error, "NQ302", "value of type %s is not indexable", ct)
	case ct == TList || ct == TStr:
		if it != TInt && it != TNum && it != TAny {
			a.report(x.Line, Error, "NQ302", "%s index must be int, got %s", ct, it)
		}
	case ct == TMap:
		if it == TList || it == TMap || it == TFunc || isObject(it) {
			a.report(x.Line, Error, "NQ302", "unhashable map key of type %s is never present", it)
		}
	}
	res := TAny
	if ct == TStr {
		res = TStr
	}
	// Indexing is never total: out-of-range and missing-key failures
	// depend on values, not types.
	return res, eff{both.pure, false}
}

func (a *analyzer) call(x *nql.CallExpr) (Type, eff) {
	if id, ok := x.Fn.(*nql.Ident); ok {
		if b := a.lookup(id.Name); b != nil {
			b.used = true
			for _, arg := range x.Args {
				a.expr(arg)
			}
			if provenNotCallable(b.typ) {
				a.report(x.Line, Error, "NQ201", "%s value %q is not callable", b.typ, id.Name)
			} else if b.typ == TFunc && b.params >= 0 && len(x.Args) != b.params {
				a.report(x.Line, Error, "NQ200", "%s takes %d argument(s), got %d", id.Name, b.params, len(x.Args))
			}
			return TAny, opaque
		}
		if spec, ok := a.builtinFor(id.Name); ok {
			return a.builtinCall(id.Name, spec, x)
		}
	}
	ft, fe := a.expr(x.Fn)
	all := fe
	for _, arg := range x.Args {
		_, e := a.expr(arg)
		all = all.and(e)
	}
	if provenNotCallable(ft) {
		a.report(x.Line, Error, "NQ201", "%s is not callable", ft)
	}
	return TAny, opaque
}

func provenNotCallable(t Type) bool {
	switch t {
	case TAny, TFunc:
		return false
	}
	return true
}

// builtinFor resolves a free call target to its builtin spec, unless the
// program's own bindings could shadow it at call time: a scope binding
// (checked by the caller), a host global, a prepass-visible rebinding, or
// — inside function bodies, where resolution happens at call time — any
// top-level declaration of the name.
func (a *analyzer) builtinFor(name string) (*bspec, bool) {
	if a.reassigned[name] {
		return nil, false
	}
	if a.globals != nil {
		if _, ok := a.globals[name]; ok {
			return nil, false
		}
	}
	if a.inFunc > 0 && a.topDecls[name] {
		return nil, false
	}
	spec, ok := builtinSpecs[name]
	return spec, ok
}

func (a *analyzer) builtinCall(name string, spec *bspec, x *nql.CallExpr) (Type, eff) {
	n := len(x.Args)
	at := make([]Type, n)
	all := pureTotal
	for i, arg := range x.Args {
		t, e := a.expr(arg)
		at[i] = t
		all = all.and(e)
	}
	if n < spec.min || (spec.max >= 0 && n > spec.max) {
		a.report(x.Line, Error, "NQ200", "%s() takes %s argument(s), got %d", name, spec.arity, n)
		return builtinResult(name, at, n), eff{all.pure && !spec.impure, false}
	}
	for i, as := range spec.args {
		if i < n && len(as.kinds) > 0 && !argOK(at[i], as.kinds) {
			a.report(x.Line, Error, "NQ210", "%s() argument %d must be %s, got %s", name, i+1, as.desc, at[i])
		}
	}
	// A couple of signatures need checks the positional table cannot say.
	switch name {
	case "min", "max":
		if n == 1 && !argOK(at[0], []Type{TList}) {
			a.report(x.Line, Error, "NQ210", "%s() requires a list or multiple arguments", name)
		}
	case "contains":
		if at[0] == TStr && n == 2 && at[1] != TAny && at[1] != TStr {
			a.report(x.Line, Error, "NQ210", "contains() on a string requires a string operand, got %s", at[1])
		}
	case "range":
		if n == 3 {
			if z, ok := intLit(x.Args[2]); ok && z == 0 {
				a.report(x.Line, Error, "NQ301", "range() step must be a non-zero int")
			}
		}
	}
	pure := all.pure && !spec.impure
	total := all.total && builtinTotal(name, x, at)
	if builtinCallsFn(name, at) {
		// The builtin invokes a caller-supplied function whose effect the
		// table cannot vouch for.
		pure, total = false, false
	}
	return builtinResult(name, at, n), eff{pure, total}
}

// argOK accepts a proven type against an allow-list; TAny always passes,
// and TNum passes wherever int or float would (its parity is unknown, so
// failure is not provable).
func argOK(t Type, kinds []Type) bool {
	if t == TAny {
		return true
	}
	for _, k := range kinds {
		if t == k {
			return true
		}
		if t == TNum && (k == TInt || k == TFloat) {
			return true
		}
	}
	return false
}

// isHashable reports types that always hash as map keys (nil does not).
func isHashable(t Type) bool {
	switch t {
	case TBool, TInt, TFloat, TNum, TStr:
		return true
	}
	return false
}

// --- literal helpers -----------------------------------------------------

func numLit(e nql.Expr) (float64, bool) {
	switch x := e.(type) {
	case *nql.IntLit:
		return float64(x.Value), true
	case *nql.FloatLit:
		return x.Value, true
	case *nql.UnaryExpr:
		if x.Op == "-" {
			if f, ok := numLit(x.X); ok {
				return -f, true
			}
		}
	}
	return 0, false
}

func intLit(e nql.Expr) (int64, bool) {
	switch x := e.(type) {
	case *nql.IntLit:
		return x.Value, true
	case *nql.UnaryExpr:
		if x.Op == "-" {
			if n, ok := intLit(x.X); ok {
				return -n, true
			}
		}
	}
	return 0, false
}

func provenNonZero(e nql.Expr) bool {
	f, ok := numLit(e)
	return ok && f != 0
}

func provenNonZeroInt(e nql.Expr) bool {
	n, ok := intLit(e)
	return ok && n != 0
}

// litKeyRepr renders a literal map key for duplicate detection, matching
// the runtime's key identity (ints and floats share one numeric key
// space).
func litKeyRepr(e nql.Expr) (string, bool) {
	switch x := e.(type) {
	case *nql.StringLit:
		return "\"" + x.Value + "\"", true
	case *nql.IntLit:
		return formatNum(float64(x.Value)), true
	case *nql.FloatLit:
		return formatNum(x.Value), true
	case *nql.BoolLit:
		if x.Value {
			return "true", true
		}
		return "false", true
	}
	return "", false
}

func formatNum(f float64) string {
	if f == float64(int64(f)) {
		return itoa(int64(f))
	}
	return ftoa(f)
}

// --- lambda effect stamping ----------------------------------------------

func (a *analyzer) lambda(x *nql.LambdaExpr) {
	e := a.analyzeFunctionAs(x.Params, nil, x.Body, x.Line, TAny)
	if a.namesOnly {
		return
	}
	var bits nql.Effect
	if e.pure {
		bits |= nql.EffectPure
	}
	if e.total {
		bits |= nql.EffectTotal | nql.EffectRowTotal
	} else if len(x.Params) >= 1 && !a.mute {
		// Second, silent pass under the FuncPred calling convention:
		// every parameter a map. Proves row-totality for predicates that
		// lean on map-shaped operations (get(row, k, d), row attr reads
		// stay fallible).
		a.mute = true
		e2 := a.analyzeFunctionAs(x.Params, nil, x.Body, x.Line, TMap)
		a.mute = false
		if e2.total {
			bits |= nql.EffectRowTotal
		}
	}
	if !a.mute {
		x.SetEffect(bits)
	}
}

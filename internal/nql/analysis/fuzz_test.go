package analysis

import (
	"testing"

	"repro/internal/nql"
)

// FuzzAnalyze drives arbitrary source through parse → analyze → name
// check. The property under test is simply "the analyzer never panics":
// it runs inside netqueryd's request path on attacker-controlled input,
// before any sandbox protections apply.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		"let x = 1\nreturn x",
		"func f(a, b) {\n  return a + b\n}\nreturn f(1, 2)",
		`let p = fn(r) => get(r, "w", 0) == 1` + "\nreturn p",
		"for k, v in {\"a\": 1} {\n  print(k, v)\n}",
		"let m = {1: [2, {3: fn(x) => x}]}\nreturn m[1][1][3](4)",
		"while true {\n  break\n}\nreturn 1 / 0",
		"x = y\nreturn -\"s\" + len()",
		"let len = 5\nreturn len(1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := nql.Parse(src)
		if err != nil {
			return
		}
		Analyze(prog, Options{Globals: map[string]Type{"g": TGraph, "rows": TList}})
		Analyze(prog, Options{})
		CheckNames(prog, map[string]Type{"db": TObj})
	})
}

package nql

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Limits bound a script's resource use inside the sandbox.
type Limits struct {
	MaxSteps    int           // evaluation steps (0 = default)
	MaxDepth    int           // call depth (0 = default)
	MaxAllocs   int           // container element allocations (0 = default)
	MaxDuration time.Duration // wall clock (0 = default)

	// Context, when non-nil, is polled at the interpreter's periodic
	// checkpoint (every 4096 steps, one dispatch quantum): a cancelled or
	// deadline-expired context aborts the run with an ErrCancel-class
	// error wrapping ctx.Err(). Its deadline also tightens the wall-clock
	// budget when sooner than MaxDuration. Host bindings that run long
	// operations (federated plans, SQL queries) read it via
	// Interp.Context and add their own checkpoints.
	Context context.Context

	// Profile, when non-nil, collects an opcode-class and builtin
	// time/alloc profile for the run (see VMProfile). Strictly opt-in:
	// a nil Profile costs the VM one predictable branch per instruction
	// and the tree-walker nothing.
	Profile *VMProfile
}

// DefaultLimits are generous enough for every benchmark query yet small
// enough that runaway generated code is cut off quickly.
var DefaultLimits = Limits{
	MaxSteps:    100_000_000,
	MaxDepth:    200,
	MaxAllocs:   50_000_000,
	MaxDuration: 30 * time.Second,
}

// Interp executes parsed NQL programs under resource limits. Engine
// selects the execution strategy: the default EngineVM compiles (once,
// cached on the Program) and runs bytecode; EngineInterp tree-walks the
// AST. Both engines share this struct's resource accounting, stdout
// capture and call dispatch, so builtins and host bindings are
// engine-agnostic.
type Interp struct {
	Engine ExecEngine

	host     map[string]Value // injected host globals (never mutated)
	xglobals map[string]Value // per-run global overrides from foreign-Code closures
	genv     *Env             // lazily built scope chain for the tree-walk engine
	m        *machine         // VM state, pooled; non-nil only during a VM run
	limits   Limits
	steps    int
	allocs   int
	depth    int
	deadline time.Time
	stdout   *strings.Builder
	// argPool recycles call-argument slices (LIFO). Callees — builtins,
	// host-object methods and closures — must not retain the args slice
	// beyond the call; they may retain its elements.
	argPool [][]Value
}

// getArgs returns a zeroed-length arg slice of length n, reusing a pooled
// backing array when one is large enough.
func (in *Interp) getArgs(n int) []Value {
	if k := len(in.argPool); k > 0 && cap(in.argPool[k-1]) >= n {
		s := in.argPool[k-1][:n]
		in.argPool = in.argPool[:k-1]
		return s
	}
	if n < 4 {
		return make([]Value, n, 4)
	}
	return make([]Value, n)
}

// putArgs returns a slice obtained from getArgs to the pool.
func (in *Interp) putArgs(s []Value) {
	for i := range s {
		s[i] = nil // drop references so finished values can be collected
	}
	in.argPool = append(in.argPool, s)
}

// NewInterp creates an interpreter with the standard builtins installed plus
// any extra globals (host objects like graph/db).
func NewInterp(limits Limits, globals map[string]Value) *Interp {
	if limits.MaxSteps == 0 {
		limits.MaxSteps = DefaultLimits.MaxSteps
	}
	if limits.MaxDepth == 0 {
		limits.MaxDepth = DefaultLimits.MaxDepth
	}
	if limits.MaxAllocs == 0 {
		limits.MaxAllocs = DefaultLimits.MaxAllocs
	}
	if limits.MaxDuration == 0 {
		limits.MaxDuration = DefaultLimits.MaxDuration
	}
	return &Interp{
		Engine: DefaultEngine,
		host:   globals,
		limits: limits,
		stdout: &strings.Builder{},
	}
}

// globalsEnv builds the tree-walk engine's host scope on first use; the VM
// resolves globals through slot tables instead and never pays for it.
func (in *Interp) globalsEnv() *Env {
	if in.genv == nil {
		in.genv = NewEnv(builtinEnv)
		for k, v := range in.host {
			in.genv.Define(k, v)
		}
	}
	return in.genv
}

// builtinEnv holds the standard library, installed once and shared by every
// interpreter as a frozen root scope. Builtins are stateless (per-run state
// arrives via the *Interp argument), so sharing is safe across goroutines;
// Env.Assign shadows instead of writing when a script rebinds a builtin.
var builtinEnv = func() *Env {
	e := NewEnv(nil)
	installBuiltins(e)
	e.frozen = true
	return e
}()

// Stdout returns everything print() wrote during the run.
func (in *Interp) Stdout() string { return in.stdout.String() }

// Run parses and executes src, returning the script's result: the value of
// a top-level `return`, or nil.
func (in *Interp) Run(src string) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return in.RunProgram(prog)
}

// RunProgram executes an already-parsed program on the configured engine.
func (in *Interp) RunProgram(prog *Program) (Value, error) {
	in.deadline = time.Now().Add(in.limits.MaxDuration)
	if in.limits.Context != nil {
		if dl, ok := in.limits.Context.Deadline(); ok && dl.Before(in.deadline) {
			in.deadline = dl
		}
	}
	if in.Engine == EngineVM {
		code, err := prog.Compiled()
		if err != nil {
			return nil, err
		}
		return in.runCode(code)
	}
	env := NewEnv(in.globalsEnv())
	res, err := in.execBlock(prog.Stmts, env)
	if err != nil {
		return nil, err
	}
	if res != nil && res.kind == ctlReturn {
		return res.value, nil
	}
	return nil, nil
}

// control signals flowing out of statement execution.
type ctlKind int

const (
	ctlReturn ctlKind = iota
	ctlBreak
	ctlContinue
)

type control struct {
	kind  ctlKind
	value Value
}

func (in *Interp) step(line int) error {
	in.steps++
	if in.steps > in.limits.MaxSteps {
		return errf(ErrLimit, line, "step budget exceeded (%d steps)", in.limits.MaxSteps)
	}
	if in.steps%4096 == 0 {
		return in.checkpoint(line)
	}
	return nil
}

// checkpoint is the periodic cooperative-cancellation and wall-clock test
// both engines run every 4096 steps (one dispatch quantum). Context
// cancellation is checked first so a cancelled request reports ErrCancel
// even when its context deadline also tightened the wall-clock budget.
func (in *Interp) checkpoint(line int) error {
	if in.limits.Context != nil {
		if cerr := in.limits.Context.Err(); cerr != nil {
			return cancelErr(line, cerr)
		}
	}
	if time.Now().After(in.deadline) {
		// When the context's own deadline tightened the wall-clock budget,
		// attribute the expiry to the context: its timer can lag the clock
		// by a scheduler tick, so ctx.Err() above may not have flipped yet.
		if in.limits.Context != nil {
			if dl, ok := in.limits.Context.Deadline(); ok && time.Now().After(dl) {
				return cancelErr(line, context.DeadlineExceeded)
			}
		}
		return errf(ErrLimit, line, "wall-clock budget exceeded")
	}
	return nil
}

// Context returns the host context configured in Limits (never nil): host
// bindings pass it to cancellable substrate operations so one request
// deadline covers the whole execution pipeline.
func (in *Interp) Context() context.Context {
	if in.limits.Context != nil {
		return in.limits.Context
	}
	return context.Background()
}

func (in *Interp) alloc(line, n int) error {
	in.allocs += n
	if in.allocs > in.limits.MaxAllocs {
		return errf(ErrLimit, line, "allocation budget exceeded")
	}
	return nil
}

func (in *Interp) execBlock(stmts []Stmt, env *Env) (*control, error) {
	for _, st := range stmts {
		ctl, err := in.execStmt(st, env)
		if err != nil {
			return nil, err
		}
		if ctl != nil {
			return ctl, nil
		}
	}
	return nil, nil
}

func (in *Interp) execStmt(st Stmt, env *Env) (*control, error) {
	if err := in.step(st.Pos()); err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *LetStmt:
		v, err := in.eval(s.Init, env)
		if err != nil {
			return nil, err
		}
		env.Define(s.Name, v)
		return nil, nil
	case *AssignStmt:
		return nil, in.assign(s, env)
	case *ExprStmt:
		_, err := in.eval(s.X, env)
		return nil, err
	case *IfStmt:
		cond, err := in.eval(s.Cond, env)
		if err != nil {
			return nil, err
		}
		if Truthy(cond) {
			return in.execBlock(s.Then, NewEnv(env))
		}
		if s.Else != nil {
			return in.execBlock(s.Else, NewEnv(env))
		}
		return nil, nil
	case *WhileStmt:
		for {
			cond, err := in.eval(s.Cond, env)
			if err != nil {
				return nil, err
			}
			if !Truthy(cond) {
				return nil, nil
			}
			ctl, err := in.execBlock(s.Body, NewEnv(env))
			if err != nil {
				return nil, err
			}
			if ctl != nil {
				switch ctl.kind {
				case ctlBreak:
					return nil, nil
				case ctlReturn:
					return ctl, nil
				}
			}
			if err := in.step(s.Line); err != nil {
				return nil, err
			}
		}
	case *ForStmt:
		iter, err := in.eval(s.Iter, env)
		if err != nil {
			return nil, err
		}
		items, seconds, err := iterate(iter, s.Line, s.Var2 != "")
		if err != nil {
			return nil, err
		}
		for i, item := range items {
			loopEnv := NewEnv(env)
			loopEnv.Define(s.Var, item)
			if s.Var2 != "" {
				loopEnv.Define(s.Var2, seconds[i])
			}
			ctl, err := in.execBlock(s.Body, loopEnv)
			if err != nil {
				return nil, err
			}
			if ctl != nil {
				switch ctl.kind {
				case ctlBreak:
					return nil, nil
				case ctlReturn:
					return ctl, nil
				}
			}
			if err := in.step(s.Line); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case *FuncStmt:
		env.Define(s.Name, &Closure{Name: s.Name, Params: s.Params, Body: s.Body, Env: env})
		return nil, nil
	case *ReturnStmt:
		var v Value
		if s.Value != nil {
			var err error
			v, err = in.eval(s.Value, env)
			if err != nil {
				return nil, err
			}
		}
		return &control{kind: ctlReturn, value: v}, nil
	case *BreakStmt:
		return &control{kind: ctlBreak}, nil
	case *ContinueStmt:
		return &control{kind: ctlContinue}, nil
	default:
		return nil, errf(ErrInternal, st.Pos(), "unknown statement %T", st)
	}
}

// iterate expands an iterable into items (and parallel second values when
// two loop variables are used: map yields key/value, list-of-pairs yields
// pair elements).
func iterate(v Value, line int, wantPairs bool) (items, seconds []Value, err error) {
	switch x := v.(type) {
	case *List:
		if wantPairs {
			for _, it := range x.Items {
				pair, ok := it.(*List)
				if !ok || len(pair.Items) != 2 {
					return nil, nil, errf(ErrOp, line, "two-variable for over a list requires [a, b] pairs, got %s", TypeName(it))
				}
				items = append(items, pair.Items[0])
				seconds = append(seconds, pair.Items[1])
			}
			return items, seconds, nil
		}
		return append([]Value(nil), x.Items...), nil, nil
	case *Map:
		if wantPairs {
			return x.Keys(), x.Values(), nil
		}
		return x.Keys(), nil, nil
	case string:
		for _, r := range x {
			items = append(items, string(r))
		}
		if wantPairs {
			return nil, nil, errf(ErrOp, line, "cannot unpack string iteration into two variables")
		}
		return items, nil, nil
	default:
		return nil, nil, errf(ErrOp, line, "value of type %s is not iterable", TypeName(v))
	}
}

func (in *Interp) assign(s *AssignStmt, env *Env) error {
	v, err := in.eval(s.Value, env)
	if err != nil {
		return err
	}
	switch target := s.Target.(type) {
	case *Ident:
		if !env.Assign(target.Name, v) {
			return errf(ErrName, s.Line, "cannot assign to undefined variable %q (use let)", target.Name)
		}
		return nil
	case *IndexExpr:
		container, err := in.eval(target.X, env)
		if err != nil {
			return err
		}
		idx, err := in.eval(target.Index, env)
		if err != nil {
			return err
		}
		return setIndex(container, idx, v, s.Line)
	case *AttrExpr:
		container, err := in.eval(target.X, env)
		if err != nil {
			return err
		}
		if setter, ok := container.(AttrSettable); ok {
			return setter.SetMember(target.Name, v, s.Line)
		}
		return errf(ErrOp, s.Line, "cannot assign attribute %q on %s", target.Name, TypeName(container))
	default:
		return errf(ErrInternal, s.Line, "bad assignment target %T", s.Target)
	}
}

// AttrSettable is implemented by host objects that allow `obj.name = v`.
type AttrSettable interface {
	SetMember(name string, v Value, line int) error
}

func setIndex(container, idx, v Value, line int) error {
	switch c := container.(type) {
	case *List:
		i, ok := idx.(int64)
		if !ok {
			return errf(ErrIndex, line, "list index must be int, got %s", TypeName(idx))
		}
		j := int(i)
		if j < 0 {
			j += len(c.Items)
		}
		if j < 0 || j >= len(c.Items) {
			return errf(ErrIndex, line, "list index %d out of range (len %d)", i, len(c.Items))
		}
		c.Items[j] = v
		return nil
	case *Map:
		if err := c.Set(idx, v); err != nil {
			return errf(ErrIndex, line, "%s", err)
		}
		return nil
	case IndexSettable:
		return c.SetIndex(idx, v, line)
	default:
		return errf(ErrOp, line, "cannot index-assign into %s", TypeName(container))
	}
}

// IndexSettable is implemented by host objects that allow `obj[k] = v`.
type IndexSettable interface {
	SetIndex(idx, v Value, line int) error
}

// Indexable is implemented by host objects that allow `obj[k]`.
type Indexable interface {
	Index(idx Value, line int) (Value, error)
}

func (in *Interp) eval(e Expr, env *Env) (Value, error) {
	if err := in.step(e.Pos()); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case *IntLit:
		if x.box != nil {
			return x.box, nil
		}
		return x.Value, nil
	case *FloatLit:
		if x.box != nil {
			return x.box, nil
		}
		return x.Value, nil
	case *StringLit:
		if x.box != nil {
			return x.box, nil
		}
		return x.Value, nil
	case *BoolLit:
		return x.Value, nil
	case *NilLit:
		return nil, nil
	case *Ident:
		v, ok := env.Get(x.Name)
		if !ok {
			return nil, errf(ErrName, x.Line, "undefined name %q", x.Name)
		}
		return v, nil
	case *ListLit:
		if err := in.alloc(x.Line, len(x.Items)); err != nil {
			return nil, err
		}
		items := make([]Value, len(x.Items))
		for i, it := range x.Items {
			v, err := in.eval(it, env)
			if err != nil {
				return nil, err
			}
			items[i] = v
		}
		return &List{Items: items}, nil
	case *MapLit:
		if err := in.alloc(x.Line, len(x.Keys)); err != nil {
			return nil, err
		}
		m := NewMap()
		for i := range x.Keys {
			k, err := in.eval(x.Keys[i], env)
			if err != nil {
				return nil, err
			}
			v, err := in.eval(x.Values[i], env)
			if err != nil {
				return nil, err
			}
			if err := m.Set(k, v); err != nil {
				return nil, errf(ErrIndex, x.Line, "%s", err)
			}
		}
		return m, nil
	case *UnaryExpr:
		v, err := in.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			default:
				return nil, errf(ErrOp, x.Line, "cannot negate %s", TypeName(v))
			}
		case "not":
			return !Truthy(v), nil
		}
		return nil, errf(ErrInternal, x.Line, "unknown unary op %q", x.Op)
	case *BinaryExpr:
		return in.evalBinary(x, env)
	case *IndexExpr:
		return in.evalIndex(x, env)
	case *AttrExpr:
		v, err := in.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		return memberOf(v, x.Name, x.Line)
	case *LambdaExpr:
		return &Closure{Params: x.Params, Expr: x.Body, Env: env, lambda: x}, nil
	case *CallExpr:
		fn, err := in.eval(x.Fn, env)
		if err != nil {
			return nil, err
		}
		args := in.getArgs(len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		v, err := in.Call(fn, args, x.Line)
		in.putArgs(args)
		return v, err
	default:
		return nil, errf(ErrInternal, e.Pos(), "unknown expression %T", e)
	}
}

// memberOf resolves `v.name`: host objects dispatch through Member; maps
// allow dot-lookup of string keys (matching attribute-dict ergonomics);
// lists and strings expose no members.
func memberOf(v Value, name string, line int) (Value, error) {
	switch x := v.(type) {
	case Object:
		m, ok := x.Member(name)
		if !ok {
			return nil, errf(ErrAttr, line, "%s has no attribute %q", x.TypeName(), name)
		}
		return m, nil
	case *Map:
		if mv, ok := x.Get(name); ok {
			return mv, nil
		}
		return nil, errf(ErrAttr, line, "map has no key %q", name)
	default:
		return nil, errf(ErrAttr, line, "%s has no attribute %q", TypeName(v), name)
	}
}

// Call invokes a callable value with the given arguments. Compiled
// closures are dispatched onto the VM; everything else tree-walks.
func (in *Interp) Call(fn Value, args []Value, line int) (Value, error) {
	if f, ok := fn.(*Closure); ok && f.proto != nil {
		return in.vmCall(f, args, line)
	}
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > in.limits.MaxDepth {
		return nil, errf(ErrLimit, line, "call depth exceeded (%d)", in.limits.MaxDepth)
	}
	switch f := fn.(type) {
	case *Builtin:
		if p := in.limits.Profile; p != nil {
			t0 := time.Now()
			a0 := in.allocs
			v, err := f.Fn(in, line, args)
			p.noteBuiltin(f.Name, time.Since(t0), in.allocs-a0)
			return v, err
		}
		return f.Fn(in, line, args)
	case *Closure:
		if len(args) != len(f.Params) {
			name := f.Name
			if name == "" {
				name = "<lambda>"
			}
			return nil, errf(ErrArg, line, "%s takes %d argument(s), got %d", name, len(f.Params), len(args))
		}
		env := NewEnv(f.Env)
		for i, p := range f.Params {
			env.Define(p, args[i])
		}
		if f.Expr != nil { // lambda
			return in.eval(f.Expr, env)
		}
		ctl, err := in.execBlock(f.Body, env)
		if err != nil {
			return nil, err
		}
		if ctl != nil && ctl.kind == ctlReturn {
			return ctl.value, nil
		}
		return nil, nil
	default:
		return nil, errf(ErrOp, line, "%s is not callable", TypeName(fn))
	}
}

func (in *Interp) evalIndex(x *IndexExpr, env *Env) (Value, error) {
	container, err := in.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	idx, err := in.eval(x.Index, env)
	if err != nil {
		return nil, err
	}
	return indexValue(container, idx, x.Line)
}

// indexValue implements `container[idx]` for both engines.
func indexValue(container, idx Value, line int) (Value, error) {
	switch c := container.(type) {
	case *List:
		i, ok := idx.(int64)
		if !ok {
			return nil, errf(ErrIndex, line, "list index must be int, got %s", TypeName(idx))
		}
		j := int(i)
		if j < 0 {
			j += len(c.Items)
		}
		if j < 0 || j >= len(c.Items) {
			return nil, errf(ErrIndex, line, "list index %d out of range (len %d)", i, len(c.Items))
		}
		return c.Items[j], nil
	case *Map:
		v, ok := c.Get(idx)
		if !ok {
			return nil, errf(ErrIndex, line, "map has no key %s", Repr(idx))
		}
		return v, nil
	case string:
		i, ok := idx.(int64)
		if !ok {
			return nil, errf(ErrIndex, line, "string index must be int, got %s", TypeName(idx))
		}
		j := int(i)
		if j < 0 {
			j += len(c)
		}
		if j < 0 || j >= len(c) {
			return nil, errf(ErrIndex, line, "string index %d out of range (len %d)", i, len(c))
		}
		return string(c[j]), nil
	case Indexable:
		return c.Index(idx, line)
	default:
		return nil, errf(ErrOp, line, "value of type %s is not indexable", TypeName(container))
	}
}

func (in *Interp) evalBinary(x *BinaryExpr, env *Env) (Value, error) {
	// Short-circuit logic.
	if x.Op == "and" || x.Op == "or" {
		l, err := in.eval(x.Left, env)
		if err != nil {
			return nil, err
		}
		if x.Op == "and" && !Truthy(l) {
			return false, nil
		}
		if x.Op == "or" && Truthy(l) {
			return true, nil
		}
		r, err := in.eval(x.Right, env)
		if err != nil {
			return nil, err
		}
		return Truthy(r), nil
	}
	l, err := in.eval(x.Left, env)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(x.Right, env)
	if err != nil {
		return nil, err
	}
	return binaryOp(x.Op, l, r, x.Line)
}

func binaryOp(op string, l, r Value, line int) (Value, error) {
	switch op {
	case "==":
		return ValuesEqual(l, r), nil
	case "!=":
		return !ValuesEqual(l, r), nil
	case "in":
		return containsValue(r, l, line)
	case "<", "<=", ">", ">=":
		cmp, err := CompareNQL(l, r)
		if err != nil {
			return nil, errf(ErrOp, line, "%s", err)
		}
		switch op {
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	case "+":
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				return ls + rs, nil
			}
			return nil, errf(ErrOp, line, "cannot add string and %s (use str())", TypeName(r))
		}
		if ll, ok := l.(*List); ok {
			if rl, ok := r.(*List); ok {
				items := make([]Value, 0, len(ll.Items)+len(rl.Items))
				items = append(items, ll.Items...)
				items = append(items, rl.Items...)
				return &List{Items: items}, nil
			}
			return nil, errf(ErrOp, line, "cannot add list and %s", TypeName(r))
		}
		return numericOp(op, l, r, line)
	case "-", "*", "/", "%":
		return numericOp(op, l, r, line)
	default:
		return nil, errf(ErrInternal, line, "unknown operator %q", op)
	}
}

func numericOp(op string, l, r Value, line int) (Value, error) {
	lf, lInt, lok := asNumber(l)
	rf, rInt, rok := asNumber(r)
	if !lok || !rok {
		return nil, errf(ErrOp, line, "unsupported operand types for %s: %s and %s", op, TypeName(l), TypeName(r))
	}
	bothInt := lInt && rInt
	switch op {
	case "+":
		if bothInt {
			return int64(lf) + int64(rf), nil
		}
		return lf + rf, nil
	case "-":
		if bothInt {
			return int64(lf) - int64(rf), nil
		}
		return lf - rf, nil
	case "*":
		if bothInt {
			return int64(lf) * int64(rf), nil
		}
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, errf(ErrValue, line, "division by zero")
		}
		return lf / rf, nil
	case "%":
		if !bothInt {
			return nil, errf(ErrOp, line, "%% requires integers")
		}
		if int64(rf) == 0 {
			return nil, errf(ErrValue, line, "modulo by zero")
		}
		return int64(lf) % int64(rf), nil
	}
	return nil, errf(ErrInternal, line, "unknown numeric op %q", op)
}

func asNumber(v Value) (f float64, isInt, ok bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true, true
	case float64:
		return x, false, true
	case bool:
		if x {
			return 1, true, true
		}
		return 0, true, true
	default:
		return 0, false, false
	}
}

// ValuesEqual implements NQL ==: numbers compare across int/float; lists
// and maps compare deeply; other types require identical kind.
func ValuesEqual(l, r Value) bool {
	switch a := l.(type) {
	case nil:
		return r == nil
	case bool:
		b, ok := r.(bool)
		return ok && a == b
	case int64:
		switch b := r.(type) {
		case int64:
			return a == b
		case float64:
			return float64(a) == b
		}
		return false
	case float64:
		switch b := r.(type) {
		case int64:
			return a == float64(b)
		case float64:
			return a == b
		}
		return false
	case string:
		b, ok := r.(string)
		return ok && a == b
	case *List:
		b, ok := r.(*List)
		if !ok || len(a.Items) != len(b.Items) {
			return false
		}
		for i := range a.Items {
			if !ValuesEqual(a.Items[i], b.Items[i]) {
				return false
			}
		}
		return true
	case *Map:
		b, ok := r.(*Map)
		if !ok || a.Len() != b.Len() {
			return false
		}
		for i, k := range a.keys {
			bv, ok := b.Get(k)
			if !ok || !ValuesEqual(a.vals[i], bv) {
				return false
			}
		}
		return true
	default:
		return l == r
	}
}

// CompareNQL orders two values for <, sorted() etc. Numbers interoperate;
// strings compare lexicographically; lists compare elementwise.
func CompareNQL(l, r Value) (int, error) {
	lf, _, lok := asNumber(l)
	rf, _, rok := asNumber(r)
	if lok && rok {
		switch {
		case lf < rf:
			return -1, nil
		case lf > rf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok {
			return strings.Compare(ls, rs), nil
		}
	}
	if ll, ok := l.(*List); ok {
		if rl, ok := r.(*List); ok {
			for i := 0; i < len(ll.Items) && i < len(rl.Items); i++ {
				c, err := CompareNQL(ll.Items[i], rl.Items[i])
				if err != nil {
					return 0, err
				}
				if c != 0 {
					return c, nil
				}
			}
			return len(ll.Items) - len(rl.Items), nil
		}
	}
	return 0, fmt.Errorf("cannot compare %s and %s", TypeName(l), TypeName(r))
}

func containsValue(container, item Value, line int) (Value, error) {
	switch c := container.(type) {
	case *List:
		for _, it := range c.Items {
			if ValuesEqual(it, item) {
				return true, nil
			}
		}
		return false, nil
	case *Map:
		_, ok := c.Get(item)
		return ok, nil
	case string:
		s, ok := item.(string)
		if !ok {
			return nil, errf(ErrOp, line, "'in <string>' requires a string operand, got %s", TypeName(item))
		}
		return strings.Contains(c, s), nil
	default:
		return nil, errf(ErrOp, line, "'in' not supported for %s", TypeName(container))
	}
}

// Package nql implements NQL ("network query language"), the small
// imperative scripting language in which the simulated LLM emits programs.
// NQL plays the role Python plays in the paper: generated code is plain
// text, parsed and executed inside the sandbox against graph, dataframe and
// SQL host objects. The language is deliberately compact — assignments,
// control flow, functions, lambdas, lists/maps and method calls — but its
// failure modes are faithful: syntax errors, unknown names, imaginary
// attributes, bad arguments and unsupported operations are all first-class,
// categorized runtime errors so the benchmark can reproduce the paper's
// error taxonomy (Table 5).
package nql

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokOp      // + - * / % == != < <= > >= = =>
	TokPunct   // ( ) [ ] { } , : .
	TokKeyword // let if else for in while func return break continue and or not true false nil fn
)

// Token is one lexical token with its source line (1-based) for error
// reporting.
type Token struct {
	Kind TokenKind
	Text string
	Line int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

var nqlKeywords = map[string]bool{
	"let": true, "if": true, "else": true, "for": true, "in": true,
	"while": true, "func": true, "return": true, "break": true,
	"continue": true, "and": true, "or": true, "not": true,
	"true": true, "false": true, "nil": true, "fn": true,
}

// Lex tokenizes NQL source. It returns a *SyntaxError on malformed input.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			if nqlKeywords[word] {
				toks = append(toks, Token{TokKeyword, word, line})
			} else {
				toks = append(toks, Token{TokIdent, word, line})
			}
		case c >= '0' && c <= '9':
			start := i
			isFloat := false
			for i < n && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
			if i+1 < n && src[i] == '.' && src[i+1] >= '0' && src[i+1] <= '9' {
				isFloat = true
				i++
				for i < n && (src[i] >= '0' && src[i] <= '9') {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < n && src[j] >= '0' && src[j] <= '9' {
					isFloat = true
					i = j
					for i < n && (src[i] >= '0' && src[i] <= '9') {
						i++
					}
				}
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{kind, src[start:i], line})
		case c == '"' || c == '\'':
			quote := c
			i++
			var sb []byte
			closed := false
			for i < n {
				if src[i] == '\\' && i+1 < n {
					switch src[i+1] {
					case 'n':
						sb = append(sb, '\n')
					case 't':
						sb = append(sb, '\t')
					case '\\':
						sb = append(sb, '\\')
					case '"':
						sb = append(sb, '"')
					case '\'':
						sb = append(sb, '\'')
					default:
						return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unknown escape \\%c", src[i+1])}
					}
					i += 2
					continue
				}
				if src[i] == quote {
					i++
					closed = true
					break
				}
				if src[i] == '\n' {
					return nil, &SyntaxError{Line: line, Msg: "newline in string literal"}
				}
				sb = append(sb, src[i])
				i++
			}
			if !closed {
				return nil, &SyntaxError{Line: line, Msg: "unterminated string literal"}
			}
			toks = append(toks, Token{TokString, string(sb), line})
		case c == '=':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokOp, "==", line})
				i += 2
			} else if i+1 < n && src[i+1] == '>' {
				toks = append(toks, Token{TokOp, "=>", line})
				i += 2
			} else {
				toks = append(toks, Token{TokOp, "=", line})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokOp, "!=", line})
				i += 2
			} else {
				return nil, &SyntaxError{Line: line, Msg: "unexpected '!' (use 'not')"}
			}
		case c == '<' || c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokOp, src[i : i+2], line})
				i += 2
			} else {
				toks = append(toks, Token{TokOp, string(c), line})
				i++
			}
		case c == '+' || c == '-' || c == '*' || c == '/' || c == '%':
			toks = append(toks, Token{TokOp, string(c), line})
			i++
		case c == '(' || c == ')' || c == '[' || c == ']' || c == '{' || c == '}' || c == ',' || c == ':' || c == '.':
			toks = append(toks, Token{TokPunct, string(c), line})
			i++
		default:
			return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{TokEOF, "", line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

package nql

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// installBuiltins defines the NQL standard library in the given scope.
func installBuiltins(env *Env) {
	reg := func(name string, fn func(in *Interp, line int, args []Value) (Value, error)) {
		env.Define(name, &Builtin{Name: name, Fn: fn})
	}

	argErr := func(line int, name, want string, got int) error {
		return errf(ErrArg, line, "%s() takes %s argument(s), got %d", name, want, got)
	}

	reg("print", func(in *Interp, line int, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = ToStr(a)
		}
		in.stdout.WriteString(strings.Join(parts, " "))
		in.stdout.WriteString("\n")
		return nil, nil
	})

	reg("len", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "len", "1", len(args))
		}
		switch x := args[0].(type) {
		case string:
			return int64(len(x)), nil
		case *List:
			return int64(len(x.Items)), nil
		case *Map:
			return int64(x.Len()), nil
		case Sizer:
			return int64(x.Size()), nil
		default:
			return nil, errf(ErrOp, line, "len() not supported for %s", TypeName(args[0]))
		}
	})

	reg("type", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "type", "1", len(args))
		}
		return TypeName(args[0]), nil
	})

	reg("str", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "str", "1", len(args))
		}
		return ToStr(args[0]), nil
	})

	reg("int", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "int", "1", len(args))
		}
		switch x := args[0].(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				return nil, errf(ErrValue, line, "cannot convert %q to int", x)
			}
			return n, nil
		default:
			return nil, errf(ErrOp, line, "int() not supported for %s", TypeName(args[0]))
		}
	})

	reg("float", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "float", "1", len(args))
		}
		switch x := args[0].(type) {
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, errf(ErrValue, line, "cannot convert %q to float", x)
			}
			return f, nil
		default:
			return nil, errf(ErrOp, line, "float() not supported for %s", TypeName(args[0]))
		}
	})

	reg("abs", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "abs", "1", len(args))
		}
		switch x := args[0].(type) {
		case int64:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case float64:
			return math.Abs(x), nil
		default:
			return nil, errf(ErrOp, line, "abs() requires a number")
		}
	})

	reg("round", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 && len(args) != 2 {
			return nil, argErr(line, "round", "1 or 2", len(args))
		}
		f, _, ok := asNumber(args[0])
		if !ok {
			return nil, errf(ErrOp, line, "round() requires a number")
		}
		digits := int64(0)
		if len(args) == 2 {
			d, ok := args[1].(int64)
			if !ok {
				return nil, errf(ErrArg, line, "round() digits must be int")
			}
			digits = d
		}
		scale := math.Pow(10, float64(digits))
		res := math.Round(f*scale) / scale
		if digits == 0 {
			return int64(res), nil
		}
		return res, nil
	})

	reg("range", func(in *Interp, line int, args []Value) (Value, error) {
		var start, stop, step int64 = 0, 0, 1
		switch len(args) {
		case 1:
			s, ok := args[0].(int64)
			if !ok {
				return nil, errf(ErrArg, line, "range() requires ints")
			}
			stop = s
		case 2, 3:
			s1, ok1 := args[0].(int64)
			s2, ok2 := args[1].(int64)
			if !ok1 || !ok2 {
				return nil, errf(ErrArg, line, "range() requires ints")
			}
			start, stop = s1, s2
			if len(args) == 3 {
				s3, ok := args[2].(int64)
				if !ok || s3 == 0 {
					return nil, errf(ErrArg, line, "range() step must be a non-zero int")
				}
				step = s3
			}
		default:
			return nil, argErr(line, "range", "1-3", len(args))
		}
		var items []Value
		if step > 0 {
			for v := start; v < stop; v += step {
				items = append(items, v)
			}
		} else {
			for v := start; v > stop; v += step {
				items = append(items, v)
			}
		}
		if err := in.alloc(line, len(items)); err != nil {
			return nil, err
		}
		return &List{Items: items}, nil
	})

	reg("push", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr(line, "push", "2", len(args))
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, errf(ErrArg, line, "push() first argument must be a list")
		}
		if err := in.alloc(line, 1); err != nil {
			return nil, err
		}
		l.Items = append(l.Items, args[1])
		return l, nil
	})

	reg("pop", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "pop", "1", len(args))
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, errf(ErrArg, line, "pop() requires a list")
		}
		if len(l.Items) == 0 {
			return nil, errf(ErrIndex, line, "pop from empty list")
		}
		last := l.Items[len(l.Items)-1]
		l.Items = l.Items[:len(l.Items)-1]
		return last, nil
	})

	reg("sum", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "sum", "1", len(args))
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, errf(ErrArg, line, "sum() requires a list")
		}
		total := 0.0
		allInt := true
		for _, it := range l.Items {
			f, isInt, ok := asNumber(it)
			if !ok {
				return nil, errf(ErrOp, line, "sum() over non-numeric element %s", Repr(it))
			}
			if !isInt {
				allInt = false
			}
			total += f
		}
		if allInt {
			return int64(total), nil
		}
		return total, nil
	})

	minMax := func(name string) func(in *Interp, line int, args []Value) (Value, error) {
		return func(in *Interp, line int, args []Value) (Value, error) {
			var items []Value
			if len(args) == 1 {
				l, ok := args[0].(*List)
				if !ok {
					return nil, errf(ErrArg, line, "%s() requires a list or multiple arguments", name)
				}
				items = l.Items
			} else if len(args) >= 2 {
				items = args
			} else {
				return nil, argErr(line, name, "1+", len(args))
			}
			if len(items) == 0 {
				return nil, errf(ErrValue, line, "%s() of empty sequence", name)
			}
			best := items[0]
			for _, it := range items[1:] {
				cmp, err := CompareNQL(it, best)
				if err != nil {
					return nil, errf(ErrOp, line, "%s", err)
				}
				if (name == "min" && cmp < 0) || (name == "max" && cmp > 0) {
					best = it
				}
			}
			return best, nil
		}
	}
	reg("min", minMax("min"))
	reg("max", minMax("max"))

	reg("sorted", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) < 1 || len(args) > 3 {
			return nil, argErr(line, "sorted", "1-3", len(args))
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, errf(ErrArg, line, "sorted() requires a list")
		}
		var keyFn Value
		reverse := false
		if len(args) >= 2 {
			switch a := args[1].(type) {
			case *Closure, *Builtin:
				keyFn = a
			case bool:
				reverse = a
			default:
				return nil, errf(ErrArg, line, "sorted() second argument must be a key function or bool")
			}
		}
		if len(args) == 3 {
			b, ok := args[2].(bool)
			if !ok {
				return nil, errf(ErrArg, line, "sorted() reverse flag must be bool")
			}
			reverse = b
		}
		if err := in.alloc(line, len(l.Items)); err != nil {
			return nil, err
		}
		items := append([]Value(nil), l.Items...)
		keys := items
		if keyFn != nil {
			keys = make([]Value, len(items))
			for i, it := range items {
				k, err := in.Call(keyFn, []Value{it}, line)
				if err != nil {
					return nil, err
				}
				keys[i] = k
			}
		}
		var sortErr error
		idx := make([]int, len(items))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if sortErr != nil {
				return false
			}
			cmp, err := CompareNQL(keys[idx[a]], keys[idx[b]])
			if err != nil {
				sortErr = errf(ErrOp, line, "%s", err)
				return false
			}
			if reverse {
				return cmp > 0
			}
			return cmp < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
		out := make([]Value, len(items))
		for i, j := range idx {
			out[i] = items[j]
		}
		return &List{Items: out}, nil
	})

	reg("reversed", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "reversed", "1", len(args))
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, errf(ErrArg, line, "reversed() requires a list")
		}
		if err := in.alloc(line, len(l.Items)); err != nil {
			return nil, err
		}
		out := make([]Value, len(l.Items))
		for i, it := range l.Items {
			out[len(out)-1-i] = it
		}
		return &List{Items: out}, nil
	})

	reg("keys", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "keys", "1", len(args))
		}
		m, ok := args[0].(*Map)
		if !ok {
			if km, ok := args[0].(KeysValuer); ok {
				return &List{Items: km.MapKeys()}, nil
			}
			return nil, errf(ErrArg, line, "keys() requires a map")
		}
		return &List{Items: m.Keys()}, nil
	})

	reg("values", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "values", "1", len(args))
		}
		m, ok := args[0].(*Map)
		if !ok {
			if km, ok := args[0].(KeysValuer); ok {
				return &List{Items: km.MapValues()}, nil
			}
			return nil, errf(ErrArg, line, "values() requires a map")
		}
		return &List{Items: m.Values()}, nil
	})

	reg("items", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "items", "1", len(args))
		}
		m, ok := args[0].(*Map)
		if !ok {
			return nil, errf(ErrArg, line, "items() requires a map")
		}
		out := make([]Value, 0, m.Len())
		ks, vs := m.Keys(), m.Values()
		for i := range ks {
			out = append(out, &List{Items: []Value{ks[i], vs[i]}})
		}
		return &List{Items: out}, nil
	})

	reg("get", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 2 && len(args) != 3 {
			return nil, argErr(line, "get", "2 or 3", len(args))
		}
		m, ok := args[0].(*Map)
		if !ok {
			return nil, errf(ErrArg, line, "get() requires a map")
		}
		if v, ok := m.Get(args[1]); ok {
			return v, nil
		}
		if len(args) == 3 {
			return args[2], nil
		}
		return nil, nil
	})

	reg("setdefault", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 3 {
			return nil, argErr(line, "setdefault", "3", len(args))
		}
		m, ok := args[0].(*Map)
		if !ok {
			return nil, errf(ErrArg, line, "setdefault() requires a map")
		}
		if v, ok := m.Get(args[1]); ok {
			return v, nil
		}
		if err := m.Set(args[1], args[2]); err != nil {
			return nil, errf(ErrIndex, line, "%s", err)
		}
		return args[2], nil
	})

	reg("delete", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr(line, "delete", "2", len(args))
		}
		m, ok := args[0].(*Map)
		if !ok {
			return nil, errf(ErrArg, line, "delete() requires a map")
		}
		m.Delete(args[1])
		return nil, nil
	})

	reg("contains", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr(line, "contains", "2", len(args))
		}
		return containsValue(args[0], args[1], line)
	})

	// String helpers.
	strFn := func(name string, arity int, fn func(line int, args []Value) (Value, error)) {
		reg(name, func(in *Interp, line int, args []Value) (Value, error) {
			if len(args) != arity {
				return nil, argErr(line, name, fmt.Sprintf("%d", arity), len(args))
			}
			if _, ok := args[0].(string); !ok {
				return nil, errf(ErrArg, line, "%s() first argument must be a string, got %s", name, TypeName(args[0]))
			}
			return fn(line, args)
		})
	}
	strFn("upper", 1, func(line int, args []Value) (Value, error) {
		return strings.ToUpper(args[0].(string)), nil
	})
	strFn("lower", 1, func(line int, args []Value) (Value, error) {
		return strings.ToLower(args[0].(string)), nil
	})
	strFn("strip", 1, func(line int, args []Value) (Value, error) {
		return strings.TrimSpace(args[0].(string)), nil
	})
	strFn("startswith", 2, func(line int, args []Value) (Value, error) {
		p, ok := args[1].(string)
		if !ok {
			return nil, errf(ErrArg, line, "startswith() prefix must be a string")
		}
		return strings.HasPrefix(args[0].(string), p), nil
	})
	strFn("endswith", 2, func(line int, args []Value) (Value, error) {
		p, ok := args[1].(string)
		if !ok {
			return nil, errf(ErrArg, line, "endswith() suffix must be a string")
		}
		return strings.HasSuffix(args[0].(string), p), nil
	})
	strFn("split", 2, func(line int, args []Value) (Value, error) {
		sep, ok := args[1].(string)
		if !ok {
			return nil, errf(ErrArg, line, "split() separator must be a string")
		}
		parts := strings.Split(args[0].(string), sep)
		items := make([]Value, len(parts))
		for i, p := range parts {
			items[i] = p
		}
		return &List{Items: items}, nil
	})
	strFn("replace", 3, func(line int, args []Value) (Value, error) {
		old, ok1 := args[1].(string)
		new_, ok2 := args[2].(string)
		if !ok1 || !ok2 {
			return nil, errf(ErrArg, line, "replace() arguments must be strings")
		}
		return strings.ReplaceAll(args[0].(string), old, new_), nil
	})

	reg("join", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr(line, "join", "2", len(args))
		}
		sep, ok := args[0].(string)
		if !ok {
			return nil, errf(ErrArg, line, "join() separator must be a string")
		}
		l, ok := args[1].(*List)
		if !ok {
			return nil, errf(ErrArg, line, "join() requires a list")
		}
		parts := make([]string, len(l.Items))
		for i, it := range l.Items {
			s, ok := it.(string)
			if !ok {
				return nil, errf(ErrOp, line, "join() list must contain strings, found %s", TypeName(it))
			}
			parts[i] = s
		}
		return strings.Join(parts, sep), nil
	})

	reg("slice", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 3 {
			return nil, argErr(line, "slice", "3", len(args))
		}
		lo, ok1 := args[1].(int64)
		hi, ok2 := args[2].(int64)
		if !ok1 || !ok2 {
			return nil, errf(ErrArg, line, "slice() bounds must be ints")
		}
		clamp := func(i, n int64) int64 {
			if i < 0 {
				i += n
			}
			if i < 0 {
				i = 0
			}
			if i > n {
				i = n
			}
			return i
		}
		switch x := args[0].(type) {
		case *List:
			n := int64(len(x.Items))
			lo, hi := clamp(lo, n), clamp(hi, n)
			if lo > hi {
				lo = hi
			}
			if err := in.alloc(line, int(hi-lo)); err != nil {
				return nil, err
			}
			return &List{Items: append([]Value(nil), x.Items[lo:hi]...)}, nil
		case string:
			n := int64(len(x))
			lo, hi := clamp(lo, n), clamp(hi, n)
			if lo > hi {
				lo = hi
			}
			return x[lo:hi], nil
		default:
			return nil, errf(ErrArg, line, "slice() requires a list or string")
		}
	})

	reg("map", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr(line, "map", "2", len(args))
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, errf(ErrArg, line, "map() first argument must be a list")
		}
		if err := in.alloc(line, len(l.Items)); err != nil {
			return nil, err
		}
		out := make([]Value, len(l.Items))
		for i, it := range l.Items {
			v, err := in.Call(args[1], []Value{it}, line)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return &List{Items: out}, nil
	})

	reg("filter", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr(line, "filter", "2", len(args))
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, errf(ErrArg, line, "filter() first argument must be a list")
		}
		var out []Value
		for _, it := range l.Items {
			v, err := in.Call(args[1], []Value{it}, line)
			if err != nil {
				return nil, err
			}
			if Truthy(v) {
				out = append(out, it)
			}
		}
		if err := in.alloc(line, len(out)); err != nil {
			return nil, err
		}
		return &List{Items: out}, nil
	})

	reg("unique", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "unique", "1", len(args))
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, errf(ErrArg, line, "unique() requires a list")
		}
		seen := map[mkey]bool{}
		var out []Value
		for _, it := range l.Items {
			k, err := mapKey(it)
			if err != nil {
				// Unhashable values dedupe by rendering, under a kind of
				// their own so they can never collide with scalar keys.
				k = mkey{kind: 4, str: Repr(it)}
			}
			if !seen[k] {
				seen[k] = true
				out = append(out, it)
			}
		}
		return &List{Items: out}, nil
	})

	reg("zip", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr(line, "zip", "2", len(args))
		}
		a, ok1 := args[0].(*List)
		b, ok2 := args[1].(*List)
		if !ok1 || !ok2 {
			return nil, errf(ErrArg, line, "zip() requires two lists")
		}
		n := len(a.Items)
		if len(b.Items) < n {
			n = len(b.Items)
		}
		if err := in.alloc(line, n); err != nil {
			return nil, err
		}
		out := make([]Value, n)
		for i := 0; i < n; i++ {
			out[i] = &List{Items: []Value{a.Items[i], b.Items[i]}}
		}
		return &List{Items: out}, nil
	})

	reg("enumerate", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "enumerate", "1", len(args))
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, errf(ErrArg, line, "enumerate() requires a list")
		}
		if err := in.alloc(line, len(l.Items)); err != nil {
			return nil, err
		}
		out := make([]Value, len(l.Items))
		for i, it := range l.Items {
			out[i] = &List{Items: []Value{int64(i), it}}
		}
		return &List{Items: out}, nil
	})

	reg("sqrt", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(line, "sqrt", "1", len(args))
		}
		f, _, ok := asNumber(args[0])
		if !ok {
			return nil, errf(ErrArg, line, "sqrt() requires a number")
		}
		if f < 0 {
			return nil, errf(ErrValue, line, "sqrt() of negative number")
		}
		return math.Sqrt(f), nil
	})

	reg("pow", func(in *Interp, line int, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr(line, "pow", "2", len(args))
		}
		a, _, ok1 := asNumber(args[0])
		b, _, ok2 := asNumber(args[1])
		if !ok1 || !ok2 {
			return nil, errf(ErrArg, line, "pow() requires numbers")
		}
		return math.Pow(a, b), nil
	})
}

// Sizer lets host objects participate in len().
type Sizer interface{ Size() int }

// KeysValuer lets host map-like objects participate in keys()/values().
type KeysValuer interface {
	MapKeys() []Value
	MapValues() []Value
}

package nql

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Node is any AST node; Line reports the 1-based source line for errors.
type Node interface{ Pos() int }

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

type base struct{ Line int }

// Pos returns the node's source line.
func (b base) Pos() int { return b.Line }

// --- statements ---

// Program is a parsed NQL script. The bytecode form is compiled once on
// first execution (or via Compiled) and cached here, so programs shared
// through the sandbox's source-keyed cache compile exactly once no matter
// how many trials execute them.
type Program struct {
	Stmts []Stmt

	// srcHash is the FNV-64a hash of the source text, stamped by Parse.
	// It names the program in observability surfaces (flight records,
	// diagnostic bundles) without carrying tenant source text around.
	srcHash uint64

	compileOnce sync.Once
	code        *Code
	compileErr  error
}

// Hash returns the FNV-64a hash of the program's source text (0 for a
// Program built by hand rather than by Parse).
func (p *Program) Hash() uint64 { return p.srcHash }

// HashString renders Hash as fixed-width hex — the program identity shown
// in flight records and bundles ("" when the hash is unset).
func (p *Program) HashString() string {
	if p.srcHash == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", p.srcHash)
}

// LetStmt declares a new variable in the current scope.
type LetStmt struct {
	base
	Name string
	Init Expr
}

// AssignStmt assigns to an existing variable, index or attribute target.
type AssignStmt struct {
	base
	Target Expr // *Ident, *IndexExpr or *AttrExpr
	Value  Expr
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	base
	X Expr
}

// IfStmt is if/else-if/else.
type IfStmt struct {
	base
	Cond Expr
	Then []Stmt
	Else []Stmt // nil, or single IfStmt for else-if chains
}

// ForStmt iterates over a list, map (keys), or string (runes as 1-char
// strings).
type ForStmt struct {
	base
	Var  string
	Var2 string // optional second variable: "for k, v in map"
	Iter Expr
	Body []Stmt
}

// WhileStmt loops while the condition is truthy.
type WhileStmt struct {
	base
	Cond Expr
	Body []Stmt
}

// FuncStmt declares a named function.
type FuncStmt struct {
	base
	Name   string
	Params []string
	Body   []Stmt
}

// ReturnStmt returns from the enclosing function or ends the script with a
// result value.
type ReturnStmt struct {
	base
	Value Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ base }

// ContinueStmt skips to the next loop iteration.
type ContinueStmt struct{ base }

func (*LetStmt) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*FuncStmt) stmt()     {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// --- expressions ---

// Ident references a variable by name.
type Ident struct {
	base
	Name string
}

// IntLit is an integer literal. box holds the value pre-converted to the
// Value interface: the parser fills it once so evaluation does not re-box
// (and so re-allocate) on every visit of a shared, cached program.
type IntLit struct {
	base
	Value int64
	box   Value
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	base
	Value float64
	box   Value
}

// StringLit is a string literal.
type StringLit struct {
	base
	Value string
	box   Value
}

// BoolLit is true/false.
type BoolLit struct {
	base
	Value bool
}

// NilLit is nil.
type NilLit struct{ base }

// ListLit is [a, b, c].
type ListLit struct {
	base
	Items []Expr
}

// MapLit is {"k": v, ...}; keys are arbitrary expressions.
type MapLit struct {
	base
	Keys   []Expr
	Values []Expr
}

// BinaryExpr applies Op: + - * / % == != < <= > >= and or in.
type BinaryExpr struct {
	base
	Op          string
	Left, Right Expr
}

// UnaryExpr applies "-" or "not".
type UnaryExpr struct {
	base
	Op string
	X  Expr
}

// IndexExpr is x[i].
type IndexExpr struct {
	base
	X     Expr
	Index Expr
}

// AttrExpr is x.name (member access).
type AttrExpr struct {
	base
	X    Expr
	Name string
}

// CallExpr is f(args) where Fn may be an Ident, AttrExpr (method call) or
// any callable expression.
type CallExpr struct {
	base
	Fn   Expr
	Args []Expr
}

// LambdaExpr is fn(params) => expr. eff carries the semantic analyzer's
// effect summary (see effect.go); it is atomic because analysis may run
// on a program already shared through the sandbox cache.
type LambdaExpr struct {
	base
	Params []string
	Body   Expr

	eff atomic.Uint32
}

func (*Ident) expr()      {}
func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*StringLit) expr()  {}
func (*BoolLit) expr()    {}
func (*NilLit) expr()     {}
func (*ListLit) expr()    {}
func (*MapLit) expr()     {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*IndexExpr) expr()  {}
func (*AttrExpr) expr()   {}
func (*CallExpr) expr()   {}
func (*LambdaExpr) expr() {}

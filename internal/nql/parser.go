package nql

import (
	"fmt"
	"strconv"
)

type parser struct {
	toks []Token
	i    int
}

// Parse parses NQL source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{srcHash: fnv64a(src)}
	for !p.at(TokEOF, "") {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, st)
	}
	return prog, nil
}

// fnv64a is the 64-bit FNV-1a hash of s (inline to keep the package
// dependency-free; the constants are the standard FNV offset and prime).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[TokenKind]string{TokIdent: "identifier", TokInt: "integer", TokString: "string"}[kind]
	}
	return Token{}, &SyntaxError{Line: p.cur().Line, Msg: fmt.Sprintf("expected %q, found %s", want, p.cur())}
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, &SyntaxError{Line: p.cur().Line, Msg: "unexpected end of input, missing '}'"}
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
	}
	p.next() // }
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(TokKeyword, "let"):
		p.next()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &LetStmt{base: base{t.Line}, Name: name.Text, Init: init}, nil
	case p.at(TokKeyword, "if"):
		return p.parseIf()
	case p.at(TokKeyword, "for"):
		p.next()
		v1, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		v2 := ""
		if p.accept(TokPunct, ",") {
			v2tok, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			v2 = v2tok.Text
		}
		if _, err := p.expect(TokKeyword, "in"); err != nil {
			return nil, err
		}
		iter, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ForStmt{base: base{t.Line}, Var: v1.Text, Var2: v2, Iter: iter, Body: body}, nil
	case p.at(TokKeyword, "while"):
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{base: base{t.Line}, Cond: cond, Body: body}, nil
	case p.at(TokKeyword, "func"):
		p.next()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		var params []string
		for !p.at(TokPunct, ")") {
			pt, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			params = append(params, pt.Text)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &FuncStmt{base: base{t.Line}, Name: name.Text, Params: params, Body: body}, nil
	case p.at(TokKeyword, "return"):
		p.next()
		st := &ReturnStmt{base: base{t.Line}}
		if !p.at(TokPunct, "}") && !p.at(TokEOF, "") && !p.startsStatement() {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		return st, nil
	case p.at(TokKeyword, "break"):
		p.next()
		return &BreakStmt{base{t.Line}}, nil
	case p.at(TokKeyword, "continue"):
		p.next()
		return &ContinueStmt{base{t.Line}}, nil
	default:
		// Expression statement or assignment.
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(TokOp, "=") {
			switch e.(type) {
			case *Ident, *IndexExpr, *AttrExpr:
			default:
				return nil, &SyntaxError{Line: t.Line, Msg: "invalid assignment target"}
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{base: base{t.Line}, Target: e, Value: v}, nil
		}
		return &ExprStmt{base: base{t.Line}, X: e}, nil
	}
}

// startsStatement reports whether the current token can only begin a new
// statement (used to allow bare `return` before another statement).
func (p *parser) startsStatement() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "let", "if", "for", "while", "func", "return", "break", "continue":
		return true
	}
	return false
}

func (p *parser) parseIf() (Stmt, error) {
	t := p.next() // if
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{base: base{t.Line}, Cond: cond, Then: then}
	if p.accept(TokKeyword, "else") {
		if p.at(TokKeyword, "if") {
			elif, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{elif}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

// --- expressions (precedence climbing) ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "or") {
		t := p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{base: base{t.Line}, Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "and") {
		t := p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{base: base{t.Line}, Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.at(TokKeyword, "not") {
		t := p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{base: base{t.Line}, Op: "not", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op string
		switch {
		case p.at(TokOp, "=="), p.at(TokOp, "!="), p.at(TokOp, "<"), p.at(TokOp, "<="), p.at(TokOp, ">"), p.at(TokOp, ">="):
			op = p.next().Text
		case p.at(TokKeyword, "in"):
			p.next()
			op = "in"
		default:
			return left, nil
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{base: base{t.Line}, Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "+") || p.at(TokOp, "-") {
		t := p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{base: base{t.Line}, Op: t.Text, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "*") || p.at(TokOp, "/") || p.at(TokOp, "%") {
		t := p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{base: base{t.Line}, Op: t.Text, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.at(TokOp, "-") {
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{base: base{t.Line}, Op: "-", X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept(TokPunct, "."):
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			e = &AttrExpr{base: base{t.Line}, X: e, Name: name.Text}
		case p.accept(TokPunct, "["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{base: base{t.Line}, X: e, Index: idx}
		case p.accept(TokPunct, "("):
			var args []Expr
			for !p.at(TokPunct, ")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			e = &CallExpr{base: base{t.Line}, Fn: e, Args: args}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{Line: t.Line, Msg: "integer out of range"}
		}
		return &IntLit{base: base{t.Line}, Value: v, box: v}, nil
	case t.Kind == TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, &SyntaxError{Line: t.Line, Msg: "bad float literal"}
		}
		return &FloatLit{base: base{t.Line}, Value: v, box: v}, nil
	case t.Kind == TokString:
		p.next()
		return &StringLit{base: base{t.Line}, Value: t.Text, box: t.Text}, nil
	case p.accept(TokKeyword, "true"):
		return &BoolLit{base: base{t.Line}, Value: true}, nil
	case p.accept(TokKeyword, "false"):
		return &BoolLit{base: base{t.Line}, Value: false}, nil
	case p.accept(TokKeyword, "nil"):
		return &NilLit{base{t.Line}}, nil
	case p.at(TokKeyword, "fn"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		var params []string
		for !p.at(TokPunct, ")") {
			pt, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			params = append(params, pt.Text)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "=>"); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &LambdaExpr{base: base{t.Line}, Params: params, Body: body}, nil
	case t.Kind == TokIdent:
		p.next()
		return &Ident{base: base{t.Line}, Name: t.Text}, nil
	case p.accept(TokPunct, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.accept(TokPunct, "["):
		lit := &ListLit{base: base{t.Line}}
		for !p.at(TokPunct, "]") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			lit.Items = append(lit.Items, e)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		return lit, nil
	case p.accept(TokPunct, "{"):
		lit := &MapLit{base: base{t.Line}}
		for !p.at(TokPunct, "}") {
			k, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ":"); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			lit.Keys = append(lit.Keys, k)
			lit.Values = append(lit.Values, v)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, "}"); err != nil {
			return nil, err
		}
		return lit, nil
	default:
		return nil, &SyntaxError{Line: t.Line, Msg: fmt.Sprintf("unexpected token %s in expression", t)}
	}
}

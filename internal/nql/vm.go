package nql

import (
	"sync"
	"time"
)

// cell boxes a variable captured by a closure. The compiler promotes a
// binding to a cell when any nested function references it; a fresh cell is
// created every time its `let` executes, which reproduces the reference
// interpreter's per-iteration loop environments (each closure created in a
// loop iteration sees that iteration's value).
type cell struct{ v Value }

// frame is one activation record. Locals live on the shared value stack at
// [base, base+numSlots); retBase is where the return value lands (the
// callee slot for calls, the frame's own base for VM entries).
type frame struct {
	proto    *FuncProto
	cl       *Closure
	pc       int
	base     int
	retBase  int
	iterBase int
	depthInc bool // this frame holds one Interp.depth increment
}

// iterState is one active for-loop: a snapshot of the iterable (matching
// the interpreter's iterate(), which materializes before the first
// iteration) held in machine-pooled buffers.
type iterState struct {
	items   []Value
	seconds []Value
	i       int
}

// machine is the reusable VM state: one contiguous value stack holding
// every frame's locals and operands, the frame and iterator stacks, and the
// per-run global slot table. Machines are recycled through a sync.Pool so
// steady-state execution of cached programs performs no stack allocations.
type machine struct {
	stack  []Value
	sp     int
	frames []frame
	iters  []iterState
	bufs   [][]Value // free iterator-snapshot buffers

	// Global slots for the bound Code: resolved lazily per run, so each
	// distinct global name costs one map lookup per run instead of one per
	// access. gok distinguishes "unresolved" from a legitimately nil value.
	gcode  *Code
	gslots []Value
	gok    []uint8
}

var machinePool = sync.Pool{New: func() any { return new(machine) }}

func (m *machine) push(v Value) {
	if m.sp == len(m.stack) {
		m.stack = append(m.stack, v)
		m.sp++
		return
	}
	m.stack[m.sp] = v
	m.sp++
}

func (m *machine) bindGlobals(code *Code) {
	m.gcode = code
	n := len(code.globals)
	if cap(m.gslots) < n {
		m.gslots = make([]Value, n)
		m.gok = make([]uint8, n)
		return
	}
	m.gslots = m.gslots[:n]
	m.gok = m.gok[:n]
	for i := range m.gslots {
		m.gslots[i] = nil
		m.gok[i] = 0
	}
}

// reset clears every live reference so pooled machines never pin finished
// run state (and a machine recycled after a panic starts clean).
func (m *machine) reset() {
	for i := range m.stack {
		m.stack[i] = nil
	}
	m.sp = 0
	for i := range m.frames {
		m.frames[i] = frame{}
	}
	m.frames = m.frames[:0]
	for i := range m.iters {
		m.putBuf(m.iters[i].items)
		m.putBuf(m.iters[i].seconds)
		m.iters[i] = iterState{}
	}
	m.iters = m.iters[:0]
	m.gcode = nil
	for i := range m.gslots {
		m.gslots[i] = nil
		m.gok[i] = 0
	}
}

func (m *machine) getBuf(capHint int) []Value {
	if n := len(m.bufs); n > 0 {
		b := m.bufs[n-1]
		m.bufs = m.bufs[:n-1]
		return b
	}
	if capHint < 8 {
		capHint = 8
	}
	return make([]Value, 0, capHint)
}

func (m *machine) putBuf(b []Value) {
	if b == nil {
		return
	}
	for i := range b {
		b[i] = nil
	}
	m.bufs = append(m.bufs, b[:0])
}

func (m *machine) iterPop() {
	n := len(m.iters)
	st := &m.iters[n-1]
	m.putBuf(st.items)
	m.putBuf(st.seconds)
	*st = iterState{}
	m.iters = m.iters[:n-1]
}

// makeIter snapshots an iterable exactly like the interpreter's iterate()
// (same semantics, same error messages) but into pooled buffers.
func (m *machine) makeIter(v Value, line int, wantPairs bool) (iterState, error) {
	switch x := v.(type) {
	case *List:
		if wantPairs {
			items, seconds := m.getBuf(len(x.Items)), m.getBuf(len(x.Items))
			for _, it := range x.Items {
				pair, ok := it.(*List)
				if !ok || len(pair.Items) != 2 {
					m.putBuf(items)
					m.putBuf(seconds)
					return iterState{}, errf(ErrOp, line, "two-variable for over a list requires [a, b] pairs, got %s", TypeName(it))
				}
				items = append(items, pair.Items[0])
				seconds = append(seconds, pair.Items[1])
			}
			return iterState{items: items, seconds: seconds}, nil
		}
		return iterState{items: append(m.getBuf(len(x.Items)), x.Items...)}, nil
	case *Map:
		items := append(m.getBuf(len(x.keys)), x.keys...)
		if wantPairs {
			return iterState{items: items, seconds: append(m.getBuf(len(x.vals)), x.vals...)}, nil
		}
		return iterState{items: items}, nil
	case string:
		if wantPairs {
			return iterState{}, errf(ErrOp, line, "cannot unpack string iteration into two variables")
		}
		items := m.getBuf(len(x))
		for _, r := range x {
			items = append(items, string(r))
		}
		return iterState{items: items}, nil
	default:
		return iterState{}, errf(ErrOp, line, "value of type %s is not iterable", TypeName(v))
	}
}

// globalLoad resolves global idx of code, caching the resolution in the
// run's slot table. Resolution order matches the interpreter's scope chain:
// host globals first, then the pre-bound builtin.
func (m *machine) globalLoad(in *Interp, code *Code, idx int32, line int32) (Value, error) {
	if code == m.gcode {
		if m.gok[idx] != 0 {
			return m.gslots[idx], nil
		}
		g := &code.globals[idx]
		// Overrides written by a previous run on this Interp win over the
		// injected host globals, matching the tree-walker's persistent
		// host scope.
		if in.xglobals != nil {
			if v, ok := in.xglobals[g.name]; ok {
				m.gslots[idx] = v
				m.gok[idx] = 1
				return v, nil
			}
		}
		if v, ok := in.host[g.name]; ok {
			m.gslots[idx] = v
			m.gok[idx] = 1
			return v, nil
		}
		if g.builtin != nil {
			m.gslots[idx] = g.builtin
			m.gok[idx] = 1
			return g.builtin, nil
		}
		return nil, errf(ErrName, int(line), "undefined name %q", g.name)
	}
	// A closure compiled under a different Code (a function value injected
	// through the globals) resolves uncached against its own name table.
	g := &code.globals[idx]
	if v, ok := in.xglobals[g.name]; ok {
		return v, nil
	}
	if v, ok := in.host[g.name]; ok {
		return v, nil
	}
	if g.builtin != nil {
		return g.builtin, nil
	}
	return nil, errf(ErrName, int(line), "undefined name %q", g.name)
}

func (m *machine) globalStore(in *Interp, code *Code, idx int32, line int32, v Value) error {
	g := &code.globals[idx]
	if code == m.gcode {
		if m.gok[idx] == 0 {
			if _, ok := in.host[g.name]; !ok && g.builtin == nil {
				return errf(ErrName, int(line), "cannot assign to undefined variable %q (use let)", g.name)
			}
		}
		m.gslots[idx] = v
		m.gok[idx] = 1
	} else {
		if _, over := in.xglobals[g.name]; !over {
			if _, ok := in.host[g.name]; !ok && g.builtin == nil {
				return errf(ErrName, int(line), "cannot assign to undefined variable %q (use let)", g.name)
			}
		}
	}
	// Mirror the store into the Interp-level override map (never the
	// caller's globals map): slot tables die with the pooled machine at the
	// end of the run, but a later RunProgram on the same Interp must still
	// observe the assignment, exactly as the tree-walker's host scope does.
	if in.xglobals == nil {
		in.xglobals = map[string]Value{}
	}
	in.xglobals[g.name] = v
	return nil
}

// pushFrame enters a compiled closure whose nargs arguments sit on the
// stack at [base, base+nargs). Depth is checked before arity, matching
// Interp.Call's order.
func (m *machine) pushFrame(in *Interp, f *Closure, nargs, base, retBase, line int) error {
	in.depth++
	if in.depth > in.limits.MaxDepth {
		in.depth--
		return errf(ErrLimit, line, "call depth exceeded (%d)", in.limits.MaxDepth)
	}
	p := f.proto
	if nargs != p.nparams {
		in.depth--
		name := p.name
		if name == "" {
			name = "<lambda>"
		}
		return errf(ErrArg, line, "%s takes %d argument(s), got %d", name, p.nparams, nargs)
	}
	for m.sp < base+p.numSlots {
		m.push(nil)
	}
	for _, slot := range p.cellParams {
		m.stack[base+int(slot)] = &cell{v: m.stack[base+int(slot)]}
	}
	m.frames = append(m.frames, frame{
		proto:    p,
		cl:       f,
		base:     base,
		retBase:  retBase,
		iterBase: len(m.iters),
		depthInc: true,
	})
	return nil
}

// runCode executes a compiled program's top level on this Interp.
func (in *Interp) runCode(code *Code) (Value, error) {
	acquired := false
	if in.m == nil {
		in.m = machinePool.Get().(*machine)
		acquired = true
	}
	m := in.m
	if acquired {
		m.bindGlobals(code)
	}
	depth0 := in.depth
	entry := len(m.frames)
	base := m.sp
	m.frames = append(m.frames, frame{proto: code.main, base: base, retBase: base, iterBase: len(m.iters)})
	for m.sp < base+code.main.numSlots {
		m.push(nil)
	}
	v, err := m.run(in, entry)
	if err != nil {
		in.depth = depth0
	}
	if acquired {
		m.reset()
		machinePool.Put(m)
		in.m = nil
	}
	return v, err
}

// vmCall invokes a compiled closure from outside the instruction loop
// (builtins and host objects calling back through Interp.Call).
func (in *Interp) vmCall(f *Closure, args []Value, line int) (Value, error) {
	acquired := false
	if in.m == nil {
		in.m = machinePool.Get().(*machine)
		in.m.bindGlobals(f.proto.owner)
		acquired = true
	}
	m := in.m
	release := func() {
		if acquired {
			m.reset()
			machinePool.Put(m)
			in.m = nil
		}
	}
	entry := len(m.frames)
	base := m.sp
	depth0 := in.depth
	for _, a := range args {
		m.push(a)
	}
	if err := m.pushFrame(in, f, len(args), base, base, line); err != nil {
		for i := base; i < m.sp; i++ {
			m.stack[i] = nil
		}
		m.sp = base
		release()
		return nil, err
	}
	v, err := m.run(in, entry)
	if err != nil {
		in.depth = depth0
	}
	release()
	return v, err
}

// run executes frames until the frame stack shrinks back to entry. On
// error the frames above entry are abandoned; the caller restores depth and
// the top-level reset reclaims the stack.
func (m *machine) run(in *Interp, entry int) (Value, error) {
	fr := &m.frames[len(m.frames)-1]
	code := fr.proto.owner
	// Hoisted once: with profiling off this is a nil local and every
	// instruction pays exactly one predictable branch (the overhead gated
	// by BenchmarkObsOverhead/disabled and the NQLVM benchdiff watch).
	prof := in.limits.Profile
	for {
		ins := fr.proto.code[fr.pc]
		fr.pc++
		line := int(ins.line)
		if prof != nil {
			prof.note(ins.op)
		}

		// Resource accounting mirrors Interp.step: one step per
		// instruction, with the wall clock and the host context sampled
		// every 4096 steps (the dispatch quantum that bounds how late a
		// cancelled request can return).
		in.steps++
		if in.steps > in.limits.MaxSteps {
			return nil, errf(ErrLimit, line, "step budget exceeded (%d steps)", in.limits.MaxSteps)
		}
		if in.steps&4095 == 0 {
			if err := in.checkpoint(line); err != nil {
				return nil, err
			}
		}

		switch ins.op {
		case opConst:
			m.push(code.consts[ins.a])
		case opNil:
			m.push(nil)
		case opTrue:
			m.push(true)
		case opFalse:
			m.push(false)
		case opPop:
			m.sp--
			m.stack[m.sp] = nil
		case opLoadLocal:
			m.push(m.stack[fr.base+int(ins.a)])
		case opLoadCell:
			m.push(m.stack[fr.base+int(ins.a)].(*cell).v)
		case opLoadFree:
			m.push(fr.cl.free[ins.a].v)
		case opLoadGlobal:
			v, err := m.globalLoad(in, code, ins.a, ins.line)
			if err != nil {
				return nil, err
			}
			m.push(v)
		case opStoreLocal:
			m.sp--
			m.stack[fr.base+int(ins.a)] = m.stack[m.sp]
			m.stack[m.sp] = nil
		case opStoreCell:
			m.sp--
			m.stack[fr.base+int(ins.a)].(*cell).v = m.stack[m.sp]
			m.stack[m.sp] = nil
		case opStoreFree:
			m.sp--
			fr.cl.free[ins.a].v = m.stack[m.sp]
			m.stack[m.sp] = nil
		case opStoreGlobal:
			m.sp--
			v := m.stack[m.sp]
			m.stack[m.sp] = nil
			if err := m.globalStore(in, code, ins.a, ins.line, v); err != nil {
				return nil, err
			}
		case opLetCell:
			m.sp--
			m.stack[fr.base+int(ins.a)] = &cell{v: m.stack[m.sp]}
			m.stack[m.sp] = nil
		case opNeg:
			switch n := m.stack[m.sp-1].(type) {
			case int64:
				m.stack[m.sp-1] = -n
			case float64:
				m.stack[m.sp-1] = -n
			default:
				return nil, errf(ErrOp, line, "cannot negate %s", TypeName(m.stack[m.sp-1]))
			}
		case opNot:
			m.stack[m.sp-1] = !Truthy(m.stack[m.sp-1])
		case opTruthy:
			m.stack[m.sp-1] = Truthy(m.stack[m.sp-1])
		case opAdd, opSub, opMul, opDiv, opMod, opEq, opNe, opLt, opLe, opGt, opGe, opIn:
			m.sp--
			r := m.stack[m.sp]
			m.stack[m.sp] = nil
			l := m.stack[m.sp-1]
			v, err := binaryOp(binOpName[ins.op-opAdd], l, r, line)
			if err != nil {
				return nil, err
			}
			m.stack[m.sp-1] = v
		case opJump:
			fr.pc = int(ins.a)
		case opJumpFalsy:
			m.sp--
			v := m.stack[m.sp]
			m.stack[m.sp] = nil
			if !Truthy(v) {
				fr.pc = int(ins.a)
			}
		case opJumpTruthy:
			m.sp--
			v := m.stack[m.sp]
			m.stack[m.sp] = nil
			if Truthy(v) {
				fr.pc = int(ins.a)
			}
		case opAllocCheck:
			if err := in.alloc(line, int(ins.a)); err != nil {
				return nil, err
			}
		case opMakeList:
			n := int(ins.a)
			items := make([]Value, n)
			copy(items, m.stack[m.sp-n:m.sp])
			for i := m.sp - n; i < m.sp; i++ {
				m.stack[i] = nil
			}
			m.sp -= n
			m.push(&List{Items: items})
		case opMakeMap:
			n := int(ins.a)
			base := m.sp - 2*n
			mp := NewMapCap(n)
			for i := 0; i < n; i++ {
				if err := mp.Set(m.stack[base+2*i], m.stack[base+2*i+1]); err != nil {
					return nil, errf(ErrIndex, line, "%s", err)
				}
			}
			for i := base; i < m.sp; i++ {
				m.stack[i] = nil
			}
			m.sp = base
			m.push(mp)
		case opIndex:
			m.sp--
			idx := m.stack[m.sp]
			m.stack[m.sp] = nil
			v, err := indexValue(m.stack[m.sp-1], idx, line)
			if err != nil {
				return nil, err
			}
			m.stack[m.sp-1] = v
		case opSetIndex:
			idx := m.stack[m.sp-1]
			container := m.stack[m.sp-2]
			v := m.stack[m.sp-3]
			m.stack[m.sp-1], m.stack[m.sp-2], m.stack[m.sp-3] = nil, nil, nil
			m.sp -= 3
			if err := setIndex(container, idx, v, line); err != nil {
				return nil, err
			}
		case opSetAttr:
			container := m.stack[m.sp-1]
			v := m.stack[m.sp-2]
			m.stack[m.sp-1], m.stack[m.sp-2] = nil, nil
			m.sp -= 2
			setter, ok := container.(AttrSettable)
			if !ok {
				return nil, errf(ErrOp, line, "cannot assign attribute %q on %s", code.attrs[ins.a], TypeName(container))
			}
			if err := setter.SetMember(code.attrs[ins.a], v, line); err != nil {
				return nil, err
			}
		case opAttr:
			v, err := memberOf(m.stack[m.sp-1], code.attrs[ins.a], line)
			if err != nil {
				return nil, err
			}
			m.stack[m.sp-1] = v
		case opCall:
			n := int(ins.a)
			fnPos := m.sp - n - 1
			switch f := m.stack[fnPos].(type) {
			case *Builtin:
				in.depth++
				if in.depth > in.limits.MaxDepth {
					in.depth--
					return nil, errf(ErrLimit, line, "call depth exceeded (%d)", in.limits.MaxDepth)
				}
				var v Value
				var err error
				if prof != nil {
					t0 := time.Now()
					a0 := in.allocs
					v, err = f.Fn(in, line, m.stack[m.sp-n:m.sp])
					prof.noteBuiltin(f.Name, time.Since(t0), in.allocs-a0)
				} else {
					v, err = f.Fn(in, line, m.stack[m.sp-n:m.sp])
				}
				in.depth--
				// The builtin may have re-entered the VM (sorted's key
				// function, frame.apply, ...), growing the frame slice.
				fr = &m.frames[len(m.frames)-1]
				if err != nil {
					return nil, err
				}
				for i := fnPos; i < m.sp; i++ {
					m.stack[i] = nil
				}
				m.sp = fnPos
				m.push(v)
			case *Closure:
				if f.proto != nil {
					if err := m.pushFrame(in, f, n, fnPos+1, fnPos, line); err != nil {
						return nil, err
					}
					fr = &m.frames[len(m.frames)-1]
					code = fr.proto.owner
				} else {
					// A tree-walk closure (created under EngineInterp)
					// crossing into a VM run: route through Interp.Call.
					args := in.getArgs(n)
					copy(args, m.stack[m.sp-n:m.sp])
					v, err := in.Call(f, args, line)
					in.putArgs(args)
					fr = &m.frames[len(m.frames)-1]
					if err != nil {
						return nil, err
					}
					for i := fnPos; i < m.sp; i++ {
						m.stack[i] = nil
					}
					m.sp = fnPos
					m.push(v)
				}
			default:
				return nil, errf(ErrOp, line, "%s is not callable", TypeName(m.stack[fnPos]))
			}
		case opClosure:
			p := code.protos[ins.a]
			var free []*cell
			if len(p.captures) > 0 {
				free = make([]*cell, len(p.captures))
				for i, cp := range p.captures {
					if cp.fromLocal {
						free[i] = m.stack[fr.base+int(cp.idx)].(*cell)
					} else {
						free[i] = fr.cl.free[cp.idx]
					}
				}
			}
			m.push(&Closure{Name: p.name, proto: p, free: free})
		case opReturn, opReturnNil:
			var v Value
			if ins.op == opReturn {
				m.sp--
				v = m.stack[m.sp]
				m.stack[m.sp] = nil
			}
			nf := len(m.frames)
			top := &m.frames[nf-1]
			for i := top.retBase; i < m.sp; i++ {
				m.stack[i] = nil
			}
			m.sp = top.retBase
			for len(m.iters) > top.iterBase {
				m.iterPop()
			}
			if top.depthInc {
				in.depth--
			}
			m.frames[nf-1] = frame{}
			m.frames = m.frames[:nf-1]
			if nf-1 == entry {
				return v, nil
			}
			fr = &m.frames[nf-2]
			code = fr.proto.owner
			m.push(v)
		case opIterPrep:
			m.sp--
			it := m.stack[m.sp]
			m.stack[m.sp] = nil
			st, err := m.makeIter(it, line, ins.a == 1)
			if err != nil {
				return nil, err
			}
			m.iters = append(m.iters, st)
		case opIterNext:
			st := &m.iters[len(m.iters)-1]
			if st.i >= len(st.items) {
				m.iterPop()
				fr.pc = int(ins.a)
			} else {
				m.push(st.items[st.i])
				st.i++
			}
		case opIterNextPair:
			st := &m.iters[len(m.iters)-1]
			if st.i >= len(st.items) {
				m.iterPop()
				fr.pc = int(ins.a)
			} else {
				m.push(st.items[st.i])
				m.push(st.seconds[st.i])
				st.i++
			}
		case opIterPop:
			m.iterPop()
		default:
			return nil, errf(ErrInternal, line, "unknown opcode %d", ins.op)
		}
	}
}

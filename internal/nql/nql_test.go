package nql

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func run(t *testing.T, src string) Value {
	t.Helper()
	in := NewInterp(Limits{}, nil)
	v, err := in.Run(src)
	if err != nil {
		t.Fatalf("run error: %v\nsource:\n%s", err, src)
	}
	return v
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	in := NewInterp(Limits{}, nil)
	_, err := in.Run(src)
	if err == nil {
		t.Fatalf("expected error for:\n%s", src)
	}
	return err
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"return 1 + 2 * 3", int64(7)},
		{"return (1 + 2) * 3", int64(9)},
		{"return 10 / 4", 2.5},
		{"return 10 % 3", int64(1)},
		{"return -5 + 2", int64(-3)},
		{"return 2.5 * 2", 5.0},
		{"return 1 + 2.0", 3.0},
		{`return "a" + "b"`, "ab"},
	}
	for _, c := range cases {
		if got := run(t, c.src); !ValuesEqual(got, c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"return 1 < 2", true},
		{"return 2 <= 2", true},
		{"return 3 > 4", false},
		{"return 1 == 1.0", true},
		{`return "a" != "b"`, true},
		{"return true and false", false},
		{"return true or false", true},
		{"return not false", true},
		{"return 1 < 2 and 2 < 3", true},
		{`return "b" in ["a", "b"]`, true},
		{`return "z" in ["a", "b"]`, false},
		{`return "ell" in "hello"`, true},
		{`return "k" in {"k": 1}`, true},
	}
	for _, c := range cases {
		if got := run(t, c.src); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestVariablesAndScope(t *testing.T) {
	v := run(t, `
let x = 10
let y = x * 2
x = x + 1
return x + y`)
	if v != int64(31) {
		t.Fatalf("got %v", v)
	}
}

func TestAssignUndefinedFails(t *testing.T) {
	err := runErr(t, "x = 1")
	if ClassOf(err) != "name" {
		t.Fatalf("class = %s", ClassOf(err))
	}
}

func TestUndefinedNameFails(t *testing.T) {
	err := runErr(t, "return nonexistent_variable")
	if ClassOf(err) != "name" {
		t.Fatalf("class = %s, err = %v", ClassOf(err), err)
	}
}

func TestIfElse(t *testing.T) {
	v := run(t, `
let x = 5
if x > 10 {
  return "big"
} else if x > 3 {
  return "medium"
} else {
  return "small"
}`)
	if v != "medium" {
		t.Fatalf("got %v", v)
	}
}

func TestForLoop(t *testing.T) {
	v := run(t, `
let total = 0
for i in range(5) {
  total = total + i
}
return total`)
	if v != int64(10) {
		t.Fatalf("got %v", v)
	}
}

func TestForOverListAndMap(t *testing.T) {
	v := run(t, `
let words = []
for w in ["x", "y"] { push(words, w) }
let m = {"a": 1, "b": 2}
let ksum = ""
let vsum = 0
for k, val in m {
  ksum = ksum + k
  vsum = vsum + val
}
return [join("", words), ksum, vsum]`)
	l := v.(*List)
	if l.Items[0] != "xy" || l.Items[1] != "ab" || l.Items[2] != int64(3) {
		t.Fatalf("got %v", Repr(v))
	}
}

func TestForOverString(t *testing.T) {
	v := run(t, `
let n = 0
for ch in "abc" { n = n + 1 }
return n`)
	if v != int64(3) {
		t.Fatalf("got %v", v)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	v := run(t, `
let i = 0
let total = 0
while true {
  i = i + 1
  if i > 10 { break }
  if i % 2 == 0 { continue }
  total = total + i
}
return total`)
	if v != int64(25) { // 1+3+5+7+9
		t.Fatalf("got %v", v)
	}
}

func TestFunctions(t *testing.T) {
	v := run(t, `
func fib(n) {
  if n < 2 { return n }
  return fib(n - 1) + fib(n - 2)
}
return fib(10)`)
	if v != int64(55) {
		t.Fatalf("got %v", v)
	}
}

func TestFunctionArity(t *testing.T) {
	err := runErr(t, `
func f(a, b) { return a + b }
return f(1)`)
	if ClassOf(err) != "argument" {
		t.Fatalf("class = %s", ClassOf(err))
	}
}

func TestClosuresCapture(t *testing.T) {
	v := run(t, `
func make_adder(n) {
  return fn(x) => x + n
}
let add5 = make_adder(5)
return add5(10)`)
	if v != int64(15) {
		t.Fatalf("got %v", v)
	}
}

func TestLambdaWithSorted(t *testing.T) {
	v := run(t, `
let xs = [[1, "b"], [3, "a"], [2, "c"]]
let bysecond = sorted(xs, fn(p) => p[1])
return bysecond[0][0]`)
	if v != int64(3) {
		t.Fatalf("got %v", v)
	}
}

func TestListOps(t *testing.T) {
	v := run(t, `
let l = [3, 1, 2]
push(l, 4)
let s = sorted(l)
let r = sorted(l, true)
return [len(l), s[0], r[0], sum(l), min(l), max(l)]`)
	l := v.(*List)
	want := []Value{int64(4), int64(1), int64(4), int64(10), int64(1), int64(4)}
	for i, w := range want {
		if !ValuesEqual(l.Items[i], w) {
			t.Fatalf("item %d = %v, want %v (all: %s)", i, l.Items[i], w, Repr(v))
		}
	}
}

func TestListIndexing(t *testing.T) {
	if v := run(t, "return [10, 20, 30][-1]"); v != int64(30) {
		t.Fatalf("negative index = %v", v)
	}
	err := runErr(t, "return [1][5]")
	if ClassOf(err) != "index" {
		t.Fatalf("class = %s", ClassOf(err))
	}
}

func TestMapOps(t *testing.T) {
	v := run(t, `
let m = {}
m["a"] = 1
m["b"] = 2
m["a"] = 10
let d = get(m, "c", 99)
return [len(m), m["a"], d, contains(m, "b")]`)
	l := v.(*List)
	if l.Items[0] != int64(2) || l.Items[1] != int64(10) || l.Items[2] != int64(99) || l.Items[3] != true {
		t.Fatalf("got %s", Repr(v))
	}
}

func TestMapMissingKey(t *testing.T) {
	err := runErr(t, `return {"a": 1}["z"]`)
	if ClassOf(err) != "index" {
		t.Fatalf("class = %s", ClassOf(err))
	}
}

func TestMapDotAccess(t *testing.T) {
	if v := run(t, `return {"name": "sw1"}.name`); v != "sw1" {
		t.Fatalf("got %v", v)
	}
	err := runErr(t, `return {"name": "sw1"}.ghost`)
	if ClassOf(err) != "attribute" {
		t.Fatalf("class = %s", ClassOf(err))
	}
}

func TestStringBuiltins(t *testing.T) {
	v := run(t, `
let ip = "15.76.1.2"
let parts = split(ip, ".")
return [parts[0] + "." + parts[1], startswith(ip, "15."), upper("ab"), replace("a-b", "-", "_")]`)
	l := v.(*List)
	if l.Items[0] != "15.76" || l.Items[1] != true || l.Items[2] != "AB" || l.Items[3] != "a_b" {
		t.Fatalf("got %s", Repr(v))
	}
}

func TestConversions(t *testing.T) {
	v := run(t, `return [int("42"), float("2.5"), str(7), int(3.9), round(2.7), round(2.345, 2)]`)
	l := v.(*List)
	if l.Items[0] != int64(42) || l.Items[1] != 2.5 || l.Items[2] != "7" || l.Items[3] != int64(3) || l.Items[4] != int64(3) {
		t.Fatalf("got %s", Repr(v))
	}
	if l.Items[5].(float64) < 2.33 || l.Items[5].(float64) > 2.36 {
		t.Fatalf("round 2 digits = %v", l.Items[5])
	}
	err := runErr(t, `return int("abc")`)
	if ClassOf(err) != "value" {
		t.Fatalf("class = %s", ClassOf(err))
	}
}

func TestMapFilterBuiltins(t *testing.T) {
	v := run(t, `
let xs = range(10)
let evens = filter(xs, fn(x) => x % 2 == 0)
let doubled = map(evens, fn(x) => x * 2)
return sum(doubled)`)
	if v != int64(40) {
		t.Fatalf("got %v", v)
	}
}

func TestUniqueZipEnumerate(t *testing.T) {
	v := run(t, `
let u = unique([1, 2, 2, 3, 1])
let z = zip(["a", "b"], [1, 2])
let e = enumerate(["x", "y"])
return [len(u), z[1][0], e[1][0]]`)
	l := v.(*List)
	if l.Items[0] != int64(3) || l.Items[1] != "b" || l.Items[2] != int64(1) {
		t.Fatalf("got %s", Repr(v))
	}
}

func TestPrintCapture(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	_, err := in.Run(`print("hello", 42)`)
	if err != nil {
		t.Fatal(err)
	}
	if in.Stdout() != "hello 42\n" {
		t.Fatalf("stdout = %q", in.Stdout())
	}
}

func TestGlobalsInjection(t *testing.T) {
	in := NewInterp(Limits{}, map[string]Value{"answer": int64(42)})
	v, err := in.Run("return answer")
	if err != nil || v != int64(42) {
		t.Fatalf("v=%v err=%v", v, err)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"let = 5",
		"if { }",
		"for in x { }",
		"return (1 + ",
		"let x = [1, 2",
		`let s = "unterminated`,
		"func f( { }",
		"1 +",
		"let x = 5 !",
		"fn(x) x + 1", // missing =>
		"x.+",
		"while { }",
	}
	for _, src := range bad {
		in := NewInterp(Limits{}, nil)
		_, err := in.Run(src)
		if err == nil {
			t.Errorf("expected syntax error for %q", src)
			continue
		}
		if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("expected *SyntaxError for %q, got %T (%v)", src, err, err)
		}
	}
}

func TestSyntaxErrorLineNumbers(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	_, err := in.Run("let a = 1\nlet b = 2\nlet = 3")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("got %T", err)
	}
	if se.Line != 3 {
		t.Fatalf("line = %d, want 3", se.Line)
	}
}

func TestRuntimeErrorClasses(t *testing.T) {
	cases := []struct {
		src   string
		class string
	}{
		{"return ghost_fn()", "name"},
		{"return 1 + []", "operation"},
		{`return "a" - "b"`, "operation"},
		{"return 1 / 0", "value"},
		{"return len(5)", "operation"},
		{"return [1][99]", "index"},
		{"return sum(5)", "argument"},
		{"return min([])", "value"},
		{"let f = 5 f(1)", "operation"},
		{"for x in 5 { }", "operation"},
	}
	for _, c := range cases {
		in := NewInterp(Limits{}, nil)
		_, err := in.Run(c.src)
		if err == nil {
			t.Errorf("expected error for %q", c.src)
			continue
		}
		if got := ClassOf(err); got != c.class {
			t.Errorf("%q class = %s, want %s (%v)", c.src, got, c.class, err)
		}
	}
}

func TestStepLimit(t *testing.T) {
	in := NewInterp(Limits{MaxSteps: 1000}, nil)
	_, err := in.Run("while true { }")
	if err == nil || ClassOf(err) != "limit" {
		t.Fatalf("err = %v", err)
	}
}

func TestDepthLimit(t *testing.T) {
	in := NewInterp(Limits{MaxDepth: 10}, nil)
	_, err := in.Run("func f(n) { return f(n + 1) }\nreturn f(0)")
	if err == nil || ClassOf(err) != "limit" {
		t.Fatalf("err = %v", err)
	}
}

func TestAllocLimit(t *testing.T) {
	in := NewInterp(Limits{MaxAllocs: 100}, nil)
	_, err := in.Run("let l = []\nwhile true { push(l, 1) }")
	if err == nil || ClassOf(err) != "limit" {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadline(t *testing.T) {
	in := NewInterp(Limits{MaxDuration: 10 * time.Millisecond, MaxSteps: 1 << 60}, nil)
	start := time.Now()
	_, err := in.Run("while true { }")
	if err == nil || ClassOf(err) != "limit" {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline enforcement too slow")
	}
}

func TestReprDeterministic(t *testing.T) {
	v := run(t, `return {"b": 1, "a": [1, 2.5, "x", nil, true]}`)
	want := `{"b": 1, "a": [1, 2.5, "x", nil, true]}`
	if got := Repr(v); got != want {
		t.Fatalf("repr = %s", got)
	}
}

func TestReprFloatInt(t *testing.T) {
	if got := Repr(2.0); got != "2.0" {
		t.Fatalf("repr(2.0) = %s", got)
	}
	if got := Repr(int64(2)); got != "2" {
		t.Fatalf("repr(2) = %s", got)
	}
}

func TestValuesEqualDeep(t *testing.T) {
	a := run(t, `return {"k": [1, {"n": 2}]}`)
	b := run(t, `return {"k": [1.0, {"n": 2.0}]}`)
	if !ValuesEqual(a, b) {
		t.Fatal("deep numeric equality failed")
	}
	c := run(t, `return {"k": [1, {"n": 3}]}`)
	if ValuesEqual(a, c) {
		t.Fatal("difference not detected")
	}
}

func TestCommentsIgnored(t *testing.T) {
	v := run(t, `
# setup
let x = 1 # inline
# return early?
return x`)
	if v != int64(1) {
		t.Fatalf("got %v", v)
	}
}

func TestSliceBuiltin(t *testing.T) {
	v := run(t, `return [slice([1,2,3,4], 1, 3), slice("hello", 0, 2), slice([1,2], -1, 99)]`)
	l := v.(*List)
	first := l.Items[0].(*List)
	if len(first.Items) != 2 || first.Items[0] != int64(2) {
		t.Fatalf("slice list = %s", Repr(v))
	}
	if l.Items[1] != "he" {
		t.Fatalf("slice string = %s", Repr(v))
	}
}

func TestNestedDataStructures(t *testing.T) {
	v := run(t, `
let groups = {}
for e in [["a", 1], ["b", 2], ["a", 3]] {
  let k = e[0]
  if not contains(groups, k) { groups[k] = [] }
  push(groups[k], e[1])
}
return groups`)
	m := v.(*Map)
	av, _ := m.Get("a")
	if len(av.(*List).Items) != 2 {
		t.Fatalf("got %s", Repr(v))
	}
}

// --- property-based tests ---

func TestPropParseReprRoundTrip(t *testing.T) {
	// Any list of small ints: Repr parses back to an equal value.
	f := func(xs []int8) bool {
		items := make([]Value, len(xs))
		for i, x := range xs {
			items[i] = int64(x)
		}
		l := NewList(items...)
		in := NewInterp(Limits{}, nil)
		v, err := in.Run("return " + Repr(l))
		if err != nil {
			return false
		}
		return ValuesEqual(v, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSortedIsSorted(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		var sb strings.Builder
		sb.WriteString("return sorted([")
		for i, x := range xs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(Repr(int64(x)))
		}
		sb.WriteString("])")
		in := NewInterp(Limits{}, nil)
		v, err := in.Run(sb.String())
		if err != nil {
			return false
		}
		l := v.(*List)
		if len(l.Items) != len(xs) {
			return false
		}
		for i := 1; i < len(l.Items); i++ {
			if l.Items[i-1].(int64) > l.Items[i].(int64) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSumMatchesGo(t *testing.T) {
	f := func(xs []int16) bool {
		var want int64
		var sb strings.Builder
		sb.WriteString("return sum([")
		for i, x := range xs {
			want += int64(x)
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(Repr(int64(x)))
		}
		sb.WriteString("])")
		in := NewInterp(Limits{}, nil)
		v, err := in.Run(sb.String())
		if err != nil {
			return false
		}
		return v == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMapSetGet(t *testing.T) {
	f := func(keys []string) bool {
		m := NewMap()
		for i, k := range keys {
			if err := m.Set(k, int64(i)); err != nil {
				return false
			}
		}
		for i, k := range keys {
			v, ok := m.Get(k)
			if !ok {
				return false
			}
			// Later duplicate keys overwrite; accept any index matching the
			// last occurrence.
			last := i
			for j := i + 1; j < len(keys); j++ {
				if keys[j] == k {
					last = j
				}
			}
			if v != int64(last) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package nql

import (
	"strings"
	"testing"
)

// runBoth executes src on the reference tree-walking interpreter and on the
// bytecode VM with identical limits and globals, returning both outcomes.
func runBoth(t *testing.T, src string, globals func() map[string]Value) (vmVal, itVal Value, vmErr, itErr error, vmOut, itOut string) {
	t.Helper()
	var g1, g2 map[string]Value
	if globals != nil {
		g1, g2 = globals(), globals()
	}
	vm := NewInterp(Limits{}, g1)
	vm.Engine = EngineVM
	vmVal, vmErr = vm.Run(src)
	vmOut = vm.Stdout()
	it := NewInterp(Limits{}, g2)
	it.Engine = EngineInterp
	itVal, itErr = it.Run(src)
	itOut = it.Stdout()
	return
}

// assertParity fails unless the two engines produced identical results,
// stdout and error strings.
func assertParity(t *testing.T, src string, globals func() map[string]Value) {
	t.Helper()
	vmVal, itVal, vmErr, itErr, vmOut, itOut := runBoth(t, src, globals)
	if (vmErr == nil) != (itErr == nil) {
		t.Fatalf("error presence diverged\nvm:  %v\nref: %v\nsource:\n%s", vmErr, itErr, src)
	}
	if vmErr != nil && vmErr.Error() != itErr.Error() {
		t.Fatalf("error strings diverged\nvm:  %s\nref: %s\nsource:\n%s", vmErr, itErr, src)
	}
	if Repr(vmVal) != Repr(itVal) {
		t.Fatalf("results diverged\nvm:  %s\nref: %s\nsource:\n%s", Repr(vmVal), Repr(itVal), src)
	}
	if vmOut != itOut {
		t.Fatalf("stdout diverged\nvm:  %q\nref: %q\nsource:\n%s", vmOut, itOut, src)
	}
}

// TestEngineParitySemantics runs a corpus of NQL programs covering the
// full statement/expression surface on both engines and requires identical
// values and output.
func TestEngineParitySemantics(t *testing.T) {
	corpus := []string{
		// Arithmetic, logic, comparison chains.
		`return [1 + 2 * 3, 10 / 4, 10 % 3, -5 + 2, 2.5 * 2, "a" + "b", [1] + [2]]`,
		`return [1 < 2, 2 <= 2, 1 == 1.0, "a" != "b", true and false, true or false, not false, 3 and 2, 0 or "", "b" in ["a", "b"], "ell" in "hello", "k" in {"k": 1}]`,
		// Short-circuiting must skip the right operand.
		`let n = 0
func bump() { n = n + 1 return true }
let a = false and bump()
let b = true or bump()
return [a, b, n]`,
		// Scoping, shadowing, re-let, loop-variable isolation.
		`let x = 10
let y = x * 2
x = x + 1
let x = 100
if true { let x = 5 y = y + x }
for x in range(3) { }
return [x, y]`,
		// While/break/continue, nested loops, loop in function.
		`let total = 0
let i = 0
while true {
  i = i + 1
  if i > 10 { break }
  if i % 2 == 0 { continue }
  for j in range(3) { if j == 2 { break } total = total + 1 }
  total = total + i
}
return [i, total]`,
		// Functions, recursion, closures capturing and mutating state.
		`func fib(n) { if n < 2 { return n } return fib(n - 1) + fib(n - 2) }
func make_counter() {
  let n = 0
  func inc() { n = n + 1 return n }
  return inc
}
let c1 = make_counter()
let c2 = make_counter()
c1()
c1()
return [fib(10), c1(), c2()]`,
		// Per-iteration loop capture: each lambda sees its own iteration.
		`let fs = []
for i in range(3) { push(fs, fn() => i) }
let out = []
for f in fs { push(out, f()) }
return out`,
		// Capture through an intermediate function.
		`let base = 100
func outer(a) {
  func middle(b) {
    func inner(c) { return base + a + b + c }
    return inner
  }
  return middle
}
return outer(1)(2)(3)`,
		// Closure sees later assignment to a captured variable.
		`let x = 1
func f() { return x }
x = 2
return f()`,
		// Two-variable for over maps and pair lists; string iteration.
		`let m = {"a": 1, "b": 2}
let ks = ""
let vs = 0
for k, v in m { ks = ks + k vs = vs + v }
let ps = 0
for a, b in [[1, 2], [3, 4]] { ps = ps + a * b }
let n = 0
for ch in "abc" { n = n + 1 }
return [ks, vs, ps, n]`,
		// Containers: literals, indexing, negative indices, nesting, maps
		// with mixed scalar keys, dot access, index/attr assignment.
		`let l = [10, 20, 30]
l[0] = 11
let m = {1: "int", 1.5: "float", true: "bool", "s": "str"}
m[2] = "two"
let groups = {}
for e in [["a", 1], ["b", 2], ["a", 3]] {
  let k = e[0]
  if not contains(groups, k) { groups[k] = [] }
  push(groups[k], e[1])
}
return [l[-1], l[0], m[1], m[true], {"name": "sw1"}.name, groups, len(m)]`,
		// Map insertion order is observable via Repr.
		`let m = {}
m["z"] = 1
m["a"] = 2
m["z"] = 3
delete(m, "a")
m["b"] = 4
return m`,
		// Builtins: sorting with key functions, map/filter, strings.
		`let xs = [[1, "b"], [3, "a"], [2, "c"]]
let ys = range(10)
return [
  sorted(xs, fn(p) => p[1]),
  sorted([3, 1, 2], true),
  sum(map(filter(ys, fn(x) => x % 2 == 0), fn(x) => x * 2)),
  join("-", split("a.b.c", ".")),
  upper("ab"), slice("hello", 1, 3), unique([1, 2, 2, 1.0, "1"]),
  zip(["a"], [1, 2]), enumerate(["x", "y"]),
  min(3, 1, 2), max([4, 9]), round(2.345, 2), abs(-3.5), int("42"), float("2.5")
]`,
		// print capture ordering across calls and loops.
		`for i in range(3) { print("line", i) }
print("done")`,
		// return without value; script falling off the end; bare break at
		// the top level ends the script.
		`let x = 1
func f() { return }
return f()`,
		`let x = 1`,
		`let x = 1
break
return x`,
		// Lambdas as values, immediately-invoked, stored in containers.
		`let ops = {"double": fn(x) => x * 2, "neg": fn(x) => 0 - x}
return [ops["double"](21), ops["neg"](5), (fn(x) => x + 1)(41)]`,
		// Deep recursion near (but under) sensible depth.
		`func down(n) { if n == 0 { return 0 } return down(n - 1) }
return down(150)`,
		// Duplicate parameter names: the last one wins, like Define.
		`func f(x, x) { return x }
return f(1, 2)`,
		`return (fn(a, b, a) => [a, b])(1, 2, 3)`,
	}
	for i, src := range corpus {
		_ = i
		assertParity(t, src, nil)
	}
}

// TestEngineParityErrors pins that both engines produce byte-identical
// error strings (class, line and message) for the failure classes the
// benchmark's Table 5 taxonomy measures.
func TestEngineParityErrors(t *testing.T) {
	corpus := []string{
		// name errors
		"return nonexistent_variable",
		"x = 1",
		"return ghost_fn()",
		`let raw = read_csv("network_data.csv")
return 1`,
		// index errors
		"return [1][5]",
		"return [1, 2][-3]",
		`return {"a": 1}["z"]`,
		`return "abc"[7]`,
		`return [1]["x"]`,
		`let l = [1]
l[9] = 2`,
		`let m = {}
m[[1]] = 2`,
		// attribute errors
		`return {"name": "sw1"}.ghost`,
		"return [1].ghost",
		`let x = 5
x.attr = 1`,
		// argument errors
		"return len(1, 2)",
		"return sum(5)",
		`func f(a, b) { return a }
return f(1)`,
		"return (fn(x) => x)(1, 2)",
		// operation errors
		`return 1 + []`,
		`return "a" - "b"`,
		`let banner = "total nodes: " + 0
return 1`,
		"return -[1]",
		"return len(5)",
		"let f = 5 f(1)",
		"for x in 5 { }",
		`for a, b in [1] { }`,
		`for a, b in "xy" { }`,
		`return 1 in 5`,
		`return 5["k"]`,
		// value errors
		"return 1 / 0",
		"return 5 % 0",
		"return min([])",
		`return int("abc")`,
		"return sqrt(0 - 1)",
		// error position: the failing line number must match.
		`let a = 1
let b = 2
return c`,
		`let a = 1
let l = [1, 2]
let i = l[5]
return i`,
	}
	for _, src := range corpus {
		assertParity(t, src, nil)
	}
}

// TestEngineParityGlobals exercises host globals: resolution order against
// builtins, shadowing by script bindings, assignment to injected names.
func TestEngineParityGlobals(t *testing.T) {
	globals := func() map[string]Value {
		return map[string]Value{"answer": int64(42), "tags": NewList("a", "b")}
	}
	corpus := []string{
		`return answer + 1`,
		`answer = 7
return answer`,
		`let answer = 1
return answer`,
		`sorted = 5
return sorted`,
		`return len(tags)`,
		`push(tags, "c")
return tags`,
	}
	for _, src := range corpus {
		assertParity(t, src, globals)
	}
}

// TestEngineParitySequentialRuns pins that global assignments persist
// across sequential Run calls on one Interp under both engines (the
// tree-walker's host scope lives on the Interp; the VM must mirror slot
// stores into Interp-level state before the pooled machine is reset).
func TestEngineParitySequentialRuns(t *testing.T) {
	for _, engine := range []ExecEngine{EngineVM, EngineInterp} {
		in := NewInterp(Limits{}, map[string]Value{"g": int64(1)})
		in.Engine = engine
		if _, err := in.Run("g = g + 1"); err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		v, err := in.Run("return g")
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if v != int64(2) {
			t.Fatalf("engine %v: global store lost across runs: got %v, want 2", engine, v)
		}
	}
}

// TestEngineParityLimits pins identical limit errors where deterministic
// (depth, allocation) and identical classes for step budgets.
func TestEngineParityLimits(t *testing.T) {
	run := func(engine ExecEngine, limits Limits, src string) error {
		in := NewInterp(limits, nil)
		in.Engine = engine
		_, err := in.Run(src)
		return err
	}
	// Depth: the counting is call-for-call identical.
	src := "func f(n) { return f(n + 1) }\nreturn f(0)"
	vmErr := run(EngineVM, Limits{MaxDepth: 10}, src)
	itErr := run(EngineInterp, Limits{MaxDepth: 10}, src)
	if vmErr == nil || itErr == nil || vmErr.Error() != itErr.Error() {
		t.Fatalf("depth errors diverged\nvm:  %v\nref: %v", vmErr, itErr)
	}
	// Allocations: charged at the same program points.
	src = "let l = []\nwhile true { push(l, 1) }"
	vmErr = run(EngineVM, Limits{MaxAllocs: 100}, src)
	itErr = run(EngineInterp, Limits{MaxAllocs: 100}, src)
	if vmErr == nil || itErr == nil || vmErr.Error() != itErr.Error() {
		t.Fatalf("alloc errors diverged\nvm:  %v\nref: %v", vmErr, itErr)
	}
	// Steps: instruction-level accounting differs from node-level, but the
	// class and message shape must match.
	vmErr = run(EngineVM, Limits{MaxSteps: 1000}, "while true { }")
	itErr = run(EngineInterp, Limits{MaxSteps: 1000}, "while true { }")
	if ClassOf(vmErr) != "limit" || ClassOf(itErr) != "limit" {
		t.Fatalf("step limit classes diverged: vm=%v ref=%v", vmErr, itErr)
	}
	if !strings.Contains(vmErr.Error(), "step budget exceeded") {
		t.Fatalf("unexpected step error: %v", vmErr)
	}
}

// TestVMClosureCallableFromBuiltins pins that compiled closures flow
// through builtins that call back into the engine (sorted key functions).
func TestVMClosureCallableFromBuiltins(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	in.Engine = EngineVM
	v, err := in.Run(`
let xs = [3, 1, 2]
return sorted(xs, fn(x) => 0 - x)`)
	if err != nil {
		t.Fatal(err)
	}
	if Repr(v) != "[3, 2, 1]" {
		t.Fatalf("got %s", Repr(v))
	}
}

// TestVMStepLimitContainsRunaway mirrors the ablation benchmark: a runaway
// loop must be cut off promptly under a small step budget.
func TestVMStepLimitContainsRunaway(t *testing.T) {
	in := NewInterp(Limits{MaxSteps: 10_000}, nil)
	_, err := in.Run("while true { }")
	if err == nil || ClassOf(err) != "limit" {
		t.Fatalf("runaway not contained: %v", err)
	}
}

// TestProgramCompiledOnce pins that compilation is cached on the Program.
func TestProgramCompiledOnce(t *testing.T) {
	prog, err := Parse("return 1 + 2")
	if err != nil {
		t.Fatal(err)
	}
	c1, err1 := prog.Compiled()
	c2, err2 := prog.Compiled()
	if err1 != nil || err2 != nil || c1 == nil || c1 != c2 {
		t.Fatalf("Compiled not cached: %p %p (%v %v)", c1, c2, err1, err2)
	}
}

// TestDefaultEngineIsVM guards the wiring: a fresh interpreter must run on
// the VM unless explicitly switched to the reference engine.
func TestDefaultEngineIsVM(t *testing.T) {
	if DefaultEngine != EngineVM {
		t.Fatalf("DefaultEngine = %v, want EngineVM", DefaultEngine)
	}
	in := NewInterp(Limits{}, nil)
	if in.Engine != EngineVM {
		t.Fatalf("NewInterp engine = %v, want EngineVM", in.Engine)
	}
}

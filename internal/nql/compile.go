// Package nql implements the Network Query Language the framework's LLMs
// generate: lexer, parser, and two execution engines. The default engine
// compiles a parsed Program once into slot-based bytecode (Program.Compiled,
// cached on the Program, which the sandbox in turn caches by source) and
// executes it on a pooled stack VM (vm.go) — identifiers resolve to
// frame-local slot indices at compile time, literals are pre-boxed into a
// constant pool, builtins are pre-bound per global reference, and the VM's
// stacks, frames and iterator snapshots are recycled via sync.Pool so
// steady-state execution of a cached program allocates almost nothing. The
// original tree-walking interpreter (interp.go) remains available behind
// the ExecEngine switch as the reference semantics: set DefaultEngine (or
// Interp.Engine) to EngineInterp to cross-check results, as the engine
// parity tests do. Both engines share one value model, one builtin library
// and one error taxonomy, so results and error strings are identical.
package nql

import "fmt"

// ExecEngine selects how RunProgram executes a parsed program.
type ExecEngine uint8

const (
	// EngineVM compiles to bytecode and runs on the slot-based VM. Default.
	EngineVM ExecEngine = iota
	// EngineInterp tree-walks the AST — the reference engine, kept for
	// differential testing and debugging of the VM.
	EngineInterp
)

// DefaultEngine is the engine NewInterp installs. Tests and tools may flip
// it to EngineInterp to force the reference interpreter everywhere.
var DefaultEngine = EngineVM

// opcode is one VM instruction kind.
type opcode uint8

const (
	opConst       opcode = iota // push consts[a]
	opNil                       // push nil
	opTrue                      // push true
	opFalse                     // push false
	opPop                       // drop top
	opLoadLocal                 // push locals[a]
	opLoadCell                  // push locals[a].(*cell).v
	opLoadFree                  // push closure.free[a].v
	opLoadGlobal                // push resolved global a
	opStoreLocal                // locals[a] = pop
	opStoreCell                 // locals[a].(*cell).v = pop
	opStoreFree                 // closure.free[a].v = pop
	opStoreGlobal               // global a = pop (must already be bound)
	opLetCell                   // locals[a] = &cell{v: pop} (fresh cell per execution)
	opNeg                       // top = -top
	opNot                       // top = !Truthy(top)
	opTruthy                    // top = Truthy(top)
	opAdd                       // binary operators: pop r, l; push l OP r
	opSub
	opMul
	opDiv
	opMod
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opIn
	opJump         // pc = a
	opJumpFalsy    // pop; if !Truthy pc = a
	opJumpTruthy   // pop; if Truthy pc = a
	opAllocCheck   // charge a container elements against the alloc budget
	opMakeList     // pop a items; push *List
	opMakeMap      // pop a key/value pairs; push *Map
	opIndex        // pop idx, c; push c[idx]
	opSetIndex     // pop idx, c, v; c[idx] = v
	opSetAttr      // pop c, v; c.<attrs[a]> = v
	opAttr         // pop c; push member c.<attrs[a]>
	opCall         // pop a args + callee; push result (or enter frame)
	opClosure      // push closure over protos[a]
	opReturn       // pop v; leave frame with v
	opReturnNil    // leave frame with nil
	opIterPrep     // pop iterable; push iterator (a=1: two-variable form)
	opIterNext     // push next item, or pop iterator and jump to a
	opIterNextPair // push next item+second, or pop iterator and jump to a
	opIterPop      // discard innermost iterator (break out of a for loop)
)

// binOpName maps opAdd..opIn to the interpreter's operator spelling so the
// VM reuses binaryOp and produces byte-identical error messages.
var binOpName = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "in"}

// instr is one VM instruction; line carries the source line for errors and
// resource accounting, matching the tree-walker's error positions.
type instr struct {
	op   opcode
	a    int32
	line int32
}

// Code is a compiled program: the top-level function plus the tables every
// function proto of the program shares. A Code is immutable after
// compilation and safe for concurrent execution by any number of VMs.
type Code struct {
	main    *FuncProto
	consts  []Value // pre-boxed literal pool
	protos  []*FuncProto
	attrs   []string    // attribute names for opAttr/opSetAttr
	globals []globalRef // global name table with pre-bound builtins
}

// globalRef is one referenced global name. builtin holds the standard
// library binding pre-resolved at compile time (nil when the name is not a
// builtin); host globals are resolved per run and take precedence, matching
// the interpreter's script → host → builtin scope chain.
type globalRef struct {
	name    string
	builtin Value
}

// FuncProto is the compiled form of one function body (or the top level).
type FuncProto struct {
	owner      *Code
	code       []instr
	name       string // "" for lambdas, "<main>" for the top level
	nparams    int
	numSlots   int         // frame size, params included
	cellParams []int32     // param slots that must be boxed into cells on entry
	captures   []capture   // how to assemble the closure's free-variable cells
	lambda     *LambdaExpr // source lambda for effect lookup (nil for named functions)
}

// capture tells opClosure where one free-variable cell comes from: the
// creating frame's locals (fromLocal) or the creating closure's own free
// list (a variable captured through an intermediate function).
type capture struct {
	fromLocal bool
	idx       int32
}

// Compiled returns the program's bytecode, compiling on first use. The
// result is cached on the Program, so the sandbox's source-keyed program
// cache transparently becomes a bytecode cache.
func (p *Program) Compiled() (*Code, error) {
	p.compileOnce.Do(func() {
		p.code, p.compileErr = compileProgram(p)
	})
	return p.code, p.compileErr
}

// compileError marks an internal compiler failure (a malformed AST); it is
// surfaced as an internal-class runtime error.
type compileError struct{ msg string }

func (e compileError) Error() string { return "nql: compile: " + e.msg }

func compilePanicf(format string, args ...any) compileError {
	return compileError{msg: fmt.Sprintf(format, args...)}
}

func compileProgram(p *Program) (code *Code, err error) {
	defer func() {
		if r := recover(); r != nil {
			ce, ok := r.(compileError)
			if !ok {
				panic(r)
			}
			code, err = nil, &RuntimeError{Class: ErrInternal, Line: 0, Msg: ce.Error()}
		}
	}()
	c := &compiler{
		code:     &Code{},
		constIdx: map[constKey]int32{},
		globIdx:  map[string]int32{},
		attrIdx:  map[string]int32{},
	}
	f := &fnc{c: c, proto: &FuncProto{owner: c.code, name: "<main>"}}
	f.pushBlock()
	f.compileBlock(p.Stmts)
	f.emit(opReturnNil, 0, lastLine(p.Stmts))
	c.code.main = f.proto
	return c.code, nil
}

func lastLine(stmts []Stmt) int {
	if len(stmts) == 0 {
		return 1
	}
	return stmts[len(stmts)-1].Pos()
}

// compiler holds the per-Code interning tables.
type compiler struct {
	code     *Code
	constIdx map[constKey]int32
	globIdx  map[string]int32
	attrIdx  map[string]int32
}

type constKey struct {
	kind byte // 'i', 'f' or 's'
	i    int64
	f    float64
	s    string
}

func (c *compiler) constIndex(v Value) int32 {
	var key constKey
	switch x := v.(type) {
	case int64:
		key = constKey{kind: 'i', i: x}
	case float64:
		key = constKey{kind: 'f', f: x}
	case string:
		key = constKey{kind: 's', s: x}
	default:
		panic(compilePanicf("unsupported constant %T", v))
	}
	if i, ok := c.constIdx[key]; ok {
		return i
	}
	i := int32(len(c.code.consts))
	c.code.consts = append(c.code.consts, v)
	c.constIdx[key] = i
	return i
}

func (c *compiler) globalIndex(name string) int32 {
	if i, ok := c.globIdx[name]; ok {
		return i
	}
	var pre Value
	if v, ok := builtinEnv.Get(name); ok {
		pre = v
	}
	i := int32(len(c.code.globals))
	c.code.globals = append(c.code.globals, globalRef{name: name, builtin: pre})
	c.globIdx[name] = i
	return i
}

func (c *compiler) attrIndex(name string) int32 {
	if i, ok := c.attrIdx[name]; ok {
		return i
	}
	i := int32(len(c.code.attrs))
	c.code.attrs = append(c.code.attrs, name)
	c.attrIdx[name] = i
	return i
}

// binding is one declared variable within a function being compiled. sites
// records every instruction that touches it so that, when a nested function
// captures it later, those instructions are patched to their cell variants.
type binding struct {
	slot     int32
	captured bool
	sites    []site
}

type siteKind uint8

const (
	siteLoad siteKind = iota
	siteStore
	siteLet
)

type site struct {
	pc   int
	kind siteKind
}

type loopCtx struct {
	isFor  bool
	contPC int   // continue jump target
	breaks []int // opJump instructions to patch to the loop end
}

// fnc compiles one function body. Lexical blocks are compile-time only:
// each declaration gets a fresh frame slot, so shadowing needs no runtime
// scope chain. Name resolution is sequential — a reference binds to the
// declaration that textually precedes it, which matches the interpreter's
// execute-in-order Define semantics for every program whose closures read
// enclosing variables declared before the closure (the only deviation is a
// closure referencing a name `let`-declared *after* it in an enclosing
// block, which the reference engine resolves dynamically at call time; the
// engine parity tests pin that no benchmark program does this).
type fnc struct {
	c      *compiler
	parent *fnc
	proto  *FuncProto
	blocks []map[string]*binding
	params []*binding
	frees  []string
	loops  []loopCtx
}

func (f *fnc) emit(op opcode, a int32, line int) int {
	f.proto.code = append(f.proto.code, instr{op: op, a: a, line: int32(line)})
	return len(f.proto.code) - 1
}

// patch points a forward jump at the next instruction to be emitted.
func (f *fnc) patch(pc int) { f.proto.code[pc].a = int32(len(f.proto.code)) }

func (f *fnc) pushBlock() { f.blocks = append(f.blocks, map[string]*binding{}) }
func (f *fnc) popBlock()  { f.blocks = f.blocks[:len(f.blocks)-1] }

// declare binds name in the innermost block; reused reports that the block
// already declared it (re-let overwrites the same storage, like Env.Define).
func (f *fnc) declare(name string) (b *binding, reused bool) {
	blk := f.blocks[len(f.blocks)-1]
	if b, ok := blk[name]; ok {
		return b, true
	}
	b = &binding{slot: int32(f.proto.numSlots)}
	f.proto.numSlots++
	blk[name] = b
	return b, false
}

func (f *fnc) lookupLocal(name string) *binding {
	for i := len(f.blocks) - 1; i >= 0; i-- {
		if b, ok := f.blocks[i][name]; ok {
			return b
		}
	}
	return nil
}

// markCaptured flags a binding as cell-backed and rewrites every
// already-emitted instruction touching it to the cell variant.
func (f *fnc) markCaptured(b *binding) {
	if b.captured {
		return
	}
	b.captured = true
	for _, s := range b.sites {
		in := &f.proto.code[s.pc]
		switch s.kind {
		case siteLoad:
			in.op = opLoadCell
		case siteStore:
			in.op = opStoreCell
		case siteLet:
			in.op = opLetCell
		}
	}
	for _, pb := range f.params {
		if pb == b {
			f.proto.cellParams = append(f.proto.cellParams, b.slot)
		}
	}
}

// resolveFree resolves name as a captured variable of this function,
// threading the capture through intermediate functions as needed.
func (f *fnc) resolveFree(name string) (int32, bool) {
	for i, n := range f.frees {
		if n == name {
			return int32(i), true
		}
	}
	if f.parent == nil {
		return 0, false
	}
	if b := f.parent.lookupLocal(name); b != nil {
		f.parent.markCaptured(b)
		f.frees = append(f.frees, name)
		f.proto.captures = append(f.proto.captures, capture{fromLocal: true, idx: b.slot})
		return int32(len(f.frees) - 1), true
	}
	if idx, ok := f.parent.resolveFree(name); ok {
		f.frees = append(f.frees, name)
		f.proto.captures = append(f.proto.captures, capture{fromLocal: false, idx: idx})
		return int32(len(f.frees) - 1), true
	}
	return 0, false
}

func (f *fnc) emitLoad(name string, line int) {
	if b := f.lookupLocal(name); b != nil {
		op := opLoadLocal
		if b.captured {
			op = opLoadCell
		}
		pc := f.emit(op, b.slot, line)
		b.sites = append(b.sites, site{pc: pc, kind: siteLoad})
		return
	}
	if idx, ok := f.resolveFree(name); ok {
		f.emit(opLoadFree, idx, line)
		return
	}
	f.emit(opLoadGlobal, f.c.globalIndex(name), line)
}

// emitStore compiles assignment to an existing binding (never declares).
func (f *fnc) emitStore(name string, line int) {
	if b := f.lookupLocal(name); b != nil {
		op := opStoreLocal
		if b.captured {
			op = opStoreCell
		}
		pc := f.emit(op, b.slot, line)
		b.sites = append(b.sites, site{pc: pc, kind: siteStore})
		return
	}
	if idx, ok := f.resolveFree(name); ok {
		f.emit(opStoreFree, idx, line)
		return
	}
	f.emit(opStoreGlobal, f.c.globalIndex(name), line)
}

// emitLet compiles `let name = <top of stack>`. A fresh declaration of a
// captured variable creates a new cell per execution — that is what gives
// loop bodies their per-iteration capture semantics, mirroring the
// interpreter's per-iteration environments.
func (f *fnc) emitLet(name string, line int) {
	b, reused := f.declare(name)
	kind := siteLet
	op := opStoreLocal
	switch {
	case reused && b.captured:
		kind, op = siteStore, opStoreCell
	case reused:
		kind = siteStore
	case b.captured:
		// Unreachable in practice (a fresh binding cannot be captured yet),
		// kept for safety.
		op = opLetCell
	}
	pc := f.emit(op, b.slot, line)
	b.sites = append(b.sites, site{pc: pc, kind: kind})
}

func (f *fnc) compileBlock(stmts []Stmt) {
	for _, st := range stmts {
		f.compileStmt(st)
	}
}

func (f *fnc) compileStmt(st Stmt) {
	switch s := st.(type) {
	case *LetStmt:
		f.compileExpr(s.Init)
		f.emitLet(s.Name, s.Line)
	case *AssignStmt:
		// The interpreter evaluates the assigned value before the target's
		// container and index; preserve that order exactly.
		f.compileExpr(s.Value)
		switch t := s.Target.(type) {
		case *Ident:
			f.emitStore(t.Name, s.Line)
		case *IndexExpr:
			f.compileExpr(t.X)
			f.compileExpr(t.Index)
			f.emit(opSetIndex, 0, s.Line)
		case *AttrExpr:
			f.compileExpr(t.X)
			f.emit(opSetAttr, f.c.attrIndex(t.Name), s.Line)
		default:
			panic(compilePanicf("bad assignment target %T", s.Target))
		}
	case *ExprStmt:
		f.compileExpr(s.X)
		f.emit(opPop, 0, s.Line)
	case *IfStmt:
		f.compileExpr(s.Cond)
		jElse := f.emit(opJumpFalsy, 0, s.Line)
		f.pushBlock()
		f.compileBlock(s.Then)
		f.popBlock()
		if s.Else == nil {
			f.patch(jElse)
			return
		}
		jEnd := f.emit(opJump, 0, s.Line)
		f.patch(jElse)
		f.pushBlock()
		f.compileBlock(s.Else)
		f.popBlock()
		f.patch(jEnd)
	case *WhileStmt:
		start := len(f.proto.code)
		f.compileExpr(s.Cond)
		jEnd := f.emit(opJumpFalsy, 0, s.Line)
		f.loops = append(f.loops, loopCtx{contPC: start})
		f.pushBlock()
		f.compileBlock(s.Body)
		f.popBlock()
		f.emit(opJump, int32(start), s.Line)
		lp := f.loops[len(f.loops)-1]
		f.loops = f.loops[:len(f.loops)-1]
		f.patch(jEnd)
		for _, br := range lp.breaks {
			f.patch(br)
		}
	case *ForStmt:
		f.compileExpr(s.Iter)
		pairs := int32(0)
		if s.Var2 != "" {
			pairs = 1
		}
		f.emit(opIterPrep, pairs, s.Line)
		next := len(f.proto.code)
		f.pushBlock()
		var jEnd int
		if s.Var2 != "" {
			jEnd = f.emit(opIterNextPair, 0, s.Line)
			f.emitLet(s.Var2, s.Line) // second value is on top
			f.emitLet(s.Var, s.Line)
		} else {
			jEnd = f.emit(opIterNext, 0, s.Line)
			f.emitLet(s.Var, s.Line)
		}
		f.loops = append(f.loops, loopCtx{isFor: true, contPC: next})
		f.compileBlock(s.Body)
		f.popBlock()
		f.emit(opJump, int32(next), s.Line)
		lp := f.loops[len(f.loops)-1]
		f.loops = f.loops[:len(f.loops)-1]
		f.patch(jEnd)
		for _, br := range lp.breaks {
			f.patch(br)
		}
	case *FuncStmt:
		// Bind the name before compiling the body so recursion resolves to
		// this binding; seed the slot with nil, then overwrite with the
		// closure. The two stores are patched to cell variants when the body
		// (or a later closure) captures the function itself.
		f.emit(opNil, 0, s.Line)
		f.emitLet(s.Name, s.Line)
		idx := f.compileFunction(s.Name, s.Params, s.Body, nil, s.Line)
		f.emit(opClosure, idx, s.Line)
		f.emitStore(s.Name, s.Line)
	case *ReturnStmt:
		if s.Value == nil {
			f.emit(opReturnNil, 0, s.Line)
			return
		}
		f.compileExpr(s.Value)
		f.emit(opReturn, 0, s.Line)
	case *BreakStmt:
		if len(f.loops) == 0 {
			// Control flowing out of a function (or the script) without an
			// enclosing loop ends it with nil, as the interpreter's control
			// propagation does.
			f.emit(opReturnNil, 0, s.Line)
			return
		}
		lp := &f.loops[len(f.loops)-1]
		if lp.isFor {
			f.emit(opIterPop, 0, s.Line)
		}
		lp.breaks = append(lp.breaks, f.emit(opJump, 0, s.Line))
	case *ContinueStmt:
		if len(f.loops) == 0 {
			f.emit(opReturnNil, 0, s.Line)
			return
		}
		f.emit(opJump, int32(f.loops[len(f.loops)-1].contPC), s.Line)
	default:
		panic(compilePanicf("unknown statement %T", st))
	}
}

func (f *fnc) compileFunction(name string, params []string, body []Stmt, lam *LambdaExpr, line int) int32 {
	nf := &fnc{
		c:      f.c,
		parent: f,
		proto:  &FuncProto{owner: f.c.code, name: name, nparams: len(params), lambda: lam},
	}
	nf.pushBlock()
	for i, p := range params {
		// Every parameter owns its positional slot; a repeated name rebinds
		// to the later slot, matching the interpreter's Define-overwrites
		// semantics (the last duplicate argument wins).
		b := &binding{slot: int32(i)}
		nf.blocks[0][p] = b
		nf.params = append(nf.params, b)
	}
	nf.proto.numSlots = len(params)
	if lam != nil { // lambda
		nf.compileExpr(lam.Body)
		nf.emit(opReturn, 0, line)
	} else {
		nf.compileBlock(body)
		nf.emit(opReturnNil, 0, lastLine(body))
	}
	f.c.code.protos = append(f.c.code.protos, nf.proto)
	return int32(len(f.c.code.protos) - 1)
}

func (f *fnc) compileExpr(e Expr) {
	switch x := e.(type) {
	case *IntLit:
		f.emitConst(x.box, x.Value, x.Line)
	case *FloatLit:
		f.emitConst(x.box, x.Value, x.Line)
	case *StringLit:
		f.emitConst(x.box, x.Value, x.Line)
	case *BoolLit:
		if x.Value {
			f.emit(opTrue, 0, x.Line)
		} else {
			f.emit(opFalse, 0, x.Line)
		}
	case *NilLit:
		f.emit(opNil, 0, x.Line)
	case *Ident:
		f.emitLoad(x.Name, x.Line)
	case *ListLit:
		// The interpreter charges the alloc budget before evaluating the
		// items; keep that order so budget errors win identically.
		f.emit(opAllocCheck, int32(len(x.Items)), x.Line)
		for _, it := range x.Items {
			f.compileExpr(it)
		}
		f.emit(opMakeList, int32(len(x.Items)), x.Line)
	case *MapLit:
		f.emit(opAllocCheck, int32(len(x.Keys)), x.Line)
		for i := range x.Keys {
			f.compileExpr(x.Keys[i])
			f.compileExpr(x.Values[i])
		}
		f.emit(opMakeMap, int32(len(x.Keys)), x.Line)
	case *UnaryExpr:
		f.compileExpr(x.X)
		switch x.Op {
		case "-":
			f.emit(opNeg, 0, x.Line)
		case "not":
			f.emit(opNot, 0, x.Line)
		default:
			panic(compilePanicf("unknown unary op %q", x.Op))
		}
	case *BinaryExpr:
		switch x.Op {
		case "and":
			f.compileExpr(x.Left)
			jFalse := f.emit(opJumpFalsy, 0, x.Line)
			f.compileExpr(x.Right)
			f.emit(opTruthy, 0, x.Line)
			jEnd := f.emit(opJump, 0, x.Line)
			f.patch(jFalse)
			f.emit(opFalse, 0, x.Line)
			f.patch(jEnd)
		case "or":
			f.compileExpr(x.Left)
			jTrue := f.emit(opJumpTruthy, 0, x.Line)
			f.compileExpr(x.Right)
			f.emit(opTruthy, 0, x.Line)
			jEnd := f.emit(opJump, 0, x.Line)
			f.patch(jTrue)
			f.emit(opTrue, 0, x.Line)
			f.patch(jEnd)
		default:
			f.compileExpr(x.Left)
			f.compileExpr(x.Right)
			f.emit(binOpcode(x.Op), 0, x.Line)
		}
	case *IndexExpr:
		f.compileExpr(x.X)
		f.compileExpr(x.Index)
		f.emit(opIndex, 0, x.Line)
	case *AttrExpr:
		f.compileExpr(x.X)
		f.emit(opAttr, f.c.attrIndex(x.Name), x.Line)
	case *CallExpr:
		f.compileExpr(x.Fn)
		for _, a := range x.Args {
			f.compileExpr(a)
		}
		f.emit(opCall, int32(len(x.Args)), x.Line)
	case *LambdaExpr:
		idx := f.compileFunction("", x.Params, nil, x, x.Line)
		f.emit(opClosure, idx, x.Line)
	default:
		panic(compilePanicf("unknown expression %T", e))
	}
}

// emitConst pushes a pre-boxed literal; raw covers literals constructed
// without the parser's boxing.
func (f *fnc) emitConst(box Value, raw Value, line int) {
	v := box
	if v == nil {
		v = raw
	}
	f.emit(opConst, f.c.constIndex(v), line)
}

func binOpcode(op string) opcode {
	switch op {
	case "+":
		return opAdd
	case "-":
		return opSub
	case "*":
		return opMul
	case "/":
		return opDiv
	case "%":
		return opMod
	case "==":
		return opEq
	case "!=":
		return opNe
	case "<":
		return opLt
	case "<=":
		return opLe
	case ">":
		return opGt
	case ">=":
		return opGe
	case "in":
		return opIn
	}
	panic(compilePanicf("unknown operator %q", op))
}

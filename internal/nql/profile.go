package nql

import (
	"sort"
	"time"
)

// VMProfile collects an opcode-class and builtin execution profile for one
// VM run. It is attached via Limits.Profile and is strictly opt-in: the
// run loop hoists the pointer once and pays a single predictable nil
// branch per instruction when profiling is off (gated by
// BenchmarkObsOverhead and the NQLVM benchdiff watch).
//
// Opcode counts are exact. Time attribution is sampled: every SampleEvery
// instructions the profile reads the clock and charges the elapsed delta
// to the opcode class executing at the sample point — reading the clock
// per instruction would distort the measurement it reports. Builtin calls
// are measured exactly (time and allocation-budget charge around each
// call), since builtins are where NQL programs actually spend wall time.
//
// A VMProfile belongs to one run on one goroutine; it is not safe for
// concurrent use.
type VMProfile struct {
	// SampleEvery is the time-sampling stride in instructions; 0 means
	// DefaultProfileSample.
	SampleEvery int

	counts  [numOpClasses]int64
	timeNS  [numOpClasses]int64
	samples int64

	sinceSample int
	lastSample  time.Time

	builtins map[string]*builtinStat
}

type builtinStat struct {
	calls  int64
	ns     int64
	allocs int64
}

// DefaultProfileSample is the default instruction stride between clock
// samples: coarse enough to keep profiled runs near full speed, fine
// enough to place time within a dispatch quantum.
const DefaultProfileSample = 64

// NewVMProfile returns an empty profile with the default sampling stride.
func NewVMProfile() *VMProfile {
	return &VMProfile{SampleEvery: DefaultProfileSample, builtins: make(map[string]*builtinStat)}
}

// Opcode classes group the VM's opcodes by what they do, the granularity
// at which "where did the interpreter spend its time" is answerable from
// sampled deltas.
const (
	opClassLoad  = iota // constants, locals, cells, globals, stack shuffling
	opClassStore        // stores and cell binds
	opClassArith        // unary and binary operators
	opClassJump         // branches and unconditional jumps
	opClassAlloc        // list/map construction and alloc accounting
	opClassIndex        // indexing, attribute and member access
	opClassCall         // calls, closures, returns
	opClassIter         // iterator prep/next/pop
	numOpClasses
)

var opClassNames = [numOpClasses]string{
	"load", "store", "arith", "jump", "alloc", "index", "call", "iter",
}

// opClassTable maps every opcode to its class, built once from the enum
// layout in compile.go (contiguous ranges per class).
var opClassTable = func() [opIterPop + 1]uint8 {
	var t [opIterPop + 1]uint8
	for op := opConst; op <= opIterPop; op++ {
		var c uint8
		switch {
		case op <= opLoadGlobal:
			c = opClassLoad
		case op <= opLetCell:
			c = opClassStore
		case op <= opIn:
			c = opClassArith
		case op <= opJumpTruthy:
			c = opClassJump
		case op <= opMakeMap:
			c = opClassAlloc
		case op <= opAttr:
			c = opClassIndex
		case op <= opReturnNil:
			c = opClassCall
		default:
			c = opClassIter
		}
		t[op] = c
	}
	return t
}()

// note records one executed instruction and, at the sampling stride,
// charges the elapsed wall time to the class at the sample point.
func (p *VMProfile) note(op opcode) {
	c := opClassTable[op]
	p.counts[c]++
	p.sinceSample++
	every := p.SampleEvery
	if every <= 0 {
		every = DefaultProfileSample
	}
	if p.sinceSample >= every {
		p.sinceSample = 0
		now := time.Now()
		if !p.lastSample.IsZero() {
			p.timeNS[c] += now.Sub(p.lastSample).Nanoseconds()
			p.samples++
		}
		p.lastSample = now
	}
}

// noteBuiltin records one builtin call with its exact duration and the
// allocation-budget elements it charged. Durations are inclusive: a
// builtin that re-enters the VM (sorted's key function, frame.apply)
// keeps the nested time.
func (p *VMProfile) noteBuiltin(name string, d time.Duration, allocs int) {
	if p.builtins == nil {
		p.builtins = make(map[string]*builtinStat)
	}
	st := p.builtins[name]
	if st == nil {
		st = &builtinStat{}
		p.builtins[name] = st
	}
	st.calls++
	st.ns += d.Nanoseconds()
	st.allocs += int64(allocs)
}

// OpClassStat is one opcode class in a report.
type OpClassStat struct {
	Class     string `json:"class"`
	Count     int64  `json:"count"`
	SampledNS int64  `json:"sampled_ns"`
}

// BuiltinStat is one builtin's exact totals in a report.
type BuiltinStat struct {
	Name   string `json:"name"`
	Calls  int64  `json:"calls"`
	NS     int64  `json:"ns"`
	Allocs int64  `json:"allocs"`
}

// VMProfileReport is the JSON shape attached to query responses.
type VMProfileReport struct {
	Opcodes  []OpClassStat `json:"opcodes,omitempty"`
	Builtins []BuiltinStat `json:"builtins,omitempty"`
	Samples  int64         `json:"samples"`
}

// Report summarizes the profile: opcode classes by descending count,
// builtins by descending exact time, both with deterministic name
// tie-breaks. Classes never executed are omitted.
func (p *VMProfile) Report() *VMProfileReport {
	if p == nil {
		return nil
	}
	r := &VMProfileReport{Samples: p.samples}
	for c := 0; c < numOpClasses; c++ {
		if p.counts[c] == 0 {
			continue
		}
		r.Opcodes = append(r.Opcodes, OpClassStat{Class: opClassNames[c], Count: p.counts[c], SampledNS: p.timeNS[c]})
	}
	sort.Slice(r.Opcodes, func(i, j int) bool {
		if r.Opcodes[i].Count != r.Opcodes[j].Count {
			return r.Opcodes[i].Count > r.Opcodes[j].Count
		}
		return r.Opcodes[i].Class < r.Opcodes[j].Class
	})
	for name, st := range p.builtins {
		r.Builtins = append(r.Builtins, BuiltinStat{Name: name, Calls: st.calls, NS: st.ns, Allocs: st.allocs})
	}
	sort.Slice(r.Builtins, func(i, j int) bool {
		if r.Builtins[i].NS != r.Builtins[j].NS {
			return r.Builtins[i].NS > r.Builtins[j].NS
		}
		return r.Builtins[i].Name < r.Builtins[j].Name
	})
	return r
}

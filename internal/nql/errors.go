package nql

import "fmt"

// SyntaxError reports malformed NQL source with a 1-based line number. The
// benchmark's error classifier maps it to the paper's "Syntax error" class.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("nql syntax error on line %d: %s", e.Line, e.Msg)
}

// ErrClass categorizes runtime failures; the classes mirror the paper's
// Table 5 error taxonomy so failures of generated code can be bucketed.
type ErrClass string

// Runtime error classes.
const (
	ErrName     ErrClass = "name"      // unknown variable or function (imaginary functions/files)
	ErrAttr     ErrClass = "attribute" // imaginary graph/node/edge attribute or object member
	ErrArg      ErrClass = "argument"  // wrong number or type of call arguments
	ErrOp       ErrClass = "operation" // unsupported operation on operand types
	ErrIndex    ErrClass = "index"     // index out of range / bad key
	ErrValue    ErrClass = "value"     // domain error (e.g. negative k)
	ErrLimit    ErrClass = "limit"     // sandbox resource budget exceeded
	ErrInternal ErrClass = "internal"
)

// RuntimeError is a categorized NQL execution failure.
type RuntimeError struct {
	Class ErrClass
	Line  int
	Msg   string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("nql %s error on line %d: %s", e.Class, e.Line, e.Msg)
}

func errf(class ErrClass, line int, format string, args ...any) *RuntimeError {
	return &RuntimeError{Class: class, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ClassOf extracts the error class from an error, defaulting to internal.
// Syntax errors report class "syntax".
func ClassOf(err error) string {
	switch e := err.(type) {
	case *RuntimeError:
		return string(e.Class)
	case *SyntaxError:
		return "syntax"
	default:
		return string(ErrInternal)
	}
}

package nql

import "fmt"

// SyntaxError reports malformed NQL source with a 1-based line number. The
// benchmark's error classifier maps it to the paper's "Syntax error" class.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("nql syntax error on line %d: %s", e.Line, e.Msg)
}

// ErrClass categorizes runtime failures; the classes mirror the paper's
// Table 5 error taxonomy so failures of generated code can be bucketed.
type ErrClass string

// Runtime error classes.
const (
	ErrName     ErrClass = "name"      // unknown variable or function (imaginary functions/files)
	ErrAttr     ErrClass = "attribute" // imaginary graph/node/edge attribute or object member
	ErrArg      ErrClass = "argument"  // wrong number or type of call arguments
	ErrOp       ErrClass = "operation" // unsupported operation on operand types
	ErrIndex    ErrClass = "index"     // index out of range / bad key
	ErrValue    ErrClass = "value"     // domain error (e.g. negative k)
	ErrLimit    ErrClass = "limit"     // sandbox resource budget exceeded
	ErrCancel   ErrClass = "cancelled" // host context cancelled or its deadline passed
	ErrInternal ErrClass = "internal"
)

// RuntimeError is a categorized NQL execution failure. Cause, when set,
// carries the underlying host error (e.g. context.Canceled) for
// errors.Is/As without perturbing the rendered message.
type RuntimeError struct {
	Class ErrClass
	Line  int
	Msg   string
	Cause error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("nql %s error on line %d: %s", e.Class, e.Line, e.Msg)
}

// Unwrap exposes the underlying cause to errors.Is/As (nil for most
// runtime errors).
func (e *RuntimeError) Unwrap() error { return e.Cause }

func errf(class ErrClass, line int, format string, args ...any) *RuntimeError {
	return &RuntimeError{Class: class, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// CancelError builds the ErrCancel-class error surfaced when a host
// context is cancelled mid-run. Both engines and every cancellable host
// binding construct it the same way, so the rendered message depends only
// on the cause and stays engine-identical; errors.Is sees the cause.
func CancelError(line int, cause error) *RuntimeError {
	return &RuntimeError{Class: ErrCancel, Line: line, Msg: "query cancelled: " + cause.Error(), Cause: cause}
}

func cancelErr(line int, cause error) *RuntimeError { return CancelError(line, cause) }

// ClassOf extracts the error class from an error, defaulting to internal.
// Syntax errors report class "syntax".
func ClassOf(err error) string {
	switch e := err.(type) {
	case *RuntimeError:
		return string(e.Class)
	case *SyntaxError:
		return "syntax"
	default:
		return string(ErrInternal)
	}
}

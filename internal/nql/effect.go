package nql

// Effect is the static effect summary the semantic analyzer
// (internal/nql/analysis) stamps on lambda expressions. It is a bitset so
// independent guarantees compose; the zero value means "not analyzed",
// which every consumer must treat as "may do anything".
//
// The bits are *proofs*, not hints: a set bit is only stamped when the
// analyzer can show the property holds for every execution of the lambda
// body (given the bit's argument assumption). Consumers that relax
// behavior on the strength of a bit — the federated planner's pipeline
// classification being the motivating one — may do so without a dynamic
// re-check.
type Effect uint32

const (
	// EffectPure: evaluating the lambda body performs no observable side
	// effect — no print, no mutation of arguments or captured state, no
	// calls except to builtins themselves known pure.
	EffectPure Effect = 1 << iota

	// EffectTotal: the body cannot fail for arguments of any type. Like
	// EffectRowTotal, this excludes the sandbox's resource budget (step,
	// wall-clock and cancellation checkpoints), which is accounted to the
	// whole run, not the expression.
	EffectTotal

	// EffectRowTotal: the body cannot fail when every parameter is bound
	// to a map — the calling convention of federate.FuncPred, whose rows
	// are *nql.Map. Implied by EffectTotal; stamped separately because
	// predicates routinely use map-shaped operations (get(row, k, d))
	// that are only total once the argument is known to be a map.
	EffectRowTotal
)

// Pure reports the EffectPure bit.
func (e Effect) Pure() bool { return e&EffectPure != 0 }

// RowTotal reports whether the lambda cannot fail on map arguments
// (either totality bit suffices).
func (e Effect) RowTotal() bool { return e&(EffectTotal|EffectRowTotal) != 0 }

// SetEffect records the analyzer's effect summary on the lambda. Safe for
// concurrent use with Effect(): programs live in shared caches, so a late
// analysis pass may race with an execution reading the stamp — the reader
// then sees either the proof or the conservative zero.
func (x *LambdaExpr) SetEffect(e Effect) { x.eff.Store(uint32(e)) }

// Effect returns the stamped effect summary (zero when never analyzed).
func (x *LambdaExpr) Effect() Effect { return Effect(x.eff.Load()) }

// Effect reports the static effect stamped on the closure's source
// lambda, for closures produced by either engine (tree-walking
// interpreter or VM). Named functions and closures from unanalyzed
// programs report zero.
func (c *Closure) Effect() Effect {
	if c.lambda != nil {
		return c.lambda.Effect()
	}
	if c.proto != nil && c.proto.lambda != nil {
		return c.proto.lambda.Effect()
	}
	return 0
}

// NumParams reports the closure's parameter count for either engine.
func (c *Closure) NumParams() int {
	if c.proto != nil {
		return c.proto.nparams
	}
	return len(c.Params)
}

package nql

import (
	"testing"
)

func evalExprTest(t *testing.T, src string) Value {
	t.Helper()
	in := NewInterp(Limits{}, nil)
	v, err := in.Run("return " + src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"2 + 3 * 4", int64(14)},
		{"(2 + 3) * 4", int64(20)},
		{"10 - 4 - 3", int64(3)},     // left associative
		{"2 * 3 % 4", int64(2)},      // same tier, left assoc
		{"100 / 10 / 2", float64(5)}, // division left assoc
		{"-2 * 3", int64(-6)},
		{"-(2 + 3)", int64(-5)},
		{"1 + 2 < 4", true},               // additive binds tighter than comparison
		{"1 < 2 and 3 < 2", false},        // comparison binds tighter than and
		{"false and false or true", true}, // and binds tighter than or
		{"not 1 == 2", true},              // not applies to the comparison
		{"not true or true", true},
		{"1 + 2 == 3 and 4 < 5", true},
		{"3 in [1, 2, 3] and true", true},
	}
	for _, c := range cases {
		if got := evalExprTest(t, c.src); !ValuesEqual(got, c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestChainedPostfix(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	v, err := in.Run(`
let m = {"xs": [[1, 2], [3, 4]]}
return m["xs"][1][0]`)
	if err != nil || v != int64(3) {
		t.Fatalf("v=%v err=%v", v, err)
	}
}

func TestCallChaining(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	v, err := in.Run(`
func make() { return fn(x) => x * 2 }
return make()(21)`)
	if err != nil || v != int64(42) {
		t.Fatalf("v=%v err=%v", v, err)
	}
}

func TestLambdaInExpression(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	v, err := in.Run(`return (fn(a, b) => a + b)(20, 22)`)
	if err != nil || v != int64(42) {
		t.Fatalf("v=%v err=%v", v, err)
	}
}

func TestNestedFunctionScoping(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	v, err := in.Run(`
let x = 1
func outer() {
  let x = 2
  func inner() { return x }
  return inner()
}
return [outer(), x]`)
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*List)
	if l.Items[0] != int64(2) || l.Items[1] != int64(1) {
		t.Fatalf("got %s", Repr(v))
	}
}

func TestBlockScopeShadowing(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	v, err := in.Run(`
let x = 1
if true {
  let x = 2
}
return x`)
	if err != nil || v != int64(1) {
		t.Fatalf("let in block should shadow, not overwrite: v=%v err=%v", v, err)
	}
	// Assignment (no let) reaches the outer binding.
	v2, err := in.Run(`
let y = 1
if true {
  y = 2
}
return y`)
	if err != nil || v2 != int64(2) {
		t.Fatalf("assignment should mutate outer: v=%v err=%v", v2, err)
	}
}

func TestLoopVariableFreshPerIteration(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	v, err := in.Run(`
let fns = []
for i in range(3) {
  push(fns, fn(x) => x + i)
}
return [fns[0](0), fns[1](0), fns[2](0)]`)
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*List)
	if l.Items[0] != int64(0) || l.Items[1] != int64(1) || l.Items[2] != int64(2) {
		t.Fatalf("closures should capture per-iteration bindings: %s", Repr(v))
	}
}

func TestFloatLiteralForms(t *testing.T) {
	cases := map[string]float64{
		"1.5":   1.5,
		"0.25":  0.25,
		"2e3":   2000,
		"1.5e2": 150,
		"1e-2":  0.01,
		"3E+2":  300,
	}
	for src, want := range cases {
		if got := evalExprTest(t, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	if got := evalExprTest(t, `"a\nb\t\"c\"\\"`); got != "a\nb\t\"c\"\\" {
		t.Fatalf("got %q", got)
	}
	if got := evalExprTest(t, `'single \'quoted\''`); got != "single 'quoted'" {
		t.Fatalf("got %q", got)
	}
}

func TestTrailingCommas(t *testing.T) {
	if got := evalExprTest(t, "[1, 2, 3,]"); len(got.(*List).Items) != 3 {
		t.Fatalf("list trailing comma: %s", Repr(got))
	}
	m := evalExprTest(t, `{"a": 1, "b": 2,}`)
	if m.(*Map).Len() != 2 {
		t.Fatalf("map trailing comma: %s", Repr(m))
	}
}

func TestErrorLineFidelity(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	_, err := in.Run(`let a = 1
let b = 2
let c = a + nope
return c`)
	re, ok := err.(*RuntimeError)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if re.Line != 3 {
		t.Fatalf("line = %d, want 3", re.Line)
	}
}

func TestDeeplyNestedExpressions(t *testing.T) {
	// 60 levels of parentheses should parse without issue.
	src := "return "
	for i := 0; i < 60; i++ {
		src += "("
	}
	src += "1"
	for i := 0; i < 60; i++ {
		src += ")"
	}
	in := NewInterp(Limits{}, nil)
	if v, err := in.Run(src); err != nil || v != int64(1) {
		t.Fatalf("v=%v err=%v", v, err)
	}
}

func TestKeywordsNotIdentifiers(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	if _, err := in.Run("let for = 1"); err == nil {
		t.Fatal("keyword as identifier should fail")
	}
	if _, err := in.Run("let iff = 1\nreturn iff"); err != nil {
		t.Fatalf("keyword-prefixed identifier should work: %v", err)
	}
}

func TestEmptyProgram(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	v, err := in.Run("")
	if err != nil || v != nil {
		t.Fatalf("empty program: v=%v err=%v", v, err)
	}
	v, err = in.Run("# only a comment")
	if err != nil || v != nil {
		t.Fatalf("comment-only: v=%v err=%v", v, err)
	}
}

func TestBareReturn(t *testing.T) {
	in := NewInterp(Limits{}, nil)
	v, err := in.Run("return")
	if err != nil || v != nil {
		t.Fatalf("bare return: v=%v err=%v", v, err)
	}
	// Bare return followed by another statement inside a function.
	v2, err := in.Run(`
func f(x) {
  if x { return }
  return 1
}
return [f(true), f(false)]`)
	if err != nil {
		t.Fatal(err)
	}
	l := v2.(*List)
	if l.Items[0] != nil || l.Items[1] != int64(1) {
		t.Fatalf("got %s", Repr(v2))
	}
}

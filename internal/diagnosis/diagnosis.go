// Package diagnosis implements the paper's §5 "expanding benchmarks"
// direction as a working extension: a network failure diagnosis
// application in the spirit of Shrink (Kandula et al., MineNet 2005).
//
// The workload is a communication graph whose links carry an up/down
// status, plus a set of end-to-end probes (paths) with observed outcomes —
// a probe succeeds iff every link it traverses is up. Operators ask
// fault-localization questions in natural language; generated code reasons
// over the probe evidence. The application plugs into the same framework
// boxes as the two paper applications: a wrapper (box 1) describing the
// data model per backend, and the shared prompt/LLM/sandbox pipeline.
package diagnosis

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dataframe"
	"repro/internal/graph"
	"repro/internal/prompt"
	"repro/internal/sqldb"
	"repro/internal/traffic"
)

// Probe is one end-to-end measurement over a path of node ids.
type Probe struct {
	ID   string
	Path []string
	OK   bool
}

// Workload is a diagnosis scenario: a status-annotated communication graph
// and probe observations.
type Workload struct {
	G      *graph.Graph
	Probes []Probe
}

// Config controls scenario generation.
type Config struct {
	Nodes, Edges int
	Seed         int64
	FailedLinks  int // links marked down
	Probes       int // probe paths generated
	MaxPathLen   int // random-walk probe length cap (default 5)
}

// Generate builds a deterministic diagnosis scenario. Every edge gets a
// "status" attribute ("up"/"down"); probes are random directed walks whose
// observed outcome is consistent with the injected failures.
func Generate(cfg Config) *Workload {
	if cfg.MaxPathLen <= 0 {
		cfg.MaxPathLen = 5
	}
	g := traffic.Generate(traffic.Config{Nodes: cfg.Nodes, Edges: cfg.Edges, Seed: cfg.Seed})
	r := rand.New(rand.NewSource(cfg.Seed + 7919))
	edges := g.Edges()
	for _, e := range edges {
		g.SetEdgeAttr(e.U, e.V, "status", "up")
	}
	down := map[graph.EdgeKey]bool{}
	for len(down) < cfg.FailedLinks && len(down) < len(edges) {
		e := edges[r.Intn(len(edges))]
		k := graph.EdgeKey{U: e.U, V: e.V}
		if !down[k] {
			down[k] = true
			g.SetEdgeAttr(e.U, e.V, "status", "down")
		}
	}
	w := &Workload{G: g}
	nodes := g.Nodes()
	for i := 0; i < cfg.Probes; i++ {
		// Random walk along out-edges.
		start := nodes[r.Intn(len(nodes))]
		path := []string{start}
		ok := true
		cur := start
		for hop := 0; hop < 1+r.Intn(cfg.MaxPathLen); hop++ {
			nbrs := g.Neighbors(cur)
			if len(nbrs) == 0 {
				break
			}
			next := nbrs[r.Intn(len(nbrs))]
			if down[graph.EdgeKey{U: cur, V: next}] {
				ok = false
			}
			path = append(path, next)
			cur = next
		}
		if len(path) < 2 {
			continue
		}
		w.Probes = append(w.Probes, Probe{
			ID:   fmt.Sprintf("p%03d", len(w.Probes)),
			Path: path,
			OK:   ok,
		})
	}
	return w
}

// Clone deep-copies the workload.
func (w *Workload) Clone() *Workload {
	out := &Workload{G: w.G.Clone()}
	for _, p := range w.Probes {
		out.Probes = append(out.Probes, Probe{
			ID: p.ID, Path: append([]string(nil), p.Path...), OK: p.OK,
		})
	}
	return out
}

// Frames converts the workload into tabular form: the traffic node/edge
// frames (edges gain a status column) plus a probes frame (pid, path, ok)
// where path joins node ids with ">".
func (w *Workload) Frames() (nodes, edges, probes *dataframe.Frame) {
	nodes, edges = traffic.Frames(w.G)
	var err error
	edges, err = edges.Mutate("status", func(row map[string]any) (any, error) {
		return w.G.EdgeAttrs(row["src"].(string), row["dst"].(string))["status"], nil
	})
	if err != nil {
		panic(err) // columns are guaranteed present
	}
	probes = dataframe.New("pid", "path", "ok")
	for _, p := range w.Probes {
		probes.AppendRow(p.ID, strings.Join(p.Path, ">"), p.OK)
	}
	return nodes, edges, probes
}

// Database converts the workload into relational form with tables nodes,
// edges (incl. status) and probes(pid, path, ok).
func (w *Workload) Database() *sqldb.DB {
	nodes, edges, probes := w.Frames()
	db := sqldb.NewDB()
	db.CreateTable("nodes", nodes)
	db.CreateTable("edges", edges)
	db.CreateTable("probes", probes)
	return db
}

// Wrapper is the diagnosis application wrapper (framework box 1).
type Wrapper struct {
	W *Workload
}

// NewWrapper wraps w.
func NewWrapper(w *Workload) *Wrapper { return &Wrapper{W: w} }

// Name identifies the application.
func (w *Wrapper) Name() string { return "network failure diagnosis" }

// Describe returns the per-backend data-model description.
func (w *Wrapper) Describe(backend string) string {
	common := "The data is a directed communication graph under fault " +
		"diagnosis. Each edge has integer attributes \"bytes\", " +
		"\"connections\", \"packets\" and a string attribute \"status\" " +
		"(\"up\" or \"down\"). End-to-end probes were measured: each probe " +
		"has an id, a path (sequence of node ids following edge directions), " +
		"and an observed boolean outcome ok — a probe succeeds if and only " +
		"if every link on its path is up."
	networkx := " A variable `graph` is bound to the graph (methods " +
		"as in the traffic application; edge attrs include status). A " +
		"variable `probes` is bound to a list of maps, each with keys " +
		"\"id\" (string), \"path\" (list of node ids) and \"ok\" (bool)."
	pandas := " Dataframes are bound: `nodes_df` (id, ip), " +
		"`edges_df` (src, dst, bytes, connections, packets, status) and " +
		"`probes_df` (pid, path, ok) where path joins node ids with \">\"."
	sql := " A variable `db` is bound to a SQL database with " +
		"tables nodes(id, ip), edges(src, dst, bytes, connections, " +
		"packets, status) and probes(pid, path, ok) where path joins " +
		"node ids with '>'."
	switch backend {
	case "networkx":
		return common + networkx
	case "pandas":
		return common + pandas
	case "sql":
		return common + sql
	case "federated":
		return common + networkx + pandas + sql + prompt.FederatedPlannerDoc
	default:
		return common
	}
}

// DefaultConfig is the benchmark scenario for the extension suite.
var DefaultConfig = Config{Nodes: 60, Edges: 120, Seed: 11, FailedLinks: 4, Probes: 40}

package diagnosis

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig)
	b := Generate(DefaultConfig)
	if !graph.Equal(a.G, b.G) {
		t.Fatal("graphs differ across runs")
	}
	if len(a.Probes) != len(b.Probes) {
		t.Fatal("probe counts differ")
	}
	for i := range a.Probes {
		if a.Probes[i].ID != b.Probes[i].ID || a.Probes[i].OK != b.Probes[i].OK {
			t.Fatalf("probe %d differs", i)
		}
	}
}

func TestFailedLinkCount(t *testing.T) {
	w := Generate(DefaultConfig)
	down := 0
	for _, e := range w.G.Edges() {
		switch e.Attrs["status"] {
		case "down":
			down++
		case "up":
		default:
			t.Fatalf("edge %s->%s has status %v", e.U, e.V, e.Attrs["status"])
		}
	}
	if down != DefaultConfig.FailedLinks {
		t.Fatalf("down links = %d, want %d", down, DefaultConfig.FailedLinks)
	}
}

// TestProbeObservationsConsistent: generated outcomes must match the
// injected failures exactly — a probe fails iff it crosses a down link.
func TestProbeObservationsConsistent(t *testing.T) {
	w := Generate(DefaultConfig)
	for _, p := range w.Probes {
		shouldFail := false
		for i := 0; i+1 < len(p.Path); i++ {
			a := w.G.EdgeAttrs(p.Path[i], p.Path[i+1])
			if a == nil {
				t.Fatalf("probe %s traverses nonexistent link %s->%s", p.ID, p.Path[i], p.Path[i+1])
			}
			if a["status"] == "down" {
				shouldFail = true
			}
		}
		if p.OK == shouldFail {
			t.Fatalf("probe %s observation inconsistent (ok=%v shouldFail=%v)", p.ID, p.OK, shouldFail)
		}
	}
}

func TestSomeProbesFail(t *testing.T) {
	w := Generate(DefaultConfig)
	failed := 0
	for _, p := range w.Probes {
		if !p.OK {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("scenario has no failed probes — diagnosis queries would be vacuous")
	}
	if failed == len(w.Probes) {
		t.Fatal("every probe failed — no discriminating evidence")
	}
}

func TestCloneIndependence(t *testing.T) {
	w := Generate(DefaultConfig)
	c := w.Clone()
	c.G.SetEdgeAttr(c.G.Edges()[0].U, c.G.Edges()[0].V, "status", "mangled")
	c.Probes[0].Path[0] = "mangled"
	if w.G.Edges()[0].Attrs["status"] == "mangled" {
		t.Fatal("clone shares graph")
	}
	if w.Probes[0].Path[0] == "mangled" {
		t.Fatal("clone shares probe paths")
	}
}

func TestFramesShape(t *testing.T) {
	w := Generate(DefaultConfig)
	nodes, edges, probes := w.Frames()
	if nodes.NumRows() != w.G.NumNodes() || edges.NumRows() != w.G.NumEdges() {
		t.Fatal("frame shape mismatch")
	}
	if !edges.HasColumn("status") {
		t.Fatal("edges frame missing status")
	}
	if probes.NumRows() != len(w.Probes) {
		t.Fatal("probes frame shape mismatch")
	}
	p0 := probes.Row(0)
	if !strings.Contains(p0["path"].(string), ">") {
		t.Fatalf("path encoding = %v", p0["path"])
	}
}

func TestDatabaseTables(t *testing.T) {
	w := Generate(DefaultConfig)
	db := w.Database()
	f, err := db.Query("SELECT COUNT(*) AS n FROM probes WHERE ok = FALSE")
	if err != nil {
		t.Fatal(err)
	}
	if f.Row(0)["n"].(int64) == 0 {
		t.Fatal("no failed probes in DB")
	}
	f, err = db.Query("SELECT COUNT(*) AS n FROM edges WHERE status = 'down'")
	if err != nil || f.Row(0)["n"] != int64(DefaultConfig.FailedLinks) {
		t.Fatalf("down count = %v err=%v", f, err)
	}
}

func TestWrapperDescriptions(t *testing.T) {
	w := NewWrapper(Generate(DefaultConfig))
	for _, backend := range []string{"networkx", "pandas", "sql"} {
		d := w.Describe(backend)
		if !strings.Contains(d, "status") || !strings.Contains(d, "probe") {
			t.Errorf("%s description incomplete", backend)
		}
	}
}

func TestPropProbePathsAreWalks(t *testing.T) {
	f := func(seed int64) bool {
		w := Generate(Config{Nodes: 20, Edges: 50, Seed: seed, FailedLinks: 2, Probes: 10})
		for _, p := range w.Probes {
			if len(p.Path) < 2 {
				return false
			}
			for i := 0; i+1 < len(p.Path); i++ {
				if !w.G.HasEdge(p.Path[i], p.Path[i+1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

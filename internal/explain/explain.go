// Package explain renders NQL programs as plain-English step lists — the
// paper's §5 "code comprehension" aid. Operators reviewing generated code
// before approval get a deterministic, rule-based narration of what the
// program will do (no LLM involved, so the explanation cannot
// hallucinate: it is derived from the same AST the sandbox executes).
package explain

import (
	"fmt"
	"strings"

	"repro/internal/nql"
)

// Program parses src and returns a bullet-list explanation, or the parse
// error (itself useful to surface before execution).
func Program(src string) (string, error) {
	prog, err := nql.Parse(src)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, st := range prog.Stmts {
		writeStmt(&sb, st, 0)
	}
	return sb.String(), nil
}

func indent(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString("- ")
}

func writeStmt(sb *strings.Builder, st nql.Stmt, depth int) {
	switch s := st.(type) {
	case *nql.LetStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "define %s as %s\n", s.Name, expr(s.Init))
	case *nql.AssignStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "set %s to %s\n", expr(s.Target), expr(s.Value))
	case *nql.ExprStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "%s\n", sentenceCase(expr(s.X)))
	case *nql.IfStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "if %s:\n", expr(s.Cond))
		for _, inner := range s.Then {
			writeStmt(sb, inner, depth+1)
		}
		if len(s.Else) > 0 {
			indent(sb, depth)
			sb.WriteString("otherwise:\n")
			for _, inner := range s.Else {
				writeStmt(sb, inner, depth+1)
			}
		}
	case *nql.ForStmt:
		indent(sb, depth)
		if s.Var2 != "" {
			fmt.Fprintf(sb, "for each %s, %s in %s:\n", s.Var, s.Var2, expr(s.Iter))
		} else {
			fmt.Fprintf(sb, "for each %s in %s:\n", s.Var, expr(s.Iter))
		}
		for _, inner := range s.Body {
			writeStmt(sb, inner, depth+1)
		}
	case *nql.WhileStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "repeat while %s:\n", expr(s.Cond))
		for _, inner := range s.Body {
			writeStmt(sb, inner, depth+1)
		}
	case *nql.FuncStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "define helper %s(%s):\n", s.Name, strings.Join(s.Params, ", "))
		for _, inner := range s.Body {
			writeStmt(sb, inner, depth+1)
		}
	case *nql.ReturnStmt:
		indent(sb, depth)
		if s.Value == nil {
			sb.WriteString("finish\n")
		} else {
			fmt.Fprintf(sb, "answer with %s\n", expr(s.Value))
		}
	case *nql.BreakStmt:
		indent(sb, depth)
		sb.WriteString("stop the loop\n")
	case *nql.ContinueStmt:
		indent(sb, depth)
		sb.WriteString("skip to the next iteration\n")
	default:
		indent(sb, depth)
		fmt.Fprintf(sb, "(statement)\n")
	}
}

// methodPhrases gives domain phrasing for well-known binding calls.
var methodPhrases = map[string]string{
	"nodes":                 "all nodes of %s",
	"edges":                 "all edges of %s",
	"neighbors":             "the neighbors of",
	"degree":                "the degree of",
	"shortest_path":         "the shortest path between",
	"connected_components":  "the connected components of %s",
	"remove_node":           "remove node",
	"remove_edge":           "remove the edge",
	"add_node":              "add node",
	"add_edge":              "add an edge",
	"set_node_attr":         "set a node attribute",
	"query":                 "run the SQL query",
	"exec":                  "execute the SQL statement",
	"filter":                "keep the rows of %s where the condition holds",
	"groupby":               "group %s by",
	"sort_values":           "sort %s by",
	"merge":                 "join %s with",
}

func expr(e nql.Expr) string {
	switch x := e.(type) {
	case *nql.Ident:
		return x.Name
	case *nql.IntLit:
		return fmt.Sprintf("%d", x.Value)
	case *nql.FloatLit:
		return fmt.Sprintf("%g", x.Value)
	case *nql.StringLit:
		return fmt.Sprintf("%q", x.Value)
	case *nql.BoolLit:
		return fmt.Sprintf("%v", x.Value)
	case *nql.NilLit:
		return "nothing"
	case *nql.ListLit:
		if len(x.Items) == 0 {
			return "an empty list"
		}
		parts := make([]string, len(x.Items))
		for i, it := range x.Items {
			parts[i] = expr(it)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *nql.MapLit:
		if len(x.Keys) == 0 {
			return "an empty map"
		}
		parts := make([]string, len(x.Keys))
		for i := range x.Keys {
			parts[i] = expr(x.Keys[i]) + ": " + expr(x.Values[i])
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *nql.BinaryExpr:
		op := map[string]string{
			"==": "equals", "!=": "differs from", "and": "and", "or": "or",
			"in": "is in", "<": "is less than", "<=": "is at most",
			">": "exceeds", ">=": "is at least",
		}[x.Op]
		if op == "" {
			op = x.Op
		}
		return fmt.Sprintf("%s %s %s", expr(x.Left), op, expr(x.Right))
	case *nql.UnaryExpr:
		if x.Op == "not" {
			return "not (" + expr(x.X) + ")"
		}
		return "-" + expr(x.X)
	case *nql.IndexExpr:
		return fmt.Sprintf("%s[%s]", expr(x.X), expr(x.Index))
	case *nql.AttrExpr:
		return fmt.Sprintf("the %s of %s", x.Name, expr(x.X))
	case *nql.LambdaExpr:
		return fmt.Sprintf("a function of (%s) computing %s", strings.Join(x.Params, ", "), expr(x.Body))
	case *nql.CallExpr:
		return callPhrase(x)
	default:
		return "(expression)"
	}
}

func callPhrase(c *nql.CallExpr) string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = expr(a)
	}
	argList := strings.Join(args, ", ")
	if attr, ok := c.Fn.(*nql.AttrExpr); ok {
		recv := expr(attr.X)
		if phrase, ok := methodPhrases[attr.Name]; ok {
			if strings.Contains(phrase, "%s") {
				out := fmt.Sprintf(phrase, recv)
				if argList != "" {
					out += " " + argList
				}
				return out
			}
			return phrase + " " + argList
		}
		return fmt.Sprintf("%s of %s(%s)", attr.Name, recv, argList)
	}
	if id, ok := c.Fn.(*nql.Ident); ok {
		switch id.Name {
		case "print":
			return "print " + argList
		case "push":
			if len(args) == 2 {
				return fmt.Sprintf("append %s to %s", args[1], args[0])
			}
		case "len":
			return "the number of items in " + argList
		case "sorted":
			return "the sorted form of " + argList
		case "sum":
			return "the sum of " + argList
		case "keys":
			return "the keys of " + argList
		case "kmeans":
			if len(args) == 2 {
				return fmt.Sprintf("the k-means clustering of %s into %s groups", args[0], args[1])
			}
		}
		return fmt.Sprintf("%s(%s)", id.Name, argList)
	}
	return fmt.Sprintf("%s(%s)", expr(c.Fn), argList)
}

func sentenceCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

package explain

import (
	"strings"
	"testing"

	"repro/internal/queries"
)

func TestExplainSimpleProgram(t *testing.T) {
	out, err := Program(`
let total = 0
for e in graph.edges() {
  total = total + e.attrs["bytes"]
}
return total`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"define total as 0",
		"for each e in all edges of graph:",
		"set total to",
		"answer with total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainControlFlow(t *testing.T) {
	out, err := Program(`
let x = 5
if x > 3 {
  print("big")
} else {
  print("small")
}
while x > 0 {
  x = x - 1
  if x == 2 { break }
}
return nil`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"if x exceeds 3:",
		"otherwise:",
		"repeat while x exceeds 0:",
		"stop the loop",
		"answer with nothing",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainDomainPhrases(t *testing.T) {
	out, err := Program(`
graph.remove_node("h001")
let f = db.query("SELECT 1")
let cl = kmeans([1.0, 2.0], 2)
return sorted(keys(cl))`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`Remove node "h001"`,
		`run the SQL query "SELECT 1"`,
		"k-means clustering",
		"sorted form of the keys of cl",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainSyntaxErrorPropagates(t *testing.T) {
	if _, err := Program("let = broken"); err == nil {
		t.Fatal("expected parse error")
	}
}

// TestExplainEveryGolden: every golden program in the benchmark must be
// explainable — the operator-comprehension path covers the whole corpus.
func TestExplainEveryGolden(t *testing.T) {
	for _, q := range queries.All() {
		for backend, src := range q.Golden {
			out, err := Program(src)
			if err != nil {
				t.Errorf("%s/%s: %v", q.ID, backend, err)
				continue
			}
			if strings.TrimSpace(out) == "" {
				t.Errorf("%s/%s: empty explanation", q.ID, backend)
			}
		}
	}
}

func TestExplainLambdasAndMaps(t *testing.T) {
	out, err := Program(`
let f = fn(x) => x * 2
let m = {"a": 1}
return [f, m, []]`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"a function of (x) computing x * 2",
		`{"a": 1}`,
		"an empty list",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

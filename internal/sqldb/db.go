package sqldb

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dataframe"
)

// DB is an in-memory relational database whose tables are dataframes.
type DB struct {
	tables map[string]*dataframe.Frame
	order  []string
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*dataframe.Frame{}}
}

// CreateTable registers a frame under a name, replacing any previous table.
func (db *DB) CreateTable(name string, f *dataframe.Frame) {
	if _, ok := db.tables[name]; !ok {
		db.order = append(db.order, name)
	}
	db.tables[name] = f
}

// Table returns the named table; the error names available tables so that
// generated-code failures are self-explanatory.
func (db *DB) Table(name string) (*dataframe.Frame, error) {
	f, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("sql: table %q does not exist (have %v)", name, db.TableNames())
	}
	return f, nil
}

// TableNames lists tables in creation order.
func (db *DB) TableNames() []string { return append([]string(nil), db.order...) }

// Freeze marks every table as an immutable master so Clone hands out
// copy-on-write table clones (see dataframe.Frame.Freeze).
func (db *DB) Freeze() {
	for _, n := range db.order {
		db.tables[n].Freeze()
	}
}

// Clone copies the database (used so sandboxed runs cannot corrupt the
// golden copy). Tables of a frozen database clone copy-on-write.
func (db *DB) Clone() *DB {
	c := NewDB()
	for _, n := range db.order {
		c.CreateTable(n, db.tables[n].Clone())
	}
	return c
}

// Result is the outcome of Exec: a frame for SELECT, or an affected-row
// count for writes.
type Result struct {
	Frame    *dataframe.Frame // non-nil for SELECT
	Affected int64            // rows touched by INSERT/UPDATE/DELETE
}

// Exec parses and executes one SQL statement against the database.
func (db *DB) Exec(sql string) (*Result, error) {
	return db.ExecContext(context.Background(), sql)
}

// ExecContext is Exec under a cancellable context: the executor's row
// loops (scans, joins, aggregates, updates) poll ctx at periodic
// checkpoints and abandon the statement with an error wrapping ctx.Err()
// once it is cancelled or past its deadline.
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *SelectStmt:
		f, err := db.execSelect(ctx, s)
		if err != nil {
			return nil, err
		}
		return &Result{Frame: f}, nil
	case *InsertStmt:
		n, err := db.execInsert(s)
		return &Result{Affected: n}, err
	case *UpdateStmt:
		n, err := db.execUpdate(ctx, s)
		return &Result{Affected: n}, err
	case *DeleteStmt:
		n, err := db.execDelete(s)
		return &Result{Affected: n}, err
	case *CreateTableStmt:
		db.CreateTable(s.Table, dataframe.New(s.Cols...))
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

// Query executes a SELECT and returns its frame; non-SELECT statements are
// an error.
func (db *DB) Query(sql string) (*dataframe.Frame, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext is Query under a cancellable context (see ExecContext).
func (db *DB) QueryContext(ctx context.Context, sql string) (*dataframe.Frame, error) {
	res, err := db.ExecContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	if res.Frame == nil {
		return nil, fmt.Errorf("sql: statement is not a query")
	}
	return res.Frame, nil
}

func (db *DB) execInsert(s *InsertStmt) (int64, error) {
	f, err := db.Table(s.Table)
	if err != nil {
		return 0, err
	}
	cols := s.Cols
	if len(cols) == 0 {
		cols = f.Columns()
	}
	for _, c := range cols {
		if !f.HasColumn(c) {
			return 0, fmt.Errorf("sql: column %q does not exist in table %q", c, s.Table)
		}
	}
	var n int64
	for _, row := range s.Rows {
		if len(row) != len(cols) {
			return n, fmt.Errorf("sql: INSERT has %d values for %d columns", len(row), len(cols))
		}
		vals := make(map[string]any, len(cols))
		for i, c := range cols {
			v, err := evalExpr(row[i], nil)
			if err != nil {
				return n, err
			}
			vals[c] = v
		}
		all := make([]any, 0, f.NumCols())
		for _, c := range f.Columns() {
			all = append(all, vals[c])
		}
		f.AppendRow(all...)
		n++
	}
	return n, nil
}

func (db *DB) execUpdate(ctx context.Context, s *UpdateStmt) (int64, error) {
	f, err := db.Table(s.Table)
	if err != nil {
		return 0, err
	}
	for _, set := range s.Sets {
		if !f.HasColumn(set.Col) {
			return 0, fmt.Errorf("sql: column %q does not exist in table %q (have %v)", set.Col, s.Table, f.Columns())
		}
	}
	var n int64
	for i := 0; i < f.NumRows(); i++ {
		if err := cancelled(ctx, i); err != nil {
			return n, err
		}
		row := f.Row(i)
		if s.Where != nil {
			ok, err := evalBool(s.Where, scopeFromRow(row))
			if err != nil {
				return n, err
			}
			if !ok {
				continue
			}
		}
		for _, set := range s.Sets {
			v, err := evalExpr(set.Expr, scopeFromRow(row))
			if err != nil {
				return n, err
			}
			if err := f.SetCell(i, set.Col, v); err != nil {
				return n, err
			}
		}
		n++
	}
	return n, nil
}

func (db *DB) execDelete(s *DeleteStmt) (int64, error) {
	f, err := db.Table(s.Table)
	if err != nil {
		return 0, err
	}
	kept, err := f.Filter(func(row map[string]any) (bool, error) {
		if s.Where == nil {
			return false, nil
		}
		ok, err := evalBool(s.Where, scopeFromRow(row))
		return !ok, err
	})
	if err != nil {
		return 0, err
	}
	n := int64(f.NumRows() - kept.NumRows())
	db.CreateTable(s.Table, kept)
	return n, nil
}

// scope resolves column references during evaluation. Keys are stored both
// unqualified and qualified ("alias.col").
type scope map[string]any

func scopeFromRow(row map[string]any) scope {
	s := make(scope, len(row))
	for k, v := range row {
		s[k] = v
	}
	return s
}

func (s scope) lookup(ref *ColumnRef) (any, error) {
	if ref.Table != "" {
		if v, ok := s[ref.Table+"."+ref.Name]; ok {
			return v, nil
		}
		return nil, fmt.Errorf("sql: unknown column %s.%s (available: %v)", ref.Table, ref.Name, s.keys())
	}
	if v, ok := s[ref.Name]; ok {
		return v, nil
	}
	// Every row of one working set shares a key set, so once an unqualified
	// reference resolved to a qualified key the cached key short-circuits
	// the suffix scan for the remaining rows of the statement.
	if ref.resolved != "" {
		if v, ok := s[ref.resolved]; ok {
			return v, nil
		}
	}
	// Unqualified name that is unique among qualified entries.
	var found []string
	for k := range s {
		if idx := lastDot(k); idx >= 0 && k[idx+1:] == ref.Name {
			found = append(found, k)
		}
	}
	if len(found) == 1 {
		ref.resolved = found[0]
		return s[found[0]], nil
	}
	if len(found) > 1 {
		sort.Strings(found)
		return nil, fmt.Errorf("sql: ambiguous column %q (matches %v)", ref.Name, found)
	}
	return nil, fmt.Errorf("sql: unknown column %q (available: %v)", ref.Name, s.keys())
}

func (s scope) keys() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

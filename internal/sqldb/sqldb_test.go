package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataframe"
)

func testDB() *DB {
	db := NewDB()
	nodes := dataframe.New("id", "prefix", "dc", "load")
	nodes.AppendRow("a", "15.76", "east", 0.5)
	nodes.AppendRow("b", "15.76", "west", 0.9)
	nodes.AppendRow("c", "10.0", "east", 0.1)
	nodes.AppendRow("d", "10.0", "west", 0.7)
	db.CreateTable("nodes", nodes)
	edges := dataframe.New("src", "dst", "bytes", "packets")
	edges.AppendRow("a", "b", 100, 10)
	edges.AppendRow("b", "c", 300, 30)
	edges.AppendRow("c", "d", 200, 20)
	edges.AppendRow("a", "d", 50, 5)
	db.CreateTable("edges", edges)
	return db
}

func mustQuery(t *testing.T, db *DB, sql string) *dataframe.Frame {
	t.Helper()
	f, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return f
}

func TestSelectStar(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT * FROM nodes")
	if f.NumRows() != 4 || f.NumCols() != 4 {
		t.Fatalf("dims = %dx%d", f.NumRows(), f.NumCols())
	}
	if !reflect.DeepEqual(f.Columns(), []string{"id", "prefix", "dc", "load"}) {
		t.Fatalf("cols = %v", f.Columns())
	}
}

func TestSelectProjectionAndAlias(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT id AS node, load FROM nodes")
	if !reflect.DeepEqual(f.Columns(), []string{"node", "load"}) {
		t.Fatalf("cols = %v", f.Columns())
	}
	// Implicit alias (no AS).
	f2 := mustQuery(t, db, "SELECT id nodename FROM nodes")
	if f2.Columns()[0] != "nodename" {
		t.Fatalf("cols = %v", f2.Columns())
	}
}

func TestWhereComparisons(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT id FROM nodes WHERE load > 0.5")
	ids, _ := f.Column("id")
	if !reflect.DeepEqual(ids, []any{"b", "d"}) {
		t.Fatalf("ids = %v", ids)
	}
	f2 := mustQuery(t, db, "SELECT id FROM nodes WHERE prefix = '15.76' AND load < 0.8")
	ids2, _ := f2.Column("id")
	if !reflect.DeepEqual(ids2, []any{"a"}) {
		t.Fatalf("ids = %v", ids2)
	}
	f3 := mustQuery(t, db, "SELECT id FROM nodes WHERE dc != 'east'")
	if f3.NumRows() != 2 {
		t.Fatalf("rows = %d", f3.NumRows())
	}
}

func TestWhereInBetweenLike(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT id FROM nodes WHERE id IN ('a', 'c')")
	if f.NumRows() != 2 {
		t.Fatalf("IN rows = %d", f.NumRows())
	}
	f2 := mustQuery(t, db, "SELECT id FROM nodes WHERE id NOT IN ('a', 'c')")
	if f2.NumRows() != 2 {
		t.Fatalf("NOT IN rows = %d", f2.NumRows())
	}
	f3 := mustQuery(t, db, "SELECT src FROM edges WHERE bytes BETWEEN 100 AND 250")
	if f3.NumRows() != 2 {
		t.Fatalf("BETWEEN rows = %d", f3.NumRows())
	}
	f4 := mustQuery(t, db, "SELECT id FROM nodes WHERE prefix LIKE '15.%'")
	if f4.NumRows() != 2 {
		t.Fatalf("LIKE rows = %d", f4.NumRows())
	}
	f5 := mustQuery(t, db, "SELECT id FROM nodes WHERE prefix NOT LIKE '15.%'")
	if f5.NumRows() != 2 {
		t.Fatalf("NOT LIKE rows = %d", f5.NumRows())
	}
	f6 := mustQuery(t, db, "SELECT id FROM nodes WHERE id LIKE '_'")
	if f6.NumRows() != 4 {
		t.Fatalf("underscore LIKE rows = %d", f6.NumRows())
	}
}

func TestIsNull(t *testing.T) {
	db := NewDB()
	tbl := dataframe.New("x")
	tbl.AppendRow(nil)
	tbl.AppendRow(1)
	db.CreateTable("t", tbl)
	f := mustQuery(t, db, "SELECT x FROM t WHERE x IS NULL")
	if f.NumRows() != 1 {
		t.Fatalf("IS NULL rows = %d", f.NumRows())
	}
	f2 := mustQuery(t, db, "SELECT x FROM t WHERE x IS NOT NULL")
	if f2.NumRows() != 1 {
		t.Fatalf("IS NOT NULL rows = %d", f2.NumRows())
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT bytes * 2 AS dbl, bytes + packets AS total FROM edges WHERE src = 'a' AND dst = 'b'")
	r := f.Row(0)
	if r["dbl"] != int64(200) || r["total"] != int64(110) {
		t.Fatalf("row = %v", r)
	}
	f2 := mustQuery(t, db, "SELECT UPPER(id) AS u, LENGTH(prefix) AS l FROM nodes WHERE id = 'a'")
	r2 := f2.Row(0)
	if r2["u"] != "A" || r2["l"] != int64(5) {
		t.Fatalf("row = %v", r2)
	}
	f3 := mustQuery(t, db, "SELECT ROUND(load * 100) AS pct FROM nodes WHERE id = 'a'")
	if f3.Row(0)["pct"] != float64(50) {
		t.Fatalf("pct = %v", f3.Row(0))
	}
	f4 := mustQuery(t, db, "SELECT SUBSTR(prefix, 1, 2) AS p2 FROM nodes WHERE id = 'a'")
	if f4.Row(0)["p2"] != "15" {
		t.Fatalf("substr = %v", f4.Row(0))
	}
}

func TestDivisionByZero(t *testing.T) {
	db := testDB()
	if _, err := db.Query("SELECT bytes / 0 FROM edges"); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestAggregatesWholeTable(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT COUNT(*) AS n, SUM(bytes) AS total, AVG(bytes) AS avg, MIN(bytes) AS lo, MAX(bytes) AS hi FROM edges")
	r := f.Row(0)
	if r["n"] != int64(4) || r["total"] != int64(650) || r["avg"] != float64(162.5) || r["lo"] != int64(50) || r["hi"] != int64(300) {
		t.Fatalf("aggregates = %v", r)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT src, SUM(bytes) AS total FROM edges GROUP BY src ORDER BY total DESC")
	if f.NumRows() != 3 {
		t.Fatalf("groups = %d", f.NumRows())
	}
	if f.Row(0)["src"] != "b" || f.Row(0)["total"] != int64(300) {
		t.Fatalf("top group = %v", f.Row(0))
	}
	f2 := mustQuery(t, db, "SELECT src, COUNT(*) AS n FROM edges GROUP BY src HAVING COUNT(*) > 1")
	if f2.NumRows() != 1 || f2.Row(0)["src"] != "a" {
		t.Fatalf("having = %v", f2.Records())
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT COUNT(DISTINCT prefix) AS n FROM nodes")
	if f.Row(0)["n"] != int64(2) {
		t.Fatalf("distinct count = %v", f.Row(0))
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT id FROM nodes ORDER BY load DESC LIMIT 2")
	ids, _ := f.Column("id")
	if !reflect.DeepEqual(ids, []any{"b", "d"}) {
		t.Fatalf("ids = %v", ids)
	}
	f2 := mustQuery(t, db, "SELECT id FROM nodes ORDER BY load DESC LIMIT 2 OFFSET 1")
	ids2, _ := f2.Column("id")
	if !reflect.DeepEqual(ids2, []any{"d", "a"}) {
		t.Fatalf("ids = %v", ids2)
	}
	// ORDER BY an expression not in the output.
	f3 := mustQuery(t, db, "SELECT id FROM nodes ORDER BY load * -1")
	ids3, _ := f3.Column("id")
	if ids3[0] != "b" {
		t.Fatalf("expr order = %v", ids3)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT DISTINCT prefix FROM nodes")
	if f.NumRows() != 2 {
		t.Fatalf("distinct rows = %d", f.NumRows())
	}
}

func TestJoinInner(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, `
		SELECT e.src, e.dst, n.dc AS src_dc
		FROM edges e
		JOIN nodes n ON e.src = n.id
		ORDER BY e.bytes DESC`)
	if f.NumRows() != 4 {
		t.Fatalf("join rows = %d", f.NumRows())
	}
	if f.Row(0)["src"] != "b" || f.Row(0)["src_dc"] != "west" {
		t.Fatalf("top join row = %v", f.Row(0))
	}
}

func TestJoinLeft(t *testing.T) {
	db := NewDB()
	left := dataframe.New("k", "v")
	left.AppendRow("x", 1)
	left.AppendRow("y", 2)
	db.CreateTable("l", left)
	right := dataframe.New("k", "w")
	right.AppendRow("x", 10)
	db.CreateTable("r", right)
	f := mustQuery(t, db, "SELECT l.k, r.w FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.k")
	if f.NumRows() != 2 {
		t.Fatalf("left join rows = %d", f.NumRows())
	}
	if f.Row(1)["w"] != nil {
		t.Fatalf("unmatched = %v", f.Row(1))
	}
}

func TestJoinAggregate(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, `
		SELECT n.dc, SUM(e.bytes) AS total
		FROM edges e JOIN nodes n ON e.src = n.id
		GROUP BY n.dc ORDER BY total DESC`)
	if f.NumRows() != 2 {
		t.Fatalf("rows = %d", f.NumRows())
	}
	if f.Row(0)["dc"] != "east" || f.Row(0)["total"] != int64(350) { // a(100+50) + c(200)
		t.Fatalf("row = %v", f.Row(0))
	}
	if f.Row(1)["dc"] != "west" || f.Row(1)["total"] != int64(300) {
		t.Fatalf("row = %v", f.Row(1))
	}
}

func TestCaseExpression(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, `
		SELECT id, CASE WHEN load >= 0.7 THEN 'hot' WHEN load >= 0.3 THEN 'warm' ELSE 'cold' END AS temp
		FROM nodes ORDER BY id`)
	temps, _ := f.Column("temp")
	if !reflect.DeepEqual(temps, []any{"warm", "hot", "cold", "hot"}) {
		t.Fatalf("temps = %v", temps)
	}
}

func TestInsert(t *testing.T) {
	db := testDB()
	res, err := db.Exec("INSERT INTO nodes (id, prefix, dc, load) VALUES ('e', '12.0', 'east', 0.2), ('f', '12.0', 'west', 0.3)")
	if err != nil || res.Affected != 2 {
		t.Fatalf("insert = %+v err=%v", res, err)
	}
	f := mustQuery(t, db, "SELECT COUNT(*) AS n FROM nodes")
	if f.Row(0)["n"] != int64(6) {
		t.Fatalf("count = %v", f.Row(0))
	}
	// Insert without column list.
	if _, err := db.Exec("INSERT INTO nodes VALUES ('g', '13.0', 'east', 0.4)"); err != nil {
		t.Fatal(err)
	}
	// Arity mismatch.
	if _, err := db.Exec("INSERT INTO nodes (id) VALUES ('h', 'extra')"); err == nil {
		t.Fatal("expected arity error")
	}
	// Unknown column.
	if _, err := db.Exec("INSERT INTO nodes (ghost) VALUES (1)"); err == nil {
		t.Fatal("expected unknown column error")
	}
}

func TestUpdate(t *testing.T) {
	db := testDB()
	res, err := db.Exec("UPDATE nodes SET load = 1.0 WHERE dc = 'east'")
	if err != nil || res.Affected != 2 {
		t.Fatalf("update = %+v err=%v", res, err)
	}
	f := mustQuery(t, db, "SELECT COUNT(*) AS n FROM nodes WHERE load = 1.0")
	if f.Row(0)["n"] != int64(2) {
		t.Fatalf("count = %v", f.Row(0))
	}
	// Update with expression referencing the row.
	if _, err := db.Exec("UPDATE edges SET bytes = bytes * 2"); err != nil {
		t.Fatal(err)
	}
	f2 := mustQuery(t, db, "SELECT SUM(bytes) AS s FROM edges")
	if f2.Row(0)["s"] != int64(1300) {
		t.Fatalf("sum = %v", f2.Row(0))
	}
	if _, err := db.Exec("UPDATE nodes SET ghost = 1"); err == nil {
		t.Fatal("expected unknown column error")
	}
}

func TestDelete(t *testing.T) {
	db := testDB()
	res, err := db.Exec("DELETE FROM edges WHERE bytes < 150")
	if err != nil || res.Affected != 2 {
		t.Fatalf("delete = %+v err=%v", res, err)
	}
	f := mustQuery(t, db, "SELECT COUNT(*) AS n FROM edges")
	if f.Row(0)["n"] != int64(2) {
		t.Fatalf("count = %v", f.Row(0))
	}
}

func TestCreateTable(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a TEXT, b INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES ('x', 1)"); err != nil {
		t.Fatal(err)
	}
	f := mustQuery(t, db, "SELECT * FROM t")
	if f.NumRows() != 1 {
		t.Fatalf("rows = %d", f.NumRows())
	}
}

func TestSyntaxErrors(t *testing.T) {
	db := testDB()
	bad := []string{
		"SELEC id FROM nodes",
		"SELECT FROM nodes",
		"SELECT id FROM",
		"SELECT id FROM nodes WHERE",
		"SELECT id nodes",
		"SELECT * FROM nodes GROUP",
		"SELECT 'unterminated FROM nodes",
		"SELECT id FROM nodes LIMIT abc",
		"INSERT nodes VALUES (1)",
		"UPDATE nodes load = 1",
		"DELETE nodes",
		"SELECT id FROM nodes; SELECT 1",
		"SELECT id! FROM nodes",
		"SELECT CASE END FROM nodes",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("expected syntax error for %q", sql)
		}
	}
}

func TestSyntaxErrorType(t *testing.T) {
	_, err := Parse("SELECT FROM")
	var se *SyntaxError
	if !asSyntaxError(err, &se) {
		t.Fatalf("expected *SyntaxError, got %T: %v", err, err)
	}
	if !strings.Contains(se.Error(), "syntax error") {
		t.Fatalf("message = %q", se.Error())
	}
}

func asSyntaxError(err error, out **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*out = se
	}
	return ok
}

func TestUnknownTableAndColumn(t *testing.T) {
	db := testDB()
	if _, err := db.Query("SELECT * FROM ghost"); err == nil {
		t.Fatal("expected unknown table error")
	}
	if _, err := db.Query("SELECT imaginary FROM nodes"); err == nil {
		t.Fatal("expected unknown column error")
	}
	if _, err := db.Query("SELECT n.ghost FROM nodes n"); err == nil {
		t.Fatal("expected unknown qualified column error")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := testDB()
	// Both tables are "nodes" aliased differently; id is ambiguous.
	if _, err := db.Query("SELECT id FROM nodes a JOIN nodes b ON a.id = b.id"); err == nil {
		t.Fatal("expected ambiguity error")
	}
}

func TestStarWithAggregationRejected(t *testing.T) {
	db := testDB()
	if _, err := db.Query("SELECT *, COUNT(*) FROM nodes"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSelectConstant(t *testing.T) {
	db := NewDB()
	f := mustQuery(t, db, "SELECT 1 + 2 AS three")
	if f.Row(0)["three"] != int64(3) {
		t.Fatalf("constant = %v", f.Row(0))
	}
}

func TestCloneIsolation(t *testing.T) {
	db := testDB()
	c := db.Clone()
	if _, err := c.Exec("DELETE FROM edges"); err != nil {
		t.Fatal(err)
	}
	f := mustQuery(t, db, "SELECT COUNT(*) AS n FROM edges")
	if f.Row(0)["n"] != int64(4) {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestComments(t *testing.T) {
	db := testDB()
	f := mustQuery(t, db, "SELECT id FROM nodes -- trailing comment\nWHERE id = 'a'")
	if f.NumRows() != 1 {
		t.Fatalf("rows = %d", f.NumRows())
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"", "%", true},
		{"abc", "", false},
		{"15.76.1.2", "15.76%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// --- property-based tests ---

func randTable(r *rand.Rand, n int) *dataframe.Frame {
	f := dataframe.New("id", "grp", "val")
	for i := 0; i < n; i++ {
		f.AppendRow(fmt.Sprintf("r%03d", i), fmt.Sprintf("g%d", r.Intn(3)), r.Intn(100))
	}
	return f
}

// TestPropSQLMatchesDataframe cross-checks the two substrates: a SQL
// GROUP BY/SUM must agree with the dataframe GroupBy aggregation.
func TestPropSQLMatchesDataframe(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := randTable(r, 1+r.Intn(40))
		db := NewDB()
		db.CreateTable("t", tbl.Clone())
		got, err := db.Query("SELECT grp, SUM(val) AS s FROM t GROUP BY grp ORDER BY grp")
		if err != nil {
			return false
		}
		g, err := tbl.GroupBy("grp")
		if err != nil {
			return false
		}
		want, err := g.Agg(dataframe.AggSpec{Col: "val", Func: dataframe.AggSum, Name: "s"})
		if err != nil {
			return false
		}
		want, err = want.SortBy(true, "grp")
		if err != nil {
			return false
		}
		return dataframe.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropWhereCountComplement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := randTable(r, 1+r.Intn(40))
		db := NewDB()
		db.CreateTable("t", tbl)
		cut := r.Intn(100)
		lo, err1 := db.Query(fmt.Sprintf("SELECT COUNT(*) AS n FROM t WHERE val < %d", cut))
		hi, err2 := db.Query(fmt.Sprintf("SELECT COUNT(*) AS n FROM t WHERE val >= %d", cut))
		if err1 != nil || err2 != nil {
			return false
		}
		return lo.Row(0)["n"].(int64)+hi.Row(0)["n"].(int64) == int64(tbl.NumRows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropOrderByActuallySorts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := randTable(r, 1+r.Intn(40))
		db := NewDB()
		db.CreateTable("t", tbl)
		got, err := db.Query("SELECT val FROM t ORDER BY val")
		if err != nil {
			return false
		}
		col, _ := got.Column("val")
		for i := 1; i < len(col); i++ {
			if dataframe.CompareValues(col[i-1], col[i]) > 0 {
				return false
			}
		}
		return got.NumRows() == tbl.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropLimitClamps(t *testing.T) {
	f := func(seed int64, limRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := randTable(r, r.Intn(30))
		db := NewDB()
		db.CreateTable("t", tbl)
		lim := int(limRaw % 40)
		got, err := db.Query(fmt.Sprintf("SELECT id FROM t LIMIT %d", lim))
		if err != nil {
			return false
		}
		want := lim
		if tbl.NumRows() < want {
			want = tbl.NumRows()
		}
		return got.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package sqldb

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataframe"
)

// evalExpr evaluates a non-aggregate expression against a row scope (nil
// scope allows only constants).
func evalExpr(e Expr, s scope) (any, error) {
	switch x := e.(type) {
	case *Literal:
		return normalizeVal(x.Value), nil
	case *ColumnRef:
		if s == nil {
			return nil, fmt.Errorf("sql: column reference %q outside row context", x.Name)
		}
		return s.lookup(x)
	case *UnaryExpr:
		v, err := evalExpr(x.X, s)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			default:
				return nil, fmt.Errorf("sql: cannot negate %T", v)
			}
		case "NOT":
			return !truthy(v), nil
		}
		return nil, fmt.Errorf("sql: unknown unary op %q", x.Op)
	case *BinaryExpr:
		return evalBinary(x, s)
	case *InExpr:
		v, err := evalExpr(x.X, s)
		if err != nil {
			return nil, err
		}
		found := false
		for _, ve := range x.Values {
			w, err := evalExpr(ve, s)
			if err != nil {
				return nil, err
			}
			if dataframe.CompareValues(v, w) == 0 && sameKind(v, w) {
				found = true
				break
			}
		}
		return found != x.Not, nil
	case *IsNullExpr:
		v, err := evalExpr(x.X, s)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Not, nil
	case *BetweenExpr:
		v, err := evalExpr(x.X, s)
		if err != nil {
			return nil, err
		}
		lo, err := evalExpr(x.Lo, s)
		if err != nil {
			return nil, err
		}
		hi, err := evalExpr(x.Hi, s)
		if err != nil {
			return nil, err
		}
		in := dataframe.CompareValues(v, lo) >= 0 && dataframe.CompareValues(v, hi) <= 0
		return in != x.Not, nil
	case *CaseExpr:
		for _, w := range x.Whens {
			ok, err := evalBool(w.Cond, s)
			if err != nil {
				return nil, err
			}
			if ok {
				return evalExpr(w.Then, s)
			}
		}
		if x.Else != nil {
			return evalExpr(x.Else, s)
		}
		return nil, nil
	case *FuncCall:
		return evalScalarFunc(x, s)
	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func normalizeVal(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	default:
		return v
	}
}

func sameKind(a, b any) bool {
	isNum := func(v any) bool {
		switch v.(type) {
		case int64, float64:
			return true
		}
		return false
	}
	if isNum(a) && isNum(b) {
		return true
	}
	return fmt.Sprintf("%T", a) == fmt.Sprintf("%T", b)
}

func truthy(v any) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	default:
		return true
	}
}

func evalBool(e Expr, s scope) (bool, error) {
	v, err := evalExpr(e, s)
	if err != nil {
		return false, err
	}
	return truthy(v), nil
}

func evalBinary(x *BinaryExpr, s scope) (any, error) {
	// Short-circuit logic ops.
	switch x.Op {
	case "AND":
		l, err := evalBool(x.Left, s)
		if err != nil {
			return nil, err
		}
		if !l {
			return false, nil
		}
		return evalBool(x.Right, s)
	case "OR":
		l, err := evalBool(x.Left, s)
		if err != nil {
			return nil, err
		}
		if l {
			return true, nil
		}
		return evalBool(x.Right, s)
	}
	l, err := evalExpr(x.Left, s)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(x.Right, s)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "=":
		return dataframe.CompareValues(l, r) == 0 && sameKind(l, r), nil
	case "!=":
		return !(dataframe.CompareValues(l, r) == 0 && sameKind(l, r)), nil
	case "<":
		return dataframe.CompareValues(l, r) < 0, nil
	case "<=":
		return dataframe.CompareValues(l, r) <= 0, nil
	case ">":
		return dataframe.CompareValues(l, r) > 0, nil
	case ">=":
		return dataframe.CompareValues(l, r) >= 0, nil
	case "LIKE":
		ls, ok1 := l.(string)
		rs, ok2 := r.(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("sql: LIKE requires strings, got %T and %T", l, r)
		}
		return likeMatch(ls, rs), nil
	case "+":
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				return ls + rs, nil // string concatenation convenience
			}
		}
		return arith(l, r, x.Op)
	case "-", "*", "/", "%":
		return arith(l, r, x.Op)
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", x.Op)
	}
}

func arith(l, r any, op string) (any, error) {
	lf, lok := numAsFloat(l)
	rf, rok := numAsFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("sql: arithmetic %q on non-numeric values %v (%T) and %v (%T)", op, l, l, r, r)
	}
	_, lInt := l.(int64)
	_, rInt := r.(int64)
	bothInt := lInt && rInt
	switch op {
	case "+":
		if bothInt {
			return int64(lf) + int64(rf), nil
		}
		return lf + rf, nil
	case "-":
		if bothInt {
			return int64(lf) - int64(rf), nil
		}
		return lf - rf, nil
	case "*":
		if bothInt {
			return int64(lf) * int64(rf), nil
		}
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("sql: division by zero")
		}
		return lf / rf, nil
	case "%":
		if !bothInt {
			return nil, fmt.Errorf("sql: %% requires integers")
		}
		if int64(rf) == 0 {
			return nil, fmt.Errorf("sql: division by zero")
		}
		return int64(lf) % int64(rf), nil
	}
	return nil, fmt.Errorf("sql: unknown arithmetic op %q", op)
}

func numAsFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (single char).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over pattern/string.
	memo := map[[2]int]bool{}
	var match func(i, j int) bool
	match = func(i, j int) bool {
		key := [2]int{i, j}
		if v, ok := memo[key]; ok {
			return v
		}
		var res bool
		switch {
		case j == len(pattern):
			res = i == len(s)
		case pattern[j] == '%':
			res = match(i, j+1) || (i < len(s) && match(i+1, j))
		case i < len(s) && (pattern[j] == '_' || pattern[j] == s[i]):
			res = match(i+1, j+1)
		default:
			res = false
		}
		memo[key] = res
		return res
	}
	return match(0, 0)
}

// evalScalarFunc evaluates non-aggregate SQL functions.
func evalScalarFunc(f *FuncCall, s scope) (any, error) {
	if isAggregate(f.Name) {
		return nil, fmt.Errorf("sql: aggregate %s() not allowed here", f.Name)
	}
	args := make([]any, len(f.Args))
	for i, a := range f.Args {
		v, err := evalExpr(a, s)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	wantArgs := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sql: %s() takes %d argument(s), got %d", f.Name, n, len(args))
		}
		return nil
	}
	switch f.Name {
	case "LENGTH":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		str, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("sql: LENGTH() requires a string")
		}
		return int64(len(str)), nil
	case "UPPER":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		str, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("sql: UPPER() requires a string")
		}
		return strings.ToUpper(str), nil
	case "LOWER":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		str, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("sql: LOWER() requires a string")
		}
		return strings.ToLower(str), nil
	case "ABS":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		switch n := args[0].(type) {
		case int64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		case float64:
			return math.Abs(n), nil
		}
		return nil, fmt.Errorf("sql: ABS() requires a number")
	case "ROUND":
		if len(args) == 1 {
			n, ok := numAsFloat(args[0])
			if !ok {
				return nil, fmt.Errorf("sql: ROUND() requires a number")
			}
			return math.Round(n), nil
		}
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		n, ok1 := numAsFloat(args[0])
		d, ok2 := args[1].(int64)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("sql: ROUND(x, digits) requires (number, int)")
		}
		scale := math.Pow(10, float64(d))
		return math.Round(n*scale) / scale, nil
	case "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("sql: SUBSTR() takes 2 or 3 arguments")
		}
		str, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("sql: SUBSTR() requires a string")
		}
		start, ok := args[1].(int64)
		if !ok {
			return nil, fmt.Errorf("sql: SUBSTR() start must be an integer")
		}
		// SQL is 1-based.
		idx := int(start) - 1
		if idx < 0 {
			idx = 0
		}
		if idx > len(str) {
			idx = len(str)
		}
		rest := str[idx:]
		if len(args) == 3 {
			n, ok := args[2].(int64)
			if !ok {
				return nil, fmt.Errorf("sql: SUBSTR() length must be an integer")
			}
			if int(n) < len(rest) {
				if n < 0 {
					n = 0
				}
				rest = rest[:n]
			}
		}
		return rest, nil
	case "COALESCE":
		for _, a := range args {
			if a != nil {
				return a, nil
			}
		}
		return nil, nil
	case "INSTR":
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		str, ok1 := args[0].(string)
		sub, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("sql: INSTR() requires strings")
		}
		return int64(strings.Index(str, sub) + 1), nil
	default:
		return nil, fmt.Errorf("sql: unknown function %s()", f.Name)
	}
}

func isAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

package sqldb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/dataframe"
	"repro/internal/obs"
)

// This file is the native pushdown surface the federated planner drives:
// columnar scan, equi-join and group-by aggregation entry points that skip
// SQL text, the parser and the per-row scope maps entirely and work
// directly on the frames backing the tables. Semantics are pinned to the
// equivalent SELECT: conditions evaluate exactly like WHERE conjuncts
// (CompareValues plus sameKind for equality, LIKE-prefix for "prefix"),
// join and group keys use the same struct-key numeric collapsing as the
// hash-join fast path, and the aggregate accumulators replicate the
// federated executor's contract (nil cells skipped, integer-preserving
// sums, first-appearance group order).
//
// Anything these fast paths cannot reproduce bit-for-bit — a missing table
// or column, a non-scalar key cell, a non-numeric sum input — returns
// ErrPushdown instead of a best-effort answer. The caller falls back to
// the general path, which produces the exact legacy result or error. The
// sentinel must therefore never surface to users.

// ErrPushdown reports that a native pushdown entry point cannot handle the
// request; the caller must retry via the general (SQL-text or federated)
// path. It carries no user-facing meaning.
var ErrPushdown = errors.New("sqldb: native pushdown unsupported")

// IsKeyword reports whether the name collides with a reserved word of the
// SQL dialect (case-insensitive). Planners deciding between native
// pushdown and SQL text use it to gate names that would not parse as
// identifiers.
func IsKeyword(name string) bool { return keywords[strings.ToUpper(name)] }

// Cond is one WHERE-equivalent conjunct over a scanned table: Col <Op>
// Value with Op one of =, !=, <, <=, >, >= or prefix (LIKE 'v%'). Value
// must be an int64, float64 or string — exactly the literals the federated
// optimizer can compile into SQL text.
type Cond struct {
	Col   string
	Op    string
	Value any
}

// matchCond evaluates one condition against a cell with the same semantics
// as the SELECT executor's WHERE evaluation of `col op literal`.
func matchCond(c Cond, cell any) (bool, error) {
	switch c.Op {
	case "=":
		return dataframe.CompareValues(cell, c.Value) == 0 && sameKind(cell, c.Value), nil
	case "!=":
		return !(dataframe.CompareValues(cell, c.Value) == 0 && sameKind(cell, c.Value)), nil
	case "<":
		return dataframe.CompareValues(cell, c.Value) < 0, nil
	case "<=":
		return dataframe.CompareValues(cell, c.Value) <= 0, nil
	case ">":
		return dataframe.CompareValues(cell, c.Value) > 0, nil
	case ">=":
		return dataframe.CompareValues(cell, c.Value) >= 0, nil
	case "prefix":
		p, ok := c.Value.(string)
		if !ok {
			return false, ErrPushdown
		}
		s, ok := cell.(string)
		if !ok {
			// The error the WHERE path raises for `cell LIKE 'p%'`.
			return false, fmt.Errorf("sql: LIKE requires strings, got %T and %T", cell, p+"%")
		}
		return strings.HasPrefix(s, p), nil
	default:
		return false, ErrPushdown
	}
}

// ScanSpec names one table scan: WHERE-equivalent conditions (applied in
// order, short-circuiting like AND) and an optional projection (nil keeps
// every column in table order; duplicate names are not supported).
type ScanSpec struct {
	Table string
	Conds []Cond
	Cols  []string
}

// scanTable resolves a spec against the database without profile frames:
// names plus one value slice per column. When the scan has no conditions
// the returned slices alias the table's storage — callers must not mutate.
func (db *DB) scanTable(ctx context.Context, spec ScanSpec) ([]string, [][]any, error) {
	f, err := db.Table(spec.Table)
	if err != nil {
		return nil, nil, ErrPushdown
	}
	names := f.Columns()
	data := make([][]any, len(names))
	for i, c := range names {
		data[i], _ = f.Column(c)
	}
	// Resolve condition and projection columns up front; any miss (or a
	// duplicate projection) is a job for the general path.
	colIdx := func(name string) (int, bool) {
		for i, c := range names {
			if c == name {
				return i, true
			}
		}
		return -1, false
	}
	condIdx := make([]int, len(spec.Conds))
	for i, c := range spec.Conds {
		j, ok := colIdx(c.Col)
		if !ok {
			return nil, nil, ErrPushdown
		}
		condIdx[i] = j
	}
	if len(spec.Conds) > 0 {
		if err := cancelled(ctx, 0); err != nil {
			return nil, nil, err
		}
		n := f.NumRows()
		keep := make([]int, 0, n)
		for r := 0; r < n; r++ {
			if err := cancelled(ctx, r); err != nil {
				return nil, nil, err
			}
			ok := true
			for ci, c := range spec.Conds {
				m, err := matchCond(c, data[condIdx[ci]][r])
				if err != nil {
					return nil, nil, err
				}
				if !m {
					ok = false
					break
				}
			}
			if ok {
				keep = append(keep, r)
			}
		}
		filtered := make([][]any, len(names))
		for i := range names {
			col := make([]any, len(keep))
			for k, r := range keep {
				col[k] = data[i][r]
			}
			filtered[i] = col
		}
		data = filtered
	}
	if spec.Cols == nil {
		return names, data, nil
	}
	outNames := make([]string, len(spec.Cols))
	outData := make([][]any, len(spec.Cols))
	seen := make(map[string]bool, len(spec.Cols))
	for i, c := range spec.Cols {
		j, ok := colIdx(c)
		if !ok || seen[c] {
			return nil, nil, ErrPushdown
		}
		seen[c] = true
		outNames[i] = c
		outData[i] = data[j]
	}
	return outNames, outData, nil
}

// ScanColumns executes a native table scan, emitting the same profile
// frames as the equivalent SELECT (sql.select > sql.scan [> sql.filter]).
func (db *DB) ScanColumns(ctx context.Context, spec ScanSpec) ([]string, [][]any, error) {
	if _, err := db.Table(spec.Table); err != nil {
		return nil, nil, ErrPushdown
	}
	prof := obs.ProfileFrom(ctx)
	sel := enterFrame(ctx, prof, "sql.select", spec.Table)
	names, data, err := db.scanColumnsBody(obs.WithFrame(ctx, sel), spec)
	rows := int64(-1)
	if err == nil {
		rows = scanLen(data)
	}
	prof.Exit(sel, rows)
	return names, data, err
}

func (db *DB) scanColumnsBody(ctx context.Context, spec ScanSpec) ([]string, [][]any, error) {
	prof := obs.ProfileFrom(ctx)
	if prof != nil {
		if f, err := db.Table(spec.Table); err == nil {
			scan := enterFrame(ctx, prof, "sql.scan", spec.Table)
			prof.Exit(scan, int64(f.NumRows()))
		}
	}
	names, data, err := db.scanTable(ctx, spec)
	if prof != nil && len(spec.Conds) > 0 {
		filt := enterFrame(ctx, prof, "sql.filter", "")
		rows := int64(-1)
		if err == nil {
			rows = scanLen(data)
		}
		prof.Exit(filt, rows)
	}
	return names, data, err
}

func scanLen(data [][]any) int64 {
	if len(data) == 0 {
		return 0
	}
	return int64(len(data[0]))
}

// pushKey builds the comparable hash key for a join or group cell. The
// equivalence classes match the federated executor's historical string
// keys exactly: nil, bools, numbers collapsed across int64/float64, and
// strings; everything else punts to the general path (which raises the
// canonical "unhashable" error).
func pushKey(cell any) (joinKey, error) {
	v := normalizeVal(cell)
	// Canonicalize NaN so every NaN payload lands in one key class (the
	// federated executor's historical string keys rendered all NaNs alike).
	if f, ok := v.(float64); ok && math.IsNaN(f) {
		v = math.NaN()
	}
	k := keyOf(v)
	if k.kind == 4 {
		return joinKey{}, ErrPushdown
	}
	return k, nil
}

// JoinSpec is one native inner equi-join: Left JOIN Right ON LeftKey =
// RightKey over two scanned tables. BuildLeft hashes the left input and
// streams the right (the planner sets it when the left side is estimated
// smaller); output rows are identical either way — left-major, with each
// left row's matches in right-row order.
type JoinSpec struct {
	Left, Right       ScanSpec
	LeftKey, RightKey string
	BuildLeft         bool
}

// JoinColumns executes a native equi-join, with the federated join's
// output schema: left columns, then right columns minus the right key,
// collisions suffixed "_r".
func (db *DB) JoinColumns(ctx context.Context, spec JoinSpec) ([]string, [][]any, error) {
	if _, err := db.Table(spec.Left.Table); err != nil {
		return nil, nil, ErrPushdown
	}
	if _, err := db.Table(spec.Right.Table); err != nil {
		return nil, nil, ErrPushdown
	}
	prof := obs.ProfileFrom(ctx)
	sel := enterFrame(ctx, prof, "sql.select", spec.Left.Table)
	names, data, err := db.joinColumnsBody(obs.WithFrame(ctx, sel), spec)
	rows := int64(-1)
	if err == nil {
		rows = scanLen(data)
	}
	prof.Exit(sel, rows)
	return names, data, err
}

func (db *DB) joinColumnsBody(ctx context.Context, spec JoinSpec) ([]string, [][]any, error) {
	prof := obs.ProfileFrom(ctx)
	if prof != nil {
		if f, err := db.Table(spec.Left.Table); err == nil {
			scan := enterFrame(ctx, prof, "sql.scan", spec.Left.Table)
			prof.Exit(scan, int64(f.NumRows()))
		}
	}
	lNames, lData, err := db.scanTable(ctx, spec.Left)
	if err != nil {
		return nil, nil, err
	}
	jf := enterFrame(ctx, prof, "sql.join", "inner "+spec.Right.Table)
	names, data, err := db.joinRight(obs.WithFrame(ctx, jf), spec, lNames, lData)
	rows := int64(-1)
	if err == nil {
		rows = scanLen(data)
	}
	prof.Exit(jf, rows)
	return names, data, err
}

func (db *DB) joinRight(ctx context.Context, spec JoinSpec, lNames []string, lData [][]any) ([]string, [][]any, error) {
	prof := obs.ProfileFrom(ctx)
	if prof != nil {
		if f, err := db.Table(spec.Right.Table); err == nil {
			scan := enterFrame(ctx, prof, "sql.scan", spec.Right.Table)
			prof.Exit(scan, int64(f.NumRows()))
		}
	}
	rNames, rData, err := db.scanTable(ctx, spec.Right)
	if err != nil {
		return nil, nil, err
	}
	li, ri := -1, -1
	for i, c := range lNames {
		if c == spec.LeftKey {
			li = i
			break
		}
	}
	for i, c := range rNames {
		if c == spec.RightKey {
			ri = i
			break
		}
	}
	if li < 0 || ri < 0 {
		return nil, nil, ErrPushdown
	}
	// Output schema: the federated join contract.
	outNames := append([]string(nil), lNames...)
	taken := map[string]bool{}
	for _, c := range outNames {
		taken[c] = true
	}
	var rightCols []int
	for i, c := range rNames {
		if i == ri {
			continue
		}
		rightCols = append(rightCols, i)
		if taken[c] {
			c += "_r"
		}
		taken[c] = true
		outNames = append(outNames, c)
	}
	nl, nr := int(scanLen(lData)), int(scanLen(rData))
	// matches[i] lists, in right-row order, the right rows joining left
	// row i; built by probing whichever side the planner chose to hash.
	matches := make([][]int, nl)
	if spec.BuildLeft {
		index := make(map[joinKey][]int, nl)
		for i := 0; i < nl; i++ {
			if err := cancelled(ctx, i); err != nil {
				return nil, nil, err
			}
			k, err := pushKey(lData[li][i])
			if err != nil {
				return nil, nil, err
			}
			index[k] = append(index[k], i)
		}
		for j := 0; j < nr; j++ {
			if err := cancelled(ctx, j); err != nil {
				return nil, nil, err
			}
			k, err := pushKey(rData[ri][j])
			if err != nil {
				return nil, nil, err
			}
			for _, i := range index[k] {
				matches[i] = append(matches[i], j)
			}
		}
	} else {
		index := make(map[joinKey][]int, nr)
		for j := 0; j < nr; j++ {
			if err := cancelled(ctx, j); err != nil {
				return nil, nil, err
			}
			k, err := pushKey(rData[ri][j])
			if err != nil {
				return nil, nil, err
			}
			index[k] = append(index[k], j)
		}
		for i := 0; i < nl; i++ {
			if err := cancelled(ctx, i); err != nil {
				return nil, nil, err
			}
			k, err := pushKey(lData[li][i])
			if err != nil {
				return nil, nil, err
			}
			matches[i] = index[k]
		}
	}
	out := make([][]any, len(outNames))
	for i := range out {
		out[i] = []any{}
	}
	emitted := 0
	for i := 0; i < nl; i++ {
		for _, j := range matches[i] {
			if err := cancelled(ctx, emitted); err != nil {
				return nil, nil, err
			}
			emitted++
			for c := range lNames {
				out[c] = append(out[c], lData[c][i])
			}
			for c, rc := range rightCols {
				out[len(lNames)+c] = append(out[len(lNames)+c], rData[rc][j])
			}
		}
	}
	return outNames, out, nil
}

// GroupAgg is one aggregation of a native group-by: Fn (count, sum, mean,
// min, max) over Col, emitted as As. Count ignores Col.
type GroupAgg struct {
	Col string
	Fn  string
	As  string
}

// GroupSpec is one native group-by aggregation over a scanned table.
// Empty GroupBy computes one global group (emitting a single row even
// over empty input, per SQL semantics).
type GroupSpec struct {
	Input   ScanSpec
	GroupBy []string
	Aggs    []GroupAgg
}

// GroupColumns executes a native group-by with the federated aggregate
// contract: groups in first-appearance order, nil cells skipped, sums
// integer-preserving, mean always float, min/max by CompareValues.
func (db *DB) GroupColumns(ctx context.Context, spec GroupSpec) ([]string, [][]any, error) {
	if _, err := db.Table(spec.Input.Table); err != nil {
		return nil, nil, ErrPushdown
	}
	prof := obs.ProfileFrom(ctx)
	sel := enterFrame(ctx, prof, "sql.select", spec.Input.Table)
	names, data, err := db.groupColumnsBody(obs.WithFrame(ctx, sel), spec)
	rows := int64(-1)
	if err == nil {
		rows = scanLen(data)
	}
	prof.Exit(sel, rows)
	return names, data, err
}

func (db *DB) groupColumnsBody(ctx context.Context, spec GroupSpec) ([]string, [][]any, error) {
	inNames, inData, err := db.scanColumnsBody(ctx, spec.Input)
	if err != nil {
		return nil, nil, err
	}
	colIdx := func(name string) (int, bool) {
		for i, c := range inNames {
			if c == name {
				return i, true
			}
		}
		return -1, false
	}
	gidx := make([]int, len(spec.GroupBy))
	for i, c := range spec.GroupBy {
		j, ok := colIdx(c)
		if !ok {
			return nil, nil, ErrPushdown
		}
		gidx[i] = j
	}
	aidx := make([]int, len(spec.Aggs))
	for i, sp := range spec.Aggs {
		switch sp.Fn {
		case "count":
			aidx[i] = -1
			continue
		case "sum", "mean", "min", "max":
		default:
			return nil, nil, ErrPushdown
		}
		j, ok := colIdx(sp.Col)
		if !ok {
			return nil, nil, ErrPushdown
		}
		aidx[i] = j
	}
	type group struct {
		key  []any
		accs []pushAgg
	}
	var order []*group
	groups := map[string]*group{}
	single := map[joinKey]*group{}
	n := int(scanLen(inData))
	var kbuf []joinKey
	for r := 0; r < n; r++ {
		if err := cancelled(ctx, r); err != nil {
			return nil, nil, err
		}
		var g *group
		if len(gidx) == 1 {
			k, err := pushKey(inData[gidx[0]][r])
			if err != nil {
				return nil, nil, err
			}
			g = single[k]
			if g == nil {
				g = &group{key: []any{normalizeVal(inData[gidx[0]][r])}, accs: make([]pushAgg, len(spec.Aggs))}
				single[k] = g
				order = append(order, g)
			}
		} else if len(gidx) > 0 {
			kbuf = kbuf[:0]
			for _, j := range gidx {
				k, err := pushKey(inData[j][r])
				if err != nil {
					return nil, nil, err
				}
				kbuf = append(kbuf, k)
			}
			ks := fmt.Sprintf("%v", kbuf)
			g = groups[ks]
			if g == nil {
				g = &group{key: make([]any, len(gidx)), accs: make([]pushAgg, len(spec.Aggs))}
				for i, j := range gidx {
					g.key[i] = normalizeVal(inData[j][r])
				}
				groups[ks] = g
				order = append(order, g)
			}
		} else {
			if len(order) == 0 {
				order = append(order, &group{accs: make([]pushAgg, len(spec.Aggs))})
			}
			g = order[0]
		}
		for i, sp := range spec.Aggs {
			var v any
			if aidx[i] >= 0 {
				v = normalizeVal(inData[aidx[i]][r])
			}
			if err := g.accs[i].add(sp.Fn, v); err != nil {
				return nil, nil, err
			}
		}
	}
	if len(gidx) == 0 && len(order) == 0 {
		order = append(order, &group{accs: make([]pushAgg, len(spec.Aggs))})
	}
	outNames := append([]string(nil), spec.GroupBy...)
	for _, sp := range spec.Aggs {
		outNames = append(outNames, sp.As)
	}
	out := make([][]any, len(outNames))
	for i := range out {
		out[i] = make([]any, len(order))
	}
	for r, g := range order {
		for i := range gidx {
			out[i][r] = g.key[i]
		}
		for i, sp := range spec.Aggs {
			out[len(gidx)+i][r] = g.accs[i].result(sp.Fn)
		}
	}
	return outNames, out, nil
}

// pushAgg replicates the federated executor's aggregate accumulator: nil
// cells are skipped (SQL NULL), sums stay integral while every input is an
// int64, mean is always float, min/max compare via CompareValues. Inputs
// outside the scalar domain punt to the general path via ErrPushdown.
type pushAgg struct {
	count    int64
	sumF     float64
	sumI     int64
	allInt   bool
	seen     bool
	best     any
	haveBest bool
}

func (g *pushAgg) add(fn string, v any) error {
	if fn == "count" {
		g.count++
		return nil
	}
	if v == nil {
		return nil
	}
	switch fn {
	case "sum", "mean":
		switch x := v.(type) {
		case int64:
			if !g.seen {
				g.allInt = true
			}
			g.sumI += x
			g.sumF += float64(x)
		case float64:
			g.allInt = false
			g.sumF += x
		default:
			return ErrPushdown
		}
		g.seen = true
		g.count++
	case "min", "max":
		switch v.(type) {
		case bool, int64, float64, string:
		default:
			return ErrPushdown
		}
		if !g.haveBest {
			g.best, g.haveBest = v, true
			return nil
		}
		cmp := dataframe.CompareValues(g.best, v)
		if (fn == "min" && cmp > 0) || (fn == "max" && cmp < 0) {
			g.best = v
		}
	}
	return nil
}

func (g *pushAgg) result(fn string) any {
	switch fn {
	case "count":
		return g.count
	case "sum":
		if !g.seen {
			return nil
		}
		if g.allInt {
			return g.sumI
		}
		return g.sumF
	case "mean":
		if !g.seen {
			return nil
		}
		return g.sumF / float64(g.count)
	case "min", "max":
		if !g.haveBest {
			return nil
		}
		return g.best
	}
	return nil
}

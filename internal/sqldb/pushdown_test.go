package sqldb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/dataframe"
	"repro/internal/obs"
)

// frameOf converts a columnar pushdown result into a frame so it can be
// compared cell-for-cell against the text path's result frame.
func frameOf(names []string, data [][]any) *dataframe.Frame {
	f := dataframe.New(names...)
	n := 0
	if len(data) > 0 {
		n = len(data[0])
	}
	row := make([]any, len(names))
	for r := 0; r < n; r++ {
		for i := range names {
			row[i] = data[i][r]
		}
		f.AppendRow(row...)
	}
	return f
}

// TestScanColumnsMatchesSelect drives the native scan and the equivalent
// SELECT text over the same table and requires identical frames — the
// planner's contract for choosing the native path.
func TestScanColumnsMatchesSelect(t *testing.T) {
	db := testDB()
	ctx := context.Background()
	cases := []struct {
		spec ScanSpec
		sql  string
	}{
		{ScanSpec{Table: "edges"}, "SELECT * FROM edges"},
		{ScanSpec{Table: "edges", Conds: []Cond{{Col: "bytes", Op: ">", Value: int64(100)}}},
			"SELECT * FROM edges WHERE bytes > 100"},
		{ScanSpec{Table: "edges", Conds: []Cond{{Col: "bytes", Op: ">=", Value: int64(100)}, {Col: "src", Op: "!=", Value: "a"}}},
			"SELECT * FROM edges WHERE bytes >= 100 AND src != 'a'"},
		{ScanSpec{Table: "edges", Conds: []Cond{{Col: "src", Op: "=", Value: "a"}}, Cols: []string{"dst", "bytes"}},
			"SELECT dst, bytes FROM edges WHERE src = 'a'"},
		{ScanSpec{Table: "nodes", Conds: []Cond{{Col: "prefix", Op: "prefix", Value: "15."}}},
			"SELECT * FROM nodes WHERE prefix LIKE '15.%'"},
		{ScanSpec{Table: "nodes", Conds: []Cond{{Col: "load", Op: "<", Value: 0.6}}},
			"SELECT * FROM nodes WHERE load < 0.6"},
	}
	for _, c := range cases {
		names, data, err := db.ScanColumns(ctx, c.spec)
		if err != nil {
			t.Errorf("ScanColumns(%+v): %v", c.spec, err)
			continue
		}
		want := mustQuery(t, db, c.sql)
		if got := frameOf(names, data); !dataframe.Equal(got, want) {
			t.Errorf("native scan diverges from %q:\n  native: %v %v\n  text:   %v", c.sql, names, data, want)
		}
	}
}

// TestScanColumnsErrPushdown pins the shapes the native path must refuse
// (so the caller falls back to text and reproduces the canonical error).
func TestScanColumnsErrPushdown(t *testing.T) {
	db := testDB()
	ctx := context.Background()
	cases := []ScanSpec{
		{Table: "ghost"},
		{Table: "edges", Conds: []Cond{{Col: "ghost", Op: "=", Value: int64(1)}}},
		{Table: "edges", Conds: []Cond{{Col: "bytes", Op: "~", Value: int64(1)}}},
		{Table: "edges", Cols: []string{"src", "src"}},
		{Table: "edges", Cols: []string{"ghost"}},
	}
	for _, spec := range cases {
		if _, _, err := db.ScanColumns(ctx, spec); !errors.Is(err, ErrPushdown) {
			t.Errorf("ScanColumns(%+v): err = %v, want ErrPushdown", spec, err)
		}
	}
	// A non-string cell under prefix reproduces the LIKE error verbatim —
	// real user-facing errors pass through, never ErrPushdown.
	_, _, err := db.ScanColumns(ctx, ScanSpec{
		Table: "edges", Conds: []Cond{{Col: "bytes", Op: "prefix", Value: "1"}},
	})
	if err == nil || !strings.Contains(err.Error(), "LIKE requires strings") {
		t.Errorf("prefix over ints: err = %v, want LIKE type error", err)
	}
	_, werr := db.Query("SELECT * FROM edges WHERE bytes LIKE '1%'")
	if werr == nil || err.Error() != werr.Error() {
		t.Errorf("native LIKE error %q != text path %q", err, werr)
	}
}

// TestJoinColumnsMatchesJoin compares the native equi-join against the
// SELECT JOIN text path modulo the federated schema difference (the
// federated join drops the right key and suffixes collisions with _r).
func TestJoinColumnsMatchesJoin(t *testing.T) {
	db := testDB()
	ctx := context.Background()
	for _, buildLeft := range []bool{false, true} {
		spec := JoinSpec{
			Left:      ScanSpec{Table: "edges"},
			Right:     ScanSpec{Table: "nodes"},
			LeftKey:   "dst",
			RightKey:  "id",
			BuildLeft: buildLeft,
		}
		names, data, err := db.JoinColumns(ctx, spec)
		if err != nil {
			t.Fatalf("JoinColumns(buildLeft=%v): %v", buildLeft, err)
		}
		wantCols := []string{"src", "dst", "bytes", "packets", "prefix", "dc", "load"}
		if strings.Join(names, ",") != strings.Join(wantCols, ",") {
			t.Fatalf("join cols %v, want %v", names, wantCols)
		}
		got := frameOf(names, data)
		if got.NumRows() != 4 {
			t.Fatalf("join rows %d, want 4", got.NumRows())
		}
		// Left-major order with matches in right-row order, independent of
		// the build side: the first output row joins edge (a,b) to node b.
		if cell, _ := got.Cell(0, "dc"); cell != "west" {
			t.Errorf("buildLeft=%v first row dc = %v, want west (node b)", buildLeft, cell)
		}
	}
}

// TestJoinColumnsKeyClasses pins the key equivalence classes: int64/float64
// collapse, every NaN payload is one class, and unhashable keys refuse.
func TestJoinColumnsKeyClasses(t *testing.T) {
	db := NewDB()
	l := dataframe.New("k", "lv")
	l.AppendRow(1, "int")
	l.AppendRow(math.NaN(), "nan")
	db.CreateTable("l", l)
	r := dataframe.New("k", "rv")
	r.AppendRow(1.0, "float")
	r.AppendRow(math.NaN(), "nan2")
	db.CreateTable("r", r)
	names, data, err := db.JoinColumns(context.Background(), JoinSpec{
		Left: ScanSpec{Table: "l"}, Right: ScanSpec{Table: "r"},
		LeftKey: "k", RightKey: "k",
	})
	if err != nil {
		t.Fatal(err)
	}
	f := frameOf(names, data)
	if f.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (1==1.0 and NaN~NaN):\n%v", f.NumRows(), data)
	}
	// pushKey itself refuses non-scalar cells (a frame stringifies them at
	// append, but the guard keeps the entry points total).
	if _, err := pushKey([]any{1}); !errors.Is(err, ErrPushdown) {
		t.Errorf("pushKey(non-scalar): err = %v, want ErrPushdown", err)
	}
}

// TestGroupColumnsMatchesGroupBy compares the native group-by against the
// text path for every aggregate function, plus the empty-input global row.
func TestGroupColumnsMatchesGroupBy(t *testing.T) {
	db := testDB()
	ctx := context.Background()
	names, data, err := db.GroupColumns(ctx, GroupSpec{
		Input:   ScanSpec{Table: "edges"},
		GroupBy: []string{"src"},
		Aggs: []GroupAgg{
			{Col: "bytes", Fn: "sum", As: "total"},
			{Col: "bytes", Fn: "count", As: "n"},
			{Col: "bytes", Fn: "mean", As: "avg"},
			{Col: "bytes", Fn: "min", As: "lo"},
			{Col: "bytes", Fn: "max", As: "hi"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := frameOf(names, data)
	want := mustQuery(t, db,
		"SELECT src, SUM(bytes) AS total, COUNT(bytes) AS n, AVG(bytes) AS avg, MIN(bytes) AS lo, MAX(bytes) AS hi FROM edges GROUP BY src")
	// The text path may order groups differently; compare as sets of rows.
	if got.NumRows() != want.NumRows() {
		t.Fatalf("group rows %d, want %d", got.NumRows(), want.NumRows())
	}
	index := map[string][]any{}
	for r := 0; r < want.NumRows(); r++ {
		key, _ := want.Cell(r, "src")
		row := make([]any, 0, len(names))
		for _, c := range names {
			cell, _ := want.Cell(r, c)
			row = append(row, cell)
		}
		index[fmt.Sprint(key)] = row
	}
	for r := 0; r < got.NumRows(); r++ {
		key, _ := got.Cell(r, "src")
		wrow, ok := index[fmt.Sprint(key)]
		if !ok {
			t.Fatalf("native group %v missing from text result", key)
		}
		for i, c := range names {
			cell, _ := got.Cell(r, c)
			if dataframe.CompareValues(cell, wrow[i]) != 0 {
				t.Errorf("group %v col %s: native %v, text %v", key, c, cell, wrow[i])
			}
		}
	}
	// Empty input, no GroupBy: one global row (SQL semantics).
	names, data, err = db.GroupColumns(ctx, GroupSpec{
		Input: ScanSpec{Table: "edges", Conds: []Cond{{Col: "bytes", Op: ">", Value: int64(1 << 40)}}},
		Aggs:  []GroupAgg{{Col: "bytes", Fn: "count", As: "n"}, {Col: "bytes", Fn: "sum", As: "s"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if scanLen(data) != 1 || data[0][0] != int64(0) || data[1][0] != nil {
		t.Errorf("empty global group: names=%v data=%v, want one row (0, nil)", names, data)
	}
}

// TestGroupColumnsErrPushdown pins group-by refusals: unknown group or agg
// columns, unknown functions, unhashable group keys.
func TestGroupColumnsErrPushdown(t *testing.T) {
	db := testDB()
	ctx := context.Background()
	cases := []GroupSpec{
		{Input: ScanSpec{Table: "edges"}, GroupBy: []string{"ghost"}},
		{Input: ScanSpec{Table: "edges"}, Aggs: []GroupAgg{{Col: "ghost", Fn: "sum", As: "s"}}},
		{Input: ScanSpec{Table: "edges"}, Aggs: []GroupAgg{{Col: "bytes", Fn: "median", As: "m"}}},
		{Input: ScanSpec{Table: "ghost"}},
	}
	for _, spec := range cases {
		if _, _, err := db.GroupColumns(ctx, spec); !errors.Is(err, ErrPushdown) {
			t.Errorf("GroupColumns(%+v): err = %v, want ErrPushdown", spec, err)
		}
	}
}

// TestPushdownProfileFramesMatchText requires the native scan to emit the
// text path's exact frame tree (sql.select > sql.scan > sql.filter) so
// explain-analyze output cannot reveal which path served a query.
func TestPushdownProfileFramesMatchText(t *testing.T) {
	db := testDB()
	shape := func(run func(ctx context.Context) error) []string {
		t.Helper()
		prof := obs.NewProfile()
		ctx := obs.WithProfile(context.Background(), prof)
		if err := run(ctx); err != nil {
			t.Fatal(err)
		}
		var ops []string
		for _, fr := range prof.Flatten() {
			ops = append(ops, fmt.Sprintf("%d:%s:%d", fr.Depth, fr.Op, fr.Rows))
		}
		return ops
	}
	native := shape(func(ctx context.Context) error {
		_, _, err := db.ScanColumns(ctx, ScanSpec{
			Table: "edges", Conds: []Cond{{Col: "bytes", Op: ">", Value: int64(100)}},
		})
		return err
	})
	text := shape(func(ctx context.Context) error {
		_, err := db.QueryContext(ctx, "SELECT * FROM edges WHERE bytes > 100")
		return err
	})
	if strings.Join(native, ",") != strings.Join(text, ",") {
		t.Errorf("frame trees diverge:\n  native: %v\n  text:   %v", native, text)
	}
}

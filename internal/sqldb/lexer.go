// Package sqldb implements a small relational database engine with a SQL
// dialect sufficient for the NeMoEval benchmark: SELECT (projection,
// expressions, aliases, WHERE, JOIN … ON, GROUP BY, HAVING, ORDER BY,
// LIMIT), INSERT, UPDATE, DELETE and CREATE TABLE. Tables are backed by the
// dataframe package so the SQL and pandas approaches share one storage
// layer, mirroring the paper's setup where both views expose the same node
// and edge tables.
package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // operators: = != <> < <= > >= + - * / %
	tokPunct // ( ) , . ;
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"LIKE": true, "IS": true, "NULL": true, "JOIN": true, "INNER": true,
	"LEFT": true, "ON": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "DISTINCT": true, "TRUE": true, "FALSE": true,
	"BETWEEN": true, "OFFSET": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true,
}

// SyntaxError is returned for malformed SQL; it carries the byte offset so
// the benchmark's error classifier can label it as a syntax failure.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql syntax error at offset %d: %s", e.Pos, e.Msg)
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(src[i])) || (src[i] == '.' && !seenDot)) {
				if src[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == quote {
					if i+1 < n && src[i+1] == quote { // doubled quote escape
						sb.WriteByte(quote)
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, &SyntaxError{Pos: start, Msg: "unterminated string literal"}
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case strings.ContainsRune("(),.;", rune(c)):
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		case c == '<':
			if i+1 < n && (src[i+1] == '=' || src[i+1] == '>') {
				toks = append(toks, token{tokOp, src[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, &SyntaxError{Pos: i, Msg: "unexpected '!'"}
			}
		case strings.ContainsRune("=+-*/%", rune(c)):
			toks = append(toks, token{tokOp, string(c), i})
			i++
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

package sqldb

import (
	"context"
	"testing"

	"repro/internal/dataframe"
	"repro/internal/obs"
)

func profileTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	nodes := dataframe.New("id", "kind")
	nodes.AppendRow("a", "spine")
	nodes.AppendRow("b", "leaf")
	nodes.AppendRow("c", "leaf")
	db.CreateTable("nodes", nodes)
	edges := dataframe.New("src", "dst")
	edges.AppendRow("a", "b")
	edges.AppendRow("a", "c")
	edges.AppendRow("b", "c")
	db.CreateTable("edges", edges)
	return db
}

func TestQueryProfileScanJoinFrames(t *testing.T) {
	db := profileTestDB(t)
	prof := obs.NewProfile()
	ctx := obs.WithProfile(context.Background(), prof)
	out, err := db.QueryContext(ctx,
		`SELECT n.id FROM nodes n JOIN edges e ON n.id = e.src WHERE n.kind = 'leaf'`)
	if err != nil {
		t.Fatalf("QueryContext: %v", err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", out.NumRows())
	}
	flat := prof.Flatten()
	byOp := map[string][]obs.OpStat{}
	for _, st := range flat {
		byOp[st.Op] = append(byOp[st.Op], st)
	}
	sel := byOp["sql.select"]
	if len(sel) != 1 || sel[0].Depth != 0 || sel[0].Rows != 1 || sel[0].Detail != "nodes" {
		t.Fatalf("sql.select frame = %+v", sel)
	}
	scans := byOp["sql.scan"]
	if len(scans) != 2 {
		t.Fatalf("got %d sql.scan frames, want 2 (base + join side): %+v", len(scans), flat)
	}
	if scans[0].Detail != "nodes" || scans[0].Rows != 3 {
		t.Fatalf("base scan = %+v", scans[0])
	}
	if scans[1].Detail != "edges" || scans[1].Rows != 3 {
		t.Fatalf("join-side scan = %+v", scans[1])
	}
	join := byOp["sql.join"]
	if len(join) != 1 || join[0].Detail != "inner edges e" || join[0].Rows != 3 {
		t.Fatalf("join frame = %+v", join)
	}
	filt := byOp["sql.filter"]
	if len(filt) != 1 || filt[0].Rows != 1 {
		t.Fatalf("filter frame = %+v", filt)
	}
}

func TestQueryUnprofiledUnchanged(t *testing.T) {
	db := profileTestDB(t)
	out, err := db.Query(`SELECT COUNT(*) AS n FROM edges`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", out.NumRows())
	}
}

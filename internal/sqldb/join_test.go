package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataframe"
)

// TestPropHashJoinMatchesNestedLoop cross-checks the hash-join fast path
// against a reference nested-loop join computed in Go, over random tables
// and mixed ON clauses (equality + residual inequality).
func TestPropHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		left := dataframe.New("k", "v")
		nl := 1 + r.Intn(25)
		for i := 0; i < nl; i++ {
			left.AppendRow(fmt.Sprintf("k%d", r.Intn(6)), r.Intn(50))
		}
		right := dataframe.New("k", "w")
		nr := 1 + r.Intn(25)
		for i := 0; i < nr; i++ {
			right.AppendRow(fmt.Sprintf("k%d", r.Intn(6)), r.Intn(50))
		}
		db := NewDB()
		db.CreateTable("l", left)
		db.CreateTable("r", right)
		got, err := db.Query("SELECT l.k, l.v, r.w FROM l JOIN r ON l.k = r.k AND l.v < r.w")
		if err != nil {
			return false
		}
		// Reference: manual nested loop.
		want := 0
		lk, _ := left.Column("k")
		lv, _ := left.Column("v")
		rk, _ := right.Column("k")
		rw, _ := right.Column("w")
		for i := 0; i < left.NumRows(); i++ {
			for j := 0; j < right.NumRows(); j++ {
				if lk[i] == rk[j] && lv[i].(int64) < rw[j].(int64) {
					want++
				}
			}
		}
		if got.NumRows() != want {
			return false
		}
		// Every output row satisfies both conditions.
		for i := 0; i < got.NumRows(); i++ {
			row := got.Row(i)
			if row["v"].(int64) >= row["w"].(int64) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestJoinNoEquiFallback exercises the nested-loop fallback when the ON
// clause has no usable equality.
func TestJoinNoEquiFallback(t *testing.T) {
	db := NewDB()
	a := dataframe.New("x")
	a.AppendRow(1)
	a.AppendRow(5)
	b := dataframe.New("y")
	b.AppendRow(3)
	b.AppendRow(7)
	db.CreateTable("a", a)
	db.CreateTable("b", b)
	f, err := db.Query("SELECT a.x, b.y FROM a JOIN b ON a.x < b.y ORDER BY x, y")
	if err != nil {
		t.Fatal(err)
	}
	// pairs: (1,3) (1,7) (5,7)
	if f.NumRows() != 3 {
		t.Fatalf("rows = %d: %v", f.NumRows(), f.Records())
	}
}

// TestJoinEquiWithReversedOperands: "right.col = left.col" must also take
// the hash path and produce identical results.
func TestJoinEquiReversed(t *testing.T) {
	db := NewDB()
	l := dataframe.New("k", "v")
	l.AppendRow("a", 1)
	l.AppendRow("b", 2)
	r := dataframe.New("k", "w")
	r.AppendRow("a", 10)
	db.CreateTable("l", l)
	db.CreateTable("r", r)
	f1, err := db.Query("SELECT l.k, r.w FROM l JOIN r ON l.k = r.k")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := db.Query("SELECT l.k, r.w FROM l JOIN r ON r.k = l.k")
	if err != nil {
		t.Fatal(err)
	}
	if !dataframe.Equal(f1, f2) {
		t.Fatal("operand order changed join result")
	}
	if f1.NumRows() != 1 {
		t.Fatalf("rows = %d", f1.NumRows())
	}
}

// TestJoinLeftWithResidual: a LEFT JOIN whose residual rejects a matching
// key must emit the null row.
func TestJoinLeftWithResidual(t *testing.T) {
	db := NewDB()
	l := dataframe.New("k", "v")
	l.AppendRow("a", 1)
	r := dataframe.New("k", "w")
	r.AppendRow("a", 0)
	db.CreateTable("l", l)
	db.CreateTable("r", r)
	f, err := db.Query("SELECT l.k, r.w FROM l LEFT JOIN r ON l.k = r.k AND r.w > 5")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 1 {
		t.Fatalf("rows = %d", f.NumRows())
	}
	if f.Row(0)["w"] != nil {
		t.Fatalf("expected null-extended row, got %v", f.Row(0))
	}
}

// TestThreeWayJoin chains two hash joins.
func TestThreeWayJoin(t *testing.T) {
	db := NewDB()
	a := dataframe.New("id", "bid")
	a.AppendRow("a1", "b1")
	b := dataframe.New("id", "cid")
	b.AppendRow("b1", "c1")
	c := dataframe.New("id", "val")
	c.AppendRow("c1", 42)
	db.CreateTable("a", a)
	db.CreateTable("b", b)
	db.CreateTable("c", c)
	f, err := db.Query("SELECT a.id, c.val FROM a JOIN b ON a.bid = b.id JOIN c ON b.cid = c.id")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 1 || f.Row(0)["val"] != int64(42) {
		t.Fatalf("rows = %v", f.Records())
	}
}

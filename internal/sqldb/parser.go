package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

type parser struct {
	toks []token
	i    int
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{tokIdent: "identifier", tokNumber: "number", tokString: "string"}[kind]
	}
	return token{}, p.errorf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	default:
		return nil, p.errorf("expected a statement, found %q", p.cur().text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{}
	st.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "FROM") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		st.From = tr
		for {
			kind := ""
			switch {
			case p.accept(tokKeyword, "JOIN"):
				kind = "inner"
			case p.at(tokKeyword, "INNER"):
				p.next()
				if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
					return nil, err
				}
				kind = "inner"
			case p.at(tokKeyword, "LEFT"):
				p.next()
				if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
					return nil, err
				}
				kind = "left"
			}
			if kind == "" {
				break
			}
			jt, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Joins = append(st.Joins, JoinClause{Kind: kind, Table: jt, On: on})
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		st.Limit = &n
		if p.accept(tokKeyword, "OFFSET") {
			o, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			st.Offset = &o
		}
	}
	return st, nil
}

func (p *parser) parseIntLiteral() (int64, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, &SyntaxError{Pos: t.pos, Msg: "expected integer"}
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.text
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (*TableRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	tr := &TableRef{Name: t.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		tr.Alias = a.text
	} else if p.at(tokIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: t.text}
	if p.accept(tokPunct, "(") {
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	p.next() // UPDATE
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: t.text}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Col: c.text, Expr: e})
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: t.text}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseCreate() (*CreateTableStmt, error) {
	p.next() // CREATE
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Table: t.text}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	for {
		c, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, c.text)
		// Optional type name (TEXT, INT, REAL, ...).
		if p.at(tokIdent, "") {
			st.Types = append(st.Types, p.next().text)
		} else {
			st.Types = append(st.Types, "")
		}
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

// --- expression parsing (precedence climbing) ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tokKeyword, "IS") {
		not := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Not: not}, nil
	}
	// [NOT] IN / BETWEEN / LIKE
	not := false
	if p.at(tokKeyword, "NOT") && (p.toks[p.i+1].text == "IN" || p.toks[p.i+1].text == "BETWEEN" || p.toks[p.i+1].text == "LIKE") {
		p.next()
		not = true
	}
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var vals []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vals = append(vals, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &InExpr{X: left, Not: not, Values: vals}, nil
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}, nil
	}
	if p.accept(tokKeyword, "LIKE") {
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{Op: "LIKE", Left: left, Right: right}
		if not {
			e = &UnaryExpr{Op: "NOT", X: e}
		}
		return e, nil
	}
	if not {
		return nil, p.errorf("dangling NOT")
	}
	for _, op := range []string{"=", "!=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(tokOp, op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			canonical := op
			if op == "<>" {
				canonical = "!="
			}
			return &BinaryExpr{Op: canonical, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokOp, "+"):
			op = "+"
		case p.accept(tokOp, "-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokOp, "*"):
			op = "*"
		case p.accept(tokOp, "/"):
			op = "/"
		case p.accept(tokOp, "%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, &SyntaxError{Pos: t.pos, Msg: "bad number"}
			}
			return &Literal{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{Pos: t.pos, Msg: "bad number"}
		}
		return &Literal{Value: n}, nil
	case t.kind == tokString:
		p.next()
		return &Literal{Value: t.text}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return &Literal{Value: nil}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return &Literal{Value: true}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return &Literal{Value: false}, nil
	case t.kind == tokKeyword && t.text == "CASE":
		return p.parseCase()
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.next()
		// Function call?
		if p.at(tokPunct, "(") {
			return p.parseFuncCall(t.text)
		}
		// Qualified column?
		if p.accept(tokPunct, ".") {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Name: c.text}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	default:
		return nil, p.errorf("unexpected token %q in expression", t.text)
	}
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	ce := &CaseExpr{}
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	p.next() // (
	fc := &FuncCall{Name: strings.ToUpper(name)}
	if p.accept(tokOp, "*") {
		fc.Star = true
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	fc.Distinct = p.accept(tokKeyword, "DISTINCT")
	if !p.at(tokPunct, ")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return fc, nil
}

package sqldb

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
	Offset   *int64
}

// SelectItem is one projection: an expression with an optional alias, or *.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// JoinClause is "[INNER|LEFT] JOIN table [alias] ON cond".
type JoinClause struct {
	Kind  string // "inner" or "left"
	Table *TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is "INSERT INTO table (cols...) VALUES (...), (...)".
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// UpdateStmt is "UPDATE table SET col = expr, ... [WHERE cond]".
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause is one assignment in UPDATE.
type SetClause struct {
	Col  string
	Expr Expr
}

// DeleteStmt is "DELETE FROM table [WHERE cond]".
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is "CREATE TABLE name (col type, ...)"; types are parsed
// but only recorded (storage is dynamically typed).
type CreateTableStmt struct {
	Table string
	Cols  []string
	Types []string
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}

// Expr is any SQL expression node.
type Expr interface{ expr() }

// Literal is a constant: nil, bool, int64, float64 or string.
type Literal struct{ Value any }

// ColumnRef references a column, optionally table-qualified.
type ColumnRef struct {
	Table string // "" when unqualified
	Name  string

	// resolved caches the qualified key an unqualified reference bound to,
	// valid for the single statement execution that owns this AST.
	resolved string
}

// BinaryExpr applies Op to Left and Right. Op is upper-case: =, !=, <, <=,
// >, >=, +, -, *, /, %, AND, OR, LIKE.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr applies Op ("-" or "NOT") to X.
type UnaryExpr struct {
	Op string
	X  Expr
}

// FuncCall calls an SQL function: COUNT, SUM, AVG, MIN, MAX, LENGTH, UPPER,
// LOWER, ABS, ROUND, SUBSTR, COALESCE. Star marks COUNT(*).
type FuncCall struct {
	Name     string
	Star     bool
	Distinct bool
	Args     []Expr
}

// InExpr is "x [NOT] IN (a, b, c)".
type InExpr struct {
	X      Expr
	Not    bool
	Values []Expr
}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is "x [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// CaseExpr is "CASE WHEN cond THEN v ... [ELSE e] END".
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

// WhenClause is one WHEN/THEN arm of a CASE expression.
type WhenClause struct {
	Cond Expr
	Then Expr
}

func (*Literal) expr()     {}
func (*ColumnRef) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*FuncCall) expr()    {}
func (*InExpr) expr()      {}
func (*IsNullExpr) expr()  {}
func (*BetweenExpr) expr() {}
func (*CaseExpr) expr()    {}

package sqldb

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataframe"
	"repro/internal/obs"
)

// cancelCheckEvery is the executor's row-loop checkpoint stride: the
// statement context is polled once per this many rows, keeping the poll off
// the per-row fast path while bounding cancellation latency to one stride.
const cancelCheckEvery = 1024

// cancelled reports the context error, if any, at checkpoint i (only
// multiples of cancelCheckEvery are polled; pass i = 0 to force a poll).
func cancelled(ctx context.Context, i int) error {
	if ctx == nil || i%cancelCheckEvery != 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sql: %w", err)
	}
	return nil
}

// workingSet is the intermediate relation a SELECT pipeline operates on:
// rows are scopes with qualified keys, plus ordered output metadata so star
// expansion is deterministic.
type workingSet struct {
	rows []scope
	// qualified column names in deterministic order, e.g. "n.id".
	cols []string
}

// enterFrame opens a profile frame, parenting it under the context's
// explicit frame when one is set (concurrent callers — the federated
// pipeline's operator stages — pre-wire parents that way) and falling back
// to the cursor-based Enter for plain sequential execution. Nil-safe.
func enterFrame(ctx context.Context, prof *obs.Profile, name, detail string) *obs.ProfNode {
	if parent := obs.FrameFrom(ctx); parent != nil {
		return prof.EnterChild(parent, name, detail)
	}
	return prof.Enter(name, detail)
}

func (db *DB) execSelect(ctx context.Context, s *SelectStmt) (*dataframe.Frame, error) {
	// Profiling is opt-in via the statement context (obs.WithProfile); an
	// unprofiled query pays one context lookup and nil-safe no-op calls.
	prof := obs.ProfileFrom(ctx)
	sel := enterFrame(ctx, prof, "sql.select", selectDetail(s))
	ctx = obs.WithFrame(ctx, sel)
	out, err := db.execSelectBody(ctx, prof, s)
	rows := int64(-1)
	if err == nil && out != nil {
		rows = int64(out.NumRows())
	}
	prof.Exit(sel, rows)
	return out, err
}

func (db *DB) execSelectBody(ctx context.Context, prof *obs.Profile, s *SelectStmt) (*dataframe.Frame, error) {
	ws, err := db.buildFrom(ctx, s)
	if err != nil {
		return nil, err
	}
	// WHERE
	if s.Where != nil {
		filt := enterFrame(ctx, prof, "sql.filter", "")
		filtered := ws.rows[:0:0]
		for ri, row := range ws.rows {
			if err := cancelled(ctx, ri); err != nil {
				prof.Exit(filt, -1)
				return nil, err
			}
			ok, err := evalBool(s.Where, row)
			if err != nil {
				prof.Exit(filt, -1)
				return nil, err
			}
			if ok {
				filtered = append(filtered, row)
			}
		}
		ws.rows = filtered
		prof.Exit(filt, int64(len(ws.rows)))
	}

	aggregated := len(s.GroupBy) > 0 || s.Having != nil || selectHasAggregate(s.Items)
	var out *dataframe.Frame
	if aggregated {
		out, err = projectAggregate(ctx, s, ws)
	} else {
		out, err = projectPlain(ctx, s, ws)
	}
	if err != nil {
		return nil, err
	}

	// ORDER BY operates on output columns (by name) or fresh expressions
	// against the pre-projection rows for plain selects; for simplicity and
	// predictability we order by output column references and fall back to
	// expression text lookup.
	if len(s.OrderBy) > 0 {
		if err := cancelled(ctx, 0); err != nil {
			return nil, err
		}
		out, err = orderResult(s, ws, out, aggregated)
		if err != nil {
			return nil, err
		}
	}
	if s.Distinct {
		out = distinctRows(out)
	}
	if s.Offset != nil || s.Limit != nil {
		start := 0
		if s.Offset != nil {
			start = int(*s.Offset)
		}
		if start > out.NumRows() {
			start = out.NumRows()
		}
		end := out.NumRows()
		if s.Limit != nil && start+int(*s.Limit) < end {
			end = start + int(*s.Limit)
		}
		idx := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		trimmed := dataframe.New(out.Columns()...)
		for _, i := range idx {
			row := out.Row(i)
			vals := make([]any, 0, out.NumCols())
			for _, c := range out.Columns() {
				vals = append(vals, row[c])
			}
			trimmed.AppendRow(vals...)
		}
		out = trimmed
	}
	return out, nil
}

// buildFrom materializes the FROM clause (with joins) into a working set.
func (db *DB) buildFrom(ctx context.Context, s *SelectStmt) (*workingSet, error) {
	ws := &workingSet{}
	if s.From == nil {
		// SELECT without FROM: one empty row so constant expressions work.
		ws.rows = []scope{{}}
		return ws, nil
	}
	base, err := db.Table(s.From.Name)
	if err != nil {
		return nil, err
	}
	alias := s.From.Alias
	if alias == "" {
		alias = s.From.Name
	}
	prof := obs.ProfileFrom(ctx)
	scan := enterFrame(ctx, prof, "sql.scan", s.From.Name)
	ws.rows = tableScopes(base, alias)
	prof.Exit(scan, int64(len(ws.rows)))
	for _, c := range base.Columns() {
		ws.cols = append(ws.cols, alias+"."+c)
	}
	for _, j := range s.Joins {
		right, err := db.Table(j.Table.Name)
		if err != nil {
			return nil, err
		}
		ralias := j.Table.Alias
		if ralias == "" {
			ralias = j.Table.Name
		}
		jf := enterFrame(ctx, prof, "sql.join", joinDetail(j))
		rscan := enterFrame(obs.WithFrame(ctx, jf), prof, "sql.scan", j.Table.Name)
		rightRows := tableScopes(right, ralias)
		prof.Exit(rscan, int64(len(rightRows)))
		joined, err := joinRows(ctx, ws, j, right, rightRows, ralias)
		if err != nil {
			prof.Exit(jf, -1)
			return nil, err
		}
		ws.rows = joined
		prof.Exit(jf, int64(len(joined)))
		for _, c := range right.Columns() {
			ws.cols = append(ws.cols, ralias+"."+c)
		}
	}
	return ws, nil
}

// joinDetail renders one JOIN clause for a profile frame.
func joinDetail(j JoinClause) string {
	kind := j.Kind
	if kind == "" {
		kind = "inner"
	}
	name := j.Table.Name
	if j.Table.Alias != "" && j.Table.Alias != j.Table.Name {
		name += " " + j.Table.Alias
	}
	return kind + " " + name
}

// selectDetail renders the FROM shape of a SELECT for a profile frame.
func selectDetail(s *SelectStmt) string {
	if s.From == nil {
		return ""
	}
	return s.From.Name
}

// joinRows joins ws against one table per the JOIN clause, via the hash
// fast path when equiJoinKeys finds a usable equality.
func joinRows(ctx context.Context, ws *workingSet, j JoinClause, right *dataframe.Frame, rightRows []scope, ralias string) ([]scope, error) {
	// Hash-join fast path: when the ON clause contains an equality
	// between a left column and a right column, bucket the right side
	// by that key and probe instead of the quadratic nested loop. Any
	// remaining ON conjuncts are still evaluated per candidate pair.
	leftKey, rightKey, residual := equiJoinKeys(j.On, ws.cols, right.Columns(), ralias)
	var rightIndex map[joinKey][]scope
	if leftKey != nil {
		rightIndex = make(map[joinKey][]scope, len(rightRows))
		for _, r := range rightRows {
			v, err := r.lookup(rightKey)
			if err != nil {
				return nil, err
			}
			k := keyOf(v)
			rightIndex[k] = append(rightIndex[k], r)
		}
	}
	var joined []scope
	for li, l := range ws.rows {
		if err := cancelled(ctx, li); err != nil {
			return nil, err
		}
		candidates := rightRows
		if rightIndex != nil {
			lv, err := l.lookup(leftKey)
			if err != nil {
				return nil, err
			}
			candidates = rightIndex[keyOf(lv)]
		}
		matched := false
		for _, r := range candidates {
			merged := mergeScopes(l, r)
			cond := residual
			if rightIndex == nil {
				cond = j.On
			}
			ok := true
			if cond != nil {
				var err error
				ok, err = evalBool(cond, merged)
				if err != nil {
					return nil, err
				}
			}
			if ok {
				joined = append(joined, merged)
				matched = true
			}
		}
		if !matched && j.Kind == "left" {
			nulls := scope{}
			for _, c := range right.Columns() {
				nulls[ralias+"."+c] = nil
			}
			joined = append(joined, mergeScopes(l, nulls))
		}
	}
	return joined, nil
}

// equiJoinKeys extracts one "left.col = right.col" equality from an ON
// expression, returning column refs for both sides plus the residual
// condition (nil when the equality was the whole clause). It returns nils
// when no usable equality is found, in which case the caller falls back to
// the nested-loop join.
func equiJoinKeys(on Expr, leftCols, rightCols []string, ralias string) (leftKey, rightKey *ColumnRef, residual Expr) {
	conjuncts := splitAnd(on)
	isRight := func(ref *ColumnRef) bool {
		if ref.Table != "" {
			return ref.Table == ralias
		}
		for _, c := range rightCols {
			if c == ref.Name {
				// Unqualified: right-side only if no left column shadows it.
				for _, lc := range leftCols {
					if lc[lastDot(lc)+1:] == ref.Name {
						return false
					}
				}
				return true
			}
		}
		return false
	}
	isLeft := func(ref *ColumnRef) bool {
		if ref.Table != "" {
			for _, lc := range leftCols {
				if lc == ref.Table+"."+ref.Name {
					return true
				}
			}
			return false
		}
		for _, lc := range leftCols {
			if lc[lastDot(lc)+1:] == ref.Name {
				return true
			}
		}
		return false
	}
	for i, c := range conjuncts {
		be, ok := c.(*BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		l, lok := be.Left.(*ColumnRef)
		r, rok := be.Right.(*ColumnRef)
		if !lok || !rok {
			continue
		}
		var lk, rk *ColumnRef
		switch {
		case isLeft(l) && isRight(r):
			lk, rk = l, r
		case isRight(l) && isLeft(r):
			lk, rk = r, l
		default:
			continue
		}
		rest := append(append([]Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return lk, rk, joinAnd(rest)
	}
	return nil, nil, nil
}

func splitAnd(e Expr) []Expr {
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []Expr{e}
}

func joinAnd(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &BinaryExpr{Op: "AND", Left: out, Right: e}
	}
	return out
}

// joinKey buckets join keys without formatting them into strings; int64
// and float64 of equal magnitude share a key (via the float64 bit pattern),
// matching SQL's loose numeric equality.
type joinKey struct {
	bits uint64
	str  string
	kind uint8 // 0 nil, 1 bool, 2 number, 3 string, 4 other
}

func keyOf(v any) joinKey {
	switch x := v.(type) {
	case nil:
		return joinKey{}
	case bool:
		var b uint64
		if x {
			b = 1
		}
		return joinKey{kind: 1, bits: b}
	case int64:
		return joinKey{kind: 2, bits: math.Float64bits(float64(x))}
	case float64:
		return joinKey{kind: 2, bits: math.Float64bits(x)}
	case string:
		return joinKey{kind: 3, str: x}
	default:
		return joinKey{kind: 4, str: fmt.Sprintf("%v", x)}
	}
}

// tableScopes materializes a table scan as qualified scopes straight from
// the frame's columns — no per-row intermediate map, no per-row qualified
// name building. This is the SQL backend's hottest path: every db.query()
// of every trial rescans its base tables.
func tableScopes(f *dataframe.Frame, alias string) []scope {
	cols := f.Columns()
	qnames := make([]string, len(cols))
	data := make([][]any, len(cols))
	for j, c := range cols {
		qnames[j] = alias + "." + c
		data[j], _ = f.Column(c)
	}
	out := make([]scope, f.NumRows())
	for i := range out {
		s := make(scope, len(cols))
		for j := range cols {
			s[qnames[j]] = data[j][i]
		}
		out[i] = s
	}
	return out
}

func mergeScopes(a, b scope) scope {
	out := make(scope, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

func selectHasAggregate(items []SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil && exprHasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if isAggregate(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return exprHasAggregate(x.Left) || exprHasAggregate(x.Right)
	case *UnaryExpr:
		return exprHasAggregate(x.X)
	case *InExpr:
		if exprHasAggregate(x.X) {
			return true
		}
		for _, v := range x.Values {
			if exprHasAggregate(v) {
				return true
			}
		}
	case *IsNullExpr:
		return exprHasAggregate(x.X)
	case *BetweenExpr:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Lo) || exprHasAggregate(x.Hi)
	case *CaseExpr:
		for _, w := range x.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Then) {
				return true
			}
		}
		if x.Else != nil {
			return exprHasAggregate(x.Else)
		}
	}
	return false
}

// outputName derives the result column name for a select item.
func outputName(it SelectItem, pos int) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch e := it.Expr.(type) {
	case *ColumnRef:
		return e.Name
	case *FuncCall:
		name := strings.ToLower(e.Name)
		if e.Star {
			return name
		}
		if len(e.Args) == 1 {
			if c, ok := e.Args[0].(*ColumnRef); ok {
				return name + "_" + c.Name
			}
		}
		return name
	default:
		return fmt.Sprintf("col%d", pos+1)
	}
}

func projectPlain(ctx context.Context, s *SelectStmt, ws *workingSet) (*dataframe.Frame, error) {
	// Expand stars into column refs.
	var names []string
	var exprs []Expr
	for i, it := range s.Items {
		if it.Star {
			for _, qc := range ws.cols {
				names = append(names, unqualifiedName(qc, ws.cols))
				dot := lastDot(qc)
				exprs = append(exprs, &ColumnRef{Table: qc[:dot], Name: qc[dot+1:]})
			}
			continue
		}
		names = append(names, outputName(it, i))
		exprs = append(exprs, it.Expr)
	}
	names = dedupeNames(names)
	out := dataframe.New(names...)
	for ri, row := range ws.rows {
		if err := cancelled(ctx, ri); err != nil {
			return nil, err
		}
		vals := make([]any, len(exprs))
		for i, e := range exprs {
			v, err := evalExpr(e, row)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		out.AppendRow(vals...)
	}
	return out, nil
}

func unqualifiedName(qc string, all []string) string {
	dot := lastDot(qc)
	name := qc[dot+1:]
	count := 0
	for _, other := range all {
		if other[lastDot(other)+1:] == name {
			count++
		}
	}
	if count > 1 {
		return strings.ReplaceAll(qc, ".", "_")
	}
	return name
}

func dedupeNames(names []string) []string {
	seen := map[string]int{}
	out := make([]string, len(names))
	for i, n := range names {
		seen[n]++
		if seen[n] > 1 {
			out[i] = fmt.Sprintf("%s_%d", n, seen[n])
		} else {
			out[i] = n
		}
	}
	return out
}

func projectAggregate(ctx context.Context, s *SelectStmt, ws *workingSet) (*dataframe.Frame, error) {
	// Partition rows into groups by the GROUP BY key values.
	type group struct {
		key  []any
		rows []scope
	}
	var groups []*group
	index := map[string]*group{}
	var kb strings.Builder
	for ri, row := range ws.rows {
		if err := cancelled(ctx, ri); err != nil {
			return nil, err
		}
		key := make([]any, len(s.GroupBy))
		kb.Reset()
		for i, ge := range s.GroupBy {
			v, err := evalExpr(ge, row)
			if err != nil {
				return nil, err
			}
			key[i] = v
			writeValKey(&kb, v)
		}
		ks := kb.String()
		grp, ok := index[ks]
		if !ok {
			grp = &group{key: key}
			index[ks] = grp
			groups = append(groups, grp)
		}
		grp.rows = append(grp.rows, row)
	}
	if len(s.GroupBy) == 0 {
		// Whole-table aggregate: one group, possibly empty.
		groups = []*group{{rows: ws.rows}}
	}

	var names []string
	for i, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: * is not allowed with aggregation")
		}
		names = append(names, outputName(it, i))
	}
	names = dedupeNames(names)
	out := dataframe.New(names...)
	for _, grp := range groups {
		if s.Having != nil {
			v, err := evalAggExpr(s.Having, grp.rows)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		vals := make([]any, len(s.Items))
		for i, it := range s.Items {
			v, err := evalAggExpr(it.Expr, grp.rows)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		out.AppendRow(vals...)
	}
	return out, nil
}

// evalAggExpr evaluates an expression in aggregate context: aggregate
// functions consume the whole group; bare columns take the group's first
// row's value (standard loose GROUP BY semantics).
func evalAggExpr(e Expr, rows []scope) (any, error) {
	switch x := e.(type) {
	case *FuncCall:
		if !isAggregate(x.Name) {
			// Scalar function: evaluate args in aggregate context.
			args := make([]Expr, len(x.Args))
			for i, a := range x.Args {
				v, err := evalAggExpr(a, rows)
				if err != nil {
					return nil, err
				}
				args[i] = &Literal{Value: v}
			}
			return evalScalarFunc(&FuncCall{Name: x.Name, Args: args}, nil)
		}
		return evalAggregateFunc(x, rows)
	case *BinaryExpr:
		if x.Op == "AND" || x.Op == "OR" {
			l, err := evalAggExpr(x.Left, rows)
			if err != nil {
				return nil, err
			}
			if x.Op == "AND" && !truthy(l) {
				return false, nil
			}
			if x.Op == "OR" && truthy(l) {
				return true, nil
			}
			r, err := evalAggExpr(x.Right, rows)
			if err != nil {
				return nil, err
			}
			return truthy(r), nil
		}
		l, err := evalAggExpr(x.Left, rows)
		if err != nil {
			return nil, err
		}
		r, err := evalAggExpr(x.Right, rows)
		if err != nil {
			return nil, err
		}
		return evalBinary(&BinaryExpr{Op: x.Op, Left: &Literal{Value: l}, Right: &Literal{Value: r}}, nil)
	case *UnaryExpr:
		v, err := evalAggExpr(x.X, rows)
		if err != nil {
			return nil, err
		}
		return evalExpr(&UnaryExpr{Op: x.Op, X: &Literal{Value: v}}, nil)
	case *CaseExpr:
		for _, w := range x.Whens {
			c, err := evalAggExpr(w.Cond, rows)
			if err != nil {
				return nil, err
			}
			if truthy(c) {
				return evalAggExpr(w.Then, rows)
			}
		}
		if x.Else != nil {
			return evalAggExpr(x.Else, rows)
		}
		return nil, nil
	default:
		if len(rows) == 0 {
			return nil, nil
		}
		return evalExpr(e, rows[0])
	}
}

func evalAggregateFunc(f *FuncCall, rows []scope) (any, error) {
	if f.Name == "COUNT" && f.Star {
		return int64(len(rows)), nil
	}
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("sql: %s() takes exactly one argument", f.Name)
	}
	var vals []any
	seen := map[string]bool{}
	for _, row := range rows {
		v, err := evalExpr(f.Args[0], row)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		if f.Distinct {
			k := fmt.Sprintf("%T:%v", v, v)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch f.Name {
	case "COUNT":
		return int64(len(vals)), nil
	case "SUM", "AVG":
		total := 0.0
		allInt := true
		for _, v := range vals {
			switch n := v.(type) {
			case int64:
				total += float64(n)
			case float64:
				total += n
				allInt = false
			default:
				return nil, fmt.Errorf("sql: %s() over non-numeric value %v", f.Name, v)
			}
		}
		if f.Name == "AVG" {
			if len(vals) == 0 {
				return nil, nil
			}
			return total / float64(len(vals)), nil
		}
		if len(vals) == 0 {
			return nil, nil
		}
		if allInt {
			return int64(total), nil
		}
		return total, nil
	case "MIN", "MAX":
		var best any
		for _, v := range vals {
			if best == nil {
				best = v
				continue
			}
			cmp := dataframe.CompareValues(v, best)
			if (f.Name == "MIN" && cmp < 0) || (f.Name == "MAX" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	}
	return nil, fmt.Errorf("sql: unknown aggregate %s()", f.Name)
}

func orderResult(s *SelectStmt, ws *workingSet, out *dataframe.Frame, aggregated bool) (*dataframe.Frame, error) {
	n := out.NumRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Precompute sort keys per row: prefer output columns (covers aliases
	// and aggregate names); otherwise evaluate the expression against the
	// source rows (plain selects only, where row i aligns with ws.rows[i]).
	keys := make([][]any, n)
	for i := 0; i < n; i++ {
		keys[i] = make([]any, len(s.OrderBy))
	}
	for k, ob := range s.OrderBy {
		name := ""
		switch e := ob.Expr.(type) {
		case *ColumnRef:
			if e.Table == "" && out.HasColumn(e.Name) {
				name = e.Name
			}
		case *FuncCall:
			cand := outputName(SelectItem{Expr: e}, 0)
			if out.HasColumn(cand) {
				name = cand
			}
		}
		if name != "" {
			col, _ := out.Column(name)
			for i := 0; i < n; i++ {
				keys[i][k] = col[i]
			}
			continue
		}
		if aggregated {
			return nil, fmt.Errorf("sql: ORDER BY expression must reference an output column in aggregate queries")
		}
		if len(ws.rows) != n {
			return nil, fmt.Errorf("sql: internal: row mismatch in ORDER BY")
		}
		for i := 0; i < n; i++ {
			v, err := evalExpr(ob.Expr, ws.rows[i])
			if err != nil {
				return nil, err
			}
			keys[i][k] = v
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k := range s.OrderBy {
			cmp := dataframe.CompareValues(keys[idx[a]][k], keys[idx[b]][k])
			if cmp != 0 {
				if s.OrderBy[k].Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	sorted := dataframe.New(out.Columns()...)
	for _, i := range idx {
		row := out.Row(i)
		vals := make([]any, 0, out.NumCols())
		for _, c := range out.Columns() {
			vals = append(vals, row[c])
		}
		sorted.AppendRow(vals...)
	}
	return sorted, nil
}

// writeValKey appends one value's bucketing key: a type tag plus its
// rendering, so values of different dynamic types never collide (the same
// partitioning the previous "%T:%v" formatting produced, without fmt).
func writeValKey(kb *strings.Builder, v any) {
	switch x := v.(type) {
	case nil:
		kb.WriteString("_\x1f")
	case bool:
		if x {
			kb.WriteString("b:true\x1f")
		} else {
			kb.WriteString("b:false\x1f")
		}
	case int64:
		kb.WriteString("i:")
		kb.WriteString(strconv.FormatInt(x, 10))
		kb.WriteByte(0x1f)
	case float64:
		kb.WriteString("f:")
		kb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		kb.WriteByte(0x1f)
	case string:
		kb.WriteString("s:")
		kb.WriteString(x)
		kb.WriteByte(0x1f)
	default:
		fmt.Fprintf(kb, "%T:%v\x1f", v, v)
	}
}

func distinctRows(f *dataframe.Frame) *dataframe.Frame {
	out := dataframe.New(f.Columns()...)
	seen := map[string]bool{}
	cols := f.Columns()
	var kb strings.Builder
	for i := 0; i < f.NumRows(); i++ {
		row := f.Row(i)
		kb.Reset()
		vals := make([]any, 0, len(cols))
		for _, c := range cols {
			writeValKey(&kb, row[c])
			vals = append(vals, row[c])
		}
		if !seen[kb.String()] {
			seen[kb.String()] = true
			out.AppendRow(vals...)
		}
	}
	return out
}

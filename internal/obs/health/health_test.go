package health

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable clock for driving windows deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// near compares burn rates with a tolerance: the engine computes them in
// float64 ((bad/total)/(1-target)), so hand values like "exactly 1.0" land
// within an ulp or two of the ideal.
func near(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// counterSource is an atomic (total, bad) pair usable as a Source.
type counterSource struct{ total, bad atomic.Int64 }

func (c *counterSource) Source() Source {
	return func() (int64, int64) { return c.total.Load(), c.bad.Load() }
}

func (c *counterSource) Add(total, bad int64) {
	c.total.Add(total)
	c.bad.Add(bad)
}

// TestBurnRateWindowAlgebra drives an engine with a fake clock at a steady
// 10% bad ratio against a 0.9 target and checks every window's delta and
// burn rate against hand-computed values.
func TestBurnRateWindowAlgebra(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(Options{Now: clk.Now})
	var src counterSource
	if err := e.Register(Objective{Name: "availability", Target: 0.9}, src.Source(), "tenant", "acme"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// One tick per minute for 10 minutes; each minute sees 100 events, 10
	// of them bad. Target 0.9 → error budget 0.1 → a 10% bad ratio burns
	// at exactly 1.0.
	for i := 0; i < 10; i++ {
		clk.Advance(time.Minute)
		src.Add(100, 10)
		e.Tick()
	}

	states := e.Evaluate()
	if len(states) != 1 {
		t.Fatalf("Evaluate returned %d states, want 1", len(states))
	}
	st := states[0]
	if st.Labels != `{tenant="acme"}` {
		t.Fatalf("labels = %q", st.Labels)
	}
	// Windows ascend: 5m, 30m, 1h, 6h. The 5m window differences against
	// the sample at t-5m (total 500); the others fall back to the
	// registration baseline (total 0) because the ring is only 10m deep.
	want := []struct {
		window     time.Duration
		total, bad int64
		burn       float64
	}{
		{5 * time.Minute, 500, 50, 1.0},
		{30 * time.Minute, 1000, 100, 1.0},
		{time.Hour, 1000, 100, 1.0},
		{6 * time.Hour, 1000, 100, 1.0},
	}
	if len(st.Windows) != len(want) {
		t.Fatalf("got %d windows, want %d", len(st.Windows), len(want))
	}
	for i, w := range want {
		g := st.Windows[i]
		if g.Window != w.window || g.Total != w.total || g.Bad != w.bad || !near(g.Burn, w.burn) {
			t.Errorf("window %v: got {total %d bad %d burn %g}, want {total %d bad %d burn %g}",
				w.window, g.Total, g.Bad, g.Burn, w.total, w.bad, w.burn)
		}
	}

	// A clean 5 minutes drops the short window's burn to zero while the
	// long windows still remember the bad era.
	for i := 0; i < 5; i++ {
		clk.Advance(time.Minute)
		src.Add(100, 0)
		e.Tick()
	}
	st = e.Evaluate()[0]
	if got := st.Windows[0]; got.Total != 500 || got.Bad != 0 || got.Burn != 0 {
		t.Fatalf("5m window after recovery = %+v, want {500 0 0}", got)
	}
	if got := st.Windows[2]; got.Total != 1500 || got.Bad != 100 {
		t.Fatalf("1h window after recovery = %+v, want total 1500 bad 100", got)
	}
}

// TestSourceResetTreatsLiveReadingAsWindow checks the restart path: when
// cumulative counters go backwards, the window falls back to the live
// reading instead of reporting negative deltas.
func TestSourceResetTreatsLiveReadingAsWindow(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(Options{Now: clk.Now})
	var total, bad atomic.Int64
	_ = e.Register(Objective{Name: "availability", Target: 0.99},
		func() (int64, int64) { return total.Load(), bad.Load() })
	total.Store(1000)
	bad.Store(10)
	clk.Advance(time.Minute)
	e.Tick()
	// Restart: counters reset below the retained baseline.
	total.Store(50)
	bad.Store(5)
	clk.Advance(time.Minute)
	st := e.Evaluate()[0]
	for _, w := range st.Windows {
		if w.Total != 50 || w.Bad != 5 {
			t.Fatalf("window %v after reset = {total %d bad %d}, want live reading {50 5}", w.Window, w.Total, w.Bad)
		}
	}
}

// TestAlertHysteresis walks the page alert through fire → hold → clear:
// it fires only when both windows breach, keeps firing inside the
// hysteresis band, and clears once the short window drops below
// ClearRatio × threshold.
func TestAlertHysteresis(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(Options{
		Windows: Windows{
			PageShort: time.Minute, PageLong: 5 * time.Minute,
			TicketShort: 2 * time.Minute, TicketLong: 10 * time.Minute,
			PageBurn: 10, TicketBurn: 6, ClearRatio: 0.9,
		},
		Now: clk.Now,
	})
	var src counterSource
	// Target 0.9 → burn 10 means 100% bad.
	_ = e.Register(Objective{Name: "availability", Target: 0.9}, src.Source())

	step := func(total, bad int64) {
		clk.Advance(10 * time.Second)
		src.Add(total, bad)
		e.Tick()
	}

	// Phase 1 — total outage for 2 minutes: burn 10 on both windows.
	for i := 0; i < 12; i++ {
		step(10, 10)
	}
	if st := e.Evaluate()[0]; !st.PageFiring {
		t.Fatalf("page alert did not fire during outage: %+v", st.Windows)
	}

	// Phase 2 — 90% bad for 2 minutes: short-window burn 9, exactly the
	// hysteresis band's floor (0.9 × 10). A firing alert must hold.
	for i := 0; i < 12; i++ {
		step(10, 9)
	}
	if st := e.Evaluate()[0]; !st.PageFiring {
		t.Fatalf("page alert cleared inside the hysteresis band (burn 9 vs clear < 9)")
	}

	// Phase 3 — recovery: the short window drains to burn 0 and the alert
	// clears, even though the 5m long window still covers the outage.
	for i := 0; i < 12; i++ {
		step(10, 0)
	}
	st := e.Evaluate()[0]
	if st.PageFiring {
		t.Fatalf("page alert failed to clear after recovery: %+v", st.Windows)
	}
	if st.Windows[2].Burn < 1 { // 5m long window still sees the bad era
		t.Fatalf("long window burn = %g, expected residual burn from the outage", st.Windows[2].Burn)
	}

	// Phase 4 — the alert must not re-fire from the long window alone
	// (short window is clean).
	if st := e.Evaluate()[0]; st.PageFiring {
		t.Fatalf("page alert re-fired without a short-window breach")
	}
}

// TestWindowStateMergeAssociativity checks the shard-merge algebra:
// counters add, the burn is recomputed, and any merge tree over the same
// states yields identical results.
func TestWindowStateMergeAssociativity(t *testing.T) {
	const target = 0.99
	states := []WindowState{
		{Window: time.Minute, Total: 100, Bad: 3},
		{Window: time.Minute, Total: 50, Bad: 0},
		{Window: time.Minute, Total: 900, Bad: 41},
		{Window: time.Minute, Total: 1, Bad: 1},
	}
	for i := range states {
		states[i].Burn = burnRate(states[i].Total, states[i].Bad, target)
	}
	a, b, c, d := states[0], states[1], states[2], states[3]

	left := a.Merge(b, target).Merge(c, target).Merge(d, target)
	right := a.Merge(b.Merge(c.Merge(d, target), target), target)
	if left != right {
		t.Fatalf("merge not associative: %+v vs %+v", left, right)
	}
	if got := b.Merge(a, target); got != a.Merge(b, target) {
		t.Fatalf("merge not commutative: %+v vs %+v", got, a.Merge(b, target))
	}
	if left.Total != 1051 || left.Bad != 45 {
		t.Fatalf("merged counters = {%d %d}, want {1051 45}", left.Total, left.Bad)
	}
	wantBurn := burnRate(1051, 45, target)
	if left.Burn != wantBurn {
		t.Fatalf("merged burn = %g, want %g", left.Burn, wantBurn)
	}
}

// TestEngineConcurrency exercises Register/Tick/Evaluate/WritePrometheus
// from concurrent goroutines; the -race CI pass is the assertion.
func TestEngineConcurrency(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(Options{Now: clk.Now})
	var src counterSource
	_ = e.Register(Objective{Name: "availability", Target: 0.999}, src.Source())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch g {
				case 0:
					clk.Advance(time.Second)
					src.Add(10, 1)
					e.Tick()
				case 1:
					_ = e.Evaluate()
				case 2:
					e.WritePrometheus(&strings.Builder{})
				default:
					_ = e.Register(Objective{Name: "latency", Target: 0.99, Kind: Latency,
						ThresholdNS: int64(250 * time.Millisecond)}, src.Source(), "tenant", "t")
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWritePrometheusDeterministic pins the exposition format: families in
// fixed order, series sorted by registration key, and stable label
// rendering.
func TestWritePrometheusDeterministic(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(Options{Now: clk.Now})
	var a, b counterSource
	_ = e.Register(Objective{Name: "availability", Target: 0.999}, a.Source(), "backend", "sql")
	_ = e.Register(Objective{Name: "latency", Kind: Latency, Target: 0.99,
		ThresholdNS: int64(250 * time.Millisecond)}, b.Source(), "tenant", "acme")
	a.Add(1000, 2)
	b.Add(500, 20)
	clk.Advance(time.Minute)
	e.Tick()

	var sb1, sb2 strings.Builder
	e.WritePrometheus(&sb1)
	e.WritePrometheus(&sb2)
	if sb1.String() != sb2.String() {
		t.Fatalf("two renders differ:\n%s\n---\n%s", sb1.String(), sb2.String())
	}
	out := sb1.String()
	for _, want := range []string{
		"# TYPE netqueryd_slo_target gauge\n",
		`netqueryd_slo_target{slo="availability",backend="sql"} 0.999` + "\n",
		`netqueryd_slo_target{slo="latency",tenant="acme"} 0.99` + "\n",
		`netqueryd_slo_burn_rate{slo="availability",backend="sql",window="5m0s"} ` +
			formatFloat(burnRate(1000, 2, 0.999)) + "\n",
		`netqueryd_slo_alert{slo="availability",backend="sql",severity="page"} 0` + "\n",
		`netqueryd_slo_window_bad{slo="latency",tenant="acme",window="6h0m0s"} 20` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
}

// TestRegisterValidation rejects out-of-range targets and nil sources, and
// keeps the first registration for a duplicate key.
func TestRegisterValidation(t *testing.T) {
	e := NewEngine(Options{Now: newFakeClock().Now})
	var src counterSource
	if err := e.Register(Objective{Name: "x", Target: 1.0}, src.Source()); err == nil {
		t.Fatalf("Register accepted target 1.0")
	}
	if err := e.Register(Objective{Name: "x", Target: 0}, src.Source()); err == nil {
		t.Fatalf("Register accepted target 0")
	}
	if err := e.Register(Objective{Name: "x", Target: 0.9}, nil); err == nil {
		t.Fatalf("Register accepted nil source")
	}
	if err := e.Register(Objective{Name: "x", Target: 0.9}, src.Source()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register(Objective{Name: "x", Target: 0.5}, src.Source()); err != nil {
		t.Fatalf("duplicate Register: %v", err)
	}
	if got := e.Evaluate()[0].Objective.Target; got != 0.9 {
		t.Fatalf("duplicate registration replaced the objective (target %g)", got)
	}
}

// Package health turns the raw telemetry in internal/obs into actionable
// per-tenant and per-backend health signals: declarative service-level
// objectives (SLOs) evaluated over sliding windows, with multi-window
// error-budget burn rates and hysteresis-stabilized alerts in the style of
// the Google SRE workbook's multiwindow, multi-burn-rate alerting.
//
// An Objective declares a good-event ratio goal: availability ("99.9% of
// completed requests succeed") or latency ("99% of requests finish under
// 250ms"). Both reduce to the same arithmetic — a target fraction of good
// events, an error budget of 1-target, and a burn rate of
// (observed bad ratio) / (error budget) over a window: burn 1.0 spends the
// budget exactly at the rate the objective tolerates; burn 14.4 over an
// hour spends ~2% of a 30-day budget in that hour.
//
// The Engine does not observe events itself. Each registered series reads
// cumulative (total, bad) tallies from a Source closure — typically backed
// by the existing mergeable obs counters and histograms (total = histogram
// count, bad = CountAbove(threshold) for latency objectives) — and the
// engine derives sliding windows by remembering (time, total, bad) samples
// at each Tick and differencing against them. The window state is plain
// monotone-counter algebra, so WindowState merges associatively across
// processes the same way obs.HistSnapshot does: sum totals, sum bads,
// recompute the ratio.
//
// Alerting follows the fast/slow pair convention: a page alert fires when
// the burn rate exceeds PageBurn over BOTH the 1h long window and the 5m
// short window (the long window gives significance, the short window makes
// the alert reset quickly after recovery); a ticket alert does the same at
// TicketBurn over 6h/30m. Hysteresis keeps a firing alert from flapping:
// once firing, it stays until the short-window burn drops below
// ClearRatio x the firing threshold.
package health

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind is the objective family.
type Kind int

const (
	// Availability counts failed requests as bad events.
	Availability Kind = iota
	// Latency counts requests slower than Objective.ThresholdNS as bad.
	Latency
)

// String names the kind for rendering ("availability", "latency").
func (k Kind) String() string {
	if k == Latency {
		return "latency"
	}
	return "availability"
}

// Objective declares one SLO: a target fraction of good events, and for
// latency objectives the threshold separating good from bad.
type Objective struct {
	// Name labels the objective in /sloz output ("availability",
	// "latency"); with Labels it must uniquely identify the series.
	Name string
	// Kind selects the family (documentation only — the engine's math is
	// identical; the Source closure encodes what "bad" means).
	Kind Kind
	// Target is the good-event ratio goal in (0, 1), e.g. 0.999. The error
	// budget is 1 - Target.
	Target float64
	// ThresholdNS is the latency threshold for Latency objectives (ignored
	// for Availability; carried so /sloz can render it).
	ThresholdNS int64
}

// Source reports one series' cumulative event tallies: total completed
// events and the bad subset. Both must be monotone non-decreasing; the
// engine differences consecutive readings, so an absolute baseline shift
// (process restart) resets the windows rather than corrupting them.
type Source func() (total, bad int64)

// Windows is the fast/slow multi-window layout. The zero value selects the
// SRE-workbook defaults: page on 5m+1h at burn 14.4, ticket on 30m+6h at
// burn 6.
type Windows struct {
	PageShort, PageLong     time.Duration // default 5m, 1h
	TicketShort, TicketLong time.Duration // default 30m, 6h
	PageBurn, TicketBurn    float64       // default 14.4, 6
	// ClearRatio is the hysteresis factor in (0, 1]: a firing alert clears
	// only once the short-window burn drops below ClearRatio x the firing
	// threshold (default 0.9 — a 10% guard band against flapping).
	ClearRatio float64
}

func (w *Windows) defaults() {
	if w.PageShort <= 0 {
		w.PageShort = 5 * time.Minute
	}
	if w.PageLong <= 0 {
		w.PageLong = time.Hour
	}
	if w.TicketShort <= 0 {
		w.TicketShort = 30 * time.Minute
	}
	if w.TicketLong <= 0 {
		w.TicketLong = 6 * time.Hour
	}
	if w.PageBurn <= 0 {
		w.PageBurn = 14.4
	}
	if w.TicketBurn <= 0 {
		w.TicketBurn = 6
	}
	if w.ClearRatio <= 0 || w.ClearRatio > 1 {
		w.ClearRatio = 0.9
	}
}

// Options configures an Engine.
type Options struct {
	Windows Windows
	// Now is the clock hook (default time.Now); tests drive windows with a
	// fake clock.
	Now func() time.Time
}

// sample is one retained cumulative reading.
type sample struct {
	t          time.Time
	total, bad int64
}

// series is one registered objective instance.
type series struct {
	obj    Objective
	labels string // canonical rendered {k="v",...} block ("" when none)
	src    Source

	ring []sample // ascending by time, pruned past the longest window

	pageFiring   bool
	ticketFiring bool
}

// maxRing bounds each series' sample ring; past it the oldest samples are
// dropped even inside the longest window (the windows then under-reach,
// they never corrupt).
const maxRing = 4096

// Engine evaluates registered SLO series. All methods are safe for
// concurrent use.
type Engine struct {
	win Windows
	now func() time.Time

	mu     sync.Mutex
	series map[string]*series
	keys   []string // sorted registration keys for deterministic output
}

// NewEngine builds an engine with the given options.
func NewEngine(opts Options) *Engine {
	opts.Windows.defaults()
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Engine{win: opts.Windows, now: opts.Now, series: map[string]*series{}}
}

// canonLabels renders alternating key/value pairs sorted by key, matching
// the obs registry's label canonicalization.
func canonLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("health: odd label key/value count")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(p.v))
	}
	sb.WriteByte('}')
	return sb.String()
}

// Register adds one SLO series reading from src, labelled by alternating
// key/value pairs (tenant, backend). Registering the same
// (objective name, labels) twice keeps the first registration. The
// registration time's reading becomes the window baseline.
func (e *Engine) Register(obj Objective, src Source, labels ...string) error {
	if obj.Target <= 0 || obj.Target >= 1 {
		return fmt.Errorf("health: objective %q target must be in (0, 1), got %g", obj.Name, obj.Target)
	}
	if src == nil {
		return fmt.Errorf("health: objective %q has no source", obj.Name)
	}
	lbl := canonLabels(labels)
	key := obj.Name + lbl
	total, bad := src()
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.series[key]; ok {
		return nil
	}
	e.series[key] = &series{
		obj:    obj,
		labels: lbl,
		src:    src,
		ring:   []sample{{t: e.now(), total: total, bad: bad}},
	}
	e.keys = append(e.keys, key)
	sort.Strings(e.keys)
	return nil
}

// Tick samples every series' cumulative tallies at the current clock
// reading and prunes samples older than the longest window. Call it on a
// fixed cadence (netqueryd's -slo-tick loop); window resolution is the
// tick interval.
func (e *Engine) Tick() {
	now := e.now()
	horizon := now.Add(-e.win.TicketLong - time.Minute)
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, key := range e.keys {
		s := e.series[key]
		total, bad := s.src()
		s.ring = append(s.ring, sample{t: now, total: total, bad: bad})
		// Prune: keep the newest sample at or before the horizon so the
		// longest window always has a baseline to difference against.
		cut := 0
		for cut+1 < len(s.ring) && !s.ring[cut+1].t.After(horizon) {
			cut++
		}
		if over := len(s.ring) - maxRing; over > cut {
			cut = over
		}
		if cut > 0 {
			s.ring = append(s.ring[:0], s.ring[cut:]...)
		}
	}
}

// WindowState is the event algebra of one objective over one window:
// monotone counter deltas plus the derived burn rate. States over the same
// window from different shards merge associatively (sum the counters,
// recompute the ratios).
type WindowState struct {
	Window time.Duration `json:"window"`
	Total  int64         `json:"total"`
	Bad    int64         `json:"bad"`
	// Burn is (Bad/Total) / (1 - target); 0 when the window saw no events.
	Burn float64 `json:"burn"`
}

// Merge combines two window states over the same window and target:
// counters add, the burn rate is recomputed from the merged counters.
// Associative and commutative by construction.
func (w WindowState) Merge(o WindowState, target float64) WindowState {
	out := WindowState{Window: w.Window, Total: w.Total + o.Total, Bad: w.Bad + o.Bad}
	out.Burn = burnRate(out.Total, out.Bad, target)
	return out
}

// burnRate computes the error-budget burn rate of bad/total events against
// a good-ratio target.
func burnRate(total, bad int64, target float64) float64 {
	if total <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}

// State is one series' full evaluation: the four windows (page short/long,
// ticket short/long, ascending) and the two alert verdicts.
type State struct {
	Objective Objective     `json:"objective"`
	Labels    string        `json:"labels,omitempty"` // canonical {k="v",...}
	Windows   []WindowState `json:"windows"`          // sorted ascending by duration
	// PageFiring: burn exceeded PageBurn on both the page windows and has
	// not yet cleared below the hysteresis band. TicketFiring: same for
	// the ticket pair.
	PageFiring   bool `json:"page_firing"`
	TicketFiring bool `json:"ticket_firing"`
}

// windowDelta differences the live reading against the newest retained
// sample at or before now-window (falling back to the oldest sample when
// the ring does not yet reach that far — a window still filling up).
func windowDelta(ring []sample, now time.Time, window time.Duration, total, bad int64) WindowState {
	cutoff := now.Add(-window)
	base := ring[0]
	for _, s := range ring[1:] {
		if s.t.After(cutoff) {
			break
		}
		base = s
	}
	dt, db := total-base.total, bad-base.bad
	if dt < 0 || db < 0 { // source reset (restart): treat the live reading as the window
		dt, db = total, bad
	}
	return WindowState{Window: window, Total: dt, Bad: db}
}

// Evaluate computes every series' window states and updates alert state,
// using the live source readings as the window endpoints — a scrape
// between ticks sees current data, not tick-old data. Results are sorted
// by (objective name, labels).
func (e *Engine) Evaluate() []State {
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]State, 0, len(e.keys))
	for _, key := range e.keys {
		s := e.series[key]
		total, bad := s.src()
		windows := []time.Duration{e.win.PageShort, e.win.TicketShort, e.win.PageLong, e.win.TicketLong}
		ws := make([]WindowState, len(windows))
		byWin := map[time.Duration]*WindowState{}
		for i, w := range windows {
			ws[i] = windowDelta(s.ring, now, w, total, bad)
			ws[i].Burn = burnRate(ws[i].Total, ws[i].Bad, s.obj.Target)
			byWin[w] = &ws[i]
		}
		s.pageFiring = alertStep(s.pageFiring, byWin[e.win.PageShort].Burn, byWin[e.win.PageLong].Burn,
			e.win.PageBurn, e.win.ClearRatio)
		s.ticketFiring = alertStep(s.ticketFiring, byWin[e.win.TicketShort].Burn, byWin[e.win.TicketLong].Burn,
			e.win.TicketBurn, e.win.ClearRatio)
		out = append(out, State{
			Objective:    s.obj,
			Labels:       s.labels,
			Windows:      ws,
			PageFiring:   s.pageFiring,
			TicketFiring: s.ticketFiring,
		})
	}
	return out
}

// alertStep advances one alert's state machine: fire when both windows
// exceed the threshold; once firing, stay until the short window drops
// below clearRatio x threshold (the long window is deliberately ignored
// for clearing — it can stay elevated for hours after recovery, which is
// exactly the flappiness the short window exists to absorb).
func alertStep(firing bool, short, long, threshold, clearRatio float64) bool {
	if firing {
		return short >= threshold*clearRatio
	}
	return short >= threshold && long >= threshold
}

// WritePrometheus renders every series' evaluation in deterministic
// Prometheus text: burn-rate gauges per window, window event counters, the
// objective target, and 0/1 alert gauges. Families are emitted in fixed
// order; series within a family follow registration-key order.
func (e *Engine) WritePrometheus(w io.Writer) {
	states := e.Evaluate()
	withWin := func(labels string, win time.Duration) string {
		inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		if inner == "" {
			return `{window="` + win.String() + `"}`
		}
		return "{" + inner + `,window="` + win.String() + `"}`
	}
	sloLabels := func(st State) string {
		inner := strings.TrimSuffix(strings.TrimPrefix(st.Labels, "{"), "}")
		slo := `slo=` + strconv.Quote(st.Objective.Name)
		if inner == "" {
			return "{" + slo + "}"
		}
		return "{" + slo + "," + inner + "}"
	}
	fmt.Fprintf(w, "# TYPE netqueryd_slo_target gauge\n")
	for _, st := range states {
		fmt.Fprintf(w, "netqueryd_slo_target%s %s\n", sloLabels(st), formatFloat(st.Objective.Target))
	}
	fmt.Fprintf(w, "# TYPE netqueryd_slo_window_total counter\n")
	for _, st := range states {
		for _, ws := range st.Windows {
			fmt.Fprintf(w, "netqueryd_slo_window_total%s %d\n",
				mergeLabels(sloLabels(st), withWin("", ws.Window)), ws.Total)
		}
	}
	fmt.Fprintf(w, "# TYPE netqueryd_slo_window_bad counter\n")
	for _, st := range states {
		for _, ws := range st.Windows {
			fmt.Fprintf(w, "netqueryd_slo_window_bad%s %d\n",
				mergeLabels(sloLabels(st), withWin("", ws.Window)), ws.Bad)
		}
	}
	fmt.Fprintf(w, "# TYPE netqueryd_slo_burn_rate gauge\n")
	for _, st := range states {
		for _, ws := range st.Windows {
			fmt.Fprintf(w, "netqueryd_slo_burn_rate%s %s\n",
				mergeLabels(sloLabels(st), withWin("", ws.Window)), formatFloat(ws.Burn))
		}
	}
	fmt.Fprintf(w, "# TYPE netqueryd_slo_alert gauge\n")
	for _, st := range states {
		fmt.Fprintf(w, "netqueryd_slo_alert%s %d\n",
			mergeLabels(sloLabels(st), `{severity="page"}`), b2i(st.PageFiring))
		fmt.Fprintf(w, "netqueryd_slo_alert%s %d\n",
			mergeLabels(sloLabels(st), `{severity="ticket"}`), b2i(st.TicketFiring))
	}
}

// mergeLabels concatenates two rendered {k="v"} blocks (either may be "").
func mergeLabels(a, b string) string {
	ai := strings.TrimSuffix(strings.TrimPrefix(a, "{"), "}")
	bi := strings.TrimSuffix(strings.TrimPrefix(b, "{"), "}")
	switch {
	case ai == "" && bi == "":
		return ""
	case ai == "":
		return "{" + bi + "}"
	case bi == "":
		return "{" + ai + "}"
	}
	return "{" + ai + "," + bi + "}"
}

// formatFloat renders a float deterministically (shortest round-trip form,
// matching strconv's 'g' for the magnitudes burn rates take).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

package obs

import (
	"strings"
	"testing"
)

func TestFlightRecorderRingBounds(t *testing.T) {
	r := NewFlightRecorder(4, 0)
	for i := 0; i < 6; i++ {
		r.Record(FlightRecord{Tenant: "acme", Class: "slow", TotalNS: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	recs := r.Snapshot(nil)
	if len(recs) != 4 {
		t.Fatalf("Snapshot returned %d records, want 4", len(recs))
	}
	// Oldest first, and the recorder assigned monotone sequence numbers;
	// the first two records (seq 1, 2) were evicted.
	for i, rec := range recs {
		if want := int64(i + 3); rec.Seq != want {
			t.Errorf("record %d: seq = %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestFlightFilter(t *testing.T) {
	r := NewFlightRecorder(16, 0)
	r.Record(FlightRecord{Tenant: "acme", Backend: "sql", Class: "slow", TotalNS: 100})
	r.Record(FlightRecord{Tenant: "acme", Backend: "federated", Class: "timeout", TotalNS: 900})
	r.Record(FlightRecord{Tenant: "beta", Backend: "sql", Class: "slow", TotalNS: 50})

	if got := len(r.Snapshot(&FlightFilter{Tenant: "acme"})); got != 2 {
		t.Fatalf("tenant filter matched %d, want 2", got)
	}
	if got := len(r.Snapshot(&FlightFilter{Backend: "sql"})); got != 2 {
		t.Fatalf("backend filter matched %d, want 2", got)
	}
	if got := len(r.Snapshot(&FlightFilter{Class: "timeout"})); got != 1 {
		t.Fatalf("class filter matched %d, want 1", got)
	}
	if got := len(r.Snapshot(&FlightFilter{MinNS: 100})); got != 2 {
		t.Fatalf("min-duration filter matched %d, want 2", got)
	}
	if got := len(r.Snapshot(&FlightFilter{Tenant: "beta", Class: "timeout"})); got != 0 {
		t.Fatalf("conjunctive filter matched %d, want 0", got)
	}
}

func TestFlightSampling(t *testing.T) {
	r := NewFlightRecorder(16, 4)
	admitted := 0
	for i := 0; i < 16; i++ {
		if r.Admit() {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("sampleEvery=4 admitted %d of 16, want 4", admitted)
	}
	off := NewFlightRecorder(16, 0)
	for i := 0; i < 16; i++ {
		if off.Admit() {
			t.Fatalf("sampleEvery=0 admitted a request")
		}
	}
	var nilRec *FlightRecorder
	if nilRec.Admit() {
		t.Fatalf("nil recorder admitted a request")
	}
	nilRec.Record(FlightRecord{}) // must not panic
	if nilRec.Snapshot(nil) != nil || nilRec.Len() != 0 {
		t.Fatalf("nil recorder returned records")
	}
}

// TestFlightHotPathNoAlloc pins the satellite requirement: neither the
// sampled-out Admit nor a Record of a notable request allocates.
func TestFlightHotPathNoAlloc(t *testing.T) {
	r := NewFlightRecorder(64, 1<<30) // sampleEvery huge: Admit stays false
	rec := FlightRecord{Tenant: "acme", Backend: "sql", Class: "slow",
		ProgramHash: "deadbeef", TraceID: "acme-1", TotalNS: 123}
	if n := testing.AllocsPerRun(100, func() {
		if r.Admit() {
			t.Fatal("unexpected admit")
		}
	}); n != 0 {
		t.Fatalf("Admit allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { r.Record(rec) }); n != 0 {
		t.Fatalf("Record allocates %v/op, want 0", n)
	}
}

func TestWriteFlightText(t *testing.T) {
	var sb strings.Builder
	WriteFlightText(&sb, []FlightRecord{
		{Seq: 7, StartUnixNS: 42, Tenant: "acme", Backend: "federated",
			ProgramHash: "00ff", PlanFP: "aa11", TraceID: "acme-3",
			Class: "slow", Result: "ok", QueueNS: 10, ExecNS: 90, TotalNS: 100},
		{Seq: 8, StartUnixNS: 43, Tenant: "beta", Class: "shed", Result: "shed"},
	})
	want := "seq=7 start_ns=42 tenant=acme backend=federated class=slow result=ok" +
		" program=00ff plan=aa11 trace=acme-3 queue_ns=10 exec_ns=90 total_ns=100\n" +
		"seq=8 start_ns=43 tenant=beta backend= class=shed result=shed queue_ns=0 exec_ns=0 total_ns=0\n"
	if sb.String() != want {
		t.Fatalf("text output:\n%q\nwant:\n%q", sb.String(), want)
	}
}

package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRegistryInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "tenant", "acme")
	b := r.Counter("requests_total", "tenant", "acme")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if r.Counter("requests_total", "tenant", "beta") == a {
		t.Fatal("different labels returned the same counter")
	}
	a.Add(3)
	if b.Load() != 3 {
		t.Fatalf("shared counter = %d, want 3", b.Load())
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "b", "2", "a", "1")
	b := r.Counter("x_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `x_total{a="1",b="2"} 1`) {
		t.Fatalf("labels not rendered sorted:\n%s", sb.String())
	}
}

func TestRegistryWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "tenant", "acme").Add(5)
	r.Gauge("inflight").Set(2)
	h := r.Histogram("latency_ns", "tenant", "acme")
	h.Observe(7)
	h.Observe(7)
	h.Observe(100)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE inflight gauge\n",
		"inflight 2\n",
		"# TYPE latency_ns histogram\n",
		`latency_ns_bucket{tenant="acme",le="7"} 2` + "\n",
		`latency_ns_bucket{tenant="acme",le="+Inf"} 3` + "\n",
		`latency_ns_sum{tenant="acme"} 114` + "\n",
		`latency_ns_count{tenant="acme"} 3` + "\n",
		"# TYPE req_total counter\n",
		`req_total{tenant="acme"} 5` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The 100 observation lands in a log bucket: its cumulative line must
	// include the two 7s.
	idx := bucketIndex(100)
	_, hi := bucketBounds(idx)
	if !strings.Contains(out, `latency_ns_bucket{tenant="acme",le="`+strconv.FormatInt(hi, 10)+`"} 3`) {
		t.Fatalf("cumulative bucket for 100 missing:\n%s", out)
	}
	// Rendering is deterministic.
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Fatal("two renders differ")
	}
}

func TestRegistryConcurrentLookup(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "k", "v").Inc()
				r.Histogram("h_ns").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "k", "v").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_ns").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting kind did not panic")
		}
	}()
	r.Gauge("dual")
}

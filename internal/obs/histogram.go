package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-linear histogram of non-negative int64
// observations (latencies in nanoseconds, batch sizes, row counts). Values
// below 2^subBits land in exact unit buckets; above that each power of two
// is split into 2^subBits sub-buckets, so the bucket width is always at
// most 1/2^subBits of the bucket's lower bound. With subBits = 5 a
// quantile estimated from a bucket midpoint is within ~1.6% of the true
// sample (bounded by 1/32), while count, sum, min and max are exact.
//
// All methods are safe for concurrent use. Snapshots taken from different
// histograms (or shards of one logical histogram) merge associatively,
// which is what lets the load generator and sharded sweeps aggregate
// without a coordination point.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits // sub-buckets per power of two
	// The largest index is reached at v = math.MaxInt64 (bit length 63):
	// exp = 63-1-subBits, idx = (exp+1)*histSub + histSub - 1.
	histBuckets = (63-histSubBits)*histSub + histSub
)

// Histogram accumulates observations. The zero value is NOT ready for use;
// call NewHistogram (min tracking needs a sentinel).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // math.MaxInt64 until the first observation
	max    atomic.Int64 // -1 until the first observation

	// ex holds per-bucket exemplars (most recent trace ID landing in each
	// bucket), allocated lazily on the first ObserveExemplar so histograms
	// that never see a traced request pay nothing for the feature.
	ex atomic.Pointer[exemplarStore]
}

// Exemplar links one histogram bucket to the most recent traced
// observation that landed in it, so a /metricsz consumer can jump from a
// suspicious bucket straight to /tracez or /flightz evidence.
type Exemplar struct {
	Value   int64  `json:"value"`
	TraceID string `json:"trace_id"`
}

type exemplarStore [histBuckets]atomic.Pointer[Exemplar]

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(-1)
	return h
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := uint(bits.Len64(uint64(v))) - 1 - histSubBits
	return (int(exp)+1)*histSub + int(v>>exp) - histSub
}

// bucketBounds returns the inclusive [lo, hi] value range of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histSub {
		return int64(idx), int64(idx)
	}
	exp := uint(idx/histSub - 1)
	m := int64(idx%histSub + histSub)
	lo = m << exp
	hi = (m+1)<<exp - 1
	return lo, hi
}

// Observe records one value. Negative values are clamped to zero (they can
// only arise from clock steps backwards mid-measurement).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveExemplar records one value and, when traceID is non-empty, makes
// it the value's bucket exemplar. The untraced path (traceID == "") is
// exactly Observe; the traced path allocates one small Exemplar — traced
// requests are sampled, so this never touches the common case.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	store := h.ex.Load()
	if store == nil {
		fresh := new(exemplarStore)
		if h.ex.CompareAndSwap(nil, fresh) {
			store = fresh
		} else {
			store = h.ex.Load()
		}
	}
	store[bucketIndex(v)].Store(&Exemplar{Value: v, TraceID: traceID})
}

// Count returns the live observation count (no snapshot allocation).
func (h *Histogram) Count() int64 { return h.count.Load() }

// CountAbove returns, from the live buckets, how many observations fell in
// buckets entirely above v — the allocation-free counterpart of
// HistSnapshot.CountAbove, used by sliding-window SLO sources that read
// cumulative tallies on every tick.
func (h *Histogram) CountAbove(v int64) int64 {
	var n int64
	for i := histBuckets - 1; i >= 0; i-- {
		lo, _ := bucketBounds(i)
		if lo <= v {
			break
		}
		n += h.counts[i].Load()
	}
	return n
}

// Snapshot returns a point-in-time copy. Concurrent Observes may tear
// between buckets and the aggregate fields; each field is individually
// consistent, which is all quantile estimation needs.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		min:   h.min.Load(),
		max:   h.max.Load(),
	}
	s.Counts = make([]int64, histBuckets)
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if store := h.ex.Load(); store != nil {
		s.Exemplars = make([]*Exemplar, histBuckets)
		for i := range store {
			s.Exemplars[i] = store[i].Load()
		}
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram. Merge combines
// snapshots associatively; Quantile answers nearest-rank quantile queries
// from bucket midpoints clamped to the observed [Min, Max].
type HistSnapshot struct {
	Counts []int64
	Count  int64
	Sum    int64
	min    int64 // math.MaxInt64 when empty
	max    int64 // -1 when empty

	// Exemplars holds the per-bucket exemplar pointers (nil when the
	// histogram never saw a traced observation). Unlike the counters,
	// exemplars are evidence links, not measurements: Merge keeps one of
	// the two sides' exemplars per bucket on a most-recent-wins heuristic.
	Exemplars []*Exemplar
}

// Min returns the smallest observed value, 0 when empty.
func (s *HistSnapshot) Min() int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observed value, 0 when empty.
func (s *HistSnapshot) Max() int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return s.max
}

// Merge returns a new snapshot combining s and o. Either side may be nil.
// Merge is associative and commutative: bucket counts and sums add, min
// and max take the extremes, so any merge tree over the same shards yields
// the same result.
func (s *HistSnapshot) Merge(o *HistSnapshot) *HistSnapshot {
	out := &HistSnapshot{
		Counts: make([]int64, histBuckets),
		min:    math.MaxInt64,
		max:    -1,
	}
	for _, src := range []*HistSnapshot{s, o} {
		if src == nil {
			continue
		}
		for i, c := range src.Counts {
			out.Counts[i] += c
		}
		out.Count += src.Count
		out.Sum += src.Sum
		if src.Count > 0 {
			if src.min < out.min {
				out.min = src.min
			}
			if src.max > out.max {
				out.max = src.max
			}
		}
		if src.Exemplars != nil {
			if out.Exemplars == nil {
				out.Exemplars = make([]*Exemplar, histBuckets)
			}
			// Later argument wins per bucket: o's exemplars overwrite s's.
			for i, e := range src.Exemplars {
				if e != nil {
					out.Exemplars[i] = e
				}
			}
		}
	}
	return out
}

// Quantile returns the nearest-rank q-quantile (q in [0, 1]). The estimate
// is the midpoint of the bucket holding the ranked sample, clamped to the
// observed min/max, so the relative error is bounded by the bucket width:
// at most 1/2^subBits (~3.1%), half that in expectation. Returns 0 when
// the snapshot is empty.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank >= s.Count {
		return s.max // the top-ranked sample is tracked exactly
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			lo, hi := bucketBounds(i)
			v := lo + (hi-lo)/2
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max // unreachable unless counts tore below Count
}

// CountAbove returns how many observations fell in buckets whose entire
// range is above v. For values below 2^subBits (unit buckets) this is the
// exact count of observations strictly greater than v.
func (s *HistSnapshot) CountAbove(v int64) int64 {
	if s == nil {
		return 0
	}
	var n int64
	for i := len(s.Counts) - 1; i >= 0; i-- {
		lo, _ := bucketBounds(i)
		if lo <= v {
			break
		}
		n += s.Counts[i]
	}
	return n
}

package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Trace collects the spans of one request. Traces are sampled: when a
// request is not traced there is no Trace in its context, every helper
// returns a nil *Span, and all Span methods no-op on nil receivers — the
// disabled path costs one context lookup at span boundaries and nothing
// per operation, which is what keeps BenchmarkObsOverhead/disabled flat.
type Trace struct {
	ID     string
	nextID atomic.Int64

	mu    sync.Mutex
	spans []*Span
}

// NewTrace returns an empty trace with the given ID (the service derives
// IDs from a per-process counter; obs imposes no format).
func NewTrace(id string) *Trace { return &Trace{ID: id} }

// Tag is one key/value annotation on a span.
type Tag struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a trace. Wall time is measured from
// StartSpan to End; own time is wall minus the wall time of direct
// children, attributed when each child ends.
type Span struct {
	tr      *Trace
	parent  *Span
	id      int64
	pid     int64
	name    string
	start   time.Time
	wall    atomic.Int64 // ns, set at End
	childNS atomic.Int64
	ended   atomic.Bool

	tagMu sync.Mutex
	tags  []Tag
}

func (t *Trace) newSpan(name string, parent *Span) *Span {
	s := &Span{tr: t, parent: parent, id: t.nextID.Add(1), name: name, start: time.Now()}
	if parent != nil {
		s.pid = parent.id
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// StartSpan starts a root-level span on the trace. Nil-safe.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, nil)
}

// Child starts a span under s. Nil-safe: a nil parent yields a nil child.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s)
}

// Tag attaches a string annotation. Nil-safe.
func (s *Span) Tag(key, value string) {
	if s == nil {
		return
	}
	s.tagMu.Lock()
	s.tags = append(s.tags, Tag{key, value})
	s.tagMu.Unlock()
}

// TagInt attaches an integer annotation. Nil-safe.
func (s *Span) TagInt(key string, value int64) {
	s.Tag(key, strconv.FormatInt(value, 10))
}

// End closes the span, fixing its wall time and attributing it to the
// parent's child-time. Repeat Ends are ignored. Nil-safe.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	wall := time.Since(s.start).Nanoseconds()
	s.wall.Store(wall)
	if s.parent != nil {
		s.parent.childNS.Add(wall)
	}
}

// SpanStat is the immutable snapshot of one span.
type SpanStat struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent"` // 0 for root spans
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
	OwnNS  int64  `json:"own_ns"`
	Tags   []Tag  `json:"tags,omitempty"`
}

// Snapshot returns the spans recorded so far, in start order. Spans still
// open report wall time elapsed so far. Nil-safe.
func (t *Trace) Snapshot() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	out := make([]SpanStat, 0, len(spans))
	for _, s := range spans {
		wall := s.wall.Load()
		if !s.ended.Load() {
			wall = time.Since(s.start).Nanoseconds()
		}
		own := wall - s.childNS.Load()
		if own < 0 {
			own = 0
		}
		s.tagMu.Lock()
		tags := append([]Tag(nil), s.tags...)
		s.tagMu.Unlock()
		out = append(out, SpanStat{ID: s.id, Parent: s.pid, Name: s.name, WallNS: wall, OwnNS: own, Tags: tags})
	}
	return out
}

type traceKey struct{}
type spanKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when the request is
// untraced.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanFrom returns the innermost span in the context, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span as a child of the context's current span (or a
// root span of the context's trace) and returns a context carrying it.
// When the context has no trace it returns ctx unchanged and a nil span,
// so the disabled path allocates nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	var sp *Span
	if parent := SpanFrom(ctx); parent != nil {
		sp = parent.Child(name)
	} else {
		sp = tr.StartSpan(name)
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

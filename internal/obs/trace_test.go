package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanParentChildInvariants(t *testing.T) {
	tr := NewTrace("t-1")
	ctx := WithTrace(context.Background(), tr)

	ctx, root := StartSpan(ctx, "query")
	root.Tag("tenant", "acme")
	cctx, child := StartSpan(ctx, "execute")
	child.TagInt("rows", 42)
	_, grand := StartSpan(cctx, "scan")
	time.Sleep(2 * time.Millisecond)
	grand.End()
	child.End()
	root.End()

	stats := tr.Snapshot()
	if len(stats) != 3 {
		t.Fatalf("got %d spans, want 3", len(stats))
	}
	byName := map[string]SpanStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	q, e, sc := byName["query"], byName["execute"], byName["scan"]
	if q.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", q.Parent)
	}
	if e.Parent != q.ID || sc.Parent != e.ID {
		t.Fatalf("parent chain broken: execute.parent=%d (query=%d), scan.parent=%d (execute=%d)",
			e.Parent, q.ID, sc.Parent, e.ID)
	}
	// Wall times nest: parent wall >= child wall; own = wall - children.
	if q.WallNS < e.WallNS || e.WallNS < sc.WallNS {
		t.Fatalf("wall times do not nest: q=%d e=%d scan=%d", q.WallNS, e.WallNS, sc.WallNS)
	}
	if q.OwnNS != q.WallNS-e.WallNS {
		t.Fatalf("root own = %d, want wall-child = %d", q.OwnNS, q.WallNS-e.WallNS)
	}
	if e.OwnNS != e.WallNS-sc.WallNS {
		t.Fatalf("child own = %d, want wall-grandchild = %d", e.OwnNS, e.WallNS-sc.WallNS)
	}
	if sc.OwnNS != sc.WallNS {
		t.Fatalf("leaf own = %d, want wall = %d", sc.OwnNS, sc.WallNS)
	}
	if len(q.Tags) != 1 || q.Tags[0] != (Tag{"tenant", "acme"}) {
		t.Fatalf("root tags = %v", q.Tags)
	}
	if len(e.Tags) != 1 || e.Tags[0] != (Tag{"rows", "42"}) {
		t.Fatalf("child tags = %v", e.Tags)
	}
}

func TestSpanNilSafety(t *testing.T) {
	// No trace in the context: every operation must no-op without
	// allocating a span.
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatal("untraced context produced a span")
	}
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan rewrapped the context")
	}
	sp.Tag("k", "v")
	sp.TagInt("n", 1)
	sp.Child("c").End()
	sp.End()
	if TraceFrom(nil) != nil || SpanFrom(nil) != nil || ProfileFrom(nil) != nil {
		t.Fatal("nil context lookups not nil")
	}
	var tr *Trace
	if tr.StartSpan("x") != nil || tr.Snapshot() != nil {
		t.Fatal("nil trace methods not nil-safe")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("t-conc")
	root := tr.StartSpan("root")
	var wg sync.WaitGroup
	const n = 16
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := root.Child("worker")
			s.Tag("k", "v")
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	stats := tr.Snapshot()
	if len(stats) != n+1 {
		t.Fatalf("got %d spans, want %d", len(stats), n+1)
	}
	seen := map[int64]bool{}
	for _, s := range stats {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
		if s.Name == "worker" && s.Parent == 0 {
			t.Fatal("worker span lost its parent")
		}
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	tr := NewTrace("t-2")
	s := tr.StartSpan("once")
	s.End()
	wall := tr.Snapshot()[0].WallNS
	time.Sleep(2 * time.Millisecond)
	s.End() // ignored
	if got := tr.Snapshot()[0].WallNS; got != wall {
		t.Fatalf("second End changed wall time: %d -> %d", wall, got)
	}
}

package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile is the nearest-rank quantile over sorted samples, the
// reference the histogram estimate is checked against.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < histSub; v++ {
		for i := int64(0); i <= v; i++ {
			h.Observe(v)
		}
	}
	s := h.Snapshot()
	for v := int64(0); v < histSub; v++ {
		if got := s.Counts[v]; got != v+1 {
			t.Fatalf("bucket %d count = %d, want %d (values below %d must be exact)", v, got, v+1, histSub)
		}
	}
	if s.Min() != 0 || s.Max() != histSub-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min(), s.Max(), histSub-1)
	}
}

func TestHistogramBucketBoundsRoundTrip(t *testing.T) {
	// Every bucket's bounds must map back to that bucket, and bounds must
	// tile the value space with no gaps.
	prevHi := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d lo = %d, want %d (gap or overlap)", i, lo, prevHi+1)
		}
		if bucketIndex(lo) != i || bucketIndex(hi) != i {
			t.Fatalf("bucket %d bounds [%d,%d] map to [%d,%d]", i, lo, hi, bucketIndex(lo), bucketIndex(hi))
		}
		prevHi = hi
	}
	if bucketIndex(math.MaxInt64) != histBuckets-1 {
		t.Fatalf("MaxInt64 maps to %d, want %d", bucketIndex(math.MaxInt64), histBuckets-1)
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, gen := range []struct {
		name string
		draw func() int64
	}{
		{"uniform", func() int64 { return rng.Int63n(10_000_000) }},
		{"lognormal", func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 12)) }},
		{"heavy-tail", func() int64 {
			if rng.Intn(100) == 0 {
				return rng.Int63n(1_000_000_000)
			}
			return rng.Int63n(50_000)
		}},
	} {
		h := NewHistogram()
		samples := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := gen.draw()
			samples = append(samples, v)
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
			got := s.Quantile(q)
			want := exactQuantile(samples, q)
			if want == 0 {
				if got != 0 {
					t.Fatalf("%s q%.2f = %d, want 0", gen.name, q, got)
				}
				continue
			}
			rel := math.Abs(float64(got-want)) / float64(want)
			if rel > 1.0/histSub {
				t.Fatalf("%s q%.2f = %d, exact %d: relative error %.4f exceeds bound %.4f",
					gen.name, q, got, want, rel, 1.0/histSub)
			}
		}
		if s.Quantile(1.0) != samples[len(samples)-1] {
			t.Fatalf("%s q1.00 = %d, want exact max %d", gen.name, s.Quantile(1.0), samples[len(samples)-1])
		}
	}
}

func TestHistogramSnapshotMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(n int) *HistSnapshot {
		h := NewHistogram()
		for i := 0; i < n; i++ {
			h.Observe(rng.Int63n(1_000_000))
		}
		return h.Snapshot()
	}
	a, b, c := mk(500), mk(300), mk(700)
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left.Count != right.Count || left.Sum != right.Sum ||
		left.Min() != right.Min() || left.Max() != right.Max() {
		t.Fatalf("merge not associative: (a·b)·c = {%d,%d,%d,%d}, a·(b·c) = {%d,%d,%d,%d}",
			left.Count, left.Sum, left.Min(), left.Max(),
			right.Count, right.Sum, right.Min(), right.Max())
	}
	for i := range left.Counts {
		if left.Counts[i] != right.Counts[i] {
			t.Fatalf("bucket %d differs: %d vs %d", i, left.Counts[i], right.Counts[i])
		}
	}
	// Identity and nil-safety.
	if got := a.Merge(nil); got.Count != a.Count || got.Sum != a.Sum {
		t.Fatalf("merge with nil changed aggregates")
	}
	var empty *HistSnapshot
	if got := empty.Merge(a); got.Count != a.Count || got.Min() != a.Min() {
		t.Fatalf("nil.Merge(a) lost observations")
	}
}

func TestHistogramConcurrentWriters(t *testing.T) {
	h := NewHistogram()
	const writers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < each; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*each {
		t.Fatalf("count = %d, want %d", s.Count, writers*each)
	}
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	if s.Min() > s.Max() {
		t.Fatalf("min %d > max %d", s.Min(), s.Max())
	}
}

func TestHistogramCountAbove(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 1, 1, 2, 3, 5, 8} {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ v, want int64 }{{0, 7}, {1, 4}, {2, 3}, {8, 0}} {
		if got := s.CountAbove(tc.v); got != tc.want {
			t.Fatalf("CountAbove(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if (*HistSnapshot)(nil).CountAbove(0) != 0 {
		t.Fatal("nil snapshot CountAbove != 0")
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.99) != 0 {
		t.Fatalf("empty snapshot not all-zero: count=%d sum=%d min=%d max=%d q99=%d",
			s.Count, s.Sum, s.Min(), s.Max(), s.Quantile(0.99))
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Counts[0] != 1 || s.Min() != 0 {
		t.Fatalf("negative observation not clamped to zero bucket")
	}
}

package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Profile is a single-query operator profile: a tree of Enter/Exit frames
// recording rows produced and wall/own nanoseconds per operator, the raw
// material for EXPLAIN ANALYZE-style output. One Profile belongs to one
// query execution; Enter/Exit pair like a call stack. A coarse mutex
// guards the tree — operators run for microseconds, frames flip far less
// often, and the executor itself is single-goroutine per query.
//
// All methods are nil-safe: instrumented layers call
// ProfileFrom(ctx).Enter(...) unconditionally, and an unprofiled query
// (nil Profile) pays one context lookup and a nil check.
type Profile struct {
	mu    sync.Mutex
	roots []*ProfNode
	cur   *ProfNode
}

// ProfNode is one operator frame in the profile tree.
type ProfNode struct {
	Name     string      `json:"op"`
	Detail   string      `json:"detail,omitempty"`
	Rows     int64       `json:"rows"` // -1 when the operator failed before producing rows
	WallNS   int64       `json:"wall_ns"`
	OwnNS    int64       `json:"own_ns"`
	Children []*ProfNode `json:"children,omitempty"`

	start   time.Time
	childNS int64
	up      *ProfNode
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{} }

// Enter opens an operator frame under the current one. Nil-safe.
func (p *Profile) Enter(name, detail string) *ProfNode {
	if p == nil {
		return nil
	}
	n := &ProfNode{Name: name, Detail: detail, Rows: -1, start: time.Now()}
	p.mu.Lock()
	n.up = p.cur
	if p.cur == nil {
		p.roots = append(p.roots, n)
	} else {
		p.cur.Children = append(p.cur.Children, n)
	}
	p.cur = n
	p.mu.Unlock()
	return n
}

// EnterChild opens an operator frame under an explicit parent (a new root
// when parent is nil) without moving the Enter/Exit cursor. Concurrent
// executors — operator stages running as goroutines — cannot rely on the
// cursor discipline of Enter, so they pre-build their frame tree with
// explicit parents and each stage closes its own frame with Exit. Exit
// handles EnterChild frames unchanged (the cursor is only restored when it
// points at the exiting frame). Nil-safe.
func (p *Profile) EnterChild(parent *ProfNode, name, detail string) *ProfNode {
	if p == nil {
		return nil
	}
	n := &ProfNode{Name: name, Detail: detail, Rows: -1, start: time.Now()}
	p.mu.Lock()
	n.up = parent
	if parent == nil {
		p.roots = append(p.roots, n)
	} else {
		parent.Children = append(parent.Children, n)
	}
	p.mu.Unlock()
	return n
}

// Exit closes the frame opened by the matching Enter, recording the rows
// it produced (-1 when it failed before producing any). Nil-safe.
func (p *Profile) Exit(n *ProfNode, rows int64) {
	if p == nil || n == nil {
		return
	}
	wall := time.Since(n.start).Nanoseconds()
	p.mu.Lock()
	n.Rows = rows
	n.WallNS = wall
	n.OwnNS = wall - n.childNS
	if n.OwnNS < 0 {
		n.OwnNS = 0
	}
	if n.up != nil {
		n.up.childNS += wall
	}
	if p.cur == n {
		p.cur = n.up
	}
	p.mu.Unlock()
}

// Roots returns the top-level operator frames. Nil-safe.
func (p *Profile) Roots() []*ProfNode {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*ProfNode(nil), p.roots...)
}

// OpStat is one operator in pre-order flattened form, the JSON shape
// attached to query responses (depth reconstructs the tree).
type OpStat struct {
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`
	Depth  int    `json:"depth"`
	Rows   int64  `json:"rows"`
	WallNS int64  `json:"wall_ns"`
	OwnNS  int64  `json:"own_ns"`
}

// Flatten returns the tree in pre-order with depths. Nil-safe.
func (p *Profile) Flatten() []OpStat {
	if p == nil {
		return nil
	}
	var out []OpStat
	var walk func(n *ProfNode, depth int)
	walk = func(n *ProfNode, depth int) {
		out = append(out, OpStat{Op: n.Name, Detail: n.Detail, Depth: depth,
			Rows: n.Rows, WallNS: n.WallNS, OwnNS: n.OwnNS})
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	p.mu.Lock()
	roots := append([]*ProfNode(nil), p.roots...)
	p.mu.Unlock()
	for _, r := range roots {
		walk(r, 0)
	}
	return out
}

// String renders the profile as an indented tree, one operator per line,
// in the style of federate.Explain:
//
//	scan sql.edges  rows=120 wall=1.2ms own=300µs
//	  filter src == "s1"  rows=40 wall=900µs own=900µs
//
// Nil-safe (renders "").
func (p *Profile) String() string {
	var sb strings.Builder
	for _, st := range p.Flatten() {
		sb.WriteString(strings.Repeat("  ", st.Depth))
		sb.WriteString(st.Op)
		if st.Detail != "" {
			sb.WriteByte(' ')
			sb.WriteString(st.Detail)
		}
		if st.Rows >= 0 {
			fmt.Fprintf(&sb, "  rows=%d", st.Rows)
		} else {
			sb.WriteString("  rows=-")
		}
		fmt.Fprintf(&sb, " wall=%s own=%s", time.Duration(st.WallNS), time.Duration(st.OwnNS))
		sb.WriteByte('\n')
	}
	return sb.String()
}

type profileKey struct{}

// WithProfile returns a context carrying the profile.
func WithProfile(ctx context.Context, p *Profile) context.Context {
	return context.WithValue(ctx, profileKey{}, p)
}

type frameKey struct{}

// WithFrame returns a context carrying an explicit parent frame for nested
// instrumentation. A layer delegating work to a deeper instrumented layer
// (e.g. a federated scan calling into the SQL engine) sets its own frame
// here; the deeper layer parents its frames under it via EnterChild instead
// of the cursor, which is what keeps profile trees correct when operator
// stages run concurrently. A nil frame returns ctx unchanged.
func WithFrame(ctx context.Context, n *ProfNode) context.Context {
	if n == nil {
		return ctx
	}
	return context.WithValue(ctx, frameKey{}, n)
}

// FrameFrom returns the context's explicit parent frame, or nil when the
// caller should fall back to cursor-based Enter.
func FrameFrom(ctx context.Context) *ProfNode {
	if ctx == nil {
		return nil
	}
	n, _ := ctx.Value(frameKey{}).(*ProfNode)
	return n
}

// ProfileFrom returns the context's profile, or nil when the query is not
// being profiled.
func ProfileFrom(ctx context.Context) *Profile {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(profileKey{}).(*Profile)
	return p
}

package obs

import (
	"strings"
	"testing"
)

func TestObserveExemplarBucketPlacement(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(3, "t1")
	h.ObserveExemplar(3, "t2") // same bucket: most recent wins
	h.ObserveExemplar(100, "") // untraced: counts but leaves no exemplar

	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 106 {
		t.Fatalf("snapshot count/sum = %d/%d, want 3/106", s.Count, s.Sum)
	}
	if s.Exemplars == nil {
		t.Fatalf("snapshot has no exemplar store after traced observations")
	}
	e := s.Exemplars[bucketIndex(3)]
	if e == nil || e.TraceID != "t2" || e.Value != 3 {
		t.Fatalf("bucket exemplar = %+v, want trace t2 value 3", e)
	}
	if s.Exemplars[bucketIndex(100)] != nil {
		t.Fatalf("untraced observation left an exemplar")
	}

	// Fully untraced histograms never allocate the store.
	u := NewHistogram()
	u.ObserveExemplar(5, "")
	if u.Snapshot().Exemplars != nil {
		t.Fatalf("untraced histogram allocated an exemplar store")
	}
}

func TestSnapshotMergeExemplarsLaterWins(t *testing.T) {
	h1, h2 := NewHistogram(), NewHistogram()
	h1.ObserveExemplar(3, "a")
	h2.ObserveExemplar(3, "b")
	h2.ObserveExemplar(5, "c")
	s1, s2 := h1.Snapshot(), h2.Snapshot()

	m := s1.Merge(s2)
	if got := m.Exemplars[bucketIndex(3)]; got == nil || got.TraceID != "b" {
		t.Fatalf("merge bucket 3 exemplar = %+v, want later argument's trace b", got)
	}
	if got := m.Exemplars[bucketIndex(5)]; got == nil || got.TraceID != "c" {
		t.Fatalf("merge bucket 5 exemplar = %+v, want trace c", got)
	}
	// Swapping argument order swaps the contested bucket's winner.
	if got := s2.Merge(s1).Exemplars[bucketIndex(3)]; got == nil || got.TraceID != "a" {
		t.Fatalf("reverse merge bucket 3 exemplar = %+v, want trace a", got)
	}
	// Merging against an exemplar-free side keeps the exemplars.
	bare := NewHistogram()
	bare.Observe(3)
	if got := s1.Merge(bare.Snapshot()).Exemplars[bucketIndex(3)]; got == nil || got.TraceID != "a" {
		t.Fatalf("merge with bare side lost the exemplar: %+v", got)
	}
}

func TestWriteHistPromExemplarAnnotation(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(3, "acme-7")
	h.ObserveExemplar(100, "")

	var sb strings.Builder
	writeHistProm(&sb, "lat", `{tenant="a"}`, h.Snapshot())
	want := `lat_bucket{tenant="a",le="3"} 1 # {trace_id="acme-7"} 3` + "\n" +
		`lat_bucket{tenant="a",le="101"} 2` + "\n" +
		`lat_bucket{tenant="a",le="+Inf"} 2` + "\n" +
		`lat_sum{tenant="a"} 103` + "\n" +
		`lat_count{tenant="a"} 2` + "\n"
	if sb.String() != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", sb.String(), want)
	}
}

package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProfileTreeShape(t *testing.T) {
	p := NewProfile()
	sortN := p.Enter("sort", "by cnt desc")
	scanN := p.Enter("scan", "sql.edges")
	time.Sleep(time.Millisecond)
	p.Exit(scanN, 120)
	p.Exit(sortN, 10)

	flat := p.Flatten()
	if len(flat) != 2 {
		t.Fatalf("got %d ops, want 2", len(flat))
	}
	if flat[0].Op != "sort" || flat[0].Depth != 0 || flat[0].Rows != 10 {
		t.Fatalf("root = %+v", flat[0])
	}
	if flat[1].Op != "scan" || flat[1].Depth != 1 || flat[1].Rows != 120 {
		t.Fatalf("child = %+v", flat[1])
	}
	if flat[0].WallNS < flat[1].WallNS {
		t.Fatalf("parent wall %d < child wall %d", flat[0].WallNS, flat[1].WallNS)
	}
	if flat[0].OwnNS != flat[0].WallNS-flat[1].WallNS {
		t.Fatalf("own = %d, want wall-child = %d", flat[0].OwnNS, flat[0].WallNS-flat[1].WallNS)
	}
	out := p.String()
	if !strings.Contains(out, "sort by cnt desc  rows=10") ||
		!strings.Contains(out, "\n  scan sql.edges  rows=120") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestProfileSiblings(t *testing.T) {
	p := NewProfile()
	join := p.Enter("join", "on id")
	l := p.Enter("scan", "left")
	p.Exit(l, 5)
	r := p.Enter("scan", "right")
	p.Exit(r, 7)
	p.Exit(join, 3)
	flat := p.Flatten()
	if len(flat) != 3 || flat[1].Depth != 1 || flat[2].Depth != 1 {
		t.Fatalf("sibling shape wrong: %+v", flat)
	}
	if flat[0].OwnNS != flat[0].WallNS-flat[1].WallNS-flat[2].WallNS {
		t.Fatal("own time did not subtract both children")
	}
}

func TestProfileErrorFrameRows(t *testing.T) {
	p := NewProfile()
	n := p.Enter("scan", "boom")
	p.Exit(n, -1)
	if got := p.Flatten()[0].Rows; got != -1 {
		t.Fatalf("rows = %d, want -1", got)
	}
	if !strings.Contains(p.String(), "rows=-") {
		t.Fatalf("failed frame render: %q", p.String())
	}
}

func TestProfileNilSafety(t *testing.T) {
	var p *Profile
	n := p.Enter("x", "")
	if n != nil {
		t.Fatal("nil profile allocated a node")
	}
	p.Exit(n, 1)
	if p.Flatten() != nil || p.Roots() != nil || p.String() != "" {
		t.Fatal("nil profile methods not inert")
	}
}

// TestProfileEnterChild pins the explicit-parent API concurrent executors
// rely on: frames attach under the given parent without moving the cursor,
// concurrent Exits are safe, and WithFrame threads a parent through a
// context.
func TestProfileEnterChild(t *testing.T) {
	p := NewProfile()
	root := p.EnterChild(nil, "sort", "")
	agg := p.EnterChild(root, "aggregate", "by src")
	scan := p.EnterChild(agg, "scan", "sql.edges")
	// The cursor never moved: a cursor-based Enter still opens a new root.
	stray := p.Enter("stray", "")
	p.Exit(stray, 0)
	// Stages exit bottom-up from separate goroutines.
	var wg sync.WaitGroup
	for _, fr := range []struct {
		n    *ProfNode
		rows int64
	}{{scan, 4}, {agg, 3}, {root, 3}} {
		wg.Add(1)
		go func(n *ProfNode, rows int64) {
			defer wg.Done()
			p.Exit(n, rows)
		}(fr.n, fr.rows)
	}
	wg.Wait()
	flat := p.Flatten()
	if len(flat) != 4 {
		t.Fatalf("got %d frames, want 4:\n%s", len(flat), p.String())
	}
	want := []struct {
		op    string
		depth int
	}{{"sort", 0}, {"aggregate", 1}, {"scan", 2}, {"stray", 0}}
	for i, w := range want {
		if flat[i].Op != w.op || flat[i].Depth != w.depth {
			t.Fatalf("frame %d = %+v, want %s at depth %d", i, flat[i], w.op, w.depth)
		}
	}
	// WithFrame/FrameFrom round-trip; nil frame leaves the context bare.
	ctx := WithFrame(context.Background(), root)
	if FrameFrom(ctx) != root {
		t.Fatal("frame lost in context")
	}
	if WithFrame(context.Background(), nil) != context.Background() {
		t.Fatal("nil frame allocated a context")
	}
	// Nil-safety mirrors Enter.
	var np *Profile
	if np.EnterChild(nil, "x", "") != nil {
		t.Fatal("nil profile allocated a node")
	}
}

func TestProfileContextRoundTrip(t *testing.T) {
	p := NewProfile()
	ctx := WithProfile(context.Background(), p)
	if ProfileFrom(ctx) != p {
		t.Fatal("profile lost in context")
	}
	if ProfileFrom(context.Background()) != nil {
		t.Fatal("fresh context carries a profile")
	}
}

package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestProfileTreeShape(t *testing.T) {
	p := NewProfile()
	sortN := p.Enter("sort", "by cnt desc")
	scanN := p.Enter("scan", "sql.edges")
	time.Sleep(time.Millisecond)
	p.Exit(scanN, 120)
	p.Exit(sortN, 10)

	flat := p.Flatten()
	if len(flat) != 2 {
		t.Fatalf("got %d ops, want 2", len(flat))
	}
	if flat[0].Op != "sort" || flat[0].Depth != 0 || flat[0].Rows != 10 {
		t.Fatalf("root = %+v", flat[0])
	}
	if flat[1].Op != "scan" || flat[1].Depth != 1 || flat[1].Rows != 120 {
		t.Fatalf("child = %+v", flat[1])
	}
	if flat[0].WallNS < flat[1].WallNS {
		t.Fatalf("parent wall %d < child wall %d", flat[0].WallNS, flat[1].WallNS)
	}
	if flat[0].OwnNS != flat[0].WallNS-flat[1].WallNS {
		t.Fatalf("own = %d, want wall-child = %d", flat[0].OwnNS, flat[0].WallNS-flat[1].WallNS)
	}
	out := p.String()
	if !strings.Contains(out, "sort by cnt desc  rows=10") ||
		!strings.Contains(out, "\n  scan sql.edges  rows=120") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestProfileSiblings(t *testing.T) {
	p := NewProfile()
	join := p.Enter("join", "on id")
	l := p.Enter("scan", "left")
	p.Exit(l, 5)
	r := p.Enter("scan", "right")
	p.Exit(r, 7)
	p.Exit(join, 3)
	flat := p.Flatten()
	if len(flat) != 3 || flat[1].Depth != 1 || flat[2].Depth != 1 {
		t.Fatalf("sibling shape wrong: %+v", flat)
	}
	if flat[0].OwnNS != flat[0].WallNS-flat[1].WallNS-flat[2].WallNS {
		t.Fatal("own time did not subtract both children")
	}
}

func TestProfileErrorFrameRows(t *testing.T) {
	p := NewProfile()
	n := p.Enter("scan", "boom")
	p.Exit(n, -1)
	if got := p.Flatten()[0].Rows; got != -1 {
		t.Fatalf("rows = %d, want -1", got)
	}
	if !strings.Contains(p.String(), "rows=-") {
		t.Fatalf("failed frame render: %q", p.String())
	}
}

func TestProfileNilSafety(t *testing.T) {
	var p *Profile
	n := p.Enter("x", "")
	if n != nil {
		t.Fatal("nil profile allocated a node")
	}
	p.Exit(n, 1)
	if p.Flatten() != nil || p.Roots() != nil || p.String() != "" {
		t.Fatal("nil profile methods not inert")
	}
}

func TestProfileContextRoundTrip(t *testing.T) {
	p := NewProfile()
	ctx := WithProfile(context.Background(), p)
	if ProfileFrom(ctx) != p {
		t.Fatal("profile lost in context")
	}
	if ProfileFrom(context.Background()) != nil {
		t.Fatal("fresh context carries a profile")
	}
}

package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// FlightRecord is one "notable" request in the always-on flight recorder:
// the evidence trail an engineer (or a fleet balancer) follows from a
// burn-rate alert to the queries responsible. Records carry identity
// (tenant, backend, query), provenance (NQL program hash, federated plan
// fingerprint, trace ID) and the latency split, so /flightz alone answers
// "which programs and plans were slow or failing, and where is the deeper
// evidence".
type FlightRecord struct {
	// Seq is the recorder-assigned monotone sequence number.
	Seq int64 `json:"seq"`
	// StartUnixNS is the request's start time (UnixNano).
	StartUnixNS int64 `json:"start_unix_ns"`
	// Tenant and Backend attribute the request.
	Tenant  string `json:"tenant"`
	Backend string `json:"backend,omitempty"`
	// QueryID names a catalog query; raw programs leave it empty.
	QueryID string `json:"query_id,omitempty"`
	// ProgramHash is the NQL program's source hash (hex), shared with the
	// sandbox bytecode cache's identity.
	ProgramHash string `json:"program_hash,omitempty"`
	// PlanFP is the federated plan fingerprint hash (hex of the PR-8
	// Explain fingerprint) when the request executed a federated plan;
	// comma-joined when it executed several distinct plans.
	PlanFP string `json:"plan_fp,omitempty"`
	// TraceID links to /tracez when the request was traced.
	TraceID string `json:"trace_id,omitempty"`
	// Class is why the record is notable: "slow", "sampled", or the error
	// class ("cancelled", "value", "static", "shed", "unavailable", ...).
	Class string `json:"class"`
	// Result is the coarse outcome: "ok", "error", "timeout",
	// "disconnect", "shed", "static", "unavailable".
	Result string `json:"result"`
	// QueueNS is time before execution began (admission, vetting, epoch
	// acquire, bind); ExecNS is sandbox execution; TotalNS is the whole
	// request.
	QueueNS int64 `json:"queue_ns"`
	ExecNS  int64 `json:"exec_ns"`
	TotalNS int64 `json:"total_ns"`
}

// FlightRecorder is a bounded ring of FlightRecords. The request hot path
// touches it in two ways, both allocation-free: Admit (one atomic add) to
// decide whether an unremarkable request is sampled in, and Record (a
// struct copy into a preallocated slot under a short mutex) when a request
// is notable. Snapshots are cold-path copies.
type FlightRecorder struct {
	sampleEvery int64
	sampleSeq   atomic.Int64

	mu   sync.Mutex
	buf  []FlightRecord
	next int
	n    int
	seq  int64
}

// NewFlightRecorder builds a recorder retaining the last capacity records
// and admitting one unremarkable request per sampleEvery as a sampled
// normal (sampleEvery <= 0 disables normal sampling entirely).
func NewFlightRecorder(capacity, sampleEvery int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &FlightRecorder{
		sampleEvery: int64(sampleEvery),
		buf:         make([]FlightRecord, capacity),
	}
}

// Admit reports whether an unremarkable (successful, under-threshold)
// request should still be recorded as a sampled normal. One atomic add,
// zero allocations — this is the only flight-recorder cost a healthy fast
// request pays.
func (r *FlightRecorder) Admit() bool {
	if r == nil || r.sampleEvery <= 0 {
		return false
	}
	return r.sampleSeq.Add(1)%r.sampleEvery == 0
}

// Record appends one record, assigning its sequence number. The record is
// copied by value into a preallocated ring slot: no allocation, one short
// critical section.
func (r *FlightRecorder) Record(rec FlightRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	rec.Seq = r.seq
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// FlightFilter selects records in Snapshot. Zero fields match everything.
type FlightFilter struct {
	Tenant  string
	Backend string
	Class   string
	MinNS   int64 // keep records with TotalNS >= MinNS
}

func (f *FlightFilter) match(rec *FlightRecord) bool {
	if f == nil {
		return true
	}
	if f.Tenant != "" && rec.Tenant != f.Tenant {
		return false
	}
	if f.Backend != "" && rec.Backend != f.Backend {
		return false
	}
	if f.Class != "" && rec.Class != f.Class {
		return false
	}
	return rec.TotalNS >= f.MinNS
}

// Snapshot returns the retained records matching the filter, oldest first.
func (r *FlightRecorder) Snapshot(f *FlightFilter) []FlightRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightRecord, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		rec := &r.buf[(start+i)%len(r.buf)]
		if f.match(rec) {
			out = append(out, *rec)
		}
	}
	return out
}

// Len reports how many records are retained right now.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// WriteText renders records one per line in a fixed field order — the
// /flightz text format. Durations are raw nanoseconds so lines diff
// cleanly across captures.
func WriteFlightText(w io.Writer, recs []FlightRecord) {
	for i := range recs {
		rec := &recs[i]
		fmt.Fprintf(w, "seq=%d start_ns=%d tenant=%s backend=%s class=%s result=%s", rec.Seq, rec.StartUnixNS, rec.Tenant, rec.Backend, rec.Class, rec.Result)
		if rec.QueryID != "" {
			fmt.Fprintf(w, " query_id=%s", rec.QueryID)
		}
		if rec.ProgramHash != "" {
			fmt.Fprintf(w, " program=%s", rec.ProgramHash)
		}
		if rec.PlanFP != "" {
			fmt.Fprintf(w, " plan=%s", rec.PlanFP)
		}
		if rec.TraceID != "" {
			fmt.Fprintf(w, " trace=%s", rec.TraceID)
		}
		fmt.Fprintf(w, " queue_ns=%s exec_ns=%s total_ns=%s\n",
			strconv.FormatInt(rec.QueueNS, 10), strconv.FormatInt(rec.ExecNS, 10), strconv.FormatInt(rec.TotalNS, 10))
	}
}

// Package obs is the dependency-free observability core shared by every
// execution layer: lock-free counters and gauges, log-bucketed latency
// histograms with mergeable snapshots (histogram.go), lightweight spans
// propagated via context.Context (trace.go), and single-query operator
// profiles for EXPLAIN ANALYZE-style output (profile.go).
//
// A Registry names and renders metric series; the instruments themselves
// (Counter, Gauge, Histogram) are plain atomics with no registry
// back-pointer, so hot paths touch one cache line and never a lock.
// Rendering follows the Prometheus text exposition format closely enough
// for standard scrapers: counters and gauges as `name{labels} value`,
// histograms as cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers keep counters monotone; negative deltas are the
// caller's bug, not checked here to keep the hot path branch-free).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value (inflight requests, epoch).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

const (
	kindCounter = iota
	kindGauge
	kindHistogram
)

// series is one named, labelled instrument in a registry.
type series struct {
	name   string
	labels string // canonical rendered {k="v",...} or ""
	kind   int
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry names instruments and renders them. Lookup takes an RWMutex;
// callers on hot paths resolve their instruments once and keep the
// pointer (see internal/service's per-tenant cache).
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// canonLabels renders alternating key, value pairs as a canonical sorted
// label block. Panics on an odd pair count — a compile-time-shaped bug.
func canonLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label key/value count")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`=`)
		sb.WriteString(strconv.Quote(p.v))
	}
	sb.WriteByte('}')
	return sb.String()
}

func (r *Registry) lookup(name string, kind int, labels []string) *series {
	lbl := canonLabels(labels)
	key := name + lbl
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s == nil {
		r.mu.Lock()
		if s = r.series[key]; s == nil {
			s = &series{name: name, labels: lbl, kind: kind}
			switch kind {
			case kindCounter:
				s.ctr = &Counter{}
			case kindGauge:
				s.gauge = &Gauge{}
			case kindHistogram:
				s.hist = NewHistogram()
			}
			r.series[key] = s
		}
		r.mu.Unlock()
	}
	if s.kind != kind {
		panic(fmt.Sprintf("obs: %s%s registered with conflicting kinds", name, lbl))
	}
	return s
}

// Counter returns (registering on first use) the counter for name and the
// alternating key, value label pairs. Repeat calls return the same
// instrument.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, kindCounter, labels).ctr
}

// Gauge returns (registering on first use) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, kindGauge, labels).gauge
}

// Histogram returns (registering on first use) the histogram for name and
// labels.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.lookup(name, kindHistogram, labels).hist
}

// WritePrometheus renders every series in the Prometheus text exposition
// format, deterministically: families sorted by name, series within a
// family sorted by label block. Histograms emit cumulative buckets at the
// upper bound of each non-empty bucket plus the mandatory +Inf bucket, so
// bucket lines stay proportional to the value spread rather than the
// full 1888-bucket layout.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].labels < all[j].labels
	})
	lastName := ""
	for _, s := range all {
		if s.name != lastName {
			lastName = s.name
			fmt.Fprintf(w, "# TYPE %s %s\n", s.name, kindName(s.kind))
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.ctr.Load())
		case kindGauge:
			fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.gauge.Load())
		case kindHistogram:
			writeHistProm(w, s.name, s.labels, s.hist.Snapshot())
		}
	}
}

func kindName(kind int) string {
	switch kind {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	}
	return "histogram"
}

// writeHistProm renders one histogram series. le labels carry the
// inclusive upper bound of each non-empty bucket (cumulative, per the
// exposition format). Buckets that hold an exemplar append an
// OpenMetrics-style annotation — `# {trace_id="..."} <value>` — linking
// the bucket to its most recent traced observation.
func writeHistProm(w io.Writer, name, labels string, s *HistSnapshot) {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	withLE := func(le string) string {
		if inner == "" {
			return `{le="` + le + `"}`
		}
		return "{" + inner + `,le="` + le + `"}`
	}
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		_, hi := bucketBounds(i)
		fmt.Fprintf(w, "%s_bucket%s %d", name, withLE(strconv.FormatInt(hi, 10)), cum)
		if s.Exemplars != nil && s.Exemplars[i] != nil {
			e := s.Exemplars[i]
			fmt.Fprintf(w, " # {trace_id=%q} %d", e.TraceID, e.Value)
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), s.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

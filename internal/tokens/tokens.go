// Package tokens implements the token estimation and LLM cost model behind
// the paper's cost and scalability analysis (Figure 4). Real deployments
// use provider tokenizers; this approximation preserves the two properties
// the analysis depends on: token count grows linearly with prompt text, and
// prices follow the published 2023 Azure OpenAI table.
package tokens

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// byte classes for the ASCII fast path.
const (
	classOther byte = iota // punctuation, symbols, control: one token each
	classWord              // letters and digits: extend the current run
	classSpace             // whitespace: free, just flushes the run
)

// asciiClass classifies every single-byte rune once at init so Count can
// dispatch on a table lookup instead of unicode range scans.
var asciiClass = func() [utf8.RuneSelf]byte {
	var t [utf8.RuneSelf]byte
	for b := 0; b < utf8.RuneSelf; b++ {
		r := rune(b)
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			t[b] = classWord
		case unicode.IsSpace(r):
			t[b] = classSpace
		default:
			t[b] = classOther
		}
	}
	return t
}()

// Count estimates the token count of text with a BPE-like heuristic:
// runs of letters/digits contribute ceil(len/4) tokens (common English
// words are 1-2 tokens; long identifiers split), every punctuation or
// symbol rune is its own token, and whitespace is free.
//
// The hot path — prompt and graph-JSON text is overwhelmingly ASCII —
// iterates bytes against a class table; UTF-8 decoding only happens for
// multi-byte runes.
func Count(text string) int {
	tokens := 0
	runLen := 0
	for i := 0; i < len(text); {
		b := text[i]
		if b < utf8.RuneSelf {
			switch asciiClass[b] {
			case classWord:
				runLen++
			case classSpace:
				if runLen > 0 {
					tokens += (runLen + 3) / 4
					runLen = 0
				}
			default:
				if runLen > 0 {
					tokens += (runLen + 3) / 4
					runLen = 0
				}
				tokens++
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(text[i:])
		i += size
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			runLen++
		case unicode.IsSpace(r):
			if runLen > 0 {
				tokens += (runLen + 3) / 4
				runLen = 0
			}
		default:
			if runLen > 0 {
				tokens += (runLen + 3) / 4
				runLen = 0
			}
			tokens++
		}
	}
	if runLen > 0 {
		tokens += (runLen + 3) / 4
	}
	return tokens
}

// Pricing describes one model's per-1k-token prices in USD.
type Pricing struct {
	PromptPer1K     float64
	CompletionPer1K float64
}

// ModelSpec couples a context window with pricing.
type ModelSpec struct {
	Name          string
	ContextWindow int // max prompt+completion tokens
	Price         Pricing
}

// Specs for the models the paper evaluates. Prices follow the June-2023
// Azure OpenAI table the paper cites (GPT-4 8k context: $0.03/$0.06 per 1k
// prompt/completion tokens); earlier models use their public list prices.
// Context windows follow each model's documented limit.
var Specs = map[string]ModelSpec{
	"gpt-4": {
		Name:          "gpt-4",
		ContextWindow: 8192,
		Price:         Pricing{PromptPer1K: 0.03, CompletionPer1K: 0.06},
	},
	"gpt-3": {
		Name:          "gpt-3",
		ContextWindow: 2049,
		Price:         Pricing{PromptPer1K: 0.02, CompletionPer1K: 0.02},
	},
	"text-davinci-003": {
		Name:          "text-davinci-003",
		ContextWindow: 4097,
		Price:         Pricing{PromptPer1K: 0.02, CompletionPer1K: 0.02},
	},
	"bard": {
		Name:          "bard",
		ContextWindow: 4096,
		Price:         Pricing{PromptPer1K: 0.0, CompletionPer1K: 0.0}, // no public price in 2023
	},
}

// ErrTokenLimit is returned when a prompt exceeds a model's context window —
// the failure the strawman baseline hits on moderate graphs (≈150 nodes).
type ErrTokenLimit struct {
	Model  string
	Tokens int
	Limit  int
}

func (e *ErrTokenLimit) Error() string {
	return fmt.Sprintf("prompt of %d tokens exceeds %s context window of %d", e.Tokens, e.Model, e.Limit)
}

// Cost computes the USD cost of one LLM call, or ErrTokenLimit when the
// prompt and expected completion cannot fit in the model's window.
func Cost(model string, promptTokens, completionTokens int) (float64, error) {
	spec, ok := Specs[model]
	if !ok {
		return 0, fmt.Errorf("tokens: unknown model %q", model)
	}
	if promptTokens+completionTokens > spec.ContextWindow {
		return 0, &ErrTokenLimit{Model: model, Tokens: promptTokens + completionTokens, Limit: spec.ContextWindow}
	}
	return float64(promptTokens)/1000*spec.Price.PromptPer1K +
		float64(completionTokens)/1000*spec.Price.CompletionPer1K, nil
}

// CostOfText is a convenience over Count+Cost.
func CostOfText(model, prompt, completion string) (float64, error) {
	return Cost(model, Count(prompt), Count(completion))
}

package tokens

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountBasics(t *testing.T) {
	if Count("") != 0 {
		t.Fatal("empty string should be 0 tokens")
	}
	if got := Count("word"); got != 1 {
		t.Fatalf("Count(word) = %d", got)
	}
	if got := Count("hello world"); got != 4 {
		// "hello" and "world" are 5-letter runs → 2 tokens each.
		t.Fatalf("Count = %d, want 4", got)
	}
	// Punctuation is one token each.
	if got := Count("a,b"); got != 3 {
		t.Fatalf("Count(a,b) = %d, want 3", got)
	}
	// Long identifiers split every 4 chars.
	if got := Count("abcdefgh"); got != 2 {
		t.Fatalf("Count(8 letters) = %d, want 2", got)
	}
}

func TestCountMonotonicInLength(t *testing.T) {
	f := func(a, b string) bool {
		return Count(a+b) >= Count(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountScalesWithRepetition(t *testing.T) {
	unit := `{"id":"h001","ip":"10.0.1.2"},`
	c1 := Count(unit)
	c10 := Count(strings.Repeat(unit, 10))
	if c10 < 9*c1 || c10 > 11*c1 {
		t.Fatalf("10x text = %d tokens vs unit %d — not ~linear", c10, c1)
	}
}

func TestCostGPT4(t *testing.T) {
	// 1000 prompt + 1000 completion at $0.03/$0.06.
	c, err := Cost("gpt-4", 1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0.09 {
		t.Fatalf("cost = %v, want 0.09", c)
	}
}

func TestCostUnknownModel(t *testing.T) {
	if _, err := Cost("gpt-99", 10, 10); err == nil {
		t.Fatal("expected unknown model error")
	}
}

func TestTokenLimit(t *testing.T) {
	_, err := Cost("gpt-4", 9000, 0)
	var lim *ErrTokenLimit
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want ErrTokenLimit", err)
	}
	if lim.Limit != 8192 {
		t.Fatalf("limit = %d", lim.Limit)
	}
	if !strings.Contains(lim.Error(), "context window") {
		t.Fatalf("message = %q", lim.Error())
	}
	// GPT-3 window is much smaller.
	if _, err := Cost("gpt-3", 2100, 0); err == nil {
		t.Fatal("expected gpt-3 overflow")
	}
	if _, err := Cost("gpt-3", 1500, 100); err != nil {
		t.Fatalf("within window: %v", err)
	}
}

func TestCostOfText(t *testing.T) {
	c, err := CostOfText("gpt-4", "short prompt", "short reply")
	if err != nil || c <= 0 {
		t.Fatalf("c=%v err=%v", c, err)
	}
}

func TestSpecsComplete(t *testing.T) {
	for _, name := range []string{"gpt-4", "gpt-3", "text-davinci-003", "bard"} {
		spec, ok := Specs[name]
		if !ok {
			t.Errorf("missing spec for %s", name)
			continue
		}
		if spec.ContextWindow <= 0 {
			t.Errorf("%s has no context window", name)
		}
	}
}

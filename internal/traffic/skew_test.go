package traffic

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/graph"
)

// maxOutDegree returns the largest out-degree in g.
func maxOutDegree(t *testing.T, g *graph.Graph) int {
	t.Helper()
	max := 0
	for _, n := range g.Nodes() {
		if d := g.OutDegree(n); d > max {
			max = d
		}
	}
	return max
}

func TestSkewDeterministic(t *testing.T) {
	cfg := Config{Nodes: 200, Edges: 600, Seed: 11, SkewAlpha: 1.5}
	a, err := GenerateChecked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChecked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a, b) {
		t.Fatal("skewed generation is not deterministic")
	}
}

func TestSkewProducesHubs(t *testing.T) {
	uniform := Generate(Config{Nodes: 200, Edges: 600, Seed: 11})
	skewed, err := GenerateChecked(Config{Nodes: 200, Edges: 600, Seed: 11, SkewAlpha: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := skewed.NumEdges(); got != 600 {
		t.Fatalf("skewed graph has %d edges, want 600", got)
	}
	um, sm := maxOutDegree(t, uniform), maxOutDegree(t, skewed)
	// Zipf endpoint draws concentrate edges on low-index nodes; the hubs
	// must be far heavier than anything uniform sampling produces (at this
	// scale uniform max out-degree is ~9, skewed ~100+).
	if sm < 3*um {
		t.Fatalf("expected skew to produce hubs: uniform max out-degree %d, skewed %d", um, sm)
	}
}

func TestSkewRejectsSubcriticalAlpha(t *testing.T) {
	for _, alpha := range []float64{-1, 0.5, 1} {
		if _, err := GenerateChecked(Config{Nodes: 10, Edges: 10, Seed: 1, SkewAlpha: alpha}); err == nil {
			t.Fatalf("SkewAlpha %g accepted, want error", alpha)
		}
	}
}

func TestStreamRejectsSkew(t *testing.T) {
	if _, err := NewStream(Config{Nodes: 10, Edges: 10, Seed: 1, SkewAlpha: 1.5}); err == nil {
		t.Fatal("NewStream accepted a skewed config, want error")
	}
}

// TestDefaultOutputUnchangedBySkewKnob pins the uniform generator's output
// at the benchmark scales: adding the SkewAlpha field (and the endpoint
// sampler indirection) must not perturb a single byte of any default
// (≤999-node) graph.
func TestDefaultOutputUnchangedBySkewKnob(t *testing.T) {
	pins := []struct {
		cfg Config
		sha string
	}{
		{Config{Nodes: 80, Edges: 80, Seed: 42}, "6833ae6e35fc5095547b904ab6cdfa11dbf5ad6b3901f67e33582a5bf2cc54d4"},
		{Config{Nodes: 999, Edges: 2000, Seed: 7}, "c0501d3392351e88e572441104452a603b32ed4aa4a5ee5831c9334af24f5d03"},
	}
	for _, pin := range pins {
		sum := sha256.Sum256([]byte(Generate(pin.cfg).Fingerprint()))
		if got := hex.EncodeToString(sum[:]); got != pin.sha {
			t.Errorf("config %+v fingerprint drifted: got %s, want %s", pin.cfg, got, pin.sha)
		}
	}
}

package traffic

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/graph"
)

// maxOutDegree returns the largest out-degree in g.
func maxOutDegree(t *testing.T, g *graph.Graph) int {
	t.Helper()
	max := 0
	for _, n := range g.Nodes() {
		if d := g.OutDegree(n); d > max {
			max = d
		}
	}
	return max
}

func TestSkewDeterministic(t *testing.T) {
	cfg := Config{Nodes: 200, Edges: 600, Seed: 11, SkewAlpha: 1.5}
	a, err := GenerateChecked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChecked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a, b) {
		t.Fatal("skewed generation is not deterministic")
	}
}

func TestSkewProducesHubs(t *testing.T) {
	uniform := Generate(Config{Nodes: 200, Edges: 600, Seed: 11})
	skewed, err := GenerateChecked(Config{Nodes: 200, Edges: 600, Seed: 11, SkewAlpha: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := skewed.NumEdges(); got != 600 {
		t.Fatalf("skewed graph has %d edges, want 600", got)
	}
	um, sm := maxOutDegree(t, uniform), maxOutDegree(t, skewed)
	// Zipf endpoint draws concentrate edges on low-index nodes; the hubs
	// must be far heavier than anything uniform sampling produces (at this
	// scale uniform max out-degree is ~9, skewed ~100+).
	if sm < 3*um {
		t.Fatalf("expected skew to produce hubs: uniform max out-degree %d, skewed %d", um, sm)
	}
}

func TestSkewRejectsSubcriticalAlpha(t *testing.T) {
	for _, alpha := range []float64{-1, 0.5, 1} {
		if _, err := GenerateChecked(Config{Nodes: 10, Edges: 10, Seed: 1, SkewAlpha: alpha}); err == nil {
			t.Fatalf("SkewAlpha %g accepted, want error", alpha)
		}
	}
}

func TestStreamRejectsSubcriticalAlpha(t *testing.T) {
	for _, alpha := range []float64{-1, 0.5, 1} {
		if _, err := NewStream(Config{Nodes: 10, Edges: 10, Seed: 1, SkewAlpha: alpha}); err == nil {
			t.Fatalf("SkewAlpha %g accepted by NewStream, want error", alpha)
		}
	}
}

// drainStream pulls every remaining edge in the given batch sizes (cycling),
// asserting the stream terminates exactly at cfg.Edges.
func drainStream(t *testing.T, s *Stream, batches ...int) []StreamEdge {
	t.Helper()
	var out []StreamEdge
	for i := 0; s.Remaining() > 0; i++ {
		got := s.Next(batches[i%len(batches)])
		if len(got) == 0 {
			t.Fatalf("stream stalled at %d edges with %d remaining", len(out), s.Remaining())
		}
		out = append(out, got...)
	}
	return out
}

func TestStreamSkewExactDistinctNoSelfLoops(t *testing.T) {
	cfg := Config{Nodes: 100, Edges: 500, Seed: 9, SkewAlpha: 1.5}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := drainStream(t, s, 7, 64, 1)
	if len(edges) != cfg.Edges {
		t.Fatalf("skewed stream emitted %d edges, want %d", len(edges), cfg.Edges)
	}
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		if e.UIdx == e.VIdx {
			t.Fatalf("self-loop %s -> %s", e.U, e.V)
		}
		if e.UIdx < 0 || e.UIdx >= cfg.Nodes || e.VIdx < 0 || e.VIdx >= cfg.Nodes {
			t.Fatalf("endpoint out of range: %d -> %d", e.UIdx, e.VIdx)
		}
		p := [2]int{e.UIdx, e.VIdx}
		if seen[p] {
			t.Fatalf("duplicate edge %d -> %d", e.UIdx, e.VIdx)
		}
		seen[p] = true
	}
}

func TestStreamSkewProducesHubs(t *testing.T) {
	uniform, err := NewStream(Config{Nodes: 200, Edges: 600, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := NewStream(Config{Nodes: 200, Edges: 600, Seed: 11, SkewAlpha: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	deg := func(edges []StreamEdge) int {
		out := map[int]int{}
		max := 0
		for _, e := range edges {
			out[e.UIdx]++
			if out[e.UIdx] > max {
				max = out[e.UIdx]
			}
		}
		return max
	}
	um := deg(drainStream(t, uniform, 100))
	sm := deg(drainStream(t, skewed, 100))
	if sm < 3*um {
		t.Fatalf("expected stream skew to produce hubs: uniform max out-degree %d, skewed %d", um, sm)
	}
}

// TestStreamSkewResumeByteIdentical stops a skewed stream at several
// positions, round-trips the cursor through JSON, and checks the resumed
// tail matches a straight-through run edge for edge.
func TestStreamSkewResumeByteIdentical(t *testing.T) {
	cfg := Config{Nodes: 120, Edges: 700, Seed: 3, SkewAlpha: 1.3}
	full, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := drainStream(t, full, cfg.Edges)
	for _, stop := range []int{0, 1, 137, 699, 700} {
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Next(stop)
		cur, err := ParseCursor(s.Cursor().Encode())
		if err != nil {
			t.Fatal(err)
		}
		r, err := ResumeStream(cur)
		if err != nil {
			t.Fatalf("resume at %d: %v", stop, err)
		}
		got := r.Next(cfg.Edges)
		if len(got) != cfg.Edges-stop {
			t.Fatalf("resume at %d returned %d edges, want %d", stop, len(got), cfg.Edges-stop)
		}
		for i, e := range got {
			if e != want[stop+i] {
				t.Fatalf("resume at %d diverged at edge %d: got %+v, want %+v", stop, i, e, want[stop+i])
			}
		}
	}
}

// TestStreamSkewSaturatedGraph drives the sampler at full pair-space
// capacity, where every source's quota caps at Nodes-1 and the fallback
// scan must complete the shortfall — the stream still emits every edge.
func TestStreamSkewSaturatedGraph(t *testing.T) {
	n := 6
	cfg := Config{Nodes: n, Edges: int(MaxEdges(n)), Seed: 1, SkewAlpha: 2}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := drainStream(t, s, 3)
	if len(edges) != cfg.Edges {
		t.Fatalf("saturated skewed stream emitted %d edges, want %d", len(edges), cfg.Edges)
	}
	seen := make(map[[2]int]bool)
	for _, e := range edges {
		seen[[2]int{e.UIdx, e.VIdx}] = true
	}
	if len(seen) != cfg.Edges {
		t.Fatalf("saturated skewed stream emitted %d distinct edges, want %d", len(seen), cfg.Edges)
	}
}

// TestDefaultOutputUnchangedBySkewKnob pins the uniform generator's output
// at the benchmark scales: adding the SkewAlpha field (and the endpoint
// sampler indirection) must not perturb a single byte of any default
// (≤999-node) graph.
func TestDefaultOutputUnchangedBySkewKnob(t *testing.T) {
	pins := []struct {
		cfg Config
		sha string
	}{
		{Config{Nodes: 80, Edges: 80, Seed: 42}, "6833ae6e35fc5095547b904ab6cdfa11dbf5ad6b3901f67e33582a5bf2cc54d4"},
		{Config{Nodes: 999, Edges: 2000, Seed: 7}, "c0501d3392351e88e572441104452a603b32ed4aa4a5ee5831c9334af24f5d03"},
	}
	for _, pin := range pins {
		sum := sha256.Sum256([]byte(Generate(pin.cfg).Fingerprint()))
		if got := hex.EncodeToString(sum[:]); got != pin.sha {
			t.Errorf("config %+v fingerprint drifted: got %s, want %s", pin.cfg, got, pin.sha)
		}
	}
}

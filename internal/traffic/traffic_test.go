package traffic

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Nodes: 50, Edges: 60, Seed: 7})
	b := Generate(Config{Nodes: 50, Edges: 60, Seed: 7})
	if !graph.Equal(a, b) {
		t.Fatal("same seed must generate identical graphs")
	}
	c := Generate(Config{Nodes: 50, Edges: 60, Seed: 8})
	if graph.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateShape(t *testing.T) {
	g := Generate(Config{Nodes: 80, Edges: 80, Seed: 42})
	if g.NumNodes() != 80 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 80 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !g.Directed() {
		t.Fatal("communication graphs are directed")
	}
}

func TestGenerateAttrs(t *testing.T) {
	g := Generate(Config{Nodes: 30, Edges: 40, Seed: 1})
	saw1576 := false
	for _, n := range g.Nodes() {
		ip, ok := g.NodeAttrs(n)["ip"].(string)
		if !ok || strings.Count(ip, ".") != 3 {
			t.Fatalf("node %s ip = %v", n, g.NodeAttrs(n))
		}
		if strings.HasPrefix(ip, "15.76.") {
			saw1576 = true
		}
	}
	if !saw1576 {
		t.Fatal("fixed prefix 15.76 should appear")
	}
	for _, e := range g.Edges() {
		for _, attr := range []string{"bytes", "connections", "packets"} {
			v, ok := e.Attrs[attr].(int64)
			if !ok || v <= 0 {
				t.Fatalf("edge %s->%s attr %s = %v", e.U, e.V, attr, e.Attrs[attr])
			}
		}
	}
}

func TestNoSelfLoopsOrDuplicates(t *testing.T) {
	g := Generate(Config{Nodes: 20, Edges: 100, Seed: 3})
	for _, e := range g.Edges() {
		if e.U == e.V {
			t.Fatalf("self loop %s", e.U)
		}
	}
}

func TestTinyGraphs(t *testing.T) {
	g := Generate(Config{Nodes: 1, Edges: 10, Seed: 1})
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatalf("1-node graph: %v", g)
	}
	empty := Generate(Config{Nodes: 0, Edges: 0, Seed: 1})
	if empty.NumNodes() != 0 {
		t.Fatal("empty graph")
	}
}

func TestFramesRoundTrip(t *testing.T) {
	g := Generate(Config{Nodes: 25, Edges: 30, Seed: 9})
	nodes, edges := Frames(g)
	if nodes.NumRows() != g.NumNodes() || edges.NumRows() != g.NumEdges() {
		t.Fatalf("frames %dx%d vs graph %dx%d", nodes.NumRows(), edges.NumRows(), g.NumNodes(), g.NumEdges())
	}
	// Every edge row matches the graph edge attributes.
	for i := 0; i < edges.NumRows(); i++ {
		row := edges.Row(i)
		a := g.EdgeAttrs(row["src"].(string), row["dst"].(string))
		if a == nil {
			t.Fatalf("edge %v not in graph", row)
		}
		if a["bytes"] != row["bytes"] {
			t.Fatalf("bytes mismatch %v vs %v", a["bytes"], row["bytes"])
		}
	}
}

func TestDatabaseTables(t *testing.T) {
	g := Generate(Config{Nodes: 10, Edges: 12, Seed: 5})
	db := Database(g)
	f, err := db.Query("SELECT COUNT(*) AS n FROM nodes")
	if err != nil || f.Row(0)["n"] != int64(10) {
		t.Fatalf("nodes count: %v err=%v", f, err)
	}
	f, err = db.Query("SELECT COUNT(*) AS n FROM edges")
	if err != nil || f.Row(0)["n"] != int64(12) {
		t.Fatalf("edges count: %v err=%v", f, err)
	}
}

func TestWrapperDescriptions(t *testing.T) {
	g := Generate(Config{Nodes: 5, Edges: 5, Seed: 1})
	w := NewWrapper(g)
	if w.Name() == "" {
		t.Fatal("empty name")
	}
	for _, backend := range []string{"networkx", "pandas", "sql"} {
		d := w.Describe(backend)
		if !strings.Contains(d, "bytes") {
			t.Errorf("%s description missing schema: %q", backend, d)
		}
	}
	if w.Describe("networkx") == w.Describe("sql") {
		t.Fatal("descriptions must be backend-specific")
	}
}

func TestGenerateDenseConfigDeliversFullEdgeCount(t *testing.T) {
	// 20 nodes hold at most 380 directed edges; the 20x-attempts rejection
	// budget used to run out well before that and silently under-deliver.
	g, err := GenerateChecked(Config{Nodes: 20, Edges: 380, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 380 {
		t.Fatalf("dense config generated %d edges, want 380", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.U == e.V {
			t.Fatalf("self loop %s", e.U)
		}
	}
	// Same config twice stays deterministic through the completion scan.
	if !graph.Equal(g, Generate(Config{Nodes: 20, Edges: 380, Seed: 3})) {
		t.Fatal("dense generation must stay deterministic")
	}
}

func TestGenerateCheckedRejectsImpossibleEdgeCount(t *testing.T) {
	g, err := GenerateChecked(Config{Nodes: 5, Edges: 100, Seed: 1})
	if err == nil {
		t.Fatal("5 nodes cannot hold 100 edges; want error")
	}
	if g.NumEdges() != 20 {
		t.Fatalf("saturated graph has %d edges, want 20", g.NumEdges())
	}
	if _, err := GenerateChecked(Config{Nodes: 1, Edges: 10, Seed: 1}); err == nil {
		t.Fatal("1-node graph cannot hold edges; want error")
	}
}

func TestGeneratePrefixesDistinct(t *testing.T) {
	// With many prefixes the random draws used to be able to collide with
	// the fixed prefixes (all four fall inside the draw range) or each
	// other, skewing prefix-distribution queries.
	for seed := int64(0); seed < 30; seed++ {
		g := Generate(Config{Nodes: 400, Edges: 0, Seed: seed, Prefixes: 40})
		prefixes := map[string]bool{}
		for _, n := range g.Nodes() {
			ip := g.NodeAttrsView(n)["ip"].(string)
			parts := strings.SplitN(ip, ".", 3)
			prefixes[parts[0]+"."+parts[1]] = true
		}
		// 400 nodes across 40 prefixes: every prefix should be hit with
		// overwhelming probability, so distinctness shows up as exactly 40
		// observed /16s. Before the dedupe fix, colliding draws left
		// fewer.
		if len(prefixes) != 40 {
			t.Fatalf("seed %d: %d distinct /16 prefixes observed, want 40", seed, len(prefixes))
		}
	}
}

func TestGenerateIDWidthScalesPast1000Nodes(t *testing.T) {
	small := Generate(Config{Nodes: 999, Edges: 0, Seed: 1})
	if nodes := small.Nodes(); nodes[7] != "h007" || nodes[998] != "h998" {
		t.Fatalf("<=999-node IDs must keep the historical 3-digit layout, got %q/%q", nodes[7], nodes[998])
	}
	big := Generate(Config{Nodes: 1001, Edges: 0, Seed: 1})
	nodes := big.Nodes()
	if nodes[7] != "h0007" || nodes[1000] != "h1000" {
		t.Fatalf("1001-node IDs must be 4 digits wide, got %q/%q", nodes[7], nodes[1000])
	}
	if !sort.StringsAreSorted(nodes) {
		t.Fatal("node IDs must sort lexicographically in index order")
	}
	for i, tc := range []struct{ nodes, width int }{
		{0, 3}, {1, 3}, {999, 3}, {1000, 3}, {1001, 4}, {10000, 4}, {10001, 5},
	} {
		if w := IDWidth(tc.nodes); w != tc.width {
			t.Fatalf("case %d: IDWidth(%d) = %d, want %d", i, tc.nodes, w, tc.width)
		}
	}
}

func TestPropEdgeCountNeverExceedsRequested(t *testing.T) {
	f := func(seed int64, n, e uint8) bool {
		g := Generate(Config{Nodes: int(n%40) + 2, Edges: int(e % 100), Seed: seed})
		return g.NumEdges() <= int(e%100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

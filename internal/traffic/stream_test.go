package traffic

import (
	"strings"
	"testing"
)

// drain consumes the whole stream in batches of batch edges.
func drain(t *testing.T, s *Stream, batch int) []StreamEdge {
	t.Helper()
	var out []StreamEdge
	for {
		b := s.Next(batch)
		if len(b) == 0 {
			break
		}
		out = append(out, b...)
	}
	return out
}

func TestStreamExactCountNoDuplicates(t *testing.T) {
	// Dense on purpose: 20 nodes hold at most 380 edges; ask for all of
	// them. The rejection-sampling generator could fall short here; the
	// stream cannot, by construction.
	s, err := NewStream(Config{Nodes: 20, Edges: 380, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	edges := drain(t, s, 37)
	if len(edges) != 380 {
		t.Fatalf("got %d edges, want 380", len(edges))
	}
	seen := map[[2]string]bool{}
	for _, e := range edges {
		if e.U == e.V {
			t.Fatalf("self loop %s", e.U)
		}
		k := [2]string{e.U, e.V}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
		if e.Bytes <= 0 || e.Connections <= 0 || e.Packets <= 0 {
			t.Fatalf("non-positive attrs: %+v", e)
		}
	}
}

func TestStreamRejectsUnsatisfiableConfig(t *testing.T) {
	if _, err := NewStream(Config{Nodes: 5, Edges: 21, Seed: 1}); err == nil {
		t.Fatal("5 nodes cannot hold 21 edges; want error")
	}
	if _, err := NewStream(Config{Nodes: 1, Edges: 1, Seed: 1}); err == nil {
		t.Fatal("1 node cannot hold edges; want error")
	}
	if _, err := NewStream(Config{Nodes: 0, Edges: 0, Seed: 1}); err != nil {
		t.Fatalf("empty stream should be valid: %v", err)
	}
}

func TestStreamDeterministicAcrossBatchSizes(t *testing.T) {
	cfg := Config{Nodes: 500, Edges: 2000, Seed: 42}
	a, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := drain(t, a, 1), drain(t, b, 999)
	if len(ea) != len(eb) {
		t.Fatalf("len %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	c, _ := NewStream(Config{Nodes: 500, Edges: 2000, Seed: 43})
	if ec := drain(t, c, 64); ec[0] == ea[0] && ec[1] == ea[1] && ec[2] == ea[2] {
		t.Fatal("different seeds should generate different streams")
	}
}

func TestStreamResumeFromCursorByteIdentical(t *testing.T) {
	cfg := Config{Nodes: 1200, Edges: 5000, Seed: 7}
	full, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, full, 512)

	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]StreamEdge(nil), s.Next(1700)...)
	// Round-trip the cursor through its serialized form, as a stopped
	// sweep would.
	cur, err := ParseCursor(s.Cursor().Encode())
	if err != nil {
		t.Fatal(err)
	}
	if cur.Pos != 1700 {
		t.Fatalf("cursor pos = %d, want 1700", cur.Pos)
	}
	resumed, err := ResumeStream(cur)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Remaining() != int64(cfg.Edges-1700) {
		t.Fatalf("remaining = %d", resumed.Remaining())
	}
	got = append(got, drain(t, resumed, 333)...)

	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d differs after resume: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestStreamCursorValidation(t *testing.T) {
	if _, err := StreamAt(Config{Nodes: 10, Edges: 20, Seed: 1}, 21); err == nil {
		t.Fatal("position past the end must error")
	}
	if _, err := StreamAt(Config{Nodes: 10, Edges: 20, Seed: 1}, -1); err == nil {
		t.Fatal("negative position must error")
	}
	if _, err := ParseCursor("not json"); err == nil {
		t.Fatal("bad cursor must error")
	}
}

func TestStreamWideIDsSortLexicographically(t *testing.T) {
	s, err := NewStream(Config{Nodes: 1500, Edges: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NodeID(7); got != "h0007" {
		t.Fatalf("NodeID(7) = %q, want h0007 at 1500 nodes", got)
	}
	if got := s.NodeID(1499); got != "h1499" {
		t.Fatalf("NodeID(1499) = %q", got)
	}
	if s.NodeID(999) >= s.NodeID(1000) {
		t.Fatal("IDs must sort in index order")
	}
	if idx := NodeIndex(s.NodeID(1234)); idx != 1234 {
		t.Fatalf("NodeIndex round trip = %d", idx)
	}
}

func TestStreamNodeIPsDeterministicAndPrefixed(t *testing.T) {
	cfg := Config{Nodes: 100, Edges: 0, Seed: 42, Prefixes: 12}
	a, _ := NewStream(cfg)
	b, _ := NewStream(cfg)
	sawFixed := false
	for i := 0; i < cfg.Nodes; i++ {
		ip := a.NodeIP(i)
		if ip != b.NodeIP(i) {
			t.Fatalf("node %d ip not deterministic: %s vs %s", i, ip, b.NodeIP(i))
		}
		if strings.Count(ip, ".") != 3 {
			t.Fatalf("bad ip %q", ip)
		}
		if strings.HasPrefix(ip, "15.76.") {
			sawFixed = true
		}
	}
	if !sawFixed {
		t.Fatal("fixed prefix 15.76 should appear across 100 nodes")
	}
	// The prefix pool itself must be distinct.
	seen := map[string]bool{}
	for _, p := range streamPrefixes(42, 32) {
		if seen[p] {
			t.Fatalf("duplicate stream prefix %q", p)
		}
		seen[p] = true
	}
}

package traffic

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// StreamEdge is one generated edge with its traffic attributes. It is a
// plain value (no attribute map) so batches can be produced, routed to
// shards and serialized without allocation pressure.
type StreamEdge struct {
	U, V        string
	UIdx, VIdx  int
	Bytes       int64
	Connections int64
	Packets     int64
}

// Attrs materializes the edge's attribute map for graph insertion.
func (e StreamEdge) Attrs() graph.Attrs {
	return graph.Attrs{"bytes": e.Bytes, "connections": e.Connections, "packets": e.Packets}
}

// Cursor is the serializable resume point of a Stream: the generating
// config plus the next edge position. Resuming from a cursor continues the
// stream byte-identically to an uninterrupted run — every edge is a pure
// function of (config, position), so position is the only state.
type Cursor struct {
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
	Seed      int64   `json:"seed"`
	Prefixes  int     `json:"prefixes"`
	SkewAlpha float64 `json:"skew_alpha,omitempty"`
	Pos       int64   `json:"pos"`
}

// Encode renders the cursor as a compact JSON string.
func (c Cursor) Encode() string {
	b, _ := json.Marshal(c)
	return string(b)
}

// ParseCursor decodes a cursor produced by Encode.
func ParseCursor(s string) (Cursor, error) {
	var c Cursor
	if err := json.Unmarshal([]byte(s), &c); err != nil {
		return Cursor{}, fmt.Errorf("traffic: bad cursor %q: %w", s, err)
	}
	return c, nil
}

// Stream generates the edges of a synthetic communication graph as a
// deterministic, seeded, resumable sequence. Unlike Generate's rejection
// sampling, the stream walks a keyed pseudorandom permutation of the
// ordered-pair space, so it emits exactly cfg.Edges distinct edges (no
// self-loops, no duplicates, no silent shortfall) in O(1) memory — the
// scale-out path for Figure-4-style sweeps that no longer fit a single
// in-memory build. Streams with the same config are byte-identical
// regardless of batch sizes or stop/resume points.
//
// With cfg.SkewAlpha > 1 the stream draws hub-heavy edges instead: each
// source's edge quota follows a Zipf(SkewAlpha) distribution over the node
// index space (largest-remainder rounded so quotas sum to exactly
// cfg.Edges) and its destinations are Zipf-drawn without replacement, so
// distinctness is preserved by construction. The skewed sampler keeps
// O(Nodes + max-quota) state rather than O(1), and a resumed skewed stream
// re-derives its per-source position from the quota table (O(Nodes) work,
// still byte-identical).
type Stream struct {
	cfg      Config
	width    int      // node-ID digit width (IDWidth)
	prefixes []string // node-IP /16 prefixes, distinct by construction
	max      uint64   // ordered-pair space size: Nodes*(Nodes-1)
	halfBits uint     // Feistel half width; domain is 1<<(2*halfBits)
	halfMask uint64
	keys     [feistelRounds]uint64
	pos      int64      // next edge position in [0, cfg.Edges]
	sk       *skewState // non-nil iff cfg.SkewAlpha > 1
}

// skewState is the skewed sampler's iteration state: the per-source edge
// quotas plus the current source's destination list and offset.
type skewState struct {
	quotas []int64 // per-source edge counts, summing to cfg.Edges
	src    int     // current source node index
	dests  []int   // current source's destinations, draw order
	di     int     // next index into dests
}

const feistelRounds = 4

// NewStream validates cfg and positions a stream at edge 0. It errors when
// cfg.Edges exceeds MaxEdges(cfg.Nodes) — a stream can never fall short of
// the requested edge count, so an unsatisfiable request fails up front.
func NewStream(cfg Config) (*Stream, error) {
	return StreamAt(cfg, 0)
}

// ResumeStream reopens a stream at a cursor's position.
func ResumeStream(c Cursor) (*Stream, error) {
	return StreamAt(Config{Nodes: c.Nodes, Edges: c.Edges, Seed: c.Seed, Prefixes: c.Prefixes, SkewAlpha: c.SkewAlpha}, c.Pos)
}

// StreamAt opens a stream positioned at edge pos (0 <= pos <= cfg.Edges).
func StreamAt(cfg Config, pos int64) (*Stream, error) {
	if cfg.Prefixes <= 0 {
		cfg.Prefixes = 4
	}
	if cfg.Edges < 0 || cfg.Nodes < 0 {
		return nil, fmt.Errorf("traffic: negative stream config %+v", cfg)
	}
	if cfg.SkewAlpha != 0 && cfg.SkewAlpha <= 1 {
		return nil, fmt.Errorf("traffic: SkewAlpha must be > 1 (Zipf exponent), got %g", cfg.SkewAlpha)
	}
	if max := MaxEdges(cfg.Nodes); int64(cfg.Edges) > max {
		return nil, fmt.Errorf("traffic: %d nodes can hold at most %d edges, %d requested", cfg.Nodes, max, cfg.Edges)
	}
	if pos < 0 || pos > int64(cfg.Edges) {
		return nil, fmt.Errorf("traffic: stream position %d outside [0,%d]", pos, cfg.Edges)
	}
	s := &Stream{cfg: cfg, width: IDWidth(cfg.Nodes), max: uint64(MaxEdges(cfg.Nodes)), pos: pos}
	for s.halfBits = 1; uint64(1)<<(2*s.halfBits) < s.max; s.halfBits++ {
	}
	s.halfMask = 1<<s.halfBits - 1
	for i := range s.keys {
		s.keys[i] = splitmix64(uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15*uint64(i+1))
	}
	s.prefixes = streamPrefixes(cfg.Seed, cfg.Prefixes)
	if cfg.SkewAlpha > 1 {
		// Position the skewed sampler at pos: walk the quota table to the
		// owning source and re-draw that source's destination list. The
		// replay makes resume byte-identical to a straight-through run.
		s.sk = &skewState{quotas: skewQuotas(cfg.Nodes, cfg.Edges, cfg.SkewAlpha)}
		var cum int64
		for s.sk.src < cfg.Nodes && cum+s.sk.quotas[s.sk.src] <= pos {
			cum += s.sk.quotas[s.sk.src]
			s.sk.src++
		}
		if s.sk.src < cfg.Nodes {
			s.sk.dests = s.skewDests(s.sk.src, s.sk.quotas[s.sk.src])
			s.sk.di = int(pos - cum)
		}
	}
	return s, nil
}

// Config returns the generating config.
func (s *Stream) Config() Config { return s.cfg }

// Cursor returns the serializable resume point at the current position.
func (s *Stream) Cursor() Cursor {
	return Cursor{Nodes: s.cfg.Nodes, Edges: s.cfg.Edges, Seed: s.cfg.Seed,
		Prefixes: s.cfg.Prefixes, SkewAlpha: s.cfg.SkewAlpha, Pos: s.pos}
}

// Remaining returns how many edges the stream has yet to emit.
func (s *Stream) Remaining() int64 { return int64(s.cfg.Edges) - s.pos }

// Next returns the next batch of up to n edges and advances the stream. It
// returns an empty batch once the stream is exhausted.
func (s *Stream) Next(n int) []StreamEdge {
	if r := s.Remaining(); int64(n) > r {
		n = int(r)
	}
	if n <= 0 {
		return nil
	}
	if s.sk != nil {
		return s.nextSkew(n)
	}
	out := make([]StreamEdge, n)
	for i := range out {
		out[i] = s.edgeAt(uint64(s.pos))
		s.pos++
	}
	return out
}

// nextSkew emits the next n skewed edges (n already clamped to Remaining):
// sources are consumed in index order, each contributing its quota of
// distinct destinations.
func (s *Stream) nextSkew(n int) []StreamEdge {
	out := make([]StreamEdge, 0, n)
	for len(out) < n {
		for s.sk.di >= len(s.sk.dests) {
			s.sk.src++
			s.sk.di = 0
			s.sk.dests = s.skewDests(s.sk.src, s.sk.quotas[s.sk.src])
		}
		v := s.sk.dests[s.sk.di]
		s.sk.di++
		out = append(out, s.edgeFor(s.sk.src, v, uint64(s.pos)))
		s.pos++
	}
	return out
}

// skewQuotas apportions exactly `edges` edges across sources by Zipf
// weight w(u) = 1/(u+1)^alpha via cumulative largest-remainder rounding
// (so no drift accumulates), capping each source at its out-degree
// capacity and spilling any capped remainder into spare capacity in index
// order. The result is deterministic in (nodes, edges, alpha) alone.
func skewQuotas(nodes, edges int, alpha float64) []int64 {
	quotas := make([]int64, nodes)
	if nodes < 2 || edges <= 0 {
		return quotas
	}
	weights := make([]float64, nodes)
	total := 0.0
	for u := range weights {
		weights[u] = 1 / math.Pow(float64(u+1), alpha)
		total += weights[u]
	}
	capacity := int64(nodes - 1)
	var cum float64
	var assigned int64
	for u := 0; u < nodes; u++ {
		cum += weights[u]
		q := int64(math.Round(cum/total*float64(edges))) - assigned
		if q < 0 {
			q = 0
		}
		if q > capacity {
			q = capacity
		}
		quotas[u] = q
		assigned += q
	}
	for u := 0; u < nodes && assigned < int64(edges); u++ {
		spare := capacity - quotas[u]
		if need := int64(edges) - assigned; spare > need {
			spare = need
		}
		quotas[u] += spare
		assigned += spare
	}
	return quotas
}

// skewDests draws source u's q distinct destinations: Zipf(alpha) draws
// over the destination index space (self-loop excluded by shifting draws
// at or above u), deduplicated, with a bounded attempt budget and a
// deterministic hub-order scan completing any shortfall — so the list
// always has exactly q entries and the stream can never fall short.
func (s *Stream) skewDests(u int, q int64) []int {
	if q <= 0 {
		return nil
	}
	n := s.cfg.Nodes
	out := make([]int, 0, q)
	seen := make(map[int]bool, q)
	if n > 2 {
		rng := rand.New(rand.NewSource(int64(splitmix64(uint64(s.cfg.Seed) ^ 0xa0761d6478bd642f ^ uint64(u)))))
		zipf := rand.NewZipf(rng, s.cfg.SkewAlpha, 1, uint64(n-2))
		for attempts := int64(0); int64(len(out)) < q && attempts < 30*q+100; attempts++ {
			v := int(zipf.Uint64())
			if v >= u {
				v++ // skip the self-loop, preserving Zipf rank elsewhere
			}
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	for v := 0; int64(len(out)) < q && v < n; v++ {
		if v == u || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// edgeAt computes edge number i: the permuted pair index picks distinct
// endpoints, and a per-edge hash chain draws the attributes.
func (s *Stream) edgeAt(i uint64) StreamEdge {
	p := s.permute(i)
	n1 := uint64(s.cfg.Nodes - 1)
	u := int(p / n1)
	v := int(p % n1)
	if v >= u {
		v++
	}
	return s.edgeFor(u, v, i)
}

// edgeFor assembles edge number i between fixed endpoints; attributes are
// a pure function of (seed, position), shared by both samplers.
func (s *Stream) edgeFor(u, v int, i uint64) StreamEdge {
	h := splitmix64(uint64(s.cfg.Seed) ^ 0xbf58476d1ce4e5b9 ^ i)
	h2 := splitmix64(h)
	h3 := splitmix64(h2)
	return StreamEdge{
		U: NodeID(u, s.width), V: NodeID(v, s.width),
		UIdx: u, VIdx: v,
		Bytes:       int64(1 + h%1_000_000),
		Connections: int64(1 + h2%100),
		Packets:     int64(1 + h3%10_000),
	}
}

// permute maps an edge position into the ordered-pair space [0, max)
// bijectively: a 4-round Feistel network over the enclosing power-of-four
// domain, cycle-walked until the image lands inside the pair space. The
// domain is at most 4*max, so the walk terminates in a few steps.
func (s *Stream) permute(i uint64) uint64 {
	for {
		l, r := i>>s.halfBits, i&s.halfMask
		for round := 0; round < feistelRounds; round++ {
			l, r = r, l^(splitmix64(r^s.keys[round])&s.halfMask)
		}
		i = l<<s.halfBits | r
		if i < s.max {
			return i
		}
	}
}

// NodeID returns the canonical ID of node index i.
func (s *Stream) NodeID(i int) string { return NodeID(i, s.width) }

// NodeIP returns node i's deterministic "ip" attribute. Like edges, node
// attributes are pure functions of (seed, index), so any consumer — shard
// builders, resumed sweeps — sees the same addresses without coordinating.
func (s *Stream) NodeIP(i int) string {
	h := splitmix64(uint64(s.cfg.Seed) ^ 0x94d049bb133111eb ^ uint64(i))
	h2 := splitmix64(h)
	h3 := splitmix64(h2)
	return fmt.Sprintf("%s.%d.%d", s.prefixes[h%uint64(len(s.prefixes))], h2%256, 1+h3%254)
}

// streamPrefixes builds the stream's /16 prefix set: the fixed benchmark
// prefixes followed by hash-drawn ones, deduplicated by construction.
func streamPrefixes(seed int64, count int) []string {
	prefixes := make([]string, 0, count)
	seen := make(map[string]bool, count)
	for i := 0; i < count && i < len(fixedPrefixes); i++ {
		prefixes = append(prefixes, fixedPrefixes[i])
		seen[fixedPrefixes[i]] = true
	}
	for ctr := uint64(0); len(prefixes) < count; ctr++ {
		h := splitmix64(uint64(seed) ^ 0xd6e8feb86659fd93 ^ ctr)
		p := fmt.Sprintf("%d.%d", 10+h%200, splitmix64(h)%256)
		// After ~2^20 draws the ~51200-prefix space is exhausted; accept
		// duplicates rather than spin forever.
		if !seen[p] || ctr > 1<<20 {
			prefixes = append(prefixes, p)
			seen[p] = true
		}
	}
	return prefixes
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-mixed 64-bit hash
// used to derive every stream draw from (seed, index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Package traffic implements the network traffic analysis application: a
// deterministic generator for synthetic communication graphs (the paper's
// first benchmark workload) plus the application wrapper that exposes those
// graphs to the three code-generation backends. Nodes are network endpoints
// carrying IP addresses; directed edges carry communication weights in
// bytes, connections and packets, exactly as the paper's evaluation setup
// describes.
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/dataframe"
	"repro/internal/graph"
	"repro/internal/prompt"
	"repro/internal/sqldb"
)

// Config controls synthetic communication-graph generation.
type Config struct {
	Nodes int
	Edges int
	Seed  int64
	// Prefixes is the number of distinct /16 prefixes to spread nodes
	// across (default 4).
	Prefixes int
}

// Generate builds a deterministic synthetic communication graph. Node IDs
// are "h000".."hNNN"; each node gets an "ip" attribute drawn from one of
// cfg.Prefixes /16 prefixes; each directed edge gets integer "bytes",
// "connections" and "packets" attributes.
func Generate(cfg Config) *graph.Graph {
	if cfg.Prefixes <= 0 {
		cfg.Prefixes = 4
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewDirected()
	g.GraphAttrs()["app"] = "traffic-analysis"
	// The first four prefixes are fixed so benchmark queries can reference
	// them ("15.76" appears in the paper's example queries); further
	// prefixes are drawn deterministically from the seed.
	fixed := []string{"15.76", "10.0", "192.168", "172.16"}
	prefixes := make([]string, cfg.Prefixes)
	for i := range prefixes {
		if i < len(fixed) {
			prefixes[i] = fixed[i]
		} else {
			prefixes[i] = fmt.Sprintf("%d.%d", 10+r.Intn(200), r.Intn(256))
		}
	}
	ids := make([]string, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		id := fmt.Sprintf("h%03d", i)
		ids[i] = id
		prefix := prefixes[r.Intn(len(prefixes))]
		ip := fmt.Sprintf("%s.%d.%d", prefix, r.Intn(256), 1+r.Intn(254))
		g.AddNode(id, graph.Attrs{"ip": ip})
	}
	if cfg.Nodes < 2 {
		return g
	}
	added := 0
	for attempts := 0; added < cfg.Edges && attempts < cfg.Edges*20; attempts++ {
		u := ids[r.Intn(len(ids))]
		v := ids[r.Intn(len(ids))]
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v, graph.Attrs{
			"bytes":       int64(1 + r.Intn(1_000_000)),
			"connections": int64(1 + r.Intn(100)),
			"packets":     int64(1 + r.Intn(10_000)),
		})
		added++
	}
	return g
}

// Frames converts a communication graph into the node/edge dataframes the
// pandas backend operates on. The node frame has columns (id, ip); the edge
// frame has (src, dst, bytes, connections, packets).
func Frames(g *graph.Graph) (nodes, edges *dataframe.Frame) {
	nodes = dataframe.New("id", "ip")
	for _, n := range g.Nodes() {
		// Read-only views: frame building copies the values out, so it
		// must not force copy-on-write copies of the attribute maps.
		attrs := g.NodeAttrsView(n)
		ip, _ := attrs["ip"].(string)
		nodes.AppendRow(n, ip)
	}
	edges = dataframe.New("src", "dst", "bytes", "connections", "packets")
	for _, e := range g.EdgesView() {
		edges.AppendRow(e.U, e.V, e.Attrs["bytes"], e.Attrs["connections"], e.Attrs["packets"])
	}
	return nodes, edges
}

// Database converts a communication graph into the relational form the SQL
// backend queries: tables "nodes" and "edges" with the same schemas as
// Frames.
func Database(g *graph.Graph) *sqldb.DB {
	db := sqldb.NewDB()
	nodes, edges := Frames(g)
	db.CreateTable("nodes", nodes)
	db.CreateTable("edges", edges)
	return db
}

// Wrapper is the traffic-analysis application wrapper (framework box 1):
// it owns the graph and describes the data model to the prompt generator.
type Wrapper struct {
	G *graph.Graph
}

// NewWrapper wraps g.
func NewWrapper(g *graph.Graph) *Wrapper { return &Wrapper{G: g} }

// Name identifies the application.
func (w *Wrapper) Name() string { return "network traffic analysis" }

// Graph returns the application's communication graph.
func (w *Wrapper) Graph() *graph.Graph { return w.G }

// Describe returns the natural-language data-model description injected
// into prompts, specialized per backend.
func (w *Wrapper) Describe(backend string) string {
	common := "The data is a directed communication graph. Nodes are network " +
		"endpoints; each node has attribute \"ip\" (dotted IPv4 string). Each " +
		"directed edge represents observed traffic and has integer attributes " +
		"\"bytes\", \"connections\" and \"packets\"."
	networkx := " A variable `graph` is bound to the graph object. " +
		"Available methods include nodes(), edges(), node(id), edge(u, v), " +
		"degree(id), in_degree(id), out_degree(id), neighbors(id), " +
		"add_node(id, attrs), add_edge(u, v, attrs), remove_node(id), " +
		"remove_edge(u, v), set_node_attr(id, key, value), " +
		"shortest_path(u, v), hop_count(u, v), connected_components(), " +
		"subgraph(ids), weighted_degree(id, attr), top_n_by_degree(n), " +
		"degree_centrality(), pagerank() and clustering(). " +
		"edges() yields edge objects with .src, .dst and .attrs."
	pandas := " Two dataframes are bound: `nodes_df` with columns " +
		"(id, ip) and `edges_df` with columns (src, dst, bytes, " +
		"connections, packets). Frames support filter(fn), filter_eq(col, " +
		"v), sort_values(cols..., ascending), select(cols...), head(n), " +
		"groupby(cols...).agg([col, fn, name]...), merge(other, lk, rk), " +
		"mutate(col, fn), sum/mean/min/max(col), unique(col), " +
		"value_counts(col), records(), cell(i, col) and set_cell(i, col, v)."
	sql := " A variable `db` is bound to a SQL database with " +
		"tables nodes(id, ip) and edges(src, dst, bytes, connections, " +
		"packets). Use db.query(\"SELECT ...\") for reads and " +
		"db.exec(\"UPDATE/INSERT/DELETE ...\") for writes; query() returns " +
		"a frame with num_rows(), cell(i, col) and records()."
	switch backend {
	case "networkx":
		return common + networkx
	case "pandas":
		return common + pandas
	case "sql":
		return common + sql
	case "federated":
		return common + networkx + pandas + sql + prompt.FederatedPlannerDoc
	default:
		return common
	}
}

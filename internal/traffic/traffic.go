// Package traffic implements the network traffic analysis application: a
// deterministic generator for synthetic communication graphs (the paper's
// first benchmark workload) plus the application wrapper that exposes those
// graphs to the three code-generation backends. Nodes are network endpoints
// carrying IP addresses; directed edges carry communication weights in
// bytes, connections and packets, exactly as the paper's evaluation setup
// describes.
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/dataframe"
	"repro/internal/graph"
	"repro/internal/prompt"
	"repro/internal/sqldb"
)

// Config controls synthetic communication-graph generation.
type Config struct {
	Nodes int
	Edges int
	Seed  int64
	// Prefixes is the number of distinct /16 prefixes to spread nodes
	// across (default 4).
	Prefixes int
	// SkewAlpha, when > 1, draws both edge endpoints from a
	// Zipf(s=SkewAlpha) distribution over the node index space instead of
	// uniformly, producing the degree-skewed (power-law) communication
	// graphs real networks exhibit — low-index nodes become hubs. 0 (the
	// default) keeps the historical uniform generator and its outputs
	// byte-identical; values in (0, 1] are rejected (the Zipf sampler
	// needs s > 1). Streamed generation (NewStream) honors skew too: each
	// source's quota is Zipf-apportioned and its destinations Zipf-drawn
	// without replacement, so the stream still emits exactly Edges
	// distinct edges.
	//
	// Skew is meaningful in the sparse regime. When the requested edge
	// count approaches what the hub pairs can hold (dense configs, or
	// extreme alphas on small node sets), the duplicate-rejection budget
	// exhausts and the deterministic completion scan fills the remainder
	// uniformly, diluting the skew — the edge count is always honored,
	// the distribution only as far as distinctness allows.
	SkewAlpha float64
}

// fixedPrefixes are the /16 prefixes benchmark queries can reference by
// name ("15.76" appears in the paper's example queries); generators only
// draw additional prefixes beyond these.
var fixedPrefixes = []string{"15.76", "10.0", "192.168", "172.16"}

// IDWidth returns the zero-padded digit width of node IDs for a graph of
// the given node count: 3 digits up to 1000 nodes (the historical "h000"
// layout, kept so small-config outputs stay byte-identical), widening once
// the largest index needs more digits so that node IDs always sort
// lexicographically in index order.
func IDWidth(nodes int) int {
	width := 3
	for max := nodes - 1; max >= 1000; max /= 10 {
		width++
	}
	return width
}

// NodeID renders the canonical node ID for index i at the given width.
func NodeID(i, width int) string { return fmt.Sprintf("h%0*d", width, i) }

// NodeIndex parses a canonical node ID back to its index, or -1 if id is
// not of the "h<digits>" form.
func NodeIndex(id string) int {
	if len(id) < 2 || id[0] != 'h' {
		return -1
	}
	n := 0
	for i := 1; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// MaxEdges returns the number of distinct directed edges (no self-loops) a
// graph with n nodes can hold.
func MaxEdges(n int) int64 {
	if n < 2 {
		return 0
	}
	return int64(n) * int64(n-1)
}

// Generate builds a deterministic synthetic communication graph. Node IDs
// are "h000".."hNNN" (the width grows past 1000 nodes so IDs keep sorting
// lexicographically in index order); each node gets an "ip" attribute drawn
// from one of cfg.Prefixes /16 prefixes; each directed edge gets integer
// "bytes", "connections" and "packets" attributes.
//
// Generate always produces exactly min(cfg.Edges, MaxEdges(cfg.Nodes))
// edges: when rejection sampling runs out of budget on dense configs the
// remaining edges are filled in deterministically. Use GenerateChecked to
// treat an unsatisfiable cfg.Edges as an error instead of saturating.
func Generate(cfg Config) *graph.Graph {
	g, _ := GenerateChecked(cfg)
	return g
}

// GenerateChecked is Generate, but reports an error when cfg.Edges exceeds
// the number of distinct directed edges the node set can hold (the graph is
// still returned, saturated at that maximum).
func GenerateChecked(cfg Config) (*graph.Graph, error) {
	if cfg.Prefixes <= 0 {
		cfg.Prefixes = 4
	}
	if cfg.SkewAlpha != 0 && cfg.SkewAlpha <= 1 {
		return nil, fmt.Errorf("traffic: SkewAlpha must be > 1 (Zipf exponent), got %g", cfg.SkewAlpha)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewDirected()
	g.GraphAttrs()["app"] = "traffic-analysis"
	prefixes := drawPrefixes(r, cfg.Prefixes)
	width := IDWidth(cfg.Nodes)
	ids := make([]string, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		id := NodeID(i, width)
		ids[i] = id
		prefix := prefixes[r.Intn(len(prefixes))]
		ip := fmt.Sprintf("%s.%d.%d", prefix, r.Intn(256), 1+r.Intn(254))
		g.AddNode(id, graph.Attrs{"ip": ip})
	}
	if cfg.Nodes < 2 {
		if cfg.Edges > 0 {
			return g, fmt.Errorf("traffic: %d nodes cannot hold %d edges", cfg.Nodes, cfg.Edges)
		}
		return g, nil
	}
	// Endpoint sampler: uniform by default; Zipf over node indices when
	// the degree-skew knob is set. The skewed draw replaces only the index
	// selection — attribute draws and the completion scan are shared — so
	// cfg.SkewAlpha == 0 consumes the exact historical RNG sequence and
	// keeps every default output byte-identical.
	pick := func() int { return r.Intn(len(ids)) }
	if cfg.SkewAlpha > 1 {
		zipf := rand.NewZipf(r, cfg.SkewAlpha, 1, uint64(cfg.Nodes-1))
		pick = func() int { return int(zipf.Uint64()) }
	}
	added := 0
	for attempts := 0; added < cfg.Edges && attempts < cfg.Edges*20; attempts++ {
		u := ids[pick()]
		v := ids[pick()]
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v, edgeAttrs(r))
		added++
	}
	// Dense configs can exhaust the rejection budget above. Complete the
	// edge set deterministically by scanning the ordered pair space, so the
	// generator never silently falls short of a satisfiable cfg.Edges. The
	// scan only runs in the regime where the old generator under-delivered,
	// so sparse small-config outputs are untouched.
	for u := 0; u < cfg.Nodes && added < cfg.Edges; u++ {
		for v := 0; v < cfg.Nodes && added < cfg.Edges; v++ {
			if u == v || g.HasEdge(ids[u], ids[v]) {
				continue
			}
			g.AddEdge(ids[u], ids[v], edgeAttrs(r))
			added++
		}
	}
	if added < cfg.Edges {
		return g, fmt.Errorf("traffic: %d nodes can hold at most %d edges, %d requested (generated %d)",
			cfg.Nodes, MaxEdges(cfg.Nodes), cfg.Edges, added)
	}
	return g, nil
}

// edgeAttrs draws one edge's attribute set from r (three draws, in the
// byte/connection/packet order the original generator used).
func edgeAttrs(r *rand.Rand) graph.Attrs {
	return graph.Attrs{
		"bytes":       int64(1 + r.Intn(1_000_000)),
		"connections": int64(1 + r.Intn(100)),
		"packets":     int64(1 + r.Intn(10_000)),
	}
}

// drawPrefixes returns the fixed prefixes followed by count-4 distinct
// random ones. A random draw that collides with a fixed prefix or an
// earlier draw is redrawn, so prefix-distribution queries see exactly
// `count` distinct prefixes; redraws consume extra RNG state only on
// collision, which preserves the draw sequence (and so the generated
// graphs) of every collision-free config.
func drawPrefixes(r *rand.Rand, count int) []string {
	prefixes := make([]string, count)
	seen := make(map[string]bool, count)
	for i := range prefixes {
		if i < len(fixedPrefixes) {
			prefixes[i] = fixedPrefixes[i]
			seen[prefixes[i]] = true
			continue
		}
		p := fmt.Sprintf("%d.%d", 10+r.Intn(200), r.Intn(256))
		for retries := 0; seen[p] && retries < 64; retries++ {
			p = fmt.Sprintf("%d.%d", 10+r.Intn(200), r.Intn(256))
		}
		if seen[p] {
			// Random redraws keep colliding (the pool is nearly full):
			// sweep the 200*256-prefix draw space deterministically for the
			// first unseen prefix, so a duplicate is emitted only when a
			// caller asks for more prefixes than the space can supply.
			for a := 10; a < 210 && seen[p]; a++ {
				for b := 0; b < 256; b++ {
					if q := fmt.Sprintf("%d.%d", a, b); !seen[q] {
						p = q
						break
					}
				}
			}
		}
		prefixes[i] = p
		seen[p] = true
	}
	return prefixes
}

// Frames converts a communication graph into the node/edge dataframes the
// pandas backend operates on. The node frame has columns (id, ip); the edge
// frame has (src, dst, bytes, connections, packets).
func Frames(g *graph.Graph) (nodes, edges *dataframe.Frame) {
	nodes = dataframe.New("id", "ip")
	for _, n := range g.Nodes() {
		// Read-only views: frame building copies the values out, so it
		// must not force copy-on-write copies of the attribute maps.
		attrs := g.NodeAttrsView(n)
		ip, _ := attrs["ip"].(string)
		nodes.AppendRow(n, ip)
	}
	edges = dataframe.New("src", "dst", "bytes", "connections", "packets")
	for _, e := range g.EdgesView() {
		edges.AppendRow(e.U, e.V, e.Attrs["bytes"], e.Attrs["connections"], e.Attrs["packets"])
	}
	return nodes, edges
}

// Database converts a communication graph into the relational form the SQL
// backend queries: tables "nodes" and "edges" with the same schemas as
// Frames.
func Database(g *graph.Graph) *sqldb.DB {
	db := sqldb.NewDB()
	nodes, edges := Frames(g)
	db.CreateTable("nodes", nodes)
	db.CreateTable("edges", edges)
	return db
}

// Wrapper is the traffic-analysis application wrapper (framework box 1):
// it owns the graph and describes the data model to the prompt generator.
type Wrapper struct {
	G *graph.Graph
}

// NewWrapper wraps g.
func NewWrapper(g *graph.Graph) *Wrapper { return &Wrapper{G: g} }

// Name identifies the application.
func (w *Wrapper) Name() string { return "network traffic analysis" }

// Graph returns the application's communication graph.
func (w *Wrapper) Graph() *graph.Graph { return w.G }

// Describe returns the natural-language data-model description injected
// into prompts, specialized per backend.
func (w *Wrapper) Describe(backend string) string {
	common := "The data is a directed communication graph. Nodes are network " +
		"endpoints; each node has attribute \"ip\" (dotted IPv4 string). Each " +
		"directed edge represents observed traffic and has integer attributes " +
		"\"bytes\", \"connections\" and \"packets\"."
	networkx := " A variable `graph` is bound to the graph object. " +
		"Available methods include nodes(), edges(), node(id), edge(u, v), " +
		"degree(id), in_degree(id), out_degree(id), neighbors(id), " +
		"add_node(id, attrs), add_edge(u, v, attrs), remove_node(id), " +
		"remove_edge(u, v), set_node_attr(id, key, value), " +
		"shortest_path(u, v), hop_count(u, v), connected_components(), " +
		"subgraph(ids), weighted_degree(id, attr), top_n_by_degree(n), " +
		"degree_centrality(), pagerank() and clustering(). " +
		"edges() yields edge objects with .src, .dst and .attrs."
	pandas := " Two dataframes are bound: `nodes_df` with columns " +
		"(id, ip) and `edges_df` with columns (src, dst, bytes, " +
		"connections, packets). Frames support filter(fn), filter_eq(col, " +
		"v), sort_values(cols..., ascending), select(cols...), head(n), " +
		"groupby(cols...).agg([col, fn, name]...), merge(other, lk, rk), " +
		"mutate(col, fn), sum/mean/min/max(col), unique(col), " +
		"value_counts(col), records(), cell(i, col) and set_cell(i, col, v)."
	sql := " A variable `db` is bound to a SQL database with " +
		"tables nodes(id, ip) and edges(src, dst, bytes, connections, " +
		"packets). Use db.query(\"SELECT ...\") for reads and " +
		"db.exec(\"UPDATE/INSERT/DELETE ...\") for writes; query() returns " +
		"a frame with num_rows(), cell(i, col) and records()."
	switch backend {
	case "networkx":
		return common + networkx
	case "pandas":
		return common + pandas
	case "sql":
		return common + sql
	case "federated":
		return common + networkx + pandas + sql + prompt.FederatedPlannerDoc
	default:
		return common
	}
}

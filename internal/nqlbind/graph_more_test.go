package nqlbind

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/nql"
)

func chainGraph() *graph.Graph {
	g := graph.NewDirected()
	g.AddEdge("a", "b", graph.Attrs{"w": 1})
	g.AddEdge("b", "c", graph.Attrs{"w": 1})
	g.AddEdge("c", "d", graph.Attrs{"w": 1})
	g.AddNode("island", nil)
	return g
}

func TestHasPathBinding(t *testing.T) {
	g := chainGraph()
	v := mustRun(t, g, `return [graph.has_path("a", "d"), graph.has_path("d", "a"), graph.has_path("a", "island"), graph.has_path("ghost", "a")]`)
	l := v.(*nql.List)
	want := []bool{true, false, false, false}
	for i, w := range want {
		if l.Items[i] != w {
			t.Fatalf("has_path[%d] = %v, want %v (%s)", i, l.Items[i], w, nql.Repr(v))
		}
	}
}

func TestComponentsBinding(t *testing.T) {
	g := chainGraph()
	v := mustRun(t, g, `
let comps = graph.connected_components()
return [len(comps), len(comps[0]), comps[1][0]]`)
	l := v.(*nql.List)
	if l.Items[0] != int64(2) || l.Items[1] != int64(4) || l.Items[2] != "island" {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestSCCAndTopoBindings(t *testing.T) {
	g := chainGraph()
	v := mustRun(t, g, `
let order = graph.topological_sort()
let sccs = graph.strongly_connected_components()
return [order[0], len(sccs)]`)
	l := v.(*nql.List)
	if l.Items[0] != "a" && l.Items[0] != "island" {
		t.Fatalf("topo head = %v", l.Items[0])
	}
	if l.Items[1] != int64(5) { // all singletons in a DAG
		t.Fatalf("sccs = %v", l.Items[1])
	}
	// Cycle makes topological_sort error with value class.
	g.AddEdge("d", "a", nil)
	_, err := runWithGraph(t, g, `return graph.topological_sort()`)
	if err == nil || nql.ClassOf(err) != "value" {
		t.Fatalf("err = %v", err)
	}
}

func TestReverseToUndirectedBindings(t *testing.T) {
	g := chainGraph()
	v := mustRun(t, g, `
let r = graph.reverse()
let u = graph.to_undirected()
return [r.has_edge("b", "a"), u.directed, graph.directed]`)
	l := v.(*nql.List)
	if l.Items[0] != true || l.Items[1] != false || l.Items[2] != true {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestDensityIsolatesSelfLoops(t *testing.T) {
	g := chainGraph()
	g.AddEdge("d", "d", nil)
	v := mustRun(t, g, `
return [graph.isolated_nodes(), len(graph.self_loops()), graph.has_cycle(), graph.density() > 0]`)
	l := v.(*nql.List)
	iso := l.Items[0].(*nql.List)
	if len(iso.Items) != 1 || iso.Items[0] != "island" {
		t.Fatalf("isolates = %s", nql.Repr(l.Items[0]))
	}
	if l.Items[1] != int64(1) || l.Items[2] != true || l.Items[3] != true {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestDiameterAvgPathBindings(t *testing.T) {
	g := chainGraph()
	v := mustRun(t, g, `return [graph.diameter(), graph.average_shortest_path_length() > 0]`)
	l := v.(*nql.List)
	if l.Items[0] != int64(3) || l.Items[1] != true {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestCentralityBindings(t *testing.T) {
	g := chainGraph()
	v := mustRun(t, g, `
let bc = graph.betweenness_centrality()
let cc = graph.closeness_centrality()
let cl = graph.clustering()
let avg = graph.average_clustering()
return [len(keys(bc)), len(keys(cc)), len(keys(cl)), avg]`)
	l := v.(*nql.List)
	if l.Items[0] != int64(5) || l.Items[1] != int64(5) || l.Items[2] != int64(5) {
		t.Fatalf("got %s", nql.Repr(v))
	}
	if l.Items[3] != 0.0 { // chain has no triangles
		t.Fatalf("avg clustering = %v", l.Items[3])
	}
}

func TestLenOfGraphAndFrame(t *testing.T) {
	g := chainGraph()
	v := mustRun(t, g, `return len(graph)`)
	if v != int64(5) {
		t.Fatalf("len(graph) = %v", v)
	}
}

func TestRemoveEdgeBinding(t *testing.T) {
	g := chainGraph()
	mustRun(t, g, `graph.remove_edge("a", "b")`)
	if g.HasEdge("a", "b") {
		t.Fatal("edge not removed")
	}
	_, err := runWithGraph(t, g, `graph.remove_edge("a", "b")`)
	if err == nil || nql.ClassOf(err) != "value" {
		t.Fatalf("err = %v", err)
	}
}

func TestAddNodeWithBadAttrs(t *testing.T) {
	g := chainGraph()
	_, err := runWithGraph(t, g, `graph.add_node("x", "not-a-map")`)
	if err == nil || nql.ClassOf(err) != "argument" {
		t.Fatalf("err = %v", err)
	}
	_, err = runWithGraph(t, g, `graph.add_edge("x", "y", {1: "bad-key"})`)
	if err == nil || nql.ClassOf(err) != "argument" {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedAttrValues(t *testing.T) {
	g := chainGraph()
	v := mustRun(t, g, `
graph.node("a")["tags"] = ["x", "y"]
graph.node("a")["meta"] = {"k": 1}
return [graph.node("a")["tags"][1], graph.node("a")["meta"]["k"]]`)
	l := v.(*nql.List)
	if l.Items[0] != "y" || l.Items[1] != int64(1) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

// A view taken before its node/edge is removed must keep working: reads
// answer from the last observed map and writes detach onto a private copy
// (they must never panic, and never corrupt copy-on-write shared storage).
func TestAttrViewSurvivesRemoval(t *testing.T) {
	g := chainGraph()
	v := mustRun(t, g, `
let e = graph.edge("a", "b")
graph.remove_edge("a", "b")
e["w"] = 2
let n = graph.node("c")
graph.remove_node("c")
n["tag"] = "gone"
return [e["w"], n["tag"]]`)
	l := v.(*nql.List)
	if l.Items[0] != int64(2) || l.Items[1] != "gone" {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

// The same write-after-remove against a frozen master's clone must leave
// the master untouched.
func TestAttrViewRemovalDoesNotCorruptFrozenMaster(t *testing.T) {
	master := chainGraph()
	master.Freeze()
	clone := master.Clone()
	if _, err := runWithGraph(t, clone, `
let e = graph.edge("a", "b")
graph.remove_edge("a", "b")
e["w"] = 99
return nil`); err != nil {
		t.Fatal(err)
	}
	if !master.HasEdge("a", "b") {
		t.Fatal("master lost edge")
	}
	if w := master.EdgeAttrsView("a", "b")["w"]; w != int64(1) {
		t.Fatalf("master edge attribute w = %v, clone's orphan write leaked through", w)
	}
}

// Package nqlbind exposes the execution substrates (graph, dataframe, SQL
// database) to NQL scripts as host objects. These bindings are the
// "NetworkX / pandas / SQL libraries" that LLM-generated code calls: method
// names deliberately mirror the Python APIs the paper's generated programs
// use, and missing attributes/methods surface as categorized NQL attribute
// errors so the benchmark reproduces the paper's failure taxonomy.
package nqlbind

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/nql"
)

// GraphObject wraps graph.Graph for NQL scripts.
type GraphObject struct {
	G *graph.Graph
	// methods memoizes bound-method values per name: generated programs
	// call the same few members in loops, and building a fresh closure per
	// access dominated the binding's allocation profile. A GraphObject is
	// only ever used by the single interpreter that owns its sandbox run,
	// so the cache needs no locking.
	methods map[string]nql.Value
	// boxedNodes memoizes node IDs pre-converted to nql values, valid
	// while the graph's structural version is unchanged; nodes() then
	// copies the slice instead of re-boxing every ID.
	boxedNodes   []nql.Value
	boxedVersion uint64
}

// nodeList returns a fresh list of node IDs, reusing boxed ID values
// across calls while the node/edge set is unchanged.
func (o *GraphObject) nodeList() *nql.List {
	if o.boxedNodes == nil || o.boxedVersion != o.G.Version() {
		ids := o.G.Nodes()
		boxed := make([]nql.Value, len(ids))
		for i, id := range ids {
			boxed[i] = id
		}
		o.boxedNodes = boxed
		o.boxedVersion = o.G.Version()
	}
	items := make([]nql.Value, len(o.boxedNodes))
	copy(items, o.boxedNodes)
	return nql.NewList(items...)
}

// NewGraphObject wraps g.
func NewGraphObject(g *graph.Graph) *GraphObject { return &GraphObject{G: g} }

// TypeName implements nql.Object.
func (o *GraphObject) TypeName() string { return "graph" }

// String renders a short summary.
func (o *GraphObject) String() string { return o.G.String() }

// Size implements nql.Sizer: len(graph) is the node count, like NetworkX.
func (o *GraphObject) Size() int { return o.G.NumNodes() }

func method(name string, fn func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error)) *nql.Builtin {
	return &nql.Builtin{Name: name, Fn: fn}
}

func argCount(line int, name string, want string, got int) error {
	return &nql.RuntimeError{Class: nql.ErrArg, Line: line, Msg: fmt.Sprintf("%s() takes %s argument(s), got %d", name, want, got)}
}

func wantString(line int, name, param string, v nql.Value) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", &nql.RuntimeError{Class: nql.ErrArg, Line: line,
			Msg: fmt.Sprintf("%s() %s must be a string, got %s", name, param, nql.TypeName(v))}
	}
	return s, nil
}

func wantInt(line int, name, param string, v nql.Value) (int64, error) {
	n, ok := v.(int64)
	if !ok {
		return 0, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
			Msg: fmt.Sprintf("%s() %s must be an int, got %s", name, param, nql.TypeName(v))}
	}
	return n, nil
}

func runtimeErr(class nql.ErrClass, line int, err error) error {
	return &nql.RuntimeError{Class: class, Line: line, Msg: err.Error()}
}

func stringsToList(ss []string) *nql.List {
	items := make([]nql.Value, len(ss))
	for i, s := range ss {
		items[i] = s
	}
	return nql.NewList(items...)
}

func floatMapToNQL(m map[string]float64) *nql.Map {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := nql.NewMap()
	for _, k := range keys {
		_ = out.Set(k, m[k])
	}
	return out
}

// Member implements nql.Object, dispatching graph methods.
func (o *GraphObject) Member(name string) (nql.Value, bool) {
	if v, ok := o.methods[name]; ok {
		return v, true
	}
	v, ok := o.member(name)
	if ok {
		if o.methods == nil {
			o.methods = make(map[string]nql.Value, 8)
		}
		o.methods[name] = v
	}
	return v, ok
}

func (o *GraphObject) member(name string) (nql.Value, bool) {
	g := o.G
	switch name {
	case "directed":
		return g.Directed(), true
	case "nodes":
		return method("nodes", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, "nodes", "0", len(args))
			}
			return o.nodeList(), nil
		}), true
	case "edges":
		return method("edges", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, "edges", "0", len(args))
			}
			// Only the endpoints are needed here; EdgesView avoids
			// forcing a copy-on-write copy of every edge attr map.
			edges := g.EdgesView()
			items := make([]nql.Value, len(edges))
			for i, e := range edges {
				items[i] = &EdgeObject{G: g, U: e.U, V: e.V}
			}
			return nql.NewList(items...), nil
		}), true
	case "number_of_nodes":
		return method("number_of_nodes", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return int64(g.NumNodes()), nil
		}), true
	case "number_of_edges":
		return method("number_of_edges", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return int64(g.NumEdges()), nil
		}), true
	case "has_node":
		return method("has_node", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "has_node", "1", len(args))
			}
			id, err := wantString(line, "has_node", "node", args[0])
			if err != nil {
				return nil, err
			}
			return g.HasNode(id), nil
		}), true
	case "has_edge":
		return method("has_edge", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "has_edge", "2", len(args))
			}
			u, err := wantString(line, "has_edge", "u", args[0])
			if err != nil {
				return nil, err
			}
			v, err := wantString(line, "has_edge", "v", args[1])
			if err != nil {
				return nil, err
			}
			return g.HasEdge(u, v), nil
		}), true
	case "add_node":
		return method("add_node", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 && len(args) != 2 {
				return nil, argCount(line, "add_node", "1 or 2", len(args))
			}
			id, err := wantString(line, "add_node", "node", args[0])
			if err != nil {
				return nil, err
			}
			attrs := graph.Attrs{}
			if len(args) == 2 {
				attrs, err = mapToAttrs(line, "add_node", args[1])
				if err != nil {
					return nil, err
				}
			}
			g.AddNode(id, attrs)
			return nil, nil
		}), true
	case "add_edge":
		return method("add_edge", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 && len(args) != 3 {
				return nil, argCount(line, "add_edge", "2 or 3", len(args))
			}
			u, err := wantString(line, "add_edge", "u", args[0])
			if err != nil {
				return nil, err
			}
			v, err := wantString(line, "add_edge", "v", args[1])
			if err != nil {
				return nil, err
			}
			attrs := graph.Attrs{}
			if len(args) == 3 {
				attrs, err = mapToAttrs(line, "add_edge", args[2])
				if err != nil {
					return nil, err
				}
			}
			g.AddEdge(u, v, attrs)
			return nil, nil
		}), true
	case "add_edge_batch":
		// Incremental update entry point for streamed datasets: applies a
		// whole edge batch (list of {src, dst, <attrs>...} maps, the shape
		// edge_stream.next() yields) in one call and returns the number of
		// edges applied.
		return method("add_edge_batch", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "add_edge_batch", "1", len(args))
			}
			batch, ok := args[0].(*nql.List)
			if !ok {
				return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
					Msg: fmt.Sprintf("add_edge_batch() batch must be a list of edge maps, got %s", nql.TypeName(args[0]))}
			}
			for _, item := range batch.Items {
				attrs, err := mapToAttrs(line, "add_edge_batch", item)
				if err != nil {
					return nil, err
				}
				u, uok := attrs["src"].(string)
				v, vok := attrs["dst"].(string)
				if !uok || !vok {
					return nil, &nql.RuntimeError{Class: nql.ErrValue, Line: line,
						Msg: "add_edge_batch() edge maps need string \"src\" and \"dst\" keys"}
				}
				delete(attrs, "src")
				delete(attrs, "dst")
				g.AddEdge(u, v, attrs)
			}
			return int64(len(batch.Items)), nil
		}), true
	case "remove_node":
		return method("remove_node", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "remove_node", "1", len(args))
			}
			id, err := wantString(line, "remove_node", "node", args[0])
			if err != nil {
				return nil, err
			}
			if err := g.RemoveNode(id); err != nil {
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			return nil, nil
		}), true
	case "remove_edge":
		return method("remove_edge", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "remove_edge", "2", len(args))
			}
			u, err := wantString(line, "remove_edge", "u", args[0])
			if err != nil {
				return nil, err
			}
			v, err := wantString(line, "remove_edge", "v", args[1])
			if err != nil {
				return nil, err
			}
			if err := g.RemoveEdge(u, v); err != nil {
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			return nil, nil
		}), true
	case "node":
		return method("node", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "node", "1", len(args))
			}
			id, err := wantString(line, "node", "node", args[0])
			if err != nil {
				return nil, err
			}
			if !g.HasNode(id) {
				return nil, &nql.RuntimeError{Class: nql.ErrValue, Line: line, Msg: fmt.Sprintf("node %q does not exist", id)}
			}
			return &AttrMapObject{g: g, u: id, kind: attrNode, m: g.NodeAttrsView(id)}, nil
		}), true
	case "edge":
		return method("edge", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "edge", "2", len(args))
			}
			u, err := wantString(line, "edge", "u", args[0])
			if err != nil {
				return nil, err
			}
			v, err := wantString(line, "edge", "v", args[1])
			if err != nil {
				return nil, err
			}
			if !g.HasEdge(u, v) {
				return nil, &nql.RuntimeError{Class: nql.ErrValue, Line: line, Msg: fmt.Sprintf("edge (%q,%q) does not exist", u, v)}
			}
			return &AttrMapObject{g: g, u: u, v: v, kind: attrEdge, m: g.EdgeAttrsView(u, v)}, nil
		}), true
	case "set_node_attr":
		return method("set_node_attr", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 3 {
				return nil, argCount(line, "set_node_attr", "3", len(args))
			}
			id, err := wantString(line, "set_node_attr", "node", args[0])
			if err != nil {
				return nil, err
			}
			key, err := wantString(line, "set_node_attr", "key", args[1])
			if err != nil {
				return nil, err
			}
			if err := g.SetNodeAttr(id, key, toGoValue(args[2])); err != nil {
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			return nil, nil
		}), true
	case "set_edge_attr":
		return method("set_edge_attr", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 4 {
				return nil, argCount(line, "set_edge_attr", "4", len(args))
			}
			u, err := wantString(line, "set_edge_attr", "u", args[0])
			if err != nil {
				return nil, err
			}
			v, err := wantString(line, "set_edge_attr", "v", args[1])
			if err != nil {
				return nil, err
			}
			key, err := wantString(line, "set_edge_attr", "key", args[2])
			if err != nil {
				return nil, err
			}
			if err := g.SetEdgeAttr(u, v, key, toGoValue(args[3])); err != nil {
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			return nil, nil
		}), true
	case "degree":
		return o.degreeMethod("degree", func(id string) int { return g.Degree(id) }), true
	case "in_degree":
		return o.degreeMethod("in_degree", func(id string) int { return g.InDegree(id) }), true
	case "out_degree":
		return o.degreeMethod("out_degree", func(id string) int { return g.OutDegree(id) }), true
	case "neighbors":
		return method("neighbors", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "neighbors", "1", len(args))
			}
			id, err := wantString(line, "neighbors", "node", args[0])
			if err != nil {
				return nil, err
			}
			if !g.HasNode(id) {
				return nil, &nql.RuntimeError{Class: nql.ErrValue, Line: line, Msg: fmt.Sprintf("node %q does not exist", id)}
			}
			return stringsToList(g.Neighbors(id)), nil
		}), true
	case "predecessors":
		return method("predecessors", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "predecessors", "1", len(args))
			}
			id, err := wantString(line, "predecessors", "node", args[0])
			if err != nil {
				return nil, err
			}
			if !g.HasNode(id) {
				return nil, &nql.RuntimeError{Class: nql.ErrValue, Line: line, Msg: fmt.Sprintf("node %q does not exist", id)}
			}
			return stringsToList(g.Predecessors(id)), nil
		}), true
	case "has_path":
		return method("has_path", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "has_path", "2", len(args))
			}
			u, err := wantString(line, "has_path", "source", args[0])
			if err != nil {
				return nil, err
			}
			v, err := wantString(line, "has_path", "target", args[1])
			if err != nil {
				return nil, err
			}
			if !g.HasNode(u) || !g.HasNode(v) {
				return false, nil
			}
			_, err = g.ShortestPath(u, v)
			return err == nil, nil
		}), true
	case "shortest_path":
		return method("shortest_path", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "shortest_path", "2", len(args))
			}
			u, err := wantString(line, "shortest_path", "source", args[0])
			if err != nil {
				return nil, err
			}
			v, err := wantString(line, "shortest_path", "target", args[1])
			if err != nil {
				return nil, err
			}
			p, err := g.ShortestPath(u, v)
			if err != nil {
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			return stringsToList(p), nil
		}), true
	case "hop_count", "shortest_path_length":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, name, "2", len(args))
			}
			u, err := wantString(line, name, "source", args[0])
			if err != nil {
				return nil, err
			}
			v, err := wantString(line, name, "target", args[1])
			if err != nil {
				return nil, err
			}
			h, err := g.HopCount(u, v)
			if err != nil {
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			return int64(h), nil
		}), true
	case "dijkstra_path":
		return method("dijkstra_path", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 3 {
				return nil, argCount(line, "dijkstra_path", "3", len(args))
			}
			u, err := wantString(line, "dijkstra_path", "source", args[0])
			if err != nil {
				return nil, err
			}
			v, err := wantString(line, "dijkstra_path", "target", args[1])
			if err != nil {
				return nil, err
			}
			w, err := wantString(line, "dijkstra_path", "weight", args[2])
			if err != nil {
				return nil, err
			}
			p, cost, err := g.DijkstraPath(u, v, w)
			if err != nil {
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			out := nql.NewMap()
			_ = out.Set("path", stringsToList(p))
			_ = out.Set("cost", cost)
			return out, nil
		}), true
	case "connected_components":
		return method("connected_components", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			comps := g.ConnectedComponents()
			items := make([]nql.Value, len(comps))
			for i, c := range comps {
				items[i] = stringsToList(c)
			}
			return nql.NewList(items...), nil
		}), true
	case "strongly_connected_components":
		return method("strongly_connected_components", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			comps := g.StronglyConnectedComponents()
			items := make([]nql.Value, len(comps))
			for i, c := range comps {
				items[i] = stringsToList(c)
			}
			return nql.NewList(items...), nil
		}), true
	case "subgraph":
		return method("subgraph", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "subgraph", "1", len(args))
			}
			l, ok := args[0].(*nql.List)
			if !ok {
				return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line, Msg: "subgraph() requires a list of node ids"}
			}
			keep := make([]string, 0, len(l.Items))
			for _, it := range l.Items {
				s, err := wantString(line, "subgraph", "node id", it)
				if err != nil {
					return nil, err
				}
				keep = append(keep, s)
			}
			return NewGraphObject(g.Subgraph(keep)), nil
		}), true
	case "clone", "copy":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return NewGraphObject(g.Clone()), nil
		}), true
	case "reverse":
		return method("reverse", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return NewGraphObject(g.Reverse()), nil
		}), true
	case "to_undirected":
		return method("to_undirected", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return NewGraphObject(g.AsUndirected()), nil
		}), true
	case "density":
		return method("density", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return g.Density(), nil
		}), true
	case "isolated_nodes", "isolates":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return stringsToList(g.IsolatedNodes()), nil
		}), true
	case "self_loops":
		return method("self_loops", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			loops := g.SelfLoops()
			items := make([]nql.Value, len(loops))
			for i, e := range loops {
				items[i] = &EdgeObject{G: g, U: e.U, V: e.V}
			}
			return nql.NewList(items...), nil
		}), true
	case "has_cycle":
		return method("has_cycle", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return g.HasCycle(), nil
		}), true
	case "topological_sort":
		return method("topological_sort", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			order, err := g.TopologicalSort()
			if err != nil {
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			return stringsToList(order), nil
		}), true
	case "diameter":
		return method("diameter", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return int64(g.Diameter()), nil
		}), true
	case "average_shortest_path_length":
		return method("average_shortest_path_length", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return g.AverageShortestPathLength(), nil
		}), true
	case "degree_centrality":
		return method("degree_centrality", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return floatMapToNQL(g.DegreeCentrality()), nil
		}), true
	case "closeness_centrality":
		return method("closeness_centrality", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return floatMapToNQL(g.ClosenessCentrality()), nil
		}), true
	case "betweenness_centrality":
		return method("betweenness_centrality", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return floatMapToNQL(g.BetweennessCentrality(true)), nil
		}), true
	case "pagerank":
		return method("pagerank", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return floatMapToNQL(g.PageRank(0.85, 100, 1e-9)), nil
		}), true
	case "clustering":
		return method("clustering", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return floatMapToNQL(g.ClusteringCoefficient()), nil
		}), true
	case "average_clustering":
		return method("average_clustering", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return g.AverageClustering(), nil
		}), true
	case "weighted_degree":
		return method("weighted_degree", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "weighted_degree", "2", len(args))
			}
			id, err := wantString(line, "weighted_degree", "node", args[0])
			if err != nil {
				return nil, err
			}
			attr, err := wantString(line, "weighted_degree", "attr", args[1])
			if err != nil {
				return nil, err
			}
			w, err := g.WeightedDegree(id, attr)
			if err != nil {
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			return w, nil
		}), true
	case "top_n_by_degree":
		return method("top_n_by_degree", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "top_n_by_degree", "1", len(args))
			}
			n, err := wantInt(line, "top_n_by_degree", "n", args[0])
			if err != nil {
				return nil, err
			}
			top := g.TopNByDegree(int(n))
			items := make([]nql.Value, len(top))
			for i, t := range top {
				items[i] = nql.NewList(t.Node, int64(t.Degree))
			}
			return nql.NewList(items...), nil
		}), true
	default:
		return nil, false
	}
}

func (o *GraphObject) degreeMethod(name string, fn func(id string) int) *nql.Builtin {
	g := o.G
	return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
		if len(args) != 1 {
			return nil, argCount(line, name, "1", len(args))
		}
		id, err := wantString(line, name, "node", args[0])
		if err != nil {
			return nil, err
		}
		if !g.HasNode(id) {
			return nil, &nql.RuntimeError{Class: nql.ErrValue, Line: line, Msg: fmt.Sprintf("node %q does not exist", id)}
		}
		return int64(fn(id)), nil
	})
}

// mapToAttrs converts an NQL map into graph attributes.
func mapToAttrs(line int, fname string, v nql.Value) (graph.Attrs, error) {
	m, ok := v.(*nql.Map)
	if !ok {
		return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
			Msg: fmt.Sprintf("%s() attributes must be a map, got %s", fname, nql.TypeName(v))}
	}
	attrs := graph.Attrs{}
	keys, vals := m.Keys(), m.Values()
	for i, k := range keys {
		ks, ok := k.(string)
		if !ok {
			return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
				Msg: fmt.Sprintf("%s() attribute keys must be strings", fname)}
		}
		attrs[ks] = toGoValue(vals[i])
	}
	return attrs, nil
}

// toGoValue converts an NQL value to the attribute domain (lists/maps
// convert recursively).
func toGoValue(v nql.Value) any {
	switch x := v.(type) {
	case *nql.List:
		out := make([]any, len(x.Items))
		for i, it := range x.Items {
			out[i] = toGoValue(it)
		}
		return out
	case *nql.Map:
		out := map[string]any{}
		keys, vals := x.Keys(), x.Values()
		for i, k := range keys {
			if ks, ok := k.(string); ok {
				out[ks] = toGoValue(vals[i])
			}
		}
		return out
	default:
		return v
	}
}

// fromGoValue converts an attribute value to NQL.
func fromGoValue(v any) nql.Value {
	switch x := v.(type) {
	case []any:
		items := make([]nql.Value, len(x))
		for i, it := range x {
			items[i] = fromGoValue(it)
		}
		return nql.NewList(items...)
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		m := nql.NewMap()
		for _, k := range keys {
			_ = m.Set(k, fromGoValue(x[k]))
		}
		return m
	case graph.Attrs:
		return fromGoValue(map[string]any(x))
	default:
		return graph.Normalize(v)
	}
}

// EdgeObject is a live view of one edge.
type EdgeObject struct {
	G    *graph.Graph
	U, V string
}

// TypeName implements nql.Object.
func (e *EdgeObject) TypeName() string { return "edge" }

// String renders "u->v".
func (e *EdgeObject) String() string { return fmt.Sprintf("edge(%s->%s)", e.U, e.V) }

// Member exposes src/dst/attrs (and u/v aliases).
func (e *EdgeObject) Member(name string) (nql.Value, bool) {
	switch name {
	case "src", "u", "source":
		return e.U, true
	case "dst", "v", "target":
		return e.V, true
	case "attrs":
		if !e.G.HasEdge(e.U, e.V) {
			return &AttrMapObject{m: graph.Attrs{}, kind: attrDetached}, true
		}
		return &AttrMapObject{g: e.G, u: e.U, v: e.V, kind: attrEdge, m: e.G.EdgeAttrsView(e.U, e.V)}, true
	default:
		return nil, false
	}
}

// AttrMapObject is a live, mutable view over a graph attribute map. Reading
// a missing key raises an attribute error — the "imaginary graph attribute"
// failure class.
//
// The view addresses its attribute map through the owning graph (node or
// edge key) rather than holding the map directly: reads then never force a
// copy-on-write copy, writes take ownership through the graph first, and
// two views of the same node always observe each other's mutations — the
// same aliasing behavior a live map reference had before COW sharing.
type AttrMapObject struct {
	g    *graph.Graph
	u, v string // node id (kind attrNode) or edge endpoints (attrEdge)
	kind uint8
	m    graph.Attrs // detached map (kind attrDetached only)
}

const (
	attrDetached uint8 = iota
	attrNode
	attrEdge
)

// view returns the current attribute map for reading only. While the
// owning node/edge exists it tracks the graph's live map; after a removal
// it keeps answering from the last observed (orphaned) map, matching the
// pre-COW behavior of holding a live map reference.
func (a *AttrMapObject) view() graph.Attrs {
	switch a.kind {
	case attrNode:
		if m := a.g.NodeAttrsView(a.u); m != nil {
			a.m = m
			return m
		}
	case attrEdge:
		if m := a.g.EdgeAttrsView(a.u, a.v); m != nil {
			a.m = m
			return m
		}
	default:
		return a.m
	}
	return a.m
}

// mutable returns the attribute map with ownership taken, for writing.
func (a *AttrMapObject) mutable() graph.Attrs {
	switch a.kind {
	case attrNode:
		if m := a.g.NodeAttrs(a.u); m != nil {
			return m
		}
	case attrEdge:
		if m := a.g.EdgeAttrs(a.u, a.v); m != nil {
			return m
		}
	default:
		return a.m
	}
	// The owner was removed after this view was taken. Detach onto a
	// private copy of the last observed map so the write still succeeds
	// (as it did when views held live map references) without touching
	// storage that may be shared copy-on-write with other graphs.
	a.m = a.m.Clone()
	if a.m == nil {
		a.m = graph.Attrs{}
	}
	a.kind = attrDetached
	return a.m
}

// describe names the map's owner in error messages; built lazily because
// the happy path never needs it.
func (a *AttrMapObject) describe() string {
	switch a.kind {
	case attrNode:
		return fmt.Sprintf("node %q", a.u)
	case attrEdge:
		return fmt.Sprintf("edge (%q,%q)", a.u, a.v)
	default:
		return "attrs"
	}
}

// TypeName implements nql.Object.
func (a *AttrMapObject) TypeName() string { return "attrs" }

// String renders the attribute map canonically.
func (a *AttrMapObject) String() string { return graph.CanonValue(a.view()) }

// Size implements nql.Sizer.
func (a *AttrMapObject) Size() int { return len(a.view()) }

// MapKeys implements nql.KeysValuer (sorted for determinism).
func (a *AttrMapObject) MapKeys() []nql.Value {
	attrs := a.view()
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]nql.Value, len(keys))
	for i, k := range keys {
		out[i] = k
	}
	return out
}

// MapValues implements nql.KeysValuer.
func (a *AttrMapObject) MapValues() []nql.Value {
	attrs := a.view()
	keys := a.MapKeys()
	out := make([]nql.Value, len(keys))
	for i, k := range keys {
		out[i] = fromGoValue(attrs[k.(string)])
	}
	return out
}

// Member supports `attrs.get(key, default)` and `attrs.has(key)`.
func (a *AttrMapObject) Member(name string) (nql.Value, bool) {
	switch name {
	case "get":
		return method("get", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 && len(args) != 2 {
				return nil, argCount(line, "get", "1 or 2", len(args))
			}
			k, err := wantString(line, "get", "key", args[0])
			if err != nil {
				return nil, err
			}
			if v, ok := a.view()[k]; ok {
				return fromGoValue(v), nil
			}
			if len(args) == 2 {
				return args[1], nil
			}
			return nil, nil
		}), true
	case "has":
		return method("has", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "has", "1", len(args))
			}
			k, err := wantString(line, "has", "key", args[0])
			if err != nil {
				return nil, err
			}
			_, ok := a.view()[k]
			return ok, nil
		}), true
	default:
		return nil, false
	}
}

// Index implements obj[key] reads; missing keys are attribute errors.
func (a *AttrMapObject) Index(idx nql.Value, line int) (nql.Value, error) {
	k, ok := idx.(string)
	if !ok {
		return nil, &nql.RuntimeError{Class: nql.ErrIndex, Line: line,
			Msg: fmt.Sprintf("attribute key must be a string, got %s", nql.TypeName(idx))}
	}
	v, ok := a.view()[k]
	if !ok {
		return nil, &nql.RuntimeError{Class: nql.ErrAttr, Line: line,
			Msg: fmt.Sprintf("%s has no attribute %q", a.describe(), k)}
	}
	return fromGoValue(v), nil
}

// SetIndex implements obj[key] = v writes.
func (a *AttrMapObject) SetIndex(idx, v nql.Value, line int) error {
	k, ok := idx.(string)
	if !ok {
		return &nql.RuntimeError{Class: nql.ErrIndex, Line: line,
			Msg: fmt.Sprintf("attribute key must be a string, got %s", nql.TypeName(idx))}
	}
	a.mutable()[k] = toGoValue(v)
	return nil
}

package nqlbind

import (
	"strings"
	"testing"

	"repro/internal/dataframe"
	"repro/internal/federate"
	"repro/internal/graph"
	"repro/internal/nql"
	"repro/internal/nql/analysis"
	"repro/internal/sqldb"
)

func fedGlobals() map[string]nql.Value {
	g := graph.NewDirected()
	g.AddNode("a", graph.Attrs{"ip": "10.0.0.1"})
	g.AddNode("b", graph.Attrs{"ip": "10.0.0.2"})
	g.AddNode("c", graph.Attrs{"ip": "15.76.0.3"})
	g.AddEdge("a", "b", graph.Attrs{"bytes": int64(100)})
	g.AddEdge("b", "c", graph.Attrs{"bytes": int64(250)})
	g.AddEdge("a", "c", graph.Attrs{"bytes": int64(50)})
	nodes := dataframe.New("id", "ip")
	for _, id := range g.Nodes() {
		nodes.AppendRow(id, g.NodeAttrsView(id)["ip"])
	}
	edges := dataframe.New("src", "dst", "bytes")
	for _, e := range g.EdgesView() {
		edges.AppendRow(e.U, e.V, e.Attrs["bytes"])
	}
	db := sqldb.NewDB()
	db.CreateTable("nodes", nodes.Clone())
	db.CreateTable("edges", edges.Clone())
	cat := &federate.Catalog{
		Graph:  g,
		Frames: map[string]*dataframe.Frame{"nodes": nodes, "edges": edges},
		DB:     db,
	}
	return Globals(g, map[string]nql.Value{"fed": NewFedObject(cat)})
}

func runFed(t *testing.T, src string) nql.Value {
	t.Helper()
	in := nql.NewInterp(nql.DefaultLimits, fedGlobals())
	v, err := in.Run(src)
	if err != nil {
		t.Fatalf("program failed: %v\n%s", err, src)
	}
	return v
}

func TestFedScanCollectCount(t *testing.T) {
	if v := runFed(t, `return fed.scan("sql", "nodes").count()`); !nql.ValuesEqual(v, int64(3)) {
		t.Errorf("sql count: got %s", nql.Repr(v))
	}
	if v := runFed(t, `return fed.scan("frame", "edges").filter("bytes", ">=", 100).count()`); !nql.ValuesEqual(v, int64(2)) {
		t.Errorf("frame filter count: got %s", nql.Repr(v))
	}
	v := runFed(t, `return fed.scan("graph", "nodes").filter("ip", "prefix", "15.76.").project("id").collect()`)
	if got := nql.Repr(v); got != `[{"id": "c"}]` {
		t.Errorf("graph scan: got %s", got)
	}
}

func TestFedSourcesAndTables(t *testing.T) {
	v := runFed(t, `return [fed.sources(), fed.tables("frame")]`)
	if got := nql.Repr(v); got != `[["graph", "frame", "sql"], ["edges", "nodes"]]` {
		t.Errorf("sources/tables: got %s", got)
	}
}

func TestFedCrossSubstrateJoinProgram(t *testing.T) {
	// Join the SQL edge table against graph degree, entirely from NQL.
	v := runFed(t, `
let deg = fed.scan("graph", "degree")
let rows = fed.scan("sql", "edges").join(deg, "dst", "id").sort("dst").collect()
let out = []
for r in rows { push(out, [r["dst"], r["in_degree"]]) }
return unique(out)`)
	if got := nql.Repr(v); got != `[["b", 1], ["c", 2]]` {
		t.Errorf("join program: got %s", got)
	}
}

func TestFedAggAndCell(t *testing.T) {
	v := runFed(t, `return fed.scan("sql", "edges").agg([], ["bytes", "sum", "s"]).cell(0, "s")`)
	if !nql.ValuesEqual(v, int64(400)) {
		t.Errorf("sum: got %s", nql.Repr(v))
	}
	v = runFed(t, `
let stats = fed.scan("frame", "edges").agg(["src"], ["bytes", "sum", "total"], ["bytes", "count", "n"]).sort("src").collect()
let out = []
for r in stats { push(out, [r["src"], r["total"], r["n"]]) }
return out`)
	if got := nql.Repr(v); got != `[["a", 150, 2], ["b", 250, 1]]` {
		t.Errorf("groupby: got %s", got)
	}
}

func TestFedWhereLambdaAndExplain(t *testing.T) {
	v := runFed(t, `return fed.scan("sql", "edges").where(fn(r) => r["bytes"] > 60 and r["src"] == "a").count()`)
	if !nql.ValuesEqual(v, int64(1)) {
		t.Errorf("where: got %s", nql.Repr(v))
	}
	ev := runFed(t, `return fed.scan("sql", "edges").filter("bytes", ">", 60).project("src").explain()`)
	s, ok := ev.(string)
	if !ok || !strings.Contains(s, "scan sql.edges [bytes > 60] cols=(src)") {
		t.Errorf("explain did not show pushdown: %s", nql.Repr(ev))
	}
}

func TestFedErrorsAreCategorized(t *testing.T) {
	in := nql.NewInterp(nql.DefaultLimits, fedGlobals())
	_, err := in.Run(`return fed.scan("sql", "edges").filter("ghost", "==", 1).count()`)
	if err == nil {
		t.Fatal("expected unknown-column error")
	}
	if nql.ClassOf(err) != string(nql.ErrAttr) {
		t.Errorf("unknown column class = %s, want %s (err: %v)", nql.ClassOf(err), nql.ErrAttr, err)
	}
	in = nql.NewInterp(nql.DefaultLimits, fedGlobals())
	_, err = in.Run(`return fed.scan("mongo", "edges").count()`)
	if err == nil || nql.ClassOf(err) != string(nql.ErrValue) {
		t.Errorf("unknown source: err=%v class=%s", err, nql.ClassOf(err))
	}
	in = nql.NewInterp(nql.DefaultLimits, fedGlobals())
	_, err = in.Run(`return fed.scan("sql", "edges").filter("bytes", "~", 1).count()`)
	if err == nil || nql.ClassOf(err) != string(nql.ErrArg) {
		t.Errorf("bad operator: err=%v class=%s", err, nql.ClassOf(err))
	}
}

func TestFedTwoPassSortTopK(t *testing.T) {
	v := runFed(t, `
let rows = fed.scan("graph", "degree").sort("id").sort("out_degree", false).limit(1).collect()
return rows[0]["id"]`)
	if got := nql.Repr(v); got != `"a"` {
		t.Errorf("top by out_degree: got %s", got)
	}
}

func TestFedExplainAnalyze(t *testing.T) {
	ev := runFed(t, `return fed.scan("sql", "edges").filter("bytes", ">", 60).project("src").explain_analyze()`)
	s, ok := ev.(string)
	if !ok {
		t.Fatalf("explain_analyze returned %s, want string", nql.Repr(ev))
	}
	// The rendered profile carries the optimized operator tree with row
	// counts and wall/own timings per node, the pushed-down scan included.
	if !strings.Contains(s, "scan sql.edges [bytes > 60] cols=(src)") {
		t.Errorf("explain_analyze lost the optimized plan shape:\n%s", s)
	}
	if !strings.Contains(s, "rows=2 wall=") || !strings.Contains(s, "own=") {
		t.Errorf("explain_analyze missing rows/timing annotations:\n%s", s)
	}
	// The SQL substrate's own frames nest under the federated scan.
	if !strings.Contains(s, "sql.select") {
		t.Errorf("explain_analyze missing nested sqldb frames:\n%s", s)
	}
}

// TestFedWhereStampsNoErr: a filter lambda the semantic analyzer proved
// pure and row-total arrives on the plan as a NoErr FuncPred — the proof
// that lets the pipeline-safety classifier keep join plans on the staged
// executor — while a fallible lambda (raw indexing can miss) and an
// unanalyzed program both stay conservative.
func TestFedWhereStampsNoErr(t *testing.T) {
	join := `fed.scan("sql", "edges").join(fed.scan("sql", "edges"), "dst", "src")`
	cases := []struct {
		pred    string
		analyze bool
		noerr   bool
	}{
		{`fn(r) => get(r, "src", "") != "zzz"`, true, true},
		{`fn(r) => r["bytes"] > 60`, true, false},
		{`fn(r) => get(r, "src", "") != "zzz"`, false, false},
	}
	for _, c := range cases {
		src := "return " + join + ".where(" + c.pred + ")"
		prog, err := nql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if c.analyze {
			analysis.Analyze(prog, analysis.Options{})
		}
		in := nql.NewInterp(nql.DefaultLimits, fedGlobals())
		v, err := in.RunProgram(prog)
		if err != nil {
			t.Fatalf("program failed: %v\n%s", err, src)
		}
		po, ok := v.(*PlanObject)
		if !ok {
			t.Fatalf("result %T, want plan", v)
		}
		filter, ok := po.Plan.(*federate.Filter)
		if !ok {
			t.Fatalf("plan root %T, want filter", po.Plan)
		}
		fp, ok := filter.Pred.(federate.FuncPred)
		if !ok {
			t.Fatalf("pred %T, want FuncPred", filter.Pred)
		}
		if fp.NoErr != c.noerr {
			t.Errorf("pred %s (analyzed=%v): NoErr = %v, want %v",
				c.pred, c.analyze, fp.NoErr, c.noerr)
		}
	}
}

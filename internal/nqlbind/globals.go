package nqlbind

import (
	"repro/internal/graph"
	"repro/internal/nql"
)

// Globals assembles the standard host environment for a generated program:
// whichever of g, nodes/edges frames and db are non-nil get bound under the
// conventional names the prompt generator documents ("graph", "nodes_df",
// "edges_df", "db"), plus shared analytics helpers (kmeans).
func Globals(g *graph.Graph, bindings map[string]nql.Value) map[string]nql.Value {
	out := map[string]nql.Value{}
	if g != nil {
		out["graph"] = NewGraphObject(g)
	}
	for k, v := range bindings {
		out[k] = v
	}
	out["kmeans"] = kmeansShared
	return out
}

// kmeansShared is the one kmeans builtin instance: it is stateless, so
// every sandbox run shares it instead of rebuilding the closure.
var kmeansShared = kmeansBuiltin()

// kmeansBuiltin exposes deterministic 1-D k-means: kmeans(values, k) returns
// the cluster index per value (0..k-1, ordered by ascending centroid).
func kmeansBuiltin() *nql.Builtin {
	return method("kmeans", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
		if len(args) != 2 {
			return nil, argCount(line, "kmeans", "2", len(args))
		}
		l, ok := args[0].(*nql.List)
		if !ok {
			return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line, Msg: "kmeans() first argument must be a list of numbers"}
		}
		k, err := wantInt(line, "kmeans", "k", args[1])
		if err != nil {
			return nil, err
		}
		if k <= 0 {
			return nil, &nql.RuntimeError{Class: nql.ErrValue, Line: line, Msg: "kmeans() k must be positive"}
		}
		vals := make([]float64, len(l.Items))
		for i, it := range l.Items {
			switch x := it.(type) {
			case int64:
				vals[i] = float64(x)
			case float64:
				vals[i] = x
			default:
				return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line, Msg: "kmeans() values must be numbers"}
			}
		}
		assign := graph.KMeans1D(vals, int(k), 100)
		items := make([]nql.Value, len(assign))
		for i, a := range assign {
			items[i] = int64(a)
		}
		return nql.NewList(items...), nil
	})
}

package nqlbind

import (
	"testing"

	"repro/internal/dataframe"
	"repro/internal/nql"
)

func runWithFrame(t *testing.T, f *dataframe.Frame, src string) nql.Value {
	t.Helper()
	in := nql.NewInterp(nql.Limits{}, map[string]nql.Value{"df": NewFrameObject(f)})
	v, err := in.Run(src)
	if err != nil {
		t.Fatalf("run failed: %v\nsource:\n%s", err, src)
	}
	return v
}

// TestFilterPredicateSetCellStaysLive pins live-read semantics when a
// filter predicate mutates the frame it is filtering on a copy-on-write
// clone (the MALT dataset path): the ensureOwned column replacement must be
// visible to later rows, as it was when rows were read per-visit.
func TestFilterPredicateSetCellStaysLive(t *testing.T) {
	master := dataframe.New("a")
	master.AppendRow(int64(1))
	master.AppendRow(int64(2))
	master.Freeze()
	f := master.Clone()
	v := runWithFrame(t, f, `
let seen = []
func pred(r) {
  push(seen, r["a"])
  if r["a"] == 1 { df.set_cell(1, "a", 100) }
  return true
}
let out = df.filter(pred)
return [seen, out.column("a")]`)
	if got := nql.Repr(v); got != "[[1, 100], [1, 100]]" {
		t.Fatalf("stale column view: got %s, want [[1, 100], [1, 100]]", got)
	}
}

// TestFilterPredicateAppendRowVisitsNewRows pins that rows appended by the
// predicate are iterated without panicking on a stale column snapshot.
func TestFilterPredicateAppendRowVisitsNewRows(t *testing.T) {
	f := dataframe.New("a")
	f.AppendRow(int64(1))
	f.AppendRow(int64(2))
	v := runWithFrame(t, f, `
let seen = []
func pred(r) {
  push(seen, r["a"])
  if r["a"] == 1 { df.append_row(3) }
  return r["a"] != 2
}
let out = df.filter(pred)
return [seen, out.column("a")]`)
	if got := nql.Repr(v); got != "[[1, 2, 3], [1, 3]]" {
		t.Fatalf("appended row handling diverged: got %s, want [[1, 2, 3], [1, 3]]", got)
	}
}

// TestMutatePredicateSeesPriorMutation pins the same liveness for mutate().
func TestMutatePredicateSeesPriorMutation(t *testing.T) {
	master := dataframe.New("a")
	master.AppendRow(int64(1))
	master.AppendRow(int64(2))
	master.Freeze()
	f := master.Clone()
	v := runWithFrame(t, f, `
func fn2(r) {
  if r["a"] == 1 { df.set_cell(1, "a", 100) }
  return r["a"] * 2
}
let out = df.mutate("b", fn2)
return out.column("b")`)
	if got := nql.Repr(v); got != "[2, 200]" {
		t.Fatalf("mutate saw stale values: got %s, want [2, 200]", got)
	}
}
